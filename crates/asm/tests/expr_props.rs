//! Property tests for the constant-expression evaluator: generated
//! expression trees must evaluate exactly as the equivalent Rust
//! computation, and rendering must round-trip through the parser.

use lis_asm::{eval, SymTab};
use proptest::prelude::*;

/// An expression tree paired with its expected value.
#[derive(Debug, Clone)]
enum Node {
    Num(u32),
    Sym(&'static str),
    Neg(Box<Node>),
    Not(Box<Node>),
    Bin(char, Box<Node>, Box<Node>),
    Shl(Box<Node>, u8),
    Shr(Box<Node>, u8),
}

const SYMS: [(&str, u64); 3] = [("alpha", 0x1000), ("beta_2", 7), ("x.y", 0xffff_0001)];

fn node() -> impl Strategy<Value = Node> {
    let leaf = prop_oneof![
        (0u32..1_000_000).prop_map(Node::Num),
        (0usize..3).prop_map(|i| Node::Sym(SYMS[i].0)),
    ];
    leaf.prop_recursive(4, 32, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(|n| Node::Neg(Box::new(n))),
            inner.clone().prop_map(|n| Node::Not(Box::new(n))),
            (
                proptest::sample::select(vec!['+', '-', '*', '&', '|', '^']),
                inner.clone(),
                inner.clone()
            )
                .prop_map(|(op, a, b)| Node::Bin(op, Box::new(a), Box::new(b))),
            (inner.clone(), 0u8..16).prop_map(|(n, s)| Node::Shl(Box::new(n), s)),
            (inner, 0u8..16).prop_map(|(n, s)| Node::Shr(Box::new(n), s)),
        ]
    })
}

fn render(n: &Node) -> String {
    match n {
        Node::Num(v) => format!("{v}"),
        Node::Sym(s) => (*s).to_string(),
        Node::Neg(a) => format!("(-{})", render(a)),
        Node::Not(a) => format!("(~{})", render(a)),
        Node::Bin(op, a, b) => format!("({} {op} {})", render(a), render(b)),
        Node::Shl(a, s) => format!("({} << {s})", render(a)),
        Node::Shr(a, s) => format!("({} >> {s})", render(a)),
    }
}

fn model(n: &Node) -> i64 {
    match n {
        Node::Num(v) => *v as i64,
        Node::Sym(s) => SYMS.iter().find(|(name, _)| name == s).unwrap().1 as i64,
        Node::Neg(a) => model(a).wrapping_neg(),
        Node::Not(a) => !model(a),
        Node::Bin('+', a, b) => model(a).wrapping_add(model(b)),
        Node::Bin('-', a, b) => model(a).wrapping_sub(model(b)),
        Node::Bin('*', a, b) => model(a).wrapping_mul(model(b)),
        Node::Bin('&', a, b) => model(a) & model(b),
        Node::Bin('|', a, b) => model(a) | model(b),
        Node::Bin('^', a, b) => model(a) ^ model(b),
        Node::Bin(op, ..) => unreachable!("operator {op}"),
        Node::Shl(a, s) => model(a).wrapping_shl(*s as u32),
        Node::Shr(a, s) => ((model(a) as u64) >> s) as i64,
    }
}

fn symtab() -> SymTab {
    SYMS.iter().map(|(n, v)| (n.to_string(), *v)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn evaluator_matches_model(n in node()) {
        let text = render(&n);
        let got = eval(&text, &symtab(), true)
            .unwrap_or_else(|e| panic!("`{text}`: {e}"));
        prop_assert_eq!(got, model(&n), "`{}`", text);
    }

    /// Removing whitespace never changes meaning (tokens are
    /// self-delimiting in the rendered form).
    #[test]
    fn whitespace_insensitive(n in node()) {
        let text = render(&n);
        let squeezed: String = text.chars().filter(|c| *c != ' ').collect();
        let syms = symtab();
        prop_assert_eq!(eval(&text, &syms, true).unwrap(), eval(&squeezed, &syms, true).unwrap());
    }
}
