//! # lis-asm — a two-pass assembler framework
//!
//! The LIS workloads are written in each ISA's own assembly language;
//! this crate provides the machinery shared by all three assemblers:
//! lexing, labels, directives, constant expressions, section management,
//! and the two-pass symbol resolution. Each ISA crate supplies an
//! [`IsaAssembler`] that knows its register names and instruction encodings.
//!
//! Supported directives: `.text`, `.data`, `.org`, `.align`, `.word`,
//! `.half`, `.byte`, `.ascii`, `.asciz`, `.space`, `.equ`, `.global`.
//!
//! The output is an [`lis_mem::Image`] loadable by the simulators.
//! The entry point is the `_start` label when present, otherwise the start
//! of `.text`.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod error;
mod expr;
mod parse;

pub use error::AsmError;
pub use expr::{eval, SymTab};
pub use parse::{parse_lines, parse_operand, parse_string, split_operands, Body, Operand, Stmt};

use lis_mem::{Endian, Image, Section};

/// Default load address of `.text`.
pub const TEXT_BASE: u64 = 0x1000;
/// Default load address of `.data`.
pub const DATA_BASE: u64 = 0x2_0000;

/// Context handed to per-ISA encoders.
#[derive(Debug)]
pub struct EncodeCtx<'a> {
    /// Address of the instruction being encoded.
    pub addr: u64,
    /// The complete symbol table (pass 2).
    pub syms: &'a SymTab,
}

/// The per-ISA half of an assembler: register names and encodings.
pub trait IsaAssembler {
    /// ISA name for diagnostics.
    fn name(&self) -> &'static str;

    /// Byte order for emitted words.
    fn endian(&self) -> Endian;

    /// Whether `name` (already lower-cased) is a register.
    fn is_reg(&self, name: &str) -> bool;

    /// Encodes one instruction.
    ///
    /// # Errors
    ///
    /// Returns a description of the problem (unknown mnemonic, operand
    /// count/kind mismatch, out-of-range immediate...).
    fn encode(&self, mnemonic: &str, ops: &[Operand], ctx: &EncodeCtx<'_>) -> Result<u32, String>;
}

#[derive(Debug)]
struct SectionBuf {
    name: &'static str,
    base: u64,
    data: Vec<u8>,
}

impl SectionBuf {
    fn lc(&self) -> u64 {
        self.base + self.data.len() as u64
    }

    fn pad_to(&mut self, addr: u64, line: usize) -> Result<(), AsmError> {
        if addr < self.lc() {
            return Err(AsmError::new(
                line,
                format!("{}: location counter cannot move backwards to {addr:#x}", self.name),
            ));
        }
        self.data.resize((addr - self.base) as usize, 0);
        Ok(())
    }
}

/// Section selector during assembly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Sect {
    Text,
    Data,
}

/// Assembles `src` for the given ISA into a loadable image.
///
/// # Errors
///
/// Returns the first [`AsmError`] (with line number) encountered.
///
/// # Examples
///
/// Assembling for a trivial ISA whose single instruction `nop` encodes as 0:
///
/// ```
/// use lis_asm::{assemble, EncodeCtx, IsaAssembler, Operand};
/// use lis_mem::Endian;
///
/// struct Nop;
/// impl IsaAssembler for Nop {
///     fn name(&self) -> &'static str { "nop" }
///     fn endian(&self) -> Endian { Endian::Little }
///     fn is_reg(&self, _: &str) -> bool { false }
///     fn encode(&self, mn: &str, _: &[Operand], _: &EncodeCtx<'_>) -> Result<u32, String> {
///         if mn == "nop" { Ok(0) } else { Err(format!("unknown mnemonic `{mn}`")) }
///     }
/// }
///
/// let image = assemble(&Nop, "_start: nop\n nop\n")?;
/// assert_eq!(image.entry, 0x1000);
/// assert_eq!(image.sections[0].bytes.len(), 8);
/// # Ok::<(), lis_asm::AsmError>(())
/// ```
pub fn assemble(isa: &dyn IsaAssembler, src: &str) -> Result<Image, AsmError> {
    let stmts = parse_lines(src)?;
    let mut syms = SymTab::new();

    // Pass 1: sizing — compute every label address and `.equ` value.
    {
        let mut text = SectionBuf { name: ".text", base: TEXT_BASE, data: Vec::new() };
        let mut data = SectionBuf { name: ".data", base: DATA_BASE, data: Vec::new() };
        let mut cur = Sect::Text;
        for stmt in &stmts {
            if let Some(label) = &stmt.label {
                let sec = if cur == Sect::Text { &text } else { &data };
                if syms.insert(label.clone(), sec.lc()).is_some() {
                    return Err(AsmError::new(stmt.line, format!("duplicate label `{label}`")));
                }
            }
            match &stmt.body {
                None => {}
                Some(Body::Insn(..)) => {
                    let sec = if cur == Sect::Text { &mut text } else { &mut data };
                    sec.data.extend_from_slice(&[0; 4]);
                }
                Some(Body::Directive(d, args)) => {
                    size_directive(d, args, stmt.line, &mut cur, &mut text, &mut data, &mut syms)?;
                }
            }
        }
    }

    // Pass 2: emission.
    let mut text = SectionBuf { name: ".text", base: TEXT_BASE, data: Vec::new() };
    let mut data = SectionBuf { name: ".data", base: DATA_BASE, data: Vec::new() };
    let mut cur = Sect::Text;
    let endian = isa.endian();
    for stmt in &stmts {
        match &stmt.body {
            None => {}
            Some(Body::Insn(mn, args)) => {
                let sec = if cur == Sect::Text { &mut text } else { &mut data };
                let addr = sec.lc();
                let is_reg = |n: &str| isa.is_reg(n);
                let ops = split_operands(args)
                    .iter()
                    .map(|p| parse_operand(p, &is_reg, &syms, true))
                    .collect::<Result<Vec<_>, _>>()
                    .map_err(|e| AsmError::new(stmt.line, e))?;
                let word = isa
                    .encode(mn, &ops, &EncodeCtx { addr, syms: &syms })
                    .map_err(|e| AsmError::new(stmt.line, e))?;
                let bytes = match endian {
                    Endian::Little => word.to_le_bytes(),
                    Endian::Big => word.to_be_bytes(),
                };
                sec.data.extend_from_slice(&bytes);
            }
            Some(Body::Directive(d, args)) => {
                emit_directive(isa, d, args, stmt.line, &mut cur, &mut text, &mut data, &syms)?;
            }
        }
    }

    let entry = syms.get("_start").copied().unwrap_or(TEXT_BASE);
    let mut sections = Vec::new();
    if !text.data.is_empty() {
        sections.push(Section { name: ".text".into(), addr: text.base, bytes: text.data });
    }
    if !data.data.is_empty() {
        sections.push(Section { name: ".data".into(), addr: data.base, bytes: data.data });
    }
    Ok(Image { entry, sections, symbols: syms.into_iter().collect() })
}

#[allow(clippy::too_many_arguments)]
fn size_directive(
    d: &str,
    args: &str,
    line: usize,
    cur: &mut Sect,
    text: &mut SectionBuf,
    data: &mut SectionBuf,
    syms: &mut SymTab,
) -> Result<(), AsmError> {
    let sec = if *cur == Sect::Text { text } else { data };
    match d {
        "text" => *cur = Sect::Text,
        "data" => *cur = Sect::Data,
        "global" | "globl" => {}
        "org" => {
            let addr = eval(args, syms, true).map_err(|e| AsmError::new(line, e))? as u64;
            sec.pad_to(addr, line)?;
        }
        "align" => {
            let n = eval(args, syms, true).map_err(|e| AsmError::new(line, e))? as u64;
            if n == 0 || !n.is_power_of_two() {
                return Err(AsmError::new(line, "alignment must be a power of two"));
            }
            let target = (sec.lc() + n - 1) & !(n - 1);
            sec.pad_to(target, line)?;
        }
        "word" => sec.data.extend(std::iter::repeat_n(0, 4 * split_operands(args).len())),
        "half" => sec.data.extend(std::iter::repeat_n(0, 2 * split_operands(args).len())),
        "byte" => sec.data.extend(std::iter::repeat_n(0, split_operands(args).len())),
        "ascii" | "asciz" => {
            let mut bytes = parse_string(args).map_err(|e| AsmError::new(line, e))?;
            if d == "asciz" {
                bytes.push(0);
            }
            sec.data.extend(bytes);
        }
        "space" => {
            let n = eval(args, syms, true).map_err(|e| AsmError::new(line, e))? as usize;
            sec.data.extend(std::iter::repeat_n(0, n));
        }
        "equ" => {
            let parts = split_operands(args);
            if parts.len() != 2 {
                return Err(AsmError::new(line, ".equ needs `name, value`"));
            }
            let v = eval(&parts[1], syms, true).map_err(|e| AsmError::new(line, e))?;
            if syms.insert(parts[0].clone(), v as u64).is_some() {
                return Err(AsmError::new(line, format!("duplicate symbol `{}`", parts[0])));
            }
        }
        _ => return Err(AsmError::new(line, format!("unknown directive `.{d}`"))),
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn emit_directive(
    isa: &dyn IsaAssembler,
    d: &str,
    args: &str,
    line: usize,
    cur: &mut Sect,
    text: &mut SectionBuf,
    data: &mut SectionBuf,
    syms: &SymTab,
) -> Result<(), AsmError> {
    let endian = isa.endian();
    let sec = if *cur == Sect::Text { text } else { data };
    match d {
        "text" => *cur = Sect::Text,
        "data" => *cur = Sect::Data,
        "global" | "globl" | "equ" => {}
        "org" => {
            let addr = eval(args, syms, true).map_err(|e| AsmError::new(line, e))? as u64;
            sec.pad_to(addr, line)?;
        }
        "align" => {
            let n = eval(args, syms, true).map_err(|e| AsmError::new(line, e))? as u64;
            let target = (sec.lc() + n - 1) & !(n - 1);
            sec.pad_to(target, line)?;
        }
        "word" | "half" | "byte" => {
            for part in split_operands(args) {
                let v = eval(&part, syms, true).map_err(|e| AsmError::new(line, e))?;
                match (d, endian) {
                    ("word", Endian::Little) => sec.data.extend((v as u32).to_le_bytes()),
                    ("word", Endian::Big) => sec.data.extend((v as u32).to_be_bytes()),
                    ("half", Endian::Little) => sec.data.extend((v as u16).to_le_bytes()),
                    ("half", Endian::Big) => sec.data.extend((v as u16).to_be_bytes()),
                    _ => sec.data.push(v as u8),
                }
            }
        }
        "ascii" | "asciz" => {
            let mut bytes = parse_string(args).map_err(|e| AsmError::new(line, e))?;
            if d == "asciz" {
                bytes.push(0);
            }
            sec.data.extend(bytes);
        }
        "space" => {
            let n = eval(args, syms, true).map_err(|e| AsmError::new(line, e))? as usize;
            sec.data.extend(std::iter::repeat_n(0, n));
        }
        _ => return Err(AsmError::new(line, format!("unknown directive `.{d}`"))),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A fake ISA: `li rN, imm` encodes as `0x10 | N<<16 | imm`, `b label`
    /// encodes a word offset.
    struct Fake;

    impl IsaAssembler for Fake {
        fn name(&self) -> &'static str {
            "fake"
        }

        fn endian(&self) -> Endian {
            Endian::Big
        }

        fn is_reg(&self, name: &str) -> bool {
            name.strip_prefix('r').is_some_and(|n| n.parse::<u8>().is_ok_and(|v| v < 16))
        }

        fn encode(&self, mn: &str, ops: &[Operand], ctx: &EncodeCtx<'_>) -> Result<u32, String> {
            match mn {
                "li" => {
                    let r = ops[0].reg().ok_or("li needs a register")?;
                    let n: u32 = r[1..].parse().unwrap();
                    let imm = ops[1].imm().ok_or("li needs an immediate")? as u32 & 0xffff;
                    Ok(0x1000_0000 | n << 16 | imm)
                }
                "b" => {
                    let target = ops[0].imm().ok_or("b needs a target")? as u64;
                    let off = ((target as i64 - ctx.addr as i64) / 4) as u32 & 0x00ff_ffff;
                    Ok(0x2000_0000 | off)
                }
                _ => Err(format!("unknown mnemonic `{mn}`")),
            }
        }
    }

    #[test]
    fn end_to_end_with_labels_and_data() {
        let src = r#"
        .equ TEN, 10
_start: li r1, TEN          ; comment
loop:   b loop
        .data
msg:    .asciz "hi"
        .align 4
nums:   .word 1, loop, 0x10
        .half 7
        .byte 'x'
        .space 3
"#;
        let img = assemble(&Fake, src).unwrap();
        assert_eq!(img.entry, TEXT_BASE);
        assert_eq!(img.symbol("loop"), Some(TEXT_BASE + 4));
        assert_eq!(img.symbol("msg"), Some(DATA_BASE));
        assert_eq!(img.symbol("nums"), Some(DATA_BASE + 4));
        let text = &img.sections[0];
        assert_eq!(text.bytes.len(), 8);
        // li r1, 10 big-endian
        assert_eq!(&text.bytes[0..4], &0x1001_000au32.to_be_bytes());
        // b loop with offset 0
        assert_eq!(&text.bytes[4..8], &0x2000_0000u32.to_be_bytes());
        let data = &img.sections[1];
        assert_eq!(&data.bytes[..3], b"hi\0");
        // .word loop is a 32-bit big-endian pointer at offset 4 (after align).
        assert_eq!(&data.bytes[8..12], &(TEXT_BASE as u32 + 4).to_be_bytes());
        assert_eq!(data.bytes.len(), 4 + 12 + 2 + 1 + 3);
    }

    #[test]
    fn duplicate_label_is_rejected() {
        let err = assemble(&Fake, "a: li r1, 1\na: li r2, 2\n").unwrap_err();
        assert!(err.to_string().contains("duplicate label"));
        assert_eq!(err.line, 2);
    }

    #[test]
    fn forward_references_resolve() {
        let img = assemble(&Fake, "b fwd\nfwd: li r0, 0\n").unwrap();
        // offset (0x1004 - 0x1000)/4 = 1
        assert_eq!(&img.sections[0].bytes[0..4], &0x2000_0001u32.to_be_bytes());
    }

    #[test]
    fn unknown_mnemonic_reports_line() {
        let err = assemble(&Fake, "li r1, 1\nbogus r1\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("bogus"));
    }

    #[test]
    fn org_moves_forward_only() {
        let img = assemble(&Fake, ".org 0x1010\nli r1, 1\n").unwrap();
        assert_eq!(img.sections[0].bytes.len(), 0x14);
        let err = assemble(&Fake, "li r1, 1\n.org 0x1000\n").unwrap_err();
        assert!(err.to_string().contains("backwards"));
    }

    #[test]
    fn bad_alignment_is_rejected() {
        let err = assemble(&Fake, ".align 3\n").unwrap_err();
        assert!(err.to_string().contains("power of two"));
    }

    #[test]
    fn entry_defaults_and_start() {
        assert_eq!(assemble(&Fake, "li r1, 1\n").unwrap().entry, TEXT_BASE);
        let img = assemble(&Fake, "li r1, 1\n_start: li r2, 2\n").unwrap();
        assert_eq!(img.entry, TEXT_BASE + 4);
    }
}
