//! Source-line and operand parsing.

use crate::error::AsmError;
use crate::expr::{eval, SymTab};

/// One parsed operand of an instruction.
///
/// The framework parses the syntax shared by the three ISAs; register names
/// themselves are validated by the per-ISA assembler (via `is_reg`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Operand {
    /// A register name (`r3`, `sp`, `lr`, `cr0`).
    Reg(String),
    /// An immediate: `#imm`, a number, or a label expression.
    Imm(i64),
    /// Displacement-plus-base syntax: `8(r2)`.
    BaseDisp {
        /// Evaluated displacement.
        disp: i64,
        /// Base register name.
        base: String,
    },
    /// Bracketed memory syntax: `[r1, #4]` (`!` sets `writeback`).
    Mem {
        /// The comma-separated items inside the brackets.
        items: Vec<Operand>,
        /// Whether a trailing `!` requested base writeback.
        writeback: bool,
    },
    /// Keyword-argument syntax: `lsl #2`, `asr r4`.
    Pair {
        /// The keyword (`lsl`, `lsr`, `asr`, `ror`).
        key: String,
        /// Its argument.
        arg: Box<Operand>,
    },
}

impl Operand {
    /// The immediate value, if this operand is one.
    pub fn imm(&self) -> Option<i64> {
        match self {
            Operand::Imm(v) => Some(*v),
            _ => None,
        }
    }

    /// The register name, if this operand is one.
    pub fn reg(&self) -> Option<&str> {
        match self {
            Operand::Reg(r) => Some(r),
            _ => None,
        }
    }
}

/// One statement extracted from a source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Body {
    /// `.directive rest-of-line`
    Directive(String, String),
    /// `mnemonic rest-of-line`
    Insn(String, String),
}

/// A parsed source line: optional label plus optional statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stmt {
    /// 1-based source line.
    pub line: usize,
    /// Label defined at this line, if any.
    pub label: Option<String>,
    /// The statement body, if any.
    pub body: Option<Body>,
}

/// Strips comments (`;` or `//` outside string/char literals).
fn strip_comment(line: &str) -> &str {
    let b = line.as_bytes();
    let mut in_str = false;
    let mut in_char = false;
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        match c {
            b'\\' if in_str || in_char => i += 1,
            b'"' if !in_char => in_str = !in_str,
            b'\'' if !in_str => in_char = !in_char,
            b';' if !in_str && !in_char => return &line[..i],
            b'/' if !in_str && !in_char && b.get(i + 1) == Some(&b'/') => return &line[..i],
            _ => {}
        }
        i += 1;
    }
    line
}

/// Parses the whole source into statements.
///
/// # Errors
///
/// Returns a syntax error with its line number.
pub fn parse_lines(src: &str) -> Result<Vec<Stmt>, AsmError> {
    let mut out = Vec::new();
    for (idx, raw) in src.lines().enumerate() {
        let line_no = idx + 1;
        let mut text = strip_comment(raw).trim();
        let mut label = None;
        // A label is an identifier followed by `:` at the start of the line.
        if let Some(colon) = text.find(':') {
            let candidate = &text[..colon];
            if !candidate.is_empty()
                && candidate
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.' || c == '$')
                && !candidate.chars().next().unwrap().is_ascii_digit()
            {
                label = Some(candidate.to_string());
                text = text[colon + 1..].trim();
            }
        }
        let body = if text.is_empty() {
            None
        } else if let Some(rest) = text.strip_prefix('.') {
            let (name, args) = match rest.find(char::is_whitespace) {
                Some(ws) => (&rest[..ws], rest[ws..].trim()),
                None => (rest, ""),
            };
            if name.is_empty() {
                return Err(AsmError::new(line_no, "empty directive"));
            }
            Some(Body::Directive(name.to_string(), args.to_string()))
        } else {
            let (mn, args) = match text.find(char::is_whitespace) {
                Some(ws) => (&text[..ws], text[ws..].trim()),
                None => (text, ""),
            };
            Some(Body::Insn(mn.to_ascii_lowercase(), args.to_string()))
        };
        out.push(Stmt { line: line_no, label, body });
    }
    Ok(out)
}

/// Splits an operand list at top-level commas (respecting `[]`, `()`, and
/// quotes).
pub fn split_operands(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut start = 0usize;
    let b = s.as_bytes();
    let mut in_str = false;
    let mut in_char = false;
    for (i, &c) in b.iter().enumerate() {
        match c {
            b'"' if !in_char => in_str = !in_str,
            b'\'' if !in_str => in_char = !in_char,
            b'[' | b'(' if !in_str && !in_char => depth += 1,
            b']' | b')' if !in_str && !in_char => depth -= 1,
            b',' if depth == 0 && !in_str && !in_char => {
                out.push(s[start..i].trim().to_string());
                start = i + 1;
            }
            _ => {}
        }
    }
    let last = s[start..].trim();
    if !last.is_empty() || !out.is_empty() {
        out.push(last.to_string());
    }
    out.retain(|p| !p.is_empty());
    out
}

/// Parses one operand string.
///
/// `is_reg` is the per-ISA register-name predicate; anything that is not a
/// register, bracketed memory, displacement syntax, or keyword pair is
/// evaluated as a constant expression against `syms`.
///
/// # Errors
///
/// Returns a description of the first syntax error or (when `strict`)
/// undefined symbol.
pub fn parse_operand(
    s: &str,
    is_reg: &dyn Fn(&str) -> bool,
    syms: &SymTab,
    strict: bool,
) -> Result<Operand, String> {
    let s = s.trim();
    if s.is_empty() {
        return Err("empty operand".into());
    }
    if let Some(rest) = s.strip_prefix('#') {
        return Ok(Operand::Imm(eval(rest, syms, strict)?));
    }
    if let Some(rest) = s.strip_prefix('[') {
        let (inner, wb) = match rest.strip_suffix("]!") {
            Some(inner) => (inner, true),
            None => match rest.strip_suffix(']') {
                Some(inner) => (inner, false),
                None => return Err(format!("unterminated `[` in `{s}`")),
            },
        };
        let items = split_operands(inner)
            .iter()
            .map(|p| parse_operand(p, is_reg, syms, strict))
            .collect::<Result<Vec<_>, _>>()?;
        return Ok(Operand::Mem { items, writeback: wb });
    }
    // disp(base) — base must be a register.
    if let Some(open) = s.rfind('(') {
        if let Some(inner) = s[open + 1..].strip_suffix(')') {
            if is_reg(&inner.to_ascii_lowercase()) {
                let prefix = s[..open].trim();
                let disp = if prefix.is_empty() { 0 } else { eval(prefix, syms, strict)? };
                return Ok(Operand::BaseDisp { disp, base: inner.to_ascii_lowercase() });
            }
        }
    }
    // Keyword pair: `lsl #2`, `asr r4`.
    if let Some(ws) = s.find(char::is_whitespace) {
        let key = s[..ws].to_ascii_lowercase();
        if matches!(key.as_str(), "lsl" | "lsr" | "asr" | "ror") {
            let arg = parse_operand(s[ws..].trim(), is_reg, syms, strict)?;
            return Ok(Operand::Pair { key, arg: Box::new(arg) });
        }
    }
    let lower = s.to_ascii_lowercase();
    if is_reg(&lower) {
        return Ok(Operand::Reg(lower));
    }
    Ok(Operand::Imm(eval(s, syms, strict)?))
}

/// Parses a `.ascii`/`.asciz` string literal.
///
/// # Errors
///
/// Returns a description of the syntax error.
pub fn parse_string(s: &str) -> Result<Vec<u8>, String> {
    let s = s.trim();
    let inner = s
        .strip_prefix('"')
        .and_then(|t| t.strip_suffix('"'))
        .ok_or_else(|| format!("expected quoted string, found `{s}`"))?;
    let mut out = Vec::new();
    let mut chars = inner.bytes();
    while let Some(c) = chars.next() {
        if c == b'\\' {
            match chars.next() {
                Some(b'n') => out.push(b'\n'),
                Some(b't') => out.push(b'\t'),
                Some(b'0') => out.push(0),
                Some(b'\\') => out.push(b'\\'),
                Some(b'"') => out.push(b'"'),
                other => {
                    return Err(format!("bad string escape `\\{:?}`", other.map(|b| b as char)))
                }
            }
        } else {
            out.push(c);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn is_reg(name: &str) -> bool {
        name == "sp" || (name.starts_with('r') && name[1..].parse::<u8>().is_ok())
    }

    fn syms() -> SymTab {
        [("loop".to_string(), 0x1010u64)].into_iter().collect()
    }

    #[test]
    fn lines_with_labels_and_comments() {
        let stmts =
            parse_lines("start: addi r1, r0, 1 ; init\n .word 5 // data\n\nend:\n").unwrap();
        assert_eq!(stmts[0].label.as_deref(), Some("start"));
        assert!(matches!(&stmts[0].body, Some(Body::Insn(mn, _)) if mn == "addi"));
        assert!(matches!(&stmts[1].body, Some(Body::Directive(d, a)) if d == "word" && a == "5"));
        assert!(stmts[2].body.is_none() && stmts[2].label.is_none());
        assert_eq!(stmts[3].label.as_deref(), Some("end"));
    }

    #[test]
    fn split_respects_brackets() {
        assert_eq!(split_operands("r0, [r1, #4], r2"), vec!["r0", "[r1, #4]", "r2"]);
        assert_eq!(split_operands("8(r2), r3"), vec!["8(r2)", "r3"]);
        assert_eq!(split_operands(""), Vec::<String>::new());
    }

    #[test]
    fn operand_forms() {
        let s = syms();
        assert_eq!(parse_operand("r3", &is_reg, &s, true).unwrap(), Operand::Reg("r3".into()));
        assert_eq!(parse_operand("R3", &is_reg, &s, true).unwrap(), Operand::Reg("r3".into()));
        assert_eq!(parse_operand("#-4", &is_reg, &s, true).unwrap(), Operand::Imm(-4));
        assert_eq!(parse_operand("loop+8", &is_reg, &s, true).unwrap(), Operand::Imm(0x1018));
        assert_eq!(
            parse_operand("8(r2)", &is_reg, &s, true).unwrap(),
            Operand::BaseDisp { disp: 8, base: "r2".into() }
        );
        assert_eq!(
            parse_operand("(sp)", &is_reg, &s, true).unwrap(),
            Operand::BaseDisp { disp: 0, base: "sp".into() }
        );
        assert_eq!(
            parse_operand("[r1, #4]!", &is_reg, &s, true).unwrap(),
            Operand::Mem {
                items: vec![Operand::Reg("r1".into()), Operand::Imm(4)],
                writeback: true
            }
        );
        assert_eq!(
            parse_operand("lsl #2", &is_reg, &s, true).unwrap(),
            Operand::Pair { key: "lsl".into(), arg: Box::new(Operand::Imm(2)) }
        );
    }

    #[test]
    fn undefined_symbol_strictness() {
        let s = SymTab::new();
        assert!(parse_operand("nolabel", &is_reg, &s, true).is_err());
        assert_eq!(parse_operand("nolabel", &is_reg, &s, false).unwrap(), Operand::Imm(0));
    }

    #[test]
    fn string_literals() {
        assert_eq!(parse_string(r#""hi\n""#).unwrap(), b"hi\n");
        assert_eq!(parse_string(r#""a\"b""#).unwrap(), b"a\"b");
        assert!(parse_string("unquoted").is_err());
    }

    #[test]
    fn accessors() {
        assert_eq!(Operand::Imm(3).imm(), Some(3));
        assert_eq!(Operand::Reg("r1".into()).reg(), Some("r1"));
        assert_eq!(Operand::Imm(3).reg(), None);
    }
}
