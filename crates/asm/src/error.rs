//! Assembler errors.

use std::fmt;

/// An assembly error, annotated with the 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number in the source.
    pub line: usize,
    /// What went wrong.
    pub msg: String,
}

impl AsmError {
    /// Creates an error at `line`.
    pub fn new(line: usize, msg: impl Into<String>) -> AsmError {
        AsmError { line, msg: msg.into() }
    }
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for AsmError {}
