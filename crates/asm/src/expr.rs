//! Constant-expression evaluation with symbols.
//!
//! Grammar (standard precedence):
//!
//! ```text
//! expr   := term (('+' | '-' | '|' | '&' | '^') term)*
//! term   := factor (('*' | '/' | '%' | "<<" | ">>") factor)*
//! factor := number | symbol | func '(' expr ')' | '(' expr ')' | '-' factor | '~' factor
//! ```
//!
//! Numbers may be decimal, `0x` hex, `0b` binary, or character literals
//! (`'a'`). The functions `hi16`, `lo16`, `slo16`, and `ha16` extract halves of an
//! address (`ha16` is the PowerPC "high adjusted" form that compensates for
//! the sign of the low half).

use std::collections::HashMap;

/// Symbol table mapping labels and `.equ` names to values.
pub type SymTab = HashMap<String, u64>;

/// Evaluates `src` against `syms`.
///
/// # Errors
///
/// Returns a message describing the first syntax error or (when
/// `require_symbols` is true) unknown symbol. With `require_symbols` false,
/// unknown symbols evaluate to 0 — used during the sizing pass.
pub fn eval(src: &str, syms: &SymTab, require_symbols: bool) -> Result<i64, String> {
    let mut p = Parser { s: src.as_bytes(), pos: 0, syms, require_symbols };
    let v = p.expr()?;
    p.skip_ws();
    if p.pos != p.s.len() {
        return Err(format!("trailing input in expression `{src}`"));
    }
    Ok(v)
}

struct Parser<'a> {
    s: &'a [u8],
    pos: usize,
    syms: &'a SymTab,
    require_symbols: bool,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.s.len() && self.s[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.s.get(self.pos).copied()
    }

    fn eat(&mut self, c: u8) -> bool {
        if self.peek() == Some(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expr(&mut self) -> Result<i64, String> {
        let mut v = self.term()?;
        loop {
            match self.peek() {
                Some(b'+') => {
                    self.pos += 1;
                    v = v.wrapping_add(self.term()?);
                }
                Some(b'-') => {
                    self.pos += 1;
                    v = v.wrapping_sub(self.term()?);
                }
                Some(b'|') => {
                    self.pos += 1;
                    v |= self.term()?;
                }
                Some(b'&') => {
                    self.pos += 1;
                    v &= self.term()?;
                }
                Some(b'^') => {
                    self.pos += 1;
                    v ^= self.term()?;
                }
                _ => return Ok(v),
            }
        }
    }

    fn term(&mut self) -> Result<i64, String> {
        let mut v = self.factor()?;
        loop {
            self.skip_ws();
            if self.s[self.pos..].starts_with(b"<<") {
                self.pos += 2;
                v = v.wrapping_shl(self.factor()? as u32);
            } else if self.s[self.pos..].starts_with(b">>") {
                self.pos += 2;
                v = ((v as u64) >> (self.factor()? as u32 & 63)) as i64;
            } else {
                match self.peek() {
                    Some(b'*') => {
                        self.pos += 1;
                        v = v.wrapping_mul(self.factor()?);
                    }
                    Some(b'/') => {
                        self.pos += 1;
                        let d = self.factor()?;
                        if d == 0 {
                            return Err("division by zero in expression".into());
                        }
                        v /= d;
                    }
                    Some(b'%') => {
                        self.pos += 1;
                        let d = self.factor()?;
                        if d == 0 {
                            return Err("modulo by zero in expression".into());
                        }
                        v %= d;
                    }
                    _ => return Ok(v),
                }
            }
        }
    }

    fn factor(&mut self) -> Result<i64, String> {
        match self.peek() {
            Some(b'-') => {
                self.pos += 1;
                Ok(self.factor()?.wrapping_neg())
            }
            Some(b'~') => {
                self.pos += 1;
                Ok(!self.factor()?)
            }
            Some(b'(') => {
                self.pos += 1;
                let v = self.expr()?;
                if !self.eat(b')') {
                    return Err("missing `)`".into());
                }
                Ok(v)
            }
            Some(b'\'') => self.char_lit(),
            Some(c) if c.is_ascii_digit() => self.number(),
            Some(c) if c == b'_' || c == b'.' || c.is_ascii_alphabetic() => self.symbol_or_func(),
            other => Err(match other {
                Some(c) => format!("unexpected `{}` in expression", c as char),
                None => "unexpected end of expression".into(),
            }),
        }
    }

    fn char_lit(&mut self) -> Result<i64, String> {
        // self.peek() already saw the quote
        self.pos += 1;
        let c = *self.s.get(self.pos).ok_or("unterminated char literal")?;
        let v = if c == b'\\' {
            self.pos += 1;
            match self.s.get(self.pos) {
                Some(b'n') => b'\n',
                Some(b't') => b'\t',
                Some(b'0') => 0,
                Some(b'\\') => b'\\',
                Some(b'\'') => b'\'',
                _ => return Err("bad escape in char literal".into()),
            }
        } else {
            c
        };
        self.pos += 1;
        if !self.eat(b'\'') {
            return Err("unterminated char literal".into());
        }
        Ok(v as i64)
    }

    fn number(&mut self) -> Result<i64, String> {
        let start = self.pos;
        let (radix, digits_start) = if self.s[self.pos..].starts_with(b"0x")
            || self.s[self.pos..].starts_with(b"0X")
        {
            (16, self.pos + 2)
        } else if self.s[self.pos..].starts_with(b"0b") || self.s[self.pos..].starts_with(b"0B") {
            (2, self.pos + 2)
        } else {
            (10, self.pos)
        };
        self.pos = digits_start;
        while self.pos < self.s.len()
            && (self.s[self.pos].is_ascii_alphanumeric() || self.s[self.pos] == b'_')
        {
            self.pos += 1;
        }
        let text: String = std::str::from_utf8(&self.s[digits_start..self.pos])
            .unwrap()
            .chars()
            .filter(|c| *c != '_')
            .collect();
        u64::from_str_radix(&text, radix).map(|v| v as i64).map_err(|_| {
            format!("bad number `{}`", std::str::from_utf8(&self.s[start..self.pos]).unwrap())
        })
    }

    fn symbol_or_func(&mut self) -> Result<i64, String> {
        let start = self.pos;
        while self.pos < self.s.len()
            && (self.s[self.pos].is_ascii_alphanumeric()
                || self.s[self.pos] == b'_'
                || self.s[self.pos] == b'.'
                || self.s[self.pos] == b'$')
        {
            self.pos += 1;
        }
        let name = std::str::from_utf8(&self.s[start..self.pos]).unwrap().to_string();
        if self.peek() == Some(b'(') {
            self.pos += 1;
            let arg = self.expr()?;
            if !self.eat(b')') {
                return Err("missing `)` after function argument".into());
            }
            return match name.as_str() {
                "hi16" => Ok(((arg as u64 >> 16) & 0xffff) as i64),
                "lo16" => Ok((arg as u64 & 0xffff) as i64),
                "slo16" => Ok((arg as u64 & 0xffff) as u16 as i16 as i64),
                // High-adjusted: compensates for the low half being
                // sign-extended by a following addi/lwz.
                "ha16" => Ok((((arg as u64).wrapping_add(0x8000) >> 16) & 0xffff) as i64),
                _ => Err(format!("unknown function `{name}`")),
            };
        }
        match self.syms.get(&name) {
            Some(&v) => Ok(v as i64),
            None if !self.require_symbols => Ok(0),
            None => Err(format!("undefined symbol `{name}`")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn syms() -> SymTab {
        [("base".to_string(), 0x12345u64), ("n".to_string(), 10u64)].into_iter().collect()
    }

    #[test]
    fn arithmetic_and_precedence() {
        let s = SymTab::new();
        assert_eq!(eval("1+2*3", &s, true).unwrap(), 7);
        assert_eq!(eval("(1+2)*3", &s, true).unwrap(), 9);
        assert_eq!(eval("-4+1", &s, true).unwrap(), -3);
        assert_eq!(eval("10/3", &s, true).unwrap(), 3);
        assert_eq!(eval("10%3", &s, true).unwrap(), 1);
        assert_eq!(eval("1<<4 | 2", &s, true).unwrap(), 18);
        assert_eq!(eval("0xff & 0x0f", &s, true).unwrap(), 0xf);
        assert_eq!(eval("~0 ^ -1", &s, true).unwrap(), 0);
    }

    #[test]
    fn radix_and_chars() {
        let s = SymTab::new();
        assert_eq!(eval("0x10", &s, true).unwrap(), 16);
        assert_eq!(eval("0b101", &s, true).unwrap(), 5);
        assert_eq!(eval("1_000", &s, true).unwrap(), 1000);
        assert_eq!(eval("'a'", &s, true).unwrap(), 97);
        assert_eq!(eval("'\\n'", &s, true).unwrap(), 10);
    }

    #[test]
    fn symbols_resolve() {
        assert_eq!(eval("base+4*n", &syms(), true).unwrap(), 0x12345 + 40);
        assert!(eval("missing", &syms(), true).is_err());
        assert_eq!(eval("missing", &syms(), false).unwrap(), 0);
    }

    #[test]
    fn half_functions() {
        let s = syms();
        assert_eq!(eval("hi16(base)", &s, true).unwrap(), 0x1);
        assert_eq!(eval("lo16(base)", &s, true).unwrap(), 0x2345);
        // ha16 compensates when the low half is negative as i16.
        assert_eq!(eval("ha16(0x1_8000)", &s, true).unwrap(), 0x2);
        assert_eq!(eval("ha16(0x1_7fff)", &s, true).unwrap(), 0x1);
        assert_eq!(eval("slo16(0x1_8001)", &s, true).unwrap(), -0x7fff);
        assert_eq!(eval("slo16(0x1_0001)", &s, true).unwrap(), 1);
        // ha16/slo16 compose: (ha16 << 16) + slo16 == original (mod 2^32).
        for v in [0x1_8000i64, 0x1_7fffi64, 0x2_0000i64] {
            let hi = eval(&format!("ha16({v})"), &s, true).unwrap();
            let lo = eval(&format!("slo16({v})"), &s, true).unwrap();
            assert_eq!((hi << 16) + lo, v);
        }
    }

    #[test]
    fn errors_are_descriptive() {
        let s = SymTab::new();
        assert!(eval("1+", &s, true).unwrap_err().contains("unexpected end"));
        assert!(eval("(1", &s, true).unwrap_err().contains(")"));
        assert!(eval("1/0", &s, true).unwrap_err().contains("division"));
        assert!(eval("1 2", &s, true).unwrap_err().contains("trailing"));
        assert!(eval("foo(1)", &s, true).unwrap_err().contains("unknown function"));
    }
}
