; Fill a 64-byte buffer from the LCG, reverse it, weighted-sum it.
_start: mov r9, #0x20000          ; buf
        mov r1, #42               ; x
        mov r4, #75
        mov r5, #0x10000
        add r5, r5, #1            ; 65537
        mov r3, #0                ; i
fill:   mul r6, r1, r4
        add r6, r6, #74
        mov r8, r6, lsr #16
        sub r6, r6, r8, lsl #16
        sub r1, r6, r8
        cmp r1, #0
        addlt r1, r1, r5
        strb r1, [r9, r3]
        add r3, r3, #1
        cmp r3, #64
        blt fill
        ; reverse in place
        mov r2, r9                ; p
        add r3, r9, #63           ; q
rev:    cmp r2, r3
        bge sum
        ldrb r6, [r2]
        ldrb r8, [r3]
        strb r8, [r2]
        strb r6, [r3]
        add r2, r2, #1
        sub r3, r3, #1
        b rev
        ; weighted sum
sum:    mov r2, #0                ; s
        mov r3, #0                ; i
wsum:   ldrb r6, [r9, r3]
        add r8, r3, #1
        mla r2, r6, r8, r2
        add r3, r3, #1
        cmp r3, #64
        blt wsum
        mov r0, r2
        mov r7, #4                ; PUTUDEC
        swi 0
        mov r7, #1                ; EXIT
        mov r0, #0
        swi 0
        .data
buf:    .space 64
