; Sieve of Eratosthenes: count primes below 1000.
_start: mov r4, #0x20000          ; flags base
        mov r9, #1000
        mov r1, #0                ; count
        mov r2, #2                ; i
outer:  cmp r2, r9
        bge done
        ldrb r5, [r4, r2]
        cmp r5, #0
        bne next
        add r1, r1, #1
        mul r6, r2, r2            ; j = i*i
inner:  cmp r6, r9
        bge next
        mov r5, #1
        strb r5, [r4, r6]
        add r6, r6, r2
        b inner
next:   add r2, r2, #1
        b outer
done:   mov r0, r1
        mov r7, #4                ; PUTUDEC
        swi 0
        mov r7, #1                ; EXIT
        mov r0, #0
        swi 0
        .data
flags:  .space 1000
