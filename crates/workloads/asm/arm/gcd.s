; Sum of subtraction-Euclid GCDs over 32 LCG pairs.
_start: mov r1, #42               ; x
        mov r4, #75
        mov r5, #0x10000
        add r5, r5, #1            ; 65537
        mov r9, #0                ; sum
        mov r10, #0               ; pair counter
pair:   bl lcg
        orr r2, r1, #1            ; a
        bl lcg
        orr r3, r1, #1            ; b
gloop:  cmp r2, r3
        subgt r2, r2, r3
        sublt r3, r3, r2
        bne gloop
        add r9, r9, r2
        add r10, r10, #1
        cmp r10, #32
        blt pair
        mov r0, r9
        mov r7, #4                ; PUTUDEC
        swi 0
        mov r7, #1                ; EXIT
        mov r0, #0
        swi 0
; x' = (x*75 + 74) mod 65537 in r1 (clobbers r6, r8)
lcg:    mul r6, r1, r4
        add r6, r6, #74
        mov r8, r6, lsr #16
        sub r6, r6, r8, lsl #16
        sub r1, r6, r8
        cmp r1, #0
        addlt r1, r1, r5
        bx lr
