; Bubble-sort 64 LCG-generated 15-bit values, then weighted-sum.
_start: mov r9, #0x20000          ; arr
        mov r1, #42               ; x
        mov r4, #75
        mov r5, #0x10000
        add r5, r5, #1            ; 65537
        mov r3, #0                ; i
fill:   mul r6, r1, r4
        add r6, r6, #74
        mov r8, r6, lsr #16
        sub r6, r6, r8, lsl #16
        sub r1, r6, r8
        cmp r1, #0
        addlt r1, r1, r5
        mov r6, r1, lsl #17       ; keep low 15 bits
        mov r6, r6, lsr #17
        str r6, [r9, r3, lsl #2]
        add r3, r3, #1
        cmp r3, #64
        blt fill
        ; bubble sort
        mov r10, #0               ; i
bi:     mov r11, #63
        sub r11, r11, r10         ; bound
        mov r3, #0                ; j
bj:     cmp r3, r11
        bge binext
        ldr r6, [r9, r3, lsl #2]
        add r2, r3, #1
        ldr r8, [r9, r2, lsl #2]
        cmp r6, r8
        ble noswap
        str r8, [r9, r3, lsl #2]
        str r6, [r9, r2, lsl #2]
noswap: add r3, r3, #1
        b bj
binext: add r10, r10, #1
        cmp r10, #64
        blt bi
        ; weighted sum
        mov r2, #0                ; s
        mov r3, #0                ; i
wsum:   ldr r6, [r9, r3, lsl #2]
        add r8, r3, #1
        mla r2, r6, r8, r2
        add r3, r3, #1
        cmp r3, #64
        blt wsum
        mov r0, r2
        mov r7, #4                ; PUTUDEC
        swi 0
        mov r7, #1                ; EXIT
        mov r0, #0
        swi 0
        .data
arr:    .space 256
