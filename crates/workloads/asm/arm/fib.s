; Naive recursive Fibonacci of 18.
_start: mov r0, #18
        bl fib
        mov r7, #4                ; PUTUDEC
        swi 0
        mov r7, #1                ; EXIT
        mov r0, #0
        swi 0
fib:    cmp r0, #2
        bge rec
        bx lr
rec:    sub sp, sp, #12
        str lr, [sp]
        str r0, [sp, #4]
        sub r0, r0, #1
        bl fib
        str r0, [sp, #8]
        ldr r0, [sp, #4]
        sub r0, r0, #2
        bl fib
        ldr r1, [sp, #8]
        add r0, r0, r1
        ldr lr, [sp]
        add sp, sp, #12
        bx lr
