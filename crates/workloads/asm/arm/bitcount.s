; Kernighan popcount over 128 LCG values.
_start: mov r1, #42               ; x
        mov r4, #75
        mov r5, #0x10000
        add r5, r5, #1            ; 65537
        mov r9, #0                ; total
        mov r10, #0               ; n
loop:   mul r6, r1, r4
        add r6, r6, #74
        mov r8, r6, lsr #16
        sub r6, r6, r8, lsl #16
        sub r1, r6, r8
        cmp r1, #0
        addlt r1, r1, r5
        mov r2, r1                ; v = x
pop:    cmp r2, #0
        beq next
        sub r3, r2, #1
        and r2, r2, r3
        add r9, r9, #1
        b pop
next:   add r10, r10, #1
        cmp r10, #128
        blt loop
        mov r0, r9
        mov r7, #4                ; PUTUDEC
        swi 0
        mov r7, #1                ; EXIT
        mov r0, #0
        swi 0
