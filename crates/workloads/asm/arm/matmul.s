; 12x12 integer matrix multiply with synthesized elements.
_start: mov r10, #0               ; sum
        mov r1, #0                ; i
iloop:  mov r2, #0                ; j
jloop:  mov r3, #0                ; k
        mov r4, #0                ; c
kloop:  add r5, r1, r3, lsl #1    ; i + 2k
        and r5, r5, #7
        add r5, r5, #1            ; a
        add r6, r3, r3, lsl #1    ; 3k
        add r6, r6, r2            ; 3k + j
        and r6, r6, #3
        add r6, r6, #1            ; b
        mul r8, r5, r6
        add r4, r4, r8
        add r3, r3, #1
        cmp r3, #12
        blt kloop
        add r10, r10, r4
        add r2, r2, #1
        cmp r2, #12
        blt jloop
        add r1, r1, #1
        cmp r1, #12
        blt iloop
        mov r0, r10
        mov r7, #4                ; PUTUDEC
        swi 0
        mov r7, #1                ; EXIT
        mov r0, #0
        swi 0
