; Bubble-sort 64 LCG-generated 15-bit values, then weighted-sum.
_start: lis r14, 2                ; arr = 0x20000
        li r5, 42                 ; x
        lis r8, 1
        ori r8, r8, 1             ; 65537
        li r7, 0                  ; i
fill:   mulli r5, r5, 75
        addi r5, r5, 74
        srwi r9, r5, 16
        rlwinm r10, r5, 0, 16, 31
        subf r5, r9, r10
        cmpwi r5, 0
        bge nofix
        add r5, r5, r8
nofix:  rlwinm r9, r5, 0, 17, 31  ; low 15 bits
        slwi r10, r7, 2
        stwx r9, r14, r10
        addi r7, r7, 1
        cmpwi r7, 64
        blt fill
        ; bubble sort
        li r15, 0                 ; i
bi:     li r16, 63
        subf r16, r15, r16        ; bound = 63 - i
        li r7, 0                  ; j
bj:     cmpw r7, r16
        bge binext
        slwi r10, r7, 2
        lwzx r9, r14, r10
        addi r11, r10, 4
        lwzx r12, r14, r11
        cmpw r9, r12
        ble noswap
        stwx r12, r14, r10
        stwx r9, r14, r11
noswap: addi r7, r7, 1
        b bj
binext: addi r15, r15, 1
        cmpwi r15, 64
        blt bi
        ; weighted sum
        li r6, 0                  ; s
        li r7, 0                  ; i
wsum:   slwi r10, r7, 2
        lwzx r9, r14, r10
        addi r11, r7, 1
        mullw r9, r9, r11
        add r6, r6, r9
        addi r7, r7, 1
        cmpwi r7, 64
        blt wsum
        li r0, 4                  ; PUTUDEC
        mr r3, r6
        sc
        li r0, 1                  ; EXIT
        li r3, 0
        sc
        .data
arr:    .space 256
