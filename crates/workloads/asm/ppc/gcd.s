; Sum of subtraction-Euclid GCDs over 32 LCG pairs.
_start: li r5, 42                 ; x
        lis r8, 1
        ori r8, r8, 1             ; 65537
        li r14, 0                 ; sum
        li r15, 0                 ; pair counter
pair:   bl lcg
        ori r6, r5, 1             ; a
        bl lcg
        ori r7, r5, 1             ; b
gloop:  cmpw r6, r7
        beq done1
        bgt asub
        subf r7, r6, r7           ; b -= a
        b gloop
asub:   subf r6, r7, r6           ; a -= b
        b gloop
done1:  add r14, r14, r6
        addi r15, r15, 1
        cmpwi r15, 32
        blt pair
        li r0, 4                  ; PUTUDEC
        mr r3, r14
        sc
        li r0, 1                  ; EXIT
        li r3, 0
        sc
; x' = (x*75 + 74) mod 65537 in r5 (clobbers r9, r10)
lcg:    mulli r5, r5, 75
        addi r5, r5, 74
        srwi r9, r5, 16
        rlwinm r10, r5, 0, 16, 31
        subf r5, r9, r10
        cmpwi r5, 0
        bge lnofix
        add r5, r5, r8
lnofix: blr
