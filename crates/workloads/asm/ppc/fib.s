; Naive recursive Fibonacci of 18.
_start: li r3, 18
        bl fib
        li r0, 4                  ; PUTUDEC (result already in r3)
        sc
        li r0, 1                  ; EXIT
        li r3, 0
        sc
fib:    cmpwi r3, 2
        bge rec
        blr
rec:    mflr r5
        stwu r5, -16(r1)
        stw r3, 4(r1)
        subi r3, r3, 1
        bl fib
        stw r3, 8(r1)
        lwz r3, 4(r1)
        subi r3, r3, 2
        bl fib
        lwz r5, 8(r1)
        add r3, r3, r5
        lwz r5, 0(r1)
        mtlr r5
        addi r1, r1, 16
        blr
