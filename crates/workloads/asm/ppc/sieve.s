; Sieve of Eratosthenes: count primes below 1000.
_start: lis r5, 2                 ; flags base = 0x20000
        li r9, 1000
        li r6, 0                  ; count
        li r7, 2                  ; i
outer:  cmpw r7, r9
        bge done
        lbzx r8, r5, r7
        cmpwi r8, 0
        bne next
        addi r6, r6, 1
        mullw r10, r7, r7         ; j = i*i
inner:  cmpw r10, r9
        bge next
        li r8, 1
        stbx r8, r5, r10
        add r10, r10, r7
        b inner
next:   addi r7, r7, 1
        b outer
done:   li r0, 4                  ; PUTUDEC
        mr r3, r6
        sc
        li r0, 1                  ; EXIT
        li r3, 0
        sc
        .data
flags:  .space 1000
