; Fill a 64-byte buffer from the LCG, reverse it, weighted-sum it.
_start: lis r14, 2                ; buf = 0x20000
        li r5, 42                 ; x
        lis r8, 1
        ori r8, r8, 1             ; 65537
        li r7, 0                  ; i
fill:   mulli r5, r5, 75
        addi r5, r5, 74
        srwi r9, r5, 16
        rlwinm r10, r5, 0, 16, 31
        subf r5, r9, r10
        cmpwi r5, 0
        bge nofix
        add r5, r5, r8
nofix:  stbx r5, r14, r7
        addi r7, r7, 1
        cmpwi r7, 64
        blt fill
        ; reverse in place
        mr r6, r14                ; p
        addi r7, r14, 63          ; q
rev:    cmpw r6, r7
        bge sum
        lbz r9, 0(r6)
        lbz r10, 0(r7)
        stb r10, 0(r6)
        stb r9, 0(r7)
        addi r6, r6, 1
        subi r7, r7, 1
        b rev
        ; weighted sum
sum:    li r6, 0                  ; s
        li r7, 0                  ; i
wsum:   lbzx r9, r14, r7
        addi r10, r7, 1
        mullw r9, r9, r10
        add r6, r6, r9
        addi r7, r7, 1
        cmpwi r7, 64
        blt wsum
        li r0, 4                  ; PUTUDEC
        mr r3, r6
        sc
        li r0, 1                  ; EXIT
        li r3, 0
        sc
        .data
buf:    .space 64
