; Kernighan popcount over 128 LCG values.
_start: li r5, 42                 ; x
        lis r8, 1
        ori r8, r8, 1             ; 65537
        li r14, 0                 ; total
        li r15, 0                 ; n
loop:   mulli r5, r5, 75
        addi r5, r5, 74
        srwi r9, r5, 16
        rlwinm r10, r5, 0, 16, 31
        subf r5, r9, r10
        cmpwi r5, 0
        bge nofix
        add r5, r5, r8
nofix:  mr r6, r5                 ; v = x
pop:    cmpwi r6, 0
        beq next
        subi r7, r6, 1
        and r6, r6, r7
        addi r14, r14, 1
        b pop
next:   addi r15, r15, 1
        cmpwi r15, 128
        blt loop
        li r0, 4                  ; PUTUDEC
        mr r3, r14
        sc
        li r0, 1                  ; EXIT
        li r3, 0
        sc
