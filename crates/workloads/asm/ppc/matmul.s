; 12x12 integer matrix multiply with synthesized elements.
_start: li r10, 0                 ; sum
        li r5, 0                  ; i
iloop:  li r6, 0                  ; j
jloop:  li r7, 0                  ; k
        li r8, 0                  ; c
kloop:  slwi r9, r7, 1            ; 2k
        add r9, r9, r5            ; i + 2k
        andi. r9, r9, 7
        addi r9, r9, 1            ; a
        mulli r11, r7, 3          ; 3k
        add r11, r11, r6          ; 3k + j
        andi. r11, r11, 3
        addi r11, r11, 1          ; b
        mullw r12, r9, r11
        add r8, r8, r12
        addi r7, r7, 1
        cmpwi r7, 12
        blt kloop
        add r10, r10, r8
        addi r6, r6, 1
        cmpwi r6, 12
        blt jloop
        addi r5, r5, 1
        cmpwi r5, 12
        blt iloop
        li r0, 4                  ; PUTUDEC
        mr r3, r10
        sc
        li r0, 1                  ; EXIT
        li r3, 0
        sc
