; 12x12 integer matrix multiply with synthesized elements:
;   a(i,k) = ((i + 2k) & 7) + 1,  b(k,j) = ((3k + j) & 3) + 1
_start: mov 0, s0                  ; sum
        mov 0, t0                  ; i
iloop:  mov 0, t1                  ; j
jloop:  mov 0, t2                  ; k
        mov 0, t3                  ; c accumulator
kloop:  addq t2, t2, t4            ; 2k
        addq t0, t4, t4            ; i + 2k
        and t4, 7, t4
        addq t4, 1, t4             ; a
        mulq t2, 3, t5             ; 3k
        addq t5, t1, t5            ; 3k + j
        and t5, 3, t5
        addq t5, 1, t5             ; b
        mulq t4, t5, t6
        addq t3, t6, t3
        addq t2, 1, t2
        cmplt t2, 12, t7
        bne t7, kloop
        addq s0, t3, s0
        addq t1, 1, t1
        cmplt t1, 12, t7
        bne t7, jloop
        addq t0, 1, t0
        cmplt t0, 12, t7
        bne t7, iloop
        mov 4, v0                  ; PUTUDEC
        mov s0, a0
        callsys
        mov 1, v0                  ; EXIT
        mov 0, a0
        callsys
