; Sum of subtraction-Euclid GCDs over 32 LCG pairs.
_start: mov 42, s0                 ; x
        ldah s3, 1(zero)           ; 65536
        lda s4, 1(s3)              ; 65537
        mov 0, s1                  ; sum
        mov 0, s2                  ; pair counter
pair:   bsr lcg                    ; v0 = next x
        bis v0, 1, t8              ; a = x | 1
        bsr lcg
        bis v0, 1, t9              ; b = x | 1
gloop:  cmpeq t8, t9, t0
        bne t0, done1
        cmpult t9, t8, t0
        beq t0, bless
        subq t8, t9, t8
        br gloop
bless:  subq t9, t8, t9
        br gloop
done1:  addq s1, t8, s1
        addq s2, 1, s2
        cmplt s2, 32, t0
        bne t0, pair
        mov 4, v0                  ; PUTUDEC
        mov s1, a0
        callsys
        mov 1, v0                  ; EXIT
        mov 0, a0
        callsys
; x' = (x*75 + 74) mod 65537; returns in v0, updates s0
lcg:    mulq s0, 75, s0
        lda s0, 74(s0)
        srl s0, 16, t0
        subq s3, 1, t2
        and s0, t2, t1
        subq t1, t0, s0
        cmplt s0, 0, t3
        beq t3, lnofix
        addq s0, s4, s0
lnofix: mov s0, v0
        ret
