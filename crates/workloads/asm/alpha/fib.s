; Naive recursive Fibonacci of 18.
_start: mov 18, a0
        bsr fib
        mov v0, a0
        mov 4, v0                  ; PUTUDEC
        callsys
        mov 1, v0                  ; EXIT
        mov 0, a0
        callsys
fib:    cmplt a0, 2, t0
        beq t0, rec
        mov a0, v0
        ret
rec:    subq sp, 24, sp
        stq ra, 0(sp)
        stq a0, 8(sp)
        subq a0, 1, a0
        bsr fib
        stq v0, 16(sp)
        ldq a0, 8(sp)
        subq a0, 2, a0
        bsr fib
        ldq t1, 16(sp)
        addq v0, t1, v0
        ldq ra, 0(sp)
        addq sp, 24, sp
        ret
