; Sieve of Eratosthenes: count primes below 1000.
_start: ldah t0, ha16(flags)(zero)
        lda t0, slo16(flags)(t0)   ; t0 = flags base
        mov 1000, t7               ; limit
        mov 0, t1                  ; count
        mov 2, t2                  ; i
outer:  cmplt t2, t7, t3
        beq t3, done
        addq t0, t2, t4
        ldbu t5, 0(t4)
        bne t5, next
        addq t1, 1, t1
        mulq t2, t2, t6            ; j = i*i
inner:  cmplt t6, t7, t3
        beq t3, next
        addq t0, t6, t4
        mov 1, t5
        stb t5, 0(t4)
        addq t6, t2, t6
        br inner
next:   addq t2, 1, t2
        br outer
done:   mov 4, v0                  ; PUTUDEC
        mov t1, a0
        callsys
        mov 1, v0                  ; EXIT
        mov 0, a0
        callsys
        .data
flags:  .space 1000
