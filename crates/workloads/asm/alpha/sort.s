; Bubble-sort 64 LCG-generated 15-bit values, then weighted-sum.
_start: ldah s5, ha16(arr)(zero)
        lda s5, slo16(arr)(s5)     ; s5 = arr
        mov 42, s0                 ; x
        ldah s3, 1(zero)           ; 65536
        lda s4, 1(s3)              ; 65537
        mov 0, s2                  ; i
fill:   mulq s0, 75, s0
        lda s0, 74(s0)
        srl s0, 16, t0
        subq s3, 1, t2
        and s0, t2, t1
        subq t1, t0, s0
        cmplt s0, 0, t3
        beq t3, nofix
        addq s0, s4, s0
nofix:  s4addq s2, s5, t4          ; &arr[i] = arr + 4*i
        mov 0x7fff, t6
        and s0, t6, t7
        stl t7, 0(t4)
        addq s2, 1, s2
        cmplt s2, 64, t5
        bne t5, fill
        ; bubble sort
        mov 0, s1                  ; i
bi:     mov 63, t0
        subq t0, s1, t8            ; bound = 63 - i
        mov 0, s2                  ; j
bj:     cmplt s2, t8, t5
        beq t5, binext
        s4addq s2, s5, t4
        ldl t0, 0(t4)
        ldl t1, 4(t4)
        cmple t0, t1, t5
        bne t5, noswap
        stl t1, 0(t4)
        stl t0, 4(t4)
noswap: addq s2, 1, s2
        br bj
binext: addq s1, 1, s1
        cmplt s1, 64, t5
        bne t5, bi
        ; weighted sum
        mov 0, s1
        mov 0, s2
wsum:   s4addq s2, s5, t4
        ldl t0, 0(t4)
        addq s2, 1, t1
        mulq t0, t1, t0
        addq s1, t0, s1
        addq s2, 1, s2
        cmplt s2, 64, t5
        bne t5, wsum
        mov 4, v0                  ; PUTUDEC
        mov s1, a0
        callsys
        mov 1, v0                  ; EXIT
        mov 0, a0
        callsys
        .data
arr:    .space 256
