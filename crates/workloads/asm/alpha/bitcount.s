; Kernighan popcount over 128 LCG values.
_start: mov 42, s0                 ; x
        ldah s3, 1(zero)           ; 65536
        lda s4, 1(s3)              ; 65537
        mov 0, s1                  ; total
        mov 0, s2                  ; n
        mov 128, s5
loop:   mulq s0, 75, s0
        lda s0, 74(s0)
        srl s0, 16, t0
        subq s3, 1, t2
        and s0, t2, t1
        subq t1, t0, s0
        cmplt s0, 0, t3
        beq t3, nofix
        addq s0, s4, s0
nofix:  mov s0, t4                 ; v = x
pop:    beq t4, next
        subq t4, 1, t5
        and t4, t5, t4             ; v &= v - 1
        addq s1, 1, s1
        br pop
next:   addq s2, 1, s2
        cmplt s2, s5, t6
        bne t6, loop
        mov 4, v0                  ; PUTUDEC
        mov s1, a0
        callsys
        mov 1, v0                  ; EXIT
        mov 0, a0
        callsys
