; Fill a 64-byte buffer from the LCG, reverse it, weighted-sum it.
_start: ldah s5, ha16(buf)(zero)
        lda s5, slo16(buf)(s5)     ; s5 = buf
        mov 42, s0                 ; x
        ldah s3, 1(zero)           ; 65536
        lda s4, 1(s3)              ; 65537
        mov 0, s2                  ; i
fill:   mulq s0, 75, s0
        lda s0, 74(s0)
        srl s0, 16, t0
        subq s3, 1, t2
        and s0, t2, t1
        subq t1, t0, s0
        cmplt s0, 0, t3
        beq t3, nofix
        addq s0, s4, s0
nofix:  addq s5, s2, t4
        stb s0, 0(t4)
        addq s2, 1, s2
        cmplt s2, 64, t5
        bne t5, fill
        ; reverse in place
        mov s5, t0                 ; p
        lda t1, 63(s5)             ; q
rev:    cmplt t0, t1, t5
        beq t5, sum
        ldbu t2, 0(t0)
        ldbu t3, 0(t1)
        stb t3, 0(t0)
        stb t2, 0(t1)
        addq t0, 1, t0
        subq t1, 1, t1
        br rev
        ; weighted sum
sum:    mov 0, s1
        mov 0, s2
wsum:   addq s5, s2, t4
        ldbu t2, 0(t4)
        addq s2, 1, t3             ; i+1
        mulq t2, t3, t2
        addq s1, t2, s1
        addq s2, 1, s2
        cmplt s2, 64, t5
        bne t5, wsum
        mov 4, v0                  ; PUTUDEC
        mov s1, a0
        callsys
        mov 1, v0                  ; EXIT
        mov 0, a0
        callsys
        .data
buf:    .space 64
