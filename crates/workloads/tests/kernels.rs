//! Every kernel, on every ISA, must reproduce its golden model exactly.

use lis_core::ONE_ALL;
use lis_runtime::Simulator;
use lis_workloads::{spec_of, suite_of, ISAS};

#[test]
fn all_kernels_match_their_golden_models() {
    for isa in ISAS {
        for w in suite_of(isa) {
            let image = w.assemble().unwrap_or_else(|e| panic!("{isa}/{}: {e}", w.name));
            let mut sim = Simulator::new(spec_of(isa), ONE_ALL).unwrap();
            sim.load_program(&image).unwrap();
            let summary =
                sim.run_to_halt(50_000_000).unwrap_or_else(|e| panic!("{isa}/{}: {e}", w.name));
            assert_eq!(summary.exit_code, 0, "{isa}/{}", w.name);
            assert_eq!(
                String::from_utf8_lossy(sim.stdout()),
                w.expected_stdout(),
                "{isa}/{} output mismatch",
                w.name
            );
        }
    }
}

#[test]
fn kernels_agree_across_isas() {
    // The same algorithm, in three instruction sets, through three different
    // single specifications, must print the same answer.
    for w in suite_of("alpha") {
        let expected = w.expected_stdout();
        for isa in ISAS {
            let w2 = suite_of(isa).iter().find(|x| x.name == w.name).unwrap();
            assert_eq!(w2.expected_stdout(), expected);
        }
    }
}

#[test]
fn suites_are_complete() {
    for isa in ISAS {
        assert_eq!(suite_of(isa).len(), 8, "{isa}");
        for w in suite_of(isa) {
            assert_eq!(w.isa, isa);
            assert!(!w.source.is_empty());
        }
    }
}
