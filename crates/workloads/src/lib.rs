//! # lis-workloads — benchmark kernels and validation suites
//!
//! The paper validates its simulators with SPEC CPU2000 and MediaBench;
//! those binaries are not available here, so this crate substitutes a suite
//! of hand-written assembly kernels per ISA (sieve, recursive Fibonacci,
//! matrix multiply, rolling hash, string reversal, bubble sort) plus a
//! random-program generator. Every kernel implements the same 32-bit
//! algorithm as a Rust golden model in [`golden`], prints one decimal result,
//! and exits — so validation is an exact stdout comparison, identical across
//! the three ISAs and all twelve interfaces.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod gen;
pub mod golden;

use lis_core::IsaSpec;
use lis_mem::Image;

/// One runnable benchmark program.
#[derive(Debug, Clone, Copy)]
pub struct Workload {
    /// Kernel name (shared across ISAs).
    pub name: &'static str,
    /// ISA name (`alpha`, `arm`, `ppc`).
    pub isa: &'static str,
    /// Assembly source.
    pub source: &'static str,
    /// Approximate dynamic instructions for one run (for scaling).
    pub approx_insts: u64,
}

impl Workload {
    /// Assembles the workload.
    ///
    /// # Errors
    ///
    /// Returns the assembler error (these sources are tested, so an error
    /// indicates a toolkit regression).
    pub fn assemble(&self) -> Result<Image, lis_asm::AsmError> {
        match self.isa {
            "alpha" => lis_isa_alpha::assemble(self.source),
            "arm" => lis_isa_arm::assemble(self.source),
            "ppc" => lis_isa_ppc::assemble(self.source),
            other => unreachable!("unknown ISA {other}"),
        }
    }

    /// The expected stdout, from the golden model.
    pub fn expected_stdout(&self) -> String {
        golden::expected(self.name).expect("kernel has a golden model")
    }
}

/// The ISA specification for a workload's ISA name.
pub fn spec_of(isa: &str) -> &'static IsaSpec {
    match isa {
        "alpha" => lis_isa_alpha::spec(),
        "arm" => lis_isa_arm::spec(),
        "ppc" => lis_isa_ppc::spec(),
        other => unreachable!("unknown ISA {other}"),
    }
}

macro_rules! suite {
    ($isa:literal: $($name:literal @ $insts:expr),* $(,)?) => {
        &[$(Workload {
            name: $name,
            isa: $isa,
            source: include_str!(concat!("../asm/", $isa, "/", $name, ".s")),
            approx_insts: $insts,
        }),*]
    };
}

/// The Alpha kernel suite.
pub const ALPHA_SUITE: &[Workload] = suite! {
    "alpha": "sieve" @ 20_000, "fib" @ 80_000, "matmul" @ 30_000,
    "hash31" @ 5_000, "strrev" @ 2_000, "sort" @ 40_000,
    "gcd" @ 30_000, "bitcount" @ 5_000,
};

/// The ARM kernel suite.
pub const ARM_SUITE: &[Workload] = suite! {
    "arm": "sieve" @ 20_000, "fib" @ 80_000, "matmul" @ 30_000,
    "hash31" @ 5_000, "strrev" @ 2_000, "sort" @ 40_000,
    "gcd" @ 30_000, "bitcount" @ 5_000,
};

/// The PowerPC kernel suite.
pub const PPC_SUITE: &[Workload] = suite! {
    "ppc": "sieve" @ 20_000, "fib" @ 80_000, "matmul" @ 30_000,
    "hash31" @ 5_000, "strrev" @ 2_000, "sort" @ 40_000,
    "gcd" @ 30_000, "bitcount" @ 5_000,
};

/// The kernel suite for an ISA by name.
pub fn suite_of(isa: &str) -> &'static [Workload] {
    match isa {
        "alpha" => ALPHA_SUITE,
        "arm" => ARM_SUITE,
        "ppc" => PPC_SUITE,
        other => unreachable!("unknown ISA {other}"),
    }
}

/// Looks up one suite kernel by ISA and name.
pub fn kernel(isa: &str, name: &str) -> Option<&'static Workload> {
    suite_of(isa).iter().find(|w| w.name == name)
}

/// Assembles arbitrary source text for an ISA by name — the one place that
/// routes to the per-ISA assemblers (generated programs use this; suite
/// kernels go through [`Workload::assemble`]).
///
/// # Errors
///
/// Returns the assembler error.
pub fn assemble_source(isa: &str, src: &str) -> Result<Image, lis_asm::AsmError> {
    match isa {
        "alpha" => lis_isa_alpha::assemble(src),
        "arm" => lis_isa_arm::assemble(src),
        "ppc" => lis_isa_ppc::assemble(src),
        other => unreachable!("unknown ISA {other}"),
    }
}

/// All three ISA names, in the paper's order.
pub const ISAS: [&str; 3] = ["alpha", "arm", "ppc"];
