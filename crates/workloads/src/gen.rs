//! Random-program generation.
//!
//! Emits syntactically valid, always-terminating assembly programs for any
//! of the three ISAs: straight-line arithmetic over a small register pool,
//! guarded loads/stores into a scratch buffer, and forward-only conditional
//! branches. The cross-interface property tests run each generated program
//! under every buildset and require bit-identical architectural results —
//! the toolkit's strongest single invariant.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write;

/// Per-ISA syntax fragments used by the generator.
struct Syntax {
    /// Work registers (indexable).
    regs: [&'static str; 4],
    /// `op dst, a, b` three-register ALU ops.
    alu3: &'static [&'static str],
    /// Format a register-immediate add.
    addi: fn(&str, &str, i32) -> String,
    /// Format a word store of `reg` to `offset(base)`.
    store: fn(&str, &str, u32) -> String,
    /// Format a word load.
    load: fn(&str, &str, u32) -> String,
    /// Format "branch to `label` if `reg` is zero".
    beqz: fn(&str, &str) -> String,
    /// Materialize the scratch-buffer base address into a register.
    scratch_base: fn(&str) -> String,
    /// Print `reg` and exit.
    tail: fn(&str) -> String,
}

fn alpha_syntax() -> Syntax {
    Syntax {
        regs: ["t0", "t1", "t2", "t3"],
        alu3: &["addq", "subq", "and", "bis", "xor", "mulq", "addl", "subl"],
        addi: |d, a, v| format!("lda {d}, {v}({a})"),
        store: |r, b, off| format!("stl {r}, {off}({b})"),
        load: |r, b, off| format!("ldl {r}, {off}({b})"),
        beqz: |r, l| format!("beq {r}, {l}"),
        scratch_base: |r| {
            format!("ldah {r}, ha16(scratch)(zero)\n        lda {r}, slo16(scratch)({r})")
        },
        tail: |r| {
            format!(
                "zapnot {r}, 15, a0\n        mov 4, v0\n        callsys\n        mov 1, v0\n        mov 0, a0\n        callsys"
            )
        },
    }
}

fn arm_syntax() -> Syntax {
    Syntax {
        regs: ["r1", "r2", "r3", "r4"],
        alu3: &["add", "sub", "and", "orr", "eor", "mul"],
        addi: |d, a, v| {
            if v >= 0 {
                format!("add {d}, {a}, #{v}")
            } else {
                format!("sub {d}, {a}, #{}", -v)
            }
        },
        store: |r, b, off| format!("str {r}, [{b}, #{off}]"),
        load: |r, b, off| format!("ldr {r}, [{b}, #{off}]"),
        beqz: |r, l| format!("cmp {r}, #0\n        beq {l}"),
        scratch_base: |r| format!("mov {r}, #0x20000"),
        tail: |r| {
            format!(
                "mov r0, {r}\n        mov r7, #4\n        swi 0\n        mov r7, #1\n        mov r0, #0\n        swi 0"
            )
        },
    }
}

fn ppc_syntax() -> Syntax {
    Syntax {
        regs: ["r14", "r15", "r16", "r17"],
        alu3: &["add", "subf", "and", "or", "xor", "mullw"],
        addi: |d, a, v| format!("addi {d}, {a}, {v}"),
        store: |r, b, off| format!("stw {r}, {off}({b})"),
        load: |r, b, off| format!("lwz {r}, {off}({b})"),
        beqz: |r, l| format!("cmpwi {r}, 0\n        beq {l}"),
        scratch_base: |r| format!("lis {r}, 2"),
        tail: |r| {
            format!("mr r3, {r}\n        li r0, 4\n        sc\n        li r0, 1\n        li r3, 0\n        sc")
        },
    }
}

/// Generates a random, terminating program of roughly `len` instructions.
///
/// The same `(isa, seed, len)` always yields the same program.
///
/// # Panics
///
/// Panics on an unknown ISA name.
pub fn random_program(isa: &str, seed: u64, len: usize) -> String {
    let syn = match isa {
        "alpha" => alpha_syntax(),
        "arm" => arm_syntax(),
        "ppc" => ppc_syntax(),
        other => panic!("unknown ISA {other}"),
    };
    // ARM's multiply requires distinct rd/rm on real v5 hardware in some
    // corners; our subset allows it, but mixing in mul freely is fine.
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x5eed_0000);
    let mut out = String::new();
    let base = "r12"; // scratch base register name per ISA
    let base = match isa {
        "alpha" => "s0",
        "arm" => "r5",
        _ => base,
    };
    let _ = writeln!(out, "_start: {}", (syn.scratch_base)(base));
    // Seed the work registers with small constants.
    for (i, r) in syn.regs.iter().enumerate() {
        let zero_src = match isa {
            "alpha" => "zero",
            "arm" => r, // overwritten below with mov
            _ => "r0",
        };
        if isa == "arm" {
            let _ = writeln!(out, "        mov {r}, #{}", i * 3 + 1);
        } else if isa == "ppc" {
            let _ = writeln!(out, "        li {r}, {}", i * 3 + 1);
        } else {
            let _ = writeln!(out, "        {}", (syn.addi)(r, zero_src, (i * 3 + 1) as i32));
        }
    }
    let mut label = 0usize;
    let mut i = 0usize;
    while i < len {
        match rng.gen_range(0..10) {
            0..=4 => {
                let op = syn.alu3[rng.gen_range(0..syn.alu3.len())];
                let d = syn.regs[rng.gen_range(0..4)];
                let a = syn.regs[rng.gen_range(0..4)];
                let b = syn.regs[rng.gen_range(0..4)];
                let _ = writeln!(out, "        {op} {d}, {a}, {b}");
            }
            5 | 6 => {
                let d = syn.regs[rng.gen_range(0..4)];
                let a = syn.regs[rng.gen_range(0..4)];
                let v = rng.gen_range(-99..100);
                let _ = writeln!(out, "        {}", (syn.addi)(d, a, v));
            }
            7 => {
                let r = syn.regs[rng.gen_range(0..4)];
                let off = rng.gen_range(0..16u32) * 4;
                let _ = writeln!(out, "        {}", (syn.store)(r, base, off));
            }
            8 => {
                let r = syn.regs[rng.gen_range(0..4)];
                let off = rng.gen_range(0..16u32) * 4;
                let _ = writeln!(out, "        {}", (syn.load)(r, base, off));
            }
            _ => {
                // Forward conditional branch over 1..3 ALU instructions.
                let r = syn.regs[rng.gen_range(0..4)];
                let l = format!("gl{label}");
                label += 1;
                let _ = writeln!(out, "        {}", (syn.beqz)(r, &l));
                for _ in 0..rng.gen_range(1..=3) {
                    let op = syn.alu3[rng.gen_range(0..syn.alu3.len())];
                    let d = syn.regs[rng.gen_range(0..4)];
                    let a = syn.regs[rng.gen_range(0..4)];
                    let b = syn.regs[rng.gen_range(0..4)];
                    let _ = writeln!(out, "        {op} {d}, {a}, {b}");
                    i += 1;
                }
                let _ = writeln!(out, "{l}:");
            }
        }
        i += 1;
    }
    let _ = writeln!(out, "        {}", (syn.tail)(syn.regs[0]));
    if isa == "alpha" || isa == "ppc" || isa == "arm" {
        let _ = writeln!(out, "        .data\nscratch: .space 64");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(random_program("alpha", 7, 40), random_program("alpha", 7, 40));
        assert_ne!(random_program("alpha", 7, 40), random_program("alpha", 8, 40));
    }

    #[test]
    fn assembles_for_every_isa() {
        for isa in ["alpha", "arm", "ppc"] {
            for seed in 0..5 {
                let src = random_program(isa, seed, 60);
                let result = match isa {
                    "alpha" => lis_isa_alpha::assemble(&src).map(|_| ()),
                    "arm" => lis_isa_arm::assemble(&src).map(|_| ()),
                    _ => lis_isa_ppc::assemble(&src).map(|_| ()),
                };
                result.unwrap_or_else(|e| panic!("{isa} seed {seed}: {e}\n{src}"));
            }
        }
    }
}
