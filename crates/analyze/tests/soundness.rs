//! Soundness: the analyzer's verdicts track what the engine actually does.
//!
//! Two claims, both tested dynamically rather than asserted:
//!
//! 1. For arbitrary buildsets over a real ISA, the pre-flight gate agrees
//!    exactly with simulator construction, and every cell the analyzer
//!    accepts runs a workload in lockstep without divergence (LIS001 is not
//!    just necessary but — on this ISA — sufficient).
//! 2. A fixture that trips LIS002 really is rollback-unsound: running it
//!    past a checkpoint and rolling back leaves corrupted state, while the
//!    fixed variant restores everything.
//! 3. Same story for the translation verifier: a backing declaration that
//!    trips LIS007 really makes the compiled backend diverge from the
//!    reference interface, and cells the translation passes accept run the
//!    workload on the compiled backend without divergence.

use lis_analyze::{
    pass_backing, pass_speculation, preflight, preflight_translation, Severity, LIS001, LIS002,
    LIS007,
};
use lis_core::DynInst;
use lis_core::{
    generic_operand_fetch, generic_writeback, ArchState, BuildsetDef, Exec, Fault, InstClass,
    InstDef, IsaSpec, OperandDir, OperandSpec, RegBacking, RegClass, RegClassDef, Semantic,
    StepActions, Visibility, BLOCK_MIN, F_DEST1, F_SRC1, ONE_ALL_SPEC,
};
use lis_harness::{lockstep, HarnessError, LockstepOutcome};
use lis_mem::{Endian, Image, Section};
use lis_runtime::{synthesize_view, toy, Backend, BuildError, Simulator};
use proptest::prelude::*;

fn image(entry_words: &[u32]) -> Image {
    Image {
        entry: 0x1000,
        sections: vec![Section {
            name: ".text".into(),
            addr: 0x1000,
            bytes: entry_words.iter().flat_map(|w| w.to_le_bytes()).collect(),
        }],
        symbols: Default::default(),
    }
}

// ------------------------------------------------------------------------
// A tiny runnable fixture ISA: one register class, one instruction that
// increments r7. The broken variant does it from a memory-step action by
// writing architectural state directly — exactly the uncovered-write
// pattern LIS002 rejects. The fixed variant routes the same effect through
// declared operands and the accessor path, which the undo log captures.

const GPR: RegClass = RegClass(0);

fn read_gpr(st: &ArchState, idx: u16) -> u64 {
    st.gpr[idx as usize]
}

fn write_gpr(st: &mut ArchState, idx: u16, val: u64) {
    st.gpr[idx as usize] = val;
}

const REG_CLASSES: &[RegClassDef] =
    &[RegClassDef { name: "gpr", count: 16, read: read_gpr, write: write_gpr, backing: None }];

fn sneak_memory_write(ex: &mut Exec<'_>) -> Result<(), Fault> {
    // Bypasses `Exec::write_reg`, so no `UndoRec::Reg` is captured.
    ex.state.gpr[7] = ex.state.gpr[7].wrapping_add(1);
    Ok(())
}

fn dec_inc(ex: &mut Exec<'_>) -> Result<(), Fault> {
    ex.ops.push_dest(GPR, 7);
    ex.ops.push_src(GPR, 7);
    Ok(())
}

fn ev_inc(ex: &mut Exec<'_>) -> Result<(), Fault> {
    ex.set(F_DEST1, ex.get(F_SRC1).wrapping_add(1));
    Ok(())
}

const R7: &[OperandSpec] = &[
    OperandSpec { name: "rd", dir: OperandDir::Dest, class: GPR },
    OperandSpec { name: "rs", dir: OperandDir::Src, class: GPR },
];

static BROKEN_INSTS: &[InstDef] = &[InstDef {
    name: "sneak",
    class: InstClass::Alu,
    mask: 0xff00_0000,
    bits: 0x0100_0000,
    operands: &[],
    actions: StepActions { memory: Some(sneak_memory_write), ..StepActions::NONE },
    extra_flows: &[],
}];

static FIXED_INSTS: &[InstDef] = &[InstDef {
    name: "inc",
    class: InstClass::Alu,
    mask: 0xff00_0000,
    bits: 0x0100_0000,
    operands: R7,
    actions: StepActions {
        decode: Some(dec_inc),
        operand_fetch: Some(generic_operand_fetch),
        evaluate: Some(ev_inc),
        writeback: Some(generic_writeback),
        ..StepActions::NONE
    },
    extra_flows: &[],
}];

const fn fixture(name: &'static str, insts: &'static [InstDef]) -> IsaSpec {
    IsaSpec {
        name,
        word_bits: 32,
        endian: Endian::Little,
        insts,
        reg_classes: REG_CLASSES,
        isa_fields: &[],
        disasm: |_, _| String::new(),
        pc_mask: u32::MAX as u64,
        sp_gpr: 15,
    }
}

static BROKEN: IsaSpec = fixture("broken", BROKEN_INSTS);
static FIXED: IsaSpec = fixture("fixed", FIXED_INSTS);

#[test]
fn lis002_fixture_really_fails_rollback() {
    // The analyzer rejects the speculative cell...
    let diags = pass_speculation(&BROKEN, &ONE_ALL_SPEC);
    assert!(diags.iter().any(|d| d.code == LIS002 && d.severity == Severity::Error), "{diags:?}");
    assert!(matches!(Simulator::new(&BROKEN, ONE_ALL_SPEC), Err(BuildError::Lint { .. })));

    // ...and it is right to: force the build past the gate, run the sneaky
    // instruction under a checkpoint, roll back, and observe that the
    // direct state write survived the rollback. Exactly the unsoundness
    // LIS002 promises to catch.
    let mut sim = Simulator::new_unchecked(&BROKEN, ONE_ALL_SPEC).unwrap();
    sim.load_program(&image(&[0x0100_0000])).unwrap();
    assert_eq!(sim.state.gpr[7], 0);
    let cp = sim.checkpoint().unwrap();
    let mut di = DynInst::new();
    sim.next_inst(&mut di).unwrap();
    assert_eq!(sim.state.gpr[7], 1, "the sneaky write must have happened");
    sim.rollback(cp).unwrap();
    assert_eq!(sim.state.gpr[7], 1, "rollback silently failed to restore r7: the bug is real");
}

#[test]
fn fixed_fixture_is_clean_and_rolls_back() {
    assert!(pass_speculation(&FIXED, &ONE_ALL_SPEC).is_empty());
    assert!(preflight(&FIXED, &ONE_ALL_SPEC).is_ok());

    let mut sim = Simulator::new(&FIXED, ONE_ALL_SPEC).unwrap();
    sim.load_program(&image(&[0x0100_0000])).unwrap();
    let cp = sim.checkpoint().unwrap();
    let mut di = DynInst::new();
    sim.next_inst(&mut di).unwrap();
    assert_eq!(sim.state.gpr[7], 1);
    sim.rollback(cp).unwrap();
    assert_eq!(sim.state.gpr[7], 0, "accessor-routed writes are undone");
}

// ------------------------------------------------------------------------
// A backing declaration the construction-time probe cannot fault: the
// write accessor silently drops index 5, and `IsaSpec::validate` only
// samples indices 0, count/2 and count-1. The RegBacking still claims the
// whole file is direct-lowerable, so the compiled backend stores to
// `gpr[5]` in place while the reference interface routes the write through
// the accessor and loses it. LIS007's exhaustive probe is the static check
// that sees the lie before any program runs.

fn write_gpr_dropping_5(st: &mut ArchState, idx: u16, val: u64) {
    if idx != 5 {
        st.gpr[idx as usize] = val;
    }
}

const BAD_BACKING_CLASSES: &[RegClassDef] = &[RegClassDef {
    name: "gpr",
    count: 16,
    read: read_gpr,
    write: write_gpr_dropping_5,
    backing: Some(RegBacking::Gpr { special: None, write_mask: u64::MAX }),
}];

fn dec_inc5(ex: &mut Exec<'_>) -> Result<(), Fault> {
    ex.ops.push_dest(GPR, 5);
    ex.ops.push_src(GPR, 5);
    Ok(())
}

fn ex_halt(ex: &mut Exec<'_>) -> Result<(), Fault> {
    ex.syscall(lis_core::nr::EXIT, 0, 0)?;
    Ok(())
}

static BAD_BACKING_INSTS: &[InstDef] = &[
    InstDef {
        name: "inc5",
        class: InstClass::Alu,
        mask: 0xff00_0000,
        bits: 0x0100_0000,
        operands: R7,
        actions: StepActions {
            decode: Some(dec_inc5),
            operand_fetch: Some(generic_operand_fetch),
            evaluate: Some(ev_inc),
            writeback: Some(generic_writeback),
            ..StepActions::NONE
        },
        extra_flows: &[],
    },
    InstDef {
        name: "halt",
        class: InstClass::Syscall,
        mask: 0xff00_0000,
        bits: 0x0900_0000,
        operands: &[],
        actions: StepActions { exception: Some(ex_halt), ..StepActions::NONE },
        extra_flows: &[],
    },
];

static BAD_BACKING: IsaSpec = IsaSpec {
    name: "bad-backing",
    word_bits: 32,
    endian: Endian::Little,
    insts: BAD_BACKING_INSTS,
    reg_classes: BAD_BACKING_CLASSES,
    isa_fields: &[],
    disasm: |_, _| String::new(),
    pc_mask: u32::MAX as u64,
    sp_gpr: 15,
};

#[test]
fn lis007_catches_what_the_sparse_probe_misses() {
    // Construction-time validation samples too few indices to notice,
    // and the classic interface passes have nothing to say either.
    assert!(BAD_BACKING.validate().is_ok());
    assert!(preflight(&BAD_BACKING, &BLOCK_MIN).is_ok());

    // The exhaustive LIS007 probe faults the backing with a located error...
    let view = synthesize_view(&BAD_BACKING, &BLOCK_MIN);
    let diags = pass_backing(&BAD_BACKING, &BLOCK_MIN, &view);
    assert!(diags.iter().any(|d| d.code == LIS007 && d.severity == Severity::Error), "{diags:?}");

    // ...so the guarded constructor refuses the cell outright.
    match Simulator::new(&BAD_BACKING, BLOCK_MIN) {
        Err(BuildError::Lint { diags, .. }) => {
            assert!(diags.iter().any(|d| d.code == LIS007), "{diags:?}")
        }
        other => panic!("expected a lint rejection, got {other:?}"),
    }

    // And the rejection is earned: forced past the gate, the compiled
    // backend's direct store diverges from the accessor-routed reference.
    let run = |backend| {
        let mut sim = Simulator::new_unchecked(&BAD_BACKING, BLOCK_MIN).unwrap();
        sim.set_backend(backend);
        sim.load_program(&image(&[0x0100_0000, 0x0900_0000])).unwrap();
        sim.run_to_halt(16).unwrap();
        sim.state.gpr[5]
    };
    assert_eq!(run(Backend::Interpreted), 0, "the accessor drops the write");
    assert_eq!(run(Backend::Compiled), 1, "the lowered direct store lands it");
}

// ------------------------------------------------------------------------
// Arbitrary buildsets over the toy ISA: gate ⟺ build, clean ⇒ lockstep.

/// The sum(1..=10) workload from the engine tests: loops, branches, loads
/// nothing, syscalls twice. 39 instructions, exit code 7, prints "55".
fn loop_program() -> Image {
    image(&[
        toy::addi(2, 0, 0),
        toy::addi(3, 0, 10),
        toy::addi(4, 0, 0),
        toy::add(2, 2, 3),
        toy::addi(3, 3, -1),
        toy::bne(3, 4, -3),
        toy::addi(1, 0, lis_core::nr::PUTUDEC as i16),
        toy::add(2, 2, 0),
        toy::sys(),
        toy::addi(1, 0, lis_core::nr::EXIT as i16),
        toy::addi(2, 0, 7),
        toy::sys(),
    ])
}

fn arb_buildset() -> impl Strategy<Value = BuildsetDef> {
    (
        proptest::sample::select(vec![Semantic::Block, Semantic::One, Semantic::Step]),
        any::<u64>(),
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(|(semantic, bits, operand_ids, speculation)| BuildsetDef {
            name: "prop",
            semantic,
            visibility: Visibility {
                fields: lis_core::FieldSet(bits & lis_core::FieldSet::ALL.0),
                operand_ids,
            },
            speculation,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The pre-flight gates (classic interface passes plus the translation
    /// verifier over the synthesized view) and simulator construction agree
    /// on every cell, and error-level findings on this ISA are always the
    /// LIS001 class the paper describes — the honest synthesized view never
    /// trips LIS006-LIS010.
    #[test]
    fn preflight_agrees_with_simulator_build(bs in arb_buildset()) {
        let classic = preflight(toy::spec(), &bs);
        let view = synthesize_view(toy::spec(), &bs);
        let translation = preflight_translation(toy::spec(), &bs, &view);
        let built = Simulator::new(toy::spec(), bs);
        prop_assert_eq!(classic.is_err() || translation.is_err(), built.is_err());
        prop_assert!(translation.is_ok(), "{:?}", translation);
        if let Err(diags) = &classic {
            prop_assert!(diags.iter().all(|d| d.code == LIS001), "{:?}", diags);
        }
    }

    /// Every cell the analyzer accepts runs the workload in lockstep with
    /// the reference interface, to completion, with the right answer.
    #[test]
    fn accepted_cells_run_clean(bs in arb_buildset()) {
        prop_assume!(preflight(toy::spec(), &bs).is_ok());
        match lockstep(toy::spec(), &loop_program(), bs, Backend::Interpreted) {
            Ok(LockstepOutcome::Halted { exit_code, stdout, .. }) => {
                prop_assert_eq!(exit_code, 7);
                let out = String::from_utf8_lossy(&stdout).into_owned();
                prop_assert_eq!(out, "55\n");
            }
            Ok(other) => prop_assert!(false, "unexpected outcome: {:?}", other),
            Err(HarnessError::Divergence(r)) => {
                prop_assert!(false, "lint-clean cell diverged: {}", r)
            }
            Err(e) => prop_assert!(false, "harness error: {}", e),
        }
    }

    /// Cells the translation verifier accepts run the workload on the
    /// compiled backend in lockstep with the reference interface —
    /// LIS006-LIS009 acceptance is backed by dynamic equivalence, not just
    /// static claims about the synthesized chains.
    #[test]
    fn translation_accepted_cells_run_compiled_clean(bs in arb_buildset()) {
        prop_assume!(preflight(toy::spec(), &bs).is_ok());
        let view = synthesize_view(toy::spec(), &bs);
        prop_assume!(preflight_translation(toy::spec(), &bs, &view).is_ok());
        match lockstep(toy::spec(), &loop_program(), bs, Backend::Compiled) {
            Ok(LockstepOutcome::Halted { exit_code, stdout, .. }) => {
                prop_assert_eq!(exit_code, 7);
                let out = String::from_utf8_lossy(&stdout).into_owned();
                prop_assert_eq!(out, "55\n");
            }
            Ok(other) => prop_assert!(false, "unexpected outcome: {:?}", other),
            Err(HarnessError::Divergence(r)) => {
                prop_assert!(false, "translation-clean cell diverged on compiled: {}", r)
            }
            Err(e) => prop_assert!(false, "harness error: {}", e),
        }
    }
}
