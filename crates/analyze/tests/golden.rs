//! Golden diagnostic tests: one seeded-broken fixture per stable code,
//! the shipped-matrix-lints-clean acceptance check, and pinned renderer
//! output (text, line-delimited JSON, SARIF).

use lis_analyze::{
    analyze, analyze_isa, analyze_translation, has_errors, pass_derivability, pass_isa,
    pass_over_detail, pass_speculation, pass_visibility, preflight, preflight_translation,
    render_json, render_sarif, render_text, Diagnostic, Severity, ViewMutation, LIS001, LIS002,
    LIS003, LIS004, LIS005, LIS006, LIS007, LIS008, LIS009, LIS010,
};
use lis_core::{
    flow, BuildsetDef, Exec, Fault, FieldId, FieldSet, Flow, FlowItem, InstClass, InstDef, IsaSpec,
    OperandDir, OperandSpec, RegClass, Semantic, Step, StepActions, Visibility, F_ALU_OUT,
    STANDARD_BUILDSETS, STEP_ALL,
};
use lis_mem::Endian;
use lis_runtime::synthesize_view;

fn act(_: &mut Exec<'_>) -> Result<(), Fault> {
    Ok(())
}

fn fixture(insts: &'static [InstDef]) -> IsaSpec {
    IsaSpec {
        name: "fix",
        word_bits: 32,
        endian: Endian::Little,
        insts,
        reg_classes: &[],
        isa_fields: &[],
        disasm: |_, _| String::new(),
        pc_mask: u32::MAX as u64,
        sp_gpr: 30,
    }
}

const fn inst(
    name: &'static str,
    class: InstClass,
    bits: u32,
    actions: StepActions,
    extra_flows: &'static [Flow],
) -> InstDef {
    InstDef {
        name,
        class,
        mask: 0xff00_0000,
        bits: bits << 24,
        operands: &[],
        actions,
        extra_flows,
    }
}

const fn bs(name: &'static str, semantic: Semantic, visibility: Visibility) -> BuildsetDef {
    BuildsetDef { name, semantic, visibility, speculation: false }
}

// ---------------------------------------------------------------- LIS001

const LOAD_ONLY: &[InstDef] = &[inst("ld", InstClass::Load, 1, StepActions::NONE, &[])];

#[test]
fn lis001_hidden_flow_under_step_min() {
    let isa = fixture(LOAD_ONLY);
    let cell = bs("step-min", Semantic::Step, Visibility::MIN);
    let diags = pass_visibility(&isa, &cell);
    assert!(!diags.is_empty());
    assert!(diags.iter().all(|d| d.code == LIS001 && d.severity == Severity::Error));
    let ea = diags
        .iter()
        .find(|d| d.message.contains("eff_addr"))
        .expect("hidden eff_addr flow reported");
    assert_eq!(ea.inst, Some("ld"));
    assert_eq!(ea.step, Some(Step::Evaluate));
    assert!(ea.help.contains("publish `eff_addr`"), "{}", ea.help);
    // The same cell under a one-call semantic is clean.
    assert!(pass_visibility(&isa, &bs("one-min", Semantic::One, Visibility::MIN)).is_empty());
}

// ---------------------------------------------------------------- LIS002

const SPEC_UNSAFE: &[InstDef] = &[
    // An ALU op with a memory-step action: raw stores, no UndoRec::Mem path.
    inst("aluwr", InstClass::Alu, 1, StepActions { memory: Some(act), ..StepActions::NONE }, &[]),
    // A branch with an exception-step action: OS effects outside OsMark.
    inst(
        "brx",
        InstClass::Branch,
        2,
        StepActions { exception: Some(act), ..StepActions::NONE },
        &[],
    ),
];

#[test]
fn lis002_uncovered_writes_under_speculation() {
    let isa = fixture(SPEC_UNSAFE);
    let spec = BuildsetDef {
        name: "one-all-spec",
        semantic: Semantic::One,
        visibility: Visibility::ALL,
        speculation: true,
    };
    let diags = pass_speculation(&isa, &spec);
    assert_eq!(diags.len(), 2, "{diags:?}");
    assert!(diags.iter().all(|d| d.code == LIS002 && d.severity == Severity::Error));
    assert_eq!(diags[0].step, Some(Step::Memory));
    assert!(diags[0].message.contains("UndoRec"));
    assert_eq!(diags[1].step, Some(Step::Exception));
    assert!(diags[1].message.contains("OsMark"));
    // Without speculation the same interface is acceptable.
    let nospec = BuildsetDef { speculation: false, ..spec };
    assert!(pass_speculation(&isa, &nospec).is_empty());
}

// ---------------------------------------------------------------- LIS003

#[test]
fn lis003_wasted_detail_under_step_all() {
    let isa = fixture(LOAD_ONLY);
    let diags = pass_over_detail(&isa, &STEP_ALL);
    assert_eq!(diags.len(), 1, "{diags:?}");
    let d = &diags[0];
    assert_eq!(d.code, LIS003);
    assert_eq!(d.severity, Severity::Warning);
    // A pure-load ISA never produces branch resolution or an ALU result:
    // publishing them at step granularity is waste.
    assert!(d.message.contains("br_taken"), "{}", d.message);
    assert!(d.message.contains("alu_out"), "{}", d.message);
    // The minimal sufficient visibility still names what the loads DO carry.
    assert!(d.help.contains("eff_addr"), "{}", d.help);
    assert!(d.help.contains("operand_ids=true"), "{}", d.help);
    // One-call semantics publish one record per instruction for the external
    // consumer; no static waste claim is possible.
    assert!(pass_over_detail(&isa, &bs("one-all", Semantic::One, Visibility::ALL)).is_empty());
}

// ---------------------------------------------------------------- LIS004

#[test]
fn lis004_visibility_outside_lattice() {
    let isa = fixture(LOAD_ONLY);
    let rogue =
        bs("rogue", Semantic::One, Visibility { fields: FieldSet(1 << 40), operand_ids: true });
    let diags = pass_derivability(&isa, &rogue);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].code, LIS004);
    assert_eq!(diags[0].severity, Severity::Error);
    assert!(diags[0].message.contains("bit 40"), "{}", diags[0].message);
}

#[test]
fn lis004_undeclared_slot_warns() {
    let isa = fixture(LOAD_ONLY);
    // Slot 20 is representable (< MAX_FIELDS) but this ISA declares no
    // ISA-specific fields, so a custom mask naming it is suspicious.
    let odd = bs("odd", Semantic::One, Visibility { fields: FieldSet(1 << 20), operand_ids: true });
    let diags = pass_derivability(&isa, &odd);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].code, LIS004);
    assert_eq!(diags[0].severity, Severity::Warning);
    assert!(diags[0].message.contains("f20"), "{}", diags[0].message);
    // The ALL preset deliberately covers every representable slot: exempt.
    assert!(pass_derivability(&isa, &bs("all", Semantic::One, Visibility::ALL)).is_empty());
}

// ---------------------------------------------------------------- LIS005

const NO_EXC_SYSCALL: &[InstDef] = &[inst("sys", InstClass::Syscall, 1, StepActions::NONE, &[])];

const BACKWARDS: &[Flow] = &[flow(FlowItem::Field(F_ALU_OUT), Step::Memory, Step::Evaluate)];
const BACKWARDS_FLOW: &[InstDef] = &[inst("bad", InstClass::Alu, 1, StepActions::NONE, BACKWARDS)];

const DEAD_STEP: &[InstDef] = &[inst(
    "aluwr",
    InstClass::Alu,
    1,
    StepActions { memory: Some(act), ..StepActions::NONE },
    &[],
)];

const UNDECLARED: &[Flow] = &[flow(FlowItem::Field(FieldId(20)), Step::Decode, Step::Evaluate)];
const UNDECLARED_FLOW: &[InstDef] =
    &[inst("odd", InstClass::Alu, 1, StepActions::NONE, UNDECLARED)];

const GPR: RegClass = RegClass(0);
const TWO_SRC: &[OperandSpec] = &[
    OperandSpec { name: "ra", dir: OperandDir::Src, class: GPR },
    OperandSpec { name: "rb", dir: OperandDir::Src, class: GPR },
];

#[test]
fn lis005_syscall_without_exception_action() {
    let diags = pass_isa(&fixture(NO_EXC_SYSCALL));
    let d = diags
        .iter()
        .find(|d| d.step == Some(Step::Exception))
        .expect("missing-exception diagnostic");
    assert_eq!(d.code, LIS005);
    assert_eq!(d.severity, Severity::Error);
    assert!(d.message.contains("never be emulated"), "{}", d.message);
}

#[test]
fn lis005_backwards_flow() {
    let diags = pass_isa(&fixture(BACKWARDS_FLOW));
    assert!(
        diags.iter().any(|d| d.severity == Severity::Error && d.message.contains("backwards")),
        "{diags:?}"
    );
}

#[test]
fn lis005_dead_step_warns() {
    let diags = pass_isa(&fixture(DEAD_STEP));
    let d = diags
        .iter()
        .find(|d| d.message.contains("no dataflow edge touches"))
        .expect("dead-step diagnostic");
    assert_eq!(d.severity, Severity::Warning);
    assert_eq!(d.step, Some(Step::Memory));
}

#[test]
fn lis005_undeclared_field_in_flow_warns() {
    let diags = pass_isa(&fixture(UNDECLARED_FLOW));
    assert!(
        diags.iter().any(|d| d.severity == Severity::Warning && d.message.contains("f20")),
        "{diags:?}"
    );
}

#[test]
fn lis005_operand_count_exceeds_flow_coverage() {
    // A jump carries one source value in its dataflow; declaring two source
    // operands means one can never cross a step boundary.
    static JUMP2: &[InstDef] = &[InstDef {
        name: "j2",
        class: InstClass::Jump,
        mask: 0xff00_0000,
        bits: 0x0100_0000,
        operands: TWO_SRC,
        actions: StepActions::NONE,
        extra_flows: &[],
    }];
    let diags = pass_isa(&fixture(JUMP2));
    assert!(
        diags.iter().any(|d| d.severity == Severity::Error
            && d.message.contains("2 source operands")
            && d.message.contains("1 source value(s)")),
        "{diags:?}"
    );
}

#[test]
fn lis005_invalid_encoding_via_validate() {
    let diags = pass_isa(&fixture(&[]));
    assert!(
        diags
            .iter()
            .any(|d| d.severity == Severity::Error && d.message.contains("encoding validation")),
        "{diags:?}"
    );
}

// ----------------------------------- LIS006–LIS010 (translation passes)
//
// Each translation pass gets a real located finding on a *mutated* view of
// a shipped specification: `synthesize_view` produces the honest synthesis
// decisions, `ViewMutation` skews exactly the one decision the pass
// guards, and the matching code — only — must fire with an anchor.

fn mutated_diags(bs_name: &str, m: ViewMutation) -> Vec<Diagnostic> {
    let isa = lis_isa_alpha::spec();
    let cell = lis_core::find_buildset(bs_name).unwrap();
    let view = synthesize_view(isa, cell).mutated(m);
    analyze_translation(isa, cell, &view)
}

#[test]
fn lis006_observed_but_elided_publish() {
    // Claiming elision under a max-detail visibility must produce a located
    // error for every instruction whose chain materializes visible values,
    // plus the copy-drift and operand-id findings at cell level.
    let diags = mutated_diags("block-all", ViewMutation::ElideObservedPublish);
    assert!(diags.iter().all(|d| d.code == LIS006 && d.severity == Severity::Error), "{diags:?}");
    let located = diags.iter().find(|d| d.inst.is_some()).expect("located finding");
    assert!(
        located.message.contains("while the publication walk is elided"),
        "{}",
        located.message
    );
    assert_eq!(located.buildset, Some("block-all"));
    assert!(diags.iter().any(|d| d.message.contains("operand identifiers")), "{diags:?}");
    // The honest view of the same cell is clean.
    assert!(mutated_diags("block-all", ViewMutation::SkewChain).iter().all(|d| d.code != LIS006));
}

#[test]
fn lis007_skewed_backing_mask() {
    let diags = mutated_diags("one-all", ViewMutation::SkewBackingMask);
    assert_eq!(diags.iter().filter(|d| d.code == LIS007).count(), 1, "{diags:?}");
    let d = diags.iter().find(|d| d.code == LIS007).unwrap();
    assert_eq!(d.severity, Severity::Error);
    assert!(d.inst.is_some(), "backing finding must be anchored to the lowered instruction");
    assert!(d.message.contains("not covered by its RegBacking"), "{}", d.message);
}

#[test]
fn lis008_both_directions() {
    // Direction 1: a speculative cell whose specialized writeback lost its
    // undo capture.
    let diags = mutated_diags("one-all-spec", ViewMutation::StripUndoCapture);
    let d = diags.iter().find(|d| d.code == LIS008).expect("lost-capture finding");
    assert_eq!(d.severity, Severity::Error);
    assert!(d.inst.is_some());
    assert_eq!(d.step, Some(Step::Writeback));
    assert!(d.message.contains("UndoRec capture is lost"), "{}", d.message);
    // Direction 2: a non-speculative cell that still wires undo.
    let diags = mutated_diags("one-all", ViewMutation::FlipUndoWiring);
    let d = diags.iter().find(|d| d.code == LIS008).expect("stray-plumbing finding");
    assert!(d.message.contains("retains undo plumbing"), "{}", d.message);
    // And the speculative cell missing its log entirely.
    let diags = mutated_diags("one-all-spec", ViewMutation::FlipUndoWiring);
    assert!(diags.iter().any(|d| d.code == LIS008 && d.message.contains("without an undo log")));
}

#[test]
fn lis009_leaked_chain_boundary() {
    let diags = mutated_diags("block-all", ViewMutation::LeakChainBoundary);
    let hits: Vec<_> = diags.iter().filter(|d| d.code == LIS009).collect();
    assert!(!hits.is_empty(), "{diags:?}");
    // Every control-transfer instruction of the spec is flagged, anchored.
    let n_ctrl = lis_isa_alpha::spec()
        .insts
        .iter()
        .filter(|d| matches!(d.class, InstClass::Branch | InstClass::Jump | InstClass::Syscall))
        .count();
    assert_eq!(hits.len(), n_ctrl);
    assert!(hits.iter().all(|d| d.inst.is_some() && d.severity == Severity::Error));
    assert!(hits[0].message.contains("escape the chain boundary"), "{}", hits[0].message);
}

#[test]
fn lis010_skewed_chain_and_truncated_ladder() {
    let diags = mutated_diags("one-min", ViewMutation::SkewChain);
    let d = diags.iter().find(|d| d.code == LIS010).expect("chain-drift finding");
    assert_eq!(d.inst, Some(lis_isa_alpha::spec().insts[0].name));
    assert!(d.message.contains("not the specification's own flattened chain"), "{}", d.message);

    let diags = mutated_diags("one-min", ViewMutation::TruncateLadder);
    let d = diags.iter().find(|d| d.code == LIS010).expect("ladder finding");
    assert_eq!(d.inst, None);
    assert!(d.message.contains("does not reach interpreted"), "{}", d.message);
}

// Pinned renderer output for a translation finding — fully deterministic
// (no instruction anchor, message built only from the mutated ladder).
#[test]
fn translation_finding_render_golden() {
    let diags = mutated_diags("one-min", ViewMutation::TruncateLadder);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(
        render_text(&diags),
        "LIS010 error [alpha/one-min] demotion ladder `compiled -> cached` does not reach \
         interpreted via cached\n\
         \x20 = help: every compiled cell needs reachable Cached and Interpreted equivalents \
         so supervision never demotes into a hole\n"
    );
    assert_eq!(
        render_json(&diags),
        "{\"code\":\"LIS010\",\"severity\":\"error\",\"isa\":\"alpha\",\
         \"buildset\":\"one-min\",\"message\":\"demotion ladder `compiled -> cached` does \
         not reach interpreted via cached\",\"help\":\"every compiled cell needs reachable \
         Cached and Interpreted equivalents so supervision never demotes into a hole\"}\n"
    );
}

#[test]
fn preflight_translation_accepts_honest_views_rejects_mutants() {
    let isa = lis_isa_alpha::spec();
    let cell = lis_core::find_buildset("block-all").unwrap();
    let view = synthesize_view(isa, cell);
    assert!(preflight_translation(isa, cell, &view).is_ok());
    let errs = preflight_translation(isa, cell, &view.mutated(ViewMutation::LeakChainBoundary))
        .unwrap_err();
    assert!(errs.iter().all(|d| d.severity == Severity::Error));
    assert!(errs.iter().any(|d| d.code == LIS009));
}

// ------------------------------------------------- shipped matrix is clean

#[test]
fn shipped_matrix_lints_clean() {
    let isas = [lis_isa_alpha::spec(), lis_isa_arm::spec(), lis_isa_ppc::spec()];
    assert_eq!(STANDARD_BUILDSETS.len(), 12);
    for isa in &isas {
        assert!(
            !has_errors(&analyze_isa(isa)),
            "{}: ISA self-check errors: {:?}",
            isa.name,
            analyze_isa(isa)
        );
        for cell in STANDARD_BUILDSETS.iter() {
            let diags = analyze(isa, cell);
            assert!(!has_errors(&diags), "{}/{}: {:?}", isa.name, cell.name, diags);
            assert!(preflight(isa, cell).is_ok(), "{}/{}", isa.name, cell.name);
            // The translation passes are clean on every honest synthesis.
            let view = synthesize_view(isa, cell);
            let tdiags = analyze_translation(isa, cell, &view);
            assert!(!has_errors(&tdiags), "{}/{}: {:?}", isa.name, cell.name, tdiags);
            assert!(preflight_translation(isa, cell, &view).is_ok(), "{}/{}", isa.name, cell.name);
        }
    }
}

#[test]
fn preflight_rejects_broken_cell_errors_only() {
    let isa = fixture(LOAD_ONLY);
    let cell = bs("step-min", Semantic::Step, Visibility::MIN);
    let errs = preflight(&isa, &cell).unwrap_err();
    assert!(errs.iter().all(|d| d.severity == Severity::Error));
    assert!(errs.iter().any(|d| d.code == LIS001));
    // Warnings (here: LIS003 over-detail on step-all) never block the gate.
    assert!(preflight(&isa, &STEP_ALL).is_ok());
}

// ------------------------------------------------------- renderer goldens

fn sample_diags() -> Vec<Diagnostic> {
    vec![
        Diagnostic {
            code: LIS001,
            severity: Severity::Error,
            isa: "toy",
            buildset: Some("step-min"),
            inst: Some("ld"),
            step: Some(Step::Evaluate),
            message: "field `eff_addr` is hidden".into(),
            help: "publish it".into(),
        },
        Diagnostic {
            code: LIS005,
            severity: Severity::Warning,
            isa: "toy",
            buildset: None,
            inst: None,
            step: None,
            message: "a \"quoted\" note".into(),
            help: "h2".into(),
        },
    ]
}

#[test]
fn render_text_golden() {
    assert_eq!(
        render_text(&sample_diags()),
        "LIS001 error [toy/step-min/ld] field `eff_addr` is hidden\n\
         \x20 = help: publish it\n\
         LIS005 warning [toy] a \"quoted\" note\n\
         \x20 = help: h2\n"
    );
}

#[test]
fn render_json_golden() {
    assert_eq!(
        render_json(&sample_diags()),
        "{\"code\":\"LIS001\",\"severity\":\"error\",\"isa\":\"toy\",\
         \"buildset\":\"step-min\",\"inst\":\"ld\",\"step\":\"evaluate\",\
         \"message\":\"field `eff_addr` is hidden\",\"help\":\"publish it\"}\n\
         {\"code\":\"LIS005\",\"severity\":\"warning\",\"isa\":\"toy\",\
         \"message\":\"a \\\"quoted\\\" note\",\"help\":\"h2\"}\n"
    );
}

#[test]
fn sarif_is_valid_json_with_rules_and_results() {
    let sarif = render_sarif(&sample_diags());
    json_check(&sarif).expect("SARIF output must be valid JSON");
    assert!(sarif.contains("\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\""));
    assert!(sarif.contains("\"version\":\"2.1.0\""));
    for code in ["LIS001", "LIS002", "LIS003", "LIS004", "LIS005"] {
        assert!(sarif.contains(&format!("\"id\":\"{code}\"")), "rule {code} missing");
    }
    assert!(sarif.contains("\"ruleId\":\"LIS001\""));
    assert!(sarif.contains("\"level\":\"error\""));
    assert!(sarif.contains("\"fullyQualifiedName\":\"toy/step-min/ld\""));
    // An empty report is still a valid document with all rule metadata.
    let empty = render_sarif(&[]);
    json_check(&empty).expect("empty SARIF must be valid JSON");
    assert!(empty.contains("\"results\":[]"));
}

#[test]
fn json_lines_are_each_valid() {
    let isa = fixture(LOAD_ONLY);
    let cell = bs("step-min", Semantic::Step, Visibility::MIN);
    let out = render_json(&analyze(&isa, &cell));
    assert!(!out.is_empty());
    for line in out.lines() {
        json_check(line).unwrap_or_else(|e| panic!("bad JSON line {line}: {e}"));
    }
}

// A minimal RFC 8259 syntax checker, so "emits valid JSON/SARIF" is an
// actual test rather than a substring hope.
fn json_check(s: &str) -> Result<(), String> {
    let b = s.as_bytes();
    let mut i = 0usize;
    skip_ws(b, &mut i);
    value(b, &mut i)?;
    skip_ws(b, &mut i);
    if i != b.len() {
        return Err(format!("trailing data at byte {i}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], i: &mut usize) {
    while *i < b.len() && matches!(b[*i], b' ' | b'\t' | b'\n' | b'\r') {
        *i += 1;
    }
}

fn value(b: &[u8], i: &mut usize) -> Result<(), String> {
    match b.get(*i) {
        Some(b'{') => {
            *i += 1;
            skip_ws(b, i);
            if b.get(*i) == Some(&b'}') {
                *i += 1;
                return Ok(());
            }
            loop {
                skip_ws(b, i);
                string(b, i)?;
                skip_ws(b, i);
                expect(b, i, b':')?;
                skip_ws(b, i);
                value(b, i)?;
                skip_ws(b, i);
                match b.get(*i) {
                    Some(b',') => *i += 1,
                    Some(b'}') => {
                        *i += 1;
                        return Ok(());
                    }
                    c => return Err(format!("expected , or }} at {i:?}, got {c:?}")),
                }
            }
        }
        Some(b'[') => {
            *i += 1;
            skip_ws(b, i);
            if b.get(*i) == Some(&b']') {
                *i += 1;
                return Ok(());
            }
            loop {
                skip_ws(b, i);
                value(b, i)?;
                skip_ws(b, i);
                match b.get(*i) {
                    Some(b',') => *i += 1,
                    Some(b']') => {
                        *i += 1;
                        return Ok(());
                    }
                    c => return Err(format!("expected , or ] at {i:?}, got {c:?}")),
                }
            }
        }
        Some(b'"') => string(b, i),
        Some(b't') => literal(b, i, "true"),
        Some(b'f') => literal(b, i, "false"),
        Some(b'n') => literal(b, i, "null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => {
            *i += 1;
            while *i < b.len()
                && (b[*i].is_ascii_digit() || matches!(b[*i], b'.' | b'e' | b'E' | b'+' | b'-'))
            {
                *i += 1;
            }
            Ok(())
        }
        c => Err(format!("unexpected {c:?} at {i:?}")),
    }
}

fn string(b: &[u8], i: &mut usize) -> Result<(), String> {
    expect(b, i, b'"')?;
    while let Some(&c) = b.get(*i) {
        *i += 1;
        match c {
            b'"' => return Ok(()),
            b'\\' => {
                let esc = b.get(*i).ok_or("eof in escape")?;
                *i += 1;
                match esc {
                    b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't' => {}
                    b'u' => {
                        for _ in 0..4 {
                            let h = b.get(*i).ok_or("eof in \\u")?;
                            if !h.is_ascii_hexdigit() {
                                return Err("bad \\u digit".into());
                            }
                            *i += 1;
                        }
                    }
                    _ => return Err(format!("bad escape \\{}", *esc as char)),
                }
            }
            c if c < 0x20 => return Err("raw control char in string".into()),
            _ => {}
        }
    }
    Err("unterminated string".into())
}

fn literal(b: &[u8], i: &mut usize, lit: &str) -> Result<(), String> {
    if b[*i..].starts_with(lit.as_bytes()) {
        *i += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at {i:?}"))
    }
}

fn expect(b: &[u8], i: &mut usize, c: u8) -> Result<(), String> {
    if b.get(*i) == Some(&c) {
        *i += 1;
        Ok(())
    } else {
        Err(format!("expected {} at {i:?}", c as char))
    }
}
