//! The analysis passes.
//!
//! Each pass is a pure function over `IsaSpec` × `BuildsetDef` (or the spec
//! alone) returning [`Diagnostic`]s. [`analyze`] runs every buildset-level
//! pass, [`analyze_isa`] the ISA-level self-check, and [`preflight`] the
//! error-level subset used as the cheap gate before building a simulator or
//! starting a lockstep/chaos/sweep run.

use crate::diag::{Diagnostic, Severity, LIS001, LIS002, LIS003, LIS004, LIS005};
use lis_core::{
    check_interface, BuildsetDef, FieldId, FieldSet, FlowItem, InstClass, InstDef, IsaSpec,
    OperandDir, Semantic, Step, Visibility, DEST_FIELDS, MAX_DEST, MAX_FIELDS, MAX_SRC, SRC_FIELDS,
};

/// Specification-level name of `id` under `isa` (`eff_addr`, `cr_nibble`,
/// or `f29` for an undeclared slot).
pub(crate) fn field_name(isa: &IsaSpec, id: FieldId) -> String {
    match isa.all_fields().find(|d| d.id == id) {
        Some(d) => d.name.to_string(),
        None => format!("f{}", id.0),
    }
}

/// Every field slot the specification declares: the common set plus the
/// ISA-specific descriptors.
fn declared_fields(isa: &IsaSpec) -> FieldSet {
    isa.all_fields().map(|d| d.id).collect()
}

fn src_count(def: &InstDef) -> usize {
    def.operands.iter().filter(|o| o.dir == OperandDir::Src).count()
}

fn dest_count(def: &InstDef) -> usize {
    def.operands.iter().filter(|o| o.dir == OperandDir::Dest).count()
}

/// LIS001 — visibility dataflow.
///
/// Wraps the core primitive [`check_interface`] (the original 180-line
/// pairing-constraint lint, kept in `lis-core` as a shim because the
/// runtime's build-time gate sits below this crate) and lifts its findings
/// into coded diagnostics with suggested fixes.
pub fn pass_visibility(isa: &IsaSpec, bs: &BuildsetDef) -> Vec<Diagnostic> {
    let Err(lint) = check_interface(isa, bs) else {
        return Vec::new();
    };
    lint.into_iter()
        .map(|d| {
            let help = match d.flow.item {
                FlowItem::Field(id) => format!(
                    "publish `{}` (e.g. `visibility.plus(FieldSet::of(&[...]))`) or group the \
                     `{}` and `{}` steps into one interface call",
                    field_name(isa, id),
                    d.flow.def,
                    d.flow.used
                ),
                FlowItem::OperandIds => format!(
                    "publish operand identifiers (`operand_ids: true`) or group the `{}` and \
                     `{}` steps into one interface call",
                    d.flow.def, d.flow.used
                ),
            };
            Diagnostic {
                code: LIS001,
                severity: Severity::Error,
                isa: isa.name,
                buildset: Some(bs.name),
                inst: Some(d.inst),
                step: Some(d.flow.def),
                message: format!(
                    "{} is produced in the `{}` call but consumed in the `{}` call and is \
                     hidden by the interface",
                    d.flow.item, d.flow.def, d.flow.used
                ),
                help,
            }
        })
        .collect()
}

/// LIS002 — speculation safety.
///
/// Under a speculative buildset every architectural write must be covered
/// by an undo mechanism: register writes routed through operand accessors
/// and `Exec::write_reg` are captured as `UndoRec::Reg`, stores through
/// `Exec::store` as `UndoRec::Mem`, and OS effects of the exception step of
/// syscall-class instructions by the checkpoint's `OsMark`. An action at a
/// step whose class gives it no such path — a memory action on a
/// non-memory class, an exception action on a non-syscall class — may
/// write state the rollback machinery never records, so it is rejected.
pub fn pass_speculation(isa: &IsaSpec, bs: &BuildsetDef) -> Vec<Diagnostic> {
    if !bs.speculation {
        return Vec::new();
    }
    let mut out = Vec::new();
    for def in isa.insts {
        if def.actions.memory.is_some() && !matches!(def.class, InstClass::Load | InstClass::Store)
        {
            out.push(Diagnostic {
                code: LIS002,
                severity: Severity::Error,
                isa: isa.name,
                buildset: Some(bs.name),
                inst: Some(def.name),
                step: Some(Step::Memory),
                message: format!(
                    "memory-step action on a `{}`-class instruction: its writes cannot be \
                     proven covered by an `UndoRec` variant, so rollback is unsound",
                    def.class
                ),
                help: "classify the instruction as Load or Store so stores are captured as \
                       `UndoRec::Mem`, or route the effect through a destination operand \
                       accessor so it is captured as `UndoRec::Reg`"
                    .into(),
            });
        }
        if def.actions.exception.is_some() && def.class != InstClass::Syscall {
            out.push(Diagnostic {
                code: LIS002,
                severity: Severity::Error,
                isa: isa.name,
                buildset: Some(bs.name),
                inst: Some(def.name),
                step: Some(Step::Exception),
                message: format!(
                    "exception-step action on a `{}`-class instruction: OS effects are only \
                     checkpoint-covered (OsMark) for syscall-class instructions",
                    def.class
                ),
                help: "classify the instruction as Syscall so the checkpoint's `OsMark` \
                       covers its exception-step effects"
                    .into(),
            });
        }
    }
    out
}

/// LIS003 — over-detail.
///
/// For step-semantic buildsets (the only ones with intra-instruction call
/// boundaries) reports every published item no instruction's dataflow
/// consumes across a boundary: pure informational-detail cost — one
/// published value per producing call, the static analog of the sweep's
/// measured detail-cost axis — with no intra-simulator consumer. One
/// aggregated warning per buildset, with the minimal sufficient
/// [`Visibility`] and an estimate of the wasted `detail_units()`.
///
/// Block- and one-semantic buildsets have a single call whose published
/// record *is* the product consumed by the external timing simulator, so
/// no static waste claim is possible and the pass stays silent.
pub fn pass_over_detail(isa: &IsaSpec, bs: &BuildsetDef) -> Vec<Diagnostic> {
    if bs.semantic != Semantic::Step {
        return Vec::new();
    }
    // What genuinely crosses a call boundary somewhere in the ISA.
    let mut needed = FieldSet::EMPTY;
    let mut needed_opids = false;
    // How many instructions produce each field at all (any flow mention):
    // the per-call publication cost of keeping it visible.
    let mut producers = [0u32; MAX_FIELDS];
    for def in isa.insts {
        for flow in def.flows() {
            if let FlowItem::Field(id) = flow.item {
                producers[id.index()] += 1;
            }
            if bs.semantic.call_of(flow.def) == bs.semantic.call_of(flow.used) {
                continue;
            }
            match flow.item {
                FlowItem::Field(id) => needed = needed.with(id),
                FlowItem::OperandIds => needed_opids = true,
            }
        }
    }
    // Only judge slots the specification declares: reserved bits in a
    // preset like `Visibility::ALL` are never valid in a frame and cost
    // nothing to "publish".
    let declared = declared_fields(isa);
    let wasted = FieldSet(bs.visibility.fields.0 & declared.0 & !needed.0);
    let wasted_opids = bs.visibility.operand_ids && !needed_opids;
    if wasted.is_empty() && !wasted_opids {
        return Vec::new();
    }
    let est: u32 = wasted.iter().map(|id| producers[id.index()]).sum();
    let names: Vec<String> = wasted.iter().map(|id| field_name(isa, id)).collect();
    let mut what = Vec::new();
    if !wasted.is_empty() {
        what.push(format!("{} field(s) ({})", wasted.len(), names.join(", ")));
    }
    if wasted_opids {
        what.push("operand identifiers".to_string());
    }
    let min_names: Vec<String> = needed.iter().map(|id| field_name(isa, id)).collect();
    vec![Diagnostic {
        code: LIS003,
        severity: Severity::Warning,
        isa: isa.name,
        buildset: Some(bs.name),
        inst: None,
        step: None,
        message: format!(
            "interface publishes {} that no instruction's dataflow consumes across any of \
             its call boundaries",
            what.join(" and ")
        ),
        help: format!(
            "wasted informational detail costs one published value per producing call \
             (up to {est} per instruction-table row here, counted in \
             SimStats::detail_units); the minimal sufficient visibility for this semantic \
             is {{{}}} with operand_ids={} — keep extra fields only if the external \
             timing consumer reads them",
            min_names.join(", "),
            needed_opids
        ),
    }]
}

/// LIS004 — derivability.
///
/// A buildset is a *projection* of the single specification: its semantic
/// grouping must be an ordered contiguous partition of the seven steps and
/// its visibility a sub-lattice of the max-detail field set. Violations
/// can't be expressed with today's `Semantic` enum, but visibility is an
/// open bitset and custom masks can (and in fixtures do) escape the
/// lattice.
pub fn pass_derivability(isa: &IsaSpec, bs: &BuildsetDef) -> Vec<Diagnostic> {
    let mut out = Vec::new();

    // Visibility ⊆ max-detail: no bits beyond the representable field
    // universe.
    let overflow = bs.visibility.fields.0 & !FieldSet::ALL.0;
    if overflow != 0 {
        let bits: Vec<String> =
            (0..64).filter(|b| overflow & (1 << b) != 0).map(|b| format!("bit {b}")).collect();
        out.push(Diagnostic {
            code: LIS004,
            severity: Severity::Error,
            isa: isa.name,
            buildset: Some(bs.name),
            inst: None,
            step: None,
            message: format!(
                "visibility is not a sub-lattice of the max-detail specification: {} beyond \
                 MAX_FIELDS={MAX_FIELDS}",
                bits.join(", ")
            ),
            help: "restrict the visibility mask to declared field slots (derive it from \
                   Visibility::ALL with `.minus(...)`, or from field constants with \
                   `FieldSet::of`)"
                .into(),
        });
    }

    // Semantic grouping: an ordered contiguous partition of the steps —
    // call ids start at 0, never decrease, never skip, and end at
    // calls_per_inst - 1.
    let calls: Vec<usize> = Step::ALL.iter().map(|s| bs.semantic.call_of(*s)).collect();
    let contiguous = calls[0] == 0
        && calls.windows(2).all(|w| w[1] == w[0] || w[1] == w[0] + 1)
        && calls[Step::COUNT - 1] + 1 == bs.semantic.calls_per_inst();
    if !contiguous {
        out.push(Diagnostic {
            code: LIS004,
            severity: Severity::Error,
            isa: isa.name,
            buildset: Some(bs.name),
            inst: None,
            step: None,
            message: format!(
                "semantic grouping is not an ordered contiguous partition of the seven steps \
                 (call ids {calls:?} for {} calls per instruction)",
                bs.semantic.calls_per_inst()
            ),
            help: "map consecutive steps to consecutive call ids starting at 0".into(),
        });
    }

    // Declared-universe check: a custom mask naming slots this ISA never
    // declares publishes values that cannot exist. The ALL preset is
    // exempt — it deliberately covers every representable slot.
    if bs.visibility.fields != Visibility::ALL.fields {
        let undeclared =
            FieldSet(bs.visibility.fields.0 & FieldSet::ALL.0 & !declared_fields(isa).0);
        if !undeclared.is_empty() {
            let names: Vec<String> = undeclared.iter().map(|id| field_name(isa, id)).collect();
            out.push(Diagnostic {
                code: LIS004,
                severity: Severity::Warning,
                isa: isa.name,
                buildset: Some(bs.name),
                inst: None,
                step: None,
                message: format!(
                    "visibility publishes field slot(s) {{{}}} that the `{}` specification \
                     never declares",
                    names.join(", "),
                    isa.name
                ),
                help: "drop the undeclared slots from the mask, or declare the fields in \
                       the ISA's `isa_fields`"
                    .into(),
            });
        }
    }

    out
}

/// LIS005 — ISA self-check.
///
/// Buildset-independent consistency of the single specification itself:
/// encodings (via [`IsaSpec::validate`]), engine structural limits,
/// operand/dataflow agreement, step liveness, flow ordering, declared
/// fields, and exception handling for syscall-class instructions.
pub fn pass_isa(isa: &IsaSpec) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mk = |severity, inst, step, message: String, help: &str| Diagnostic {
        code: LIS005,
        severity,
        isa: isa.name,
        buildset: None,
        inst,
        step,
        message,
        help: help.into(),
    };

    if let Err(msg) = isa.validate() {
        out.push(mk(
            Severity::Error,
            None,
            None,
            format!("specification failed encoding validation: {msg}"),
            "fix the instruction table so every encoding is reachable and well-formed",
        ));
    }

    let declared = declared_fields(isa);
    for def in isa.insts {
        let n_src = src_count(def);
        let n_dest = dest_count(def);
        if n_src > MAX_SRC {
            out.push(mk(
                Severity::Error,
                Some(def.name),
                None,
                format!("declares {n_src} source operands; the engine supports {MAX_SRC}"),
                "split the instruction or reduce its declared sources",
            ));
        }
        if n_dest > MAX_DEST {
            out.push(mk(
                Severity::Error,
                Some(def.name),
                None,
                format!("declares {n_dest} destination operands; the engine supports {MAX_DEST}"),
                "split the instruction or reduce its declared destinations",
            ));
        }

        // Operand/dataflow agreement: each declared operand must have a
        // carrying edge, or its value can never cross a step boundary.
        let covered_src = SRC_FIELDS
            .iter()
            .filter(|f| def.flows().any(|fl| fl.item == FlowItem::Field(**f)))
            .count();
        let covered_dest = DEST_FIELDS
            .iter()
            .filter(|f| def.flows().any(|fl| fl.item == FlowItem::Field(**f)))
            .count();
        if n_src > covered_src {
            out.push(mk(
                Severity::Error,
                Some(def.name),
                None,
                format!(
                    "declares {n_src} source operands but its dataflow only carries \
                     {covered_src} source value(s)"
                ),
                "add an `extra_flows` edge carrying the missing src field or drop the operand",
            ));
        }
        if n_dest > covered_dest {
            out.push(mk(
                Severity::Error,
                Some(def.name),
                None,
                format!(
                    "declares {n_dest} destination operands but its dataflow only carries \
                     {covered_dest} destination value(s)"
                ),
                "add an `extra_flows` edge carrying the missing dest field or drop the operand",
            ));
        }

        if def.class == InstClass::Syscall && def.actions.exception.is_none() {
            out.push(mk(
                Severity::Error,
                Some(def.name),
                Some(Step::Exception),
                "syscall-class instruction has no exception-step action; the system call can \
                 never be emulated"
                    .into(),
                "attach an `exception:` action that calls `Exec::syscall`",
            ));
        }

        for flow in def.flows() {
            if flow.def > flow.used {
                out.push(mk(
                    Severity::Error,
                    Some(def.name),
                    Some(flow.def),
                    format!(
                        "dataflow edge for {} runs backwards: defined at `{}`, used at `{}`",
                        flow.item, flow.def, flow.used
                    ),
                    "a value must be produced in the same or an earlier step than it is used",
                ));
            }
            if let FlowItem::Field(id) = flow.item {
                if !declared.contains(id) {
                    out.push(mk(
                        Severity::Warning,
                        Some(def.name),
                        Some(flow.def),
                        format!(
                            "dataflow references field slot f{} that the specification never \
                             declares",
                            id.0
                        ),
                        "declare the field in the ISA's `isa_fields` so tools can name it",
                    ));
                }
            }
        }

        // Dead steps: an action at a step no dataflow edge touches is
        // invisible to interface checking — the classic "a step of
        // instruction execution was left out" specification error.
        for step in Step::ALL {
            if step == Step::Fetch || def.actions.action(step).is_none() {
                continue;
            }
            let touched = def.flows().any(|fl| fl.def == step || fl.used == step);
            if !touched {
                out.push(mk(
                    Severity::Warning,
                    Some(def.name),
                    Some(step),
                    format!(
                        "has a `{step}` action but no dataflow edge touches that step; its \
                         effects are invisible to interface checking"
                    ),
                    "declare what the step produces or consumes in `extra_flows`",
                ));
            }
        }
    }
    out
}

/// Runs every buildset-level pass (LIS001–LIS004) for one matrix cell.
pub fn analyze(isa: &IsaSpec, bs: &BuildsetDef) -> Vec<Diagnostic> {
    let mut out = pass_visibility(isa, bs);
    out.extend(pass_speculation(isa, bs));
    out.extend(pass_over_detail(isa, bs));
    out.extend(pass_derivability(isa, bs));
    out
}

/// Runs the ISA-level self-check (LIS005).
pub fn analyze_isa(isa: &IsaSpec) -> Vec<Diagnostic> {
    pass_isa(isa)
}

/// The cheap pre-run gate: every pass, errors only.
///
/// # Errors
///
/// Returns all error-severity diagnostics for the cell (warnings are
/// dropped — a gate must not block on advisory findings).
pub fn preflight(isa: &IsaSpec, bs: &BuildsetDef) -> Result<(), Vec<Diagnostic>> {
    let mut errs: Vec<Diagnostic> = analyze(isa, bs)
        .into_iter()
        .chain(analyze_isa(isa))
        .filter(|d| d.severity == Severity::Error)
        .collect();
    if errs.is_empty() {
        Ok(())
    } else {
        errs.sort_by_key(|d| d.code);
        Err(errs)
    }
}
