//! The analyzable translation IR — the seam between the compiled backend's
//! synthesis and the translation-soundness passes (LIS006–LIS010).
//!
//! The compiled backend (`lis-runtime`'s `compile` module) makes a series
//! of *static* decisions per (ISA, buildset): which publish/undo work the
//! visibility mask elides, which operand accesses lower to direct
//! register-file loads/stores, how each action chain is partitioned around
//! the inlined generic fetch/writeback, and how superblock successor links
//! are validated. Executing those decisions is fast precisely because they
//! are baked in — which is also why they deserve a static proof against the
//! one specification, not just the dynamic lockstep net.
//!
//! [`TranslationView`] is that proof surface: a plain-data snapshot of every
//! synthesis decision, produced side-effect-free by
//! `lis_runtime::synthesize_view` and consumed by
//! [`analyze_translation`](crate::analyze_translation). It lives in this
//! crate (not in the runtime) because the dependency points the other way:
//! the runtime's `Simulator::new` preflight gate calls into the analyzer,
//! so the IR the analyzer consumes must be defined on this side of the
//! boundary.
//!
//! Nothing here holds function pointers or borrows into the translator —
//! the view is freely cloneable, comparable data, which is what makes the
//! deliberate-corruption hook ([`TranslationView::mutated`]) possible: tests
//! can skew a single synthesis decision and prove the matching pass catches
//! exactly that skew.

use lis_core::{FieldSet, InstClass, Step};

/// One lowered operand access in a specialized chain: what the translator
/// decided a source read or destination write compiles to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TirAccess {
    /// The access stayed an accessor call (opaque backing, or the class's
    /// special index).
    Accessor {
        /// Register class of the operand.
        class: u8,
        /// Register index within the class.
        index: u16,
    },
    /// Direct `gpr[index]` load/store. For destination writes `mask` holds
    /// the write mask the translator baked in; source reads carry `None`.
    Gpr {
        /// Register class of the operand.
        class: u8,
        /// Register index within the class.
        index: u16,
        /// Baked write mask (destinations only).
        mask: Option<u64>,
    },
    /// Direct `spr[slot]` load/store, mask as for [`TirAccess::Gpr`].
    Spr {
        /// Register class of the operand.
        class: u8,
        /// Flat special-register slot.
        slot: u8,
        /// Baked write mask (destinations only).
        mask: Option<u64>,
    },
}

impl TirAccess {
    /// The register class the access belongs to.
    pub fn class(&self) -> u8 {
        match *self {
            TirAccess::Accessor { class, .. }
            | TirAccess::Gpr { class, .. }
            | TirAccess::Spr { class, .. } => class,
        }
    }

    /// Whether the access was lowered to a direct register-file operation
    /// (as opposed to staying an accessor call).
    pub fn is_direct(&self) -> bool {
        !matches!(self, TirAccess::Accessor { .. })
    }
}

/// The translation of one instruction definition: every static decision
/// the compiled backend baked in for it under one (ISA, buildset).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TirInst {
    /// Specification name of the instruction.
    pub name: &'static str,
    /// Instruction class (drives block termination).
    pub class: InstClass,
    /// True when translation fell back to re-running decode at execution
    /// time (decode faulted on the canonical encoding or produced more
    /// fields than the capture buffer holds). Fallback instructions are
    /// never operand-specialized.
    pub fallback: bool,
    /// Length of the flattened direct-threaded action chain.
    pub chain_len: u8,
    /// End of the chain range dispatched before the inlined generic fetch.
    pub pre_hi: u8,
    /// Start of the chain range dispatched after the inlined fetch.
    pub mid_lo: u8,
    /// End of the dispatched range (stops before an inlined trailing
    /// generic writeback).
    pub mid_hi: u8,
    /// The lowered source reads run between the pre and mid ranges.
    pub has_fetch: bool,
    /// The lowered destination writes run after the dispatched range.
    pub has_wb: bool,
    /// When `has_wb`, whether the stripped trailing action really was the
    /// specification's generic writeback (undo capture included).
    pub wb_is_generic: bool,
    /// Steps contributing an action to the flattened chain, in chain order.
    pub chain_steps: Vec<Step>,
    /// Lowered source-operand reads (canonical decode).
    pub srcs: Vec<TirAccess>,
    /// Lowered destination-operand writes (canonical decode).
    pub dests: Vec<TirAccess>,
    /// Decode-frame fields the translation captures for replay (the
    /// appended opcode field included).
    pub captured: FieldSet,
    /// Whether the translated chain is pointer-identical to the
    /// specification's own flattened action chain.
    pub chain_matches_spec: bool,
    /// Whether this instruction's class terminates a superblock (so its
    /// deferred PC store lands exactly at the chain boundary).
    pub ends_block: bool,
}

/// The complete, side-effect-free snapshot of a compiled backend's
/// synthesis decisions for one (ISA, buildset) cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TranslationView {
    /// ISA name (must match the spec being analyzed).
    pub isa: &'static str,
    /// Buildset name (must match the cell being analyzed).
    pub buildset: &'static str,
    /// The translator's copy of "skip the publication walk entirely".
    pub elides_publish: bool,
    /// The translator's copy of the buildset's visible-field mask.
    pub vis_fields: FieldSet,
    /// The translator's copy of "operand identifiers are published".
    pub vis_operand_ids: bool,
    /// Whether the buildset declares speculative execution.
    pub speculation: bool,
    /// Whether the synthesized execution context wires an undo log.
    pub undo_wired: bool,
    /// Probed: link following re-validates the target block's entry PC
    /// (a stale hint misses instead of executing the wrong block).
    pub links_validated: bool,
    /// Probed: superblocks rebuilt from exported snapshot parts start with
    /// cold successor links (link hints never cross simulators).
    pub import_links_cold: bool,
    /// The demotion ladder walked from the compiled backend down
    /// (backend names, aggressive-to-trusted order).
    pub ladder: Vec<&'static str>,
    /// Per-instruction translations, in specification order.
    pub insts: Vec<TirInst>,
}

/// A deliberate, targeted corruption of one synthesis decision.
///
/// This is the test-only mutation hook the soundness suite uses to prove
/// the translation passes are not vacuous: each variant skews exactly the
/// decision one pass guards, so the matching LIS code — and only a real
/// check — can flag it. Production code never constructs these; the honest
/// view comes straight from `lis_runtime::synthesize_view`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViewMutation {
    /// Claim the publication walk is elided while the visibility mask still
    /// names observable values (LIS006).
    ElideObservedPublish,
    /// Corrupt the baked write mask of the first direct destination store
    /// (LIS007).
    SkewBackingMask,
    /// Pretend the stripped trailing writeback was not the generic action,
    /// losing its undo capture on a speculative cell (LIS008).
    StripUndoCapture,
    /// Toggle the cell-level undo wiring decision (LIS008).
    FlipUndoWiring,
    /// Mark control-transfer instructions as not ending their superblock,
    /// letting the deferred PC store escape the chain boundary (LIS009).
    LeakChainBoundary,
    /// Detach the first instruction's chain from the specification's
    /// flattened chain (LIS010).
    SkewChain,
    /// Drop the interpreted rung from the demotion ladder (LIS010).
    TruncateLadder,
}

impl TranslationView {
    /// Returns the view with one synthesis decision deliberately skewed —
    /// see [`ViewMutation`]. Test-only by construction: the only honest way
    /// to obtain a view is synthesis, and synthesis never calls this.
    pub fn mutated(mut self, m: ViewMutation) -> TranslationView {
        match m {
            ViewMutation::ElideObservedPublish => {
                self.elides_publish = true;
            }
            ViewMutation::SkewBackingMask => {
                'outer: for inst in &mut self.insts {
                    for d in &mut inst.dests {
                        match d {
                            TirAccess::Gpr { mask: Some(mask), .. }
                            | TirAccess::Spr { mask: Some(mask), .. } => {
                                *mask ^= 0xff00;
                                break 'outer;
                            }
                            _ => {}
                        }
                    }
                }
            }
            ViewMutation::StripUndoCapture => {
                if let Some(inst) = self.insts.iter_mut().find(|i| i.has_wb && !i.dests.is_empty())
                {
                    inst.wb_is_generic = false;
                }
            }
            ViewMutation::FlipUndoWiring => {
                self.undo_wired = !self.undo_wired;
            }
            ViewMutation::LeakChainBoundary => {
                for inst in &mut self.insts {
                    inst.ends_block = false;
                }
            }
            ViewMutation::SkewChain => {
                if let Some(inst) = self.insts.first_mut() {
                    inst.chain_matches_spec = false;
                }
            }
            ViewMutation::TruncateLadder => {
                self.ladder.retain(|&b| b != "interpreted");
            }
        }
        self
    }
}
