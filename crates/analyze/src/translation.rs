//! The translation-soundness passes (LIS006–LIS010).
//!
//! Where `passes` checks the *interface* (spec × buildset), these passes
//! check the *translation*: the static synthesis decisions the compiled
//! superblock backend bakes into each (ISA, buildset) cell. They consume
//! the analyzable IR of [`crate::tir`] — produced side-effect-free by
//! `lis_runtime::synthesize_view` — and prove, without executing anything,
//! that every elision, lowering, undo decision, link rule, and chain
//! specialization is a faithful projection of the single specification.
//!
//! [`analyze_translation`] runs all five for one cell;
//! [`preflight_translation`] is the error-only gate `Simulator::new` and
//! the CLI's pre-run lint use.

use crate::diag::{Diagnostic, Severity, LIS006, LIS007, LIS008, LIS009, LIS010};
use crate::passes::field_name;
use crate::tir::{TirAccess, TirInst, TranslationView};
use lis_core::{
    ArchState, BuildsetDef, FieldSet, FlowItem, InstClass, InstDef, IsaSpec, RegBacking, Step,
    F_OPCODE, NUM_GPR, NUM_SPR, SRC_FIELDS,
};

/// The probe patterns [`lis_core::RegClassDef::validate_backing`] uses —
/// reused here so the exhaustive pass and the runtime assert agree on what
/// "divergence" means.
const PATS: [u64; 2] = [0xA5A5_5A5A_DEAD_BEEF, 0x0123_4567_89AB_CDEF];

/// The specification entry a translated instruction claims to come from.
fn spec_of<'a>(isa: &'a IsaSpec, t: &TirInst) -> Option<&'a InstDef> {
    isa.insts.iter().find(|d| d.name == t.name)
}

/// Whether `class` terminates a superblock (its deferred PC store must land
/// exactly at the chain boundary).
fn ends_block(class: InstClass) -> bool {
    matches!(class, InstClass::Branch | InstClass::Jump | InstClass::Syscall)
}

/// LIS006 — elision soundness.
///
/// Abstract-interprets each translated chain to the set of values it can
/// materialize (replayed decode captures, staged source fields, every flow
/// item produced by a step still in the chain) and proves that whenever the
/// translator elides the publication walk, the visibility mask observes
/// none of them. Also pins the translator's private copies of the
/// visibility decision to the buildset they were synthesized from.
pub fn pass_elision(isa: &IsaSpec, bs: &BuildsetDef, view: &TranslationView) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mk = |severity, inst, message: String, help: &str| Diagnostic {
        code: LIS006,
        severity,
        isa: isa.name,
        buildset: Some(bs.name),
        inst,
        step: None,
        message,
        help: help.into(),
    };

    if view.vis_fields != bs.visibility.fields || view.vis_operand_ids != bs.visibility.operand_ids
    {
        out.push(mk(
            Severity::Error,
            None,
            "translator's visibility copy diverged from the buildset's precomputed mask".into(),
            "re-synthesize the translation from the buildset definition; the elision decision \
             must be a pure function of the visibility mask",
        ));
    }

    if view.elides_publish {
        // The claim under test is the translator's; the observability truth
        // it is judged against is the buildset's, so a skewed elision
        // decision is caught even when the copies drifted too.
        if bs.visibility.operand_ids {
            out.push(mk(
                Severity::Error,
                None,
                "publication walk elided although operand identifiers are published".into(),
                "keep the publication walk whenever `operand_ids` is visible",
            ));
        }
        for t in &view.insts {
            let Some(def) = spec_of(isa, t) else { continue };
            let mut obs = t.captured;
            if t.has_fetch {
                for &f in &SRC_FIELDS[..t.srcs.len()] {
                    obs = obs.with(f);
                }
            }
            for fl in def.flows() {
                let produced = match fl.def {
                    // Header values exist for every dynamic instruction.
                    Step::Fetch => true,
                    // A non-fallback decode's output *is* the capture set,
                    // already counted; fallback re-runs decode in full.
                    Step::Decode => t.fallback,
                    s => t.chain_steps.contains(&s),
                };
                if produced {
                    if let FlowItem::Field(id) = fl.item {
                        obs = obs.with(id);
                    }
                }
            }
            let leaked = FieldSet(bs.visibility.fields.0 & obs.0);
            if !leaked.is_empty() {
                let names: Vec<String> = leaked.iter().map(|id| field_name(isa, id)).collect();
                out.push(mk(
                    Severity::Error,
                    Some(t.name),
                    format!(
                        "chain materializes visible field(s) `{}` while the publication walk \
                         is elided",
                        names.join("`, `")
                    ),
                    "the compiled backend may only skip publication for header-only \
                     interfaces; values the visibility observes must be walked",
                ));
            }
        }
    } else if bs.visibility.header_only() {
        out.push(mk(
            Severity::Warning,
            None,
            "publication walk retained although the interface is header-only".into(),
            "elide the walk for header-only visibility; publishing nothing through it is \
             pure per-call overhead",
        ));
    }
    out
}

/// LIS007 — reg-backing consistency.
///
/// Two halves. First, `validate_backing` promoted from a sparse runtime
/// assert to an exhaustive located diagnostic: every index of every backed
/// class is probed through the accessor functions against the declared
/// slot and write mask. Second, every lowered direct access the translator
/// baked into a specialized chain is checked against the declaration it
/// must have come from — right variant, in-range non-special index,
/// matching baked mask.
pub fn pass_backing(isa: &IsaSpec, bs: &BuildsetDef, view: &TranslationView) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mk = |inst, message: String, help: &str| Diagnostic {
        code: LIS007,
        severity: Severity::Error,
        isa: isa.name,
        buildset: Some(bs.name),
        inst,
        step: None,
        message,
        help: help.into(),
    };

    for def in isa.reg_classes {
        let Some(backing) = def.backing else { continue };
        let mut st = ArchState::new(isa.endian);
        // Report the first divergent index per class; one is proof enough
        // and keeps wide register files from flooding the output.
        'class: {
            match backing {
                RegBacking::Gpr { special, write_mask } => {
                    if def.count as usize > NUM_GPR {
                        out.push(mk(
                            None,
                            format!(
                                "class `{}`: gpr backing but count {} exceeds the register file",
                                def.name, def.count
                            ),
                            "shrink the class or drop the backing declaration",
                        ));
                        break 'class;
                    }
                    for idx in 0..def.count {
                        if Some(idx) == special {
                            continue;
                        }
                        for pat in PATS {
                            (def.write)(&mut st, idx, pat);
                            if st.gpr[idx as usize] != pat & write_mask {
                                out.push(mk(
                                    None,
                                    format!(
                                        "class `{}`: write accessor disagrees with the declared \
                                         gpr backing at index {idx}",
                                        def.name
                                    ),
                                    "fix the accessor, the write mask, or declare the index as \
                                     the class's `special` so it is never lowered",
                                ));
                                break 'class;
                            }
                            if (def.read)(&st, idx) != st.gpr[idx as usize] {
                                out.push(mk(
                                    None,
                                    format!(
                                        "class `{}`: read accessor disagrees with the declared \
                                         gpr backing at index {idx}",
                                        def.name
                                    ),
                                    "fix the accessor or declare the index as `special`",
                                ));
                                break 'class;
                            }
                        }
                    }
                }
                RegBacking::Spr { slot, write_mask } => {
                    if slot as usize >= NUM_SPR {
                        out.push(mk(
                            None,
                            format!(
                                "class `{}`: spr backing slot {slot} exceeds the register file",
                                def.name
                            ),
                            "pick an in-range slot or drop the backing declaration",
                        ));
                        break 'class;
                    }
                    for idx in 0..def.count {
                        for pat in PATS {
                            (def.write)(&mut st, idx, pat);
                            if st.spr[slot as usize] != pat & write_mask {
                                out.push(mk(
                                    None,
                                    format!(
                                        "class `{}`: write accessor disagrees with spr slot \
                                         {slot} at index {idx}",
                                        def.name
                                    ),
                                    "fix the accessor or the declared slot/write mask",
                                ));
                                break 'class;
                            }
                            if (def.read)(&st, idx) != st.spr[slot as usize] {
                                out.push(mk(
                                    None,
                                    format!(
                                        "class `{}`: read accessor disagrees with spr slot \
                                         {slot} at index {idx}",
                                        def.name
                                    ),
                                    "fix the accessor or the declared slot",
                                ));
                                break 'class;
                            }
                        }
                    }
                }
            }
        }
    }

    for t in &view.insts {
        let accesses = t
            .srcs
            .iter()
            .map(|a| ("source read", a))
            .chain(t.dests.iter().map(|a| ("destination write", a)));
        for (what, acc) in accesses {
            let Some(def) = isa.reg_classes.get(acc.class() as usize) else {
                out.push(mk(
                    Some(t.name),
                    format!("lowered {what} names undeclared register class {}", acc.class()),
                    "decode must only emit operand references into declared classes",
                ));
                continue;
            };
            let covered = match (*acc, def.backing) {
                (TirAccess::Accessor { .. }, _) => true,
                (
                    TirAccess::Gpr { index, mask, .. },
                    Some(RegBacking::Gpr { special, write_mask }),
                ) => {
                    special != Some(index)
                        && index < def.count
                        && (index as usize) < NUM_GPR
                        && mask.is_none_or(|m| m == write_mask)
                }
                (
                    TirAccess::Spr { slot, mask, .. },
                    Some(RegBacking::Spr { slot: s, write_mask }),
                ) => slot == s && (slot as usize) < NUM_SPR && mask.is_none_or(|m| m == write_mask),
                _ => false,
            };
            if !covered {
                out.push(mk(
                    Some(t.name),
                    format!(
                        "lowered {what} of class `{}` is not covered by its RegBacking \
                         declaration (variant, index range, special index, or write mask)",
                        def.name
                    ),
                    "a direct register-file access may only be synthesized from a matching \
                     RegBacking declaration; anything else must stay an accessor call",
                ));
            }
        }
    }
    out
}

/// LIS008 — specialized undo coverage.
///
/// The static analog of LIS002 for translated code, checked in both
/// directions: a speculative cell must wire an undo log and keep the
/// generic (accessor-routed, undo-capturing) writeback for every
/// specialized instruction that still writes architectural state; a
/// non-speculative cell must carry zero undo plumbing.
pub fn pass_undo(isa: &IsaSpec, bs: &BuildsetDef, view: &TranslationView) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mk = |inst, message: String, help: &str| Diagnostic {
        code: LIS008,
        severity: Severity::Error,
        isa: isa.name,
        buildset: Some(bs.name),
        inst,
        step: Some(Step::Writeback),
        message,
        help: help.into(),
    };

    if view.speculation != bs.speculation {
        out.push(mk(
            None,
            "translator's speculation copy diverged from the buildset".into(),
            "re-synthesize the translation from the buildset definition",
        ));
        return out;
    }
    if bs.speculation && !view.undo_wired {
        out.push(mk(
            None,
            "speculative cell synthesized without an undo log".into(),
            "wire `Exec::undo` for speculative buildsets; rollback needs every write captured",
        ));
    }
    if !bs.speculation && view.undo_wired {
        out.push(mk(
            None,
            "non-speculative cell retains undo plumbing".into(),
            "non-speculative buildsets elide undo entirely (`elides_undo`); stray plumbing \
             breaks the elision contract and its performance claim",
        ));
    }
    if bs.speculation {
        for t in &view.insts {
            if t.has_wb && !t.dests.is_empty() && !t.wb_is_generic {
                out.push(mk(
                    Some(t.name),
                    format!(
                        "specialized writeback of {} destination(s) no longer routes through \
                         the generic accessor path; its UndoRec capture is lost",
                        t.dests.len()
                    ),
                    "keep the specification's generic writeback in the chain under \
                     speculation — only it records the undo entries rollback replays",
                ));
            }
        }
    }
    out
}

/// LIS009 — chain-link validity.
///
/// Superblock successor links are hints, never trusted: following one must
/// re-validate the target block's entry PC, imported translations must
/// start with cold links, and every control-transfer instruction must
/// terminate its block so the deferred PC store lands exactly at the chain
/// boundary.
pub fn pass_links(isa: &IsaSpec, bs: &BuildsetDef, view: &TranslationView) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mk = |inst, message: String, help: &str| Diagnostic {
        code: LIS009,
        severity: Severity::Error,
        isa: isa.name,
        buildset: Some(bs.name),
        inst,
        step: None,
        message,
        help: help.into(),
    };

    if !view.links_validated {
        out.push(mk(
            None,
            "link following does not re-validate the target block's entry PC".into(),
            "treat successor links as hints: a stale link must miss, never execute a block \
             whose entry state is incompatible",
        ));
    }
    if !view.import_links_cold {
        out.push(mk(
            None,
            "superblocks rebuilt from exported parts start with live successor links".into(),
            "links are per-simulator flow observations; imported translations must start \
             cold and re-learn them",
        ));
    }
    for t in &view.insts {
        if ends_block(t.class) && !t.ends_block {
            out.push(mk(
                Some(t.name),
                format!(
                    "{:?}-class instruction does not terminate its superblock; the deferred \
                     PC store would escape the chain boundary",
                    t.class
                ),
                "end the block at every control transfer so the batched PC store commits \
                 before the next chain link is followed",
            ));
        }
    }
    out
}

/// LIS010 — demotion totality.
///
/// The supervision ladder (Compiled → Cached → Interpreted) is only safe if
/// every rung executes identical semantics: the view must cover exactly the
/// specification's instruction table, each translation's chain must be the
/// spec's own flattened chain partitioned without gaps, each decode replay
/// must be complete, and the ladder itself must reach the interpreted
/// bottom through the cached middle.
pub fn pass_demotion(isa: &IsaSpec, bs: &BuildsetDef, view: &TranslationView) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mk = |inst, message: String, help: &str| Diagnostic {
        code: LIS010,
        severity: Severity::Error,
        isa: isa.name,
        buildset: Some(bs.name),
        inst,
        step: None,
        message,
        help: help.into(),
    };

    if view.isa != isa.name || view.buildset != bs.name {
        out.push(mk(
            None,
            format!("view was synthesized for `{}/{}`, not this cell", view.isa, view.buildset),
            "analyze each cell against its own synthesized view",
        ));
        return out;
    }
    if view.insts.len() != isa.insts.len()
        || view.insts.iter().zip(isa.insts).any(|(t, d)| t.name != d.name)
    {
        out.push(mk(
            None,
            format!(
                "translation covers {} instruction(s); the specification defines {}",
                view.insts.len(),
                isa.insts.len()
            ),
            "the compiled cell must translate exactly the specification's instruction table",
        ));
        return out;
    }

    let first = view.ladder.first().copied();
    let last = view.ladder.last().copied();
    if first != Some("compiled") || last != Some("interpreted") || !view.ladder.contains(&"cached")
    {
        out.push(mk(
            None,
            format!("demotion ladder `{}` does not reach interpreted via cached", {
                view.ladder.join(" -> ")
            }),
            "every compiled cell needs reachable Cached and Interpreted equivalents so \
             supervision never demotes into a hole",
        ));
    }

    for t in &view.insts {
        if !t.chain_matches_spec {
            out.push(mk(
                Some(t.name),
                "translated action chain is not the specification's own flattened chain".into(),
                "the compiled backend may reorder dispatch, not semantics: demoting to \
                 cached/interpreted must re-execute the identical actions",
            ));
        }
        let partition_ok = t.pre_hi <= t.mid_lo
            && t.mid_lo <= t.mid_hi
            && t.mid_hi <= t.chain_len
            && if t.has_fetch { t.mid_lo == t.pre_hi + 1 } else { t.pre_hi == 0 && t.mid_lo == 0 }
            && if t.has_wb { t.mid_hi + 1 == t.chain_len } else { t.mid_hi == t.chain_len };
        if !partition_ok {
            out.push(mk(
                Some(t.name),
                format!(
                    "specialized ranges [0,{}) fetch [{},{}) wb do not reassemble the \
                     {}-action chain",
                    t.pre_hi, t.mid_lo, t.mid_hi, t.chain_len
                ),
                "the dispatched ranges plus the inlined fetch/writeback must cover every \
                 chain slot exactly once",
            ));
        }
        if !t.fallback && !t.captured.contains(F_OPCODE) {
            out.push(mk(
                Some(t.name),
                "decode replay does not restore the opcode field".into(),
                "append the opcode capture so a demoted backend sees the full decode frame",
            ));
        }
    }
    out
}

/// Runs every translation-soundness pass (LIS006–LIS010) for one cell's
/// synthesized view.
pub fn analyze_translation(
    isa: &IsaSpec,
    bs: &BuildsetDef,
    view: &TranslationView,
) -> Vec<Diagnostic> {
    let mut out = pass_elision(isa, bs, view);
    out.extend(pass_backing(isa, bs, view));
    out.extend(pass_undo(isa, bs, view));
    out.extend(pass_links(isa, bs, view));
    out.extend(pass_demotion(isa, bs, view));
    out
}

/// The translation leg of the pre-run gate: every translation pass, errors
/// only. `Simulator::new` runs this on the view it synthesizes, so an
/// unsound translation is refused at build time, mirroring
/// [`crate::preflight`] for the interface passes.
///
/// # Errors
///
/// Returns all error-severity diagnostics for the cell, sorted by code.
pub fn preflight_translation(
    isa: &IsaSpec,
    bs: &BuildsetDef,
    view: &TranslationView,
) -> Result<(), Vec<Diagnostic>> {
    let mut errs: Vec<Diagnostic> = analyze_translation(isa, bs, view)
        .into_iter()
        .filter(|d| d.severity == Severity::Error)
        .collect();
    if errs.is_empty() {
        Ok(())
    } else {
        errs.sort_by_key(|d| d.code);
        Err(errs)
    }
}
