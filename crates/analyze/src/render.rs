//! Diagnostic renderers: human text, line-delimited JSON, and SARIF 2.1.0.
//!
//! All three consume the same `&[Diagnostic]` slice; the choice of format
//! never changes what was found. JSON output is one object per line so it
//! can be streamed into `jq`/log pipelines; SARIF is a single document for
//! code-scanning upload.

use crate::diag::{Diagnostic, PASSES};
use lis_core::{write_json_str, JsonObj};
use std::fmt::Write;

/// Human-readable report: one block per diagnostic, `= help:` on the
/// second line, mirroring rustc's layout.
pub fn render_text(diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diags {
        let _ = writeln!(out, "{d}");
        let _ = writeln!(out, "  = help: {}", d.help);
    }
    out
}

/// Line-delimited JSON: one flat object per diagnostic. Absent location
/// parts (`buildset`, `inst`, `step`) are omitted, not `null`.
pub fn render_json(diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diags {
        let mut obj = JsonObj::new();
        obj.str("code", &d.code.to_string());
        obj.str("severity", d.severity.name());
        obj.str("isa", d.isa);
        if let Some(bs) = d.buildset {
            obj.str("buildset", bs);
        }
        if let Some(inst) = d.inst {
            obj.str("inst", inst);
        }
        if let Some(step) = d.step {
            obj.str("step", step.name());
        }
        obj.str("message", &d.message);
        obj.str("help", &d.help);
        out.push_str(&obj.finish());
        out.push('\n');
    }
    out
}

/// SARIF 2.1.0 document with one run, rule metadata for every pass, and
/// one result per diagnostic (located via SARIF logical locations, since
/// findings live in a specification, not a source file).
pub fn render_sarif(diags: &[Diagnostic]) -> String {
    let mut rules = String::new();
    for (i, p) in PASSES.iter().enumerate() {
        if i > 0 {
            rules.push(',');
        }
        let mut rule = JsonObj::new();
        rule.str("id", &p.code.to_string());
        rule.str("name", p.name);
        rule.raw("shortDescription", &text_obj(p.short));
        rule.raw("fullDescription", &text_obj(p.help));
        // The most severe level the pass can emit (first entry of
        // `levels`) becomes the SARIF default.
        let mut cfg = JsonObj::new();
        cfg.str("level", p.levels.split(',').next().unwrap_or("error").trim());
        rule.raw("defaultConfiguration", &cfg.finish());
        rules.push_str(&rule.finish());
    }

    let mut results = String::new();
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            results.push(',');
        }
        let mut loc_inner = JsonObj::new();
        loc_inner.str("fullyQualifiedName", &d.location());
        loc_inner.str("kind", if d.inst.is_some() { "member" } else { "module" });
        let mut loc = JsonObj::new();
        loc.raw("logicalLocations", &format!("[{}]", loc_inner.finish()));

        let mut msg = String::from(&d.message);
        msg.push_str(" (help: ");
        msg.push_str(&d.help);
        msg.push(')');

        let mut res = JsonObj::new();
        res.str("ruleId", &d.code.to_string());
        res.str("level", d.severity.name());
        res.raw("message", &text_obj(&msg));
        res.raw("locations", &format!("[{}]", loc.finish()));
        results.push_str(&res.finish());
    }

    let mut driver = JsonObj::new();
    driver.str("name", "lis-analyze");
    driver.str("informationUri", env!("CARGO_PKG_REPOSITORY"));
    driver.str("version", env!("CARGO_PKG_VERSION"));
    driver.raw("rules", &format!("[{rules}]"));
    let mut tool = JsonObj::new();
    tool.raw("driver", &driver.finish());
    let mut run = JsonObj::new();
    run.raw("tool", &tool.finish());
    run.raw("results", &format!("[{results}]"));
    let mut doc = JsonObj::new();
    doc.str("$schema", "https://json.schemastore.org/sarif-2.1.0.json");
    doc.str("version", "2.1.0");
    doc.raw("runs", &format!("[{}]", run.finish()));
    let mut out = doc.finish();
    out.push('\n');
    out
}

/// SARIF `message`/`multiformatMessageString` object: `{"text": ...}`.
fn text_obj(text: &str) -> String {
    let mut s = String::from("{\"text\":");
    write_json_str(&mut s, text);
    s.push('}');
    s
}
