//! `lis-analyze` — the multi-pass static interface verifier.
//!
//! The paper's central claim is that one specification should drive every
//! functional/timing interface a simulator exposes. The corollary this
//! crate exploits: because the specification declares each instruction's
//! inter-step dataflow *once*, whole classes of interface bugs that
//! otherwise surface hundreds of instructions into a benchmark run can be
//! rejected statically, before a simulator is even built.
//!
//! Ten passes, each with a stable diagnostic code. LIS001–LIS005 verify
//! the *interface* (spec × buildset); LIS006–LIS010 verify the
//! *translation* — the compiled backend's static synthesis decisions,
//! analyzed through the plain-data IR of [`tir`]:
//!
//! | code     | pass                      | severity | question answered |
//! |----------|---------------------------|----------|-------------------|
//! | `LIS001` | visibility-dataflow       | error    | does every value crossing a call boundary stay visible? |
//! | `LIS002` | speculation-safety        | error    | is every architectural write rollback-covered under speculation? |
//! | `LIS003` | over-detail               | warning  | does the interface publish detail nothing consumes? |
//! | `LIS004` | derivability              | mixed    | is the buildset a genuine projection of the one spec? |
//! | `LIS005` | isa-self-check            | mixed    | is the specification itself consistent? |
//! | `LIS006` | elision-soundness         | mixed    | is every statically elided publish provably unobservable? |
//! | `LIS007` | reg-backing-consistency   | error    | is every lowered register access covered by a validated backing? |
//! | `LIS008` | specialized-undo-coverage | error    | does specialization keep undo exactly when speculation needs it? |
//! | `LIS009` | chain-link-validity       | error    | are link hints re-validated and PC stores chain-bounded? |
//! | `LIS010` | demotion-totality         | error    | can every compiled cell demote to faithful cached/interpreted rungs? |
//!
//! Entry points: [`analyze`] (buildset-level passes for one matrix cell),
//! [`analyze_isa`] (specification self-check), [`analyze_translation`]
//! (translation passes over a synthesized [`tir::TranslationView`]), and
//! the errors-only gates [`preflight`] / [`preflight_translation`] the
//! runtime and CLI run before simulating. Renderers: [`render_text`],
//! [`render_json`] (line-delimited), [`render_sarif`] (SARIF 2.1.0 for
//! code scanning).

pub mod diag;
pub mod passes;
pub mod render;
pub mod tir;
pub mod translation;

pub use diag::{
    count, has_errors, pass_info, Code, Diagnostic, PassInfo, Severity, LIS001, LIS002, LIS003,
    LIS004, LIS005, LIS006, LIS007, LIS008, LIS009, LIS010, PASSES,
};
pub use passes::{
    analyze, analyze_isa, pass_derivability, pass_isa, pass_over_detail, pass_speculation,
    pass_visibility, preflight,
};
pub use render::{render_json, render_sarif, render_text};
pub use tir::{TirAccess, TirInst, TranslationView, ViewMutation};
pub use translation::{
    analyze_translation, pass_backing, pass_demotion, pass_elision, pass_links, pass_undo,
    preflight_translation,
};
