//! `lis-analyze` — the multi-pass static interface verifier.
//!
//! The paper's central claim is that one specification should drive every
//! functional/timing interface a simulator exposes. The corollary this
//! crate exploits: because the specification declares each instruction's
//! inter-step dataflow *once*, whole classes of interface bugs that
//! otherwise surface hundreds of instructions into a benchmark run can be
//! rejected statically, before a simulator is even built.
//!
//! Five passes, each with a stable diagnostic code:
//!
//! | code     | pass                  | severity | question answered |
//! |----------|-----------------------|----------|-------------------|
//! | `LIS001` | visibility-dataflow   | error    | does every value crossing a call boundary stay visible? |
//! | `LIS002` | speculation-safety    | error    | is every architectural write rollback-covered under speculation? |
//! | `LIS003` | over-detail           | warning  | does the interface publish detail nothing consumes? |
//! | `LIS004` | derivability          | mixed    | is the buildset a genuine projection of the one spec? |
//! | `LIS005` | isa-self-check        | mixed    | is the specification itself consistent? |
//!
//! Entry points: [`analyze`] (buildset-level passes for one matrix cell),
//! [`analyze_isa`] (specification self-check), and [`preflight`] (the
//! errors-only gate the runtime and CLI run before simulating). Renderers:
//! [`render_text`], [`render_json`] (line-delimited), [`render_sarif`]
//! (SARIF 2.1.0 for code scanning).

pub mod diag;
pub mod passes;
pub mod render;

pub use diag::{
    count, has_errors, pass_info, Code, Diagnostic, PassInfo, Severity, LIS001, LIS002, LIS003,
    LIS004, LIS005, PASSES,
};
pub use passes::{
    analyze, analyze_isa, pass_derivability, pass_isa, pass_over_detail, pass_speculation,
    pass_visibility, preflight,
};
pub use render::{render_json, render_sarif, render_text};
