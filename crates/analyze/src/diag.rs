//! The shared diagnostic model: stable codes, severities, and locations.
//!
//! Every pass of the analyzer reports through one [`Diagnostic`] shape so
//! that all three renderers (human text, line-delimited JSON, SARIF) and the
//! CI gate can treat findings uniformly. Codes are *stable*: `LIS001` means
//! the same thing in every release, scripts may match on it.

use lis_core::Step;
use std::fmt;

/// A stable diagnostic code (`LIS001`, `LIS002`, ...).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Code(pub u16);

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LIS{:03}", self.0)
    }
}

/// Visibility dataflow: a value crossing an interface-call boundary is
/// hidden by the buildset.
pub const LIS001: Code = Code(1);
/// Speculation safety: an architectural write reachable under a speculative
/// buildset is not provably covered by an `UndoRec` variant.
pub const LIS002: Code = Code(2);
/// Over-detail: the buildset publishes items no inter-step flow consumes
/// across any of its call boundaries.
pub const LIS003: Code = Code(3);
/// Derivability: the buildset is not a genuine projection of the single
/// specification (bad step partition or visibility outside the max-detail
/// lattice).
pub const LIS004: Code = Code(4);
/// ISA self-check: the single specification itself is inconsistent
/// (encodings, operands vs. flows, dead steps, missing exception handling).
pub const LIS005: Code = Code(5);

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suspicious but not known-broken; `--deny-warnings` escalates.
    Warning,
    /// The interface or specification is wrong; simulation would misbehave.
    Error,
}

impl Severity {
    /// Lower-case name, matching the SARIF `level` values.
    pub const fn name(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One finding of one pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable code identifying the pass and rule.
    pub code: Code,
    /// Error or warning.
    pub severity: Severity,
    /// ISA the finding applies to.
    pub isa: &'static str,
    /// Buildset the finding applies to (`None` for ISA-level findings).
    pub buildset: Option<&'static str>,
    /// Instruction the finding is anchored to, when one is.
    pub inst: Option<&'static str>,
    /// Step the finding is anchored to, when one is.
    pub step: Option<Step>,
    /// What is wrong.
    pub message: String,
    /// Suggested fix.
    pub help: String,
}

impl Diagnostic {
    /// Logical location `isa[/buildset][/inst]`, used by every renderer.
    pub fn location(&self) -> String {
        let mut loc = String::from(self.isa);
        if let Some(bs) = self.buildset {
            loc.push('/');
            loc.push_str(bs);
        }
        if let Some(inst) = self.inst {
            loc.push('/');
            loc.push_str(inst);
        }
        loc
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} [{}] {}", self.code, self.severity, self.location(), self.message)
    }
}

/// Whether any diagnostic is an [`Severity::Error`].
pub fn has_errors(diags: &[Diagnostic]) -> bool {
    diags.iter().any(|d| d.severity == Severity::Error)
}

/// Number of diagnostics at `severity`.
pub fn count(diags: &[Diagnostic], severity: Severity) -> usize {
    diags.iter().filter(|d| d.severity == severity).count()
}

/// Registry entry describing one pass, for SARIF rule metadata and docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PassInfo {
    /// The pass's stable code.
    pub code: Code,
    /// Short kebab-case pass name.
    pub name: &'static str,
    /// One-line description (SARIF `shortDescription`).
    pub short: &'static str,
    /// What the pass guarantees when it reports nothing (SARIF `help`).
    pub help: &'static str,
}

/// Every pass the analyzer runs, in code order.
pub const PASSES: &[PassInfo] = &[
    PassInfo {
        code: LIS001,
        name: "visibility-dataflow",
        short: "a value crossing an interface-call boundary must be visible",
        help: "Every inter-step dataflow edge whose producing and consuming steps land in \
               different interface calls must be published by the buildset's visibility; \
               otherwise the value is lost at the boundary and simulation diverges.",
    },
    PassInfo {
        code: LIS002,
        name: "speculation-safety",
        short: "architectural writes under speculation must be undo-covered",
        help: "Under a speculative buildset every architectural write must be captured by an \
               UndoRec variant (Reg via operand accessors, Mem via Exec::store, OS effects via \
               the checkpoint's OsMark) so rollback is provably sound. Actions at steps whose \
               class gives them no accessor-routed write path cannot be proven covered.",
    },
    PassInfo {
        code: LIS003,
        name: "over-detail",
        short: "published items no flow consumes across a call boundary are wasted",
        help: "A field or operand set published by a step-semantic buildset that no \
               instruction's dataflow consumes across any of its call boundaries is pure \
               informational-detail cost (one published value per producing call, cf. \
               SimStats::detail_units) with no intra-simulator consumer.",
    },
    PassInfo {
        code: LIS004,
        name: "derivability",
        short: "every buildset must be a projection of the single specification",
        help: "The semantic grouping must be an ordered contiguous partition of the seven \
               steps and the visibility a sub-lattice of the max-detail field set; anything \
               else is not derivable from the single specification.",
    },
    PassInfo {
        code: LIS005,
        name: "isa-self-check",
        short: "the single specification must be internally consistent",
        help: "Encodings must be reachable and well-formed, declared operands must fit the \
               engine limits and be carried by the instruction's dataflow, steps with actions \
               must appear in the dataflow, and syscall-class instructions must handle the \
               exception step.",
    },
];

/// Looks up the registry entry for `code`.
pub fn pass_info(code: Code) -> Option<&'static PassInfo> {
    PASSES.iter().find(|p| p.code == code)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(code: Code, severity: Severity) -> Diagnostic {
        Diagnostic {
            code,
            severity,
            isa: "alpha",
            buildset: Some("step-min"),
            inst: Some("ldq"),
            step: Some(Step::Memory),
            message: "m".into(),
            help: "h".into(),
        }
    }

    #[test]
    fn code_formats_three_digits() {
        assert_eq!(LIS001.to_string(), "LIS001");
        assert_eq!(Code(42).to_string(), "LIS042");
    }

    #[test]
    fn location_joins_present_parts() {
        let mut d = diag(LIS001, Severity::Error);
        assert_eq!(d.location(), "alpha/step-min/ldq");
        d.inst = None;
        assert_eq!(d.location(), "alpha/step-min");
        d.buildset = None;
        assert_eq!(d.location(), "alpha");
    }

    #[test]
    fn counts_and_errors() {
        let ds = vec![diag(LIS001, Severity::Error), diag(LIS003, Severity::Warning)];
        assert!(has_errors(&ds));
        assert_eq!(count(&ds, Severity::Warning), 1);
        assert!(!has_errors(&ds[1..]));
    }

    #[test]
    fn registry_covers_all_codes_in_order() {
        let codes: Vec<_> = PASSES.iter().map(|p| p.code).collect();
        assert_eq!(codes, vec![LIS001, LIS002, LIS003, LIS004, LIS005]);
        assert!(pass_info(LIS004).unwrap().name.contains("deriv"));
        assert!(pass_info(Code(99)).is_none());
    }
}
