//! The shared diagnostic model: stable codes, severities, and locations.
//!
//! Every pass of the analyzer reports through one [`Diagnostic`] shape so
//! that all three renderers (human text, line-delimited JSON, SARIF) and the
//! CI gate can treat findings uniformly. Codes are *stable*: `LIS001` means
//! the same thing in every release, scripts may match on it.

use lis_core::Step;
use std::fmt;

/// A stable diagnostic code (`LIS001`, `LIS002`, ...).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Code(pub u16);

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LIS{:03}", self.0)
    }
}

/// Visibility dataflow: a value crossing an interface-call boundary is
/// hidden by the buildset.
pub const LIS001: Code = Code(1);
/// Speculation safety: an architectural write reachable under a speculative
/// buildset is not provably covered by an `UndoRec` variant.
pub const LIS002: Code = Code(2);
/// Over-detail: the buildset publishes items no inter-step flow consumes
/// across any of its call boundaries.
pub const LIS003: Code = Code(3);
/// Derivability: the buildset is not a genuine projection of the single
/// specification (bad step partition or visibility outside the max-detail
/// lattice).
pub const LIS004: Code = Code(4);
/// ISA self-check: the single specification itself is inconsistent
/// (encodings, operands vs. flows, dead steps, missing exception handling).
pub const LIS005: Code = Code(5);
/// Elision soundness: the compiled backend statically elides a publish the
/// buildset's visibility mask still observes.
pub const LIS006: Code = Code(6);
/// Reg-backing consistency: a lowered direct register access is not covered
/// by a `RegBacking` declaration that matches the accessor functions.
pub const LIS007: Code = Code(7);
/// Specialized undo coverage: a speculative cell's translation loses an
/// undo capture, or a non-speculative cell still carries undo plumbing.
pub const LIS008: Code = Code(8);
/// Chain-link validity: superblock successor hints are trusted without
/// entry-PC validation, or a deferred PC store escapes a chain boundary.
pub const LIS009: Code = Code(9);
/// Demotion totality: a compiled cell has no faithful Cached/Interpreted
/// equivalent for the supervision ladder to demote into.
pub const LIS010: Code = Code(10);

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suspicious but not known-broken; `--deny-warnings` escalates.
    Warning,
    /// The interface or specification is wrong; simulation would misbehave.
    Error,
}

impl Severity {
    /// Lower-case name, matching the SARIF `level` values.
    pub const fn name(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One finding of one pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable code identifying the pass and rule.
    pub code: Code,
    /// Error or warning.
    pub severity: Severity,
    /// ISA the finding applies to.
    pub isa: &'static str,
    /// Buildset the finding applies to (`None` for ISA-level findings).
    pub buildset: Option<&'static str>,
    /// Instruction the finding is anchored to, when one is.
    pub inst: Option<&'static str>,
    /// Step the finding is anchored to, when one is.
    pub step: Option<Step>,
    /// What is wrong.
    pub message: String,
    /// Suggested fix.
    pub help: String,
}

impl Diagnostic {
    /// Logical location `isa[/buildset][/inst]`, used by every renderer.
    pub fn location(&self) -> String {
        let mut loc = String::from(self.isa);
        if let Some(bs) = self.buildset {
            loc.push('/');
            loc.push_str(bs);
        }
        if let Some(inst) = self.inst {
            loc.push('/');
            loc.push_str(inst);
        }
        loc
    }

    /// Stable suppression fingerprint, used by `lis lint --baseline`.
    ///
    /// **Stability rule:** the fingerprint hashes exactly the code, the
    /// logical location (`isa[/buildset][/inst]`), and the step anchor —
    /// nothing else. Message and help text may be reworded freely without
    /// invalidating a baseline; a finding moving to a new instruction,
    /// buildset, or step counts as *new*. Multiple findings sharing one
    /// (code, location, step) anchor deliberately share a fingerprint.
    pub fn fingerprint(&self) -> u64 {
        // FNV-1a, 64-bit: tiny, dependency-free, and stable across
        // platforms and releases (unlike the std hasher).
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h = (h ^ u64::from(b)).wrapping_mul(PRIME);
            }
        };
        eat(self.code.to_string().as_bytes());
        eat(b"\0");
        eat(self.location().as_bytes());
        eat(b"\0");
        if let Some(step) = self.step {
            eat(step.name().as_bytes());
        }
        h
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} [{}] {}", self.code, self.severity, self.location(), self.message)
    }
}

/// Whether any diagnostic is an [`Severity::Error`].
pub fn has_errors(diags: &[Diagnostic]) -> bool {
    diags.iter().any(|d| d.severity == Severity::Error)
}

/// Number of diagnostics at `severity`.
pub fn count(diags: &[Diagnostic], severity: Severity) -> usize {
    diags.iter().filter(|d| d.severity == severity).count()
}

/// Registry entry describing one pass, for SARIF rule metadata and docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PassInfo {
    /// The pass's stable code.
    pub code: Code,
    /// Short kebab-case pass name.
    pub name: &'static str,
    /// One-line description (SARIF `shortDescription`).
    pub short: &'static str,
    /// What the pass guarantees when it reports nothing (SARIF `help`).
    pub help: &'static str,
    /// Severities the pass can emit, most severe first (`"error"`,
    /// `"warning"`, or `"error, warning"`). The first entry doubles as the
    /// SARIF rule's default level.
    pub levels: &'static str,
}

/// Every pass the analyzer runs, in code order.
pub const PASSES: &[PassInfo] = &[
    PassInfo {
        code: LIS001,
        name: "visibility-dataflow",
        short: "a value crossing an interface-call boundary must be visible",
        help: "Every inter-step dataflow edge whose producing and consuming steps land in \
               different interface calls must be published by the buildset's visibility; \
               otherwise the value is lost at the boundary and simulation diverges.",
        levels: "error",
    },
    PassInfo {
        code: LIS002,
        name: "speculation-safety",
        short: "architectural writes under speculation must be undo-covered",
        help: "Under a speculative buildset every architectural write must be captured by an \
               UndoRec variant (Reg via operand accessors, Mem via Exec::store, OS effects via \
               the checkpoint's OsMark) so rollback is provably sound. Actions at steps whose \
               class gives them no accessor-routed write path cannot be proven covered.",
        levels: "error",
    },
    PassInfo {
        code: LIS003,
        name: "over-detail",
        short: "published items no flow consumes across a call boundary are wasted",
        help: "A field or operand set published by a step-semantic buildset that no \
               instruction's dataflow consumes across any of its call boundaries is pure \
               informational-detail cost (one published value per producing call, cf. \
               SimStats::detail_units) with no intra-simulator consumer.",
        levels: "warning",
    },
    PassInfo {
        code: LIS004,
        name: "derivability",
        short: "every buildset must be a projection of the single specification",
        help: "The semantic grouping must be an ordered contiguous partition of the seven \
               steps and the visibility a sub-lattice of the max-detail field set; anything \
               else is not derivable from the single specification.",
        levels: "error, warning",
    },
    PassInfo {
        code: LIS005,
        name: "isa-self-check",
        short: "the single specification must be internally consistent",
        help: "Encodings must be reachable and well-formed, declared operands must fit the \
               engine limits and be carried by the instruction's dataflow, steps with actions \
               must appear in the dataflow, and syscall-class instructions must handle the \
               exception step.",
        levels: "error, warning",
    },
    PassInfo {
        code: LIS006,
        name: "elision-soundness",
        short: "the compiled backend may only elide publishes the visibility cannot observe",
        help: "The compiled backend skips the publication walk when it believes the buildset's \
               interface is header-only. Abstract interpretation of every translated action \
               chain must show that no field the visibility mask names — and no published \
               operand identifier — is produced by the chain while the walk is elided; an \
               observed-but-elided value silently disappears from the interface.",
        levels: "error, warning",
    },
    PassInfo {
        code: LIS007,
        name: "reg-backing-consistency",
        short: "lowered register accesses must match a validated RegBacking declaration",
        help: "Every direct register-file load/store the translator bakes into a specialized \
               chain must be covered by the class's RegBacking declaration — right variant, \
               in-range index, special index excluded, declared write mask — and the \
               declaration itself must agree with the accessor functions at every index \
               (exhaustive probe, promoting the sparse runtime assert to a located \
               diagnostic).",
        levels: "error",
    },
    PassInfo {
        code: LIS008,
        name: "specialized-undo-coverage",
        short: "specialization must preserve undo capture exactly when speculation needs it",
        help: "On speculative buildsets every architectural write surviving specialization \
               must retain its undo record, so translations keep the generic writeback (the \
               accessor-routed undo path) in the chain. Non-speculative buildsets must carry \
               zero undo plumbing. Both directions are checked: a lost capture breaks \
               rollback, stray plumbing breaks the elision contract.",
        levels: "error",
    },
    PassInfo {
        code: LIS009,
        name: "chain-link-validity",
        short: "superblock link hints must re-validate and PC stores must end at boundaries",
        help: "Superblock successor links are hints: every traversal must validate that the \
               target block really starts at the wanted PC (stale links miss, never execute \
               the wrong block), imported translations must start with cold links, and every \
               control-transfer instruction must terminate its block so the deferred PC \
               store cannot escape a chain boundary.",
        levels: "error",
    },
    PassInfo {
        code: LIS010,
        name: "demotion-totality",
        short: "every compiled cell must have faithful Cached and Interpreted equivalents",
        help: "The supervision ladder demotes Compiled to Cached to Interpreted; that is only \
               safe if each translated instruction replays to the same decode frame and \
               dispatches the specification's own action chain, so the rungs below execute \
               identical semantics. A chain that drifts from the spec, an incomplete decode \
               replay, or a ladder with a missing rung would demote into a hole.",
        levels: "error",
    },
];

/// Looks up the registry entry for `code`.
pub fn pass_info(code: Code) -> Option<&'static PassInfo> {
    PASSES.iter().find(|p| p.code == code)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(code: Code, severity: Severity) -> Diagnostic {
        Diagnostic {
            code,
            severity,
            isa: "alpha",
            buildset: Some("step-min"),
            inst: Some("ldq"),
            step: Some(Step::Memory),
            message: "m".into(),
            help: "h".into(),
        }
    }

    #[test]
    fn code_formats_three_digits() {
        assert_eq!(LIS001.to_string(), "LIS001");
        assert_eq!(Code(42).to_string(), "LIS042");
    }

    #[test]
    fn location_joins_present_parts() {
        let mut d = diag(LIS001, Severity::Error);
        assert_eq!(d.location(), "alpha/step-min/ldq");
        d.inst = None;
        assert_eq!(d.location(), "alpha/step-min");
        d.buildset = None;
        assert_eq!(d.location(), "alpha");
    }

    #[test]
    fn counts_and_errors() {
        let ds = vec![diag(LIS001, Severity::Error), diag(LIS003, Severity::Warning)];
        assert!(has_errors(&ds));
        assert_eq!(count(&ds, Severity::Warning), 1);
        assert!(!has_errors(&ds[1..]));
    }

    #[test]
    fn registry_covers_all_codes_in_order() {
        let codes: Vec<_> = PASSES.iter().map(|p| p.code).collect();
        assert_eq!(
            codes,
            vec![LIS001, LIS002, LIS003, LIS004, LIS005, LIS006, LIS007, LIS008, LIS009, LIS010]
        );
        assert!(pass_info(LIS004).unwrap().name.contains("deriv"));
        assert!(pass_info(LIS007).unwrap().name.contains("backing"));
        assert!(pass_info(Code(99)).is_none());
    }

    #[test]
    fn levels_name_valid_severities_most_severe_first() {
        for p in PASSES {
            assert!(
                matches!(p.levels, "error" | "warning" | "error, warning"),
                "{}: bad levels `{}`",
                p.code,
                p.levels
            );
        }
    }

    #[test]
    fn fingerprint_ignores_wording_but_not_location() {
        let a = diag(LIS007, Severity::Error);
        let mut b = a.clone();
        b.message = "completely reworded".into();
        b.help = "other help".into();
        b.severity = Severity::Warning;
        assert_eq!(a.fingerprint(), b.fingerprint(), "wording must not perturb the fingerprint");

        let mut c = a.clone();
        c.inst = Some("stq");
        assert_ne!(a.fingerprint(), c.fingerprint(), "a new anchor is a new finding");
        let mut d = a.clone();
        d.code = LIS008;
        assert_ne!(a.fingerprint(), d.fingerprint());
        let mut e = a.clone();
        e.step = Some(Step::Writeback);
        assert_ne!(a.fingerprint(), e.fingerprint());
    }
}
