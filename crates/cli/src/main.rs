//! `lis` — assemble and simulate programs under any derived interface.
//!
//! ```text
//! lis run <file.s> --isa alpha [--buildset one-all] [--backend cached|interpreted|compiled]
//!                              [--trace] [--max N] [--deadline S] [--timing ORG]
//! lis asm <file.s> --isa ppc
//! lis disasm <file.s> --isa arm
//! lis kernels [--isa alpha]
//! lis buildsets
//! lis lint [--isa all] [--buildset all] [--format text|json|sarif] [--deny-warnings]
//! lis verify [--isa alpha] [--full] [--no-lint]
//! lis chaos --isa alpha [--chaos-seed N] [--period N] [--runs N] [--no-lint]
//! lis sweep [--jobs N] [--kernels a,b] [--backends both] [-o out.json] [--no-lint]
//! lis trace record <file.s> --isa alpha -o prog.lst
//! lis trace info <prog.lst>
//! lis trace replay <prog.lst> [--shards N] [--stats-json]
//! lis serve --listen 127.0.0.1:4915 [--jobs N] [--drain-deadline S]
//! lis serve --bench-warm [-o BENCH_serve.json] [--time]
//! lis connect <addr>
//! ```
//!
//! `verify` and `chaos` use exit codes 0 (clean), 2 (divergence detected),
//! and 3 (fault-storm or deadline abort); `trace info` and `trace replay`
//! use 4 for a corrupt or unreadable trace; `lint` — and the analyzer
//! pre-flight gate in `verify`/`chaos`/`sweep` — uses 5 for error-level
//! findings; `serve` uses 6 when a shutdown drain abandoned in-flight work;
//! all commands use 1 for ordinary errors and 2 for usage errors.

use lis_core::{BuildsetDef, DynInst, IsaSpec, Semantic, Step, Visibility, STANDARD_BUILDSETS};
use lis_harness::{
    chaos_run, minimize_plan, supervised_run, verify_all, verify_isa, ChaosConfig, ChaosOutcome,
    ChaosPlanFile, HarnessError, PlanExpect, SuperviseConfig, SuperviseOutcome, VerifyConfig,
};
use lis_runtime::{Backend, ChaosPlan, Simulator};
use lis_timing::{
    run_functional_first, run_functional_first_ooo, run_integrated,
    run_speculative_functional_first, run_timing_directed, run_timing_first, CoreConfig, OooConfig,
    TimingConfig,
};
use std::process::ExitCode;

mod opts;
use opts::Opts;

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
        return ExitCode::from(2);
    }
    let cmd = args.remove(0);
    // `trace` carries its own subcommand before the flags.
    let trace_sub = if cmd == "trace" {
        if args.is_empty() || args[0].starts_with('-') {
            eprintln!("error: `lis trace` needs a subcommand: record | info | replay");
            return ExitCode::from(2);
        }
        Some(args.remove(0))
    } else {
        None
    };
    let opts = match Opts::parse(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let result: Result<u8, String> = match cmd.as_str() {
        "run" => cmd_run(&opts).map(|()| 0),
        "asm" => cmd_asm(&opts).map(|()| 0),
        "disasm" => cmd_disasm(&opts).map(|()| 0),
        "kernels" => cmd_kernels(&opts).map(|()| 0),
        "buildsets" => cmd_buildsets().map(|()| 0),
        "lint" => cmd_lint(&opts),
        "verify" => cmd_verify(&opts),
        "chaos" => cmd_chaos(&opts),
        "sweep" => cmd_sweep(&opts),
        "trace" => cmd_trace(trace_sub.as_deref().unwrap_or(""), &opts),
        "serve" => cmd_serve(&opts),
        "connect" => cmd_connect(&opts),
        "help" | "--help" | "-h" => {
            usage();
            Ok(0)
        }
        other => Err(format!("unknown command `{other}`")),
    };
    match result {
        Ok(code) => ExitCode::from(code),
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage() {
    eprintln!(
        "lis — single-specification simulator toolkit

usage:
  lis run <file.s> --isa <alpha|arm|ppc> [options]   assemble and simulate
  lis asm <file.s> --isa <isa>                       assemble, show image
  lis disasm <file.s> --isa <isa>                    assemble, then disassemble
  lis kernels [--isa <isa>]                          run the bundled kernels
  lis buildsets                                      list the standard interfaces
  lis lint [--isa <isa|all>]                         multi-pass static interface +
                                                     translation-soundness verifier
                                                     (codes LIS001-LIS010; see
                                                     `lis lint --list-passes`)
  lis verify [--isa <isa>] [--full]                  lockstep every buildset x backend
                                                     against the one-min reference
                                                     (--backend <b> restricts to one)
  lis chaos --isa <isa> [options]                    seeded fault-injection campaign
  lis sweep [options]                                full buildset x ISA matrix, in
                                                     parallel, to BENCH_sweep.json
  lis trace record <file.s> --isa <isa> [-o <out>]   record a max-detail trace
  lis trace info <trace>                             header, footer, integrity check
  lis trace replay <trace> [--shards <n>]            trace-driven ooo timing replay
  lis serve --listen <addr>                          multi-session simulation daemon
                                                     with a shared translation cache
  lis serve --bench-warm                             cold-vs-warm cache scoreboard,
                                                     to BENCH_serve.json
  lis connect <addr>                                 send request frames from stdin
                                                     to a daemon, print responses

options for `run`:
  --buildset <name>     interface to synthesize (default one-all)
  --backend <b>         cached | interpreted | compiled (default cached)
  --trace               print each dynamic instruction
  --mix                 print an instruction-class mix histogram
  --max <n>             instruction budget (default 100M)
  --deadline <secs>     wall-clock watchdog; exceeding it stops the run
  --timing <org>        drive a timing model instead:
                        integrated | functional-first | timing-directed |
                        timing-first | sff | ooo
  --preset <name>       timing-component preset for the model: classic |
                        aggressive | stream | minimal (selects the branch
                        predictor, replacement policy, and prefetcher;
                        default classic)
  --stats-json          print machine-readable run statistics as one JSON
                        object on stdout instead of the human summary

options for `trace`:
  -o, --output <path>   record: where to write the trace
                        (default: input path with a .lst extension)
  --buildset <name>     record: interface to record (default block-all,
                        the maximum detail every projection derives from)
  --label <name>        record: workload label stored in the header
  --shards <n>          replay: worker threads over chunk ranges (default 1;
                        1 is bit-identical to the execute-driven run)
  --warmup <n>          replay: warm-up chunks per shard (default 4)
  --project <vis>       replay: visibility projection min|decode|all
                        (default decode)
  --timing <p1,p2,..>   replay: re-time the one recording under each named
                        component preset (classic | aggressive | stream |
                        minimal; default classic)
  --stats-json          replay: print the merged TimingReport as JSON
                        (one object per preset when several are named)

options for `sweep`:
  --jobs <n>            worker threads (default: one per core; clamped to
                        the cell count)
  --kernels <a,b,..>    kernel subset (default: the full suite)
  --backends <set>      cached | interpreted | compiled | both | all
                        (default cached)
  --timing <p1,p2,..>   timing presets to cross with the matrix: classic |
                        aggressive | stream | minimal (default classic)
  -o, --output <path>   where to write the JSON (default BENCH_sweep.json)
  --report <path>       also render the Tables I-III markdown report
  --time                include wall-clock MIPS per cell (host-dependent;
                        forfeits bit-identical output)
  --max <n>             per-cell instruction budget
  --deadline <secs>     per-cell watchdog (default 120)
  --retries <n>         retry a panicked cell up to n times, each one
                        backend rung lower (default 2)

options for `lint`:
  --isa <isa|all>       ISA(s) to analyze (default: all)
  --buildset <name|all> buildset cell(s) (default: all standard buildsets)
  --format <f>          text | json | sarif (default text; json is one
                        object per line, sarif is a SARIF 2.1.0 document)
  --deny-warnings       exit 5 on warnings too, not just errors
  --list-passes         print the LIS001-LIS010 pass catalog and exit
  --baseline <file>     absent: write one fingerprint per finding and exit 0;
                        present: suppress the recorded findings and gate only
                        on new ones. Fingerprints hash (code, location, step)
                        only, so rewording messages never invalidates a
                        baseline; a finding at a new anchor is always new

options for `verify` / `chaos`:
  --no-lint             skip the analyzer pre-flight gate (also for sweep)
  --full                verify: all suite kernels (default: quick subset)
  --chaos-seed <n>      chaos: first campaign seed (default 1)
  --period <n>          chaos: mean insts between injections (default 500)
  --runs <n>            chaos: seeded runs in the campaign (default 4)
  --unmap               chaos: also unmap pages (persistent faults)
  --translate           chaos: also poison superblock translations (silent;
                        needs --backend compiled and --paranoid to be seen)
  --paranoid            chaos: shadow each run with a lockstep reference and
                        spot-check the full state every --spot-stride units
  --spot-stride <n>     chaos: units between supervised spot checks (64)
  --demote              recover from divergences by walking the backend
                        demotion ladder instead of aborting (chaos, verify)
  --minimize            chaos: delta-debug a divergence to a minimal
                        .chaosplan repro (implies --paranoid)
  --replay <file>       chaos: replay a committed .chaosplan and check its
                        expect line (0 holds, 3 stale repro, 2 regression)
  --deadline <secs>     chaos: wall-clock limit per run
  --snapshot <path>     crash-snapshot file (default derived:
                        lis-snapshot-<isa>-<buildset>-<seed>.txt)

options for `serve` / `connect`:
  --listen <addr>       address to bind, e.g. 127.0.0.1:4915 (port 0 picks
                        an ephemeral port, printed on startup)
  --jobs <n>            scheduler workers (default: one per core, the same
                        policy as sweep)
  --drain-deadline <s>  seconds a shutdown waits for in-flight sessions
                        before abandoning them (default 10)
  --deadline <secs>     per-request wall-clock watchdog
  --bench-warm          run the cold-vs-warm artifact-store benchmark and
                        write BENCH_serve.json instead of serving
  --time                bench-warm: include wall-clock speedups
  -o, --output <path>   bench-warm: where to write the JSON
  (connect takes the daemon address as its positional argument, reads one
   request frame per stdin line, prints one response line each, and exits
   with the highest status it saw)

exit codes (shared vocabulary: CLI exits, and per-request `status` fields
in serve responses):
  0  clean
  1  other errors (including a crashed, isolated serve request)
  2  usage errors, divergence detected, malformed protocol frames
  3  fault-storm or deadline abort
  4  corrupt or unreadable trace file
  5  lint failure (error-level diagnostics, or warnings under
     --deny-warnings)
  6  serve only: shutdown drain abandoned queued or in-flight work
     (each abandoned job leaves a lis-serve-abandoned-*.txt snapshot)"
    );
}

fn spec_of(isa: &str) -> Result<&'static IsaSpec, String> {
    match isa {
        "alpha" => Ok(lis_isa_alpha::spec()),
        "arm" => Ok(lis_isa_arm::spec()),
        "ppc" => Ok(lis_isa_ppc::spec()),
        "" => Err("missing --isa (alpha|arm|ppc)".into()),
        other => Err(format!("unknown ISA `{other}`")),
    }
}

fn assemble(isa: &str, src: &str) -> Result<lis_mem::Image, String> {
    let r = match isa {
        "alpha" => lis_isa_alpha::assemble(src),
        "arm" => lis_isa_arm::assemble(src),
        "ppc" => lis_isa_ppc::assemble(src),
        other => return Err(format!("unknown ISA `{other}`")),
    };
    r.map_err(|e| e.to_string())
}

fn read_source(opts: &Opts) -> Result<String, String> {
    let path = opts.input.as_ref().ok_or("missing input file (use `-` for stdin)")?;
    if path == "-" {
        use std::io::Read;
        let mut s = String::new();
        std::io::stdin().read_to_string(&mut s).map_err(|e| e.to_string())?;
        Ok(s)
    } else {
        std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))
    }
}

fn cmd_asm(opts: &Opts) -> Result<(), String> {
    let src = read_source(opts)?;
    let image = assemble(&opts.isa, &src)?;
    print!("{image}");
    let mut syms: Vec<_> = image.symbols.iter().collect();
    syms.sort_by_key(|(_, &a)| a);
    for (name, addr) in syms {
        println!("  {addr:#010x} {name}");
    }
    Ok(())
}

fn cmd_disasm(opts: &Opts) -> Result<(), String> {
    let src = read_source(opts)?;
    let spec = spec_of(&opts.isa)?;
    let image = assemble(&opts.isa, &src)?;
    for sec in image.sections.iter().filter(|s| s.name == ".text") {
        for (i, chunk) in sec.bytes.chunks_exact(4).enumerate() {
            let pc = sec.addr + 4 * i as u64;
            let word = match spec.endian {
                lis_mem::Endian::Big => u32::from_be_bytes(chunk.try_into().unwrap()),
                lis_mem::Endian::Little => u32::from_le_bytes(chunk.try_into().unwrap()),
            };
            println!("{pc:#010x}: {word:08x}  {}", (spec.disasm)(word, pc));
        }
    }
    Ok(())
}

fn cmd_run(opts: &Opts) -> Result<(), String> {
    let src = read_source(opts)?;
    let spec = spec_of(&opts.isa)?;
    let image = assemble(&opts.isa, &src)?;

    if let Some(org) = &opts.timing {
        let mut cfg = CoreConfig::default();
        if let Some(name) = &opts.preset {
            cfg.timing = TimingConfig::named(name).ok_or_else(|| {
                format!("unknown --preset `{name}` (valid: {})", TimingConfig::preset_names())
            })?;
        }
        let report = match org.as_str() {
            "integrated" => run_integrated(spec, &image, &cfg),
            "functional-first" => run_functional_first(spec, &image, &cfg),
            "timing-directed" => run_timing_directed(spec, &image, &cfg),
            "timing-first" => run_timing_first(spec, &image, &cfg, None),
            "sff" | "speculative-functional-first" => {
                run_speculative_functional_first(spec, &image, &cfg, &[])
            }
            "ooo" | "functional-first-ooo" => {
                run_functional_first_ooo(spec, &image, &cfg, &OooConfig::default())
            }
            other => return Err(format!("unknown organization `{other}`")),
        }
        .map_err(|e| e.to_string())?;
        if opts.stats_json {
            println!("{}", report.to_json());
        } else {
            print!("{}", String::from_utf8_lossy(&report.stdout));
            eprintln!("{report}");
        }
        return Ok(());
    }
    if opts.preset.is_some() {
        return Err("--preset selects timing components and needs --timing <org>".into());
    }

    let bs = *lis_core::find_buildset(&opts.buildset)
        .ok_or_else(|| format!("unknown buildset `{}` (see `lis buildsets`)", opts.buildset))?;
    let mut sim = Simulator::new(spec, bs).map_err(|e| e.to_string())?;
    sim.set_backend(opts.backend);
    if let Some(secs) = opts.deadline {
        sim.set_deadline(std::time::Duration::from_secs(secs));
    }
    sim.load_program(&image).map_err(|e| e.to_string())?;

    if opts.mix {
        return run_mix(spec, &image, opts.max);
    }
    if opts.trace {
        run_traced(&mut sim, spec, opts.max)?;
    } else {
        match sim.run_to_halt(opts.max) {
            Ok(summary) => {
                if opts.stats_json {
                    let mut o = lis_core::JsonObj::new();
                    o.i64("exit_code", summary.exit_code)
                        .str("stdout", &String::from_utf8_lossy(sim.stdout()))
                        .raw("stats", &sim.stats.to_json());
                    println!("{}", o.finish());
                } else {
                    print!("{}", String::from_utf8_lossy(sim.stdout()));
                    eprintln!("exit {}; {}", summary.exit_code, sim.stats);
                }
            }
            Err(stop) => {
                print!("{}", String::from_utf8_lossy(sim.stdout()));
                return Err(stop.to_string());
            }
        }
    }
    Ok(())
}

/// Prints an instruction-class mix histogram, using the decode-level
/// functional-first interface (exactly the informational detail a profiler
/// needs — opcode indices, nothing more).
fn run_mix(spec: &'static IsaSpec, image: &lis_mem::Image, max: u64) -> Result<(), String> {
    let mut sim = Simulator::new(spec, lis_core::BLOCK_DECODE).map_err(|e| e.to_string())?;
    sim.load_program(image).map_err(|e| e.to_string())?;
    let mut by_class: std::collections::BTreeMap<&str, u64> = Default::default();
    let mut by_inst: std::collections::BTreeMap<&str, u64> = Default::default();
    let mut trace = Vec::new();
    while !sim.state.halted && sim.stats.insts < max {
        sim.next_block(&mut trace).map_err(|e| e.to_string())?;
        for di in &trace {
            if let Some(f) = di.fault {
                return Err(f.to_string());
            }
            if let Some(op) = di.field(lis_core::F_OPCODE) {
                let def = spec.inst(op as u16);
                *by_class.entry(def.class.name()).or_default() += 1;
                *by_inst.entry(def.name).or_default() += 1;
            }
        }
    }
    print!("{}", String::from_utf8_lossy(sim.stdout()));
    let total = sim.stats.insts.max(1);
    eprintln!("instruction mix over {} instructions:", sim.stats.insts);
    for (class, n) in &by_class {
        eprintln!("  {class:<8} {n:>10} ({:5.1}%)", *n as f64 * 100.0 / total as f64);
    }
    let mut top: Vec<_> = by_inst.into_iter().collect();
    top.sort_by_key(|(_, n)| std::cmp::Reverse(*n));
    eprintln!("hottest instructions:");
    for (name, n) in top.iter().take(8) {
        eprintln!("  {name:<8} {n:>10} ({:5.1}%)", *n as f64 * 100.0 / total as f64);
    }
    Ok(())
}

fn run_traced(sim: &mut Simulator, spec: &'static IsaSpec, max: u64) -> Result<(), String> {
    let mut di = DynInst::new();
    let mut trace = Vec::new();
    while !sim.state.halted && sim.stats.insts < max {
        match sim.buildset().semantic {
            Semantic::One => {
                sim.next_inst(&mut di).map_err(|e| e.to_string())?;
                print_di(spec, &di);
                if let Some(f) = di.fault {
                    return Err(f.to_string());
                }
            }
            Semantic::Step => {
                for step in Step::ALL {
                    sim.step_inst(step, &mut di).map_err(|e| e.to_string())?;
                    if let Some(f) = di.fault {
                        print_di(spec, &di);
                        return Err(f.to_string());
                    }
                }
                print_di(spec, &di);
            }
            Semantic::Block => {
                sim.next_block(&mut trace).map_err(|e| e.to_string())?;
                for d in &trace {
                    print_di(spec, d);
                    if let Some(f) = d.fault {
                        return Err(f.to_string());
                    }
                }
            }
        }
    }
    print!("{}", String::from_utf8_lossy(sim.stdout()));
    eprintln!("exit {}; {}", sim.state.exit_code, sim.stats);
    Ok(())
}

fn print_di(spec: &IsaSpec, di: &DynInst) {
    let text = (spec.disasm)(di.header.instr_bits, di.header.pc);
    eprint!("{:#010x}: {text:<32}", di.header.pc);
    for desc in spec.all_fields() {
        if let Some(v) = di.field(desc.id) {
            eprint!(" {}={v:#x}", desc.name);
        }
    }
    eprintln!();
}

fn cmd_kernels(opts: &Opts) -> Result<(), String> {
    let isas: Vec<&str> = if opts.isa.is_empty() {
        lis_workloads::ISAS.to_vec()
    } else {
        vec![match opts.isa.as_str() {
            "alpha" => "alpha",
            "arm" => "arm",
            "ppc" => "ppc",
            other => return Err(format!("unknown ISA `{other}`")),
        }]
    };
    for isa in isas {
        for w in lis_workloads::suite_of(isa) {
            let image = w.assemble().map_err(|e| e.to_string())?;
            let mut sim = Simulator::new(lis_workloads::spec_of(isa), lis_core::ONE_ALL).unwrap();
            sim.load_program(&image).map_err(|e| e.to_string())?;
            let t = std::time::Instant::now();
            let summary = sim.run_to_halt(100_000_000).map_err(|e| e.to_string())?;
            let dt = t.elapsed().as_secs_f64();
            let got = String::from_utf8_lossy(sim.stdout()).into_owned();
            let ok = got == w.expected_stdout();
            println!(
                "{isa:<6} {:<8} {:>9} insts {:>8.2} MIPS  {} (output {})",
                w.name,
                summary.insts,
                summary.insts as f64 / dt / 1e6,
                if ok { "ok" } else { "MISMATCH" },
                got.trim(),
            );
            if !ok {
                return Err(format!("{isa}/{} output mismatch", w.name));
            }
        }
    }
    Ok(())
}

/// `lis lint`: run the full multi-pass static analyzer — interface passes
/// (LIS001–LIS005) plus translation-soundness passes over the compiled
/// backend's synthesized view (LIS006–LIS010) — over every requested
/// ISA × buildset cell. Exit 0 when no error-level diagnostic is found, 5
/// otherwise (`--deny-warnings` escalates warnings into the failing set).
fn cmd_lint(opts: &Opts) -> Result<u8, String> {
    if opts.list_passes {
        println!("{:<8} {:<26} {:<16} summary", "code", "pass", "severities");
        for p in lis_analyze::PASSES {
            println!("{:<8} {:<26} {:<16} {}", p.code.to_string(), p.name, p.levels, p.short);
        }
        return Ok(0);
    }
    let isas: Vec<&'static IsaSpec> = if opts.isa.is_empty() || opts.isa == "all" {
        vec![lis_isa_alpha::spec(), lis_isa_arm::spec(), lis_isa_ppc::spec()]
    } else {
        vec![spec_of(&opts.isa)?]
    };
    let cells: Vec<BuildsetDef> = if !opts.buildset_explicit || opts.buildset == "all" {
        STANDARD_BUILDSETS.to_vec()
    } else {
        vec![*lis_core::find_buildset(&opts.buildset)
            .ok_or_else(|| format!("unknown buildset `{}` (see `lis buildsets`)", opts.buildset))?]
    };

    let mut diags = Vec::new();
    for spec in &isas {
        diags.extend(lis_analyze::analyze_isa(spec));
        for bs in &cells {
            diags.extend(lis_analyze::analyze(spec, bs));
            let view = lis_runtime::synthesize_view(spec, bs);
            diags.extend(lis_analyze::analyze_translation(spec, bs, &view));
        }
    }
    let mut suppressed = 0usize;
    if let Some(path) = opts.baseline.as_deref() {
        match read_baseline(path)? {
            Some(known) => {
                let before = diags.len();
                diags.retain(|d| !known.contains(&d.fingerprint()));
                suppressed = before - diags.len();
            }
            None => {
                write_baseline(path, &diags)?;
                eprintln!(
                    "lint: wrote {} fingerprint(s) to {path}; future runs gate only on new \
                     findings",
                    diags.len()
                );
                return Ok(0);
            }
        }
    }
    let errors = lis_analyze::count(&diags, lis_analyze::Severity::Error);
    let warnings = lis_analyze::count(&diags, lis_analyze::Severity::Warning);

    match opts.format.as_deref() {
        None | Some("text") => {
            print!("{}", lis_analyze::render_text(&diags));
            let base = if suppressed > 0 {
                format!(", {suppressed} baseline-suppressed")
            } else {
                String::new()
            };
            eprintln!(
                "lint: {} ISA(s) x {} buildset(s): {errors} error(s), {warnings} warning(s){base}",
                isas.len(),
                cells.len()
            );
        }
        Some("json") => print!("{}", lis_analyze::render_json(&diags)),
        Some("sarif") => print!("{}", lis_analyze::render_sarif(&diags)),
        Some(other) => return Err(format!("unknown --format `{other}` (text|json|sarif)")),
    }
    Ok(if errors > 0 || (opts.deny_warnings && warnings > 0) { 5 } else { 0 })
}

/// Reads a `lis lint` baseline file into the set of suppressed
/// fingerprints, or `None` when the file does not exist yet (the caller
/// then writes one). Lines are `<16-hex-fingerprint> <code> <location>`;
/// only the fingerprint is load-bearing, the rest keeps diffs reviewable.
fn read_baseline(path: &str) -> Result<Option<std::collections::HashSet<u64>>, String> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(format!("--baseline {path}: {e}")),
    };
    let mut set = std::collections::HashSet::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fp = line.split_whitespace().next().unwrap_or("");
        let fp = u64::from_str_radix(fp, 16)
            .map_err(|_| format!("--baseline {path}: malformed fingerprint line `{line}`"))?;
        set.insert(fp);
    }
    Ok(Some(set))
}

/// Writes a baseline file: deterministic (sorted, deduplicated) so two
/// runs over the same specs produce byte-identical files.
fn write_baseline(path: &str, diags: &[lis_analyze::Diagnostic]) -> Result<(), String> {
    let mut lines: Vec<String> = diags
        .iter()
        .map(|d| format!("{:016x} {} {}", d.fingerprint(), d.code, d.location()))
        .collect();
    lines.sort();
    lines.dedup();
    let mut out = String::from(
        "# lis lint baseline v1 — fingerprints of accepted findings.\n\
         # A fingerprint hashes (code, location, step) only; message wording may change\n\
         # without invalidating it. Regenerate by deleting this file and re-running lint.\n",
    );
    for l in &lines {
        out.push_str(l);
        out.push('\n');
    }
    std::fs::write(path, out).map_err(|e| format!("--baseline {path}: {e}"))
}

/// The errors-only analyzer gate `verify`/`chaos`/`sweep` run before doing
/// any expensive simulation: a broken interface is reported as LIS***
/// diagnostics up front instead of as a divergence hundreds of instructions
/// into a workload. Returns `true` (after printing the report) when any
/// cell fails; `--no-lint` skips the call entirely.
fn lint_gate(cells: &[(&'static IsaSpec, BuildsetDef)]) -> bool {
    let mut all = Vec::new();
    for (spec, bs) in cells {
        if let Err(d) = lis_analyze::preflight(spec, bs) {
            all.extend(d);
        }
        let view = lis_runtime::synthesize_view(spec, bs);
        if let Err(d) = lis_analyze::preflight_translation(spec, bs, &view) {
            all.extend(d);
        }
    }
    // `preflight` repeats the ISA-level pass per cell; collapse duplicates.
    let mut seen = std::collections::HashSet::new();
    all.retain(|d| seen.insert(d.to_string()));
    if all.is_empty() {
        return false;
    }
    eprint!("{}", lis_analyze::render_text(&all));
    eprintln!("lint: {} pre-flight error(s); pass --no-lint to run anyway", all.len());
    true
}

fn cmd_buildsets() -> Result<(), String> {
    println!("{:<20} {:<22} {:>10}", "name", "detail", "spec");
    for bs in STANDARD_BUILDSETS {
        println!("{:<20} {:<22} {:>10}", bs.name, bs.describe(), bs.speculation);
    }
    Ok(())
}

/// `lis verify`: lockstep every standard buildset on every backend against
/// the `one-min` interpreted reference, over suite kernels and generated
/// programs. `--backend <b>` restricts the matrix to one backend. Exit 0
/// when every cell agrees, 2 on any divergence.
fn cmd_verify(opts: &Opts) -> Result<u8, String> {
    if !opts.no_lint {
        let isas: Vec<&'static IsaSpec> = if opts.isa.is_empty() {
            vec![lis_isa_alpha::spec(), lis_isa_arm::spec(), lis_isa_ppc::spec()]
        } else {
            vec![spec_of(&opts.isa)?]
        };
        let cells: Vec<(&'static IsaSpec, BuildsetDef)> =
            isas.iter().flat_map(|s| STANDARD_BUILDSETS.iter().map(|bs| (*s, *bs))).collect();
        if lint_gate(&cells) {
            return Ok(5);
        }
    }
    let mut cfg = if opts.full { VerifyConfig::full() } else { VerifyConfig::default() };
    cfg.lockstep.max_insts = opts.max;
    // `--demote` additionally asserts that runs surviving a mid-run backend
    // demotion still match the reference.
    cfg.lockstep.demote = opts.demote;
    if opts.backend_explicit {
        cfg.backends = vec![opts.backend];
    }
    let t0 = std::time::Instant::now();
    let report = if opts.isa.is_empty() {
        verify_all(&cfg)
    } else {
        spec_of(&opts.isa)?; // validate the name
        verify_isa(&opts.isa, &cfg)
    };
    eprintln!("verify: {report} in {:.2}s", t0.elapsed().as_secs_f64());
    if report.ok() {
        return Ok(0);
    }
    for f in &report.failures {
        eprintln!("\nFAIL {}:\n{}", f.job, f.error);
    }
    // Persist the first structured divergence for post-mortem analysis. The
    // default snapshot name carries the failing cell's identity so parallel
    // CI shards never clobber each other.
    let first = report.failures.iter().find_map(|f| match &f.error {
        HarnessError::Divergence(r) => Some((&f.job, r)),
        _ => None,
    });
    if let Some((job, r)) = first {
        let path = if opts.snapshot_explicit {
            opts.snapshot.clone()
        } else {
            format!("lis-snapshot-{}.txt", job.replace('/', "-"))
        };
        std::fs::write(&path, r.snapshot()).map_err(|e| format!("{path}: {e}"))?;
        eprintln!("\ncrash snapshot written to {path}");
    }
    Ok(2)
}

/// `lis trace`: record, inspect, and replay max-detail instruction traces.
/// `info` and `replay` exit 4 when the trace file fails any integrity
/// check (bad magic, version mismatch, CRC, truncation, malformed record).
fn cmd_trace(sub: &str, opts: &Opts) -> Result<u8, String> {
    match sub {
        "record" => cmd_trace_record(opts).map(|()| 0),
        "info" => cmd_trace_info(opts),
        "replay" => cmd_trace_replay(opts),
        other => Err(format!("unknown trace subcommand `{other}` (record | info | replay)")),
    }
}

fn cmd_trace_record(opts: &Opts) -> Result<(), String> {
    let src = read_source(opts)?;
    let spec = spec_of(&opts.isa)?;
    let image = assemble(&opts.isa, &src)?;

    // Maximum detail by default: a block-all trace is the one every
    // lower-detail interface's trace can be derived from by projection.
    let bs_name = if opts.buildset_explicit { opts.buildset.as_str() } else { "block-all" };
    let bs = *lis_core::find_buildset(bs_name)
        .ok_or_else(|| format!("unknown buildset `{bs_name}` (see `lis buildsets`)"))?;

    let out_path = match &opts.output {
        Some(p) => p.clone(),
        None => {
            let input = opts.input.as_deref().unwrap_or("-");
            if input == "-" {
                "trace.lst".to_string()
            } else {
                format!("{}.lst", input.trim_end_matches(".s"))
            }
        }
    };
    let label = opts.label.clone().unwrap_or_else(|| {
        opts.input.as_deref().unwrap_or("stdin").rsplit('/').next().unwrap_or("stdin").to_string()
    });

    let file = std::fs::File::create(&out_path).map_err(|e| format!("{out_path}: {e}"))?;
    let record_opts = lis_trace::RecordOptions {
        buildset: bs,
        kernel: label,
        max_insts: opts.max,
        ..Default::default()
    };
    let summary = lis_trace::record(spec, &image, std::io::BufWriter::new(file), &record_opts)
        .map_err(|e| e.to_string())?;
    let bytes = std::fs::metadata(&out_path).map(|m| m.len()).unwrap_or(0);
    eprintln!(
        "recorded {} insts ({} bytes, {:.2} B/inst) from {}/{} to {out_path}{}",
        summary.insts,
        bytes,
        bytes as f64 / summary.insts.max(1) as f64,
        spec.name,
        bs.name,
        match summary.fault {
            Some(f) => format!("; run ended at fault: {f}"),
            None => format!("; exit {}", summary.exit_code),
        }
    );
    Ok(())
}

/// Opens a trace file; any failure here is usage, not integrity.
fn open_trace(opts: &Opts) -> Result<std::io::BufReader<std::fs::File>, String> {
    let path = opts.input.as_ref().ok_or("missing trace file argument")?;
    let file = std::fs::File::open(path).map_err(|e| format!("{path}: {e}"))?;
    Ok(std::io::BufReader::new(file))
}

fn cmd_trace_info(opts: &Opts) -> Result<u8, String> {
    let r = open_trace(opts)?;
    let info = match lis_trace::TraceInfo::scan(r) {
        Ok(info) => info,
        Err(e) => {
            eprintln!("trace integrity failure: {e}");
            return Ok(4);
        }
    };
    if opts.stats_json {
        let mut o = lis_core::JsonObj::new();
        o.str("isa", &info.meta.isa)
            .str("buildset", &info.meta.buildset)
            .str("kernel", &info.meta.kernel)
            .u64("seed", info.meta.seed)
            .u64("records", info.footer.insts)
            .u64("chunks", info.chunks as u64)
            .u64("data_bytes", info.data_bytes)
            .bool("halted", info.footer.halted)
            .i64("exit_code", info.footer.exit_code)
            .raw("stats", &info.footer.stats.to_json());
        println!("{}", o.finish());
    } else {
        println!("{info}");
    }
    Ok(0)
}

fn cmd_trace_replay(opts: &Opts) -> Result<u8, String> {
    let r = open_trace(opts)?;
    let trace = match lis_trace::Trace::read_from(r) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("trace integrity failure: {e}");
            return Ok(4);
        }
    };
    let spec = spec_of(&trace.meta.isa)?;
    let projection = match opts.project.as_deref() {
        None | Some("decode") => Visibility::DECODE,
        Some("min") => Visibility::MIN,
        Some("all") => Visibility::ALL,
        Some(other) => return Err(format!("unknown projection `{other}` (min|decode|all)")),
    };
    if !projection.fields.contains(lis_core::F_OPCODE) {
        eprintln!(
            "warning: projection hides fields the ooo consumer models with (opcode, \
             effective address); instructions are counted but contribute no latency"
        );
    }
    // `--timing p1,p2` re-times the one recording under several component
    // presets in a single invocation — the trace is read once, the timing
    // side varies, the functional specification never does.
    let presets = match opts.timing.as_deref() {
        None => vec![TimingConfig::CLASSIC],
        Some(list) => {
            let mut out = Vec::new();
            for name in list.split(',').filter(|s| !s.is_empty()) {
                out.push(TimingConfig::named(name).ok_or_else(|| {
                    format!(
                        "unknown timing preset `{name}` (valid: {})",
                        TimingConfig::preset_names()
                    )
                })?);
            }
            if out.is_empty() {
                return Err("--timing needs at least one preset name".into());
            }
            out
        }
    };
    for (pi, preset) in presets.iter().enumerate() {
        let cfg = lis_trace::ReplayConfig {
            shards: opts.shards,
            warmup_chunks: opts.warmup,
            core: CoreConfig { timing: *preset, ..CoreConfig::default() },
            projection,
            ..Default::default()
        };
        let t0 = std::time::Instant::now();
        let report = match lis_trace::replay_ooo(spec, &trace, &cfg) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("trace integrity failure: {e}");
                return Ok(4);
            }
        };
        let dt = t0.elapsed().as_secs_f64();
        if opts.stats_json {
            // One JSON object per preset, each tagged with the preset name
            // (a single-preset replay stays the bare TimingReport object for
            // existing consumers).
            if presets.len() == 1 {
                println!("{}", report.to_json());
            } else {
                let mut o = lis_core::JsonObj::new();
                o.str("timing", preset.name).raw("report", &report.to_json());
                println!("{}", o.finish());
            }
        } else {
            if pi == 0 {
                // The program output is a preset-independent functional
                // fact; print it once, not once per preset.
                print!("{}", String::from_utf8_lossy(&report.stdout));
            }
            if presets.len() > 1 {
                eprintln!("[timing {}]", preset.name);
            }
            eprintln!("{report}");
            eprintln!(
                "replayed {} insts on {} shard(s) in {dt:.3}s ({:.2} M insts/s)",
                report.insts,
                opts.shards,
                report.insts as f64 / dt / 1e6
            );
        }
    }
    Ok(0)
}

/// `lis sweep`: the full-matrix evaluation — every standard buildset on
/// every ISA (optionally both backends) over the kernel suite, run as
/// isolated parallel jobs. Writes `BENCH_sweep.json` (bit-identical across
/// runs and job counts unless `--time` adds wall-clock fields) and an
/// optional Tables I–III markdown report. Exit 0 when every cell ran to a
/// clean halt, 3 when any cell faulted or hit its deadline.
fn cmd_sweep(opts: &Opts) -> Result<u8, String> {
    let backends = match opts.backends.as_deref() {
        None | Some("cached") => vec![Backend::Cached],
        Some("interpreted") => vec![Backend::Interpreted],
        Some("compiled") => vec![Backend::Compiled],
        Some("both") => vec![Backend::Cached, Backend::Interpreted],
        Some("all") => vec![Backend::Cached, Backend::Interpreted, Backend::Compiled],
        Some(other) => {
            return Err(format!(
                "unknown --backends `{other}` (cached|interpreted|compiled|both|all)"
            ))
        }
    };
    if !opts.no_lint {
        let cells: Vec<(&'static IsaSpec, BuildsetDef)> = lis_workloads::ISAS
            .iter()
            .map(|isa| lis_workloads::spec_of(isa))
            .flat_map(|s| STANDARD_BUILDSETS.iter().map(move |bs| (s, *bs)))
            .collect();
        if lint_gate(&cells) {
            return Ok(5);
        }
    }
    let timing_names: Vec<String> = opts
        .timing
        .as_deref()
        .unwrap_or("")
        .split(',')
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect();
    let timings = lis_bench::resolve_timings(&timing_names)?;
    let mut cfg = lis_bench::SweepConfig {
        jobs: opts.jobs,
        kernels: opts.kernels.clone(),
        backends,
        timings,
        max_insts: opts.max,
        measure_time: opts.time,
        retries: opts.retries,
        // CI's isolation smoke test injects a deliberate panic into one
        // named cell; see SweepConfig::panic_cell.
        panic_cell: std::env::var("LIS_SWEEP_PANIC").ok(),
        ..lis_bench::SweepConfig::default()
    };
    if let Some(secs) = opts.deadline {
        cfg.deadline = Some(std::time::Duration::from_secs(secs));
    }

    let report = lis_bench::run_sweep(&cfg)?;

    let json_path = opts.output.as_deref().unwrap_or("BENCH_sweep.json");
    std::fs::write(json_path, lis_bench::sweep::to_json(&report) + "\n")
        .map_err(|e| format!("{json_path}: {e}"))?;
    if report.backends.len() > 1 {
        // Multi-backend sweeps also emit the per-backend cost summary
        // (deterministic counters only, so byte-identical like the unit
        // fields of the main JSON).
        std::fs::write("BENCH_backend.json", lis_bench::sweep::backend_json(&report) + "\n")
            .map_err(|e| format!("BENCH_backend.json: {e}"))?;
    }
    if let Some(md_path) = &opts.report {
        std::fs::write(md_path, lis_bench::sweep::render_markdown(&report))
            .map_err(|e| format!("{md_path}: {e}"))?;
    }

    let bad: Vec<&lis_bench::CellResult> = report
        .cells
        .iter()
        .filter(|c| {
            c.deadline_expired
                || c.fault.is_some()
                || !c.halted
                || c.exit_code != 0
                || c.crashes > 0
        })
        .collect();
    eprintln!(
        "sweep: {} cells ({} kernels x {} buildsets x {} ISAs x {} backend(s) x \
         {} preset(s)) on {} worker(s) in {:.2}s -> {json_path}{}",
        report.cells.len(),
        report.kernels.len(),
        lis_core::STANDARD_BUILDSETS.len(),
        lis_workloads::ISAS.len(),
        report.backends.len(),
        report.timings.len(),
        report.jobs,
        report.elapsed_secs,
        match &opts.report {
            Some(p) => format!(" + {p}"),
            None => String::new(),
        }
    );
    for c in &bad {
        eprintln!(
            "  FAIL {}/{}/{} ({}): {}",
            c.isa,
            c.buildset,
            c.kernel,
            lis_harness::backend_name(c.backend),
            match (&c.crash, &c.fault, c.deadline_expired) {
                (Some(msg), _, _) if c.halted && c.exit_code == 0 => {
                    format!("crashed {} time(s), recovered on retry [{msg}]", c.crashes)
                }
                (Some(msg), _, _) => format!("crashed {} time(s) [{msg}]", c.crashes),
                (None, Some(f), _) => f.clone(),
                (None, None, true) => "deadline expired".into(),
                (None, None, false) => format!("exit code {}", c.exit_code),
            }
        );
    }
    Ok(if bad.is_empty() { 0 } else { 3 })
}

/// Default crash-snapshot path: derived from the run's identity and seed so
/// parallel campaigns never clobber each other's post-mortems. An explicit
/// `--snapshot` always wins.
fn snapshot_path(opts: &Opts, isa: &str, buildset: &str, seed: u64) -> String {
    if opts.snapshot_explicit {
        opts.snapshot.clone()
    } else {
        format!("lis-snapshot-{isa}-{buildset}-{seed:#x}.txt")
    }
}

/// `lis chaos --replay <file>`: replay a committed `.chaosplan` repro and
/// judge it against its `expect` line. Exit 0 on a matching replay; 3 when
/// an expected divergence no longer reproduces (the repro went stale); 2
/// when a survive-plan diverges (a regression).
fn cmd_chaos_replay(path: &str) -> Result<u8, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let plan = ChaosPlanFile::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    let replay = plan.replay().map_err(|e| format!("{path}: {e}"))?;
    println!("{}", replay.report);
    if replay.matched {
        println!("replay: plan verdict holds");
        return Ok(0);
    }
    match plan.expect {
        PlanExpect::Diverge => {
            eprintln!("replay: expected divergence did NOT reproduce");
            Ok(3)
        }
        PlanExpect::Survive => {
            eprintln!("replay: survive-plan diverged or failed verification");
            Ok(2)
        }
    }
}

/// `lis chaos`: a campaign of seeded fault-injection runs. Each seed runs
/// the workload under bit flips, transient data faults, and page unmaps,
/// with cache verification (graceful degradation) enabled. Exit 0 when
/// every run survives to halt or budget, 3 on a fault storm or deadline.
///
/// With `--paranoid` every run is supervised by a lockstep reference and the
/// full state is spot-checked; a divergence exits 2 — unless `--demote` lets
/// the engine walk down the backend ladder and finish the run anyway.
/// `--minimize` (implies `--paranoid`) delta-debugs a found divergence into
/// a minimal `.chaosplan` repro.
fn cmd_chaos(opts: &Opts) -> Result<u8, String> {
    if let Some(path) = &opts.replay {
        return cmd_chaos_replay(path);
    }
    let spec = spec_of(&opts.isa)?;
    let (image, workload) = match &opts.input {
        Some(path) => {
            let src = read_source(opts)?;
            (assemble(&opts.isa, &src)?, path.clone())
        }
        None => (
            lis_workloads::suite_of(&opts.isa)
                .iter()
                .find(|w| w.name == "hash31")
                .expect("bundled kernel")
                .assemble()
                .map_err(|e| e.to_string())?,
            "hash31".to_string(),
        ),
    };
    let bs = *lis_core::find_buildset(&opts.buildset)
        .ok_or_else(|| format!("unknown buildset `{}` (see `lis buildsets`)", opts.buildset))?;
    if !opts.no_lint && lint_gate(&[(spec, bs)]) {
        return Ok(5);
    }
    let supervised = opts.paranoid || opts.minimize || opts.demote;
    let mut worst = 0u8;
    for i in 0..opts.runs {
        let seed = opts.chaos_seed.wrapping_add(u64::from(i));
        // Transient channels by default; page unmaps are persistent faults
        // (the page stays gone), which usually storm, so they are opt-in —
        // as is translate poisoning, which only the supervisor can catch.
        let plan = ChaosPlan {
            seed,
            flip_period: Some(opts.period),
            data_fault_period: Some(opts.period),
            unmap_period: opts.unmap.then_some(opts.period),
            translate_fault_period: opts.translate.then_some(opts.period),
            start: 0,
            max_events: 0,
        };
        let snapshot = snapshot_path(opts, &opts.isa, bs.name, seed);
        let code = if supervised {
            let cfg = SuperviseConfig {
                max_insts: opts.max,
                spot_stride: opts.spot_stride,
                demote: opts.demote,
                deadline: opts.deadline.map(std::time::Duration::from_secs),
                ..SuperviseConfig::default()
            };
            let report = supervised_run(spec, &image, bs, opts.backend, plan, &cfg)
                .map_err(|e| e.to_string())?;
            println!("{report}");
            for d in &report.demotions {
                println!("  {d}");
            }
            match report.outcome {
                SuperviseOutcome::Diverged => {
                    std::fs::write(&snapshot, report.snapshot())
                        .map_err(|e| format!("{snapshot}: {e}"))?;
                    eprintln!("crash snapshot written to {snapshot}");
                    if opts.minimize {
                        minimize_to_file(opts, spec, &image, bs, &workload, seed, &report.events)?;
                    }
                    2
                }
                SuperviseOutcome::Storm | SuperviseOutcome::Deadline => {
                    std::fs::write(&snapshot, report.snapshot())
                        .map_err(|e| format!("{snapshot}: {e}"))?;
                    eprintln!("crash snapshot written to {snapshot}");
                    3
                }
                SuperviseOutcome::Halted { .. } | SuperviseOutcome::Budget => {
                    if report.verified {
                        0
                    } else {
                        eprintln!("run completed but final state failed verification");
                        2
                    }
                }
            }
        } else {
            let cfg = ChaosConfig {
                max_insts: opts.max,
                deadline: opts.deadline.map(std::time::Duration::from_secs),
                ..ChaosConfig::default()
            };
            let report =
                chaos_run(spec, &image, bs, opts.backend, plan, &cfg).map_err(|e| e.to_string())?;
            println!("{report}");
            if matches!(report.outcome, ChaosOutcome::Storm | ChaosOutcome::Deadline) {
                std::fs::write(&snapshot, report.snapshot())
                    .map_err(|e| format!("{snapshot}: {e}"))?;
                eprintln!("crash snapshot written to {snapshot}");
                3
            } else {
                0
            }
        };
        worst = worst.max(code);
    }
    Ok(worst)
}

/// Minimizes a diverging event log and writes the `.chaosplan` repro.
fn minimize_to_file(
    opts: &Opts,
    spec: &'static IsaSpec,
    image: &lis_mem::Image,
    bs: BuildsetDef,
    workload: &str,
    seed: u64,
    events: &[lis_runtime::ChaosEvent],
) -> Result<(), String> {
    if lis_workloads::kernel(&opts.isa, workload).is_none() {
        eprintln!(
            "minimize: repro plans reference bundled kernels; `{workload}` is not one — \
             not writing a plan"
        );
        return Ok(());
    }
    let cfg = SuperviseConfig {
        max_insts: opts.max,
        spot_stride: opts.spot_stride,
        ..SuperviseConfig::default()
    };
    let outcome = minimize_plan(spec, image, bs, opts.backend, seed, events, &cfg)
        .map_err(|e| e.to_string())?;
    let Some(min) = outcome else {
        eprintln!(
            "minimize: scripted replay of the event log does not reproduce; not writing a plan"
        );
        return Ok(());
    };
    let plan = ChaosPlanFile {
        isa: opts.isa.clone(),
        buildset: bs.name.to_string(),
        backend: opts.backend,
        kernel: workload.to_string(),
        seed,
        max_insts: opts.max,
        spot_stride: opts.spot_stride,
        expect: PlanExpect::Diverge,
        events: min.minimal.clone(),
    };
    let path = opts
        .output
        .clone()
        .unwrap_or_else(|| format!("lis-repro-{}-{}-{seed:#x}.chaosplan", opts.isa, bs.name));
    std::fs::write(&path, plan.to_text()).map_err(|e| format!("{path}: {e}"))?;
    eprintln!(
        "minimize: {} events -> {} in {} probes; repro written to {path}",
        min.initial,
        min.minimal.len(),
        min.probes
    );
    Ok(())
}

fn cmd_serve(opts: &Opts) -> Result<u8, String> {
    if opts.bench_warm {
        let cfg = lis_bench::warm::WarmConfig {
            max_insts: opts.max,
            measure_time: opts.time,
            ..lis_bench::warm::WarmConfig::default()
        };
        let report = lis_bench::run_warm(&cfg)?;
        let out = opts.output.clone().unwrap_or_else(|| "BENCH_serve.json".to_string());
        std::fs::write(&out, format!("{}\n", lis_bench::warm::to_json(&report)))
            .map_err(|e| format!("{out}: {e}"))?;
        print!("{}", lis_bench::warm::render(&report));
        println!("wrote {out}");
        return Ok(u8::from(!report.ok()));
    }
    let listen = opts.listen.clone().ok_or("serve needs --listen <addr> (or --bench-warm)")?;
    let cfg = lis_serve::ServeConfig {
        listen,
        jobs: opts.jobs,
        drain_deadline: std::time::Duration::from_secs(opts.drain_deadline),
        deadline: opts.deadline.map(std::time::Duration::from_secs),
    };
    let server = lis_serve::Server::bind(&cfg).map_err(|e| format!("bind {}: {e}", cfg.listen))?;
    let addr = server.local_addr().map_err(|e| e.to_string())?;
    eprintln!("lis-serve listening on {addr} (protocol v{})", lis_serve::PROTOCOL_VERSION);
    Ok(server.run())
}

fn cmd_connect(opts: &Opts) -> Result<u8, String> {
    use std::io::{BufRead, Write};
    let addr = opts.input.clone().ok_or("connect needs a daemon address argument")?;
    let stream = std::net::TcpStream::connect(&addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let mut out = stream.try_clone().map_err(|e| e.to_string())?;
    let mut reader = std::io::BufReader::new(stream);
    let mut worst = 0u8;
    for line in std::io::stdin().lock().lines() {
        let line = line.map_err(|e| e.to_string())?;
        if line.trim().is_empty() {
            continue;
        }
        out.write_all(line.as_bytes()).map_err(|e| e.to_string())?;
        out.write_all(b"\n").map_err(|e| e.to_string())?;
        out.flush().map_err(|e| e.to_string())?;
        let mut resp = String::new();
        let n = reader.read_line(&mut resp).map_err(|e| e.to_string())?;
        if n == 0 {
            return Err("server closed the connection".into());
        }
        print!("{resp}");
        // Exit with the worst per-request status the session saw, mirroring
        // what running the same commands directly would have returned.
        let status = lis_serve::json::parse(resp.trim_end())
            .ok()
            .and_then(|v| v.get("status").and_then(lis_serve::json::Value::as_u64))
            .ok_or("malformed response from server")?;
        worst = worst.max(u8::try_from(status).unwrap_or(1));
    }
    Ok(worst)
}
