//! Minimal argument parsing (no external dependencies).

use lis_runtime::Backend;

/// Parsed command-line options shared by all subcommands.
#[derive(Debug, Clone)]
pub struct Opts {
    /// Input file path (or `-` for stdin).
    pub input: Option<String>,
    /// ISA name.
    pub isa: String,
    /// Buildset name for `run`.
    pub buildset: String,
    /// Execution backend for `run`.
    pub backend: Backend,
    /// True when `--backend` was given explicitly (`verify` restricts the
    /// matrix to that backend; by default it runs all of them).
    pub backend_explicit: bool,
    /// Per-instruction trace flag.
    pub trace: bool,
    /// Instruction-mix histogram flag.
    pub mix: bool,
    /// Instruction budget.
    pub max: u64,
    /// Timing organization, when driving a timing model (`run`); a
    /// comma-separated timing-preset list for `sweep` and `trace replay`.
    pub timing: Option<String>,
    /// Timing-component preset (predictor/replacement/prefetcher) for the
    /// `run` timing models.
    pub preset: Option<String>,
    /// Wall-clock watchdog in seconds (`run`, `chaos`).
    pub deadline: Option<u64>,
    /// First seed of a chaos campaign.
    pub chaos_seed: u64,
    /// Mean instructions between injections per chaos channel.
    pub period: u64,
    /// Number of seeded runs in a chaos campaign.
    pub runs: u32,
    /// Run the exhaustive verification matrix instead of the quick one.
    pub full: bool,
    /// Enable the page-unmap chaos channel (persistent faults).
    pub unmap: bool,
    /// Enable the translate-fault chaos channel (silent superblock
    /// poisoning; only meaningful with the compiled backend).
    pub translate: bool,
    /// Supervised chaos: shadow every run with a lockstep reference and
    /// spot-check the full architectural state.
    pub paranoid: bool,
    /// Interface units between supervised spot checks.
    pub spot_stride: u64,
    /// Recover from divergences via the backend demotion ladder instead of
    /// aborting (`chaos --paranoid`, `verify`).
    pub demote: bool,
    /// Delta-debug a found divergence down to a minimal replayable plan.
    pub minimize: bool,
    /// Replay a committed `.chaosplan` file instead of running a campaign.
    pub replay: Option<String>,
    /// Extra attempts for a panicked sweep cell (each one backend rung
    /// lower).
    pub retries: u32,
    /// Where crash snapshots are written.
    pub snapshot: String,
    /// True when `--snapshot` was given explicitly (the default is derived
    /// from the run's identity and seed instead).
    pub snapshot_explicit: bool,
    /// True when `--buildset` was given explicitly (subcommands have
    /// different defaults: `run` uses one-all, `trace record` block-all).
    pub buildset_explicit: bool,
    /// Output path for `trace record`.
    pub output: Option<String>,
    /// Worker threads for `trace replay`.
    pub shards: usize,
    /// Warm-up chunks per shard for `trace replay`.
    pub warmup: usize,
    /// Visibility projection (`min` | `decode` | `all`) for `trace replay`.
    pub project: Option<String>,
    /// Workload label written into a recorded trace header.
    pub label: Option<String>,
    /// Emit machine-readable JSON statistics instead of the human summary.
    pub stats_json: bool,
    /// Worker threads for `sweep` (0 = one per available core; an explicit
    /// `--jobs 0` is a usage error).
    pub jobs: usize,
    /// Kernel subset for `sweep` (empty = the full suite).
    pub kernels: Vec<String>,
    /// Backend set for `sweep`
    /// (`cached` | `interpreted` | `compiled` | `both` | `all`).
    pub backends: Option<String>,
    /// Markdown report output path for `sweep`.
    pub report: Option<String>,
    /// Include wall-clock timing in sweep output (forfeits bit-identical
    /// JSON).
    pub time: bool,
    /// Diagnostic output format for `lint` (`text` | `json` | `sarif`).
    pub format: Option<String>,
    /// Treat lint warnings as errors (exit 5).
    pub deny_warnings: bool,
    /// Print the LIS001–LIS010 pass catalog and exit (`lint`).
    pub list_passes: bool,
    /// Baseline fingerprint file for `lint`: created when absent, used to
    /// suppress known findings when present.
    pub baseline: Option<String>,
    /// Skip the analyzer pre-flight gate in `verify` / `chaos` / `sweep`.
    pub no_lint: bool,
    /// Listen address for `serve` (required unless `--bench-warm`).
    pub listen: Option<String>,
    /// Seconds a `serve` shutdown waits for in-flight work before
    /// abandoning it.
    pub drain_deadline: u64,
    /// Run the cold-vs-warm artifact-store benchmark instead of serving.
    pub bench_warm: bool,
}

impl Default for Opts {
    fn default() -> Self {
        Opts {
            input: None,
            isa: String::new(),
            buildset: "one-all".into(),
            backend: Backend::Cached,
            backend_explicit: false,
            trace: false,
            mix: false,
            max: 100_000_000,
            timing: None,
            preset: None,
            deadline: None,
            chaos_seed: 1,
            period: 500,
            runs: 4,
            full: false,
            unmap: false,
            translate: false,
            paranoid: false,
            spot_stride: 64,
            demote: false,
            minimize: false,
            replay: None,
            retries: 2,
            snapshot: "lis-snapshot.txt".into(),
            snapshot_explicit: false,
            buildset_explicit: false,
            output: None,
            shards: 1,
            warmup: 4,
            project: None,
            label: None,
            stats_json: false,
            jobs: 0,
            kernels: Vec::new(),
            backends: None,
            report: None,
            time: false,
            format: None,
            deny_warnings: false,
            list_passes: false,
            baseline: None,
            no_lint: false,
            listen: None,
            drain_deadline: 10,
            bench_warm: false,
        }
    }
}

impl Opts {
    /// Parses `args` (everything after the subcommand).
    pub fn parse(args: &[String]) -> Result<Opts, String> {
        let mut o = Opts::default();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            let mut value = |name: &str| -> Result<String, String> {
                it.next().cloned().ok_or_else(|| format!("{name} needs a value"))
            };
            match a.as_str() {
                "--isa" => o.isa = value("--isa")?,
                "--buildset" => {
                    o.buildset = value("--buildset")?;
                    o.buildset_explicit = true;
                }
                "--backend" => {
                    o.backend = match value("--backend")?.as_str() {
                        "cached" => Backend::Cached,
                        "interpreted" => Backend::Interpreted,
                        "compiled" => Backend::Compiled,
                        other => return Err(format!("unknown backend `{other}`")),
                    };
                    o.backend_explicit = true;
                }
                "--trace" => o.trace = true,
                "--mix" => o.mix = true,
                "--max" => {
                    o.max = value("--max")?.parse().map_err(|e| format!("--max: {e}"))?;
                }
                "--timing" => o.timing = Some(value("--timing")?),
                "--preset" => {
                    let name = value("--preset")?;
                    if lis_timing::TimingConfig::named(&name).is_none() {
                        return Err(format!(
                            "unknown --preset `{name}` (valid: {})",
                            lis_timing::TimingConfig::preset_names()
                        ));
                    }
                    o.preset = Some(name);
                }
                "--deadline" => {
                    o.deadline =
                        Some(value("--deadline")?.parse().map_err(|e| format!("--deadline: {e}"))?);
                }
                "--chaos-seed" => {
                    o.chaos_seed =
                        value("--chaos-seed")?.parse().map_err(|e| format!("--chaos-seed: {e}"))?;
                }
                "--period" => {
                    o.period = value("--period")?.parse().map_err(|e| format!("--period: {e}"))?;
                    if o.period == 0 {
                        return Err("--period must be positive".into());
                    }
                }
                "--runs" => {
                    o.runs = value("--runs")?.parse().map_err(|e| format!("--runs: {e}"))?;
                }
                "--full" => o.full = true,
                "--unmap" => o.unmap = true,
                "--translate" => o.translate = true,
                "--paranoid" => o.paranoid = true,
                "--spot-stride" => {
                    o.spot_stride = value("--spot-stride")?
                        .parse()
                        .map_err(|e| format!("--spot-stride: {e}"))?;
                    if o.spot_stride == 0 {
                        return Err("--spot-stride must be positive".into());
                    }
                }
                "--demote" => o.demote = true,
                "--minimize" => o.minimize = true,
                "--replay" => o.replay = Some(value("--replay")?),
                "--retries" => {
                    o.retries =
                        value("--retries")?.parse().map_err(|e| format!("--retries: {e}"))?;
                }
                "--snapshot" => {
                    o.snapshot = value("--snapshot")?;
                    o.snapshot_explicit = true;
                }
                "-o" | "--output" => o.output = Some(value("--output")?),
                "--shards" => {
                    o.shards = value("--shards")?.parse().map_err(|e| format!("--shards: {e}"))?;
                    if o.shards == 0 {
                        return Err("--shards must be positive".into());
                    }
                }
                "--warmup" => {
                    o.warmup = value("--warmup")?.parse().map_err(|e| format!("--warmup: {e}"))?;
                }
                "--jobs" => {
                    o.jobs = value("--jobs")?.parse().map_err(|e| format!("--jobs: {e}"))?;
                    if o.jobs == 0 {
                        return Err(
                            "--jobs must be positive (omit the flag for one per core)".into()
                        );
                    }
                }
                "--kernels" => {
                    o.kernels = value("--kernels")?
                        .split(',')
                        .filter(|s| !s.is_empty())
                        .map(str::to_string)
                        .collect();
                    if o.kernels.is_empty() {
                        return Err("--kernels needs at least one kernel name".into());
                    }
                }
                "--backends" => o.backends = Some(value("--backends")?),
                "--report" => o.report = Some(value("--report")?),
                "--time" => o.time = true,
                "--format" => o.format = Some(value("--format")?),
                "--deny-warnings" => o.deny_warnings = true,
                "--list-passes" => o.list_passes = true,
                "--baseline" => o.baseline = Some(value("--baseline")?),
                "--no-lint" => o.no_lint = true,
                "--listen" => o.listen = Some(value("--listen")?),
                "--drain-deadline" => {
                    o.drain_deadline = value("--drain-deadline")?
                        .parse()
                        .map_err(|e| format!("--drain-deadline: {e}"))?;
                }
                "--bench-warm" => o.bench_warm = true,
                "--project" => o.project = Some(value("--project")?),
                "--label" => o.label = Some(value("--label")?),
                "--stats-json" => o.stats_json = true,
                flag if flag.starts_with("--") => return Err(format!("unknown flag `{flag}`")),
                path => {
                    if o.input.is_some() {
                        return Err(format!("unexpected extra argument `{path}`"));
                    }
                    o.input = Some(path.to_string());
                }
            }
        }
        Ok(o)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Opts, String> {
        Opts::parse(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn defaults_and_flags() {
        let o = parse(&["prog.s", "--isa", "arm", "--trace", "--max", "42"]).unwrap();
        assert_eq!(o.input.as_deref(), Some("prog.s"));
        assert_eq!(o.isa, "arm");
        assert!(o.trace);
        assert_eq!(o.max, 42);
        assert_eq!(o.buildset, "one-all");
        assert_eq!(o.backend, Backend::Cached);
    }

    #[test]
    fn backend_and_timing() {
        let o =
            parse(&["--backend", "interpreted", "--timing", "sff", "--preset", "stream"]).unwrap();
        assert_eq!(o.backend, Backend::Interpreted);
        assert!(o.backend_explicit);
        assert_eq!(o.timing.as_deref(), Some("sff"));
        assert_eq!(o.preset.as_deref(), Some("stream"));
        assert_eq!(parse(&[]).unwrap().preset, None);
        assert!(parse(&["--preset"]).is_err());
        let err = parse(&["--preset", "nosuch"]).unwrap_err();
        assert!(err.contains("unknown --preset"), "{err}");
        assert!(err.contains("classic"), "{err}");
        let o = parse(&["--backend", "compiled"]).unwrap();
        assert_eq!(o.backend, Backend::Compiled);
        assert!(!parse(&[]).unwrap().backend_explicit);
    }

    #[test]
    fn errors() {
        assert!(parse(&["--backend", "jit"]).is_err());
        assert!(parse(&["--max", "abc"]).is_err());
        assert!(parse(&["--bogus"]).is_err());
        assert!(parse(&["a.s", "b.s"]).is_err());
        assert!(parse(&["--isa"]).is_err());
        assert!(parse(&["--deadline", "soon"]).is_err());
        assert!(parse(&["--period", "0"]).is_err());
        assert!(parse(&["--chaos-seed"]).is_err());
    }

    #[test]
    fn robustness_flags() {
        let o = parse(&[
            "--deadline",
            "30",
            "--chaos-seed",
            "99",
            "--period",
            "250",
            "--runs",
            "2",
            "--full",
            "--snapshot",
            "crash.txt",
        ])
        .unwrap();
        assert_eq!(o.deadline, Some(30));
        assert_eq!(o.chaos_seed, 99);
        assert_eq!(o.period, 250);
        assert_eq!(o.runs, 2);
        assert!(o.full);
        assert!(!o.unmap);
        assert_eq!(o.snapshot, "crash.txt");
        assert!(o.snapshot_explicit);
    }

    #[test]
    fn supervised_flags() {
        let o = parse(&[
            "--translate",
            "--paranoid",
            "--spot-stride",
            "16",
            "--demote",
            "--minimize",
            "--replay",
            "repro.chaosplan",
            "--retries",
            "1",
        ])
        .unwrap();
        assert!(o.translate && o.paranoid && o.demote && o.minimize);
        assert_eq!(o.spot_stride, 16);
        assert_eq!(o.replay.as_deref(), Some("repro.chaosplan"));
        assert_eq!(o.retries, 1);

        let d = parse(&[]).unwrap();
        assert!(!d.translate && !d.paranoid && !d.demote && !d.minimize);
        assert_eq!(d.spot_stride, 64);
        assert_eq!(d.replay, None);
        assert_eq!(d.retries, 2);
        assert!(!d.snapshot_explicit, "default snapshot name is derived, not explicit");
        assert!(parse(&["--spot-stride", "0"]).is_err());
        assert!(parse(&["--retries", "x"]).is_err());
        assert!(parse(&["--replay"]).is_err());
    }

    #[test]
    fn trace_flags() {
        let o = parse(&[
            "t.lst",
            "--shards",
            "4",
            "--warmup",
            "2",
            "--project",
            "decode",
            "--label",
            "sieve",
            "--stats-json",
            "-o",
            "out.lst",
        ])
        .unwrap();
        assert_eq!(o.shards, 4);
        assert_eq!(o.warmup, 2);
        assert_eq!(o.project.as_deref(), Some("decode"));
        assert_eq!(o.label.as_deref(), Some("sieve"));
        assert!(o.stats_json);
        assert_eq!(o.output.as_deref(), Some("out.lst"));
        assert!(parse(&["--shards", "0"]).is_err());
        assert!(parse(&["--shards", "x"]).is_err());
        assert!(!parse(&[]).unwrap().buildset_explicit);
        assert!(parse(&["--buildset", "block-all"]).unwrap().buildset_explicit);
    }

    #[test]
    fn sweep_flags() {
        let o = parse(&[
            "--jobs",
            "4",
            "--kernels",
            "gcd,sieve",
            "--backends",
            "both",
            "--report",
            "SWEEP.md",
            "--time",
        ])
        .unwrap();
        assert_eq!(o.jobs, 4);
        assert_eq!(o.kernels, vec!["gcd".to_string(), "sieve".to_string()]);
        assert_eq!(o.backends.as_deref(), Some("both"));
        assert_eq!(o.report.as_deref(), Some("SWEEP.md"));
        assert!(o.time);

        // `--jobs 0` is a zero-sized pool: a usage error, like `--shards 0`,
        // not something to silently reinterpret.
        let err = parse(&["--jobs", "0"]).expect_err("zero jobs is a usage error");
        assert!(err.contains("--jobs must be positive"), "{err}");
        assert!(parse(&["--jobs", "many"]).is_err());
        assert!(parse(&["--kernels", ","]).is_err(), "an all-empty list is an error");
        assert_eq!(parse(&[]).unwrap().jobs, 0, "default 0 means auto, one per core");
        assert!(!parse(&[]).unwrap().time);
    }

    #[test]
    fn lint_flags() {
        let o = parse(&["--format", "sarif", "--deny-warnings"]).unwrap();
        assert_eq!(o.format.as_deref(), Some("sarif"));
        assert!(o.deny_warnings);
        assert!(!o.no_lint);
        assert!(parse(&["--no-lint"]).unwrap().no_lint);
        assert!(parse(&["--format"]).is_err());
        assert!(parse(&["--list-passes"]).unwrap().list_passes);
        let o = parse(&["--baseline", "lint.base"]).unwrap();
        assert_eq!(o.baseline.as_deref(), Some("lint.base"));
        assert!(parse(&["--baseline"]).is_err());
        let d = parse(&[]).unwrap();
        assert_eq!(d.format, None);
        assert!(!d.deny_warnings && !d.no_lint && !d.list_passes);
        assert_eq!(d.baseline, None);
    }

    #[test]
    fn serve_flags() {
        let o =
            parse(&["--listen", "127.0.0.1:4915", "--drain-deadline", "3", "--jobs", "2"]).unwrap();
        assert_eq!(o.listen.as_deref(), Some("127.0.0.1:4915"));
        assert_eq!(o.drain_deadline, 3);
        assert!(!o.bench_warm);
        assert!(parse(&["--bench-warm"]).unwrap().bench_warm);
        assert!(parse(&["--drain-deadline", "soon"]).is_err());
        assert!(parse(&["--listen"]).is_err());
        let d = parse(&[]).unwrap();
        assert_eq!(d.listen, None);
        assert_eq!(d.drain_deadline, 10);
    }

    #[test]
    fn robustness_defaults() {
        let o = parse(&[]).unwrap();
        assert_eq!(o.deadline, None);
        assert_eq!(o.chaos_seed, 1);
        assert_eq!(o.period, 500);
        assert!(!o.full);
        assert_eq!(o.snapshot, "lis-snapshot.txt");
    }
}
