//! placeholder
