//! Errors of the synthesis engine and the derived interfaces.

use lis_analyze::Diagnostic;
use lis_core::{BuildsetDef, Fault, LintDiag, Semantic, Step};
use std::fmt;

/// Error constructing a simulator for a buildset.
#[derive(Debug, Clone)]
pub enum BuildError {
    /// The interface hides a value that must cross a call boundary; the
    /// contained diagnostics come from the interface lint.
    InvalidInterface {
        /// Name of the rejected buildset.
        buildset: &'static str,
        /// The dataflow violations.
        diags: Vec<LintDiag>,
    },
    /// The ISA description itself failed validation.
    InvalidSpec(String),
    /// The static analyzer's pre-flight found error-level diagnostics
    /// beyond plain dataflow visibility (speculation safety, derivability,
    /// specification self-checks). Render the diagnostics with
    /// `lis_analyze::render_text` for the full report.
    Lint {
        /// Name of the rejected buildset.
        buildset: &'static str,
        /// The error-level findings, in code order.
        diags: Vec<Diagnostic>,
    },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::InvalidInterface { buildset, diags } => {
                write!(f, "interface `{buildset}` is invalid ({} dataflow violations)", diags.len())
            }
            BuildError::InvalidSpec(msg) => write!(f, "invalid ISA description: {msg}"),
            BuildError::Lint { buildset, diags } => {
                let mut codes: Vec<String> = diags.iter().map(|d| d.code.to_string()).collect();
                codes.dedup();
                write!(
                    f,
                    "interface `{buildset}` rejected by pre-flight lint ({} error(s): {})",
                    diags.len(),
                    codes.join(", ")
                )
            }
        }
    }
}

impl std::error::Error for BuildError {}

/// Error using a derived interface incorrectly at run time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IfaceError {
    /// The called entry point does not belong to the active buildset.
    WrongSemantic {
        /// Semantic detail of the active buildset.
        active: Semantic,
        /// Semantic detail the call requires.
        wanted: Semantic,
    },
    /// Step-level calls must follow execution order.
    OutOfOrderStep {
        /// The step the engine expected next.
        expected: Step,
        /// The step that was called.
        got: Step,
    },
    /// The simulated program has already exited.
    Halted,
    /// Speculation methods need a buildset with speculation support.
    SpeculationDisabled,
    /// A rollback or commit referenced a checkpoint that no longer exists.
    BadCheckpoint,
}

impl fmt::Display for IfaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            IfaceError::WrongSemantic { active, wanted } => {
                write!(
                    f,
                    "entry point requires {wanted} semantic detail but the interface is {active}"
                )
            }
            IfaceError::OutOfOrderStep { expected, got } => {
                write!(f, "step call out of order: expected {expected}, got {got}")
            }
            IfaceError::Halted => f.write_str("program has exited"),
            IfaceError::SpeculationDisabled => f.write_str("interface has no speculation support"),
            IfaceError::BadCheckpoint => f.write_str("checkpoint no longer exists"),
        }
    }
}

impl std::error::Error for IfaceError {}

/// Why a driver loop stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimStop {
    /// An architectural fault was reported and no handler exists.
    Fault(Fault),
    /// The instruction budget was exhausted.
    MaxInsts,
    /// The wall-clock deadline set with
    /// [`Simulator::set_deadline`](crate::Simulator::set_deadline) expired.
    Deadline,
    /// An interface usage error (engine bug or driver bug).
    Iface(IfaceError),
}

impl fmt::Display for SimStop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimStop::Fault(fault) => write!(f, "stopped on fault: {fault}"),
            SimStop::MaxInsts => f.write_str("instruction budget exhausted"),
            SimStop::Deadline => f.write_str("wall-clock deadline exceeded"),
            SimStop::Iface(e) => write!(f, "interface error: {e}"),
        }
    }
}

impl std::error::Error for SimStop {}

impl From<IfaceError> for SimStop {
    fn from(e: IfaceError) -> Self {
        SimStop::Iface(e)
    }
}

/// Builds the [`BuildError::InvalidInterface`] variant from lint output.
pub(crate) fn invalid_interface(bs: &BuildsetDef, diags: Vec<LintDiag>) -> BuildError {
    BuildError::InvalidInterface { buildset: bs.name, diags }
}
