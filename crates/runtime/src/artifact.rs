//! Shared translation artifacts: exportable snapshots of a simulator's
//! predecode and compiled-code caches, plus a thread-safe content-addressed
//! store that amortizes build work across simulators.
//!
//! The per-simulator caches hold `Rc<Block>` / `Rc<Superblock>` with interior
//! `Cell` link state — deliberately single-threaded. What *is* shareable is
//! the plain data those caches were built from: [`crate::Simulator`]
//! instructions are `Copy` structs of captured decode state and action
//! function pointers, all `Send + Sync`. [`Artifacts`] is that plain-data
//! snapshot, sorted by PC for determinism;
//! [`Simulator::export_artifacts`](crate::Simulator::export_artifacts)
//! produces one and
//! [`Simulator::seed_artifacts`](crate::Simulator::seed_artifacts) rebuilds
//! fresh `Rc` caches from one (link hints start cold — they re-warm as
//! control flow is observed, and are never trusted anyway).
//!
//! The [`ArtifactStore`] keys snapshots by
//! `(ISA, image content hash, buildset, backend)` so a long-running service
//! can hand the second session of a key the first session's translations.
//! Chaos-integrity rules are enforced at the export side: a simulator that
//! ever had fault injection armed is tainted and refuses to export (a
//! translate-fault superblock is cached poisoned by design — see
//! [`crate::compile`] — so nothing a chaos run built may escape it).

use crate::compile::CompiledInst;
use crate::engine::{Backend, PredecInst};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A plain-data snapshot of one simulator's translation caches: predecoded
/// blocks, the single-instruction decode cache, and compiled superblocks.
/// `Send + Sync` (asserted by test), so it can sit behind an `Arc` in a
/// shared store and seed simulators on any thread.
pub struct Artifacts {
    /// ISA name the caches were built for.
    pub(crate) isa: &'static str,
    /// Buildset name the caches were built for.
    pub(crate) buildset: &'static str,
    /// Backend the caches were built by (seeding checks equality: cached
    /// blocks are useless to a compiled backend and vice versa).
    pub(crate) backend: Backend,
    /// Block-length cap in force when the blocks were built.
    pub(crate) max_block: usize,
    /// Predecoded blocks, sorted by entry PC.
    pub(crate) blocks: Vec<(u64, Box<[PredecInst]>)>,
    /// Single-instruction decode cache entries `(pc, (op, bits))`, sorted.
    pub(crate) insts: Vec<(u64, (u16, u32))>,
    /// Compiled superblocks, sorted by entry PC.
    pub(crate) compiled: Vec<(u64, Box<[CompiledInst]>)>,
}

impl Artifacts {
    /// Total translations carried: predecoded blocks plus compiled
    /// superblocks (the unit [`SimStats::seeded_blocks`]
    /// (crate::SimStats::seeded_blocks) counts).
    pub fn len(&self) -> usize {
        self.blocks.len() + self.compiled.len()
    }

    /// Whether the snapshot carries no translations at all (it may still
    /// carry decode-cache entries).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// ISA name the snapshot was built for.
    pub fn isa(&self) -> &'static str {
        self.isa
    }

    /// Buildset name the snapshot was built for.
    pub fn buildset(&self) -> &'static str {
        self.buildset
    }

    /// Backend the snapshot was built by.
    pub fn backend(&self) -> Backend {
        self.backend
    }
}

impl std::fmt::Debug for Artifacts {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Artifacts")
            .field("isa", &self.isa)
            .field("buildset", &self.buildset)
            .field("backend", &self.backend)
            .field("blocks", &self.blocks.len())
            .field("insts", &self.insts.len())
            .field("compiled", &self.compiled.len())
            .finish()
    }
}

/// Content address of a set of translation artifacts: same key ⇒ the caches
/// are interchangeable (same decode tables, same loadable bytes, same
/// interface elisions, same backend representation).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ArtifactKey {
    /// ISA name.
    pub isa: String,
    /// [`lis_mem::Image::content_hash`] of the program image.
    pub image_hash: u64,
    /// Buildset name.
    pub buildset: String,
    /// Execution backend.
    pub backend: Backend,
}

impl ArtifactKey {
    /// Builds the key for running `image` on `(isa, buildset, backend)`.
    pub fn new(isa: &str, image: &lis_mem::Image, buildset: &str, backend: Backend) -> ArtifactKey {
        ArtifactKey {
            isa: isa.to_string(),
            image_hash: image.content_hash(),
            buildset: buildset.to_string(),
            backend,
        }
    }
}

impl std::fmt::Display for ArtifactKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}/{:?}@{:016x}", self.isa, self.buildset, self.backend, self.image_hash)
    }
}

/// Monotonic usage counters for an [`ArtifactStore`], read without locking.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreStats {
    /// Lookups that found a snapshot.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Snapshots inserted (first-wins; replaced entries are not counted).
    pub inserts: u64,
    /// Current number of stored snapshots.
    pub entries: u64,
}

/// A thread-safe, content-addressed store of translation snapshots shared by
/// every session of a long-running service. First insert wins: once a key is
/// populated, later (identical, by content addressing) snapshots are
/// dropped, so hit counters measure genuine cross-session reuse.
#[derive(Debug, Default)]
pub struct ArtifactStore {
    map: Mutex<HashMap<ArtifactKey, Arc<Artifacts>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
}

impl ArtifactStore {
    /// Creates an empty store.
    pub fn new() -> ArtifactStore {
        ArtifactStore::default()
    }

    /// Looks up the snapshot for `key`, counting a hit or a miss.
    pub fn get(&self, key: &ArtifactKey) -> Option<Arc<Artifacts>> {
        let found = self.map.lock().expect("artifact store poisoned").get(key).cloned();
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Inserts `art` under `key` unless the key is already populated.
    /// Returns whether the snapshot was stored.
    pub fn insert(&self, key: ArtifactKey, art: Arc<Artifacts>) -> bool {
        let mut map = self.map.lock().expect("artifact store poisoned");
        if map.contains_key(&key) {
            return false;
        }
        map.insert(key, art);
        self.inserts.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Current usage counters.
    pub fn stats(&self) -> StoreStats {
        let entries = self.map.lock().expect("artifact store poisoned").len() as u64;
        StoreStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            entries,
        }
    }
}

/// Seeding can fail only for a reason worth reporting; everything here means
/// "these caches do not describe that simulator".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeedError {
    /// The snapshot was built for a different ISA.
    IsaMismatch,
    /// The snapshot was built for a different buildset.
    BuildsetMismatch,
    /// The snapshot was built by a different backend.
    BackendMismatch,
    /// The snapshot was built under a different block-length cap.
    MaxBlockMismatch,
    /// The target simulator has (or had) fault injection armed; its caches
    /// follow chaos invalidation rules and must stay private.
    Tainted,
}

impl std::fmt::Display for SeedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let what = match self {
            SeedError::IsaMismatch => "ISA mismatch",
            SeedError::BuildsetMismatch => "buildset mismatch",
            SeedError::BackendMismatch => "backend mismatch",
            SeedError::MaxBlockMismatch => "max-block mismatch",
            SeedError::Tainted => "simulator is chaos-tainted",
        };
        f.write_str(what)
    }
}

impl std::error::Error for SeedError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn artifacts_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Artifacts>();
        assert_send_sync::<ArtifactStore>();
    }

    #[test]
    fn store_counts_hits_misses_and_first_insert_wins() {
        let store = ArtifactStore::new();
        let key = ArtifactKey {
            isa: "alpha".into(),
            image_hash: 7,
            buildset: "block-all".into(),
            backend: Backend::Cached,
        };
        assert!(store.get(&key).is_none());
        let art = Arc::new(Artifacts {
            isa: "alpha",
            buildset: "block-all",
            backend: Backend::Cached,
            max_block: 64,
            blocks: vec![],
            insts: vec![],
            compiled: vec![],
        });
        assert!(store.insert(key.clone(), Arc::clone(&art)));
        assert!(!store.insert(key.clone(), art), "first insert wins");
        assert!(store.get(&key).is_some());
        let s = store.stats();
        assert_eq!((s.hits, s.misses, s.inserts, s.entries), (1, 1, 1, 1));
        assert!(key.to_string().contains("alpha/block-all"));
    }
}
