//! The compiled superblock backend.
//!
//! [`Backend::Compiled`](crate::Backend::Compiled) is the toolkit's
//! binary-translation analog taken one step further than the cached backend.
//! Per (ISA, buildset) it synthesizes a translation layer from the same
//! single specification:
//!
//! * **Flattened action chains.** Each instruction's present actions are
//!   filtered into a dense array once at block-build time
//!   ([`lis_core::StepActions::flatten_exec`]), so execution dispatches
//!   direct-threaded over the chain with no per-step `Option` tests.
//! * **Superblock chaining.** Every block records the arena index of its
//!   observed fall-through and taken-branch successors. Hot loops follow
//!   those links instead of re-entering the PC index, so steady-state
//!   execution does one hash lookup per *chain*, not per block.
//! * **Mask-driven elision.** The buildset's precomputed visibility mask is
//!   consulted at synthesis time: header-only interfaces skip the
//!   publication walk, the unobserved driver builds no records at all, and
//!   non-speculative buildsets run with no undo plumbing (the engine wires
//!   `Exec::undo` to `None` once, at synthesis).
//!
//! Links are *hints*, never trusted: each traversal validates that the
//! linked block actually starts at the wanted PC, so stale links after an
//! invalidation are harmless — they miss and get repatched. Cache-integrity
//! rules mirror the cached backend: a chaos-poisoned build is returned as a
//! one-shot block that is never inserted (and therefore never linkable), and
//! unmap events drop the whole compiled cache.

use crate::decode::PcMap;
use crate::engine::{Backend, Block, PredecInst};
use lis_analyze::tir::{TirAccess, TirInst, TranslationView};
use lis_core::{
    generic_operand_fetch, generic_writeback, ActionFn, ArchState, BuildsetDef, Exec, FieldId,
    FieldSet, Frame, InstClass, InstDef, InstHeader, IsaSpec, OperandRef, Operands, OsState,
    RegBacking, Step, F_OPCODE, MAX_DEST, MAX_SRC, SRC_FIELDS,
};
use std::cell::Cell;
use std::rc::Rc;

/// "No successor recorded" marker for superblock links and the chain
/// cursor.
pub(crate) const NO_LINK: u32 = u32::MAX;

/// "Generic action not present in the chain" marker used while locating
/// the fetch/writeback slots during translation.
pub(crate) const NO_STEP: u8 = u8::MAX;

fn read_nothing(_: &ArchState, _: u16) -> u64 {
    0
}

fn write_nothing(_: &mut ArchState, _: u16, _: u64) {}

/// A lowered source-operand read. Classes whose [`RegBacking`] admits it
/// become direct register-file loads; everything else stays an accessor
/// call.
#[derive(Clone, Copy)]
pub(crate) enum SrcOp {
    /// Accessor call (opaque backing or the class's special index).
    Call(fn(&ArchState, u16) -> u64, u16),
    /// Direct `gpr[i]` load.
    Gpr(u16),
    /// Direct `spr[slot]` load.
    Spr(u8),
}

/// A lowered destination-operand write, with the backing's write mask baked
/// in for the direct forms.
#[derive(Clone, Copy)]
pub(crate) enum DestOp {
    /// Accessor call (opaque backing or the class's special index).
    Call(fn(&mut ArchState, u16, u64), u16),
    /// Direct masked `gpr[i]` store.
    Gpr(u16, u64),
    /// Direct masked `spr[slot]` store.
    Spr(u8, u64),
}

fn lower_src(isa: &IsaSpec, r: OperandRef) -> SrcOp {
    let def = &isa.reg_classes[r.class as usize];
    match def.backing {
        Some(RegBacking::Gpr { special, .. }) if special != Some(r.index) => SrcOp::Gpr(r.index),
        Some(RegBacking::Spr { slot, .. }) => SrcOp::Spr(slot),
        _ => SrcOp::Call(def.read, r.index),
    }
}

fn lower_dest(isa: &IsaSpec, r: OperandRef) -> DestOp {
    let def = &isa.reg_classes[r.class as usize];
    match def.backing {
        Some(RegBacking::Gpr { special, write_mask }) if special != Some(r.index) => {
            DestOp::Gpr(r.index, write_mask)
        }
        Some(RegBacking::Spr { slot, write_mask }) => DestOp::Spr(slot, write_mask),
        _ => DestOp::Call(def.write, r.index),
    }
}

/// One instruction in a compiled superblock: the predecoded replay data
/// plus its flattened direct-threaded action chain.
///
/// When an instruction uses the specification's *generic* operand-fetch or
/// writeback actions in the canonical positions (fetch first, writeback
/// last), translation strips them from the dispatched range (`mid_lo` /
/// `mid_hi`) and resolves each operand's register-class accessor once,
/// here. The fast execution loop then runs the lowered operand list as
/// straight-line code around the remaining actions — no action call, no
/// runtime walk of the operand table, no per-slot position tests. The
/// unspecialized `chain` is kept as-is for the observing and speculative
/// drivers, whose writeback must capture undo records.
#[derive(Clone, Copy)]
pub(crate) struct CompiledInst {
    /// Instruction index, or [`crate::engine::ILLEGAL`].
    pub(crate) op: u16,
    /// Raw instruction word.
    pub(crate) bits: u32,
    /// Captured operand identifiers.
    pub(crate) ops: Operands,
    /// Captured decode-time `(field, value)` pairs, with the opcode field
    /// appended so one replay restores the whole decode frame.
    pub(crate) fields: [(u8, u64); 5],
    /// Number of valid entries in `fields`.
    pub(crate) nfields: u8,
    /// Validity mask covering exactly the `fields` entries — assigning it
    /// replaces the per-field mask updates of a set-by-set replay.
    pub(crate) valid: FieldSet,
    /// True when the decode action must re-run at execution time.
    pub(crate) fallback: bool,
    /// Dense execution chain (absent action slots filtered out at build).
    pub(crate) chain: [ActionFn; 5],
    /// Number of live entries in `chain`.
    pub(crate) chain_len: u8,
    /// End of the chain range dispatched *before* the inlined generic
    /// fetch (actions such as a predicate check that precede operand
    /// fetch; usually empty).
    pub(crate) pre_hi: u8,
    /// Run the lowered source reads between the pre and mid ranges.
    pub(crate) has_fetch: bool,
    /// Start of the chain range dispatched after the inlined fetch.
    pub(crate) mid_lo: u8,
    /// End of the dispatched chain range (stops before an inlined trailing
    /// generic writeback).
    pub(crate) mid_hi: u8,
    /// Run the lowered destination writes after the dispatched range.
    pub(crate) has_wb: bool,
    /// Lowered source-operand reads.
    pub(crate) src_read: [SrcOp; MAX_SRC],
    /// Live entries in `src_read`.
    pub(crate) nsrc: u8,
    /// Validity mask for the staged source fields (`SRC_FIELDS[..nsrc]`).
    pub(crate) src_mask: FieldSet,
    /// Lowered destination-operand writes.
    pub(crate) dest_write: [DestOp; MAX_DEST],
    /// Live entries in `dest_write`.
    pub(crate) ndest: u8,
}

impl CompiledInst {
    fn compile(e: &PredecInst, isa: &IsaSpec) -> CompiledInst {
        let (chain, chain_len) = e.actions.flatten_exec();
        let mut fetch_at = NO_STEP;
        let mut wb_at = NO_STEP;
        if !e.fallback {
            // Fallback instructions re-decode at execution time, so their
            // operands are not translate-time constants.
            for (i, &a) in chain[..chain_len as usize].iter().enumerate() {
                if std::ptr::fn_addr_eq(a, generic_operand_fetch as ActionFn) {
                    fetch_at = i as u8;
                } else if std::ptr::fn_addr_eq(a, generic_writeback as ActionFn) {
                    wb_at = i as u8;
                }
            }
        }
        // Specialize the canonical layout: fetch anywhere before a
        // trailing writeback (predicate checks may precede the fetch).
        // Anything else keeps the full chain in the dispatched ranges,
        // where the generic actions still run correctly as actions.
        let mut pre_hi = 0u8;
        let mut mid_lo = 0u8;
        let mut mid_hi = chain_len;
        let mut has_fetch = false;
        let mut has_wb = false;
        let wb_ok = wb_at == NO_STEP
            || (chain_len > 0
                && wb_at == chain_len - 1
                && (fetch_at == NO_STEP || fetch_at < wb_at));
        if wb_ok {
            if fetch_at != NO_STEP {
                has_fetch = true;
                pre_hi = fetch_at;
                mid_lo = fetch_at + 1;
            }
            if wb_at != NO_STEP {
                has_wb = true;
                mid_hi = chain_len - 1;
            }
        }
        let src_mask =
            SRC_FIELDS[..e.ops.srcs().len()].iter().fold(FieldSet::EMPTY, |s, &f| s.with(f));
        let mut fields = [(0u8, 0u64); 5];
        fields[..4].copy_from_slice(&e.fields);
        fields[e.nfields as usize] = (F_OPCODE.0, e.op as u64);
        let nfields = e.nfields + 1;
        let valid = fields[..nfields as usize]
            .iter()
            .fold(FieldSet::EMPTY, |s, &(f, _)| s.with(FieldId(f)));
        let mut src_read = [SrcOp::Call(read_nothing, 0); MAX_SRC];
        for (slot, &r) in src_read.iter_mut().zip(e.ops.srcs()) {
            *slot = lower_src(isa, r);
        }
        let mut dest_write = [DestOp::Call(write_nothing, 0); MAX_DEST];
        for (slot, &r) in dest_write.iter_mut().zip(e.ops.dests()) {
            *slot = lower_dest(isa, r);
        }
        CompiledInst {
            op: e.op,
            bits: e.bits,
            ops: e.ops,
            fields,
            nfields,
            valid,
            fallback: e.fallback,
            chain,
            chain_len,
            pre_hi,
            has_fetch,
            mid_lo,
            mid_hi,
            has_wb,
            src_read,
            nsrc: e.ops.srcs().len() as u8,
            src_mask,
            dest_write,
            ndest: e.ops.dests().len() as u8,
        }
    }
}

impl std::fmt::Debug for CompiledInst {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompiledInst")
            .field("op", &self.op)
            .field("bits", &format_args!("{:#010x}", self.bits))
            .field("chain_len", &self.chain_len)
            .finish_non_exhaustive()
    }
}

/// A compiled basic block with successor links.
pub(crate) struct Superblock {
    /// First instruction's PC.
    pub(crate) entry: u64,
    /// The compiled instructions.
    pub(crate) insts: Box<[CompiledInst]>,
    /// Arena index of the sequential (fall-through) successor.
    fallthrough: Cell<u32>,
    /// Arena index of the last observed taken-flow successor.
    taken: Cell<u32>,
    /// Entry PC the `taken` link leads to.
    taken_pc: Cell<u64>,
}

impl Superblock {
    pub(crate) fn compile(entry: u64, block: &Block, isa: &IsaSpec) -> Superblock {
        Superblock {
            entry,
            insts: block.insts.iter().map(|e| CompiledInst::compile(e, isa)).collect(),
            fallthrough: Cell::new(NO_LINK),
            taken: Cell::new(NO_LINK),
            taken_pc: Cell::new(0),
        }
    }

    /// Rebuilds a superblock from exported snapshot parts. Successor links
    /// start cold ([`NO_LINK`]) — they are per-simulator observations of
    /// control flow, never part of the shareable translation.
    pub(crate) fn from_parts(entry: u64, insts: Box<[CompiledInst]>) -> Superblock {
        Superblock {
            entry,
            insts,
            fallthrough: Cell::new(NO_LINK),
            taken: Cell::new(NO_LINK),
            taken_pc: Cell::new(0),
        }
    }

    /// PC of the instruction after this block (the sequential successor's
    /// entry).
    #[inline]
    pub(crate) fn fallthrough_pc(&self, pc_mask: u64) -> u64 {
        self.entry.wrapping_add(4 * self.insts.len() as u64) & pc_mask
    }

    /// Corrupts this translation from the raw chaos draws — the
    /// translate-fault channel's payload, modeling a silent translator bug.
    ///
    /// Two halves. The successor link hints are scrambled, which is
    /// *provably harmless*: link following re-validates the target's entry
    /// PC on every hop, so the worst case is a wasted probe (this half
    /// documents that hints are never trusted). One captured decode value
    /// is then bit-flipped, which is the dangerous half: the replayed
    /// decode state no longer matches the stored instruction bits, and
    /// since the stored bits are what every first-word freshness probe
    /// compares, no cache-verification pass can see it — only lockstep
    /// against a reference can. The victim selection is a pure function of
    /// `(idx, bit)` and the translation, so a scripted replay with the same
    /// draws poisons the same capture.
    pub(crate) fn poison(&mut self, idx: u32, bit: u8) {
        self.fallthrough.set(idx ^ 0x5a5a);
        self.taken.set(idx ^ 0xa5a5);
        self.taken_pc.set(self.entry ^ (u64::from(bit) << 2));
        let n = self.insts.len();
        if n == 0 {
            return;
        }
        // Prefer a real decode capture (an immediate, a shift amount — the
        // slots before the appended opcode); settle for the opcode capture
        // when the block holds nothing richer.
        for wants_decode in [true, false] {
            for off in 0..n {
                let e = &mut self.insts[(idx as usize + off) % n];
                if e.fallback || e.nfields == 0 || (wants_decode && e.nfields < 2) {
                    continue;
                }
                let slot = if wants_decode { (bit as usize) % (e.nfields as usize - 1) } else { 0 };
                e.fields[slot].1 ^= 1u64 << (bit % 64);
                return;
            }
        }
    }
}

impl std::fmt::Debug for Superblock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Superblock")
            .field("entry", &format_args!("{:#x}", self.entry))
            .field("len", &self.insts.len())
            .field("fallthrough", &self.fallthrough.get())
            .field("taken", &self.taken.get())
            .finish_non_exhaustive()
    }
}

/// The per-simulator compiled-code cache: an arena of superblocks plus a PC
/// index and the chain-patching cursor. Links are arena indices into the
/// arena vector; clearing the arena invalidates every link at once because
/// traversal always bounds-checks and validates the target entry PC.
#[derive(Debug)]
pub(crate) struct CompiledCache {
    arena: Vec<Rc<Superblock>>,
    index: PcMap<u32>,
    /// Arena index of the most recently executed cached block, used to
    /// patch successor links as control flow is observed.
    pub(crate) last: u32,
}

impl Default for CompiledCache {
    fn default() -> Self {
        CompiledCache { arena: Vec::new(), index: PcMap::default(), last: NO_LINK }
    }
}

impl CompiledCache {
    /// Drops every superblock, link, and the cursor.
    pub(crate) fn clear(&mut self) {
        self.arena.clear();
        self.index.clear();
        self.last = NO_LINK;
    }

    /// Number of cached superblocks.
    pub(crate) fn len(&self) -> usize {
        self.arena.len()
    }

    /// Snapshots every indexed superblock as plain `(entry PC, instructions)`
    /// data, sorted by PC. Link hints are deliberately not exported (they
    /// are per-simulator flow observations); one-shot blocks were never
    /// indexed and so never escape.
    pub(crate) fn export(&self) -> Vec<(u64, Box<[CompiledInst]>)> {
        let mut out: Vec<(u64, Box<[CompiledInst]>)> = self
            .index
            .iter()
            .map(|(&pc, &idx)| (pc, self.arena[idx as usize].insts.clone()))
            .collect();
        out.sort_unstable_by_key(|&(pc, _)| pc);
        out
    }

    /// Index lookup by entry PC.
    pub(crate) fn lookup(&self, pc: u64) -> Option<(Rc<Superblock>, u32)> {
        let &idx = self.index.get(&pc)?;
        Some((Rc::clone(&self.arena[idx as usize]), idx))
    }

    /// Inserts a block, returning its arena index ([`NO_LINK`] if the arena
    /// is implausibly full, in which case the block stays one-shot).
    pub(crate) fn insert(&mut self, pc: u64, sb: Rc<Superblock>) -> u32 {
        if self.arena.len() >= NO_LINK as usize {
            return NO_LINK;
        }
        let idx = self.arena.len() as u32;
        self.arena.push(sb);
        self.index.insert(pc, idx);
        idx
    }

    /// Records that control flowed from block `from` into the block at `pc`
    /// (arena index `to`), patching the matching successor link.
    pub(crate) fn patch(&self, from: u32, to: u32, pc: u64, pc_mask: u64) {
        let Some(prev) = self.arena.get(from as usize) else { return };
        if pc == prev.fallthrough_pc(pc_mask) {
            prev.fallthrough.set(to);
        } else {
            prev.taken.set(to);
            prev.taken_pc.set(pc);
        }
    }

    /// Follows a successor link of block `from` toward `pc`. Returns the
    /// linked block only when the hint exists and the target really starts
    /// at `pc` — stale or missing links simply miss.
    #[inline]
    pub(crate) fn follow(&self, from: u32, pc: u64, pc_mask: u64) -> Option<(Rc<Superblock>, u32)> {
        let prev = self.arena.get(from as usize)?;
        let hint = if pc == prev.fallthrough_pc(pc_mask) {
            prev.fallthrough.get()
        } else if pc == prev.taken_pc.get() {
            prev.taken.get()
        } else {
            NO_LINK
        };
        let sb = self.arena.get(hint as usize)?;
        (sb.entry == pc).then(|| (Rc::clone(sb), hint))
    }

    /// [`CompiledCache::follow`] without the `Rc` traffic: returns the
    /// linked block's arena index for callers that borrow blocks through
    /// [`CompiledCache::peek`] instead of holding them. The chain loop
    /// follows links this way — two refcount updates per basic block add
    /// up when hot blocks are two instructions long.
    #[inline]
    pub(crate) fn follow_idx(&self, from: u32, pc: u64, pc_mask: u64) -> Option<u32> {
        let prev = self.arena.get(from as usize)?;
        let hint = if pc == prev.fallthrough_pc(pc_mask) {
            prev.fallthrough.get()
        } else if pc == prev.taken_pc.get() {
            prev.taken.get()
        } else {
            NO_LINK
        };
        let sb = self.arena.get(hint as usize)?;
        (sb.entry == pc).then_some(hint)
    }

    /// Borrows an arena block by index.
    #[inline]
    pub(crate) fn peek(&self, idx: u32) -> Option<&Superblock> {
        self.arena.get(idx as usize).map(|rc| &**rc)
    }
}

// ----------------------------------------------------------------------
// The analyzable-IR seam: side-effect-free synthesis introspection
// ----------------------------------------------------------------------

/// Predecodes `def`'s canonical encoding on scratch state, mirroring the
/// engine's predecode rule exactly — same 4-slot capture buffer, same
/// fallback on a decode fault or capture overflow — without constructing a
/// simulator or touching any counters.
fn predecode_canonical(isa: &'static IsaSpec, op: u16, def: &InstDef) -> PredecInst {
    let actions = def.actions;
    let fallback = PredecInst {
        op,
        bits: def.bits,
        ops: Operands::new(),
        fields: [(0, 0); 4],
        nfields: 0,
        fallback: true,
        actions,
    };
    let mut frame = Frame::new();
    let mut ops = Operands::new();
    let mut header = InstHeader { instr_bits: def.bits, ..InstHeader::default() };
    let mut state = ArchState::new(isa.endian);
    let mut os = OsState::new(0);
    if let Some(dec) = actions.decode {
        let mut ex = Exec {
            isa,
            frame: &mut frame,
            ops: &mut ops,
            header: &mut header,
            opcode: op,
            state: &mut state,
            os: &mut os,
            undo: None,
            chaos: None,
        };
        if dec(&mut ex).is_err() {
            return fallback;
        }
    }
    let mut fields = [(0u8, 0u64); 4];
    let mut n = 0usize;
    for f in frame.valid().iter() {
        if n == fields.len() {
            return fallback;
        }
        fields[n] = (f.0, frame.raw(f.index()));
        n += 1;
    }
    PredecInst { op, bits: def.bits, ops, fields, nfields: n as u8, fallback: false, actions }
}

fn tir_src(op: SrcOp, r: OperandRef) -> TirAccess {
    match op {
        SrcOp::Call(_, index) => TirAccess::Accessor { class: r.class, index },
        SrcOp::Gpr(index) => TirAccess::Gpr { class: r.class, index, mask: None },
        SrcOp::Spr(slot) => TirAccess::Spr { class: r.class, slot, mask: None },
    }
}

fn tir_dest(op: DestOp, r: OperandRef) -> TirAccess {
    match op {
        DestOp::Call(_, index) => TirAccess::Accessor { class: r.class, index },
        DestOp::Gpr(index, mask) => TirAccess::Gpr { class: r.class, index, mask: Some(mask) },
        DestOp::Spr(slot, mask) => TirAccess::Spr { class: r.class, slot, mask: Some(mask) },
    }
}

/// Probes, on scratch structures, that link following really re-validates
/// the target block's entry PC: a deliberately stale hint (right arena
/// index, wrong claimed PC) must miss, and a truthful hint must resolve.
/// This is `validate_backing`'s philosophy applied to the chaining rules —
/// the view reports what the code *does*, not what a comment promises.
fn probe_link_validation() -> bool {
    let mut cache = CompiledCache::default();
    let a = cache.insert(0x1000, Rc::new(Superblock::from_parts(0x1000, Box::from([]))));
    let c = cache.insert(0x4000, Rc::new(Superblock::from_parts(0x4000, Box::from([]))));
    // Plant a stale taken hint on A: arena index of C, but claiming it
    // leads to 0x2000. Following toward 0x2000 must reject it.
    cache.patch(a, c, 0x2000, u64::MAX);
    let stale_misses = cache.follow(a, 0x2000, u64::MAX).is_none()
        && cache.follow_idx(a, 0x2000, u64::MAX).is_none();
    // Repatch truthfully; the hint must now resolve to C.
    cache.patch(a, c, 0x4000, u64::MAX);
    stale_misses && cache.follow_idx(a, 0x4000, u64::MAX) == Some(c)
}

/// Probes that superblocks rebuilt from exported snapshot parts start with
/// cold successor links.
fn probe_import_links_cold() -> bool {
    let sb = Superblock::from_parts(0x1000, Box::from([]));
    sb.fallthrough.get() == NO_LINK && sb.taken.get() == NO_LINK && sb.taken_pc.get() == 0
}

/// Order of [`lis_core::StepActions::exec_slots`], used to recover which
/// step contributed each flattened-chain action.
const EXEC_STEPS: [Step; 5] =
    [Step::OperandFetch, Step::Evaluate, Step::Memory, Step::Writeback, Step::Exception];

fn tir_inst(isa: &'static IsaSpec, op: u16, def: &'static InstDef) -> TirInst {
    let pred = predecode_canonical(isa, op, def);
    let ci = CompiledInst::compile(&pred, isa);
    let (spec_chain, spec_len) = def.actions.flatten_exec();
    let chain_matches_spec = spec_len == ci.chain_len
        && spec_chain[..spec_len as usize]
            .iter()
            .zip(&ci.chain[..ci.chain_len as usize])
            .all(|(a, b)| std::ptr::fn_addr_eq(*a, *b));
    let wb_is_generic = ci.has_wb
        && std::ptr::fn_addr_eq(ci.chain[ci.mid_hi as usize], generic_writeback as ActionFn);
    TirInst {
        name: def.name,
        class: def.class,
        fallback: ci.fallback,
        chain_len: ci.chain_len,
        pre_hi: ci.pre_hi,
        mid_lo: ci.mid_lo,
        mid_hi: ci.mid_hi,
        has_fetch: ci.has_fetch,
        has_wb: ci.has_wb,
        wb_is_generic,
        chain_steps: def
            .actions
            .exec_slots()
            .iter()
            .zip(EXEC_STEPS)
            .filter_map(|(a, s)| a.map(|_| s))
            .collect(),
        srcs: ci.src_read[..ci.nsrc as usize]
            .iter()
            .zip(pred.ops.srcs())
            .map(|(&s, &r)| tir_src(s, r))
            .collect(),
        dests: ci.dest_write[..ci.ndest as usize]
            .iter()
            .zip(pred.ops.dests())
            .map(|(&d, &r)| tir_dest(d, r))
            .collect(),
        captured: ci.valid,
        chain_matches_spec,
        // Mirrors the block builder's termination rule exactly.
        ends_block: matches!(def.class, InstClass::Branch | InstClass::Jump | InstClass::Syscall),
    }
}

/// Synthesizes the compiled backend's translation decisions for one
/// (ISA, buildset) cell as plain, analyzable data — the input to
/// `lis_analyze`'s translation-soundness passes (LIS006–LIS010).
///
/// This is a *pure introspection* of the same code paths the compiled
/// backend executes: each instruction's canonical encoding is predecoded
/// and compiled exactly as a real block build would (same capture rule,
/// same chain specialization, same operand lowering), the elision and undo
/// decisions are copied from the buildset the way the engine copies them,
/// and the link-validation guarantees are *probed* on scratch structures
/// rather than asserted. It allocates only the returned view — no caches,
/// no counters, no translation output is perturbed.
pub fn synthesize_view(isa: &'static IsaSpec, bs: &BuildsetDef) -> TranslationView {
    let mut ladder = vec!["compiled"];
    let mut b = Backend::Compiled;
    while let Some(next) = b.demoted() {
        ladder.push(match next {
            Backend::Compiled => "compiled",
            Backend::Cached => "cached",
            Backend::Interpreted => "interpreted",
        });
        b = next;
    }
    TranslationView {
        isa: isa.name,
        buildset: bs.name,
        elides_publish: bs.elides_publish(),
        vis_fields: bs.visibility.fields,
        vis_operand_ids: bs.visibility.operand_ids,
        speculation: bs.speculation,
        // Exactly the engine's wiring rule: `Exec::undo` is Some iff the
        // buildset speculates.
        undo_wired: bs.speculation,
        links_validated: probe_link_validation(),
        import_links_cold: probe_import_links_cold(),
        ladder,
        insts: isa
            .insts
            .iter()
            .enumerate()
            .map(|(op, def)| tir_inst(isa, op as u16, def))
            .collect(),
    }
}
