//! # lis-runtime — simulator synthesis engine
//!
//! Takes a single ISA specification (an [`lis_core::IsaSpec`]) and a derived
//! interface definition (an [`lis_core::BuildsetDef`]) and *synthesizes* a
//! functional simulator — [`Simulator`] — exposing exactly that interface:
//!
//! * `block-*` buildsets expose [`Simulator::next_block`] (one call per
//!   basic block),
//! * `one-*` buildsets expose [`Simulator::next_inst`] (one call per
//!   instruction),
//! * `step-*` buildsets expose [`Simulator::step_inst`] (seven calls per
//!   instruction: fetch, decode, operand fetch, evaluate, memory,
//!   writeback, exception),
//! * `*-spec` buildsets additionally expose
//!   [`Simulator::checkpoint`]/[`Simulator::rollback`]/[`Simulator::commit`].
//!
//! Interfaces are validated against the specification's declared dataflow at
//! construction time, so the paper's "typical interface specification error"
//! (hiding a value that must cross a call boundary) is caught before any
//! instruction executes.
//!
//! The [`Backend`] selects between the cached (predecoded basic blocks, the
//! binary-translation analog) and interpreted execution styles.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod artifact;
mod compile;
mod decode;
mod engine;
mod error;
mod stats;
pub mod toy;

pub use artifact::{ArtifactKey, ArtifactStore, Artifacts, SeedError, StoreStats};
pub use compile::synthesize_view;
pub use decode::{DecodeTable, PcHashBuilder, PcHasher, PcMap};
pub use engine::{
    Backend, CheckpointId, DemotionEvent, DemotionReason, Simulator, DEFAULT_MAX_BLOCK, STACK_TOP,
};
pub use error::{BuildError, IfaceError, SimStop};
// Chaos vocabulary, re-exported so harness code needs only this crate.
pub use lis_mem::{ChaosEvent, ChaosPlan, ChaosRng, ChaosState};
pub use stats::{RunSummary, SimStats};
