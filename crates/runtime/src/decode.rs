//! The indexed decode table.
//!
//! The reference decoder in `lis-core` is a linear mask/match scan. The
//! engine builds a 256-way table over the top byte of the instruction word:
//! each bucket holds only the definitions whose encodings are compatible
//! with that byte, so a decode is a short scan. Definitions whose masks do
//! not constrain the top byte (e.g. ARM's condition field) simply appear in
//! several buckets.

use lis_core::IsaSpec;

/// A 256-bucket first-byte-indexed decoder derived from an [`IsaSpec`].
#[derive(Debug, Clone)]
pub struct DecodeTable {
    buckets: Vec<Vec<u16>>,
}

impl DecodeTable {
    /// Builds the table from an ISA description.
    pub fn build(isa: &IsaSpec) -> DecodeTable {
        let mut buckets = vec![Vec::new(); 256];
        for (i, def) in isa.insts.iter().enumerate() {
            let mask_hi = (def.mask >> 24) as u8;
            let bits_hi = (def.bits >> 24) as u8;
            for (b, bucket) in buckets.iter_mut().enumerate() {
                if (b as u8) & mask_hi == bits_hi & mask_hi {
                    bucket.push(i as u16);
                }
            }
        }
        DecodeTable { buckets }
    }

    /// Decodes one instruction word to its definition index.
    ///
    /// Definition order gives priority, exactly as in the reference scan.
    #[inline]
    pub fn decode(&self, isa: &IsaSpec, word: u32) -> Option<u16> {
        let bucket = &self.buckets[(word >> 24) as usize];
        bucket.iter().copied().find(|&i| isa.insts[i as usize].matches(word))
    }

    /// Average bucket occupancy, for diagnostics.
    pub fn mean_bucket_len(&self) -> f64 {
        let total: usize = self.buckets.iter().map(Vec::len).sum();
        total as f64 / self.buckets.len() as f64
    }
}

/// A fast, deterministic hasher for PC-keyed maps (block and decode caches).
/// PCs are small, well-distributed integers; SipHash is overkill on the hot
/// path.
#[derive(Debug, Clone, Copy, Default)]
pub struct PcHasher(u64);

impl std::hash::Hasher for PcHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        // Fibonacci-style multiplicative mix; enough for page-aligned PCs.
        self.0 = v.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    }
}

/// `BuildHasher` for the PC hasher.
#[derive(Debug, Clone, Copy, Default)]
pub struct PcHashBuilder;

impl std::hash::BuildHasher for PcHashBuilder {
    type Hasher = PcHasher;

    #[inline]
    fn build_hasher(&self) -> PcHasher {
        PcHasher(0)
    }
}

/// A `HashMap` keyed by PC using the fast hasher.
pub type PcMap<V> = std::collections::HashMap<u64, V, PcHashBuilder>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toy;

    #[test]
    fn table_agrees_with_reference_scan() {
        let isa = toy::spec();
        let table = DecodeTable::build(isa);
        for word in [0x0112_0005u32, 0x0212_3000, 0x0712_0000, 0xffff_ffff, 0] {
            assert_eq!(table.decode(isa, word), isa.decode(word), "word {word:#x}");
        }
    }

    #[test]
    fn buckets_are_narrow_for_top_byte_opcodes() {
        let isa = toy::spec();
        let table = DecodeTable::build(isa);
        assert!(table.mean_bucket_len() < isa.num_insts() as f64);
    }

    #[test]
    fn pc_map_works() {
        let mut m: PcMap<u32> = PcMap::default();
        for pc in (0x1000u64..0x2000).step_by(4) {
            m.insert(pc, pc as u32);
        }
        assert_eq!(m.get(&0x1ffc), Some(&0x1ffc));
        assert_eq!(m.len(), 0x400);
    }
}
