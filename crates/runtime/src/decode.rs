//! The indexed decode table.
//!
//! The reference decoder in `lis-core` is a linear mask/match scan. The
//! engine builds a 256-way table over the top byte of the instruction word:
//! each bucket holds only the definitions whose encodings are compatible
//! with that byte, so a decode is a short scan. Definitions whose masks do
//! not constrain the top byte (e.g. ARM's condition field) simply appear in
//! several buckets.

use lis_core::IsaSpec;

/// A 256-bucket first-byte-indexed decoder derived from an [`IsaSpec`].
#[derive(Debug, Clone)]
pub struct DecodeTable {
    buckets: Vec<Vec<u16>>,
}

impl DecodeTable {
    /// Builds the table from an ISA description.
    pub fn build(isa: &IsaSpec) -> DecodeTable {
        let mut buckets = vec![Vec::new(); 256];
        for (i, def) in isa.insts.iter().enumerate() {
            let mask_hi = (def.mask >> 24) as u8;
            let bits_hi = (def.bits >> 24) as u8;
            for (b, bucket) in buckets.iter_mut().enumerate() {
                if (b as u8) & mask_hi == bits_hi & mask_hi {
                    bucket.push(i as u16);
                }
            }
        }
        DecodeTable { buckets }
    }

    /// Decodes one instruction word to its definition index.
    ///
    /// Definition order gives priority, exactly as in the reference scan.
    #[inline]
    pub fn decode(&self, isa: &IsaSpec, word: u32) -> Option<u16> {
        let bucket = &self.buckets[(word >> 24) as usize];
        bucket.iter().copied().find(|&i| isa.insts[i as usize].matches(word))
    }

    /// Average bucket occupancy, for diagnostics.
    pub fn mean_bucket_len(&self) -> f64 {
        let total: usize = self.buckets.iter().map(Vec::len).sum();
        total as f64 / self.buckets.len() as f64
    }
}

/// The fast, deterministic FxHash-style hasher for PC-keyed maps (block,
/// decode, and compiled-code caches). PCs are small, well-distributed
/// integers, and the maps never outlive a single deterministic run, so
/// SipHash's keyed DoS resistance is pure overhead on the hot path. The
/// implementation lives in `lis-mem` (which uses it for its page table) so
/// there is exactly one copy in the tree.
pub use lis_mem::fx::FxHasher as PcHasher;

/// `BuildHasher` for the PC hasher.
pub use lis_mem::fx::FxBuildHasher as PcHashBuilder;

/// A `HashMap` keyed by PC using the fast hasher.
pub type PcMap<V> = lis_mem::fx::FxMap<u64, V>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toy;

    #[test]
    fn table_agrees_with_reference_scan() {
        let isa = toy::spec();
        let table = DecodeTable::build(isa);
        for word in [0x0112_0005u32, 0x0212_3000, 0x0712_0000, 0xffff_ffff, 0] {
            assert_eq!(table.decode(isa, word), isa.decode(word), "word {word:#x}");
        }
    }

    #[test]
    fn buckets_are_narrow_for_top_byte_opcodes() {
        let isa = toy::spec();
        let table = DecodeTable::build(isa);
        assert!(table.mean_bucket_len() < isa.num_insts() as f64);
    }

    #[test]
    fn hasher_is_deterministic_and_spreads_aligned_keys() {
        use std::hash::BuildHasher;
        let h = |pc: u64| PcHashBuilder.hash_one(pc);
        assert_eq!(h(0x1000), h(0x1000));
        // Word-aligned PCs must spread across the top bits hashbrown
        // indexes with (h1 uses the high bits, h2 the top 7).
        let mut tops = std::collections::HashSet::new();
        for pc in (0x1000u64..0x1000 + 4 * 1024).step_by(4) {
            tops.insert(h(pc) >> 57);
        }
        assert!(tops.len() > 100, "top-bit spread too poor: {}", tops.len());
    }

    #[test]
    fn hasher_byte_path_matches_chunking() {
        use std::hash::Hasher;
        // 11 bytes: one full chunk plus a 3-byte tail; both orders of
        // feeding must agree with the one-shot write.
        let bytes: Vec<u8> = (1..=11).collect();
        let mut a = PcHasher::default();
        a.write(&bytes);
        let mut b = PcHasher::default();
        b.write(&bytes);
        assert_eq!(a.finish(), b.finish());
        let mut c = PcHasher::default();
        c.write(&bytes[..8]);
        let mut d = PcHasher::default();
        d.write_u64(u64::from_le_bytes(bytes[..8].try_into().unwrap()));
        assert_eq!(c.finish(), d.finish());
    }

    #[test]
    fn pc_map_works() {
        let mut m: PcMap<u32> = PcMap::default();
        for pc in (0x1000u64..0x2000).step_by(4) {
            m.insert(pc, pc as u32);
        }
        assert_eq!(m.get(&0x1ffc), Some(&0x1ffc));
        assert_eq!(m.len(), 0x400);
    }
}
