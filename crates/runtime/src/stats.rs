//! Execution statistics.

use std::fmt;

/// Counters kept by a synthesized simulator.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Dynamic instructions completed.
    pub insts: u64,
    /// Interface calls made (all entry points).
    pub calls: u64,
    /// Basic blocks executed (block-semantic interfaces only).
    pub blocks: u64,
    /// Faults reported.
    pub faults: u64,
    /// Basic blocks predecoded (cache misses for the cached backend; every
    /// block call for the interpreted backend).
    pub blocks_built: u64,
    /// Checkpoints taken.
    pub checkpoints: u64,
    /// Rollbacks performed.
    pub rollbacks: u64,
    /// Cached blocks found stale by cache verification and re-executed via
    /// a one-shot interpreted rebuild (graceful degradation) instead of
    /// aborting the run.
    pub fallback_blocks: u64,
    /// Field values copied across the interface boundary by the publication
    /// loop (informational-detail work, counted per published field store).
    pub published_values: u64,
    /// Publications that carried operand identifiers.
    pub published_opsets: u64,
    /// Undo records retired (speculation bookkeeping work). Zero on
    /// non-speculative buildsets.
    pub undo_records: u64,
    /// Backend demotions taken mid-run by the supervision ladder
    /// (Compiled → Cached → Interpreted). Zero unless demotion is enabled
    /// and a trust violation or deadline pressure forced a downgrade.
    /// Excluded from [`detail_units`](Self::detail_units): a demotion is a
    /// supervision action, not interface work.
    pub demotions: u64,
    /// Predecoded blocks and compiled superblocks seeded from a shared
    /// artifact store instead of being built by this simulator (warm start).
    /// Excluded from [`detail_units`](Self::detail_units): seeding amortizes
    /// build work, it is not interface work.
    pub seeded_blocks: u64,
}

impl SimStats {
    /// Interface calls per instruction, the paper's semantic-detail cost
    /// metric.
    pub fn calls_per_inst(&self) -> f64 {
        if self.insts == 0 {
            0.0
        } else {
            self.calls as f64 / self.insts as f64
        }
    }

    /// Mean basic-block length observed.
    pub fn mean_block_len(&self) -> f64 {
        if self.blocks == 0 {
            0.0
        } else {
            self.insts as f64 / self.blocks as f64
        }
    }

    /// Deterministic interface-work units for this run: every interface
    /// call, every published field store, every operand-set publication, and
    /// every undo record costs one unit. This is the detail-cost measure the
    /// sweep normalizes — unlike wall-clock it is a pure function of the
    /// (program, buildset, backend) triple, so ratio tables are bit-identical
    /// across hosts, job counts, and repeated runs.
    pub fn detail_units(&self) -> u64 {
        self.calls + self.published_values + self.published_opsets + self.undo_records
    }

    /// Renders every counter as one flat JSON object (see `--stats-json`),
    /// including `fallback_blocks`, which the text display only shows when
    /// nonzero.
    pub fn to_json(&self) -> String {
        let mut o = lis_core::JsonObj::new();
        o.u64("insts", self.insts)
            .u64("calls", self.calls)
            .u64("blocks", self.blocks)
            .u64("faults", self.faults)
            .u64("blocks_built", self.blocks_built)
            .u64("checkpoints", self.checkpoints)
            .u64("rollbacks", self.rollbacks)
            .u64("fallback_blocks", self.fallback_blocks)
            .u64("published_values", self.published_values)
            .u64("published_opsets", self.published_opsets)
            .u64("undo_records", self.undo_records)
            .u64("demotions", self.demotions)
            .u64("seeded_blocks", self.seeded_blocks)
            .f64("calls_per_inst", self.calls_per_inst())
            .f64("mean_block_len", self.mean_block_len());
        o.finish()
    }
}

impl fmt::Display for SimStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} insts, {} calls ({:.2}/inst), {} blocks, {} faults",
            self.insts,
            self.calls,
            self.calls_per_inst(),
            self.blocks,
            self.faults
        )
    }
}

/// Summary returned by [`Simulator::run_to_halt`](crate::Simulator::run_to_halt).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunSummary {
    /// Dynamic instructions executed during this run call.
    pub insts: u64,
    /// Whether the program exited.
    pub halted: bool,
    /// Exit code if halted.
    pub exit_code: i64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics() {
        let s = SimStats { insts: 100, calls: 700, blocks: 10, ..Default::default() };
        assert!((s.calls_per_inst() - 7.0).abs() < 1e-9);
        assert!((s.mean_block_len() - 10.0).abs() < 1e-9);
        assert_eq!(SimStats::default().calls_per_inst(), 0.0);
        assert_eq!(SimStats::default().mean_block_len(), 0.0);
        assert!(!s.to_string().is_empty());
    }

    #[test]
    fn json_has_every_counter() {
        let s =
            SimStats { insts: 3, fallback_blocks: 2, published_values: 9, ..Default::default() };
        let j = s.to_json();
        assert!(j.contains("\"insts\":3"));
        assert!(j.contains("\"fallback_blocks\":2"));
        assert!(j.contains("\"published_values\":9"));
        assert!(j.contains("\"published_opsets\":0"));
        assert!(j.contains("\"undo_records\":0"));
        assert!(j.contains("\"demotions\":0"));
        assert!(j.contains("\"seeded_blocks\":0"));
        assert!(j.starts_with('{') && j.ends_with('}'));
    }

    #[test]
    fn detail_units_sums_interface_work() {
        let s = SimStats {
            calls: 10,
            published_values: 20,
            published_opsets: 5,
            undo_records: 7,
            demotions: 3,
            seeded_blocks: 4,
            ..Default::default()
        };
        assert_eq!(s.detail_units(), 42, "demotions/seeding are not interface work");
        assert_eq!(SimStats::default().detail_units(), 0);
    }
}
