//! A deliberately tiny ISA description used to test and document the engine.
//!
//! The toy ISA exists so the synthesis engine has a self-contained,
//! dependency-free instruction set for unit tests, doctests, and engine
//! benchmarks. It exercises every instruction class and every step action
//! exactly the way the real descriptions (`lis-isa-*`) do.
//!
//! Encoding (32-bit little-endian words, top byte is the opcode):
//!
//! | op | mnemonic | layout |
//! |----|----------|--------|
//! | 01 | `addi rd, rs, imm16` | `rd[23:20] rs[19:16] imm[15:0]` |
//! | 02 | `add rd, rs, rt` | `rd[23:20] rs[19:16] rt[15:12]` |
//! | 03 | `mul rd, rs, rt` | same as `add` |
//! | 04 | `ld rd, imm16(rs)` | same as `addi` |
//! | 05 | `st rt, imm16(rs)` | `rt[23:20] rs[19:16] imm[15:0]` |
//! | 06 | `beq rs, rt, off16` | `rs[23:20] rt[19:16] off[15:0]` (words) |
//! | 07 | `bne rs, rt, off16` | same |
//! | 08 | `jmp off24` | `off[23:0]` (words, signed) |
//! | 09 | `sys` | number in `r1`, args in `r2`,`r3`, result in `r1` |
//!
//! There are 16 registers; `r15` is the stack pointer.

use lis_core::{
    generic_operand_fetch, generic_writeback, ArchState, Exec, Fault, InstClass, InstDef, IsaSpec,
    OperandDir, OperandSpec, RegBacking, RegClass, RegClassDef, F_ALU_OUT, F_DEST1, F_EFF_ADDR,
    F_IMM, F_MEM_DATA, F_SRC1, F_SRC2, F_SRC3,
};
use lis_mem::Endian;

/// The toy general-purpose register class.
pub const GPR: RegClass = RegClass(0);

fn read_gpr(st: &ArchState, idx: u16) -> u64 {
    st.gpr[idx as usize]
}

fn write_gpr(st: &mut ArchState, idx: u16, val: u64) {
    st.gpr[idx as usize] = val & 0xffff_ffff;
}

const REG_CLASSES: &[RegClassDef] = &[RegClassDef {
    name: "gpr",
    count: 16,
    read: read_gpr,
    write: write_gpr,
    backing: Some(RegBacking::Gpr { special: None, write_mask: 0xffff_ffff }),
}];

#[inline]
fn rd(w: u32) -> u16 {
    ((w >> 20) & 0xf) as u16
}

#[inline]
fn rs(w: u32) -> u16 {
    ((w >> 16) & 0xf) as u16
}

#[inline]
fn rt(w: u32) -> u16 {
    ((w >> 12) & 0xf) as u16
}

#[inline]
fn imm16(w: u32) -> u64 {
    (w & 0xffff) as u16 as i16 as i64 as u64
}

fn dec_rr_imm(ex: &mut Exec<'_>) -> Result<(), Fault> {
    let w = ex.header.instr_bits;
    ex.ops.push_dest(GPR, rd(w));
    ex.ops.push_src(GPR, rs(w));
    ex.set(F_IMM, imm16(w));
    Ok(())
}

fn dec_rrr(ex: &mut Exec<'_>) -> Result<(), Fault> {
    let w = ex.header.instr_bits;
    ex.ops.push_dest(GPR, rd(w));
    ex.ops.push_src(GPR, rs(w));
    ex.ops.push_src(GPR, rt(w));
    Ok(())
}

fn dec_store(ex: &mut Exec<'_>) -> Result<(), Fault> {
    let w = ex.header.instr_bits;
    ex.ops.push_src(GPR, rs(w)); // base
    ex.ops.push_src(GPR, rd(w)); // data (rt field reuses the rd slot)
    ex.set(F_IMM, imm16(w));
    Ok(())
}

fn dec_branch(ex: &mut Exec<'_>) -> Result<(), Fault> {
    let w = ex.header.instr_bits;
    ex.ops.push_src(GPR, rd(w));
    ex.ops.push_src(GPR, rs(w));
    ex.set(F_IMM, imm16(w));
    Ok(())
}

fn dec_jmp(ex: &mut Exec<'_>) -> Result<(), Fault> {
    let w = ex.header.instr_bits;
    let off = ((w & 0x00ff_ffff) << 8) as i32 >> 8; // sign-extend 24 bits
    ex.set(F_IMM, off as i64 as u64);
    Ok(())
}

fn dec_sys(ex: &mut Exec<'_>) -> Result<(), Fault> {
    ex.ops.push_src(GPR, 1);
    ex.ops.push_src(GPR, 2);
    ex.ops.push_src(GPR, 3);
    Ok(())
}

fn ev_addi(ex: &mut Exec<'_>) -> Result<(), Fault> {
    let v = ex.get(F_SRC1).wrapping_add(ex.get(F_IMM)) & 0xffff_ffff;
    ex.set(F_ALU_OUT, v);
    ex.set(F_DEST1, v);
    Ok(())
}

fn ev_add(ex: &mut Exec<'_>) -> Result<(), Fault> {
    let v = ex.get(F_SRC1).wrapping_add(ex.get(F_SRC2)) & 0xffff_ffff;
    ex.set(F_ALU_OUT, v);
    ex.set(F_DEST1, v);
    Ok(())
}

fn ev_mul(ex: &mut Exec<'_>) -> Result<(), Fault> {
    let v = ex.get(F_SRC1).wrapping_mul(ex.get(F_SRC2)) & 0xffff_ffff;
    ex.set(F_ALU_OUT, v);
    ex.set(F_DEST1, v);
    Ok(())
}

fn ev_ea(ex: &mut Exec<'_>) -> Result<(), Fault> {
    let ea = ex.get(F_SRC1).wrapping_add(ex.get(F_IMM)) & 0xffff_ffff;
    ex.set(F_EFF_ADDR, ea);
    Ok(())
}

fn mem_load(ex: &mut Exec<'_>) -> Result<(), Fault> {
    let v = ex.load(ex.get(F_EFF_ADDR), 4, false)?;
    ex.set(F_MEM_DATA, v);
    ex.set(F_DEST1, v);
    Ok(())
}

fn mem_store(ex: &mut Exec<'_>) -> Result<(), Fault> {
    let v = ex.get(F_SRC2);
    ex.set(F_MEM_DATA, v);
    ex.store(ex.get(F_EFF_ADDR), 4, v)
}

fn ev_beq(ex: &mut Exec<'_>) -> Result<(), Fault> {
    if ex.get(F_SRC1) == ex.get(F_SRC2) {
        let t = ex.header.pc.wrapping_add(4).wrapping_add(ex.get(F_IMM) << 2);
        ex.take_branch(t);
    } else {
        ex.branch_not_taken();
    }
    Ok(())
}

fn ev_bne(ex: &mut Exec<'_>) -> Result<(), Fault> {
    if ex.get(F_SRC1) != ex.get(F_SRC2) {
        let t = ex.header.pc.wrapping_add(4).wrapping_add(ex.get(F_IMM) << 2);
        ex.take_branch(t);
    } else {
        ex.branch_not_taken();
    }
    Ok(())
}

fn ev_jmp(ex: &mut Exec<'_>) -> Result<(), Fault> {
    let t = ex.header.pc.wrapping_add(4).wrapping_add(ex.get(F_IMM) << 2);
    ex.take_branch(t);
    Ok(())
}

fn ex_sys(ex: &mut Exec<'_>) -> Result<(), Fault> {
    let ret = ex.syscall(ex.get(F_SRC1), ex.get(F_SRC2), ex.get(F_SRC3))?;
    ex.set(F_DEST1, ret);
    ex.write_reg(GPR.0, 1, ret);
    Ok(())
}

const OP_RD: OperandSpec = OperandSpec { name: "rd", dir: OperandDir::Dest, class: GPR };
const OP_RS: OperandSpec = OperandSpec { name: "rs", dir: OperandDir::Src, class: GPR };
const OP_RT: OperandSpec = OperandSpec { name: "rt", dir: OperandDir::Src, class: GPR };

use lis_core::step_actions as actions;

const INSTS: &[InstDef] = &[
    InstDef {
        name: "addi",
        class: InstClass::Alu,
        mask: 0xff00_0000,
        bits: 0x0100_0000,
        operands: &[OP_RD, OP_RS],
        actions: actions! {
            decode: dec_rr_imm,
            operand_fetch: generic_operand_fetch,
            evaluate: ev_addi,
            writeback: generic_writeback,
        },
        extra_flows: &[],
    },
    InstDef {
        name: "add",
        class: InstClass::Alu,
        mask: 0xff00_0000,
        bits: 0x0200_0000,
        operands: &[OP_RD, OP_RS, OP_RT],
        actions: actions! {
            decode: dec_rrr,
            operand_fetch: generic_operand_fetch,
            evaluate: ev_add,
            writeback: generic_writeback,
        },
        extra_flows: &[],
    },
    InstDef {
        name: "mul",
        class: InstClass::Alu,
        mask: 0xff00_0000,
        bits: 0x0300_0000,
        operands: &[OP_RD, OP_RS, OP_RT],
        actions: actions! {
            decode: dec_rrr,
            operand_fetch: generic_operand_fetch,
            evaluate: ev_mul,
            writeback: generic_writeback,
        },
        extra_flows: &[],
    },
    InstDef {
        name: "ld",
        class: InstClass::Load,
        mask: 0xff00_0000,
        bits: 0x0400_0000,
        operands: &[OP_RD, OP_RS],
        actions: actions! {
            decode: dec_rr_imm,
            operand_fetch: generic_operand_fetch,
            evaluate: ev_ea,
            memory: mem_load,
            writeback: generic_writeback,
        },
        extra_flows: &[],
    },
    InstDef {
        name: "st",
        class: InstClass::Store,
        mask: 0xff00_0000,
        bits: 0x0500_0000,
        operands: &[OP_RT, OP_RS],
        actions: actions! {
            decode: dec_store,
            operand_fetch: generic_operand_fetch,
            evaluate: ev_ea,
            memory: mem_store,
        },
        extra_flows: &[],
    },
    InstDef {
        name: "beq",
        class: InstClass::Branch,
        mask: 0xff00_0000,
        bits: 0x0600_0000,
        operands: &[OP_RS, OP_RT],
        actions: actions! {
            decode: dec_branch,
            operand_fetch: generic_operand_fetch,
            evaluate: ev_beq,
        },
        extra_flows: &[],
    },
    InstDef {
        name: "bne",
        class: InstClass::Branch,
        mask: 0xff00_0000,
        bits: 0x0700_0000,
        operands: &[OP_RS, OP_RT],
        actions: actions! {
            decode: dec_branch,
            operand_fetch: generic_operand_fetch,
            evaluate: ev_bne,
        },
        extra_flows: &[],
    },
    InstDef {
        name: "jmp",
        class: InstClass::Jump,
        mask: 0xff00_0000,
        bits: 0x0800_0000,
        operands: &[],
        actions: actions! {
            decode: dec_jmp,
            evaluate: ev_jmp,
        },
        extra_flows: &[],
    },
    InstDef {
        name: "sys",
        class: InstClass::Syscall,
        mask: 0xff00_0000,
        bits: 0x0900_0000,
        operands: &[],
        actions: actions! {
            decode: dec_sys,
            operand_fetch: generic_operand_fetch,
            exception: ex_sys,
        },
        extra_flows: &[],
    },
];

fn disasm(word: u32, _pc: u64) -> String {
    match word >> 24 {
        0x01 => format!("addi r{}, r{}, {}", rd(word), rs(word), imm16(word) as i64),
        0x02 => format!("add r{}, r{}, r{}", rd(word), rs(word), rt(word)),
        0x03 => format!("mul r{}, r{}, r{}", rd(word), rs(word), rt(word)),
        0x04 => format!("ld r{}, {}(r{})", rd(word), imm16(word) as i64, rs(word)),
        0x05 => format!("st r{}, {}(r{})", rd(word), imm16(word) as i64, rs(word)),
        0x06 => format!("beq r{}, r{}, {}", rd(word), rs(word), imm16(word) as i64),
        0x07 => format!("bne r{}, r{}, {}", rd(word), rs(word), imm16(word) as i64),
        0x08 => format!("jmp {}", ((word & 0xff_ffff) << 8) as i32 >> 8),
        0x09 => "sys".to_string(),
        _ => format!(".word {word:#010x}"),
    }
}

static SPEC: IsaSpec = IsaSpec {
    name: "toy",
    word_bits: 32,
    endian: Endian::Little,
    insts: INSTS,
    reg_classes: REG_CLASSES,
    isa_fields: &[],
    disasm,
    pc_mask: u32::MAX as u64,
    sp_gpr: 15,
};

/// The toy ISA specification.
pub fn spec() -> &'static IsaSpec {
    &SPEC
}

/// Encodes `addi rd, rs, imm`.
pub fn addi(rd: u8, rs: u8, imm: i16) -> u32 {
    0x0100_0000 | enc_ri(rd, rs, imm)
}

/// Encodes `add rd, rs, rt`.
pub fn add(rd: u8, rs: u8, rt: u8) -> u32 {
    0x0200_0000 | enc_rrr(rd, rs, rt)
}

/// Encodes `mul rd, rs, rt`.
pub fn mul(rd: u8, rs: u8, rt: u8) -> u32 {
    0x0300_0000 | enc_rrr(rd, rs, rt)
}

/// Encodes `ld rd, imm(rs)`.
pub fn ld(rd: u8, rs: u8, imm: i16) -> u32 {
    0x0400_0000 | enc_ri(rd, rs, imm)
}

/// Encodes `st rt, imm(rs)`.
pub fn st(rt: u8, rs: u8, imm: i16) -> u32 {
    0x0500_0000 | enc_ri(rt, rs, imm)
}

/// Encodes `beq rs, rt, off` (offset in words from the next instruction).
pub fn beq(rs: u8, rt: u8, off: i16) -> u32 {
    0x0600_0000 | enc_ri(rs, rt, off)
}

/// Encodes `bne rs, rt, off`.
pub fn bne(rs: u8, rt: u8, off: i16) -> u32 {
    0x0700_0000 | enc_ri(rs, rt, off)
}

/// Encodes `jmp off` (offset in words from the next instruction).
pub fn jmp(off: i32) -> u32 {
    0x0800_0000 | ((off as u32) & 0x00ff_ffff)
}

/// Encodes `sys`.
pub fn sys() -> u32 {
    0x0900_0000
}

fn enc_ri(a: u8, b: u8, imm: i16) -> u32 {
    ((a as u32 & 0xf) << 20) | ((b as u32 & 0xf) << 16) | (imm as u16 as u32)
}

fn enc_rrr(a: u8, b: u8, c: u8) -> u32 {
    ((a as u32 & 0xf) << 20) | ((b as u32 & 0xf) << 16) | ((c as u32 & 0xf) << 12)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_is_valid() {
        spec().validate().unwrap();
        assert_eq!(spec().num_insts(), 9);
    }

    #[test]
    fn encoders_decode_back() {
        let s = spec();
        assert_eq!(s.inst(s.decode(addi(1, 2, -5)).unwrap()).name, "addi");
        assert_eq!(s.inst(s.decode(st(3, 15, 8)).unwrap()).name, "st");
        assert_eq!(s.inst(s.decode(sys()).unwrap()).name, "sys");
        assert_eq!(s.decode(0xaa00_0000), None);
    }

    #[test]
    fn disasm_round_trip_mentions_regs() {
        assert_eq!(disasm(addi(1, 2, -5), 0), "addi r1, r2, -5");
        assert_eq!(disasm(jmp(-3), 0), "jmp -3");
    }
}
