//! The synthesis engine: one simulator per (ISA, buildset).
//!
//! [`Simulator`] is the functional simulator the toolkit *synthesizes* from a
//! single ISA specification and one [`BuildsetDef`]. The buildset selects
//! which entry points exist ([`Simulator::next_block`],
//! [`Simulator::next_inst`], or [`Simulator::step_inst`]), which fields are
//! published at every call boundary, and whether rollback is supported.
//!
//! Specialization happens in three places, mirroring the paper's synthesis:
//!
//! * **Semantic detail** decides how much per-call bookkeeping (header
//!   copies, publication, dispatch) is paid per instruction: once per block,
//!   once per instruction, or seven times per instruction.
//! * **Informational detail** decides how many field stores the publication
//!   loop performs; hidden fields never leave the working frame.
//! * **Speculation** decides whether every architectural write captures an
//!   undo record.
//!
//! The [`Backend`] choice is the analog of the paper's binary translation:
//! the cached backend predecodes basic blocks once and reuses them, while
//! the interpreted backend re-fetches and re-decodes every time (the paper's
//! footnote 5 comparison).

use crate::compile::{CompiledCache, CompiledInst, DestOp, SrcOp, Superblock, NO_LINK};
use crate::decode::{DecodeTable, PcMap};
use crate::error::{invalid_interface, BuildError, IfaceError, SimStop};
use crate::stats::{RunSummary, SimStats};
use lis_core::{
    check_interface, ArchState, BuildsetDef, DynInst, Exec, Fault, FieldSet, Frame, InstClass,
    InstHeader, IsaSpec, Operands, OsMark, OsState, Semantic, Step, UndoLog, UndoMark, DEST_FIELDS,
    F_OPCODE, SRC_FIELDS,
};
use lis_mem::{ChaosPlan, ChaosState, Image};
use std::rc::Rc;
use std::time::{Duration, Instant};

/// Marker for an undecodable word inside a predecoded block.
pub(crate) const ILLEGAL: u16 = u16::MAX;

/// Default maximum basic-block length in instructions.
pub const DEFAULT_MAX_BLOCK: usize = 64;

/// Default stack top used by [`Simulator::load_program`].
pub const STACK_TOP: u64 = 0x00f0_0000;

/// Execution backend (the binary-translation analog).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Backend {
    /// Predecode basic blocks once and cache them (default).
    #[default]
    Cached,
    /// Re-fetch and re-decode every instruction on every execution.
    Interpreted,
    /// Translate superblocks: flattened direct-threaded action chains,
    /// chained block successors, and buildset-specialized elision of
    /// publish/undo work (the aggressive binary-translation analog; see
    /// [`crate::compile`](self)).
    Compiled,
}

impl Backend {
    /// The next rung down the supervision ladder: each step trades
    /// translation aggressiveness for trust (Compiled → Cached →
    /// Interpreted). `None` at the bottom — the interpreted backend
    /// re-fetches and re-decodes everything and keeps no state a fault
    /// could poison, so there is nothing safer to demote to.
    pub fn demoted(self) -> Option<Backend> {
        match self {
            Backend::Compiled => Some(Backend::Cached),
            Backend::Cached => Some(Backend::Interpreted),
            Backend::Interpreted => None,
        }
    }
}

/// Why the supervision ladder demoted the backend mid-run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DemotionReason {
    /// A cache-verification freshness probe found a stale cached block or
    /// superblock (stale code after an unmap, self-modifying text, or a
    /// corrupted cache).
    CacheVerify,
    /// A block build was observed to be chaos-corrupted (transient fetch
    /// poisoning) — the backend's predecoded state is under attack.
    PoisonedBuild,
    /// A supervised (paranoid) lockstep spot-check caught the backend
    /// diverging from the reference.
    SpotCheck,
    /// Wall-clock pressure: the supervisor chose a cheaper-to-trust backend
    /// before the watchdog expired.
    Deadline,
    /// Explicitly requested by the host (tests, `lis verify --demote`).
    Requested,
}

impl std::fmt::Display for DemotionReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            DemotionReason::CacheVerify => "cache-verify",
            DemotionReason::PoisonedBuild => "poisoned-build",
            DemotionReason::SpotCheck => "spot-check",
            DemotionReason::Deadline => "deadline",
            DemotionReason::Requested => "requested",
        })
    }
}

/// One structured record of a mid-run backend demotion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DemotionEvent {
    /// Retired-instruction index when the demotion was taken.
    pub inst: u64,
    /// Backend before the demotion.
    pub from: Backend,
    /// Backend after the demotion.
    pub to: Backend,
    /// What forced the downgrade.
    pub reason: DemotionReason,
}

impl std::fmt::Display for DemotionEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "inst {}: demoted {:?} -> {:?} ({})", self.inst, self.from, self.to, self.reason)
    }
}

/// One predecoded instruction inside a cached block.
///
/// Decode actions are, by contract, pure functions of the instruction bits
/// (they read no architectural state), so their results — the operand
/// identifiers and decode-time fields — can be captured once when the block
/// is built and replayed on every execution. This hoisting is the toolkit's
/// analog of the paper's binary-translation optimization scope: work moves
/// out of the per-execution loop at block granularity.
#[derive(Clone, Copy)]
pub(crate) struct PredecInst {
    /// Instruction index, or [`ILLEGAL`].
    pub(crate) op: u16,
    /// Raw instruction word.
    pub(crate) bits: u32,
    /// Captured operand identifiers.
    pub(crate) ops: Operands,
    /// Captured decode-time `(field, value)` pairs.
    pub(crate) fields: [(u8, u64); 4],
    /// Number of valid entries in `fields`.
    pub(crate) nfields: u8,
    /// True when the decode action must re-run at execution time (it
    /// faulted or produced more fields than the capture buffer holds).
    pub(crate) fallback: bool,
    /// The instruction's resolved action pointers, so the block loop
    /// dispatches without re-walking the instruction table.
    pub(crate) actions: lis_core::StepActions,
}

impl std::fmt::Debug for PredecInst {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PredecInst")
            .field("op", &self.op)
            .field("bits", &format_args!("{:#010x}", self.bits))
            .field("fallback", &self.fallback)
            .finish_non_exhaustive()
    }
}

/// A predecoded basic block.
#[derive(Debug)]
pub(crate) struct Block {
    pub(crate) insts: Vec<PredecInst>,
}

/// A speculation checkpoint.
#[derive(Debug, Clone, Copy)]
struct Checkpoint {
    undo: UndoMark,
    pc: u64,
    os: OsMark,
    halted: bool,
    exit_code: i64,
}

/// Identifier of an open checkpoint, returned by [`Simulator::checkpoint`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointId(usize);

/// A synthesized functional simulator with one derived interface.
///
/// # Examples
///
/// ```
/// use lis_runtime::{toy, Simulator};
/// use lis_core::{ONE_ALL, DynInst};
/// use lis_mem::{Image, Section};
///
/// let image = Image {
///     entry: 0x1000,
///     sections: vec![Section {
///         name: ".text".into(),
///         addr: 0x1000,
///         bytes: [toy::addi(1, 0, 1 /* exit */), toy::addi(2, 0, 42), toy::sys()]
///             .iter()
///             .flat_map(|w| w.to_le_bytes())
///             .collect(),
///     }],
///     symbols: Default::default(),
/// };
/// let mut sim = Simulator::new(toy::spec(), ONE_ALL)?;
/// sim.load_program(&image)?;
/// let summary = sim.run_to_halt(1000)?;
/// assert_eq!(summary.exit_code, 42);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct Simulator {
    isa: &'static IsaSpec,
    bs: BuildsetDef,
    backend: Backend,
    /// Architectural state (public for loaders, checkers, and tests).
    pub state: ArchState,
    /// OS emulation state (captured stdout, heap break, tick counter).
    pub os: OsState,
    undo: UndoLog,
    table: DecodeTable,
    frame: Frame,
    ops: Operands,
    header: InstHeader,
    opcode: u16,
    expected: Step,
    inst_fault: bool,
    blocks: PcMap<Rc<Block>>,
    inst_cache: PcMap<(u16, u32)>,
    /// Compiled-backend superblock cache (arena + PC index + chain links).
    compiled: CompiledCache,
    checkpoints: Vec<Checkpoint>,
    /// Execution statistics.
    pub stats: SimStats,
    max_block: usize,
    chaos: Option<ChaosState>,
    /// Sticky: set the moment fault injection is armed, never cleared. A
    /// tainted simulator refuses to export its caches — a translate-fault
    /// superblock is cached poisoned by design, and no probe short of
    /// lockstep can prove a chaos-era cache clean.
    tainted: bool,
    /// Whether the word delivered by the latest fetch was chaos-corrupted
    /// (such words must never enter the predecode caches — the corruption
    /// is transient by contract).
    inst_flipped: bool,
    verify_cache: bool,
    /// Whether trust violations demote the backend mid-run instead of
    /// merely falling back block-by-block.
    demote: bool,
    /// Structured log of every demotion taken (see [`DemotionEvent`]).
    demotion_log: Vec<DemotionEvent>,
    deadline: Option<Duration>,
    /// Published-field mask, resolved from the buildset once at synthesis
    /// time so the publication loop reads one word instead of chasing the
    /// buildset struct on every call.
    vis_fields: FieldSet,
    /// Whether publications carry operand identifiers (same hoisting).
    vis_ops: bool,
    /// Whether the buildset publishes nothing beyond the header, resolved
    /// once at synthesis time: publication then skips the mask walk
    /// entirely (the mask-driven elision the compiled backend leans on,
    /// shared by every backend since the publish path is common).
    hdr_only: bool,
    /// Reusable block-publication buffer for the driver loop; taken and
    /// restored by [`Simulator::run_with_sink`] so repeated drive calls
    /// never re-grow a fresh `Vec`.
    scratch: Vec<DynInst>,
}

impl Simulator {
    /// Synthesizes a simulator for `isa` with the interface `buildset`.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::InvalidInterface`] when the interface lint
    /// rejects the buildset (a value would be lost at a call boundary),
    /// [`BuildError::InvalidSpec`] when the ISA description is inconsistent,
    /// or [`BuildError::Lint`] when the full static analyzer's pre-flight
    /// finds other error-level diagnostics (speculation safety,
    /// derivability, specification self-checks, translation soundness).
    pub fn new(isa: &'static IsaSpec, buildset: BuildsetDef) -> Result<Simulator, BuildError> {
        isa.validate().map_err(BuildError::InvalidSpec)?;
        check_interface(isa, &buildset).map_err(|d| invalid_interface(&buildset, d))?;
        lis_analyze::preflight(isa, &buildset)
            .map_err(|diags| BuildError::Lint { buildset: buildset.name, diags })?;
        // The translation leg of the gate: synthesize the compiled
        // backend's decisions for this cell as plain data and refuse to
        // build if they are not a sound projection of the specification.
        // Every simulator passes it — the backend is switchable at any
        // time, so an unsound translation must be refused up front, not
        // when `set_backend(Compiled)` happens to be called.
        let view = crate::compile::synthesize_view(isa, &buildset);
        lis_analyze::preflight_translation(isa, &buildset, &view)
            .map_err(|diags| BuildError::Lint { buildset: buildset.name, diags })?;
        Ok(Simulator::build(isa, buildset))
    }

    /// Synthesizes a simulator *without* the analyzer pre-flight, keeping
    /// only encoding validation (the decode table needs a well-formed
    /// instruction table). This is the engine-level escape hatch behind the
    /// CLI's `--no-lint`: harness experiments use it to run a deliberately
    /// rejected interface and watch it actually misbehave.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::InvalidSpec`] when the ISA description is
    /// inconsistent.
    pub fn new_unchecked(
        isa: &'static IsaSpec,
        buildset: BuildsetDef,
    ) -> Result<Simulator, BuildError> {
        isa.validate().map_err(BuildError::InvalidSpec)?;
        Ok(Simulator::build(isa, buildset))
    }

    fn build(isa: &'static IsaSpec, buildset: BuildsetDef) -> Simulator {
        Simulator {
            isa,
            bs: buildset,
            backend: Backend::Cached,
            state: ArchState::new(isa.endian),
            os: OsState::new(0),
            undo: UndoLog::new(),
            table: DecodeTable::build(isa),
            frame: Frame::new(),
            ops: Operands::new(),
            header: InstHeader::default(),
            opcode: ILLEGAL,
            expected: Step::Fetch,
            inst_fault: false,
            blocks: PcMap::default(),
            inst_cache: PcMap::default(),
            compiled: CompiledCache::default(),
            checkpoints: Vec::new(),
            stats: SimStats::default(),
            max_block: DEFAULT_MAX_BLOCK,
            chaos: None,
            tainted: false,
            inst_flipped: false,
            verify_cache: false,
            demote: false,
            demotion_log: Vec::new(),
            deadline: None,
            vis_fields: buildset.visibility.fields,
            vis_ops: buildset.visibility.operand_ids,
            hdr_only: buildset.elides_publish(),
            scratch: Vec::new(),
        }
    }

    /// Selects the execution backend (default: [`Backend::Cached`]).
    pub fn set_backend(&mut self, backend: Backend) -> &mut Self {
        self.backend = backend;
        self.clear_caches();
        self
    }

    /// Sets the maximum predecoded block length.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn set_max_block(&mut self, len: usize) -> &mut Self {
        assert!(len > 0, "block length must be positive");
        self.max_block = len;
        self.clear_caches();
        self
    }

    /// Arms deterministic fault injection. The campaign starts fresh: any
    /// previous chaos state (including its event log) is discarded, and
    /// predecoded state is dropped so injection timing never depends on
    /// what an earlier run left in the caches.
    pub fn set_chaos(&mut self, plan: ChaosPlan) -> &mut Self {
        self.chaos = Some(ChaosState::new(plan));
        self.tainted = true;
        self.clear_caches();
        self
    }

    /// Arms a prepared chaos state directly — the scripted-replay entry
    /// point: a [`ChaosState::scripted`] built from a recorded event log
    /// replays that campaign verbatim (the minimizer probes sublists this
    /// way, and the supervised reference executes the subject's log).
    /// Procedural states work too and behave exactly like
    /// [`Simulator::set_chaos`].
    pub fn set_chaos_state(&mut self, state: ChaosState) -> &mut Self {
        self.chaos = Some(state);
        self.tainted = true;
        self.clear_caches();
        self
    }

    /// Disarms fault injection and returns the final chaos state (its event
    /// log records everything injected), if a campaign was armed.
    pub fn take_chaos(&mut self) -> Option<ChaosState> {
        self.chaos.take()
    }

    /// The running chaos campaign, if one is armed.
    pub fn chaos(&self) -> Option<&ChaosState> {
        self.chaos.as_ref()
    }

    /// Mutable access to the running chaos campaign — the supervised
    /// harness uses this to feed a scripted reference additional events as
    /// its subject logs them.
    pub fn chaos_mut(&mut self) -> Option<&mut ChaosState> {
        self.chaos.as_mut()
    }

    /// Enables cached-backend self-verification: on every block-cache hit
    /// the first instruction word is refetched and compared against the
    /// cached copy. A mismatch (stale code after an unmap, self-modifying
    /// text, a corrupted cache) does not abort the run — the block is
    /// dropped and rebuilt from memory without re-caching, and the
    /// degradation is counted in [`SimStats::fallback_blocks`].
    pub fn set_cache_verify(&mut self, on: bool) -> &mut Self {
        self.verify_cache = on;
        self
    }

    /// Enables the backend demotion ladder: when a trust violation is
    /// detected mid-run — a cache-verification freshness failure or a
    /// chaos-poisoned build — the engine demotes itself one rung
    /// (Compiled → Cached → Interpreted) and *continues* instead of only
    /// degrading block-by-block. Each demotion is recorded in
    /// [`Simulator::demotion_events`] and counted in
    /// [`SimStats::demotions`]. External supervisors (spot-check lockstep,
    /// watchdog pressure) can force a rung down at any time with
    /// [`Simulator::demote_now`], which works whether or not this flag is
    /// set.
    pub fn set_demote(&mut self, on: bool) -> &mut Self {
        self.demote = on;
        self
    }

    /// Whether the automatic demotion ladder is enabled.
    pub fn demote_enabled(&self) -> bool {
        self.demote
    }

    /// Every backend demotion taken so far, in order.
    pub fn demotion_events(&self) -> &[DemotionEvent] {
        &self.demotion_log
    }

    /// Demotes the backend one rung down the ladder right now, recording a
    /// structured [`DemotionEvent`] and dropping all predecoded/compiled
    /// state (the demotion exists precisely because that state is no longer
    /// trusted). Returns the new backend, or `None` when already at the
    /// bottom (Interpreted), in which case nothing changes.
    pub fn demote_now(&mut self, reason: DemotionReason) -> Option<Backend> {
        let from = self.backend;
        let to = from.demoted()?;
        self.demotion_log.push(DemotionEvent { inst: self.stats.insts, from, to, reason });
        self.stats.demotions += 1;
        self.backend = to;
        self.clear_caches();
        Some(to)
    }

    /// Adopts `state`/`os` as this simulator's architectural truth — the
    /// supervised-recovery path: after a spot-check divergence the subject
    /// resynchronizes from the reference simulator and continues on a
    /// demoted backend. All speculative state (undo log, checkpoints) and
    /// predecoded state is discarded; statistics are kept (they describe
    /// work actually performed).
    pub fn adopt_state(&mut self, state: &ArchState, os: &OsState) {
        self.state = state.clone();
        self.os = os.clone();
        self.undo.clear();
        self.checkpoints.clear();
        self.expected = Step::Fetch;
        self.opcode = ILLEGAL;
        self.clear_caches();
    }

    /// Sets a wall-clock deadline for [`Simulator::run_to_halt`]; when
    /// exceeded the driver stops with [`SimStop::Deadline`] instead of
    /// looping forever on a wedged or livelocked workload.
    pub fn set_deadline(&mut self, limit: Duration) -> &mut Self {
        self.deadline = Some(limit);
        self
    }

    /// Clears the wall-clock deadline.
    pub fn clear_deadline(&mut self) -> &mut Self {
        self.deadline = None;
        self
    }

    /// The ISA this simulator executes.
    pub fn isa(&self) -> &'static IsaSpec {
        self.isa
    }

    /// The buildset (interface) this simulator was synthesized for.
    pub fn buildset(&self) -> &BuildsetDef {
        &self.bs
    }

    /// The active backend.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// Discards all predecoded and compiled state (needed after loading new
    /// code).
    pub fn clear_caches(&mut self) {
        self.blocks.clear();
        self.inst_cache.clear();
        self.compiled.clear();
    }

    /// Number of superblocks currently in the compiled-code cache (test and
    /// diagnostics hook; zero unless the backend is [`Backend::Compiled`]).
    pub fn compiled_blocks(&self) -> usize {
        self.compiled.len()
    }

    /// Whether fault injection was ever armed on this simulator. Sticky:
    /// disarming ([`Simulator::take_chaos`]) does not clear it, because
    /// artifacts built during the campaign may still be cached (a
    /// translate-fault superblock is cached poisoned by design).
    pub fn tainted(&self) -> bool {
        self.tainted
    }

    /// Snapshots the translation caches as shareable plain data: predecoded
    /// blocks, decode-cache entries, and compiled superblocks, each sorted
    /// by PC. Returns `None` for a [tainted](Simulator::tainted) simulator —
    /// nothing a chaos run built may escape into a shared store.
    pub fn export_artifacts(&self) -> Option<crate::Artifacts> {
        if self.tainted {
            return None;
        }
        let mut blocks: Vec<(u64, Box<[PredecInst]>)> =
            self.blocks.iter().map(|(&pc, b)| (pc, b.insts.clone().into_boxed_slice())).collect();
        blocks.sort_unstable_by_key(|&(pc, _)| pc);
        let mut insts: Vec<(u64, (u16, u32))> =
            self.inst_cache.iter().map(|(&pc, &e)| (pc, e)).collect();
        insts.sort_unstable_by_key(|&(pc, _)| pc);
        Some(crate::Artifacts {
            isa: self.isa.name,
            buildset: self.bs.name,
            backend: self.backend,
            max_block: self.max_block,
            blocks,
            insts,
            compiled: self.compiled.export(),
        })
    }

    /// Seeds the translation caches from a snapshot, so this simulator
    /// starts warm with blocks another simulator already built. Must be
    /// called after [`Simulator::load_program`] and
    /// [`Simulator::set_backend`] (both clear the caches). Counts every
    /// adopted block in [`SimStats::seeded_blocks`] and returns the count.
    ///
    /// # Errors
    ///
    /// Returns a [`crate::SeedError`] when the snapshot does not describe
    /// this simulator (different ISA, buildset, backend, or block cap) or
    /// when this simulator is [tainted](Simulator::tainted) — a chaos
    /// session's caches follow per-session invalidation rules and must stay
    /// private.
    pub fn seed_artifacts(&mut self, art: &crate::Artifacts) -> Result<usize, crate::SeedError> {
        use crate::SeedError;
        if self.tainted {
            return Err(SeedError::Tainted);
        }
        if art.isa != self.isa.name {
            return Err(SeedError::IsaMismatch);
        }
        if art.buildset != self.bs.name {
            return Err(SeedError::BuildsetMismatch);
        }
        if art.backend != self.backend {
            return Err(SeedError::BackendMismatch);
        }
        if art.max_block != self.max_block {
            return Err(SeedError::MaxBlockMismatch);
        }
        let mut seeded = 0usize;
        if self.backend == Backend::Cached {
            for (pc, insts) in &art.blocks {
                self.blocks.insert(*pc, Rc::new(Block { insts: insts.to_vec() }));
                seeded += 1;
            }
        }
        if self.backend == Backend::Compiled {
            for (pc, insts) in &art.compiled {
                let sb = Rc::new(Superblock::from_parts(*pc, insts.clone()));
                self.compiled.insert(*pc, sb);
                seeded += 1;
            }
        }
        for &(pc, entry) in &art.insts {
            self.inst_cache.insert(pc, entry);
        }
        self.stats.seeded_blocks += seeded as u64;
        Ok(seeded)
    }

    /// Loads a program image, points the PC at its entry, sets up the stack
    /// pointer and heap break.
    ///
    /// # Errors
    ///
    /// Returns the architectural fault if the image does not fit in memory.
    pub fn load_program(&mut self, image: &Image) -> Result<(), Fault> {
        let entry = self.state.mem.load_image(image)?;
        self.state.pc = entry & self.isa.pc_mask;
        let sp = STACK_TOP & self.isa.pc_mask;
        self.state.gpr[self.isa.sp_gpr as usize] = sp;
        let brk = (image.high_water() + 0xfff) & !0xfff;
        self.os.brk = brk;
        self.clear_caches();
        Ok(())
    }

    /// Re-runs the same program from scratch: architectural and OS state are
    /// reset and the image is reloaded, but predecoded blocks are *kept* —
    /// they describe the same text section, and keeping them lets repeated
    /// runs amortize predecode cost exactly the way the paper's binary
    /// translation amortizes over long simulations.
    ///
    /// # Errors
    ///
    /// Returns the architectural fault if the image does not fit in memory.
    pub fn reset_program(&mut self, image: &Image) -> Result<(), Fault> {
        self.state = ArchState::new(self.isa.endian);
        self.os = OsState::new(0);
        self.undo.clear();
        self.checkpoints.clear();
        self.expected = Step::Fetch;
        self.opcode = ILLEGAL;
        let entry = self.state.mem.load_image(image)?;
        self.state.pc = entry & self.isa.pc_mask;
        self.state.gpr[self.isa.sp_gpr as usize] = STACK_TOP & self.isa.pc_mask;
        self.os.brk = (image.high_water() + 0xfff) & !0xfff;
        Ok(())
    }

    /// Captured program stdout so far.
    pub fn stdout(&self) -> &[u8] {
        &self.os.stdout
    }

    /// Redirects the PC (e.g. after a timing simulator resolves a
    /// mispredicted branch differently).
    pub fn redirect(&mut self, pc: u64) {
        self.state.pc = pc & self.isa.pc_mask;
        self.expected = Step::Fetch;
    }

    // ------------------------------------------------------------------
    // Speculation control
    // ------------------------------------------------------------------

    /// Opens a checkpoint. All architectural effects after this point can be
    /// rolled back.
    ///
    /// # Errors
    ///
    /// Returns [`IfaceError::SpeculationDisabled`] unless the buildset
    /// enables speculation.
    pub fn checkpoint(&mut self) -> Result<CheckpointId, IfaceError> {
        if !self.bs.speculation {
            return Err(IfaceError::SpeculationDisabled);
        }
        let cp = Checkpoint {
            undo: self.undo.mark(),
            pc: self.state.pc,
            os: self.os.mark(),
            halted: self.state.halted,
            exit_code: self.state.exit_code,
        };
        self.checkpoints.push(cp);
        self.stats.checkpoints += 1;
        Ok(CheckpointId(self.checkpoints.len() - 1))
    }

    /// Rolls architectural state, OS state, and the PC back to `id`,
    /// discarding it and every newer checkpoint.
    ///
    /// # Errors
    ///
    /// Returns [`IfaceError::BadCheckpoint`] if `id` was already consumed.
    pub fn rollback(&mut self, id: CheckpointId) -> Result<(), IfaceError> {
        if id.0 >= self.checkpoints.len() {
            return Err(IfaceError::BadCheckpoint);
        }
        let cp = self.checkpoints[id.0];
        self.undo.rollback(cp.undo, &mut self.state);
        self.os.rollback(cp.os);
        self.state.pc = cp.pc;
        self.state.halted = cp.halted;
        self.state.exit_code = cp.exit_code;
        self.checkpoints.truncate(id.0);
        self.expected = Step::Fetch;
        self.stats.rollbacks += 1;
        Ok(())
    }

    /// Confirms the speculation begun at `id`: the checkpoint (and every
    /// newer one) can no longer be rolled back to.
    ///
    /// # Errors
    ///
    /// Returns [`IfaceError::BadCheckpoint`] if `id` was already consumed.
    pub fn commit(&mut self, id: CheckpointId) -> Result<(), IfaceError> {
        if id.0 >= self.checkpoints.len() {
            return Err(IfaceError::BadCheckpoint);
        }
        self.checkpoints.truncate(id.0);
        if self.checkpoints.is_empty() {
            self.stats.undo_records += self.undo.len() as u64;
            self.undo.clear();
        }
        Ok(())
    }

    /// Overrides a memory value (the speculative-functional-first recovery
    /// channel). The write is undo-captured when a checkpoint is open.
    ///
    /// # Errors
    ///
    /// Returns memory faults for invalid addresses.
    pub fn poke_mem(&mut self, addr: u64, size: u8, val: u64) -> Result<(), Fault> {
        let mut ex = self.exec(ILLEGAL);
        ex.store(addr, size, val)
    }

    // ------------------------------------------------------------------
    // Engine internals
    // ------------------------------------------------------------------

    #[inline]
    fn exec(&mut self, opcode: u16) -> Exec<'_> {
        Exec {
            isa: self.isa,
            frame: &mut self.frame,
            ops: &mut self.ops,
            header: &mut self.header,
            opcode,
            state: &mut self.state,
            os: &mut self.os,
            undo: if self.bs.speculation { Some(&mut self.undo) } else { None },
            chaos: self.chaos.as_mut(),
        }
    }

    #[inline]
    fn begin_inst(&mut self, pc: u64) {
        self.frame.clear();
        self.ops.clear();
        self.header.pc = pc;
        self.header.phys_pc = pc; // identity address translation
        self.header.next_pc = pc.wrapping_add(4) & self.isa.pc_mask;
        self.header.instr_bits = 0;
        self.inst_fault = false;
        self.inst_flipped = false;
        if let Some(chaos) = self.chaos.as_mut() {
            chaos.begin_inst(self.stats.insts);
        }
    }

    /// Routes a fetched word through the chaos injector, remembering whether
    /// it was corrupted so callers keep corrupted words out of the caches.
    #[inline]
    fn chaos_flip(&mut self, pc: u64, bits: u32) -> u32 {
        match self.chaos.as_mut() {
            Some(chaos) => {
                let word = chaos.maybe_flip_fetch(pc, bits);
                if word != bits {
                    self.inst_flipped = true;
                }
                word
            }
            None => bits,
        }
    }

    #[inline]
    fn fetch(&mut self) -> Result<(), Fault> {
        let bits = self.state.mem.fetch_u32(self.header.phys_pc, self.isa.endian)?;
        self.header.instr_bits = self.chaos_flip(self.header.phys_pc, bits);
        Ok(())
    }

    #[inline]
    fn run_action(&mut self, opcode: u16, step: Step) -> Result<(), Fault> {
        let def = self.isa.inst(opcode);
        if let Some(action) = def.actions.action(step) {
            let mut ex = self.exec(opcode);
            action(&mut ex)?;
        }
        Ok(())
    }

    /// Runs the post-decode steps (operand fetch → exception) through cached
    /// action pointers, in step order. This is the *single* interpreted
    /// invocation sequence behind `next_block`, `fast_forward`, and the
    /// predecode-fallback path; the compiled backend's flattened chains
    /// ([`CompiledInst`]) are its pre-filtered counterpart.
    #[inline]
    fn run_exec_actions(
        &mut self,
        opcode: u16,
        actions: &lis_core::StepActions,
    ) -> Result<(), Fault> {
        let mut ex = self.exec(opcode);
        actions.exec_slots().into_iter().flatten().try_for_each(|a| a(&mut ex))
    }

    /// Runs decode..exception for a decoded instruction (One/Block paths).
    #[inline]
    fn run_all_actions(&mut self, opcode: u16) -> Result<(), Fault> {
        self.frame.set(F_OPCODE, opcode as u64);
        let actions = self.isa.inst(opcode).actions;
        if let Some(a) = actions.decode {
            let mut ex = self.exec(opcode);
            a(&mut ex)?;
        }
        self.run_exec_actions(opcode, &actions)
    }

    /// Replays a predecoded instruction: captured decode results back into
    /// the working frame, then the shared execution chain. Falls back to
    /// the full decode-inclusive path when the capture overflowed or the
    /// decode action faulted at build time.
    #[inline]
    fn exec_predec(&mut self, e: &PredecInst, ipc: u64) -> Result<(), Fault> {
        if e.op == ILLEGAL {
            return Err(Fault::IllegalInstruction { pc: ipc, bits: e.bits });
        }
        if e.fallback {
            return self.run_all_actions(e.op);
        }
        self.ops = e.ops;
        for &(f, v) in &e.fields[..e.nfields as usize] {
            self.frame.set(lis_core::FieldId(f), v);
        }
        self.frame.set(F_OPCODE, e.op as u64);
        self.run_exec_actions(e.op, &e.actions)
    }

    /// Executes one compiled instruction: the same replay as
    /// [`Simulator::exec_predec`], but dispatching direct-threaded over the
    /// flattened chain — no per-step `Option` tests at run time.
    #[inline]
    fn exec_compiled(&mut self, e: &CompiledInst, ipc: u64) -> Result<(), Fault> {
        if e.op == ILLEGAL {
            return Err(Fault::IllegalInstruction { pc: ipc, bits: e.bits });
        }
        if e.fallback {
            return self.run_all_actions(e.op);
        }
        self.ops = e.ops;
        self.frame.replay(&e.fields[..e.nfields as usize], e.valid);
        let mut ex = self.exec(e.op);
        for a in &e.chain[..e.chain_len as usize] {
            a(&mut ex)?;
        }
        Ok(())
    }

    /// The single publication path for every entry point. Uses the
    /// synthesis-time `vis_fields`/`vis_ops` copies and charges the
    /// deterministic detail counters: one `published_values` unit per field
    /// store that crosses the boundary, one `published_opsets` unit per
    /// operand-set copy.
    #[inline]
    fn publish(&mut self, di: &mut DynInst, fault: Option<Fault>) {
        if self.hdr_only {
            // The mask excludes every field and the operand identifiers:
            // nothing to walk, nothing to charge (an empty-mask publish
            // counts zero published_values and zero published_opsets).
            di.publish_header(self.header, fault);
            return;
        }
        di.header = self.header;
        di.fault = fault;
        di.publish(&self.frame, self.vis_fields, &self.ops, self.vis_ops);
        self.stats.published_values += u64::from(di.fields_valid().len());
        self.stats.published_opsets += u64::from(self.vis_ops);
    }

    /// Charges the publication detail counters without building a record —
    /// the unobserved compiled driver's statically elided publish. The
    /// charges are exactly what [`Simulator::publish`] would have counted,
    /// keeping `detail_units` a pure function of (program, buildset,
    /// backend) whether or not anyone observes the records.
    #[inline]
    fn charge_publish(&mut self) {
        self.stats.published_values +=
            u64::from((self.frame.valid().0 & self.vis_fields.0).count_ones());
        self.stats.published_opsets += u64::from(self.vis_ops);
    }

    /// End-of-instruction housekeeping shared by all semantic levels.
    #[inline]
    fn retire(&mut self) {
        self.state.pc = self.header.next_pc;
        self.stats.insts += 1;
        if self.bs.speculation && self.checkpoints.is_empty() {
            self.stats.undo_records += self.undo.len() as u64;
            self.undo.clear();
        }
        if let Some(chaos) = self.chaos.as_mut() {
            chaos.begin_inst(self.stats.insts);
            if chaos.maybe_unmap(&mut self.state.mem) {
                // Discarded code may be cached; predecoded state is now
                // unreliable (the chaos fault-storm invalidation path).
                // Superblock chains go with it: links into a cleared arena
                // can never validate.
                self.blocks.clear();
                self.inst_cache.clear();
                self.compiled.clear();
            }
        }
    }

    #[inline]
    fn check_semantic(&self, wanted: Semantic) -> Result<(), IfaceError> {
        if self.bs.semantic != wanted {
            return Err(IfaceError::WrongSemantic { active: self.bs.semantic, wanted });
        }
        if self.state.halted {
            return Err(IfaceError::Halted);
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Entry point: one call per instruction
    // ------------------------------------------------------------------

    /// Executes one instruction and publishes it into `di`.
    ///
    /// On an architectural fault, `di.fault` is set and the PC is left at
    /// the faulting instruction; the timing simulator decides what happens
    /// next.
    ///
    /// # Errors
    ///
    /// Returns [`IfaceError`] for wrong-semantic or post-exit calls.
    pub fn next_inst(&mut self, di: &mut DynInst) -> Result<(), IfaceError> {
        self.check_semantic(Semantic::One)?;
        self.stats.calls += 1;
        let pc = self.state.pc & self.isa.pc_mask;
        self.begin_inst(pc);

        let result = (|| -> Result<(), Fault> {
            // One-semantic interfaces have no blocks to compile; the
            // compiled backend degenerates to the decode cache here.
            let opcode = if self.backend != Backend::Interpreted {
                if let Some(&(op, bits)) = self.inst_cache.get(&pc) {
                    // The decode cache replaces the fetch, so the chaos flip
                    // channel applies to the delivered word here; a corrupted
                    // delivery decodes fresh and leaves the cache clean.
                    let word = self.chaos_flip(pc, bits);
                    self.header.instr_bits = word;
                    if self.inst_flipped {
                        self.table
                            .decode(self.isa, word)
                            .ok_or(Fault::IllegalInstruction { pc, bits: word })?
                    } else {
                        op
                    }
                } else {
                    self.fetch()?;
                    let op = self
                        .table
                        .decode(self.isa, self.header.instr_bits)
                        .ok_or(Fault::IllegalInstruction { pc, bits: self.header.instr_bits })?;
                    if !self.inst_flipped {
                        self.inst_cache.insert(pc, (op, self.header.instr_bits));
                    }
                    op
                }
            } else {
                self.fetch()?;
                self.table
                    .decode(self.isa, self.header.instr_bits)
                    .ok_or(Fault::IllegalInstruction { pc, bits: self.header.instr_bits })?
            };
            self.run_all_actions(opcode)
        })();

        match result {
            Ok(()) => {
                self.publish(di, None);
                self.retire();
            }
            Err(fault) => {
                self.publish(di, Some(fault));
                self.stats.faults += 1;
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Entry point: fast-forward
    // ------------------------------------------------------------------

    /// Executes up to `n` instructions with **no** published information at
    /// all — the paper's fast-forward interface for sampled simulation
    /// ("perhaps one call to execute N instructions", §II-C). Returns the
    /// number of instructions executed (fewer than `n` if the program exits
    /// or a fault occurs; the fault will re-occur on the next regular call).
    ///
    /// Available on block-semantic interfaces, where the paper places the
    /// fast-forward path.
    ///
    /// # Errors
    ///
    /// Returns [`IfaceError`] for wrong-semantic or post-exit calls.
    pub fn fast_forward(&mut self, n: u64) -> Result<u64, IfaceError> {
        self.check_semantic(Semantic::Block)?;
        self.stats.calls += 1;
        let mut done = 0u64;
        'outer: while done < n && !self.state.halted {
            let pc = self.state.pc & self.isa.pc_mask;
            if self.backend == Backend::Compiled {
                let Ok((sb, _)) = self.lookup_compiled(pc) else { break };
                self.stats.blocks += 1;
                for (i, e) in sb.insts.iter().enumerate() {
                    let ipc = (pc.wrapping_add(4 * i as u64)) & self.isa.pc_mask;
                    self.begin_inst(ipc);
                    self.header.instr_bits = e.bits;
                    if self.exec_compiled(e, ipc).is_err() {
                        // Leave the PC at the faulting instruction; a
                        // regular interface call will reproduce it.
                        break 'outer;
                    }
                    self.retire();
                    done += 1;
                    if self.state.halted
                        || done == n
                        || self.header.next_pc != ipc.wrapping_add(4) & self.isa.pc_mask
                    {
                        continue 'outer;
                    }
                }
                continue 'outer;
            }
            let Ok(block) = self.lookup_block(pc) else { break };
            self.stats.blocks += 1;
            for (i, e) in block.insts.iter().enumerate() {
                let ipc = (pc.wrapping_add(4 * i as u64)) & self.isa.pc_mask;
                self.begin_inst(ipc);
                self.header.instr_bits = e.bits;
                if self.exec_predec(e, ipc).is_err() {
                    // Leave the PC at the faulting instruction; a regular
                    // interface call will reproduce and report the fault.
                    break 'outer;
                }
                self.retire();
                done += 1;
                if self.state.halted
                    || done == n
                    || self.header.next_pc != ipc.wrapping_add(4) & self.isa.pc_mask
                {
                    continue 'outer;
                }
            }
        }
        Ok(done)
    }

    // ------------------------------------------------------------------
    // Entry point: one call per basic block
    // ------------------------------------------------------------------

    /// Executes one basic block, publishing one record per instruction into
    /// `out` (cleared first). Returns the number of instructions executed.
    ///
    /// # Errors
    ///
    /// Returns [`IfaceError`] for wrong-semantic or post-exit calls.
    pub fn next_block(&mut self, out: &mut Vec<DynInst>) -> Result<usize, IfaceError> {
        self.check_semantic(Semantic::Block)?;
        self.stats.calls += 1;
        self.stats.blocks += 1;
        if self.backend == Backend::Compiled {
            return self.next_block_compiled(out);
        }
        let pc = self.state.pc & self.isa.pc_mask;
        // `out` slots are reused across calls: existing records are
        // overwritten in place, so the per-instruction cost is the
        // publication itself, not buffer construction.
        let mut count = 0usize;

        let block = match self.lookup_block(pc) {
            Ok(b) => b,
            Err(fault) => {
                self.publish_head_fault(out, pc, fault);
                return Ok(0);
            }
        };

        for (i, e) in block.insts.iter().enumerate() {
            let ipc = (pc.wrapping_add(4 * i as u64)) & self.isa.pc_mask;
            self.begin_inst(ipc);
            self.header.instr_bits = e.bits;
            // Replay the captured decode results and run the remaining
            // steps through the shared action-chain helper.
            let result = self.exec_predec(e, ipc);
            if out.len() == count {
                out.push(DynInst::new());
            }
            let di = &mut out[count];
            di.clear();
            count += 1;
            match result {
                Ok(()) => {
                    self.publish(di, None);
                    self.retire();
                    if self.state.halted {
                        break;
                    }
                    if self.header.next_pc != ipc.wrapping_add(4) & self.isa.pc_mask {
                        break; // taken control flow ends the block
                    }
                }
                Err(fault) => {
                    self.publish(di, Some(fault));
                    self.stats.faults += 1;
                    break;
                }
            }
        }
        out.truncate(count);
        Ok(count)
    }

    /// Publishes the single faulting record a block call produces when the
    /// very first fetch of the block faults.
    fn publish_head_fault(&mut self, out: &mut Vec<DynInst>, pc: u64, fault: Fault) {
        self.begin_inst(pc);
        if out.is_empty() {
            out.push(DynInst::new());
        }
        out[0].clear();
        let (head, _) = out.split_at_mut(1);
        self.publish(&mut head[0], Some(fault));
        self.stats.faults += 1;
        out.truncate(1);
    }

    /// [`Simulator::next_block`] on the compiled backend: same one block
    /// per call, same publication contract, but execution dispatches over
    /// flattened chains and block lookup prefers the previous block's
    /// successor links to the PC index.
    fn next_block_compiled(&mut self, out: &mut Vec<DynInst>) -> Result<usize, IfaceError> {
        let pc = self.state.pc & self.isa.pc_mask;
        let mut count = 0usize;
        let sb = match self.lookup_compiled(pc) {
            Ok((sb, _)) => sb,
            Err(fault) => {
                self.publish_head_fault(out, pc, fault);
                return Ok(0);
            }
        };
        for (i, e) in sb.insts.iter().enumerate() {
            let ipc = (pc.wrapping_add(4 * i as u64)) & self.isa.pc_mask;
            self.begin_inst(ipc);
            self.header.instr_bits = e.bits;
            let result = self.exec_compiled(e, ipc);
            if out.len() == count {
                out.push(DynInst::new());
            }
            let di = &mut out[count];
            di.clear();
            count += 1;
            match result {
                Ok(()) => {
                    self.publish(di, None);
                    self.retire();
                    if self.state.halted {
                        break;
                    }
                    if self.header.next_pc != ipc.wrapping_add(4) & self.isa.pc_mask {
                        break; // taken control flow ends the block
                    }
                }
                Err(fault) => {
                    self.publish(di, Some(fault));
                    self.stats.faults += 1;
                    break;
                }
            }
        }
        out.truncate(count);
        Ok(count)
    }

    /// Whether a scripted chaos replay has a fetch-corrupting event due:
    /// block and decode caches must be bypassed so the injection hooks see
    /// the fetch at the recorded site instead of a cache hit swallowing it.
    #[inline]
    fn scripted_bypass(&self) -> bool {
        self.chaos.as_ref().is_some_and(|c| c.scripted_fetch_due())
    }

    fn lookup_block(&mut self, pc: u64) -> Result<Rc<Block>, Fault> {
        if self.backend == Backend::Cached && !self.scripted_bypass() {
            if let Some(b) = self.blocks.get(&pc) {
                let block = Rc::clone(b);
                if !self.verify_cache || self.block_is_fresh(pc, &block) {
                    return Ok(block);
                }
                // Graceful degradation: the cached block no longer matches
                // memory (stale after an unmap, self-modifying text, or a
                // corrupted cache). Drop it and fall back to a one-shot
                // interpreted rebuild instead of executing stale code —
                // and, on the demotion ladder, stop trusting this backend
                // altogether.
                self.blocks.remove(&pc);
                self.stats.fallback_blocks += 1;
                if self.demote {
                    self.demote_now(DemotionReason::CacheVerify);
                }
                let (block, _) = self.build_block(pc)?;
                self.stats.blocks_built += 1;
                return Ok(Rc::new(block));
            }
        }
        let (block, poisoned) = self.build_block(pc)?;
        let block = Rc::new(block);
        self.stats.blocks_built += 1;
        if poisoned && self.demote {
            self.demote_now(DemotionReason::PoisonedBuild);
        }
        // A chaos-corrupted build must stay transient: caching it would turn
        // a single injected bit flip into a permanent code change.
        if self.backend == Backend::Cached && !poisoned {
            self.blocks.insert(pc, Rc::clone(&block));
        }
        Ok(block)
    }

    /// Whether a cached block's first word still matches memory. The check
    /// reads memory directly — it is an integrity probe, not an
    /// architectural fetch, so chaos injection does not apply.
    fn block_is_fresh(&self, pc: u64, block: &Block) -> bool {
        let Some(first) = block.insts.first() else { return false };
        match self.state.mem.fetch_u32(pc & self.isa.pc_mask, self.isa.endian) {
            Ok(word) => word == first.bits,
            Err(_) => false,
        }
    }

    /// Looks up (or builds) the compiled superblock starting at `pc`,
    /// preferring the previous block's successor links over the PC index
    /// and patching links as control flow is observed. The returned arena
    /// index is [`NO_LINK`] for one-shot blocks (stale rebuilds and
    /// chaos-poisoned builds), which are never cached and never linkable.
    fn lookup_compiled(&mut self, pc: u64) -> Result<(Rc<Superblock>, u32), Fault> {
        let prev = self.compiled.last;
        let hit = if self.scripted_bypass() {
            None
        } else {
            self.compiled.follow(prev, pc, self.isa.pc_mask).or_else(|| self.compiled.lookup(pc))
        };
        if let Some((sb, idx)) = hit {
            if !self.verify_cache || self.superblock_is_fresh(pc, &sb) {
                self.compiled.patch(prev, idx, pc, self.isa.pc_mask);
                self.compiled.last = idx;
                return Ok((sb, idx));
            }
            // Graceful degradation, as for the cached backend — except that
            // chained successors may be equally stale, so the whole
            // compiled cache is dropped, not just this entry.
            self.compiled.clear();
            self.stats.fallback_blocks += 1;
            if self.demote {
                self.demote_now(DemotionReason::CacheVerify);
            }
            let (block, _) = self.build_block(pc)?;
            self.stats.blocks_built += 1;
            return Ok((Rc::new(self.translate(pc, &block)), NO_LINK));
        }
        let (block, poisoned) = self.build_block(pc)?;
        self.stats.blocks_built += 1;
        let sb = Rc::new(self.translate(pc, &block));
        if poisoned {
            // A chaos-corrupted build stays transient: not cached, not
            // linkable, and the chain cursor is dropped so no later block
            // links back through it.
            self.compiled.last = NO_LINK;
            if self.demote {
                self.demote_now(DemotionReason::PoisonedBuild);
            }
            return Ok((sb, NO_LINK));
        }
        let idx = self.compiled.insert(pc, Rc::clone(&sb));
        if idx != NO_LINK {
            self.compiled.patch(prev, idx, pc, self.isa.pc_mask);
        }
        self.compiled.last = idx;
        Ok((sb, idx))
    }

    /// Compiles a superblock, routing the build through the chaos
    /// translate-fault channel: when the channel fires, one captured decode
    /// value is corrupted and the link hints scrambled
    /// ([`Superblock::poison`]). Unlike fetch flips, a translation fault is
    /// *not* flagged as poisoned — it models a silent translator bug, so
    /// the corrupt superblock is cached and chained like an honest one.
    /// First-word freshness probes cannot see it (the stored bits are
    /// correct); only supervised lockstep can.
    fn translate(&mut self, pc: u64, block: &Block) -> Superblock {
        let mut sb = Superblock::compile(pc, block, self.isa);
        if let Some(chaos) = self.chaos.as_mut() {
            if let Some((idx, bit)) = chaos.maybe_translate_fault(pc) {
                sb.poison(idx, bit);
            }
        }
        sb
    }

    /// [`Simulator::block_is_fresh`] for superblocks: same first-word
    /// integrity probe, applied on every block entry (linked or indexed)
    /// when cache verification is on.
    fn superblock_is_fresh(&self, pc: u64, sb: &Superblock) -> bool {
        let Some(first) = sb.insts.first() else { return false };
        match self.state.mem.fetch_u32(pc & self.isa.pc_mask, self.isa.endian) {
            Ok(word) => word == first.bits,
            Err(_) => false,
        }
    }

    /// Captures an instruction's decode results for replay; falls back to
    /// exec-time decoding when the decode action faults or produces more
    /// fields than the capture buffer holds.
    fn predecode(&mut self, op: u16, bits: u32, pc: u64) -> PredecInst {
        let actions = self.isa.inst(op).actions;
        let fallback = PredecInst {
            op,
            bits,
            ops: Operands::new(),
            fields: [(0, 0); 4],
            nfields: 0,
            fallback: true,
            actions,
        };
        self.begin_inst(pc);
        self.header.instr_bits = bits;
        if let Some(dec) = self.isa.inst(op).actions.decode {
            let mut ex = self.exec(op);
            if dec(&mut ex).is_err() {
                return fallback;
            }
        }
        let mut fields = [(0u8, 0u64); 4];
        let mut n = 0usize;
        for f in self.frame.valid().iter() {
            if n == fields.len() {
                return fallback;
            }
            fields[n] = (f.0, self.frame.raw(f.index()));
            n += 1;
        }
        PredecInst { op, bits, ops: self.ops, fields, nfields: n as u8, fallback: false, actions }
    }

    /// Predecodes the block starting at `pc`. The second return is whether
    /// any word was chaos-corrupted during the build (such blocks must not
    /// be cached).
    fn build_block(&mut self, pc: u64) -> Result<(Block, bool), Fault> {
        let mut insts: Vec<PredecInst> = Vec::new();
        let mut poisoned = false;
        let mut p = pc;
        loop {
            let fetched = match self.state.mem.fetch_u32(p & self.isa.pc_mask, self.isa.endian) {
                Ok(b) => b,
                Err(f) => {
                    if insts.is_empty() {
                        return Err(f.into());
                    }
                    break;
                }
            };
            let bits = self.chaos_flip(p & self.isa.pc_mask, fetched);
            poisoned |= bits != fetched;
            match self.table.decode(self.isa, bits) {
                Some(op) => {
                    insts.push(self.predecode(op, bits, p));
                    let class = self.isa.inst(op).class;
                    if matches!(class, InstClass::Branch | InstClass::Jump | InstClass::Syscall) {
                        break;
                    }
                }
                None => {
                    insts.push(PredecInst {
                        op: ILLEGAL,
                        bits,
                        ops: Operands::new(),
                        fields: [(0, 0); 4],
                        nfields: 0,
                        fallback: false,
                        actions: lis_core::StepActions::NONE,
                    });
                    break;
                }
            }
            if insts.len() >= self.max_block {
                break;
            }
            p = p.wrapping_add(4);
        }
        Ok((Block { insts }, poisoned))
    }

    // ------------------------------------------------------------------
    // Entry point: seven calls per instruction
    // ------------------------------------------------------------------

    /// Executes one step of the current instruction, publishing visible
    /// state into `di` at the call boundary. Values hidden by the interface
    /// genuinely do not survive between calls — the engine reloads its
    /// working frame from `di` at the start of each step, which is what
    /// makes the interface lint's visibility requirements real.
    ///
    /// Between the `OperandFetch` and `Exception` calls the timing simulator
    /// may freely modify operand-value fields in `di` (bypass injection);
    /// the modified values are what the following steps consume.
    ///
    /// # Errors
    ///
    /// Returns [`IfaceError::OutOfOrderStep`] if steps are called out of
    /// order, and the usual wrong-semantic/halted errors.
    pub fn step_inst(&mut self, step: Step, di: &mut DynInst) -> Result<(), IfaceError> {
        self.check_semantic(Semantic::Step)?;
        if step != self.expected {
            return Err(IfaceError::OutOfOrderStep { expected: self.expected, got: step });
        }
        self.stats.calls += 1;

        let result: Result<(), Fault> = (|| match step {
            Step::Fetch => {
                let pc = self.state.pc & self.isa.pc_mask;
                self.begin_inst(pc);
                self.opcode = ILLEGAL;
                self.fetch()
            }
            Step::Decode => {
                self.reload(di);
                let pc = self.header.pc;
                let bits = self.header.instr_bits;
                let op = if self.backend != Backend::Interpreted && !self.inst_flipped {
                    match self.inst_cache.get(&pc) {
                        Some(&(op, _)) => op,
                        None => {
                            let op = self
                                .table
                                .decode(self.isa, bits)
                                .ok_or(Fault::IllegalInstruction { pc, bits })?;
                            self.inst_cache.insert(pc, (op, bits));
                            op
                        }
                    }
                } else {
                    self.table
                        .decode(self.isa, bits)
                        .ok_or(Fault::IllegalInstruction { pc, bits })?
                };
                self.opcode = op;
                self.frame.set(F_OPCODE, op as u64);
                self.run_action(op, Step::Decode)
            }
            _ => {
                self.reload(di);
                let op = self.opcode;
                debug_assert_ne!(op, ILLEGAL, "step after decode fault");
                self.run_action(op, step)
            }
        })();

        match result {
            Ok(()) => {
                self.publish(di, None);
                if step == Step::Exception {
                    self.retire();
                    self.expected = Step::Fetch;
                } else {
                    self.expected = step.next().unwrap_or(Step::Fetch);
                }
            }
            Err(fault) => {
                // The instruction is aborted; the next call starts a fresh
                // fetch at the (unadvanced) PC.
                self.publish(di, Some(fault));
                self.stats.faults += 1;
                self.expected = Step::Fetch;
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Per-operand control (timing-directed bypass support)
    // ------------------------------------------------------------------

    /// Re-reads source operand `i` from *current* architectural state and
    /// republishes its value into `di` — the paper's individual operand-read
    /// call, letting a timing-directed simulator choose exactly when each
    /// source is fetched (e.g. after an older in-flight instruction's
    /// writeback). Legal on step-level interfaces between the `Decode` and
    /// `Evaluate` calls; returns the value read, or `None` if the
    /// instruction has no such source operand.
    ///
    /// # Errors
    ///
    /// Returns [`IfaceError::WrongSemantic`] off step-level interfaces and
    /// [`IfaceError::OutOfOrderStep`] outside the decode→evaluate window.
    pub fn fetch_src_operand(
        &mut self,
        di: &mut DynInst,
        i: usize,
    ) -> Result<Option<u64>, IfaceError> {
        if self.bs.semantic != Semantic::Step {
            return Err(IfaceError::WrongSemantic {
                active: self.bs.semantic,
                wanted: Semantic::Step,
            });
        }
        if !matches!(self.expected, Step::OperandFetch | Step::Evaluate) {
            return Err(IfaceError::OutOfOrderStep {
                expected: self.expected,
                got: Step::OperandFetch,
            });
        }
        self.reload(di);
        let Some(&r) = di.operands().and_then(|o| o.srcs().get(i)) else {
            return Ok(None);
        };
        let v = (self.isa.reg_classes[r.class as usize].read)(&self.state, r.index);
        self.frame.set(lis_core::SRC_FIELDS[i], v);
        self.publish(di, di.fault);
        Ok(Some(v))
    }

    /// Writes destination operand `i` from the value published in `di` to
    /// architectural state *now* — the paper's individual operand-write
    /// call. Legal on step-level interfaces after `Evaluate`; returns
    /// whether a value was written (false when the instruction did not
    /// produce that destination, e.g. a squashed conditional).
    ///
    /// # Errors
    ///
    /// Returns [`IfaceError::WrongSemantic`] off step-level interfaces and
    /// [`IfaceError::OutOfOrderStep`] before the evaluate call has run.
    pub fn write_dest_operand(&mut self, di: &DynInst, i: usize) -> Result<bool, IfaceError> {
        if self.bs.semantic != Semantic::Step {
            return Err(IfaceError::WrongSemantic {
                active: self.bs.semantic,
                wanted: Semantic::Step,
            });
        }
        if !matches!(self.expected, Step::Memory | Step::Writeback | Step::Exception) {
            return Err(IfaceError::OutOfOrderStep {
                expected: self.expected,
                got: Step::Writeback,
            });
        }
        let Some(&r) = di.operands().and_then(|o| o.dests().get(i)) else {
            return Ok(false);
        };
        let Some(v) = di.field(lis_core::DEST_FIELDS[i]) else {
            return Ok(false);
        };
        let def = &self.isa.reg_classes[r.class as usize];
        if self.bs.speculation {
            let old = (def.read)(&self.state, r.index);
            self.undo.push(lis_core::UndoRec::Reg { write: def.write, idx: r.index, old });
        }
        (def.write)(&mut self.state, r.index, v);
        Ok(true)
    }

    #[inline]
    fn reload(&mut self, di: &DynInst) {
        self.header = di.header;
        di.reload(&mut self.frame, &mut self.ops);
    }

    // ------------------------------------------------------------------
    // Driver
    // ------------------------------------------------------------------

    /// Drives the simulator until the program exits, a fault occurs, or
    /// `max_insts` instructions have executed. The driving loop uses the
    /// buildset's own semantic level.
    ///
    /// # Errors
    ///
    /// Returns [`SimStop::Fault`] on an architectural fault,
    /// [`SimStop::MaxInsts`] when the budget runs out, and
    /// [`SimStop::Deadline`] when a wall-clock deadline set with
    /// [`Simulator::set_deadline`] expires.
    pub fn run_to_halt(&mut self, max_insts: u64) -> Result<RunSummary, SimStop> {
        let start = self.stats.insts;
        // Dispatch loop, not a single dispatch: a mid-run demotion makes the
        // compiled driver hand back cleanly (halted = false), and the rest
        // of the budget continues on whatever backend the ladder left
        // active. The generic driver re-dispatches per call on its own, so
        // only the compiled fast driver ever returns here early.
        loop {
            let left = max_insts - (self.stats.insts - start);
            let summary =
                if self.backend == Backend::Compiled && self.bs.semantic == Semantic::Block {
                    self.run_compiled(left)?
                } else {
                    self.run_with_sink(left, |_| {})?
                };
            if summary.halted {
                return Ok(RunSummary {
                    insts: self.stats.insts - start,
                    halted: true,
                    exit_code: summary.exit_code,
                });
            }
        }
    }

    /// The compiled backend's unobserved block driver: chains superblocks
    /// with no record construction at all. With no sink there is nobody to
    /// observe the publication buffers, so the work the visibility mask
    /// would govern is statically elided — only the deterministic detail
    /// charges remain ([`Simulator::charge_publish`]), keeping every
    /// counter identical to the record-publishing drivers.
    fn run_compiled(&mut self, max_insts: u64) -> Result<RunSummary, SimStop> {
        let start = self.stats.insts;
        let started_at = self.deadline.map(|limit| (Instant::now(), limit));
        let mut ticks = 0u32;
        // The hot configuration: nobody injecting faults, no undo log to
        // drain. Every per-instruction effect then lands in the execution
        // frame, the header, the architectural state, or the stats counters,
        // so the superblock can run on one Exec context built per *block*
        // (not per instruction) over split field borrows.
        let fast = self.chaos.is_none() && !self.bs.speculation;
        while !self.state.halted {
            if self.backend != Backend::Compiled {
                // The demotion ladder fired inside a lookup: this driver's
                // translations are no longer trusted, so hand the rest of
                // the run back to `run_to_halt` for re-dispatch.
                break;
            }
            if self.stats.insts - start >= max_insts {
                return Err(SimStop::MaxInsts);
            }
            if let Some((t0, limit)) = started_at {
                if ticks & 0x3f == 0 && t0.elapsed() >= limit {
                    return Err(SimStop::Deadline);
                }
                ticks = ticks.wrapping_add(1);
            }
            self.stats.calls += 1;
            self.stats.blocks += 1;
            let pc = self.state.pc & self.isa.pc_mask;
            let (sb, idx) = match self.lookup_compiled(pc) {
                Ok(hit) => hit,
                Err(fault) => {
                    // Mirror the block call's head-fault record accounting.
                    self.begin_inst(pc);
                    self.charge_publish();
                    self.stats.faults += 1;
                    return Err(SimStop::Fault(fault));
                }
            };
            if fast {
                let left = max_insts - (self.stats.insts - start);
                self.run_superchain_fast(sb, idx, pc, left, started_at)?;
                continue;
            }
            for (i, e) in sb.insts.iter().enumerate() {
                let ipc = (pc.wrapping_add(4 * i as u64)) & self.isa.pc_mask;
                self.begin_inst(ipc);
                self.header.instr_bits = e.bits;
                match self.exec_compiled(e, ipc) {
                    Ok(()) => {
                        self.charge_publish();
                        self.retire();
                        if self.state.halted {
                            break;
                        }
                        if self.header.next_pc != ipc.wrapping_add(4) & self.isa.pc_mask {
                            break; // taken control flow ends the block
                        }
                    }
                    Err(fault) => {
                        self.charge_publish();
                        self.stats.faults += 1;
                        return Err(SimStop::Fault(fault));
                    }
                }
            }
        }
        Ok(RunSummary {
            insts: self.stats.insts - start,
            halted: self.state.halted,
            exit_code: self.state.exit_code,
        })
    }

    /// Superblock-chain execution on the unobserved fast path: chaos-free
    /// and non-speculative by precondition, so a single [`Exec`] context
    /// serves the whole chain and the per-instruction work reduces to the
    /// frame reset, the decode replay, the flattened chain, and the
    /// deterministic stat charges (accumulated in locals and flushed at
    /// every exit). When a block ends, execution follows the superblock's
    /// successor links *inline* — steady-state hot loops never leave this
    /// function, paying the driver's lookup/dispatch cost only on a link
    /// miss. Counter-for-counter identical to the slow loop: each embedded
    /// block charges one call and one block, exactly like a driver entry.
    fn run_superchain_fast(
        &mut self,
        sb: Rc<Superblock>,
        mut idx: u32,
        mut pc: u64,
        insts_left: u64,
        started_at: Option<(Instant, Duration)>,
    ) -> Result<(), SimStop> {
        let isa = self.isa;
        let mask = isa.pc_mask;
        let vis = self.vis_fields.0;
        let vis_ops = u64::from(self.vis_ops);
        // Freshness probes (cache verification) live in the driver's lookup,
        // so inline chaining would skip them; chain only when it is off.
        let may_chain = !self.verify_cache;
        let Simulator { frame, ops, header, state, os, stats, compiled, .. } = self;
        let mut ex =
            Exec { isa, frame, ops, header, opcode: 0, state, os, undo: None, chaos: None };
        // Local accumulators keep the per-instruction counter traffic in
        // registers; flushed on every path out of the chain.
        let mut insts = 0u64;
        let mut pv = 0u64;
        let mut po = 0u64;
        let mut links = 0u64;
        let mut ticks = 0u32;
        // The entry block is held by `Rc` (one-shot blocks never enter the
        // arena); chained successors are borrowed from the arena by index,
        // avoiding two refcount updates per basic block.
        let mut cur: &Superblock = &sb;
        'chain: loop {
            let mut fault = None;
            for (i, e) in cur.insts.iter().enumerate() {
                let ipc = pc.wrapping_add(4 * i as u64) & mask;
                ex.header.pc = ipc;
                ex.header.phys_pc = ipc; // identity address translation
                ex.header.next_pc = ipc.wrapping_add(4) & mask;
                ex.header.instr_bits = e.bits;
                ex.opcode = e.op;
                let result = if e.op == ILLEGAL {
                    ex.frame.clear();
                    Err(Fault::IllegalInstruction { pc: ipc, bits: e.bits })
                } else if e.fallback {
                    // Rare: the predecode capture overflowed, so decode
                    // reruns.
                    ex.frame.clear();
                    ex.ops.clear();
                    ex.frame.set(F_OPCODE, e.op as u64);
                    let actions = isa.inst(e.op).actions;
                    match actions.decode.map_or(Ok(()), |a| a(&mut ex)) {
                        Ok(()) => {
                            actions.exec_slots().into_iter().flatten().try_for_each(|a| a(&mut ex))
                        }
                        Err(fault) => Err(fault),
                    }
                } else {
                    *ex.ops = e.ops;
                    ex.frame.replay(&e.fields[..e.nfields as usize], e.valid);
                    let mut r = Ok(());
                    for a in &e.chain[..e.pre_hi as usize] {
                        r = a(&mut ex);
                        if r.is_err() {
                            break;
                        }
                    }
                    if r.is_ok() {
                        if e.has_fetch {
                            // Generic operand fetch, specialized at
                            // translation: operands whose class declares a
                            // register-file backing were lowered to direct
                            // loads; the rest keep their resolved
                            // accessor. Values are staged and the validity
                            // mask updated once for the batch.
                            for (j, src) in e.src_read[..e.nsrc as usize].iter().enumerate() {
                                let v = match *src {
                                    SrcOp::Gpr(i) => ex.state.gpr[i as usize],
                                    SrcOp::Spr(s) => ex.state.spr[s as usize],
                                    SrcOp::Call(read, i) => read(ex.state, i),
                                };
                                ex.frame.stage(SRC_FIELDS[j], v);
                            }
                            ex.frame.mark_valid(e.src_mask);
                        }
                        for a in &e.chain[e.mid_lo as usize..e.mid_hi as usize] {
                            r = a(&mut ex);
                            if r.is_err() {
                                break;
                            }
                        }
                    }
                    if r.is_ok() && e.has_wb {
                        // Generic writeback, likewise; the fast path runs
                        // without an undo log by precondition, so the
                        // write is unconditional once the value field
                        // exists.
                        for (j, dest) in e.dest_write[..e.ndest as usize].iter().enumerate() {
                            if let Some(v) = ex.frame.try_get(DEST_FIELDS[j]) {
                                match *dest {
                                    DestOp::Gpr(i, m) => ex.state.gpr[i as usize] = v & m,
                                    DestOp::Spr(s, m) => ex.state.spr[s as usize] = v & m,
                                    DestOp::Call(write, i) => write(ex.state, i, v),
                                }
                            }
                        }
                    }
                    r
                };
                pv += u64::from((ex.frame.valid().0 & vis).count_ones());
                po += vis_ops;
                match result {
                    Ok(()) => {
                        insts += 1;
                        if ex.state.halted {
                            break;
                        }
                        if ex.header.next_pc != ipc.wrapping_add(4) & mask {
                            break; // taken control flow ends the block
                        }
                    }
                    Err(f) => {
                        // The architectural PC stays at the faulting
                        // instruction, exactly as the per-instruction
                        // drivers leave it.
                        ex.state.pc = ipc;
                        fault = Some(f);
                        break;
                    }
                }
            }
            // The per-instruction PC store is deferred to the block exits:
            // every non-fault path leaves the last executed instruction's
            // successor in `header.next_pc`.
            if fault.is_none() {
                ex.state.pc = ex.header.next_pc;
            }
            if let Some(f) = fault {
                compiled.last = idx;
                stats.insts += insts;
                stats.published_values += pv;
                stats.published_opsets += po;
                stats.calls += links;
                stats.blocks += links;
                stats.faults += 1;
                return Err(SimStop::Fault(f));
            }
            if ex.state.halted || !may_chain || insts >= insts_left {
                break 'chain;
            }
            if let Some((t0, limit)) = started_at {
                // Same stride as the driver's deadline probe; a miss here
                // just surfaces at the driver's own check.
                if ticks & 0x3f == 0 && t0.elapsed() >= limit {
                    break 'chain;
                }
                ticks = ticks.wrapping_add(1);
            }
            let next_pc = ex.state.pc & mask;
            match compiled.follow_idx(idx, next_pc, mask) {
                Some(nidx) => {
                    idx = nidx;
                    pc = next_pc;
                    links += 1;
                    cur = compiled.peek(nidx).expect("follow_idx returned a live index");
                }
                None => break 'chain,
            }
        }
        // The driver's next lookup patches successor links from this block.
        compiled.last = idx;
        stats.insts += insts;
        stats.published_values += pv;
        stats.published_opsets += po;
        stats.calls += links;
        stats.blocks += links;
        Ok(())
    }

    /// Like [`Simulator::run_to_halt`], but calls `sink` with every
    /// published [`DynInst`] record as it retires — including a final
    /// faulting record, which the sink sees before the fault is returned.
    ///
    /// This is the engine's retirement hook: a trace recorder (or any other
    /// stream consumer) observes exactly the record stream the buildset's
    /// interface publishes, with no engine-side knowledge of the consumer.
    ///
    /// # Errors
    ///
    /// See [`Simulator::run_to_halt`].
    pub fn run_with_sink(
        &mut self,
        max_insts: u64,
        mut sink: impl FnMut(&DynInst),
    ) -> Result<RunSummary, SimStop> {
        // The block buffer is engine-owned scratch: taking it out (and
        // putting it back on every exit path) means repeated drive calls —
        // the sweep runs thousands of them — publish into already-grown
        // storage instead of reallocating per call.
        let mut buf = std::mem::take(&mut self.scratch);
        if buf.capacity() < self.max_block {
            buf.reserve(self.max_block - buf.len());
        }
        let result = self.drive(max_insts, &mut sink, &mut buf);
        self.scratch = buf;
        result
    }

    fn drive(
        &mut self,
        max_insts: u64,
        sink: &mut impl FnMut(&DynInst),
        buf: &mut Vec<DynInst>,
    ) -> Result<RunSummary, SimStop> {
        let start = self.stats.insts;
        let started_at = self.deadline.map(|limit| (Instant::now(), limit));
        let mut ticks = 0u32;
        let mut di = DynInst::new();
        while !self.state.halted {
            if self.stats.insts - start >= max_insts {
                return Err(SimStop::MaxInsts);
            }
            if let Some((t0, limit)) = started_at {
                // Checking the clock every iteration would tax the One and
                // Step drivers; a 64-iteration stride keeps the watchdog
                // responsive without measurable overhead.
                if ticks & 0x3f == 0 && t0.elapsed() >= limit {
                    return Err(SimStop::Deadline);
                }
                ticks = ticks.wrapping_add(1);
            }
            match self.bs.semantic {
                Semantic::One => {
                    self.next_inst(&mut di)?;
                    sink(&di);
                    if let Some(f) = di.fault {
                        return Err(SimStop::Fault(f));
                    }
                }
                Semantic::Block => {
                    self.next_block(buf)?;
                    for d in buf.iter() {
                        sink(d);
                    }
                    if let Some(f) = buf.last().and_then(|d| d.fault) {
                        return Err(SimStop::Fault(f));
                    }
                }
                Semantic::Step => {
                    for step in Step::ALL {
                        self.step_inst(step, &mut di)?;
                        if let Some(f) = di.fault {
                            sink(&di);
                            return Err(SimStop::Fault(f));
                        }
                    }
                    sink(&di);
                }
            }
        }
        Ok(RunSummary {
            insts: self.stats.insts - start,
            halted: self.state.halted,
            exit_code: self.state.exit_code,
        })
    }
}
