//! Export/seed round-trips for the shared-artifact path: a warm-started
//! simulator must behave bit-for-bit like the cold one that built the
//! caches, build nothing itself, and refuse to share across chaos or
//! configuration boundaries.

use lis_core::{nr, BLOCK_ALL, ONE_ALL};
use lis_mem::{ChaosPlan, Image, Section};
use lis_runtime::{toy, ArtifactKey, ArtifactStore, Backend, SeedError, Simulator};
use std::sync::Arc;

fn image(words: &[u32]) -> Image {
    Image {
        entry: 0x1000,
        sections: vec![Section {
            name: ".text".into(),
            addr: 0x1000,
            bytes: words.iter().flat_map(|w| w.to_le_bytes()).collect(),
        }],
        symbols: Default::default(),
    }
}

/// sum(1..=10) in a loop, printed, exit 7 — enough blocks to make caching
/// visible.
fn loop_program() -> Image {
    image(&[
        toy::addi(2, 0, 0),
        toy::addi(3, 0, 10),
        toy::addi(4, 0, 0),
        toy::add(2, 2, 3),
        toy::addi(3, 3, -1),
        toy::bne(3, 4, -3),
        toy::addi(1, 0, nr::PUTUDEC as i16),
        toy::add(2, 2, 0),
        toy::sys(),
        toy::addi(1, 0, nr::EXIT as i16),
        toy::addi(2, 0, 7),
        toy::sys(),
    ])
}

fn run_cold(backend: Backend) -> (Simulator, lis_runtime::Artifacts) {
    let mut sim = Simulator::new(toy::spec(), BLOCK_ALL).expect("builds");
    sim.set_backend(backend);
    sim.load_program(&loop_program()).expect("loads");
    let summary = sim.run_to_halt(10_000).expect("runs");
    assert!(summary.halted && summary.exit_code == 7);
    assert!(sim.stats.blocks_built > 0, "cold run builds blocks");
    assert_eq!(sim.stats.seeded_blocks, 0, "cold run seeds nothing");
    let art = sim.export_artifacts().expect("clean sim exports");
    assert!(!art.is_empty(), "{backend:?}: export carries translations");
    (sim, art)
}

#[test]
fn warm_start_matches_cold_and_builds_nothing() {
    for backend in [Backend::Cached, Backend::Compiled] {
        let (cold, art) = run_cold(backend);

        let mut warm = Simulator::new(toy::spec(), BLOCK_ALL).expect("builds");
        warm.set_backend(backend);
        warm.load_program(&loop_program()).expect("loads");
        let seeded = warm.seed_artifacts(&art).expect("seeds");
        assert_eq!(seeded, art.len(), "{backend:?}: every translation adopted");
        let summary = warm.run_to_halt(10_000).expect("runs");
        assert!(summary.halted && summary.exit_code == 7);

        assert_eq!(warm.stdout(), cold.stdout(), "{backend:?}: same output");
        assert_eq!(warm.stats.blocks_built, 0, "{backend:?}: warm run builds nothing");
        assert_eq!(warm.stats.seeded_blocks, seeded as u64);
        assert_eq!(warm.stats.insts, cold.stats.insts);
        assert_eq!(
            warm.stats.detail_units(),
            cold.stats.detail_units(),
            "{backend:?}: seeding is build amortization, not interface work"
        );
        // A second export round-trips to the same content.
        let again = warm.export_artifacts().expect("warm sim exports");
        assert_eq!(again.len(), art.len());
    }
}

#[test]
fn one_semantic_decode_cache_round_trips() {
    let mut cold = Simulator::new(toy::spec(), ONE_ALL).expect("builds");
    cold.load_program(&loop_program()).expect("loads");
    cold.run_to_halt(10_000).expect("runs");
    let art = cold.export_artifacts().expect("exports");

    let mut warm = Simulator::new(toy::spec(), ONE_ALL).expect("builds");
    warm.load_program(&loop_program()).expect("loads");
    warm.seed_artifacts(&art).expect("seeds");
    let summary = warm.run_to_halt(10_000).expect("runs");
    assert!(summary.halted);
    assert_eq!(warm.stdout(), cold.stdout());
    assert_eq!(warm.stats.insts, cold.stats.insts);
    assert_eq!(warm.stats.detail_units(), cold.stats.detail_units());
}

#[test]
fn chaos_taints_export_and_seed_forever() {
    let mut sim = Simulator::new(toy::spec(), BLOCK_ALL).expect("builds");
    sim.load_program(&loop_program()).expect("loads");
    assert!(!sim.tainted());
    sim.set_chaos(ChaosPlan::quiet(1));
    assert!(sim.tainted());
    sim.run_to_halt(10_000).expect("runs");
    assert!(sim.export_artifacts().is_none(), "tainted sims never export");

    // Disarming does not launder the caches.
    sim.take_chaos();
    assert!(sim.tainted());
    assert!(sim.export_artifacts().is_none());

    // Nor may a tainted sim adopt shared artifacts: its invalidation rules
    // are per-session.
    let (_, art) = run_cold(Backend::Cached);
    sim.load_program(&loop_program()).expect("loads");
    assert_eq!(sim.seed_artifacts(&art), Err(SeedError::Tainted));
}

#[test]
fn seed_rejects_mismatched_configurations() {
    let (_, art) = run_cold(Backend::Cached);

    let mut wrong_backend = Simulator::new(toy::spec(), BLOCK_ALL).expect("builds");
    wrong_backend.set_backend(Backend::Compiled);
    wrong_backend.load_program(&loop_program()).expect("loads");
    assert_eq!(wrong_backend.seed_artifacts(&art), Err(SeedError::BackendMismatch));

    let mut wrong_bs = Simulator::new(toy::spec(), ONE_ALL).expect("builds");
    wrong_bs.load_program(&loop_program()).expect("loads");
    assert_eq!(wrong_bs.seed_artifacts(&art), Err(SeedError::BuildsetMismatch));

    let mut wrong_cap = Simulator::new(toy::spec(), BLOCK_ALL).expect("builds");
    wrong_cap.set_max_block(8);
    wrong_cap.load_program(&loop_program()).expect("loads");
    assert_eq!(wrong_cap.seed_artifacts(&art), Err(SeedError::MaxBlockMismatch));
    assert!(SeedError::MaxBlockMismatch.to_string().contains("max-block"));
}

#[test]
fn store_shares_across_simulators_by_content() {
    let store = ArtifactStore::new();
    let img = loop_program();
    let key = ArtifactKey::new("toy", &img, BLOCK_ALL.name, Backend::Compiled);

    assert!(store.get(&key).is_none(), "cold miss");
    let (_, art) = run_cold(Backend::Compiled);
    assert!(store.insert(key.clone(), Arc::new(art)));

    // A second session with the same content hits.
    let same_key = ArtifactKey::new("toy", &loop_program(), BLOCK_ALL.name, Backend::Compiled);
    assert_eq!(same_key, key);
    let shared = store.get(&same_key).expect("warm hit");

    let mut warm = Simulator::new(toy::spec(), BLOCK_ALL).expect("builds");
    warm.set_backend(Backend::Compiled);
    warm.load_program(&img).expect("loads");
    warm.seed_artifacts(&shared).expect("seeds");
    let summary = warm.run_to_halt(10_000).expect("runs");
    assert!(summary.halted && summary.exit_code == 7);
    assert_eq!(warm.stats.blocks_built, 0);
    assert!(warm.compiled_blocks() > 0);

    // A different image is a different address.
    let other = image(&[toy::addi(1, 0, nr::EXIT as i16), toy::addi(2, 0, 0), toy::sys()]);
    let other_key = ArtifactKey::new("toy", &other, BLOCK_ALL.name, Backend::Compiled);
    assert_ne!(other_key, key);
    assert!(store.get(&other_key).is_none());

    let s = store.stats();
    assert_eq!(s.entries, 1);
    assert_eq!(s.inserts, 1);
    assert!(s.hits >= 1 && s.misses >= 2);
}
