//! Engine integration tests over the toy ISA.

use lis_core::{
    nr, BuildsetDef, DynInst, Fault, Semantic, Step, Visibility, BLOCK_ALL, BLOCK_MIN, F_ALU_OUT,
    F_EFF_ADDR, F_IMM, F_SRC1, ONE_ALL, ONE_ALL_SPEC, ONE_MIN, STANDARD_BUILDSETS, STEP_ALL,
};
use lis_mem::{Image, Section};
use lis_runtime::{toy, Backend, IfaceError, Simulator};

fn image(words: &[u32]) -> Image {
    Image {
        entry: 0x1000,
        sections: vec![Section {
            name: ".text".into(),
            addr: 0x1000,
            bytes: words.iter().flat_map(|w| w.to_le_bytes()).collect(),
        }],
        symbols: Default::default(),
    }
}

/// A program computing sum(1..=10) via a loop, printing it, then exiting 0.
fn loop_program() -> Image {
    image(&[
        toy::addi(2, 0, 0),  // 0x1000: acc = 0
        toy::addi(3, 0, 10), // 0x1004: i = 10
        toy::addi(4, 0, 0),  // 0x1008: zero
        // loop:
        toy::add(2, 2, 3),   // 0x100c: acc += i
        toy::addi(3, 3, -1), // 0x1010: i -= 1
        toy::bne(3, 4, -3),  // 0x1014: if i != 0 goto loop
        // print acc (sys putudec: r1 = 4, r2 = acc)
        toy::addi(1, 0, nr::PUTUDEC as i16),
        toy::add(2, 2, 0),
        toy::sys(),
        // exit 7
        toy::addi(1, 0, nr::EXIT as i16),
        toy::addi(2, 0, 7),
        toy::sys(),
    ])
}

fn run(bs: BuildsetDef, backend: Backend) -> Simulator {
    let mut sim = Simulator::new(toy::spec(), bs).unwrap();
    sim.set_backend(backend);
    sim.load_program(&loop_program()).unwrap();
    let summary = sim.run_to_halt(10_000).unwrap();
    assert!(summary.halted);
    assert_eq!(summary.exit_code, 7);
    sim
}

#[test]
fn loop_program_runs_under_one_all() {
    let sim = run(ONE_ALL, Backend::Cached);
    assert_eq!(String::from_utf8_lossy(sim.stdout()), "55\n");
    // 3 setup + 10 * 3 loop + 3 print + 3 exit = 39 instructions
    assert_eq!(sim.stats.insts, 39);
    assert_eq!(sim.stats.calls, 39);
}

#[test]
fn all_standard_buildsets_agree() {
    let reference = run(ONE_ALL, Backend::Cached);
    for bs in STANDARD_BUILDSETS {
        let sim = run(bs, Backend::Cached);
        assert_eq!(sim.stdout(), reference.stdout(), "{}", bs.name);
        assert!(
            sim.state.regs_eq(&reference.state),
            "{}: {:?}",
            bs.name,
            sim.state.first_diff(&reference.state)
        );
        assert_eq!(sim.stats.insts, reference.stats.insts, "{}", bs.name);
    }
}

#[test]
fn interpreted_backend_agrees() {
    let cached = run(BLOCK_ALL, Backend::Cached);
    let interp = run(BLOCK_ALL, Backend::Interpreted);
    assert_eq!(cached.stdout(), interp.stdout());
    assert!(cached.state.regs_eq(&interp.state));
    // The cached backend builds each block once; interpreted rebuilds per call.
    assert!(cached.stats.blocks_built < interp.stats.blocks_built);
}

#[test]
fn step_interface_makes_seven_calls_per_inst() {
    let sim = run(STEP_ALL, Backend::Cached);
    assert_eq!(sim.stats.calls, sim.stats.insts * 7);
}

#[test]
fn block_interface_amortizes_calls() {
    let sim = run(BLOCK_MIN, Backend::Cached);
    assert!(sim.stats.calls < sim.stats.insts);
    assert!(sim.stats.mean_block_len() > 1.0);
}

#[test]
fn min_interface_publishes_nothing_but_header() {
    let mut sim = Simulator::new(toy::spec(), ONE_MIN).unwrap();
    sim.load_program(&loop_program()).unwrap();
    let mut di = DynInst::new();
    sim.next_inst(&mut di).unwrap();
    assert_eq!(di.header.pc, 0x1000);
    assert_eq!(di.header.next_pc, 0x1004);
    assert!(di.fields_valid().is_empty());
    assert!(di.operands().is_none());
    assert!(di.fault.is_none());
}

#[test]
fn all_interface_publishes_fields_and_operands() {
    let mut sim = Simulator::new(toy::spec(), ONE_ALL).unwrap();
    sim.load_program(&loop_program()).unwrap();
    let mut di = DynInst::new();
    sim.next_inst(&mut di).unwrap();
    // addi r2, r0, 0
    assert_eq!(di.field(F_IMM), Some(0));
    assert_eq!(di.field(F_SRC1), Some(0));
    assert_eq!(di.field(F_ALU_OUT), Some(0));
    let ops = di.operands().unwrap();
    assert_eq!(ops.dests()[0].index, 2);
    assert_eq!(ops.srcs()[0].index, 0);
}

#[test]
fn step_calls_publish_progressively() {
    let mut sim = Simulator::new(toy::spec(), STEP_ALL).unwrap();
    sim.load_program(&image(&[
        toy::addi(2, 0, 0x40), // r2 = 0x40... wait for store base
        toy::st(2, 2, 0),      // st r2, 0(r2)
        toy::addi(1, 0, nr::EXIT as i16),
        toy::sys(),
    ]))
    .unwrap();
    let mut di = DynInst::new();
    // First instruction, step by step.
    sim.step_inst(Step::Fetch, &mut di).unwrap();
    assert_eq!(di.header.instr_bits, toy::addi(2, 0, 0x40));
    assert!(di.field(F_IMM).is_none(), "decode has not run yet");
    sim.step_inst(Step::Decode, &mut di).unwrap();
    assert_eq!(di.field(F_IMM), Some(0x40));
    sim.step_inst(Step::OperandFetch, &mut di).unwrap();
    assert_eq!(di.field(F_SRC1), Some(0));
    sim.step_inst(Step::Evaluate, &mut di).unwrap();
    assert_eq!(di.field(F_ALU_OUT), Some(0x40));
    sim.step_inst(Step::Memory, &mut di).unwrap();
    sim.step_inst(Step::Writeback, &mut di).unwrap();
    assert_eq!(sim.state.gpr[2], 0x40);
    sim.step_inst(Step::Exception, &mut di).unwrap();
    assert_eq!(sim.state.pc, 0x1004);

    // Second instruction: store; check the effective address is published.
    for s in [Step::Fetch, Step::Decode, Step::OperandFetch, Step::Evaluate] {
        sim.step_inst(s, &mut di).unwrap();
    }
    assert_eq!(di.field(F_EFF_ADDR), Some(0x40));
}

#[test]
fn step_bypass_injection_changes_result() {
    // The timing simulator overwrites a source operand value between
    // operand-fetch and evaluate; the final register must see the injected
    // value — this is how timing-directed simulators model bypassing.
    let mut sim = Simulator::new(toy::spec(), STEP_ALL).unwrap();
    sim.load_program(&image(&[
        toy::addi(2, 3, 5), // r2 = r3 + 5
        toy::addi(1, 0, nr::EXIT as i16),
        toy::sys(),
    ]))
    .unwrap();
    let mut di = DynInst::new();
    sim.step_inst(Step::Fetch, &mut di).unwrap();
    sim.step_inst(Step::Decode, &mut di).unwrap();
    sim.step_inst(Step::OperandFetch, &mut di).unwrap();
    assert_eq!(di.field(F_SRC1), Some(0));
    // Inject a bypassed value for src1.
    let mut frame = lis_core::Frame::new();
    let mut ops = lis_core::Operands::new();
    di.reload(&mut frame, &mut ops);
    frame.set(F_SRC1, 100);
    di.publish(&frame, lis_core::FieldSet::ALL, &ops, true);
    sim.step_inst(Step::Evaluate, &mut di).unwrap();
    assert_eq!(di.field(F_ALU_OUT), Some(105));
    sim.step_inst(Step::Memory, &mut di).unwrap();
    sim.step_inst(Step::Writeback, &mut di).unwrap();
    assert_eq!(sim.state.gpr[2], 105);
}

#[test]
fn wrong_semantic_entry_point_is_rejected() {
    let mut sim = Simulator::new(toy::spec(), ONE_ALL).unwrap();
    sim.load_program(&loop_program()).unwrap();
    let mut buf = Vec::new();
    let err = sim.next_block(&mut buf).unwrap_err();
    assert!(matches!(err, IfaceError::WrongSemantic { wanted: Semantic::Block, .. }));
    let mut di = DynInst::new();
    let err = sim.step_inst(Step::Fetch, &mut di).unwrap_err();
    assert!(matches!(err, IfaceError::WrongSemantic { wanted: Semantic::Step, .. }));
}

#[test]
fn out_of_order_step_is_rejected() {
    let mut sim = Simulator::new(toy::spec(), STEP_ALL).unwrap();
    sim.load_program(&loop_program()).unwrap();
    let mut di = DynInst::new();
    let err = sim.step_inst(Step::Evaluate, &mut di).unwrap_err();
    assert!(matches!(
        err,
        IfaceError::OutOfOrderStep { expected: Step::Fetch, got: Step::Evaluate }
    ));
}

#[test]
fn invalid_interface_is_rejected_at_construction() {
    let step_min = BuildsetDef {
        name: "step-min",
        semantic: Semantic::Step,
        visibility: Visibility::MIN,
        speculation: false,
    };
    let err = Simulator::new(toy::spec(), step_min).unwrap_err();
    assert!(err.to_string().contains("step-min"));
}

#[test]
fn illegal_instruction_faults() {
    let mut sim = Simulator::new(toy::spec(), ONE_ALL).unwrap();
    sim.load_program(&image(&[0xfa00_0000])).unwrap();
    let mut di = DynInst::new();
    sim.next_inst(&mut di).unwrap();
    assert!(matches!(di.fault, Some(Fault::IllegalInstruction { pc: 0x1000, .. })));
    // PC does not advance past the faulting instruction.
    assert_eq!(sim.state.pc, 0x1000);
    assert_eq!(sim.stats.faults, 1);
}

#[test]
fn data_fault_reported_with_address() {
    let mut sim = Simulator::new(toy::spec(), ONE_ALL).unwrap();
    // ld r2, 0(r0) -> address 0 -> null guard fault
    sim.load_program(&image(&[toy::ld(2, 0, 0)])).unwrap();
    let mut di = DynInst::new();
    sim.next_inst(&mut di).unwrap();
    assert!(matches!(di.fault, Some(Fault::DataAccess { addr: 0 })));
}

#[test]
fn speculation_checkpoint_rollback_restores_everything() {
    let mut sim = Simulator::new(toy::spec(), ONE_ALL_SPEC).unwrap();
    sim.load_program(&loop_program()).unwrap();
    let mut di = DynInst::new();
    // Execute the first three instructions, checkpoint, run to completion,
    // then roll back: state must be as at the checkpoint.
    for _ in 0..3 {
        sim.next_inst(&mut di).unwrap();
    }
    let pc_at_cp = sim.state.pc;
    let regs_at_cp = sim.state.clone();
    let cp = sim.checkpoint().unwrap();
    sim.run_to_halt(10_000).unwrap();
    assert!(sim.state.halted);
    assert!(!sim.stdout().is_empty());
    sim.rollback(cp).unwrap();
    assert_eq!(sim.state.pc, pc_at_cp);
    assert!(!sim.state.halted);
    assert!(sim.stdout().is_empty(), "stdout must be rolled back");
    assert!(sim.state.regs_eq(&regs_at_cp), "{:?}", sim.state.first_diff(&regs_at_cp));
    // And the program can re-run to the same result.
    let summary = sim.run_to_halt(10_000).unwrap();
    assert_eq!(summary.exit_code, 7);
    assert_eq!(String::from_utf8_lossy(sim.stdout()), "55\n");
}

#[test]
fn speculation_disabled_errors() {
    let mut sim = Simulator::new(toy::spec(), ONE_ALL).unwrap();
    assert!(matches!(sim.checkpoint(), Err(IfaceError::SpeculationDisabled)));
}

#[test]
fn bad_checkpoint_errors() {
    let mut sim = Simulator::new(toy::spec(), ONE_ALL_SPEC).unwrap();
    sim.load_program(&loop_program()).unwrap();
    let cp = sim.checkpoint().unwrap();
    sim.commit(cp).unwrap();
    assert!(matches!(sim.rollback(cp), Err(IfaceError::BadCheckpoint)));
    assert!(matches!(sim.commit(cp), Err(IfaceError::BadCheckpoint)));
}

#[test]
fn redirect_moves_fetch() {
    let mut sim = Simulator::new(toy::spec(), ONE_ALL).unwrap();
    sim.load_program(&loop_program()).unwrap();
    sim.redirect(0x100c);
    let mut di = DynInst::new();
    sim.next_inst(&mut di).unwrap();
    assert_eq!(di.header.pc, 0x100c);
}

#[test]
fn calling_after_halt_errors() {
    let mut sim = run(ONE_ALL, Backend::Cached);
    let mut di = DynInst::new();
    assert!(matches!(sim.next_inst(&mut di), Err(IfaceError::Halted)));
}

#[test]
fn block_records_one_dyninst_per_inst() {
    let mut sim = Simulator::new(toy::spec(), BLOCK_ALL).unwrap();
    sim.load_program(&loop_program()).unwrap();
    let mut buf = Vec::new();
    let n = sim.next_block(&mut buf).unwrap();
    assert_eq!(n, 6); // up to and including the first bne
    assert_eq!(buf.len(), 6);
    assert_eq!(buf[0].header.pc, 0x1000);
    assert_eq!(buf[5].header.pc, 0x1014);
    // Taken backwards branch: next block starts at the loop head.
    let n2 = sim.next_block(&mut buf).unwrap();
    assert_eq!(n2, 3);
    assert_eq!(buf[0].header.pc, 0x100c);
}

#[test]
fn poke_mem_overrides_values() {
    let mut sim = Simulator::new(toy::spec(), ONE_ALL_SPEC).unwrap();
    sim.load_program(&image(&[
        toy::ld(2, 0, 0x2000), // r2 = [0x2000]
        toy::addi(1, 0, nr::EXIT as i16),
        toy::sys(),
    ]))
    .unwrap();
    sim.poke_mem(0x2000, 4, 0xbeef).unwrap();
    let mut di = DynInst::new();
    sim.next_inst(&mut di).unwrap();
    assert_eq!(sim.state.gpr[2], 0xbeef);
}

#[test]
fn max_insts_budget_enforced() {
    let mut sim = Simulator::new(toy::spec(), ONE_ALL).unwrap();
    // Infinite loop: jmp -1 (to itself).
    sim.load_program(&image(&[toy::jmp(-1)])).unwrap();
    let err = sim.run_to_halt(100).unwrap_err();
    assert!(matches!(err, lis_runtime::SimStop::MaxInsts));
    assert_eq!(sim.stats.insts, 100);
}

#[test]
fn sp_is_initialized() {
    let mut sim = Simulator::new(toy::spec(), ONE_ALL).unwrap();
    sim.load_program(&loop_program()).unwrap();
    assert_eq!(sim.state.gpr[15], lis_runtime::STACK_TOP);
}

#[test]
fn fast_forward_executes_without_publishing() {
    let mut sim = Simulator::new(toy::spec(), BLOCK_MIN).unwrap();
    sim.load_program(&loop_program()).unwrap();
    let done = sim.fast_forward(10).unwrap();
    assert_eq!(done, 10);
    assert!(!sim.state.halted);
    // Finishing the program through the regular interface agrees with a
    // plain run.
    let mut buf = Vec::new();
    while !sim.state.halted {
        sim.next_block(&mut buf).unwrap();
    }
    assert_eq!(String::from_utf8_lossy(sim.stdout()), "55\n");
    assert_eq!(sim.stats.insts, 39);
    // Fast-forwarding the whole program works too and stops at exit.
    let mut sim2 = Simulator::new(toy::spec(), BLOCK_MIN).unwrap();
    sim2.load_program(&loop_program()).unwrap();
    let done = sim2.fast_forward(1_000_000).unwrap();
    assert_eq!(done, 39);
    assert!(sim2.state.halted);
    assert_eq!(String::from_utf8_lossy(sim2.stdout()), "55\n");
}

#[test]
fn fast_forward_requires_block_semantic() {
    let mut sim = Simulator::new(toy::spec(), ONE_ALL).unwrap();
    sim.load_program(&loop_program()).unwrap();
    assert!(matches!(
        sim.fast_forward(5),
        Err(IfaceError::WrongSemantic { wanted: Semantic::Block, .. })
    ));
}

#[test]
fn fast_forward_stops_before_fault() {
    let mut sim = Simulator::new(toy::spec(), BLOCK_MIN).unwrap();
    sim.load_program(&image(&[toy::addi(1, 0, 1), 0xfa00_0000])).unwrap();
    let done = sim.fast_forward(100).unwrap();
    assert_eq!(done, 1, "stops at the illegal instruction");
    // The regular interface reports the fault at the same PC.
    let mut buf = Vec::new();
    sim.next_block(&mut buf).unwrap();
    assert!(matches!(buf.last().unwrap().fault, Some(Fault::IllegalInstruction { .. })));
}

#[test]
fn per_operand_read_sees_current_state() {
    // The paper's individual operand-read call: the timing simulator delays
    // fetching src1 until after it mutates the register, and the instruction
    // consumes the new value.
    let mut sim = Simulator::new(toy::spec(), STEP_ALL).unwrap();
    sim.load_program(&image(&[
        toy::add(2, 3, 4), // r2 = r3 + r4
        toy::addi(1, 0, nr::EXIT as i16),
        toy::sys(),
    ]))
    .unwrap();
    sim.state.gpr[3] = 5;
    sim.state.gpr[4] = 7;
    let mut di = DynInst::new();
    sim.step_inst(Step::Fetch, &mut di).unwrap();
    sim.step_inst(Step::Decode, &mut di).unwrap();
    sim.step_inst(Step::OperandFetch, &mut di).unwrap();
    assert_eq!(di.field(F_SRC1), Some(5));
    // A bypassed value "arrives": the timing simulator re-reads src1 now.
    sim.state.gpr[3] = 100;
    let v = sim.fetch_src_operand(&mut di, 0).unwrap();
    assert_eq!(v, Some(100));
    assert_eq!(di.field(F_SRC1), Some(100));
    assert_eq!(sim.fetch_src_operand(&mut di, 2).unwrap(), None, "no third source");
    sim.step_inst(Step::Evaluate, &mut di).unwrap();
    sim.step_inst(Step::Memory, &mut di).unwrap();
    sim.step_inst(Step::Writeback, &mut di).unwrap();
    assert_eq!(sim.state.gpr[2], 107);
}

#[test]
fn per_operand_write_commits_early() {
    let mut sim = Simulator::new(toy::spec(), STEP_ALL).unwrap();
    sim.load_program(&image(&[toy::addi(2, 0, 9), toy::addi(1, 0, nr::EXIT as i16), toy::sys()]))
        .unwrap();
    let mut di = DynInst::new();
    for s in [Step::Fetch, Step::Decode, Step::OperandFetch, Step::Evaluate] {
        sim.step_inst(s, &mut di).unwrap();
    }
    // Too early before evaluate would be rejected; here it works:
    assert!(sim.write_dest_operand(&di, 0).unwrap());
    assert_eq!(sim.state.gpr[2], 9, "written before the writeback step");
    assert!(!sim.write_dest_operand(&di, 1).unwrap(), "no second destination");
    sim.step_inst(Step::Memory, &mut di).unwrap();
    sim.step_inst(Step::Writeback, &mut di).unwrap();
    sim.step_inst(Step::Exception, &mut di).unwrap();
    assert_eq!(sim.state.gpr[2], 9);
}

#[test]
fn per_operand_calls_enforce_windows() {
    let mut sim = Simulator::new(toy::spec(), STEP_ALL).unwrap();
    sim.load_program(&loop_program()).unwrap();
    let mut di = DynInst::new();
    // Before decode: operand identifiers do not exist yet.
    assert!(matches!(sim.fetch_src_operand(&mut di, 0), Err(IfaceError::OutOfOrderStep { .. })));
    sim.step_inst(Step::Fetch, &mut di).unwrap();
    sim.step_inst(Step::Decode, &mut di).unwrap();
    // Before evaluate: destinations have no values yet.
    assert!(matches!(sim.write_dest_operand(&di, 0), Err(IfaceError::OutOfOrderStep { .. })));
    // Wrong semantic entirely.
    let mut one = Simulator::new(toy::spec(), ONE_ALL).unwrap();
    one.load_program(&loop_program()).unwrap();
    assert!(matches!(one.fetch_src_operand(&mut di, 0), Err(IfaceError::WrongSemantic { .. })));
}

#[test]
fn run_with_sink_sees_every_retired_record() {
    // The sink must observe exactly `insts` records, in program order,
    // regardless of the buildset's semantic level.
    for bs in [ONE_ALL, BLOCK_ALL, STEP_ALL] {
        let mut sim = Simulator::new(toy::spec(), bs).unwrap();
        sim.load_program(&loop_program()).unwrap();
        let mut pcs: Vec<u64> = Vec::new();
        let mut chained = true;
        let mut prev_next = None::<u64>;
        let summary = sim
            .run_with_sink(10_000, |di| {
                if let Some(p) = prev_next {
                    chained &= di.header.pc == p;
                }
                prev_next = Some(di.header.next_pc);
                pcs.push(di.header.pc);
            })
            .unwrap();
        assert_eq!(pcs.len() as u64, summary.insts, "{}", bs.name);
        assert_eq!(summary.insts, sim.stats.insts, "{}", bs.name);
        assert_eq!(pcs[0], 0x1000, "{}", bs.name);
        assert!(chained, "{}: control flow must chain", bs.name);
    }
}

#[test]
fn run_with_sink_delivers_faulting_record() {
    // An all-zero word is an illegal instruction; the sink must still see
    // the faulting record before run_with_sink returns the fault.
    let mut sim = Simulator::new(toy::spec(), ONE_ALL).unwrap();
    sim.load_program(&image(&[toy::addi(2, 0, 1), 0])).unwrap();
    let mut last_fault = None;
    let mut n = 0u64;
    let err = sim
        .run_with_sink(10_000, |di| {
            n += 1;
            last_fault = di.fault;
        })
        .unwrap_err();
    assert!(matches!(err, lis_runtime::SimStop::Fault(Fault::IllegalInstruction { .. })));
    assert_eq!(n, 2);
    assert!(matches!(last_fault, Some(Fault::IllegalInstruction { .. })));
}

#[test]
fn analyzer_preflight_gates_simulator_build() {
    use lis_core::{Exec, InstClass, InstDef, IsaSpec, StepActions};
    use lis_runtime::BuildError;

    fn act(_: &mut Exec<'_>) -> Result<(), Fault> {
        Ok(())
    }
    // An ALU-class instruction with an exception-step action: under a
    // speculative buildset its OS effects escape OsMark coverage (LIS002).
    static BROKEN: &[InstDef] = &[InstDef {
        name: "aluex",
        class: InstClass::Alu,
        mask: 0xff00_0000,
        bits: 0x0100_0000,
        operands: &[],
        actions: StepActions { exception: Some(act), ..StepActions::NONE },
        extra_flows: &[],
    }];
    static SPEC: IsaSpec = IsaSpec {
        name: "broken-fix",
        word_bits: 32,
        endian: lis_mem::Endian::Little,
        insts: BROKEN,
        reg_classes: &[],
        isa_fields: &[],
        disasm: |_, _| String::new(),
        pc_mask: u32::MAX as u64,
        sp_gpr: 0,
    };
    let err = Simulator::new(&SPEC, ONE_ALL_SPEC).unwrap_err();
    match &err {
        BuildError::Lint { buildset, diags } => {
            assert_eq!(*buildset, "one-all-spec");
            assert!(diags.iter().any(|d| d.code == lis_analyze::LIS002), "{diags:?}");
            assert!(err.to_string().contains("LIS002"), "{err}");
        }
        other => panic!("expected Lint rejection, got {other:?}"),
    }
    // Without speculation the interface is acceptable, and the escape hatch
    // builds even the speculative cell.
    assert!(Simulator::new(&SPEC, ONE_ALL).is_ok());
    assert!(Simulator::new_unchecked(&SPEC, ONE_ALL_SPEC).is_ok());
}
