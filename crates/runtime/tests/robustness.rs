//! Robustness features of the engine: the wall-clock watchdog, graceful
//! degradation of the block cache, deterministic chaos injection, and the
//! interface errors the harness depends on.

use lis_core::{nr, DynInst, Step, BLOCK_MIN, ONE_ALL, STEP_ALL};
use lis_mem::{Image, Section};
use lis_runtime::{
    toy, Backend, ChaosPlan, ChaosState, DemotionReason, IfaceError, SimStop, Simulator,
};
use std::time::Duration;

fn image(words: &[u32]) -> Image {
    Image {
        entry: 0x1000,
        sections: vec![Section {
            name: ".text".into(),
            addr: 0x1000,
            bytes: words.iter().flat_map(|w| w.to_le_bytes()).collect(),
        }],
        symbols: Default::default(),
    }
}

/// sum(1..=10), print, exit 7 — the same program the engine tests use.
fn loop_program() -> Image {
    image(&[
        toy::addi(2, 0, 0),
        toy::addi(3, 0, 10),
        toy::addi(4, 0, 0),
        toy::add(2, 2, 3),
        toy::addi(3, 3, -1),
        toy::bne(3, 4, -3),
        toy::addi(1, 0, nr::PUTUDEC as i16),
        toy::add(2, 2, 0),
        toy::sys(),
        toy::addi(1, 0, nr::EXIT as i16),
        toy::addi(2, 0, 7),
        toy::sys(),
    ])
}

#[test]
fn deadline_stops_runaway_program() {
    let mut sim = Simulator::new(toy::spec(), ONE_ALL).unwrap();
    sim.load_program(&image(&[toy::jmp(-1)])).unwrap();
    sim.set_deadline(Duration::ZERO);
    let err = sim.run_to_halt(u64::MAX).unwrap_err();
    assert!(matches!(err, SimStop::Deadline));
    // The simulator is still usable: clear the deadline, keep running.
    sim.clear_deadline();
    assert!(matches!(sim.run_to_halt(10), Err(SimStop::MaxInsts)));
}

#[test]
fn deadline_far_away_does_not_fire() {
    let mut sim = Simulator::new(toy::spec(), BLOCK_MIN).unwrap();
    sim.load_program(&loop_program()).unwrap();
    sim.set_deadline(Duration::from_secs(3600));
    let summary = sim.run_to_halt(10_000).unwrap();
    assert_eq!(summary.exit_code, 7);
}

#[test]
fn stale_cached_block_falls_back_instead_of_running_stale_code() {
    // r2 += 1 forever; the whole loop is one cached block.
    let prog = image(&[toy::addi(2, 2, 1), toy::jmp(-2)]);
    let mut sim = Simulator::new(toy::spec(), BLOCK_MIN).unwrap();
    sim.set_backend(Backend::Cached);
    sim.set_cache_verify(true);
    sim.load_program(&prog).unwrap();

    let mut buf = Vec::new();
    sim.next_block(&mut buf).unwrap();
    assert_eq!(sim.state.gpr[2], 1);
    assert_eq!(sim.stats.fallback_blocks, 0);

    // The code changes underneath the cache: r2 += 1 becomes r2 += 100.
    sim.poke_mem(0x1000, 4, toy::addi(2, 2, 100) as u64).unwrap();
    sim.next_block(&mut buf).unwrap();
    assert_eq!(sim.state.gpr[2], 101, "the rebuilt block must run the new code");
    assert_eq!(sim.stats.fallback_blocks, 1);

    // The fallback rebuild is not cached poisoned; the fresh word is now
    // what the cache verifies against, so no further fallbacks occur.
    sim.next_block(&mut buf).unwrap();
    assert_eq!(sim.state.gpr[2], 201);
    assert_eq!(sim.stats.fallback_blocks, 1);
}

#[test]
fn without_cache_verify_stale_blocks_keep_running() {
    // The contrast case: verification off (the default) executes the cached
    // copy, which is exactly why `lis chaos` switches verification on.
    let prog = image(&[toy::addi(2, 2, 1), toy::jmp(-2)]);
    let mut sim = Simulator::new(toy::spec(), BLOCK_MIN).unwrap();
    sim.set_backend(Backend::Cached);
    sim.load_program(&prog).unwrap();
    let mut buf = Vec::new();
    sim.next_block(&mut buf).unwrap();
    sim.poke_mem(0x1000, 4, toy::addi(2, 2, 100) as u64).unwrap();
    sim.next_block(&mut buf).unwrap();
    assert_eq!(sim.state.gpr[2], 2, "stale cached code still executes");
    assert_eq!(sim.stats.fallback_blocks, 0);
}

#[test]
fn stale_compiled_superblock_falls_back_and_drops_the_cache() {
    // Same scenario as the cached-backend test above, on the compiled
    // backend: cache verification catches the changed word, the whole
    // superblock cache is dropped (chain links may dangle into it), and a
    // one-shot uncached rebuild runs the fresh code.
    let prog = image(&[toy::addi(2, 2, 1), toy::jmp(-2)]);
    let mut sim = Simulator::new(toy::spec(), BLOCK_MIN).unwrap();
    sim.set_backend(Backend::Compiled);
    sim.set_cache_verify(true);
    sim.load_program(&prog).unwrap();

    let mut buf = Vec::new();
    sim.next_block(&mut buf).unwrap();
    assert_eq!(sim.state.gpr[2], 1);
    assert_eq!(sim.stats.fallback_blocks, 0);
    assert!(sim.compiled_blocks() > 0, "the superblock is cached");

    sim.poke_mem(0x1000, 4, toy::addi(2, 2, 100) as u64).unwrap();
    sim.next_block(&mut buf).unwrap();
    assert_eq!(sim.state.gpr[2], 101, "the rebuilt superblock must run the new code");
    assert_eq!(sim.stats.fallback_blocks, 1);
    assert_eq!(sim.compiled_blocks(), 0, "stale translations are dropped, not patched");

    // The one-shot rebuild was not cached; the next call re-translates the
    // fresh text and caching resumes with no further fallbacks.
    sim.next_block(&mut buf).unwrap();
    assert_eq!(sim.state.gpr[2], 201);
    assert_eq!(sim.stats.fallback_blocks, 1);
    assert!(sim.compiled_blocks() > 0);
}

#[test]
fn chaos_page_unmap_drops_compiled_superblock_chains() {
    // Drive the compiled backend block by block under an unmap-only plan.
    // The moment an unmap fires, every superblock (and every chain link into
    // the arena) must be gone: a surviving chain would keep executing a
    // translation of a page that no longer exists.
    let mut sim = Simulator::new(toy::spec(), BLOCK_MIN).unwrap();
    sim.set_backend(Backend::Compiled);
    sim.set_cache_verify(true);
    sim.load_program(&loop_program()).unwrap();
    sim.set_chaos(ChaosPlan {
        seed: 11,
        flip_period: None,
        data_fault_period: None,
        unmap_period: Some(6),
        translate_fault_period: None,
        start: 0,
        max_events: 1,
    });
    let mut buf = Vec::new();
    let mut units = 0;
    let mut seen_unmap = false;
    while !sim.state.halted && units < 300 {
        let before = sim.chaos().map_or(0, |c| c.injected());
        sim.next_block(&mut buf).expect("interface survives chaos");
        let after = sim.chaos().map_or(0, |c| c.injected());
        if after > before && !seen_unmap {
            seen_unmap = true;
            assert_eq!(
                sim.compiled_blocks(),
                0,
                "the unmap must clear the superblock cache before the call returns"
            );
        }
        if let Some(f) = buf.last().and_then(|d| d.fault) {
            let _ = f;
            let pc = buf.last().unwrap().header.pc;
            sim.redirect(pc.wrapping_add(4));
        }
        units += 1;
    }
    assert!(seen_unmap, "a period of 6 must unmap within 300 blocks");
}

#[test]
fn chaos_runs_are_deterministic_and_logged() {
    let run = |seed: u64| {
        let mut sim = Simulator::new(toy::spec(), ONE_ALL).unwrap();
        sim.load_program(&loop_program()).unwrap();
        sim.set_chaos(ChaosPlan::uniform(seed, 8));
        let mut di = DynInst::new();
        // Drive with a skip-on-fault handler so injection cannot wedge the
        // loop; bound the run since skipping may break the program logic.
        let mut units = 0;
        while !sim.state.halted && units < 500 {
            sim.next_inst(&mut di).unwrap();
            if let Some(f) = di.fault {
                let _ = f;
                let pc = di.header.pc;
                sim.redirect(pc.wrapping_add(4));
            }
            units += 1;
        }
        let events = sim.take_chaos().unwrap().events().to_vec();
        (events, sim.stats, sim.state.gpr, sim.state.pc)
    };
    let a = run(0xFEED);
    let b = run(0xFEED);
    assert_eq!(a, b, "same (seed, plan) must replay exactly");
    assert!(!a.0.is_empty(), "a period of 8 must inject within 500 units");
    // Event indices are recorded in nondecreasing instruction order.
    let indices: Vec<u64> = a.0.iter().map(|e| e.inst()).collect();
    assert!(indices.windows(2).all(|w| w[0] <= w[1]), "{indices:?}");
    let c = run(0xBEEF);
    assert_ne!(a.0, c.0, "different seeds must explore different schedules");
}

#[test]
fn chaos_bit_flips_never_poison_the_cache() {
    // Run the same program twice on one cached simulator: once under heavy
    // flip injection, then with chaos removed. The second run must be
    // fault-free — any flipped word that leaked into the predecode caches
    // would keep faulting forever.
    let mut sim = Simulator::new(toy::spec(), ONE_ALL).unwrap();
    sim.set_backend(Backend::Cached);
    sim.load_program(&loop_program()).unwrap();
    sim.set_chaos(ChaosPlan {
        seed: 3,
        flip_period: Some(4),
        data_fault_period: None,
        unmap_period: None,
        translate_fault_period: None,
        start: 0,
        max_events: 0,
    });
    let mut di = DynInst::new();
    let mut units = 0;
    while !sim.state.halted && units < 500 {
        sim.next_inst(&mut di).unwrap();
        if let Some(fault) = di.fault {
            let _ = fault;
            sim.redirect(di.header.pc.wrapping_add(4));
        }
        units += 1;
    }
    let injected = sim.take_chaos().unwrap().injected();
    assert!(injected > 0, "flips must have fired");

    sim.reset_program(&loop_program()).unwrap();
    let summary = sim.run_to_halt(10_000).unwrap();
    assert_eq!(summary.exit_code, 7);
    assert_eq!(String::from_utf8_lossy(sim.stdout()), "55\n");
}

#[test]
fn halted_simulator_rejects_every_entry_point() {
    let mut one = Simulator::new(toy::spec(), ONE_ALL).unwrap();
    one.load_program(&loop_program()).unwrap();
    one.run_to_halt(10_000).unwrap();
    let mut di = DynInst::new();
    assert!(matches!(one.next_inst(&mut di), Err(IfaceError::Halted)));

    let mut block = Simulator::new(toy::spec(), BLOCK_MIN).unwrap();
    block.load_program(&loop_program()).unwrap();
    block.run_to_halt(10_000).unwrap();
    let mut buf = Vec::new();
    assert!(matches!(block.next_block(&mut buf), Err(IfaceError::Halted)));
    assert!(matches!(block.fast_forward(1), Err(IfaceError::Halted)));

    let mut step = Simulator::new(toy::spec(), STEP_ALL).unwrap();
    step.load_program(&loop_program()).unwrap();
    step.run_to_halt(10_000).unwrap();
    assert!(matches!(step.step_inst(Step::Fetch, &mut di), Err(IfaceError::Halted)));
}

#[test]
fn step_sequence_recovers_after_out_of_order_call() {
    let mut sim = Simulator::new(toy::spec(), STEP_ALL).unwrap();
    sim.load_program(&loop_program()).unwrap();
    let mut di = DynInst::new();
    sim.step_inst(Step::Fetch, &mut di).unwrap();
    // Skipping decode is rejected and does not advance the sequence...
    let err = sim.step_inst(Step::Evaluate, &mut di).unwrap_err();
    assert!(matches!(
        err,
        IfaceError::OutOfOrderStep { expected: Step::Decode, got: Step::Evaluate }
    ));
    // ...so the legal next step still works.
    sim.step_inst(Step::Decode, &mut di).unwrap();
    for s in [Step::OperandFetch, Step::Evaluate, Step::Memory, Step::Writeback, Step::Exception] {
        sim.step_inst(s, &mut di).unwrap();
    }
    assert_eq!(sim.state.pc, 0x1004);
}

#[test]
fn chaos_page_unmap_is_survivable_with_cache_verify() {
    // Unmap-heavy plan on the cached backend with verification on: the run
    // may fault (the handler skips), but the engine must neither panic nor
    // execute stale blocks, and fallbacks are counted.
    let mut sim = Simulator::new(toy::spec(), BLOCK_MIN).unwrap();
    sim.set_backend(Backend::Cached);
    sim.set_cache_verify(true);
    sim.load_program(&loop_program()).unwrap();
    sim.set_chaos(ChaosPlan {
        seed: 11,
        flip_period: None,
        data_fault_period: None,
        unmap_period: Some(6),
        translate_fault_period: None,
        start: 0,
        max_events: 4,
    });
    let mut buf = Vec::new();
    let mut units = 0;
    while !sim.state.halted && units < 300 {
        match sim.next_block(&mut buf) {
            Ok(_) => {}
            Err(e) => panic!("interface error under chaos: {e}"),
        }
        if let Some(f) = buf.last().and_then(|d| d.fault) {
            let _ = f;
            let pc = buf.last().unwrap().header.pc;
            sim.redirect(pc.wrapping_add(4));
        }
        units += 1;
    }
    let chaos = sim.take_chaos().unwrap();
    assert!(chaos.injected() <= 4, "event budget respected");
}

#[test]
fn demotion_ladder_walks_compiled_to_cached_to_interpreted() {
    let mut sim = Simulator::new(toy::spec(), BLOCK_MIN).unwrap();
    sim.set_backend(Backend::Compiled);
    sim.load_program(&loop_program()).unwrap();
    assert_eq!(sim.demote_now(DemotionReason::Requested), Some(Backend::Cached));
    assert_eq!(sim.demote_now(DemotionReason::Requested), Some(Backend::Interpreted));
    assert_eq!(
        sim.demote_now(DemotionReason::Requested),
        None,
        "the ladder ends at the reference interpreter"
    );
    assert_eq!(sim.backend(), Backend::Interpreted);
    assert_eq!(sim.stats.demotions, 2);
    let log = sim.demotion_events();
    assert_eq!(log.len(), 2);
    assert_eq!((log[0].from, log[0].to), (Backend::Compiled, Backend::Cached));
    assert_eq!((log[1].from, log[1].to), (Backend::Cached, Backend::Interpreted));
    assert!(log.iter().all(|e| matches!(e.reason, DemotionReason::Requested)));
    // The program still completes on the fully demoted backend.
    let summary = sim.run_to_halt(10_000).unwrap();
    assert_eq!(summary.exit_code, 7);
    assert_eq!(String::from_utf8_lossy(sim.stdout()), "55\n");
}

#[test]
fn run_to_halt_re_dispatches_after_a_cache_verify_demotion() {
    // Enter the hot loop on the compiled backend, then change the loop body
    // underneath the superblock cache — to a different encoding of the same
    // computation, so the program's meaning is preserved. With the ladder
    // armed, the freshness probe must demote Compiled -> Cached *mid-run*
    // and `run_to_halt` must finish the program on the demoted backend.
    let mut sim = Simulator::new(toy::spec(), BLOCK_MIN).unwrap();
    sim.set_backend(Backend::Compiled);
    sim.set_cache_verify(true);
    sim.set_demote(true);
    sim.load_program(&loop_program()).unwrap();

    let mut buf = Vec::new();
    sim.next_block(&mut buf).unwrap(); // 0x1000..: falls into the loop
    sim.next_block(&mut buf).unwrap(); // 0x100c..: one loop iteration, cached
    assert!(sim.compiled_blocks() > 0);

    // add r2, r2, r3 becomes add r2, r3, r2: same sum, different bits.
    sim.poke_mem(0x100c, 4, toy::add(2, 3, 2) as u64).unwrap();
    let summary = sim.run_to_halt(100_000).unwrap();
    assert_eq!(summary.exit_code, 7);
    assert_eq!(String::from_utf8_lossy(sim.stdout()), "55\n");
    assert_eq!(sim.backend(), Backend::Cached, "one rung down, not a full abort");
    assert_eq!(sim.stats.demotions, 1);
    let log = sim.demotion_events();
    assert_eq!(log.len(), 1);
    assert!(matches!(log[0].reason, DemotionReason::CacheVerify));
    assert_eq!((log[0].from, log[0].to), (Backend::Compiled, Backend::Cached));
}

#[test]
fn demotion_is_opt_in_for_automatic_triggers() {
    // Without `set_demote(true)` the stale-cache probe falls back one block
    // at a time (the pre-ladder behavior) and never changes the backend.
    let prog = image(&[toy::addi(2, 2, 1), toy::jmp(-2)]);
    let mut sim = Simulator::new(toy::spec(), BLOCK_MIN).unwrap();
    sim.set_backend(Backend::Compiled);
    sim.set_cache_verify(true);
    sim.load_program(&prog).unwrap();
    let mut buf = Vec::new();
    sim.next_block(&mut buf).unwrap();
    sim.poke_mem(0x1000, 4, toy::addi(2, 2, 100) as u64).unwrap();
    sim.next_block(&mut buf).unwrap();
    assert_eq!(sim.stats.fallback_blocks, 1);
    assert_eq!(sim.backend(), Backend::Compiled, "no ladder without opt-in");
    assert_eq!(sim.stats.demotions, 0);
    assert!(sim.demotion_events().is_empty());
}

#[test]
fn translate_faults_are_silent_and_survive_the_freshness_probe() {
    // A translation fault models a silent translator bug: the corrupted
    // superblock is cached like an honest one, the stored first word still
    // matches memory (so cache verification cannot see it), and no demotion
    // fires even with the ladder armed. Only lockstep against a reference
    // can catch the divergence — which is exactly the supervised harness's
    // job.
    let mut reference = Simulator::new(toy::spec(), BLOCK_MIN).unwrap();
    reference.load_program(&loop_program()).unwrap();
    reference.run_to_halt(10_000).unwrap();
    let ref_stdout = reference.stdout().to_vec();

    let mut sim = Simulator::new(toy::spec(), BLOCK_MIN).unwrap();
    sim.set_backend(Backend::Compiled);
    sim.set_cache_verify(true);
    sim.set_demote(true);
    sim.load_program(&loop_program()).unwrap();
    sim.set_chaos(ChaosPlan {
        seed: 5,
        flip_period: None,
        data_fault_period: None,
        unmap_period: None,
        translate_fault_period: Some(2),
        start: 0,
        max_events: 1,
    });
    let mut buf = Vec::new();
    let mut units = 0;
    while !sim.state.halted && units < 500 {
        sim.next_block(&mut buf).expect("interface survives a translate fault");
        if let Some(d) = buf.last().filter(|d| d.fault.is_some()) {
            let pc = d.header.pc;
            sim.redirect(pc.wrapping_add(4));
        }
        units += 1;
    }
    assert!(sim.chaos().unwrap().injected() > 0, "the translate channel must fire");
    assert_eq!(sim.stats.demotions, 0, "no probe can see a silent translation bug");
    assert_eq!(sim.stats.fallback_blocks, 0, "the stored bits are correct: probes pass");
    assert!(sim.compiled_blocks() > 0, "the poisoned superblock is cached");
    let diverged =
        !sim.state.halted || sim.state.exit_code != 7 || sim.stdout() != ref_stdout.as_slice();
    assert!(diverged, "a poisoned decode capture must change the program's behavior");
}

#[test]
fn scripted_replay_reproduces_a_procedural_chaos_run() {
    // Record the events of a procedural chaos run, then replay them verbatim
    // through a scripted state on a fresh simulator: every observable must
    // match. This is the engine half of the supervised-reference contract.
    let drive = |mut sim: Simulator| {
        let mut di = DynInst::new();
        let mut units = 0;
        while !sim.state.halted && units < 500 {
            sim.next_inst(&mut di).unwrap();
            if di.fault.is_some() {
                sim.redirect(di.header.pc.wrapping_add(4));
            }
            units += 1;
        }
        sim
    };
    let mut subject = Simulator::new(toy::spec(), ONE_ALL).unwrap();
    subject.load_program(&loop_program()).unwrap();
    subject.set_chaos(ChaosPlan::uniform(0xFEED, 8));
    let subject = drive(subject);
    let events = subject.chaos().unwrap().events().to_vec();
    assert!(!events.is_empty(), "the recording run must inject something");

    let mut replay = Simulator::new(toy::spec(), ONE_ALL).unwrap();
    replay.load_program(&loop_program()).unwrap();
    replay.set_chaos_state(ChaosState::scripted(0xFEED, events.iter().cloned()));
    let replay = drive(replay);
    assert_eq!(replay.state.gpr, subject.state.gpr);
    assert_eq!(replay.state.pc, subject.state.pc);
    assert_eq!(replay.stats.faults, subject.stats.faults);
    assert_eq!(replay.chaos().unwrap().events(), events.as_slice());
    assert_eq!(replay.chaos().unwrap().pending(), 0, "every scripted event replayed");
}
