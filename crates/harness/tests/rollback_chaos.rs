//! Property: speculation rollback restores the exact pre-checkpoint
//! architectural state even when chaos injection aborts instructions
//! mid-flight between the checkpoint and the rollback.
//!
//! Only the transient channels (bit flips, data faults) are enabled: they
//! abort an instruction partway through its steps, which is precisely the
//! case the undo log must handle. Page unmaps are a persistent environmental
//! change (the page is gone), so they are out of scope for rollback.

use lis_core::{DynInst, ONE_ALL_SPEC};
use lis_runtime::{Backend, ChaosPlan, Simulator};
use lis_workloads::suite_of;
use proptest::prelude::*;
use std::sync::OnceLock;

fn strrev_image() -> &'static lis_mem::Image {
    static IMAGE: OnceLock<lis_mem::Image> = OnceLock::new();
    IMAGE.get_or_init(|| {
        suite_of("alpha")
            .iter()
            .find(|w| w.name == "strrev")
            .expect("strrev exists")
            .assemble()
            .expect("strrev assembles")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn rollback_restores_pre_checkpoint_state(
        seed in 0u64..10_000,
        warmup in 1u64..60,
        period in 3u64..40,
        extra in 20u64..200,
    ) {
        let spec = lis_workloads::spec_of("alpha");
        let mut sim = Simulator::new(spec, ONE_ALL_SPEC).expect("build");
        sim.set_backend(Backend::Cached);
        sim.load_program(strrev_image()).expect("load");

        // Run clean for a bit, then snapshot and checkpoint.
        let mut di = DynInst::new();
        for _ in 0..warmup {
            sim.next_inst(&mut di).expect("iface");
            prop_assert!(di.fault.is_none(), "clean warmup faulted: {:?}", di.fault);
        }
        let snap = sim.state.clone();
        let snap_stdout = sim.stdout().to_vec();
        let cp = sim.checkpoint().expect("checkpoint");

        // Chaos on: transient faults abort instructions mid-flight; the
        // driver skips past each fault like a minimal handler would.
        sim.set_chaos(ChaosPlan {
            seed,
            flip_period: Some(period),
            data_fault_period: Some(period),
            unmap_period: None,
            translate_fault_period: None,
            start: 0,
            max_events: 0,
        });
        let mut faults = 0u32;
        for _ in 0..extra {
            if sim.state.halted {
                break;
            }
            sim.next_inst(&mut di).expect("iface");
            if di.fault.is_some() {
                faults += 1;
                sim.redirect(di.header.pc.wrapping_add(4));
            }
        }
        sim.take_chaos();

        // Rollback: every register, the PC, stdout, and every byte of
        // memory must be exactly as captured at the checkpoint.
        sim.rollback(cp).expect("rollback");
        prop_assert!(
            sim.state.regs_eq(&snap),
            "registers differ after rollback ({} chaos faults): {:?}",
            faults,
            sim.state.first_diff(&snap)
        );
        let mem_deltas = sim.state.mem.diff(&snap.mem, 8);
        prop_assert!(
            mem_deltas.is_empty(),
            "memory differs after rollback: {mem_deltas:?}"
        );
        prop_assert_eq!(sim.stdout(), &snap_stdout[..], "stdout not rolled back");

        // And the rolled-back simulator still runs the program correctly.
        let summary = sim.run_to_halt(1_000_000).expect("clean rerun");
        prop_assert_eq!(summary.exit_code, 0);
    }
}
