//! Supervised execution end-to-end: the demotion ladder recovering a run
//! that a plain campaign would abort, ddmin plan minimization, and the
//! `.chaosplan` repro format.

use lis_core::{BuildsetDef, IsaSpec, BLOCK_ALL};
use lis_harness::{
    minimize_plan, supervised_replay, supervised_run, ChaosPlanFile, PlanExpect, SuperviseConfig,
    SuperviseOutcome,
};
use lis_mem::Image;
use lis_runtime::{Backend, ChaosEvent, ChaosPlan, DemotionReason};
use lis_workloads::spec_of;

fn kernel(isa: &str, name: &str) -> Image {
    lis_workloads::kernel(isa, name).expect("kernel exists").assemble().expect("kernel assembles")
}

/// A quiet plan with only the translate-fault channel armed: the injected
/// bug is a silently poisoned superblock translation, which no cache
/// freshness probe can see — only the supervisor's lockstep shadow.
fn translate_plan(seed: u64) -> ChaosPlan {
    ChaosPlan { translate_fault_period: Some(2), max_events: 2, ..ChaosPlan::quiet(seed) }
}

/// Finds a seed whose translate-fault campaign provably diverges on the
/// compiled backend (probe mode: demotion off). Deterministic: the scan
/// order and all runs are fixed by code and seeds.
fn diverging_seed(
    spec: &'static IsaSpec,
    image: &Image,
    bs: BuildsetDef,
    cfg: &SuperviseConfig,
) -> u64 {
    for seed in 0..64 {
        let report = supervised_run(spec, image, bs, Backend::Compiled, translate_plan(seed), cfg)
            .expect("supervised run");
        if report.outcome == SuperviseOutcome::Diverged {
            return seed;
        }
    }
    panic!("no diverging translate-fault seed in 0..64");
}

#[test]
fn demotion_recovers_a_run_that_aborts_without_it() {
    let spec = spec_of("alpha");
    let image = kernel("alpha", "hash31");
    let cfg = SuperviseConfig::default();
    let seed = diverging_seed(spec, &image, BLOCK_ALL, &cfg);

    // Without demotion the run ends at the divergence — the old abort.
    let probe =
        supervised_run(spec, &image, BLOCK_ALL, Backend::Compiled, translate_plan(seed), &cfg)
            .expect("probe run");
    assert_eq!(probe.outcome, SuperviseOutcome::Diverged);
    assert!(!probe.divergences.is_empty());
    assert!(probe.demotions.is_empty(), "probe mode must not demote");

    // With demotion the same campaign completes: the supervisor demotes the
    // subject off the poisoned compiled backend, resyncs from the reference,
    // and the final state is lockstep-equal to it.
    let recovered = supervised_run(
        spec,
        &image,
        BLOCK_ALL,
        Backend::Compiled,
        translate_plan(seed),
        &SuperviseConfig { demote: true, ..cfg },
    )
    .expect("recovered run");
    assert_eq!(recovered.outcome, SuperviseOutcome::Halted { exit_code: 0 });
    assert!(recovered.verified, "final state must match the reference");
    assert!(!recovered.divergences.is_empty(), "the divergence was found, then survived");
    assert_eq!(recovered.demotions[0].reason, DemotionReason::SpotCheck);
    assert_eq!(recovered.demotions[0].from, Backend::Compiled);
    assert_eq!(recovered.demotions[0].to, Backend::Cached);
    assert!(recovered.stats.demotions >= 1);
    assert_eq!(recovered.final_backend, recovered.demotions.last().unwrap().to);
}

#[test]
fn supervised_replay_reproduces_the_procedural_divergence() {
    let spec = spec_of("alpha");
    let image = kernel("alpha", "hash31");
    let cfg = SuperviseConfig::default();
    let seed = diverging_seed(spec, &image, BLOCK_ALL, &cfg);
    let procedural =
        supervised_run(spec, &image, BLOCK_ALL, Backend::Compiled, translate_plan(seed), &cfg)
            .expect("procedural run");
    assert!(!procedural.events.is_empty());

    let replay = supervised_replay(
        spec,
        &image,
        BLOCK_ALL,
        Backend::Compiled,
        seed,
        &procedural.events,
        &cfg,
    )
    .expect("scripted replay");
    assert_eq!(replay.outcome, SuperviseOutcome::Diverged, "script must reproduce");
    assert_eq!(replay.events, procedural.events, "replay fires the same events");
}

#[test]
fn minimizer_shrinks_the_event_log_and_the_repro_still_fires() {
    use lis_mem::AccessKind;
    let spec = spec_of("alpha");
    let image = kernel("alpha", "hash31");
    let cfg = SuperviseConfig::default();
    let seed = diverging_seed(spec, &image, BLOCK_ALL, &cfg);
    let run =
        supervised_run(spec, &image, BLOCK_ALL, Backend::Compiled, translate_plan(seed), &cfg)
            .expect("diverging campaign");
    assert_eq!(run.outcome, SuperviseOutcome::Diverged);

    // Pad the real log with noise events whose sites are never reached —
    // exactly what a longer campaign accumulates — so the minimizer has
    // something to strip.
    let mut noisy = run.events.clone();
    noisy.push(ChaosEvent::DataFault { inst: 1_000_000, addr: 0x40, kind: AccessKind::Load });
    noisy.push(ChaosEvent::PageUnmap { inst: 1_000_001, base: 0 });
    noisy.push(ChaosEvent::DataFault { inst: 1_000_002, addr: 0x48, kind: AccessKind::Store });

    let outcome = minimize_plan(spec, &image, BLOCK_ALL, Backend::Compiled, seed, &noisy, &cfg)
        .expect("minimization probes run")
        .expect("baseline replay diverges");
    assert_eq!(outcome.initial, noisy.len());
    assert!(outcome.minimal.len() < outcome.initial, "the padding must be stripped");
    assert!(!outcome.minimal.is_empty());
    assert!(outcome.probes >= 2, "ddmin must actually probe");
    assert!(
        outcome.minimal.iter().all(|e| run.events.contains(e)),
        "nothing outside the real log survives"
    );

    // The minimal script still reproduces, and is 1-minimal: dropping any
    // single remaining event loses the repro... which ddmin already probed;
    // re-assert the headline property directly.
    let replay =
        supervised_replay(spec, &image, BLOCK_ALL, Backend::Compiled, seed, &outcome.minimal, &cfg)
            .expect("minimal replay");
    assert_eq!(replay.outcome, SuperviseOutcome::Diverged);
}

#[test]
fn minimize_refuses_a_plan_that_does_not_reproduce() {
    let spec = spec_of("alpha");
    let image = kernel("alpha", "hash31");
    let cfg = SuperviseConfig::default();
    let out =
        minimize_plan(spec, &image, BLOCK_ALL, Backend::Cached, 1, &[], &cfg).expect("probe runs");
    assert!(out.is_none(), "an empty script on a clean backend cannot diverge");
}

#[test]
fn deadline_pressure_demotes_proactively_before_the_watchdog_fires() {
    let spec = spec_of("alpha");
    let image = kernel("alpha", "hash31");
    // A generous deadline with fraction 0 is "near" immediately: the
    // supervisor must take exactly one proactive Deadline rung and the run
    // must still complete verified.
    let cfg = SuperviseConfig {
        demote: true,
        deadline: Some(std::time::Duration::from_secs(3600)),
        deadline_frac: 0.0,
        ..SuperviseConfig::default()
    };
    let report =
        supervised_run(spec, &image, BLOCK_ALL, Backend::Compiled, ChaosPlan::quiet(0), &cfg)
            .expect("supervised run");
    assert_eq!(report.outcome, SuperviseOutcome::Halted { exit_code: 0 });
    assert!(report.verified);
    let deadline_rungs: Vec<_> =
        report.demotions.iter().filter(|d| d.reason == DemotionReason::Deadline).collect();
    assert_eq!(deadline_rungs.len(), 1, "one proactive rung, not a spiral");
    assert_eq!(deadline_rungs[0].from, Backend::Compiled);
    assert_eq!(report.final_backend, Backend::Cached);
}

#[test]
fn chaosplan_text_round_trips_and_replays() {
    let spec = spec_of("alpha");
    let image = kernel("alpha", "hash31");
    let cfg = SuperviseConfig::default();
    let seed = diverging_seed(spec, &image, BLOCK_ALL, &cfg);
    let run =
        supervised_run(spec, &image, BLOCK_ALL, Backend::Compiled, translate_plan(seed), &cfg)
            .expect("campaign");
    assert_eq!(run.outcome, SuperviseOutcome::Diverged);

    let plan = ChaosPlanFile {
        isa: "alpha".to_string(),
        buildset: "block-all".to_string(),
        backend: Backend::Compiled,
        kernel: "hash31".to_string(),
        seed,
        max_insts: cfg.max_insts,
        spot_stride: cfg.spot_stride,
        expect: PlanExpect::Diverge,
        events: run.events.clone(),
    };
    let text = plan.to_text();
    let parsed = ChaosPlanFile::parse(&text).expect("own output parses");
    assert_eq!(parsed, plan, "text form round-trips exactly");

    let replay = parsed.replay().expect("plan replays");
    assert!(replay.matched, "expect diverge holds: {}", replay.report);
}

#[test]
fn chaosplan_parser_rejects_malformed_input() {
    assert!(ChaosPlanFile::parse("").is_err(), "empty");
    assert!(ChaosPlanFile::parse("not a plan\n").is_err(), "bad magic");
    let missing = "lis-chaosplan v1\nisa alpha\n";
    assert!(ChaosPlanFile::parse(missing).is_err(), "missing header lines");
    let bad_event = "lis-chaosplan v1\nisa alpha\nbuildset block-all\nbackend compiled\n\
                     kernel hash31\nseed 1\nexpect diverge\nevent warp inst=1\n";
    let err = ChaosPlanFile::parse(bad_event).unwrap_err();
    assert!(err.contains("unknown event kind"), "{err}");
    let bad_field = "lis-chaosplan v1\nisa alpha\nbuildset block-all\nbackend compiled\n\
                     kernel hash31\nseed 1\nexpect diverge\nevent unmap inst=1\n";
    let err = ChaosPlanFile::parse(bad_field).unwrap_err();
    assert!(err.contains("missing field base"), "{err}");
}

#[test]
fn chaosplan_event_lines_cover_every_kind() {
    use lis_mem::AccessKind;
    let plan = ChaosPlanFile {
        isa: "arm".to_string(),
        buildset: "one-min".to_string(),
        backend: Backend::Interpreted,
        kernel: "gcd".to_string(),
        seed: 0xFEED,
        max_insts: 1000,
        spot_stride: 8,
        expect: PlanExpect::Survive,
        events: vec![
            ChaosEvent::BitFlip {
                inst: 3,
                pc: 0x1000,
                bit: 5,
                before: 0xDEAD_BEEF,
                after: 0xDEAD_BECF,
            },
            ChaosEvent::DataFault { inst: 9, addr: 0x2000, kind: AccessKind::Store },
            ChaosEvent::PageUnmap { inst: 12, base: 0x3000 },
            ChaosEvent::TranslateFault { inst: 20, pc: 0x1010, idx: 0x1A2B, bit: 63 },
        ],
    };
    let parsed = ChaosPlanFile::parse(&plan.to_text()).expect("parses");
    assert_eq!(parsed, plan);
}
