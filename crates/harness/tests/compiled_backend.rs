//! The compiled (superblock-translating) backend must be observationally
//! identical to the other backends everywhere the single-specification
//! principle reaches:
//!
//! * **Lockstep**: every standard buildset on every ISA, over sampled suite
//!   kernels and generated programs, agrees with the `one-min` interpreted
//!   reference instruction by instruction (proptest-sampled).
//! * **Deterministic stats**: the detail-unit scoreboard — the metric
//!   `BENCH_sweep.json` is built from — is identical between the cached and
//!   compiled backends, so adding the backend cannot perturb the sweep's
//!   bit-identical output.
//! * **Chaos**: fault-injection campaigns (including page unmaps, which
//!   must drop superblock chains) produce the same event log and outcome as
//!   the cached backend, and corrupted (poisoned) builds never enter the
//!   superblock cache.

use lis_core::{DynInst, STANDARD_BUILDSETS};
use lis_harness::{chaos_run, lockstep, ChaosConfig, LockstepOutcome};
use lis_mem::Image;
use lis_runtime::{Backend, ChaosPlan, Simulator};
use lis_workloads::{spec_of, suite_of, ISAS};
use proptest::prelude::*;

/// Kernels sampled by the property tests: small enough to keep the matrix
/// affordable, diverse enough to cover loops, branches, and memory traffic.
const SAMPLED_KERNELS: [&str; 4] = ["strrev", "hash31", "gcd", "sort"];

fn kernel_image(isa: &str, name: &str) -> Image {
    suite_of(isa)
        .iter()
        .find(|w| w.name == name)
        .expect("kernel exists")
        .assemble()
        .expect("kernel assembles")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    /// Compiled ≡ interpreted reference, sampled over the full
    /// 12-buildset × 3-ISA × kernel matrix.
    #[test]
    fn compiled_locksteps_clean_across_matrix(
        isa_idx in 0usize..3,
        bs_idx in 0usize..12,
        kernel_idx in 0usize..SAMPLED_KERNELS.len(),
    ) {
        let isa = ISAS[isa_idx];
        let bs = STANDARD_BUILDSETS[bs_idx];
        let image = kernel_image(isa, SAMPLED_KERNELS[kernel_idx]);
        match lockstep(spec_of(isa), &image, bs, Backend::Compiled) {
            Ok(LockstepOutcome::Halted { exit_code, insts, .. }) => {
                prop_assert_eq!(exit_code, 0, "{}/{}: bad exit", isa, bs.name);
                prop_assert!(insts > 0);
            }
            other => {
                return Err(TestCaseError::fail(format!(
                    "{}/{}: {:?}", isa, bs.name, other.map(|_| ())
                )));
            }
        }
    }
}

/// The sweep metric is backend-invariant: cached and compiled runs retire
/// the same instructions and charge the same detail units on every standard
/// buildset, so `--backends all` sweeps stay bit-identical.
#[test]
fn detail_units_match_cached_backend_exactly() {
    for isa in ISAS {
        let image = kernel_image(isa, "gcd");
        for bs in STANDARD_BUILDSETS {
            let run = |backend: Backend| {
                let mut sim = Simulator::new(spec_of(isa), bs).expect("build");
                sim.set_backend(backend);
                sim.load_program(&image).expect("load");
                let summary = sim.run_to_halt(10_000_000).expect("halts");
                assert_eq!(summary.exit_code, 0, "{isa}/{}: bad exit", bs.name);
                sim.stats
            };
            let cached = run(Backend::Cached);
            let compiled = run(Backend::Compiled);
            assert_eq!(cached.insts, compiled.insts, "{isa}/{}: insts", bs.name);
            assert_eq!(cached.calls, compiled.calls, "{isa}/{}: calls", bs.name);
            assert_eq!(
                cached.detail_units(),
                compiled.detail_units(),
                "{isa}/{}: detail units diverge between backends",
                bs.name
            );
        }
    }
}

/// Chaos campaigns — bit flips, data faults, and page unmaps — observe the
/// same events and reach the same outcome on the compiled backend as on the
/// cached one. Unmaps in particular must invalidate superblock chains: a
/// chain that survived an unmap would execute code from a page that is gone
/// and diverge here.
#[test]
fn chaos_campaign_matches_cached_backend() {
    for isa in ISAS {
        let spec = spec_of(isa);
        let image = kernel_image(isa, "hash31");
        let plan = ChaosPlan {
            seed: 0xC0DE ^ isa.len() as u64,
            flip_period: Some(200),
            data_fault_period: Some(300),
            unmap_period: Some(900),
            translate_fault_period: None,
            start: 0,
            max_events: 12,
        };
        let cfg = ChaosConfig::default();
        let bs = lis_core::BLOCK_MIN;
        let cached = chaos_run(spec, &image, bs, Backend::Cached, plan, &cfg).expect("run");
        let compiled = chaos_run(spec, &image, bs, Backend::Compiled, plan, &cfg).expect("run");
        assert_eq!(cached.events, compiled.events, "{isa}: event logs differ");
        assert_eq!(cached.outcome, compiled.outcome, "{isa}: outcomes differ");
        assert_eq!(cached.insts, compiled.insts, "{isa}: instruction counts differ");
        assert_eq!(cached.faults, compiled.faults, "{isa}: fault counts differ");
        assert_eq!(cached.ring, compiled.ring, "{isa}: rings differ");
    }
}

/// A compiled campaign is exactly reproducible, like every other backend.
#[test]
fn compiled_chaos_campaign_is_reproducible() {
    let spec = spec_of("alpha");
    let image = kernel_image("alpha", "strrev");
    let plan = ChaosPlan::uniform(0xFACE, 250);
    let cfg = ChaosConfig::default();
    let a =
        chaos_run(spec, &image, lis_core::BLOCK_MIN, Backend::Compiled, plan, &cfg).expect("run");
    let b =
        chaos_run(spec, &image, lis_core::BLOCK_MIN, Backend::Compiled, plan, &cfg).expect("run");
    assert!(!a.events.is_empty(), "plan should inject something");
    assert_eq!(a.events, b.events);
    assert_eq!(a.outcome, b.outcome);
    assert_eq!(a.stats, b.stats);
}

/// Bit flips observed while a superblock is being translated poison that
/// build: it runs once and is never cached. After chaos is removed, the
/// program must run perfectly — a flipped word that leaked into the
/// superblock cache would fault on every later iteration.
#[test]
fn poisoned_superblocks_are_never_cached() {
    let spec = spec_of("alpha");
    let image = kernel_image("alpha", "hash31");
    let mut sim = Simulator::new(spec, lis_core::BLOCK_MIN).expect("build");
    sim.set_backend(Backend::Compiled);
    sim.set_cache_verify(true);
    sim.load_program(&image).expect("load");
    sim.set_chaos(ChaosPlan {
        seed: 7,
        flip_period: Some(16),
        data_fault_period: None,
        unmap_period: None,
        translate_fault_period: None,
        start: 0,
        max_events: 0,
    });
    let mut buf: Vec<DynInst> = Vec::new();
    let mut units = 0;
    while !sim.state.halted && units < 600 {
        sim.next_block(&mut buf).expect("interface survives chaos");
        if let Some(d) = buf.last().filter(|d| d.fault.is_some()) {
            let pc = d.header.pc;
            sim.redirect(pc.wrapping_add(4));
        }
        units += 1;
    }
    let injected = sim.take_chaos().expect("chaos set").injected();
    assert!(injected > 0, "flips must have fired");

    // Clean re-run on the same simulator: whatever the chaos phase cached
    // must be translations of the *true* program text.
    sim.reset_program(&image).expect("reset");
    let summary = sim.run_to_halt(10_000_000).expect("clean rerun");
    assert_eq!(summary.exit_code, 0, "a poisoned superblock leaked into the cache");
}
