//! Chaos campaigns must be exactly reproducible on every ISA: the same
//! `(seed, plan)` yields the same event log, the same run summary, and the
//! same final state, independent of wall clock and allocation order.

use lis_core::{BLOCK_MIN, ONE_MIN};
use lis_harness::{chaos_run, ChaosConfig};
use lis_runtime::{Backend, ChaosPlan, SimStop, Simulator};
use lis_workloads::{spec_of, suite_of, ISAS};

fn kernel_image(isa: &str, name: &str) -> lis_mem::Image {
    suite_of(isa)
        .iter()
        .find(|w| w.name == name)
        .expect("kernel exists")
        .assemble()
        .expect("kernel assembles")
}

#[test]
fn same_seed_same_campaign_on_every_isa() {
    for isa in ISAS {
        let spec = spec_of(isa);
        let image = kernel_image(isa, "hash31");
        let plan = ChaosPlan::uniform(0x51EE7 ^ plan_salt(isa), 250);
        let cfg = ChaosConfig::default();
        let a = chaos_run(spec, &image, BLOCK_MIN, Backend::Cached, plan, &cfg).expect("run");
        let b = chaos_run(spec, &image, BLOCK_MIN, Backend::Cached, plan, &cfg).expect("run");
        assert_eq!(a.events, b.events, "{isa}: event logs differ");
        assert_eq!(a.outcome, b.outcome, "{isa}: outcomes differ");
        assert_eq!(a.insts, b.insts, "{isa}: instruction counts differ");
        assert_eq!(a.faults, b.faults, "{isa}: fault counts differ");
        assert_eq!(a.stats, b.stats, "{isa}: stats differ");
        assert_eq!(a.ring, b.ring, "{isa}: ring buffers differ");
        assert_eq!(a.final_state, b.final_state, "{isa}: final states differ");
        assert!(!a.events.is_empty(), "{isa}: plan should inject something");
    }
}

#[test]
fn run_summary_is_reproducible_through_run_to_halt() {
    // The engine-level driver too: same (seed, plan) on a fresh simulator
    // gives the same RunSummary-or-fault and the same event log.
    for isa in ISAS {
        let spec = spec_of(isa);
        let image = kernel_image(isa, "strrev");
        let run = || {
            let mut sim = Simulator::new(spec, ONE_MIN).expect("build");
            sim.set_backend(Backend::Interpreted);
            sim.load_program(&image).expect("load");
            sim.set_chaos(ChaosPlan::uniform(42, 400));
            let result: Result<_, SimStop> = sim.run_to_halt(100_000);
            let events = sim.take_chaos().expect("chaos set").events().to_vec();
            (result, events, sim.stats)
        };
        let a = run();
        let b = run();
        assert_eq!(a.0, b.0, "{isa}: run results differ");
        assert_eq!(a.1, b.1, "{isa}: event logs differ");
        assert_eq!(a.2, b.2, "{isa}: stats differ");
    }
}

fn plan_salt(isa: &str) -> u64 {
    isa.bytes().map(u64::from).sum()
}
