//! Replays every committed `.chaosplan` in `tests/chaos-corpus/` — the
//! regression corpus of minimized chaos repros. A `diverge` plan that stops
//! reproducing means a detector regressed (or an engine change silently
//! absorbed a real bug class); a `survive` plan that diverges means the
//! demotion ladder broke.

use lis_harness::ChaosPlanFile;
use std::path::PathBuf;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/chaos-corpus")
}

#[test]
fn every_committed_chaosplan_still_holds() {
    let dir = corpus_dir();
    let mut plans: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("{}: {e}", dir.display()))
        .filter_map(|entry| {
            let path = entry.expect("readable dir entry").path();
            (path.extension().is_some_and(|x| x == "chaosplan")).then_some(path)
        })
        .collect();
    plans.sort();
    assert!(!plans.is_empty(), "the corpus must not silently vanish: {}", dir.display());

    let mut failed = Vec::new();
    for path in &plans {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let text = std::fs::read_to_string(path).expect("corpus plan readable");
        let plan = ChaosPlanFile::parse(&text)
            .unwrap_or_else(|e| panic!("{name}: committed plan must parse: {e}"));
        match plan.replay() {
            Ok(replay) if replay.matched => {}
            Ok(replay) => failed.push(format!("{name}: verdict broken — {}", replay.report)),
            Err(e) => failed.push(format!("{name}: replay error — {e}")),
        }
    }
    assert!(failed.is_empty(), "stale corpus plans:\n  {}", failed.join("\n  "));
}
