//! Panic isolation and deterministic retry for worker cells.
//!
//! Sweep, verify, and chaos campaigns all fan out over a matrix of
//! independent cells; a bug that panics inside one cell must not take down
//! the worker pool or poison the other cells' results. [`catch_cell`] turns
//! a panic into a structured error string, and [`run_with_retry`] wraps that
//! in a bounded retry loop with deterministic, seed-derived exponential
//! backoff — deterministic so that a retried run produces byte-identical
//! reports regardless of worker count or timing.

use lis_runtime::ChaosRng;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

/// Runs `f`, converting a panic into `Err(message)`. The closure is wrapped
/// in [`AssertUnwindSafe`] because every caller hands in freshly constructed
/// per-cell state that is discarded on failure — there is no shared state to
/// observe half-mutated.
pub fn catch_cell<T>(f: impl FnOnce() -> T) -> Result<T, String> {
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(v) => Ok(v),
        Err(payload) => {
            let msg = if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "non-string panic payload".to_string()
            };
            Err(format!("panic: {msg}"))
        }
    }
}

/// Deterministic exponential backoff with seed-derived jitter: attempt 1
/// waits ~5 ms, doubling per attempt, capped at 200 ms, plus up to 50% jitter
/// drawn from a [`ChaosRng`] keyed on `(seed, attempt)`. Same inputs, same
/// delay — timing never leaks into report bytes.
pub fn backoff_delay(seed: u64, attempt: u32) -> Duration {
    let base_ms = 5u64.saturating_mul(1 << attempt.min(8)).min(200);
    let mut rng = ChaosRng::new(seed ^ u64::from(attempt).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let jitter = rng.below(base_ms / 2 + 1);
    Duration::from_millis(base_ms + jitter)
}

/// Resolves a requested worker count against the amount of work available:
/// `0` means one worker per available core
/// ([`std::thread::available_parallelism`], falling back to a single worker
/// when the host will not say), and the result is always within
/// `[1, cells]` — a pool can neither be empty nor larger than its work
/// list. The one job-count policy shared by every fan-out in the toolkit:
/// the sweep worker pool and the service scheduler.
pub fn resolve_jobs(requested: usize, cells: usize) -> usize {
    let auto = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let j = if requested == 0 { auto } else { requested };
    j.clamp(1, cells.max(1))
}

/// Runs `f(attempt)` under [`catch_cell`] up to `1 + retries` times, sleeping
/// [`backoff_delay`] between attempts. The attempt index is passed to the
/// closure so the caller can degrade per attempt (e.g. retry a crashed sweep
/// cell one backend rung lower). Returns the first success plus the crash
/// message from every failed attempt; `None` if all attempts panicked.
pub fn run_with_retry<T>(
    retries: u32,
    seed: u64,
    mut f: impl FnMut(u32) -> T,
) -> (Option<T>, Vec<String>) {
    let mut crashes = Vec::new();
    for attempt in 0..=retries {
        if attempt > 0 {
            std::thread::sleep(backoff_delay(seed, attempt));
        }
        match catch_cell(|| f(attempt)) {
            Ok(v) => return (Some(v), crashes),
            Err(msg) => crashes.push(format!("attempt {attempt}: {msg}")),
        }
    }
    (None, crashes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catch_cell_passes_values_and_captures_panics() {
        assert_eq!(catch_cell(|| 42), Ok(42));
        let err = catch_cell(|| -> u32 { panic!("boom {}", 7) }).unwrap_err();
        assert_eq!(err, "panic: boom 7");
        let err = catch_cell(|| -> u32 { panic!("static message") }).unwrap_err();
        assert_eq!(err, "panic: static message");
    }

    #[test]
    fn backoff_is_deterministic_bounded_and_grows() {
        let a = backoff_delay(0xFEED, 1);
        assert_eq!(a, backoff_delay(0xFEED, 1), "same (seed, attempt), same delay");
        assert_ne!(a, backoff_delay(0xBEEF, 1), "seed reaches the jitter");
        for attempt in 1..20 {
            let d = backoff_delay(1, attempt).as_millis();
            assert!((5..=300).contains(&d), "attempt {attempt}: {d} ms out of bounds");
        }
        assert!(backoff_delay(1, 6).as_millis() >= backoff_delay(1, 1).as_millis());
    }

    #[test]
    fn job_resolution_clamps() {
        assert_eq!(resolve_jobs(3, 100), 3);
        assert_eq!(resolve_jobs(64, 4), 4, "jobs beyond the work count clamp down");
        assert_eq!(resolve_jobs(7, 0), 1, "an empty work list still gets one worker");
        let auto = resolve_jobs(0, 1000);
        assert!((1..=1000).contains(&auto), "auto is within [1, cells]");
        let host = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        assert_eq!(auto, host.min(1000), "auto derives from available_parallelism");
    }

    #[test]
    fn retry_succeeds_after_transient_panics_and_reports_each_crash() {
        let (v, crashes) = run_with_retry(3, 7, |attempt| {
            if attempt < 2 {
                panic!("transient");
            }
            attempt
        });
        assert_eq!(v, Some(2), "third attempt (index 2) succeeds");
        assert_eq!(crashes.len(), 2);
        assert!(crashes[0].starts_with("attempt 0: panic: transient"));
    }

    #[test]
    fn retry_budget_is_bounded_even_when_every_attempt_panics() {
        let mut calls = 0u32;
        let (v, crashes) = run_with_retry(2, 9, |_| {
            calls += 1;
            panic!("always");
        });
        assert_eq!(v, None::<u32>);
        assert_eq!(calls, 3, "retries=2 means exactly three attempts");
        assert_eq!(crashes.len(), 3);
    }
}
