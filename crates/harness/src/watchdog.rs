//! A reusable wall-clock watchdog for drive loops.
//!
//! Every harness loop that can wedge — a chaos campaign skipping faults
//! forever, a sweep cell running a pathological buildset, a lockstep pair on
//! a livelocked workload — needs the same three lines: remember a start
//! instant, compare elapsed time against a limit, and do it cheaply enough
//! to sit inside a per-instruction loop. [`Watchdog`] packages exactly that
//! so each harness states its deadline policy once instead of re-deriving
//! the clock-checking idiom.

use std::time::{Duration, Instant};

/// Default loop-iteration stride between clock reads. Reading the clock
/// every iteration would tax tight drive loops; a 64-iteration stride keeps
/// a watchdog responsive at microsecond-scale iterations without measurable
/// overhead.
pub const DEFAULT_STRIDE: u32 = 64;

/// A strided wall-clock deadline check.
///
/// Construct one per bounded region (a run, a sweep cell), then poll
/// [`Watchdog::expired`] from the loop. A watchdog built with no limit never
/// expires and never reads the clock — disarmed is free.
#[derive(Debug, Clone)]
pub struct Watchdog {
    armed: Option<(Instant, Duration)>,
    ticks: u32,
    stride: u32,
}

impl Watchdog {
    /// Arms a watchdog for `limit` (or a free never-expiring one for `None`)
    /// with the default check stride.
    pub fn new(limit: Option<Duration>) -> Watchdog {
        Watchdog::with_stride(limit, DEFAULT_STRIDE)
    }

    /// Like [`Watchdog::new`] with an explicit stride; `stride` 0 or 1 means
    /// check the clock on every poll.
    pub fn with_stride(limit: Option<Duration>, stride: u32) -> Watchdog {
        Watchdog { armed: limit.map(|l| (Instant::now(), l)), ticks: 0, stride: stride.max(1) }
    }

    /// Whether the deadline has passed. Only every `stride`-th poll reads
    /// the clock (the first poll always does), so this is cheap enough for
    /// per-instruction loops. Once expired, stays expired.
    pub fn expired(&mut self) -> bool {
        let Some((t0, limit)) = self.armed else { return false };
        let tick = self.ticks;
        self.ticks = self.ticks.wrapping_add(1);
        if !tick.is_multiple_of(self.stride) {
            return false;
        }
        t0.elapsed() >= limit
    }

    /// Whether at least `frac` of the limit has already elapsed — the
    /// early-warning companion to [`Watchdog::expired`]. A supervisor polls
    /// this at a coarse cadence and takes proactive action (demoting to a
    /// cheaper backend, flushing partial results) *before* the deadline
    /// actually fires. Always reads the clock; never true when disarmed.
    pub fn near(&self, frac: f64) -> bool {
        let Some((t0, limit)) = self.armed else { return false };
        t0.elapsed().as_secs_f64() >= limit.as_secs_f64() * frac
    }

    /// Wall-clock time since arming, `None` when disarmed.
    pub fn elapsed(&self) -> Option<Duration> {
        self.armed.map(|(t0, _)| t0.elapsed())
    }

    /// The configured limit, `None` when disarmed.
    pub fn limit(&self) -> Option<Duration> {
        self.armed.map(|(_, l)| l)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_never_expires() {
        let mut w = Watchdog::new(None);
        for _ in 0..1000 {
            assert!(!w.expired());
        }
        assert!(w.elapsed().is_none());
        assert!(w.limit().is_none());
    }

    #[test]
    fn zero_limit_expires_on_first_check() {
        let mut w = Watchdog::new(Some(Duration::ZERO));
        assert!(w.expired(), "a zero deadline is already past at the first clock read");
    }

    #[test]
    fn stride_skips_clock_reads_but_still_fires() {
        let mut w = Watchdog::with_stride(Some(Duration::ZERO), 8);
        // Poll 0 reads the clock; 1..8 are stride skips; 8 reads again.
        assert!(w.expired());
        for _ in 1..8 {
            // Stride skips report not-expired without consulting the clock.
            assert!(!w.expired());
        }
        assert!(w.expired(), "next stride boundary re-reads the clock");
    }

    #[test]
    fn near_warns_before_expiry() {
        // A zero limit is "near" at any fraction; a generous one at none.
        let w = Watchdog::new(Some(Duration::ZERO));
        assert!(w.near(0.9));
        let w = Watchdog::new(Some(Duration::from_secs(3600)));
        assert!(!w.near(0.9));
        assert!(w.near(0.0), "fraction zero is already reached at arming");
        let w = Watchdog::new(None);
        assert!(!w.near(0.0), "disarmed is never near");
    }

    #[test]
    fn generous_limit_does_not_expire() {
        let mut w = Watchdog::new(Some(Duration::from_secs(3600)));
        for _ in 0..10_000 {
            assert!(!w.expired());
        }
        assert!(w.elapsed().unwrap() < Duration::from_secs(3600));
        assert_eq!(w.limit(), Some(Duration::from_secs(3600)));
    }
}
