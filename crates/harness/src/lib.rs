//! # lis-harness — chaos and lockstep robustness harness
//!
//! Two ways of stress-testing the synthesized simulators, both built on the
//! single-specification premise that every derived interface must agree with
//! every other:
//!
//! * **Lockstep verification** ([`lockstep`], [`verify_all`]): run any
//!   buildset × backend combination instruction-by-instruction against the
//!   reference (`one-min`, interpreted). After every retired instruction the
//!   published headers must match; at every interface-call boundary the
//!   architectural registers, stdout, and (periodically) all of memory must
//!   match. A disagreement produces a structured [`DivergenceReport`]
//!   carrying the faulting PC, its disassembly, register and memory deltas,
//!   and ring buffers of the last [`RING_LEN`] instructions from both sides.
//!
//! * **Chaos campaigns** ([`chaos_run`]): run a workload under the
//!   deterministic fault injector ([`lis_runtime::ChaosPlan`]) — bit flips
//!   in fetched words, transient data faults, pages unmapped mid-run — with
//!   a minimal skip-on-fault handler, and classify the result (survived,
//!   fault storm, deadline). Same `(seed, plan)` ⇒ same event log, same
//!   outcome, exactly.
//!
//! * **Trace equivalence** ([`check_trace_against_reference`]): replay a
//!   recorded [`lis_trace::Trace`] against the live reference and verify
//!   every recorded instruction with the same per-instruction judgment
//!   ([`compare_retired`]) the lockstep harness uses.
//!
//! * **Supervised execution** ([`supervised_run`], [`minimize_plan`],
//!   [`ChaosPlanFile`]): drive a chaos campaign in lockstep with the
//!   reference, recover from divergences by walking the backend demotion
//!   ladder, delta-debug a diverging event log to a 1-minimal script, and
//!   serialize it as a replayable `.chaosplan` repro. [`catch_cell`] and
//!   [`run_with_retry`] give sweep/verify cells panic isolation with
//!   deterministic, bounded retry.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod campaign;
mod chaosplan;
mod compare;
mod driver;
mod isolate;
mod lockstep;
mod minimize;
mod report;
mod supervise;
mod verify;
mod watchdog;

pub use campaign::{chaos_run, ChaosConfig, ChaosOutcome, ChaosRunReport};
pub use chaosplan::{ChaosPlanFile, PlanExpect, PlanReplay, CHAOSPLAN_MAGIC};
pub use compare::{check_trace_against_reference, compare_retired, RetiredCmp};
pub use isolate::{backoff_delay, catch_cell, resolve_jobs, run_with_retry};
pub use lockstep::{
    job_label, lockstep, lockstep_with, HarnessError, LockstepConfig, LockstepOutcome, PerturbHook,
};
pub use minimize::{minimize_plan, MinimizeOutcome};
pub use report::{backend_name, DivergenceReport, RegDelta, RetiredInst, Ring, RING_LEN};
pub use supervise::{
    supervised_replay, supervised_run, SuperviseConfig, SuperviseOutcome, SuperviseReport,
};
pub use verify::{verify_all, verify_isa, VerifyConfig, VerifyFailure, VerifyReport, ALL_BACKENDS};
pub use watchdog::{Watchdog, DEFAULT_STRIDE};

#[cfg(test)]
mod tests {
    use super::*;
    use lis_core::{BLOCK_MIN, ONE_ALL, ONE_MIN, STANDARD_BUILDSETS, STEP_ALL};
    use lis_mem::Image;
    use lis_runtime::{Backend, ChaosPlan};

    fn kernel(isa: &str, name: &str) -> Image {
        lis_workloads::kernel(isa, name)
            .expect("kernel exists")
            .assemble()
            .expect("kernel assembles")
    }

    #[test]
    fn lockstep_clean_across_buildsets() {
        let spec = lis_workloads::spec_of("alpha");
        let image = kernel("alpha", "strrev");
        for bs in STANDARD_BUILDSETS {
            for backend in ALL_BACKENDS {
                match lockstep(spec, &image, bs, backend) {
                    Ok(LockstepOutcome::Halted { exit_code, insts, .. }) => {
                        assert_eq!(exit_code, 0, "{}: bad exit", bs.name);
                        assert!(insts > 0);
                    }
                    other => panic!("{} {:?}: {:?}", bs.name, backend, other.map(|_| ())),
                }
            }
        }
    }

    #[test]
    fn detector_catches_register_corruption() {
        let spec = lis_workloads::spec_of("arm");
        let image = kernel("arm", "strrev");
        let mut fired = false;
        let mut perturb = |insts: u64, sim: &mut lis_runtime::Simulator| {
            if insts == 100 && !fired {
                fired = true;
                sim.state.gpr[3] ^= 0x40;
            }
        };
        let err = lockstep_with(
            spec,
            &image,
            ONE_ALL,
            Backend::Cached,
            &LockstepConfig::default(),
            Some(&mut perturb),
        )
        .expect_err("corruption must be detected");
        let HarnessError::Divergence(report) = err else {
            panic!("expected divergence, got {err}");
        };
        assert!(report.inst_index >= 100);
        assert!(
            report.reg_deltas.iter().any(|d| d.class == "gpr" && d.index == 3),
            "report: {report}"
        );
        assert!(!report.subject_ring.is_empty() && !report.reference_ring.is_empty());
        assert!(report.subject_ring.len() <= RING_LEN);
        assert!(!report.disasm.is_empty());
        // The snapshot must be self-contained renderable text.
        assert!(report.snapshot().contains("--- subject state ---"));
    }

    #[test]
    fn detector_catches_memory_corruption() {
        let spec = lis_workloads::spec_of("ppc");
        let image = kernel("ppc", "strrev");
        let mut done = false;
        let mut perturb = |insts: u64, sim: &mut lis_runtime::Simulator| {
            if insts >= 50 && !done {
                done = true;
                // A dirty byte in a page the program never touches: only the
                // memory sweep can see it.
                sim.poke_mem(0x0030_0000, 1, 0xAA).expect("poke");
            }
        };
        let cfg = LockstepConfig { mem_check_stride: 1, ..LockstepConfig::default() };
        let err = lockstep_with(spec, &image, BLOCK_MIN, Backend::Cached, &cfg, Some(&mut perturb))
            .expect_err("memory corruption must be detected");
        let HarnessError::Divergence(report) = err else {
            panic!("expected divergence, got {err}");
        };
        assert!(
            report.mem_deltas.iter().any(|d| d.addr == 0x0030_0000 && d.lhs == 0xAA),
            "report: {report}"
        );
    }

    #[test]
    fn step_semantic_locksteps_too() {
        let spec = lis_workloads::spec_of("alpha");
        let image = kernel("alpha", "hash31");
        let out = lockstep(spec, &image, STEP_ALL, Backend::Interpreted).expect("clean run");
        assert!(matches!(out, LockstepOutcome::Halted { exit_code: 0, .. }));
    }

    #[test]
    fn chaos_run_is_reproducible() {
        let spec = lis_workloads::spec_of("alpha");
        let image = kernel("alpha", "hash31");
        let plan = ChaosPlan::uniform(0xDECAF, 300);
        let cfg = ChaosConfig::default();
        let a = chaos_run(spec, &image, BLOCK_MIN, Backend::Cached, plan, &cfg).expect("run");
        let b = chaos_run(spec, &image, BLOCK_MIN, Backend::Cached, plan, &cfg).expect("run");
        assert!(!a.events.is_empty(), "plan should inject something");
        assert_eq!(a.events, b.events);
        assert_eq!(a.outcome, b.outcome);
        assert_eq!(a.insts, b.insts);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.ring, b.ring);
        assert!(!a.snapshot().is_empty());
    }

    #[test]
    fn chaos_quiet_plan_matches_plain_run() {
        // A plan that injects nothing must not perturb execution at all.
        let spec = lis_workloads::spec_of("arm");
        let image = kernel("arm", "strrev");
        let quiet = chaos_run(
            spec,
            &image,
            ONE_MIN,
            Backend::Interpreted,
            ChaosPlan::quiet(1),
            &ChaosConfig::default(),
        )
        .expect("run");
        assert!(quiet.events.is_empty());
        assert_eq!(quiet.outcome, ChaosOutcome::Halted { exit_code: 0 });
        let clean = lockstep(spec, &image, ONE_MIN, Backend::Interpreted).expect("clean");
        let LockstepOutcome::Halted { insts, .. } = clean else { panic!("halted") };
        assert_eq!(quiet.insts, insts);
    }

    #[test]
    fn compare_retired_verdicts() {
        use lis_core::{Fault, InstHeader};
        let h = InstHeader { pc: 0x1000, instr_bits: 0xAB, next_pc: 0x1004, ..Default::default() };
        assert_eq!(compare_retired((&h, None), (&h, None)), RetiredCmp::Agree);
        let f = Fault::DivideByZero;
        assert_eq!(compare_retired((&h, Some(f)), (&h, Some(f))), RetiredCmp::AgreedFault(f));
        let mut h2 = h;
        h2.next_pc = 0x2000;
        let RetiredCmp::Diverge(msg) = compare_retired((&h2, None), (&h, None)) else {
            panic!("header mismatch must diverge");
        };
        assert!(msg.contains("header disagreement"), "{msg}");
        let RetiredCmp::Diverge(msg) = compare_retired((&h, Some(f)), (&h, None)) else {
            panic!("fault mismatch must diverge");
        };
        assert!(msg.contains("fault disagreement"), "{msg}");
    }

    #[test]
    fn recorded_trace_matches_reference() {
        let spec = lis_workloads::spec_of("alpha");
        let image = kernel("alpha", "strrev");
        let mut bytes = Vec::new();
        let opts = lis_trace::RecordOptions { kernel: "strrev".into(), ..Default::default() };
        lis_trace::record(spec, &image, &mut bytes, &opts).expect("records");
        let trace = lis_trace::Trace::read_from(bytes.as_slice()).expect("reads");
        let n = check_trace_against_reference(spec, &image, &trace).expect("trace agrees");
        assert_eq!(n, trace.insts());
    }

    #[test]
    fn trace_check_catches_a_doctored_record() {
        let spec = lis_workloads::spec_of("alpha");
        let image = kernel("alpha", "strrev");
        let mut bytes = Vec::new();
        let opts = lis_trace::RecordOptions { kernel: "strrev".into(), ..Default::default() };
        lis_trace::record(spec, &image, &mut bytes, &opts).expect("records");
        let trace = lis_trace::Trace::read_from(bytes.as_slice()).expect("reads");

        // Re-encode the stream with one header lie in the middle.
        let mut records = trace.records(None).expect("decodes");
        let mid = records.len() / 2;
        records[mid].header.next_pc ^= 4;
        let mut w = lis_trace::TraceWriter::new(Vec::new(), &trace.meta).expect("writer");
        for rec in &records {
            w.push(rec).expect("encodes");
        }
        let doctored = w.finish(&trace.footer).expect("finishes");
        let doctored = lis_trace::Trace::read_from(doctored.as_slice()).expect("reads");

        let err = check_trace_against_reference(spec, &image, &doctored)
            .expect_err("the lie must be caught");
        let HarnessError::Unexpected(msg) = err else { panic!("unexpected kind: {err}") };
        assert!(msg.contains("header disagreement"), "{msg}");
    }

    #[test]
    fn verify_single_kernel_matrix_passes() {
        let cfg = VerifyConfig {
            kernels: vec!["strrev"],
            random_seeds: vec![],
            random_len: 0,
            backends: ALL_BACKENDS.to_vec(),
            lockstep: LockstepConfig::default(),
        };
        let report = verify_isa("alpha", &cfg);
        assert_eq!(report.jobs, STANDARD_BUILDSETS.len() * ALL_BACKENDS.len());
        let msgs: Vec<String> =
            report.failures.iter().map(|f| format!("{}: {}", f.job, f.error)).collect();
        assert!(report.ok(), "failures: {msgs:?}");
        assert!(report.insts > 0);
        assert!(!report.to_string().is_empty());
    }
}
