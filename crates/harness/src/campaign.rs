//! Seeded chaos campaigns: run a workload under deterministic fault
//! injection and classify how the simulator holds up.
//!
//! The campaign drives the simulator through its own interface with a
//! minimal "operating system" reaction to faults: an injected (or induced)
//! architectural fault is recorded and the faulting instruction skipped, the
//! way a fault handler would advance past an emulated trap. Runs are fully
//! reproducible: the same `(seed, plan)` yields the same event log, the same
//! instruction count, and the same outcome.

use crate::driver::advance;
use crate::lockstep::{retired, HarnessError};
use crate::report::{backend_name, RetiredInst, Ring};
use crate::watchdog::Watchdog;
use lis_core::{BuildsetDef, DynInst, IsaSpec};
use lis_mem::Image;
use lis_runtime::{Backend, ChaosEvent, ChaosPlan, SimStats, Simulator};
use std::fmt;
use std::time::Duration;

/// Tunables for one chaos run.
#[derive(Debug, Clone, Copy)]
pub struct ChaosConfig {
    /// Stop after this many dynamic instructions (retired or faulted).
    pub max_insts: u64,
    /// Abort as a fault storm after this many architectural faults.
    pub max_faults: u64,
    /// Abort as a fault storm after this many consecutive faults at the
    /// same PC (the program is wedged; skipping is not helping).
    pub max_streak: u32,
    /// Optional wall-clock limit for the whole run.
    pub deadline: Option<Duration>,
}

impl Default for ChaosConfig {
    fn default() -> ChaosConfig {
        ChaosConfig { max_insts: 500_000, max_faults: 256, max_streak: 8, deadline: None }
    }
}

/// How a chaos run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosOutcome {
    /// The program exited despite the injected faults.
    Halted {
        /// Guest exit code.
        exit_code: i64,
    },
    /// The instruction budget ran out (the program survived that long).
    Budget,
    /// Fault storm: the fault budget or the same-PC streak limit tripped.
    Storm,
    /// The wall-clock deadline expired.
    Deadline,
}

/// The full record of one chaos run.
#[derive(Debug, Clone)]
pub struct ChaosRunReport {
    /// ISA name.
    pub isa: &'static str,
    /// Subject buildset name.
    pub buildset: &'static str,
    /// Subject backend.
    pub backend: Backend,
    /// The injection plan that was executed.
    pub plan: ChaosPlan,
    /// Classification of the run.
    pub outcome: ChaosOutcome,
    /// Dynamic instructions processed (retired or faulted).
    pub insts: u64,
    /// Architectural faults observed (injected or induced by injection).
    pub faults: u64,
    /// Every injection event, in order, with instruction indices.
    pub events: Vec<ChaosEvent>,
    /// Engine statistics, including graceful-degradation fallbacks.
    pub stats: SimStats,
    /// The last instructions processed before the run ended.
    pub ring: Vec<RetiredInst>,
    /// Rendered architectural state at the end of the run.
    pub final_state: String,
}

impl fmt::Display for ChaosRunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "chaos {} {} ({}) seed {:#x}: {:?} after {} insts, {} faults, {} events, {} fallback blocks",
            self.isa,
            self.buildset,
            backend_name(self.backend),
            self.plan.seed,
            self.outcome,
            self.insts,
            self.faults,
            self.events.len(),
            self.stats.fallback_blocks
        )
    }
}

impl ChaosRunReport {
    /// Full crash-snapshot text: summary, event log, ring buffer, and final
    /// architectural state. `lis chaos` writes this on abnormal exits.
    pub fn snapshot(&self) -> String {
        use fmt::Write;
        let mut out = format!("{self}\n");
        out.push_str("--- injection events ---\n");
        for e in &self.events {
            let _ = writeln!(out, "  {e}");
        }
        out.push_str("--- last instructions ---\n");
        for r in &self.ring {
            let _ = write!(out, "  #{:<8} {:#010x}: {:08x}", r.index, r.pc, r.bits);
            if let Some(fault) = r.fault {
                let _ = write!(out, "  !! {fault}");
            }
            out.push('\n');
        }
        out.push_str("--- final state ---\n");
        out.push_str(&self.final_state);
        out
    }
}

/// Runs `image` on `(bs, backend)` under the chaos `plan`.
///
/// Cache verification (graceful degradation) is switched on for the run, so
/// a cached backend falls back to interpreted rebuilds rather than executing
/// stale blocks after an unmap.
///
/// # Errors
///
/// Construction and load errors only; chaotic behavior is an outcome, not an
/// error.
pub fn chaos_run(
    spec: &'static IsaSpec,
    image: &Image,
    bs: BuildsetDef,
    backend: Backend,
    plan: ChaosPlan,
    cfg: &ChaosConfig,
) -> Result<ChaosRunReport, HarnessError> {
    let mut sim = Simulator::new(spec, bs).map_err(HarnessError::Build)?;
    sim.set_backend(backend);
    sim.set_cache_verify(true);
    sim.set_chaos(plan);
    sim.load_program(image).map_err(HarnessError::Load)?;

    // Chaos iterations advance whole blocks, so every iteration can afford
    // a clock read; the stride-1 watchdog keeps deadline behavior identical
    // to the old inline check.
    let mut watchdog = Watchdog::with_stride(cfg.deadline, 1);
    let mut ring = Ring::new();
    let mut buf: Vec<DynInst> = Vec::new();
    let mut seen = 0u64;
    let mut faults = 0u64;
    let mut last_fault_pc = u64::MAX;
    let mut streak = 0u32;

    let outcome = loop {
        if sim.state.halted {
            break ChaosOutcome::Halted { exit_code: sim.state.exit_code };
        }
        if seen >= cfg.max_insts {
            break ChaosOutcome::Budget;
        }
        if watchdog.expired() {
            break ChaosOutcome::Deadline;
        }
        let n = advance(&mut sim, &mut buf).map_err(HarnessError::Iface)?;
        for rec in &buf[..n] {
            ring.push(retired(seen, rec));
            seen += 1;
        }
        if let Some(fault_rec) = buf[..n].last().filter(|r| r.fault.is_some()) {
            faults += 1;
            let fpc = fault_rec.header.pc;
            if fpc == last_fault_pc {
                streak += 1;
            } else {
                last_fault_pc = fpc;
                streak = 1;
            }
            if faults >= cfg.max_faults || streak >= cfg.max_streak {
                break ChaosOutcome::Storm;
            }
            // Minimal fault handler: skip the faulting instruction.
            sim.redirect(fpc.wrapping_add(4));
        }
    };

    let events = sim.take_chaos().map(|c| c.events().to_vec()).unwrap_or_default();
    Ok(ChaosRunReport {
        isa: spec.name,
        buildset: bs.name,
        backend,
        plan,
        outcome,
        insts: seen,
        faults,
        events,
        stats: sim.stats,
        ring: ring.to_vec(),
        final_state: sim.state.to_string(),
    })
}
