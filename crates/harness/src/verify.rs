//! The full verification matrix: every standard buildset on every backend,
//! for every ISA, in lockstep against the reference.

use crate::isolate::catch_cell;
use crate::lockstep::{job_label, lockstep_with, HarnessError, LockstepConfig, LockstepOutcome};
use lis_mem::Image;
use lis_runtime::Backend;
use lis_workloads::gen::random_program;
use lis_workloads::{spec_of, suite_of, ISAS};
use std::fmt;

/// Which workloads the matrix runs and how each lockstep is configured.
#[derive(Debug, Clone)]
pub struct VerifyConfig {
    /// Suite kernels to run (by name); unknown names are ignored.
    pub kernels: Vec<&'static str>,
    /// Seeds for generated random programs.
    pub random_seeds: Vec<u64>,
    /// Length (static instructions) of each random program.
    pub random_len: usize,
    /// Backends to include in the matrix.
    pub backends: Vec<Backend>,
    /// Per-run lockstep settings.
    pub lockstep: LockstepConfig,
}

/// Every execution backend, in matrix order.
pub const ALL_BACKENDS: [Backend; 3] = [Backend::Cached, Backend::Interpreted, Backend::Compiled];

impl Default for VerifyConfig {
    /// A quick matrix: two short kernels plus two random programs per ISA.
    fn default() -> VerifyConfig {
        VerifyConfig {
            kernels: vec!["strrev", "hash31"],
            random_seeds: vec![0xC0FFEE, 7],
            random_len: 48,
            backends: ALL_BACKENDS.to_vec(),
            lockstep: LockstepConfig::default(),
        }
    }
}

impl VerifyConfig {
    /// The exhaustive matrix: every suite kernel plus three random programs.
    pub fn full() -> VerifyConfig {
        VerifyConfig {
            kernels: vec!["sieve", "fib", "matmul", "hash31", "strrev", "sort", "gcd", "bitcount"],
            random_seeds: vec![1, 2, 3],
            random_len: 64,
            backends: ALL_BACKENDS.to_vec(),
            lockstep: LockstepConfig::default(),
        }
    }
}

/// One failing cell of the matrix.
#[derive(Debug)]
pub struct VerifyFailure {
    /// `isa/buildset/backend/workload` label.
    pub job: String,
    /// What went wrong — usually a [`HarnessError::Divergence`].
    pub error: HarnessError,
}

/// The outcome of a matrix sweep.
#[derive(Debug, Default)]
pub struct VerifyReport {
    /// Lockstep runs executed.
    pub jobs: usize,
    /// Total dynamic instructions compared.
    pub insts: u64,
    /// Every failing run.
    pub failures: Vec<VerifyFailure>,
}

impl VerifyReport {
    /// Whether every job passed.
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }

    /// Folds another report into this one.
    pub fn merge(&mut self, other: VerifyReport) {
        self.jobs += other.jobs;
        self.insts += other.insts;
        self.failures.extend(other.failures);
    }
}

impl fmt::Display for VerifyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} lockstep runs, {} instructions compared, {} failure(s)",
            self.jobs,
            self.insts,
            self.failures.len()
        )
    }
}

fn assemble(isa: &str, src: &str) -> Result<Image, lis_asm::AsmError> {
    lis_workloads::assemble_source(isa, src)
}

/// Sweeps one ISA: every standard buildset × every configured backend ×
/// every configured workload, in lockstep against the reference. Suite
/// kernels additionally have their stdout checked against the golden model.
pub fn verify_isa(isa: &str, cfg: &VerifyConfig) -> VerifyReport {
    let spec = spec_of(isa);
    let mut report = VerifyReport::default();

    // (name, image, expected stdout) — assembled once, shared by all cells.
    let mut programs: Vec<(String, Image, Option<String>)> = Vec::new();
    for w in suite_of(isa) {
        if cfg.kernels.contains(&w.name) {
            let image = w.assemble().expect("suite kernel assembles");
            programs.push((w.name.to_string(), image, Some(w.expected_stdout())));
        }
    }
    for &seed in &cfg.random_seeds {
        let src = random_program(isa, seed, cfg.random_len);
        let image = assemble(isa, &src).expect("generated program assembles");
        programs.push((format!("rand-{seed:x}"), image, None));
    }

    for (name, image, expected) in &programs {
        for bs in lis_core::STANDARD_BUILDSETS {
            for &backend in &cfg.backends {
                report.jobs += 1;
                let job = job_label(isa, &bs, backend, name);
                // One panicking cell must not take down the whole matrix —
                // report it as its own failure and keep sweeping.
                let outcome = match catch_cell(|| {
                    lockstep_with(spec, image, bs, backend, &cfg.lockstep, None)
                }) {
                    Ok(outcome) => outcome,
                    Err(msg) => {
                        report.failures.push(VerifyFailure {
                            job,
                            error: HarnessError::Unexpected(format!("cell crashed: {msg}")),
                        });
                        continue;
                    }
                };
                match outcome {
                    Ok(LockstepOutcome::Halted { exit_code, insts, stdout }) => {
                        report.insts += insts;
                        if let Some(want) = expected {
                            if stdout != want.as_bytes() {
                                report.failures.push(VerifyFailure {
                                    job,
                                    error: HarnessError::Unexpected(format!(
                                        "golden stdout mismatch: got {:?}, want {:?} (exit {exit_code})",
                                        String::from_utf8_lossy(&stdout),
                                        want
                                    )),
                                });
                            }
                        }
                    }
                    Ok(LockstepOutcome::Faulted { fault, insts }) => {
                        report.insts += insts;
                        // Random programs may legitimately fault the same way
                        // on both sides; suite kernels must not fault at all.
                        if expected.is_some() {
                            report.failures.push(VerifyFailure {
                                job,
                                error: HarnessError::Unexpected(format!(
                                    "kernel faulted after {insts} insts: {fault}"
                                )),
                            });
                        }
                    }
                    Ok(LockstepOutcome::MaxInsts { insts }) => {
                        report.insts += insts;
                        report.failures.push(VerifyFailure {
                            job,
                            error: HarnessError::Unexpected(format!(
                                "instruction budget exhausted after {insts} insts"
                            )),
                        });
                    }
                    Err(error) => report.failures.push(VerifyFailure { job, error }),
                }
            }
        }
    }
    report
}

/// Sweeps the whole matrix: all three ISAs through [`verify_isa`].
pub fn verify_all(cfg: &VerifyConfig) -> VerifyReport {
    let mut report = VerifyReport::default();
    for isa in ISAS {
        report.merge(verify_isa(isa, cfg));
    }
    report
}
