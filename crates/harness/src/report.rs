//! Structured divergence reports and retired-instruction ring buffers.

use lis_core::Fault;
use lis_mem::MemDelta;
use lis_runtime::Backend;
use std::collections::VecDeque;
use std::fmt;

/// Depth of the retired-instruction history kept for crash reports.
pub const RING_LEN: usize = 64;

/// Short lower-case name of a backend, for report headers and job labels.
pub fn backend_name(b: Backend) -> &'static str {
    match b {
        Backend::Cached => "cached",
        Backend::Interpreted => "interpreted",
        Backend::Compiled => "compiled",
    }
}

/// One retired (or faulted) instruction as remembered by the ring buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetiredInst {
    /// Position in the dynamic instruction stream (0-based).
    pub index: u64,
    /// Architectural PC.
    pub pc: u64,
    /// Raw instruction word (0 when the fetch itself faulted).
    pub bits: u32,
    /// PC of the following instruction.
    pub next_pc: u64,
    /// Fault reported for this instruction, if any.
    pub fault: Option<Fault>,
}

/// Fixed-depth history of the last [`RING_LEN`] retired instructions.
#[derive(Debug, Clone, Default)]
pub struct Ring {
    entries: VecDeque<RetiredInst>,
}

impl Ring {
    /// Creates an empty ring.
    pub fn new() -> Ring {
        Ring { entries: VecDeque::with_capacity(RING_LEN) }
    }

    /// Appends one record, evicting the oldest when full.
    pub fn push(&mut self, r: RetiredInst) {
        if self.entries.len() == RING_LEN {
            self.entries.pop_front();
        }
        self.entries.push_back(r);
    }

    /// Snapshot of the current contents, oldest first.
    pub fn to_vec(&self) -> Vec<RetiredInst> {
        self.entries.iter().copied().collect()
    }

    /// Number of records held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the ring holds no records.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// One register whose value differs between the two simulators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegDelta {
    /// Register class name (`gpr`, `cr`, ...), from the ISA's accessor table.
    pub class: &'static str,
    /// Index within the class.
    pub index: u16,
    /// Value in the reference simulator.
    pub reference: u64,
    /// Value in the subject simulator.
    pub subject: u64,
}

impl fmt::Display for RegDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}]: reference {:#x}, subject {:#x}",
            self.class, self.index, self.reference, self.subject
        )
    }
}

/// Everything known about one cross-interface divergence: where the two
/// simulators disagreed, how their architectural state differs, and the last
/// [`RING_LEN`] instructions each side retired leading up to the disagreement.
#[derive(Debug, Clone)]
pub struct DivergenceReport {
    /// ISA name.
    pub isa: &'static str,
    /// Buildset of the subject simulator.
    pub buildset: &'static str,
    /// Backend of the subject simulator.
    pub backend: Backend,
    /// Dynamic instruction index at which the divergence was detected.
    pub inst_index: u64,
    /// PC of the instruction implicated.
    pub pc: u64,
    /// Disassembly of that instruction.
    pub disasm: String,
    /// One-line classification of the disagreement.
    pub cause: String,
    /// Registers that differ (reference vs subject).
    pub reg_deltas: Vec<RegDelta>,
    /// Memory bytes that differ (lhs = subject, rhs = reference), capped.
    pub mem_deltas: Vec<MemDelta>,
    /// Last instructions retired by the reference simulator.
    pub reference_ring: Vec<RetiredInst>,
    /// Last instructions retired by the subject simulator.
    pub subject_ring: Vec<RetiredInst>,
    /// Rendered architectural state of the reference at detection time.
    pub reference_state: String,
    /// Rendered architectural state of the subject at detection time.
    pub subject_state: String,
    /// The ISA's disassembler, for rendering ring entries.
    pub disasm_fn: fn(u32, u64) -> String,
}

fn write_ring(
    f: &mut fmt::Formatter<'_>,
    title: &str,
    ring: &[RetiredInst],
    disasm: fn(u32, u64) -> String,
) -> fmt::Result {
    writeln!(f, "  {title} (last {} retired):", ring.len())?;
    for r in ring {
        write!(f, "    #{:<8} {:#010x}: {:08x}  {}", r.index, r.pc, r.bits, disasm(r.bits, r.pc))?;
        if let Some(fault) = r.fault {
            write!(f, "  !! {fault}")?;
        }
        writeln!(f)?;
    }
    Ok(())
}

impl fmt::Display for DivergenceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "divergence: {} {} ({}) at inst #{} pc {:#x}",
            self.isa,
            self.buildset,
            backend_name(self.backend),
            self.inst_index,
            self.pc
        )?;
        writeln!(f, "  inst:  {}", self.disasm)?;
        writeln!(f, "  cause: {}", self.cause)?;
        if !self.reg_deltas.is_empty() {
            writeln!(f, "  register deltas:")?;
            for d in &self.reg_deltas {
                writeln!(f, "    {d}")?;
            }
        }
        if !self.mem_deltas.is_empty() {
            writeln!(f, "  memory deltas (subject vs reference, capped):")?;
            for d in &self.mem_deltas {
                writeln!(
                    f,
                    "    [{:#010x}] subject {:#04x}, reference {:#04x}",
                    d.addr, d.lhs, d.rhs
                )?;
            }
        }
        write_ring(f, "reference ring", &self.reference_ring, self.disasm_fn)?;
        write_ring(f, "subject ring", &self.subject_ring, self.disasm_fn)?;
        Ok(())
    }
}

impl DivergenceReport {
    /// Full crash-snapshot text: the report plus both rendered architectural
    /// states. This is what `lis verify` writes next to a failing run.
    pub fn snapshot(&self) -> String {
        format!(
            "{self}\n--- reference state ---\n{}\n--- subject state ---\n{}",
            self.reference_state, self.subject_state
        )
    }
}
