//! The one definition of "do two simulations agree about this retired
//! instruction" — shared by the lockstep harness (subject vs reference, both
//! live) and the trace equivalence check (recorded stream vs live
//! reference). Keeping a single comparison means a divergence reads the same
//! whichever harness caught it.

use crate::lockstep::HarnessError;
use lis_core::{DynInst, Fault, InstHeader, IsaSpec, ONE_MIN};
use lis_mem::Image;
use lis_runtime::{Backend, Simulator};

/// Verdict for one retired instruction compared against the reference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RetiredCmp {
    /// Headers match and neither side faulted.
    Agree,
    /// Both sides reported the same architectural fault — the run ends here
    /// in agreement.
    AgreedFault(Fault),
    /// The sides disagree; the message says how.
    Diverge(String),
}

/// Compares one retired instruction `(header, fault)` pair against the
/// reference's. Fault agreement is checked first (an agreed fault ends both
/// runs, so the header comparison is moot); then the published headers must
/// be identical.
pub fn compare_retired(
    subject: (&InstHeader, Option<Fault>),
    reference: (&InstHeader, Option<Fault>),
) -> RetiredCmp {
    let (sub_h, sub_f) = subject;
    let (ref_h, ref_f) = reference;
    match (sub_f, ref_f) {
        (None, None) => {}
        (Some(a), Some(b)) if a == b => return RetiredCmp::AgreedFault(a),
        (sf, rf) => {
            return RetiredCmp::Diverge(format!(
                "fault disagreement: subject {}, reference {}",
                fault_str(sf),
                fault_str(rf)
            ));
        }
    }
    if sub_h != ref_h {
        return RetiredCmp::Diverge(format!(
            "header disagreement: reference pc {:#x} bits {:#010x} next {:#x}",
            ref_h.pc, ref_h.instr_bits, ref_h.next_pc
        ));
    }
    RetiredCmp::Agree
}

pub(crate) fn fault_str(f: Option<Fault>) -> String {
    match f {
        Some(fault) => fault.to_string(),
        None => "none".to_string(),
    }
}

/// Replays a recorded trace against the live reference simulator
/// (`one-min`, interpreted) and verifies that every recorded instruction —
/// header and fault — matches what the reference retires, using the same
/// [`compare_retired`] judgment the lockstep harness uses. Whole-run facts
/// (halt, exit code, stdout) are checked against the trace footer.
///
/// Returns the number of instructions compared.
///
/// # Errors
///
/// [`HarnessError::Unexpected`] on any disagreement or an undecodable
/// trace, plus the usual construction/load errors.
pub fn check_trace_against_reference(
    spec: &'static IsaSpec,
    image: &Image,
    trace: &lis_trace::Trace,
) -> Result<u64, HarnessError> {
    let records = trace
        .records(None)
        .map_err(|e| HarnessError::Unexpected(format!("trace does not decode: {e}")))?;

    let mut reference = Simulator::new(spec, ONE_MIN).map_err(HarnessError::Build)?;
    reference.set_backend(Backend::Interpreted);
    reference.load_program(image).map_err(HarnessError::Load)?;

    let mut ref_di = DynInst::new();
    let mut compared = 0u64;
    for rec in &records {
        if reference.state.halted {
            return Err(HarnessError::Unexpected(format!(
                "reference halted after {compared} insts but the trace has {}",
                records.len()
            )));
        }
        ref_di.clear();
        reference.next_inst(&mut ref_di).map_err(HarnessError::Iface)?;
        match compare_retired((&rec.header, rec.fault), (&ref_di.header, ref_di.fault)) {
            RetiredCmp::Agree => compared += 1,
            RetiredCmp::AgreedFault(_) => {
                compared += 1;
                break;
            }
            RetiredCmp::Diverge(cause) => {
                return Err(HarnessError::Unexpected(format!(
                    "trace record {compared} (pc {:#x}): {cause}",
                    rec.header.pc
                )));
            }
        }
    }

    if trace.footer.halted {
        if !reference.state.halted {
            return Err(HarnessError::Unexpected(
                "trace footer says halted but the reference did not halt".to_string(),
            ));
        }
        if reference.state.exit_code != trace.footer.exit_code {
            return Err(HarnessError::Unexpected(format!(
                "exit code disagreement: trace {}, reference {}",
                trace.footer.exit_code, reference.state.exit_code
            )));
        }
    }
    if reference.stdout() != trace.footer.stdout {
        return Err(HarnessError::Unexpected(format!(
            "stdout disagreement: trace {} bytes, reference {} bytes",
            trace.footer.stdout.len(),
            reference.stdout().len()
        )));
    }
    Ok(compared)
}
