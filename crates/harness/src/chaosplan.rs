//! The `.chaosplan` file: a replayable, human-readable chaos repro.
//!
//! A minimized divergence is only worth anything if it can be committed and
//! replayed forever, so the minimizer's output is serialized into a small
//! line-oriented text file: a header pinning the cell (ISA, buildset,
//! backend, kernel, seed, supervision limits) plus one line per injection
//! event, exactly the scripted-replay input. `expect diverge` plans are
//! regression repros (the replay must still find the divergence);
//! `expect survive` plans pin recoveries (the replay must complete verified
//! under demotion). [`ChaosPlanFile::replay`] evaluates either kind and is
//! what both `lis chaos --replay` and the committed corpus test run.

use crate::lockstep::HarnessError;
use crate::supervise::{supervised_replay, SuperviseConfig, SuperviseOutcome, SuperviseReport};
use lis_mem::AccessKind;
use lis_runtime::{Backend, ChaosEvent};
use std::fmt;

/// Magic first line of every plan file.
pub const CHAOSPLAN_MAGIC: &str = "lis-chaosplan v1";

/// What a replay of the plan is expected to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanExpect {
    /// The scripted replay must diverge from the reference (demotion off).
    Diverge,
    /// The scripted replay must complete with a verified final state
    /// (demotion on) — a pinned recovery.
    Survive,
}

/// A parsed (or about-to-be-written) `.chaosplan` file.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosPlanFile {
    /// ISA name (`alpha`, `arm`, `ppc`).
    pub isa: String,
    /// Subject buildset name.
    pub buildset: String,
    /// Subject starting backend.
    pub backend: Backend,
    /// Suite kernel name.
    pub kernel: String,
    /// Campaign seed the events were recorded under (labels the replay).
    pub seed: u64,
    /// Record budget for the replay.
    pub max_insts: u64,
    /// Spot-check stride for the replay.
    pub spot_stride: u64,
    /// Expected replay verdict.
    pub expect: PlanExpect,
    /// The injection script, in firing order.
    pub events: Vec<ChaosEvent>,
}

/// Outcome of replaying a plan file.
#[derive(Debug)]
pub struct PlanReplay {
    /// Whether the replay matched the plan's `expect` line.
    pub matched: bool,
    /// The full supervised report, for diagnostics.
    pub report: SuperviseReport,
}

fn backend_token(b: Backend) -> &'static str {
    match b {
        Backend::Cached => "cached",
        Backend::Interpreted => "interpreted",
        Backend::Compiled => "compiled",
    }
}

fn parse_backend(s: &str) -> Option<Backend> {
    match s {
        "cached" => Some(Backend::Cached),
        "interpreted" => Some(Backend::Interpreted),
        "compiled" => Some(Backend::Compiled),
        _ => None,
    }
}

impl fmt::Display for ChaosPlanFile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{CHAOSPLAN_MAGIC}")?;
        writeln!(f, "isa {}", self.isa)?;
        writeln!(f, "buildset {}", self.buildset)?;
        writeln!(f, "backend {}", backend_token(self.backend))?;
        writeln!(f, "kernel {}", self.kernel)?;
        writeln!(f, "seed {:#x}", self.seed)?;
        writeln!(f, "max-insts {}", self.max_insts)?;
        writeln!(f, "spot-stride {}", self.spot_stride)?;
        let expect = match self.expect {
            PlanExpect::Diverge => "diverge",
            PlanExpect::Survive => "survive",
        };
        writeln!(f, "expect {expect}")?;
        for ev in &self.events {
            match *ev {
                ChaosEvent::BitFlip { inst, pc, bit, before, after } => writeln!(
                    f,
                    "event flip inst={inst} pc={pc:#x} bit={bit} \
                     before={before:#010x} after={after:#010x}"
                )?,
                ChaosEvent::DataFault { inst, addr, kind } => {
                    let kind = match kind {
                        AccessKind::Load => "load",
                        AccessKind::Store => "store",
                        AccessKind::Fetch => "fetch",
                    };
                    writeln!(f, "event data-fault inst={inst} addr={addr:#x} kind={kind}")?;
                }
                ChaosEvent::PageUnmap { inst, base } => {
                    writeln!(f, "event unmap inst={inst} base={base:#x}")?;
                }
                ChaosEvent::TranslateFault { inst, pc, idx, bit } => writeln!(
                    f,
                    "event translate-fault inst={inst} pc={pc:#x} idx={idx:#x} bit={bit}"
                )?,
            }
        }
        Ok(())
    }
}

fn int(s: &str) -> Result<u64, String> {
    let parsed = if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16)
    } else {
        s.parse::<u64>()
    };
    parsed.map_err(|_| format!("bad integer {s:?}"))
}

/// Parses `key=value` fields of an `event` line into (key, value) pairs.
fn fields(rest: &str) -> Result<Vec<(&str, &str)>, String> {
    rest.split_whitespace()
        .map(|tok| tok.split_once('=').ok_or_else(|| format!("bad field {tok:?}")))
        .collect()
}

fn field<'a>(pairs: &[(&str, &'a str)], key: &str) -> Result<&'a str, String> {
    pairs
        .iter()
        .find(|(k, _)| *k == key)
        .map(|(_, v)| *v)
        .ok_or_else(|| format!("missing field {key}"))
}

impl ChaosPlanFile {
    /// Renders the plan in `.chaosplan` v1 text form (the [`fmt::Display`]
    /// impl, named for discoverability).
    pub fn to_text(&self) -> String {
        self.to_string()
    }

    /// Parses `.chaosplan` v1 text.
    ///
    /// # Errors
    ///
    /// Returns a line-prefixed message for any malformed or missing line;
    /// unknown header keys and event kinds are errors, not warnings — a
    /// repro file that is silently half-understood is worse than a rejected
    /// one.
    pub fn parse(text: &str) -> Result<ChaosPlanFile, String> {
        let mut lines = text.lines().enumerate();
        let (_, magic) = lines.next().ok_or("empty plan file")?;
        if magic.trim() != CHAOSPLAN_MAGIC {
            return Err(format!("bad magic {magic:?} (want {CHAOSPLAN_MAGIC:?})"));
        }
        let mut isa = None;
        let mut buildset = None;
        let mut backend = None;
        let mut kernel = None;
        let mut seed = None;
        let mut max_insts = 500_000u64;
        let mut spot_stride = 64u64;
        let mut expect = None;
        let mut events = Vec::new();
        for (idx, raw) in lines {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let at = |m: String| format!("line {}: {m}", idx + 1);
            let (key, rest) =
                line.split_once(char::is_whitespace).ok_or_else(|| at(format!("bare {line:?}")))?;
            let rest = rest.trim();
            match key {
                "isa" => isa = Some(rest.to_string()),
                "buildset" => buildset = Some(rest.to_string()),
                "backend" => {
                    backend = Some(
                        parse_backend(rest).ok_or_else(|| at(format!("bad backend {rest:?}")))?,
                    );
                }
                "kernel" => kernel = Some(rest.to_string()),
                "seed" => seed = Some(int(rest).map_err(at)?),
                "max-insts" => max_insts = int(rest).map_err(at)?,
                "spot-stride" => spot_stride = int(rest).map_err(at)?,
                "expect" => {
                    expect = Some(match rest {
                        "diverge" => PlanExpect::Diverge,
                        "survive" => PlanExpect::Survive,
                        other => return Err(at(format!("bad expect {other:?}"))),
                    });
                }
                "event" => {
                    let (kind, body) = rest.split_once(char::is_whitespace).unwrap_or((rest, ""));
                    let pairs = fields(body).map_err(&at)?;
                    let get = |k: &str| field(&pairs, k).and_then(int);
                    let ev = match kind {
                        "flip" => ChaosEvent::BitFlip {
                            inst: get("inst").map_err(&at)?,
                            pc: get("pc").map_err(&at)?,
                            bit: get("bit").map_err(&at)? as u8,
                            before: get("before").map_err(&at)? as u32,
                            after: get("after").map_err(&at)? as u32,
                        },
                        "data-fault" => ChaosEvent::DataFault {
                            inst: get("inst").map_err(&at)?,
                            addr: get("addr").map_err(&at)?,
                            kind: match field(&pairs, "kind").map_err(&at)? {
                                "load" => AccessKind::Load,
                                "store" => AccessKind::Store,
                                "fetch" => AccessKind::Fetch,
                                other => return Err(at(format!("bad kind {other:?}"))),
                            },
                        },
                        "unmap" => ChaosEvent::PageUnmap {
                            inst: get("inst").map_err(&at)?,
                            base: get("base").map_err(&at)?,
                        },
                        "translate-fault" => ChaosEvent::TranslateFault {
                            inst: get("inst").map_err(&at)?,
                            pc: get("pc").map_err(&at)?,
                            idx: get("idx").map_err(&at)? as u32,
                            bit: get("bit").map_err(&at)? as u8,
                        },
                        other => return Err(at(format!("unknown event kind {other:?}"))),
                    };
                    events.push(ev);
                }
                other => return Err(at(format!("unknown key {other:?}"))),
            }
        }
        Ok(ChaosPlanFile {
            isa: isa.ok_or("missing isa line")?,
            buildset: buildset.ok_or("missing buildset line")?,
            backend: backend.ok_or("missing backend line")?,
            kernel: kernel.ok_or("missing kernel line")?,
            seed: seed.ok_or("missing seed line")?,
            max_insts,
            spot_stride,
            expect: expect.ok_or("missing expect line")?,
            events,
        })
    }

    /// Replays the plan's event script in supervised mode and judges the
    /// outcome against the `expect` line. `diverge` plans probe with
    /// demotion off; `survive` plans run with demotion on and must end
    /// verified with no outstanding divergence.
    ///
    /// # Errors
    ///
    /// `Err` for unknown ISA/buildset/kernel names or harness errors; a
    /// replay that runs but contradicts `expect` is `Ok` with
    /// `matched == false`.
    pub fn replay(&self) -> Result<PlanReplay, String> {
        let known_isa = lis_workloads::ISAS.contains(&self.isa.as_str());
        if !known_isa {
            return Err(format!("unknown isa {:?}", self.isa));
        }
        let spec = lis_workloads::spec_of(&self.isa);
        let bs = *lis_core::find_buildset(&self.buildset)
            .ok_or_else(|| format!("unknown buildset {:?}", self.buildset))?;
        let workload = lis_workloads::kernel(&self.isa, &self.kernel)
            .ok_or_else(|| format!("unknown kernel {:?}", self.kernel))?;
        let image = workload.assemble().map_err(|e| format!("assemble: {e}"))?;
        let cfg = SuperviseConfig {
            max_insts: self.max_insts,
            spot_stride: self.spot_stride,
            demote: self.expect == PlanExpect::Survive,
            ..SuperviseConfig::default()
        };
        let report =
            supervised_replay(spec, &image, bs, self.backend, self.seed, &self.events, &cfg)
                .map_err(|e: HarnessError| e.to_string())?;
        let matched = match self.expect {
            PlanExpect::Diverge => report.outcome == SuperviseOutcome::Diverged,
            PlanExpect::Survive => report.verified && report.outcome != SuperviseOutcome::Diverged,
        };
        Ok(PlanReplay { matched, report })
    }
}
