//! Lockstep execution of a subject simulator against the reference.
//!
//! The reference is always the simplest derivation of the same single
//! specification: the `one-min` buildset on the interpreted backend — no
//! block cache, no predecode, no speculation machinery. Any disagreement
//! between the subject and the reference is therefore a bug in the richer
//! interface's synthesis, not in the specification.

use crate::compare::{compare_retired, RetiredCmp};
use crate::driver::advance;
use crate::report::{backend_name, DivergenceReport, RegDelta, RetiredInst, Ring};
use lis_core::{BuildsetDef, DynInst, Fault, IsaSpec, ONE_MIN};
use lis_mem::Image;
use lis_runtime::{Backend, BuildError, IfaceError, Simulator};
use std::fmt;

/// Tunables for one lockstep run.
#[derive(Debug, Clone, Copy)]
pub struct LockstepConfig {
    /// Stop (successfully) after this many instructions.
    pub max_insts: u64,
    /// Full-memory comparison interval, in interface units. Registers, PC,
    /// and stdout are compared after every unit; sweeping all resident pages
    /// that often would dominate the run, so memory gets a periodic sweep
    /// plus a final one at halt.
    pub mem_check_stride: u64,
    /// Maximum memory deltas collected into a report.
    pub mem_delta_cap: usize,
    /// Arm the subject's demotion ladder: cache verification on plus
    /// automatic demotion, so a verify pass additionally asserts that a run
    /// surviving a mid-run backend demotion still matches the reference.
    pub demote: bool,
}

impl Default for LockstepConfig {
    fn default() -> LockstepConfig {
        LockstepConfig {
            max_insts: 2_000_000,
            mem_check_stride: 1024,
            mem_delta_cap: 16,
            demote: false,
        }
    }
}

/// How a lockstep run ended when no divergence was found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LockstepOutcome {
    /// Both simulators ran the program to exit in agreement.
    Halted {
        /// Program exit code.
        exit_code: i64,
        /// Dynamic instructions compared.
        insts: u64,
        /// Captured stdout (identical on both sides).
        stdout: Vec<u8>,
    },
    /// Both simulators reported the same architectural fault and stopped.
    Faulted {
        /// The agreed fault.
        fault: Fault,
        /// Dynamic instructions compared before the fault.
        insts: u64,
    },
    /// The instruction budget ran out with the simulators still in agreement.
    MaxInsts {
        /// Dynamic instructions compared.
        insts: u64,
    },
}

/// Why a harness run could not complete.
#[derive(Debug)]
pub enum HarnessError {
    /// The subject (or reference) simulator could not be constructed.
    Build(BuildError),
    /// The program image failed to load.
    Load(Fault),
    /// A derived interface was used incorrectly — a harness or engine bug.
    Iface(IfaceError),
    /// The subject and reference disagreed.
    Divergence(Box<DivergenceReport>),
    /// The run completed but its result was wrong (golden-output mismatch,
    /// unexpected fault, budget exhaustion where a clean exit was expected).
    Unexpected(String),
}

impl fmt::Display for HarnessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HarnessError::Build(e) => write!(f, "build error: {e}"),
            HarnessError::Load(e) => write!(f, "image load fault: {e}"),
            HarnessError::Iface(e) => write!(f, "interface error: {e}"),
            HarnessError::Divergence(r) => write!(f, "{r}"),
            HarnessError::Unexpected(msg) => f.write_str(msg),
        }
    }
}

impl std::error::Error for HarnessError {}

/// Runs `image` on the subject `(bs, backend)` simulator in lockstep with
/// the reference, using default settings and no perturbation.
///
/// # Errors
///
/// [`HarnessError::Divergence`] when the two simulators disagree, plus the
/// construction/load errors.
pub fn lockstep(
    spec: &'static IsaSpec,
    image: &Image,
    bs: BuildsetDef,
    backend: Backend,
) -> Result<LockstepOutcome, HarnessError> {
    lockstep_with(spec, image, bs, backend, &LockstepConfig::default(), None)
}

/// Mutable hook called after every interface unit with the instruction count
/// and the subject simulator; see [`lockstep_with`].
pub type PerturbHook<'a> = &'a mut dyn FnMut(u64, &mut Simulator);

/// Full-control lockstep: explicit configuration plus an optional
/// perturbation hook, called after every interface unit (before the state
/// comparison) with the current instruction count and mutable access to the
/// subject. Tests use the hook to corrupt the subject mid-run and prove the
/// detector fires; pass `None` for a plain verification run.
///
/// # Errors
///
/// See [`lockstep`].
pub fn lockstep_with(
    spec: &'static IsaSpec,
    image: &Image,
    bs: BuildsetDef,
    backend: Backend,
    cfg: &LockstepConfig,
    mut perturb: Option<PerturbHook<'_>>,
) -> Result<LockstepOutcome, HarnessError> {
    let mut subject = Simulator::new(spec, bs).map_err(HarnessError::Build)?;
    subject.set_backend(backend);
    if cfg.demote {
        subject.set_cache_verify(true);
        subject.set_demote(true);
    }
    subject.load_program(image).map_err(HarnessError::Load)?;

    let mut reference = Simulator::new(spec, ONE_MIN).map_err(HarnessError::Build)?;
    reference.set_backend(Backend::Interpreted);
    reference.load_program(image).map_err(HarnessError::Load)?;

    let mut ls =
        Lockstep { spec, bs, backend, cfg, sub_ring: Ring::new(), ref_ring: Ring::new(), insts: 0 };
    let mut sub_buf: Vec<DynInst> = Vec::new();
    let mut ref_di = DynInst::new();
    let mut units = 0u64;

    while !subject.state.halted {
        if ls.insts >= cfg.max_insts {
            ls.check(&subject, &reference, true)?;
            return Ok(LockstepOutcome::MaxInsts { insts: ls.insts });
        }
        let n = advance(&mut subject, &mut sub_buf).map_err(HarnessError::Iface)?;
        for s in &sub_buf[..n] {
            ref_di.clear();
            reference.next_inst(&mut ref_di).map_err(HarnessError::Iface)?;
            ls.sub_ring.push(retired(ls.insts, s));
            ls.ref_ring.push(retired(ls.insts, &ref_di));
            match compare_retired((&s.header, s.fault), (&ref_di.header, ref_di.fault)) {
                RetiredCmp::Agree => {}
                RetiredCmp::AgreedFault(fault) => {
                    // Agreed fault: neither side can make progress past it,
                    // so verify final agreement and stop here.
                    ls.check(&subject, &reference, true)?;
                    return Ok(LockstepOutcome::Faulted { fault, insts: ls.insts });
                }
                RetiredCmp::Diverge(cause) => {
                    return Err(ls.diverged(&subject, &reference, s, cause));
                }
            }
            ls.insts += 1;
        }
        if let Some(p) = perturb.as_deref_mut() {
            p(ls.insts, &mut subject);
        }
        units += 1;
        ls.check(&subject, &reference, units.is_multiple_of(cfg.mem_check_stride))?;
    }

    ls.check(&subject, &reference, true)?;
    Ok(LockstepOutcome::Halted {
        exit_code: subject.state.exit_code,
        insts: ls.insts,
        stdout: subject.stdout().to_vec(),
    })
}

/// Per-run bookkeeping shared by the comparison helpers.
struct Lockstep<'a> {
    spec: &'static IsaSpec,
    bs: BuildsetDef,
    backend: Backend,
    cfg: &'a LockstepConfig,
    sub_ring: Ring,
    ref_ring: Ring,
    insts: u64,
}

impl Lockstep<'_> {
    /// Boundary comparison: registers, PC, halt status, and stdout after
    /// every unit; resident memory too when `deep`.
    fn check(
        &self,
        subject: &Simulator,
        reference: &Simulator,
        deep: bool,
    ) -> Result<(), HarnessError> {
        let regs_ok = subject.state.regs_eq(&reference.state);
        let stdout_ok = subject.stdout() == reference.stdout();
        let mem_deltas = if deep || !regs_ok || !stdout_ok {
            subject.state.mem.diff(&reference.state.mem, self.cfg.mem_delta_cap)
        } else {
            Vec::new()
        };
        if regs_ok && stdout_ok && mem_deltas.is_empty() {
            return Ok(());
        }
        let cause = if let Some(d) = reference.state.first_diff(&subject.state) {
            format!("state disagreement (reference vs subject) — {d}")
        } else if !stdout_ok {
            format!(
                "stdout disagreement: reference {} bytes, subject {} bytes",
                reference.stdout().len(),
                subject.stdout().len()
            )
        } else {
            format!("memory disagreement: {} byte(s) differ", mem_deltas.len())
        };
        let last = self.sub_ring.to_vec().last().copied();
        let (pc, bits) = last.map_or((subject.state.pc, 0), |r| (r.pc, r.bits));
        Err(self.report(subject, reference, pc, bits, cause, mem_deltas))
    }

    /// Divergence detected on a published record (fault or header mismatch).
    fn diverged(
        &self,
        subject: &Simulator,
        reference: &Simulator,
        s: &DynInst,
        cause: String,
    ) -> HarnessError {
        let mem = subject.state.mem.diff(&reference.state.mem, self.cfg.mem_delta_cap);
        self.report(subject, reference, s.header.pc, s.header.instr_bits, cause, mem)
    }

    fn report(
        &self,
        subject: &Simulator,
        reference: &Simulator,
        pc: u64,
        bits: u32,
        cause: String,
        mem_deltas: Vec<lis_mem::MemDelta>,
    ) -> HarnessError {
        let mut reg_deltas = Vec::new();
        for class in self.spec.reg_classes {
            for i in 0..class.count {
                let r = (class.read)(&reference.state, i);
                let s = (class.read)(&subject.state, i);
                if r != s {
                    reg_deltas.push(RegDelta {
                        class: class.name,
                        index: i,
                        reference: r,
                        subject: s,
                    });
                }
            }
        }
        HarnessError::Divergence(Box::new(DivergenceReport {
            isa: self.spec.name,
            buildset: self.bs.name,
            backend: self.backend,
            inst_index: self.insts,
            pc,
            disasm: (self.spec.disasm)(bits, pc),
            cause,
            reg_deltas,
            mem_deltas,
            reference_ring: self.ref_ring.to_vec(),
            subject_ring: self.sub_ring.to_vec(),
            reference_state: reference.state.to_string(),
            subject_state: subject.state.to_string(),
            disasm_fn: self.spec.disasm,
        }))
    }
}

pub(crate) fn retired(index: u64, di: &DynInst) -> RetiredInst {
    RetiredInst {
        index,
        pc: di.header.pc,
        bits: di.header.instr_bits,
        next_pc: di.header.next_pc,
        fault: di.fault,
    }
}

/// Short human label for a lockstep job, used by `lis verify` output.
pub fn job_label(isa: &str, bs: &BuildsetDef, backend: Backend, workload: &str) -> String {
    format!("{isa}/{}/{}/{workload}", bs.name, backend_name(backend))
}
