//! Supervised execution: a chaos campaign with a shadow reference and a
//! demotion ladder instead of an abort.
//!
//! [`supervised_run`] drives the subject simulator through its own interface
//! under a chaos plan, exactly like [`crate::chaos_run`] — but a reference
//! simulator (`one-min`, interpreted) shadows it, replaying the subject's
//! own injection log as a script ([`lis_runtime::ChaosState::scripted`]).
//! Every retired record is compared, and every `spot_stride` interface units
//! the full architectural state (registers, stdout, and all of memory) is
//! spot-checked — the paranoid lockstep that catches what no cache probe
//! can, such as a silently poisoned translation.
//!
//! What happens on a divergence is the point of the module: with
//! [`SuperviseConfig::demote`] set, the subject walks one rung down the
//! backend demotion ladder ([`lis_runtime::Simulator::demote_now`]), adopts
//! the reference's architectural state, and *continues*. The run completes
//! with a structured demotion log instead of aborting, and the final state
//! is lockstep-equal to the reference by construction. Without `demote`, the
//! first divergence ends the run with [`SuperviseOutcome::Diverged`] — the
//! probe mode the plan minimizer uses.

use crate::compare::{compare_retired, RetiredCmp};
use crate::driver::advance;
use crate::lockstep::{retired, HarnessError};
use crate::report::{backend_name, RetiredInst, Ring};
use crate::watchdog::Watchdog;
use lis_core::{BuildsetDef, DynInst, IsaSpec, ONE_MIN};
use lis_mem::Image;
use lis_runtime::{
    Backend, ChaosEvent, ChaosPlan, ChaosState, DemotionEvent, DemotionReason, SimStats, Simulator,
};
use std::fmt;
use std::time::Duration;

/// Tunables for one supervised run.
#[derive(Debug, Clone, Copy)]
pub struct SuperviseConfig {
    /// Stop after this many compared records (retired or faulted).
    pub max_insts: u64,
    /// Interface units between full spot checks (registers, stdout, and all
    /// of memory). Record headers are compared on every unit regardless.
    pub spot_stride: u64,
    /// Recover from divergences (demote + resync + continue) instead of
    /// stopping at the first one.
    pub demote: bool,
    /// Optional wall-clock limit for the whole run.
    pub deadline: Option<Duration>,
    /// Fraction of the deadline after which the supervisor proactively
    /// demotes one rung (once), trading speed for trust before the watchdog
    /// fires. Only meaningful with a deadline and `demote`.
    pub deadline_frac: f64,
    /// Abort as a fault storm after this many architectural faults.
    pub max_faults: u64,
    /// Abort as a fault storm after this many consecutive faults at one PC.
    pub max_streak: u32,
    /// Maximum memory deltas sampled when describing a divergence.
    pub mem_delta_cap: usize,
}

impl Default for SuperviseConfig {
    fn default() -> SuperviseConfig {
        SuperviseConfig {
            max_insts: 500_000,
            spot_stride: 64,
            demote: false,
            deadline: None,
            deadline_frac: 0.9,
            max_faults: 256,
            max_streak: 8,
            mem_delta_cap: 16,
        }
    }
}

/// How a supervised run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SuperviseOutcome {
    /// The program exited (faults and recoveries notwithstanding).
    Halted {
        /// Guest exit code.
        exit_code: i64,
    },
    /// The instruction budget ran out with the pair still in agreement.
    Budget,
    /// Fault storm: the fault budget or the same-PC streak limit tripped.
    Storm,
    /// The wall-clock deadline expired.
    Deadline,
    /// A divergence was found and recovery was off (`demote = false`).
    Diverged,
}

/// The full record of one supervised run.
#[derive(Debug, Clone)]
pub struct SuperviseReport {
    /// ISA name.
    pub isa: &'static str,
    /// Subject buildset name.
    pub buildset: &'static str,
    /// The backend the subject started on.
    pub backend: Backend,
    /// The backend the subject ended on (lower when the ladder fired).
    pub final_backend: Backend,
    /// Campaign seed (plan seed, or the recorded seed for replays).
    pub seed: u64,
    /// Classification of the run.
    pub outcome: SuperviseOutcome,
    /// Compared records (retired or faulted), identical on both sides.
    pub insts: u64,
    /// Architectural faults observed (always agreed between the pair).
    pub faults: u64,
    /// Every injection event the subject logged, in order.
    pub events: Vec<ChaosEvent>,
    /// Every demotion the subject took, in order.
    pub demotions: Vec<DemotionEvent>,
    /// Cause of each divergence found (recovered ones included).
    pub divergences: Vec<String>,
    /// Whether the final architectural state (registers, stdout, memory)
    /// matches the reference exactly.
    pub verified: bool,
    /// Subject engine statistics (includes the demotion counter).
    pub stats: SimStats,
    /// The last records processed before the run ended.
    pub ring: Vec<RetiredInst>,
    /// Rendered subject state at the end of the run.
    pub final_state: String,
}

impl fmt::Display for SuperviseReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "supervised {} {} ({} -> {}) seed {:#x}: {:?} after {} insts, {} faults, \
             {} events, {} demotion(s), {} divergence(s), verified={}",
            self.isa,
            self.buildset,
            backend_name(self.backend),
            backend_name(self.final_backend),
            self.seed,
            self.outcome,
            self.insts,
            self.faults,
            self.events.len(),
            self.demotions.len(),
            self.divergences.len(),
            self.verified
        )
    }
}

impl SuperviseReport {
    /// Full crash-snapshot text: summary, injection log, demotion log,
    /// divergence causes, ring buffer, and final state.
    pub fn snapshot(&self) -> String {
        use fmt::Write;
        let mut out = format!("{self}\n");
        out.push_str("--- injection events ---\n");
        for e in &self.events {
            let _ = writeln!(out, "  {e}");
        }
        out.push_str("--- demotions ---\n");
        for d in &self.demotions {
            let _ = writeln!(out, "  {d}");
        }
        out.push_str("--- divergences ---\n");
        for d in &self.divergences {
            let _ = writeln!(out, "  {d}");
        }
        out.push_str("--- last instructions ---\n");
        for r in &self.ring {
            let _ = write!(out, "  #{:<8} {:#010x}: {:08x}", r.index, r.pc, r.bits);
            if let Some(fault) = r.fault {
                let _ = write!(out, "  !! {fault}");
            }
            out.push('\n');
        }
        out.push_str("--- final state ---\n");
        out.push_str(&self.final_state);
        out
    }
}

/// Runs `image` on `(bs, backend)` under the procedural chaos `plan`,
/// supervised by a shadow reference. See the module docs.
///
/// # Errors
///
/// Construction and load errors only; divergence is an outcome here, not an
/// error — that is the whole point of supervision.
pub fn supervised_run(
    spec: &'static IsaSpec,
    image: &Image,
    bs: BuildsetDef,
    backend: Backend,
    plan: ChaosPlan,
    cfg: &SuperviseConfig,
) -> Result<SuperviseReport, HarnessError> {
    run_supervised(spec, image, bs, backend, ChaosState::new(plan), plan.seed, cfg)
}

/// Replays a recorded event log as the subject's campaign (scripted mode)
/// under supervision — the probe the plan minimizer and the regression
/// corpus use. `seed` only labels the run.
///
/// # Errors
///
/// See [`supervised_run`].
pub fn supervised_replay(
    spec: &'static IsaSpec,
    image: &Image,
    bs: BuildsetDef,
    backend: Backend,
    seed: u64,
    events: &[ChaosEvent],
    cfg: &SuperviseConfig,
) -> Result<SuperviseReport, HarnessError> {
    let script = ChaosState::scripted(seed, events.iter().copied());
    run_supervised(spec, image, bs, backend, script, seed, cfg)
}

/// Rewrites an event's instruction stamp down by `skew` — the number of
/// subject instructions discarded by adoptions so far. The subject stamps
/// events with *its* retired count; after a resync the subject runs ahead of
/// the reference by exactly the discarded work, so un-skewing the stamp
/// makes the event due when the reference reaches the same architectural
/// point.
fn unskewed(ev: ChaosEvent, skew: u64) -> ChaosEvent {
    let shift = |inst: u64| inst.saturating_sub(skew);
    match ev {
        ChaosEvent::BitFlip { inst, pc, bit, before, after } => {
            ChaosEvent::BitFlip { inst: shift(inst), pc, bit, before, after }
        }
        ChaosEvent::DataFault { inst, addr, kind } => {
            ChaosEvent::DataFault { inst: shift(inst), addr, kind }
        }
        ChaosEvent::PageUnmap { inst, base } => ChaosEvent::PageUnmap { inst: shift(inst), base },
        ChaosEvent::TranslateFault { inst, pc, idx, bit } => {
            ChaosEvent::TranslateFault { inst: shift(inst), pc, idx, bit }
        }
    }
}

/// Forwards every subject event logged since the last call to the
/// reference's script, architectural ones only (the reference performs no
/// translation, so translate faults have no site there).
fn feed_reference(subject: &Simulator, reference: &mut Simulator, fed: &mut usize, skew: u64) {
    let Some(events) = subject.chaos().map(|c| c.events()) else { return };
    let new = &events[*fed..];
    *fed = events.len();
    if new.is_empty() {
        return;
    }
    let script = reference.chaos_mut().expect("reference script armed");
    for ev in new {
        if ev.architectural() {
            script.push_event(unskewed(*ev, skew));
        }
    }
}

/// Full-state spot check: registers and PC, stdout, and all of memory.
/// Returns the rendered cause of the first disagreement, `None` on
/// agreement.
fn spot_check(subject: &Simulator, reference: &Simulator, cap: usize) -> Option<String> {
    if let Some(d) = reference.state.first_diff(&subject.state) {
        return Some(format!("state disagreement (reference vs subject) — {d}"));
    }
    if subject.stdout() != reference.stdout() {
        return Some(format!(
            "stdout disagreement: reference {} bytes, subject {} bytes",
            reference.stdout().len(),
            subject.stdout().len()
        ));
    }
    let deltas = subject.state.mem.diff(&reference.state.mem, cap);
    if !deltas.is_empty() {
        return Some(format!("memory disagreement: {} byte(s) differ", deltas.len()));
    }
    None
}

fn run_supervised(
    spec: &'static IsaSpec,
    image: &Image,
    bs: BuildsetDef,
    backend: Backend,
    chaos: ChaosState,
    seed: u64,
    cfg: &SuperviseConfig,
) -> Result<SuperviseReport, HarnessError> {
    let mut subject = Simulator::new(spec, bs).map_err(HarnessError::Build)?;
    subject.set_backend(backend);
    subject.set_cache_verify(true);
    subject.set_demote(cfg.demote);
    subject.set_chaos_state(chaos);
    subject.load_program(image).map_err(HarnessError::Load)?;

    let mut reference = Simulator::new(spec, ONE_MIN).map_err(HarnessError::Build)?;
    reference.set_backend(Backend::Interpreted);
    reference.set_chaos_state(ChaosState::scripted(seed, []));
    reference.load_program(image).map_err(HarnessError::Load)?;

    let mut watchdog = Watchdog::with_stride(cfg.deadline, 1);
    let mut ring = Ring::new();
    let mut buf: Vec<DynInst> = Vec::new();
    let mut ref_di = DynInst::new();
    let mut seen = 0u64;
    let mut faults = 0u64;
    let mut last_fault_pc = u64::MAX;
    let mut streak = 0u32;
    let mut units = 0u64;
    let mut fed = 0usize;
    // Subject instructions discarded by resyncs so far; see `unskewed`.
    let mut skew = 0u64;
    let mut divergences: Vec<String> = Vec::new();
    let mut deadline_demoted = false;

    let outcome = 'run: loop {
        if subject.state.halted {
            break ChaosOutcomeLocal::Halted;
        }
        if seen >= cfg.max_insts {
            break ChaosOutcomeLocal::Budget;
        }
        if watchdog.expired() {
            break ChaosOutcomeLocal::Deadline;
        }
        if cfg.demote && !deadline_demoted && watchdog.near(cfg.deadline_frac) {
            // One proactive rung before the deadline fires — not a spiral:
            // further pressure is the watchdog's business.
            deadline_demoted = true;
            subject.demote_now(DemotionReason::Deadline);
        }

        let n = advance(&mut subject, &mut buf).map_err(HarnessError::Iface)?;
        feed_reference(&subject, &mut reference, &mut fed, skew);

        let mut diverged: Option<String> = None;
        for s in &buf[..n] {
            ref_di.clear();
            reference.next_inst(&mut ref_di).map_err(HarnessError::Iface)?;
            ring.push(retired(seen, s));
            seen += 1;
            match compare_retired((&s.header, s.fault), (&ref_di.header, ref_di.fault)) {
                RetiredCmp::Agree => {}
                RetiredCmp::AgreedFault(_) => {
                    // Both sides trapped identically: count it and skip the
                    // faulting instruction on both, campaign-style.
                    faults += 1;
                    let fpc = s.header.pc;
                    if fpc == last_fault_pc {
                        streak += 1;
                    } else {
                        last_fault_pc = fpc;
                        streak = 1;
                    }
                    if faults >= cfg.max_faults || streak >= cfg.max_streak {
                        break 'run ChaosOutcomeLocal::Storm;
                    }
                    subject.redirect(fpc.wrapping_add(4));
                    reference.redirect(fpc.wrapping_add(4));
                    break; // a fault ends the interface unit
                }
                RetiredCmp::Diverge(cause) => {
                    diverged = Some(cause);
                    break;
                }
            }
        }

        units += 1;
        if diverged.is_none() && units.is_multiple_of(cfg.spot_stride) {
            diverged = spot_check(&subject, &reference, cfg.mem_delta_cap);
        }
        if let Some(cause) = diverged {
            divergences.push(format!("inst {seen}: {cause}"));
            if !cfg.demote {
                break ChaosOutcomeLocal::Diverged;
            }
            // Recovery: the subject's execution is no longer trusted, so
            // walk one rung down (when there is one) and resynchronize from
            // the reference — which is the architectural truth by the
            // single-specification premise. Events pending on the
            // reference's script belong to the discarded timeline.
            subject.demote_now(DemotionReason::SpotCheck);
            skew = subject.stats.insts.saturating_sub(reference.stats.insts);
            subject.adopt_state(&reference.state, &reference.os);
            if let Some(script) = reference.chaos_mut() {
                script.clear_pending();
            }
        }
    };

    let outcome = match outcome {
        ChaosOutcomeLocal::Halted => {
            SuperviseOutcome::Halted { exit_code: subject.state.exit_code }
        }
        ChaosOutcomeLocal::Budget => SuperviseOutcome::Budget,
        ChaosOutcomeLocal::Storm => SuperviseOutcome::Storm,
        ChaosOutcomeLocal::Deadline => SuperviseOutcome::Deadline,
        ChaosOutcomeLocal::Diverged => SuperviseOutcome::Diverged,
    };
    let verified = spot_check(&subject, &reference, cfg.mem_delta_cap).is_none();
    let events = subject.chaos().map(|c| c.events().to_vec()).unwrap_or_default();
    Ok(SuperviseReport {
        isa: spec.name,
        buildset: bs.name,
        backend,
        final_backend: subject.backend(),
        seed,
        outcome,
        insts: seen,
        faults,
        events,
        demotions: subject.demotion_events().to_vec(),
        divergences,
        verified,
        stats: subject.stats,
        ring: ring.to_vec(),
        final_state: subject.state.to_string(),
    })
}

/// Loop-local outcome tag, converted to [`SuperviseOutcome`] after the
/// subject is no longer borrowed (the exit-code read needs it).
enum ChaosOutcomeLocal {
    Halted,
    Budget,
    Storm,
    Deadline,
    Diverged,
}
