//! Semantic-agnostic advancement of a synthesized simulator.
//!
//! The harness drives every buildset through its *own* interface — one call
//! per block, per instruction, or per step — so lockstep comparison exercises
//! the exact entry points a timing simulator would use, not a privileged
//! debug path.

use lis_core::{DynInst, Semantic, Step};
use lis_runtime::{IfaceError, Simulator};

/// Advances `sim` by one interface unit — one basic block for
/// block-semantic interfaces, one instruction otherwise — and refills `buf`
/// with the published records (allocation reused across calls). Returns the
/// number of records; the last record carries the fault if one occurred.
pub(crate) fn advance(sim: &mut Simulator, buf: &mut Vec<DynInst>) -> Result<usize, IfaceError> {
    match sim.buildset().semantic {
        Semantic::One => {
            one_slot(buf);
            sim.next_inst(&mut buf[0])?;
            Ok(1)
        }
        Semantic::Step => {
            one_slot(buf);
            for step in Step::ALL {
                sim.step_inst(step, &mut buf[0])?;
                if buf[0].fault.is_some() {
                    break;
                }
            }
            Ok(1)
        }
        Semantic::Block => {
            let n = sim.next_block(buf)?;
            // A fetch fault at the block head reports zero executed
            // instructions but still publishes one fault record.
            if n == 0 {
                Ok(buf.len())
            } else {
                Ok(n)
            }
        }
    }
}

fn one_slot(buf: &mut Vec<DynInst>) {
    if buf.is_empty() {
        buf.push(DynInst::new());
    }
    buf.truncate(1);
    buf[0].clear();
}
