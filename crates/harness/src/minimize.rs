//! Delta-debugging for chaos plans.
//!
//! A procedural chaos campaign that finds a divergence typically logs dozens
//! of injection events, only one or two of which actually matter. Because
//! every event log replays deterministically ([`crate::supervised_replay`]
//! in scripted mode), the log itself is a reducible test case: [`minimize_plan`]
//! runs the classic ddmin complement-removal loop over the event list,
//! re-probing after each candidate removal, and returns the smallest event
//! subset that still reproduces the divergence. The result is what goes into
//! a `.chaosplan` regression file — a minimal, replayable repro instead of a
//! seed and a prayer.

use crate::lockstep::HarnessError;
use crate::supervise::{supervised_replay, SuperviseConfig, SuperviseOutcome};
use lis_core::{BuildsetDef, IsaSpec};
use lis_mem::Image;
use lis_runtime::{Backend, ChaosEvent};

/// Result of a successful minimization.
#[derive(Debug, Clone)]
pub struct MinimizeOutcome {
    /// Event count before minimization.
    pub initial: usize,
    /// The minimal event subset that still diverges (original order kept).
    pub minimal: Vec<ChaosEvent>,
    /// Replay probes spent (each one is a full supervised run).
    pub probes: u32,
}

/// Minimizes `events` to the smallest subset whose scripted replay still
/// diverges on `(bs, backend)`. Returns `None` when the full log does not
/// reproduce a divergence in the first place — nothing to minimize, and a
/// caller reporting success here would be lying about the repro.
///
/// Probes run with demotion off (a recovered divergence still counts as
/// found, but [`SuperviseOutcome::Diverged`] is the unambiguous signal) and
/// no deadline — minimization must be deterministic.
///
/// # Errors
///
/// Propagates construction/load/interface errors from the probe runs.
pub fn minimize_plan(
    spec: &'static IsaSpec,
    image: &Image,
    bs: BuildsetDef,
    backend: Backend,
    seed: u64,
    events: &[ChaosEvent],
    cfg: &SuperviseConfig,
) -> Result<Option<MinimizeOutcome>, HarnessError> {
    let probe_cfg = SuperviseConfig { demote: false, deadline: None, ..*cfg };
    let mut probes = 0u32;
    let mut diverges = |candidate: &[ChaosEvent]| -> Result<bool, HarnessError> {
        probes += 1;
        let report = supervised_replay(spec, image, bs, backend, seed, candidate, &probe_cfg)?;
        Ok(report.outcome == SuperviseOutcome::Diverged)
    };

    if !diverges(events)? {
        return Ok(None);
    }

    // ddmin, complement-removal form: split into n chunks, try dropping each
    // chunk; keep any complement that still fails, else refine granularity.
    let mut current: Vec<ChaosEvent> = events.to_vec();
    let mut n = 2usize;
    while current.len() >= 2 {
        let chunk = current.len().div_ceil(n);
        let mut reduced = false;
        let mut start = 0usize;
        while start < current.len() {
            let end = (start + chunk).min(current.len());
            let mut complement = Vec::with_capacity(current.len() - (end - start));
            complement.extend_from_slice(&current[..start]);
            complement.extend_from_slice(&current[end..]);
            if !complement.is_empty() && diverges(&complement)? {
                current = complement;
                n = n.saturating_sub(1).max(2);
                reduced = true;
                break;
            }
            start = end;
        }
        if !reduced {
            if n >= current.len() {
                break; // single-event granularity exhausted: 1-minimal
            }
            n = (n * 2).min(current.len());
        }
    }

    Ok(Some(MinimizeOutcome { initial: events.len(), minimal: current, probes }))
}
