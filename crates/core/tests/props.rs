//! Property tests on the core ADL data structures.

use lis_core::{
    check_interface, BuildsetDef, DynInst, FieldId, FieldSet, Frame, InstHeader, Operands,
    RegClass, Semantic, Visibility, MAX_FIELDS, STANDARD_BUILDSETS,
};
use proptest::prelude::*;

fn field_id() -> impl Strategy<Value = FieldId> {
    (0u8..MAX_FIELDS as u8).prop_map(FieldId)
}

fn field_set() -> impl Strategy<Value = FieldSet> {
    any::<u64>().prop_map(|bits| FieldSet(bits & FieldSet::ALL.0))
}

proptest! {
    /// FieldSet is a faithful bit-set.
    #[test]
    fn field_set_algebra(a in field_set(), b in field_set(), f in field_id()) {
        prop_assert_eq!(a.union(b).0, a.0 | b.0);
        prop_assert!(a.with(f).contains(f));
        prop_assert!(!a.without(f).contains(f));
        prop_assert_eq!(a.with(f).without(f).0, a.0 & !f.bit());
        prop_assert_eq!(a.iter().count() as u32, a.len());
        let rebuilt: FieldSet = a.iter().collect();
        prop_assert_eq!(rebuilt, a);
    }

    /// Frame get/set/clear behave like a validity-masked array.
    #[test]
    fn frame_semantics(writes in proptest::collection::vec((field_id(), any::<u64>()), 0..40)) {
        let mut frame = Frame::new();
        let mut model = std::collections::HashMap::new();
        for (f, v) in &writes {
            frame.set(*f, *v);
            model.insert(f.0, *v);
        }
        for i in 0..MAX_FIELDS as u8 {
            let f = FieldId(i);
            match model.get(&i) {
                Some(&v) => {
                    prop_assert!(frame.has(f));
                    prop_assert_eq!(frame.get(f), v);
                    prop_assert_eq!(frame.try_get(f), Some(v));
                }
                None => {
                    prop_assert!(!frame.has(f));
                    prop_assert_eq!(frame.try_get(f), None);
                }
            }
        }
        let expected: FieldSet = model.keys().map(|&i| FieldId(i)).collect();
        prop_assert_eq!(frame.valid(), expected);
        frame.clear();
        prop_assert!(frame.valid().is_empty());
    }

    /// publish∘reload is the identity on the visible subset.
    #[test]
    fn publish_reload_round_trip(
        writes in proptest::collection::vec((field_id(), any::<u64>()), 0..30),
        visible in field_set(),
        nsrc in 0usize..=3,
        ndest in 0usize..=2,
    ) {
        let mut frame = Frame::new();
        for (f, v) in &writes {
            frame.set(*f, *v);
        }
        let mut ops = Operands::new();
        for i in 0..nsrc {
            ops.push_src(RegClass(0), i as u16);
        }
        for i in 0..ndest {
            ops.push_dest(RegClass(1), i as u16);
        }
        let mut di = DynInst::new();
        di.header = InstHeader { pc: 4, phys_pc: 4, instr_bits: 9, next_pc: 8 };
        di.publish(&frame, visible, &ops, true);

        let mut frame2 = Frame::new();
        let mut ops2 = Operands::new();
        di.reload(&mut frame2, &mut ops2);
        // Reloaded = original masked by visibility.
        prop_assert_eq!(frame2.valid().0, frame.valid().0 & visible.0);
        for f in frame2.valid().iter() {
            prop_assert_eq!(frame2.get(f), frame.get(f));
        }
        prop_assert_eq!(ops2.srcs(), ops.srcs());
        prop_assert_eq!(ops2.dests(), ops.dests());
        // Publishing the reloaded state again is a fixpoint.
        let mut di2 = DynInst::new();
        di2.publish(&frame2, visible, &ops2, true);
        prop_assert_eq!(di2.fields_valid(), di.fields_valid());
    }

    /// The lint is monotone: widening a valid interface's visibility keeps
    /// it valid, on every shipped ISA.
    #[test]
    fn lint_is_monotone_in_visibility(extra in field_set(), idx in 0usize..12) {
        let base: BuildsetDef = STANDARD_BUILDSETS[idx];
        for isa in [lis_isa_alpha::spec(), lis_isa_arm::spec(), lis_isa_ppc::spec()] {
            prop_assert!(check_interface(isa, &base).is_ok());
            let widened = BuildsetDef {
                name: "widened",
                semantic: base.semantic,
                visibility: Visibility {
                    fields: base.visibility.fields.union(extra),
                    operand_ids: true,
                },
                speculation: base.speculation,
            };
            prop_assert!(check_interface(isa, &widened).is_ok(), "{}", base.name);
        }
    }
}

/// Exhaustive check of the paper's pairing rule on all three real ISAs:
/// one-call and block-call interfaces accept any visibility; step-level
/// interfaces require full information.
#[test]
fn pairing_rule_matrix() {
    for isa in [lis_isa_alpha::spec(), lis_isa_arm::spec(), lis_isa_ppc::spec()] {
        for semantic in [Semantic::Block, Semantic::One, Semantic::Step] {
            for (vis, info) in
                [(Visibility::MIN, "min"), (Visibility::DECODE, "decode"), (Visibility::ALL, "all")]
            {
                let bs = BuildsetDef { name: "m", semantic, visibility: vis, speculation: false };
                let ok = check_interface(isa, &bs).is_ok();
                let expected = semantic != Semantic::Step || info == "all";
                assert_eq!(ok, expected, "{}: {semantic}/{info}", isa.name);
            }
        }
    }
}
