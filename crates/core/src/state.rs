//! Architectural state shared by every ISA description.

use lis_mem::{Endian, Mem};
use std::fmt;

/// Number of general-purpose register slots (largest of the three ISAs).
pub const NUM_GPR: usize = 32;
/// Number of special-purpose register slots (flags, CR, LR, CTR, XER, ...).
pub const NUM_SPR: usize = 8;

/// The architecturally visible state of a simulated processor.
///
/// A flat register file plus memory; per-ISA register classes map onto these
/// arrays through their accessors. Keeping the layout uniform lets the
/// engine, the undo log, and the timing simulators stay ISA-agnostic.
#[derive(Debug, Clone)]
pub struct ArchState {
    /// Program counter.
    pub pc: u64,
    /// General-purpose registers.
    pub gpr: [u64; NUM_GPR],
    /// Special-purpose registers (ISA-defined meaning).
    pub spr: [u64; NUM_SPR],
    /// Memory.
    pub mem: Mem,
    /// Byte order of all data accesses.
    pub endian: Endian,
    /// Set when the program has exited via the OS emulator.
    pub halted: bool,
    /// Exit code once halted.
    pub exit_code: i64,
}

impl ArchState {
    /// Creates a state with zeroed registers and empty memory.
    pub fn new(endian: Endian) -> ArchState {
        ArchState {
            pc: 0,
            gpr: [0; NUM_GPR],
            spr: [0; NUM_SPR],
            mem: Mem::new(),
            endian,
            halted: false,
            exit_code: 0,
        }
    }

    /// Compares the architecturally visible registers of two states.
    ///
    /// Used by the cross-interface validation suites: after running the same
    /// program through two different interfaces, register state must match.
    pub fn regs_eq(&self, other: &ArchState) -> bool {
        self.pc == other.pc
            && self.gpr == other.gpr
            && self.spr == other.spr
            && self.halted == other.halted
            && self.exit_code == other.exit_code
    }

    /// Returns the first register difference between two states, for
    /// diagnostics in validation failures.
    pub fn first_diff(&self, other: &ArchState) -> Option<String> {
        if self.pc != other.pc {
            return Some(format!("pc: {:#x} vs {:#x}", self.pc, other.pc));
        }
        for i in 0..NUM_GPR {
            if self.gpr[i] != other.gpr[i] {
                return Some(format!("gpr[{i}]: {:#x} vs {:#x}", self.gpr[i], other.gpr[i]));
            }
        }
        for i in 0..NUM_SPR {
            if self.spr[i] != other.spr[i] {
                return Some(format!("spr[{i}]: {:#x} vs {:#x}", self.spr[i], other.spr[i]));
            }
        }
        if self.halted != other.halted {
            return Some(format!("halted: {} vs {}", self.halted, other.halted));
        }
        if self.exit_code != other.exit_code {
            return Some(format!("exit: {} vs {}", self.exit_code, other.exit_code));
        }
        None
    }
}

impl fmt::Display for ArchState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "pc={:#018x} halted={} exit={}", self.pc, self.halted, self.exit_code)?;
        for (i, v) in self.gpr.iter().enumerate() {
            if *v != 0 {
                writeln!(f, "  r{i:<2} = {v:#018x}")?;
            }
        }
        for (i, v) in self.spr.iter().enumerate() {
            if *v != 0 {
                writeln!(f, "  spr{i} = {v:#018x}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regs_eq_and_first_diff() {
        let a = ArchState::new(Endian::Little);
        let mut b = a.clone();
        assert!(a.regs_eq(&b));
        assert_eq!(a.first_diff(&b), None);
        b.gpr[5] = 1;
        assert!(!a.regs_eq(&b));
        assert!(a.first_diff(&b).unwrap().contains("gpr[5]"));
        b.gpr[5] = 0;
        b.pc = 4;
        assert!(a.first_diff(&b).unwrap().contains("pc"));
    }

    #[test]
    fn display_mentions_nonzero_regs() {
        let mut s = ArchState::new(Endian::Big);
        s.gpr[3] = 0xabc;
        let txt = s.to_string();
        assert!(txt.contains("r3"));
        assert!(!txt.contains("r4 "));
    }
}
