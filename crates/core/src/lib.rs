//! # lis-core — the single-specification ADL core
//!
//! This crate is the heart of the LIS toolkit, a reproduction of the ISPASS
//! 2011 paper *"A Single-Specification Principle for Functional-to-Timing
//! Simulator Interface Design"*. It defines the architecture-description
//! model in which an instruction set is specified **exactly once**, at the
//! highest level of semantic and informational detail, and from which every
//! lower-detail functional-to-timing interface is derived:
//!
//! * [`InstDef`] — one instruction's encoding, operands, per-step semantic
//!   [`ActionFn`]s, and inter-step dataflow (the single specification);
//! * [`FieldId`]/[`Frame`] — named intermediate values (the paper's
//!   `field` construct) and the working frame they live in;
//! * [`Operands`]/[`RegClassDef`] — decoded operand identifiers and the
//!   accessors that route them to architectural state;
//! * [`BuildsetDef`] — a derived interface: semantic detail × visibility ×
//!   speculation (the paper's `buildset` construct), definable in a dozen
//!   lines with [`buildset!`];
//! * [`check_interface`] — a static dataflow lint that catches the paper's
//!   "typical interface specification error" (hiding a value that must cross
//!   an interface-call boundary) before a single instruction is simulated;
//! * [`DynInst`] — the published dynamic-instruction record the timing
//!   simulator consumes;
//! * [`UndoLog`] — rollback support for speculative interfaces.
//!
//! The execution engines that *synthesize* simulators from these
//! descriptions live in `lis-runtime`; the ISA descriptions themselves live
//! in `lis-isa-alpha`, `lis-isa-arm`, and `lis-isa-ppc`.
//!
//! ## Example: deriving a new interface
//!
//! ```
//! use lis_core::{buildset, BuildsetDef, Visibility, FieldSet, F_EFF_ADDR};
//!
//! buildset! {
//!     /// A trace interface: block calls, effective addresses only.
//!     pub const ADDR_TRACE: BuildsetDef = {
//!         name: "addr-trace",
//!         semantic: Block,
//!         visibility: Visibility::MIN.plus(FieldSet::of(&[F_EFF_ADDR])),
//!         speculation: false,
//!     };
//! }
//! assert_eq!(ADDR_TRACE.describe(), "block/custom/nospec");
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod buildset;
mod dyninst;
mod exec;
mod fault;
mod field;
mod frame;
mod inst;
mod isa;
mod json;
mod lint;
mod operand;
mod os;
mod state;
mod stats;
mod step;
mod undo;

pub use buildset::{
    find_buildset, BuildsetDef, InfoLevel, Semantic, Visibility, BLOCK_ALL, BLOCK_ALL_SPEC,
    BLOCK_DECODE, BLOCK_DECODE_SPEC, BLOCK_MIN, ONE_ALL, ONE_ALL_SPEC, ONE_DECODE, ONE_DECODE_SPEC,
    ONE_MIN, STANDARD_BUILDSETS, STEP_ALL, STEP_ALL_SPEC,
};
pub use dyninst::DynInst;
pub use exec::{
    generic_operand_fetch, generic_writeback, Exec, InstHeader, DEST_FIELDS, SRC_FIELDS,
};
pub use fault::Fault;
pub use field::{
    FieldDesc, FieldId, FieldSet, COMMON_FIELDS, DECODE_FIELDS, FIRST_ISA_FIELD, F_ALU_OUT,
    F_BR_TAKEN, F_BR_TARGET, F_COND, F_DEST1, F_DEST2, F_EFF_ADDR, F_IMM, F_MEM_DATA, F_OPCODE,
    F_SRC1, F_SRC2, F_SRC3, MAX_FIELDS,
};
pub use frame::Frame;
pub use inst::{flow, ActionFn, Flow, FlowItem, InstClass, InstDef, StepActions};
pub use isa::IsaSpec;
pub use json::{write_json_str, JsonObj};
pub use lint::{check_interface, render_report, LintDiag};
pub use operand::{
    OperandDir, OperandRef, OperandSpec, Operands, RegBacking, RegClass, RegClassDef, MAX_DEST,
    MAX_SRC,
};
pub use os::{decode_syscall, nr, OsMark, OsState, SysCall};
pub use state::{ArchState, NUM_GPR, NUM_SPR};
pub use stats::{count_lines, count_macro_blocks, LineStats, SpecStats};
pub use step::Step;
pub use undo::{UndoLog, UndoMark, UndoRec};
