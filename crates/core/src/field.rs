//! Fields: the named intermediate values of the single specification.
//!
//! A *field* (the paper's `field` construct) is one named intermediate value
//! an instruction may compute — an operand value, an effective address, a
//! branch target, the ARM shifter output, and so on. The set of fields a
//! buildset makes *visible* defines the informational detail of its
//! interface: visible fields are published into the [`DynInst`] record at
//! every interface-call boundary, hidden fields live only in the working
//! [`Frame`] and cost nothing.
//!
//! [`DynInst`]: crate::DynInst
//! [`Frame`]: crate::Frame

use std::fmt;

/// Maximum number of fields an ISA description may declare.
///
/// Chosen so a [`FieldSet`] fits in one `u64`; all three shipped ISA
/// descriptions use fewer than half of the available slots.
pub const MAX_FIELDS: usize = 32;

/// Identifier of one field. Indices `0..16` are common to every ISA;
/// `16..MAX_FIELDS` are reserved for ISA-specific fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FieldId(pub u8);

impl FieldId {
    /// Bit of this field within a [`FieldSet`].
    #[inline]
    pub const fn bit(self) -> u64 {
        1u64 << self.0
    }

    /// Index usable for frame/record arrays.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for FieldId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// First source operand value.
pub const F_SRC1: FieldId = FieldId(0);
/// Second source operand value.
pub const F_SRC2: FieldId = FieldId(1);
/// Third source operand value (store data, ARM offset registers, ...).
pub const F_SRC3: FieldId = FieldId(2);
/// First destination operand value.
pub const F_DEST1: FieldId = FieldId(3);
/// Second destination operand value (base-register update, link, ...).
pub const F_DEST2: FieldId = FieldId(4);
/// ALU/functional-unit output before writeback routing.
pub const F_ALU_OUT: FieldId = FieldId(5);
/// Effective address of a load or store.
pub const F_EFF_ADDR: FieldId = FieldId(6);
/// Data value moved by a load or store.
pub const F_MEM_DATA: FieldId = FieldId(7);
/// Decoded immediate operand.
pub const F_IMM: FieldId = FieldId(8);
/// Index of the decoded instruction within the ISA description.
pub const F_OPCODE: FieldId = FieldId(9);
/// Branch resolution: 1 if taken.
pub const F_BR_TAKEN: FieldId = FieldId(10);
/// Calculated branch/jump target.
pub const F_BR_TARGET: FieldId = FieldId(11);
/// Evaluated condition/predicate (ARM condition codes, PPC CR bit, ...).
pub const F_COND: FieldId = FieldId(12);
/// First ISA-specific field index.
pub const FIRST_ISA_FIELD: u8 = 16;

/// Descriptor of one field for documentation, stats, and lint diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FieldDesc {
    /// The field's identifier.
    pub id: FieldId,
    /// Specification-level name.
    pub name: &'static str,
    /// What the field holds.
    pub doc: &'static str,
}

/// Descriptors for the fields common to every ISA description.
pub const COMMON_FIELDS: &[FieldDesc] = &[
    FieldDesc { id: F_SRC1, name: "src1", doc: "first source operand value" },
    FieldDesc { id: F_SRC2, name: "src2", doc: "second source operand value" },
    FieldDesc { id: F_SRC3, name: "src3", doc: "third source operand value" },
    FieldDesc { id: F_DEST1, name: "dest1", doc: "first destination operand value" },
    FieldDesc { id: F_DEST2, name: "dest2", doc: "second destination operand value" },
    FieldDesc { id: F_ALU_OUT, name: "alu_out", doc: "functional-unit output" },
    FieldDesc { id: F_EFF_ADDR, name: "eff_addr", doc: "effective address" },
    FieldDesc { id: F_MEM_DATA, name: "mem_data", doc: "memory data value" },
    FieldDesc { id: F_IMM, name: "imm", doc: "decoded immediate" },
    FieldDesc { id: F_OPCODE, name: "opcode", doc: "decoded opcode index" },
    FieldDesc { id: F_BR_TAKEN, name: "br_taken", doc: "branch resolution" },
    FieldDesc { id: F_BR_TARGET, name: "br_target", doc: "branch target" },
    FieldDesc { id: F_COND, name: "cond", doc: "evaluated predicate" },
];

/// A set of fields, used for visibility masks and def/use bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct FieldSet(pub u64);

impl FieldSet {
    /// The empty set.
    pub const EMPTY: FieldSet = FieldSet(0);
    /// Every representable field.
    pub const ALL: FieldSet = FieldSet(u64::MAX >> (64 - MAX_FIELDS as u32));

    /// Builds a set from individual fields.
    pub const fn of(fields: &[FieldId]) -> FieldSet {
        let mut bits = 0u64;
        let mut i = 0;
        while i < fields.len() {
            bits |= fields[i].bit();
            i += 1;
        }
        FieldSet(bits)
    }

    /// Whether `field` is in the set.
    #[inline]
    pub const fn contains(self, field: FieldId) -> bool {
        self.0 & field.bit() != 0
    }

    /// Union of two sets.
    #[inline]
    pub const fn union(self, other: FieldSet) -> FieldSet {
        FieldSet(self.0 | other.0)
    }

    /// Set with `field` added.
    #[inline]
    pub const fn with(self, field: FieldId) -> FieldSet {
        FieldSet(self.0 | field.bit())
    }

    /// Set with `field` removed.
    #[inline]
    pub const fn without(self, field: FieldId) -> FieldSet {
        FieldSet(self.0 & !field.bit())
    }

    /// Whether the set is empty.
    #[inline]
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of fields in the set.
    #[inline]
    pub const fn len(self) -> u32 {
        self.0.count_ones()
    }

    /// Iterates over the fields in the set, in increasing index order.
    pub fn iter(self) -> impl Iterator<Item = FieldId> {
        let mut bits = self.0;
        std::iter::from_fn(move || {
            if bits == 0 {
                None
            } else {
                let i = bits.trailing_zeros() as u8;
                bits &= bits - 1;
                Some(FieldId(i))
            }
        })
    }
}

impl FromIterator<FieldId> for FieldSet {
    fn from_iter<T: IntoIterator<Item = FieldId>>(iter: T) -> Self {
        iter.into_iter().fold(FieldSet::EMPTY, FieldSet::with)
    }
}

impl fmt::Display for FieldSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (n, id) in self.iter().enumerate() {
            if n > 0 {
                write!(f, ",")?;
            }
            match COMMON_FIELDS.iter().find(|d| d.id == id) {
                Some(d) => write!(f, "{}", d.name)?,
                None => write!(f, "{id}")?,
            }
        }
        write!(f, "}}")
    }
}

/// The fields exposed by the `Decode` informational level: decode information
/// plus effective addresses and branch resolution, but no operand values —
/// "appropriate for many functional-first simulators" per the paper.
pub const DECODE_FIELDS: FieldSet =
    FieldSet::of(&[F_OPCODE, F_IMM, F_EFF_ADDR, F_BR_TAKEN, F_BR_TARGET, F_COND]);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_ops() {
        let s = FieldSet::of(&[F_SRC1, F_EFF_ADDR]);
        assert!(s.contains(F_SRC1));
        assert!(!s.contains(F_SRC2));
        assert_eq!(s.len(), 2);
        assert_eq!(s.with(F_SRC2).len(), 3);
        assert_eq!(s.without(F_SRC1).len(), 1);
        assert!(FieldSet::EMPTY.is_empty());
        assert_eq!(s.union(FieldSet::of(&[F_SRC2])).len(), 3);
    }

    #[test]
    fn iter_in_order() {
        let s = FieldSet::of(&[F_BR_TARGET, F_SRC1, F_IMM]);
        let v: Vec<_> = s.iter().collect();
        assert_eq!(v, vec![F_SRC1, F_IMM, F_BR_TARGET]);
    }

    #[test]
    fn all_covers_max_fields() {
        assert_eq!(FieldSet::ALL.len() as usize, MAX_FIELDS);
        assert!(FieldSet::ALL.contains(FieldId(MAX_FIELDS as u8 - 1)));
    }

    #[test]
    fn display_names_common_fields() {
        let s = FieldSet::of(&[F_EFF_ADDR, FieldId(20)]);
        let txt = s.to_string();
        assert!(txt.contains("eff_addr"));
        assert!(txt.contains("f20"));
    }

    #[test]
    fn collect_from_iterator() {
        let s: FieldSet = [F_SRC1, F_SRC2].into_iter().collect();
        assert_eq!(s, FieldSet::of(&[F_SRC1, F_SRC2]));
    }

    #[test]
    fn common_field_ids_match_positions() {
        for d in COMMON_FIELDS {
            assert!(d.id.0 < FIRST_ISA_FIELD, "{} is not a common slot", d.name);
        }
    }
}
