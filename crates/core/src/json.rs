//! A minimal JSON writer.
//!
//! The CLI's `--stats-json` output and the bench tooling need
//! machine-readable stats without pulling a serialization dependency into
//! the workspace. [`JsonObj`] emits one flat object with string, integer,
//! boolean, and float members — which is all a `SimStats`/`TimingReport`
//! dump needs — with correct string escaping.

use std::fmt::Write as _;

/// Escapes `s` per RFC 8259 and appends it, quoted, to `out`.
pub fn write_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// An incremental writer for one flat JSON object.
#[derive(Debug, Default)]
pub struct JsonObj {
    buf: String,
    n: usize,
}

impl JsonObj {
    /// Starts an empty object.
    pub fn new() -> JsonObj {
        JsonObj { buf: String::from("{"), n: 0 }
    }

    fn key(&mut self, k: &str) {
        if self.n > 0 {
            self.buf.push(',');
        }
        self.n += 1;
        write_json_str(&mut self.buf, k);
        self.buf.push(':');
    }

    /// Adds a string member.
    pub fn str(&mut self, k: &str, v: &str) -> &mut Self {
        self.key(k);
        write_json_str(&mut self.buf, v);
        self
    }

    /// Adds an unsigned integer member.
    pub fn u64(&mut self, k: &str, v: u64) -> &mut Self {
        self.key(k);
        let _ = write!(self.buf, "{v}");
        self
    }

    /// Adds a signed integer member.
    pub fn i64(&mut self, k: &str, v: i64) -> &mut Self {
        self.key(k);
        let _ = write!(self.buf, "{v}");
        self
    }

    /// Adds a boolean member.
    pub fn bool(&mut self, k: &str, v: bool) -> &mut Self {
        self.key(k);
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    /// Adds a float member (fixed precision, always finite-formatted).
    pub fn f64(&mut self, k: &str, v: f64) -> &mut Self {
        self.key(k);
        if v.is_finite() {
            let _ = write!(self.buf, "{v:.6}");
        } else {
            self.buf.push_str("null");
        }
        self
    }

    /// Adds a pre-rendered JSON value verbatim (e.g. a nested object).
    pub fn raw(&mut self, k: &str, v: &str) -> &mut Self {
        self.key(k);
        self.buf.push_str(v);
        self
    }

    /// Closes the object and returns the JSON text.
    pub fn finish(&self) -> String {
        let mut s = self.buf.clone();
        s.push('}');
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_and_joins() {
        let mut o = JsonObj::new();
        o.str("name", "a\"b\\c\nd").u64("count", 7).i64("code", -1).bool("ok", true);
        o.f64("rate", 0.5).raw("inner", "{\"x\":1}");
        assert_eq!(
            o.finish(),
            "{\"name\":\"a\\\"b\\\\c\\nd\",\"count\":7,\"code\":-1,\"ok\":true,\
             \"rate\":0.500000,\"inner\":{\"x\":1}}"
        );
    }

    #[test]
    fn control_chars_escaped() {
        let mut s = String::new();
        write_json_str(&mut s, "\u{1}\t");
        assert_eq!(s, "\"\\u0001\\t\"");
    }

    #[test]
    fn empty_object() {
        assert_eq!(JsonObj::new().finish(), "{}");
    }
}
