//! The execution context semantic actions run against.
//!
//! [`Exec`] bundles everything one step of one dynamic instruction may touch:
//! the working field [`Frame`], the decoded operand identifiers, the
//! instruction header, architectural state, the OS emulator, and (when the
//! active buildset enables speculation) the undo log. All architectural
//! writes go through `Exec` helpers so undo capture is uniform and
//! specification code stays oblivious to the active interface.

use crate::fault::Fault;
use crate::field::{FieldId, F_BR_TAKEN, F_BR_TARGET, F_DEST1, F_DEST2, F_SRC1, F_SRC2, F_SRC3};
use crate::frame::Frame;
use crate::isa::IsaSpec;
use crate::operand::{Operands, MAX_DEST, MAX_SRC};
use crate::os::{decode_syscall, OsState};
use crate::state::ArchState;
use crate::undo::{UndoLog, UndoRec};
use lis_mem::{AccessKind, ChaosState, MemFault};

/// Per-instruction header values: the minimal informational detail every
/// interface publishes (the paper's `Min` level).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InstHeader {
    /// Architectural PC of the instruction.
    pub pc: u64,
    /// Translated (physical) PC.
    pub phys_pc: u64,
    /// Raw instruction word.
    pub instr_bits: u32,
    /// PC of the next instruction (branch targets included).
    pub next_pc: u64,
}

/// The execution context passed to every semantic action.
#[allow(missing_debug_implementations)]
pub struct Exec<'a> {
    /// The ISA being simulated.
    pub isa: &'static IsaSpec,
    /// Working field values for the current instruction.
    pub frame: &'a mut Frame,
    /// Decoded operand identifiers for the current instruction.
    pub ops: &'a mut Operands,
    /// Instruction header (PC, bits, next PC).
    pub header: &'a mut InstHeader,
    /// Index of the decoded instruction in `isa.insts`.
    pub opcode: u16,
    /// Architectural state.
    pub state: &'a mut ArchState,
    /// OS emulation state.
    pub os: &'a mut OsState,
    /// Undo log, present only when the buildset enables speculation.
    pub undo: Option<&'a mut UndoLog>,
    /// Fault-injection state, present only while a chaos campaign runs.
    /// Data accesses consult it before touching memory, so an injected
    /// transient fault suppresses the access entirely.
    pub chaos: Option<&'a mut ChaosState>,
}

/// Frame fields that carry source operand values, by operand position.
pub const SRC_FIELDS: [FieldId; MAX_SRC] = [F_SRC1, F_SRC2, F_SRC3];
/// Frame fields that carry destination operand values, by operand position.
pub const DEST_FIELDS: [FieldId; MAX_DEST] = [F_DEST1, F_DEST2];

impl<'a> Exec<'a> {
    /// Writes a field in the working frame.
    #[inline]
    pub fn set(&mut self, field: FieldId, val: u64) {
        self.frame.set(field, val);
    }

    /// Reads a field from the working frame (0 if never written).
    #[inline]
    pub fn get(&self, field: FieldId) -> u64 {
        self.frame.get(field)
    }

    /// Whether a field has been written.
    #[inline]
    pub fn has(&self, field: FieldId) -> bool {
        self.frame.has(field)
    }

    /// Reads register `idx` of register class `class` through its accessor.
    ///
    /// # Panics
    ///
    /// Panics if `class` is not declared by the ISA — a specification bug.
    #[inline]
    pub fn read_reg(&self, class: u8, idx: u16) -> u64 {
        (self.isa.reg_classes[class as usize].read)(self.state, idx)
    }

    /// Writes register `idx` of class `class` through its accessor,
    /// capturing an undo record when speculation is enabled.
    ///
    /// # Panics
    ///
    /// Panics if `class` is not declared by the ISA — a specification bug.
    #[inline]
    pub fn write_reg(&mut self, class: u8, idx: u16, val: u64) {
        let def = &self.isa.reg_classes[class as usize];
        if let Some(undo) = self.undo.as_deref_mut() {
            // Rollback restores the old value through the same accessor, so
            // every register class is undoable without special cases.
            let old = (def.read)(self.state, idx);
            undo.push(UndoRec::Reg { write: def.write, idx, old });
        }
        (def.write)(self.state, idx, val);
    }

    /// Loads `size` bytes (1, 2, 4, or 8) from `addr`, zero- or
    /// sign-extending to 64 bits.
    ///
    /// # Errors
    ///
    /// Returns [`Fault::DataAccess`] or [`Fault::Unaligned`].
    #[inline]
    pub fn load(&mut self, addr: u64, size: u8, signed: bool) -> Result<u64, Fault> {
        if let Some(chaos) = self.chaos.as_deref_mut() {
            if let Some(f) = chaos.maybe_fault_data(addr, AccessKind::Load) {
                return Err(f.into());
            }
        }
        let e = self.state.endian;
        let raw = match size {
            1 => self.state.mem.read_u8(addr)? as u64,
            2 => self.state.mem.read_u16(addr, e)? as u64,
            4 => self.state.mem.read_u32(addr, e)? as u64,
            8 => self.state.mem.read_u64(addr, e)?,
            _ => unreachable!("load width {size}"),
        };
        Ok(if signed {
            let shift = 64 - (size as u32) * 8;
            ((raw << shift) as i64 >> shift) as u64
        } else {
            raw
        })
    }

    /// Stores the low `size` bytes of `val` to `addr`, capturing an undo
    /// record when speculation is enabled.
    ///
    /// # Errors
    ///
    /// Returns [`Fault::DataAccess`] or [`Fault::Unaligned`].
    #[inline]
    pub fn store(&mut self, addr: u64, size: u8, val: u64) -> Result<(), Fault> {
        if let Some(chaos) = self.chaos.as_deref_mut() {
            if let Some(f) = chaos.maybe_fault_data(addr, AccessKind::Store) {
                return Err(f.into());
            }
        }
        let e = self.state.endian;
        if self.undo.is_some() {
            let old = match size {
                1 => self.state.mem.read_u8(addr).map(u64::from),
                2 => self.state.mem.read_u16(addr, e).map(u64::from),
                4 => self.state.mem.read_u32(addr, e).map(u64::from),
                8 => self.state.mem.read_u64(addr, e),
                _ => unreachable!("store width {size}"),
            }
            .map_err(retag_store)?;
            if let Some(undo) = self.undo.as_deref_mut() {
                undo.push(UndoRec::Mem { addr, old, len: size });
            }
        }
        match size {
            1 => self.state.mem.write_u8(addr, val as u8)?,
            2 => self.state.mem.write_u16(addr, val as u16, e)?,
            4 => self.state.mem.write_u32(addr, val as u32, e)?,
            8 => self.state.mem.write_u64(addr, val, e)?,
            _ => unreachable!("store width {size}"),
        }
        Ok(())
    }

    /// Resolves a taken branch: records the resolution fields and redirects
    /// the next PC.
    #[inline]
    pub fn take_branch(&mut self, target: u64) {
        let t = target & self.isa.pc_mask;
        self.frame.set(F_BR_TAKEN, 1);
        self.frame.set(F_BR_TARGET, t);
        self.header.next_pc = t;
    }

    /// Records a not-taken branch resolution.
    #[inline]
    pub fn branch_not_taken(&mut self) {
        self.frame.set(F_BR_TAKEN, 0);
    }

    /// Emulates a system call given the guest's `(number, arg0, arg1)`.
    /// Returns the value for the guest's return register.
    ///
    /// # Errors
    ///
    /// Returns [`Fault::SyscallError`] for unknown numbers and memory faults
    /// for bad buffer addresses.
    pub fn syscall(&mut self, num: u64, arg0: u64, arg1: u64) -> Result<u64, Fault> {
        let call = decode_syscall(num, arg0, arg1)?;
        self.os.dispatch(call, self.state)
    }
}

#[inline]
fn retag_store(f: MemFault) -> Fault {
    // Old-value capture reads with Load kind; the architectural fault
    // belongs to the store that is about to happen.
    match f {
        MemFault::Unaligned { addr, .. } => Fault::Unaligned { addr },
        MemFault::OutOfRange { addr, .. } => Fault::DataAccess { addr },
    }
}

/// Generic operand-fetch action: reads every declared source operand through
/// its accessor into `src1..src3`. Most instructions use this directly —
/// single specification in action.
///
/// # Errors
///
/// Never fails; the signature matches [`ActionFn`](crate::ActionFn).
pub fn generic_operand_fetch(ex: &mut Exec<'_>) -> Result<(), Fault> {
    let ops = *ex.ops;
    for (i, r) in ops.srcs().iter().enumerate() {
        let v = ex.read_reg(r.class, r.index);
        ex.frame.set(SRC_FIELDS[i], v);
    }
    Ok(())
}

/// Generic writeback action: writes every destination operand whose value
/// field was produced. Conditional instructions simply skip producing the
/// field, and no write happens.
///
/// # Errors
///
/// Never fails; the signature matches [`ActionFn`](crate::ActionFn).
pub fn generic_writeback(ex: &mut Exec<'_>) -> Result<(), Fault> {
    let ops = *ex.ops;
    for (i, r) in ops.dests().iter().enumerate() {
        if let Some(v) = ex.frame.try_get(DEST_FIELDS[i]) {
            ex.write_reg(r.class, r.index, v);
        }
    }
    Ok(())
}
