//! The published dynamic-instruction record.
//!
//! [`DynInst`] is the data structure the timing simulator sees (the paper's
//! `dynamic_instr` in Figure 2). Which of its slots are filled depends
//! entirely on the active buildset's visibility: hidden fields are never
//! copied out of the working frame, so low-informational-detail interfaces
//! pay for exactly what they expose.

use crate::exec::InstHeader;
use crate::fault::Fault;
use crate::field::{FieldId, FieldSet, MAX_FIELDS};
use crate::frame::Frame;
use crate::operand::Operands;

/// Information about one executed dynamic instruction, as exposed through
/// the functional-to-timing interface.
///
/// The header (PC, raw bits, next PC) and fault slot are always published —
/// they are the paper's `Min` informational level, the minimum needed to
/// control the simulator. Everything else is masked by the buildset.
#[derive(Debug, Clone, Copy)]
pub struct DynInst {
    /// Always-published header.
    pub header: InstHeader,
    /// Fault raised by this instruction, if any.
    pub fault: Option<Fault>,
    /// Published field values (only slots in `fields_valid` are meaningful).
    fields: [u64; MAX_FIELDS],
    /// Which fields were published.
    fields_valid: FieldSet,
    /// Decoded operand identifiers, when the interface exposes them.
    ops: Operands,
    /// Whether `ops` was published.
    ops_valid: bool,
}

impl Default for DynInst {
    fn default() -> Self {
        Self::new()
    }
}

impl DynInst {
    /// Creates an empty record.
    pub fn new() -> DynInst {
        DynInst {
            header: InstHeader::default(),
            fault: None,
            fields: [0; MAX_FIELDS],
            fields_valid: FieldSet::EMPTY,
            ops: Operands::new(),
            ops_valid: false,
        }
    }

    /// Clears the record for reuse.
    #[inline]
    pub fn clear(&mut self) {
        self.header = InstHeader::default();
        self.fault = None;
        self.fields_valid = FieldSet::EMPTY;
        self.ops_valid = false;
    }

    /// Reads a published field.
    ///
    /// Returns `None` when the field was not visible in the interface that
    /// produced this record *or* was never computed — the timing simulator
    /// cannot tell the difference, by design.
    #[inline]
    pub fn field(&self, id: FieldId) -> Option<u64> {
        self.fields_valid.contains(id).then(|| self.fields[id.index()])
    }

    /// The set of published fields.
    #[inline]
    pub fn fields_valid(&self) -> FieldSet {
        self.fields_valid
    }

    /// The published operand identifiers, if the interface exposed them.
    #[inline]
    pub fn operands(&self) -> Option<&Operands> {
        self.ops_valid.then_some(&self.ops)
    }

    /// Publishes a header-only record: the `Min` fast path. Equivalent to
    /// [`DynInst::publish`] with an empty visibility mask (the field and
    /// operand slots are marked invalid, nothing is copied), so backends
    /// whose buildset hides everything can skip the mask walk.
    #[inline]
    pub fn publish_header(&mut self, header: InstHeader, fault: Option<Fault>) {
        self.header = header;
        self.fault = fault;
        self.fields_valid = FieldSet::EMPTY;
        self.ops_valid = false;
    }

    /// Publishes the working frame into this record under a visibility mask.
    ///
    /// Copies exactly the fields that are both *computed* and *visible*;
    /// everything else stays in the frame. This is the single point where
    /// informational detail costs time, which is what makes low-detail
    /// interfaces fast.
    #[inline]
    pub fn publish(&mut self, frame: &Frame, visible: FieldSet, ops: &Operands, ops_visible: bool) {
        let mask = FieldSet(frame.valid().0 & visible.0);
        self.fields_valid = mask;
        for id in mask.iter() {
            self.fields[id.index()] = frame.raw(id.index());
        }
        if ops_visible {
            self.ops = *ops;
            self.ops_valid = true;
        }
    }

    /// Reloads the published fields back into a working frame — used at
    /// step-level call boundaries, where the record is the only channel
    /// carrying values between interface calls.
    #[inline]
    pub fn reload(&self, frame: &mut Frame, ops: &mut Operands) {
        frame.clear();
        for id in self.fields_valid.iter() {
            frame.set(id, self.fields[id.index()]);
        }
        if self.ops_valid {
            *ops = self.ops;
        } else {
            ops.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::{F_EFF_ADDR, F_SRC1, F_SRC2};
    use crate::operand::RegClass;

    #[test]
    fn publish_masks_hidden_fields() {
        let mut frame = Frame::new();
        frame.set(F_SRC1, 11);
        frame.set(F_EFF_ADDR, 0x2000);
        let ops = Operands::new();
        let mut di = DynInst::new();
        di.publish(&frame, FieldSet::of(&[F_EFF_ADDR]), &ops, false);
        assert_eq!(di.field(F_EFF_ADDR), Some(0x2000));
        assert_eq!(di.field(F_SRC1), None);
        assert!(di.operands().is_none());
    }

    #[test]
    fn publish_skips_uncomputed_fields() {
        let frame = Frame::new();
        let ops = Operands::new();
        let mut di = DynInst::new();
        di.publish(&frame, FieldSet::ALL, &ops, true);
        assert!(di.fields_valid().is_empty());
        assert!(di.operands().is_some());
    }

    #[test]
    fn reload_round_trips() {
        let mut frame = Frame::new();
        frame.set(F_SRC1, 1);
        frame.set(F_SRC2, 2);
        let mut ops = Operands::new();
        ops.push_src(RegClass(0), 9);
        let mut di = DynInst::new();
        di.publish(&frame, FieldSet::ALL, &ops, true);

        let mut frame2 = Frame::new();
        let mut ops2 = Operands::new();
        di.reload(&mut frame2, &mut ops2);
        assert_eq!(frame2.get(F_SRC1), 1);
        assert_eq!(frame2.get(F_SRC2), 2);
        assert_eq!(ops2.srcs()[0].index, 9);
    }

    #[test]
    fn reload_without_ops_clears_ops() {
        let frame = Frame::new();
        let ops = Operands::new();
        let mut di = DynInst::new();
        di.publish(&frame, FieldSet::EMPTY, &ops, false);
        let mut frame2 = Frame::new();
        let mut ops2 = Operands::new();
        ops2.push_src(RegClass(0), 1);
        di.reload(&mut frame2, &mut ops2);
        assert_eq!(ops2.n_srcs(), 0);
    }

    #[test]
    fn clear_resets() {
        let mut di = DynInst::new();
        di.fault = Some(Fault::ArithOverflow);
        di.header.pc = 0x100;
        di.clear();
        assert!(di.fault.is_none());
        assert_eq!(di.header.pc, 0);
    }
}
