//! Mechanical specification-size statistics (Table I support).
//!
//! The paper's Table I reports the size of each ISA description and — the
//! headline development-cost claim — the number of lines needed per
//! experimental buildset. Our descriptions are Rust source; these helpers
//! count them the way the paper counts LIS code: excluding comments and
//! blank lines.

/// Line counts for a piece of specification source.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LineStats {
    /// Total lines in the source.
    pub total: usize,
    /// Lines that are neither blank nor comment-only.
    pub code: usize,
}

impl LineStats {
    /// Sums two counts.
    #[allow(clippy::should_implement_trait)] // counting, not arithmetic on numbers
    pub fn add(self, other: LineStats) -> LineStats {
        LineStats { total: self.total + other.total, code: self.code + other.code }
    }
}

/// Counts lines the way the paper's Table I does: code lines exclude blank
/// lines and comment-only lines (`//`, `///`, `//!`, and `/* ... */` blocks).
pub fn count_lines(src: &str) -> LineStats {
    let mut stats = LineStats::default();
    let mut in_block_comment = false;
    for line in src.lines() {
        stats.total += 1;
        let t = line.trim();
        if t.is_empty() {
            continue;
        }
        if in_block_comment {
            if t.contains("*/") {
                in_block_comment = false;
                // Anything after the close on the same line is rare in our
                // sources; treat the line as comment-only.
            }
            continue;
        }
        if t.starts_with("//") {
            continue;
        }
        if t.starts_with("/*") {
            if !t.contains("*/") {
                in_block_comment = true;
            }
            continue;
        }
        stats.code += 1;
    }
    stats
}

/// Counts the invocations of a given macro (e.g. `buildset!`) in `src` and
/// the code lines they span, for the "lines per experimental buildset"
/// statistic. Uses brace matching from each `name! {`.
pub fn count_macro_blocks(src: &str, name: &str) -> (usize, usize) {
    let needle = format!("{name}!");
    let mut count = 0usize;
    let mut lines = 0usize;
    let mut pos = 0usize;
    while let Some(found) = src[pos..].find(&needle) {
        let start = pos + found;
        // Only a real invocation: the next non-whitespace character after
        // `name!` must be `{` (doc references like `[`name!`]` are skipped),
        // and the invocation must not sit inside a comment line (doc
        // examples are commented out and do not count as interfaces).
        let line_start = src[..start].rfind('\n').map_or(0, |i| i + 1);
        if src[line_start..start].contains("//") {
            pos = start + needle.len();
            continue;
        }
        let after = start + needle.len();
        let rest = src[after..].trim_start();
        if !rest.starts_with('{') {
            pos = after;
            continue;
        }
        let open = after + (src[after..].len() - rest.len());
        let mut depth = 0i32;
        let mut end = open;
        for (i, c) in src[open..].char_indices() {
            match c {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        end = open + i;
                        break;
                    }
                }
                _ => {}
            }
        }
        if depth != 0 {
            break;
        }
        count += 1;
        lines += count_lines(&src[start..=end]).code;
        pos = end + 1;
    }
    (count, lines)
}

/// Per-ISA specification statistics, assembled by each ISA crate for the
/// Table I harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpecStats {
    /// ISA name.
    pub isa: &'static str,
    /// Code lines of the ISA description (encodings + semantics).
    pub isa_description_lines: usize,
    /// Code lines of OS/simulator support (syscall conventions, loaders).
    pub os_support_lines: usize,
    /// Code lines of assembler/disassembler support (the paper's "binary
    /// translator support" analog: tooling derived from the description).
    pub tooling_lines: usize,
    /// Number of instructions in the description.
    pub num_instructions: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_skip_comments_and_blanks() {
        let src = "\n// comment\nlet x = 1;\n\n/// doc\nlet y = 2; // trailing\n";
        let s = count_lines(src);
        assert_eq!(s.code, 2);
        assert_eq!(s.total, 6);
    }

    #[test]
    fn counts_block_comments() {
        let src = "/*\n block\n*/\ncode();\n/* one-liner */\nmore();\n";
        let s = count_lines(src);
        assert_eq!(s.code, 2);
    }

    #[test]
    fn macro_blocks_counted() {
        let src = r#"
buildset! {
    pub const A: BuildsetDef = {
        name: "a",
        semantic: One,
        visibility: Visibility::MIN,
        speculation: false,
    };
}
fn unrelated() {}
buildset! {
    pub const B: BuildsetDef = {
        name: "b",
        semantic: Step,
        visibility: Visibility::ALL,
        speculation: true,
    };
}
"#;
        let (count, lines) = count_macro_blocks(src, "buildset");
        assert_eq!(count, 2);
        // Each block is 8 code lines here; "about a dozen" per interface.
        assert_eq!(lines, 16);
    }

    #[test]
    fn unterminated_macro_is_ignored() {
        let (count, lines) = count_macro_blocks("buildset! { {", "buildset");
        assert_eq!((count, lines), (0, 0));
    }
}
