//! The interface dataflow lint.
//!
//! The paper observes (§IV-B, §V-D) that "nearly all errors at this stage
//! occur because some intermediate value or operand that needs to be visible
//! is hidden in the interface or because a step of instruction execution was
//! left out", and that such errors only surface at run time, a few hundred
//! instructions into a benchmark. Because every instruction declares its
//! inter-step dataflow once, we can do better: check statically that every
//! value crossing an interface-call boundary is visible.
//!
//! The lint mechanically derives the paper's pairing constraint — step-level
//! semantic detail requires all-level informational detail — rather than
//! hard-coding it.

use crate::buildset::BuildsetDef;
use crate::inst::{Flow, FlowItem};
use crate::isa::IsaSpec;
use std::fmt;

/// One interface-specification error found by the lint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LintDiag {
    /// Instruction whose dataflow is broken by the interface.
    pub inst: &'static str,
    /// The offending dataflow edge.
    pub flow: Flow,
}

impl fmt::Display for LintDiag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} is produced in the `{}` call but consumed in the `{}` call and is hidden by the interface",
            self.inst, self.flow.item, self.flow.def, self.flow.used
        )
    }
}

/// Checks that `buildset` is a valid interface for `isa`.
///
/// For every instruction, every dataflow edge whose producing and consuming
/// steps land in *different* interface calls must be visible; otherwise the
/// value would be lost at the call boundary and simulation would go wrong —
/// exactly the class of bug the paper reports as the typical interface
/// specification error.
///
/// # Errors
///
/// Returns every violated edge. Duplicate diagnostics for instructions
/// sharing a class are collapsed to the first instruction of each
/// `(class, flow)` pair to keep reports readable.
pub fn check_interface(isa: &IsaSpec, buildset: &BuildsetDef) -> Result<(), Vec<LintDiag>> {
    let mut diags: Vec<LintDiag> = Vec::new();
    let mut seen: Vec<(&'static str, Flow)> = Vec::new();
    for def in isa.insts {
        for flow in def.flows() {
            let def_call = buildset.semantic.call_of(flow.def);
            let use_call = buildset.semantic.call_of(flow.used);
            if def_call == use_call {
                continue;
            }
            let visible = match flow.item {
                FlowItem::Field(id) => buildset.visibility.fields.contains(id),
                FlowItem::OperandIds => buildset.visibility.operand_ids,
            };
            if !visible {
                let key = (def.class.name(), flow);
                if !seen.iter().any(|(c, fl)| *c == key.0 && *fl == flow) {
                    seen.push(key);
                    diags.push(LintDiag { inst: def.name, flow });
                }
            }
        }
    }
    if diags.is_empty() {
        Ok(())
    } else {
        Err(diags)
    }
}

/// Renders a lint report for human consumption.
pub fn render_report(buildset: &BuildsetDef, diags: &[LintDiag]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "interface `{}` ({}) is invalid: {} dataflow violation(s)",
        buildset.name,
        buildset.describe(),
        diags.len()
    );
    for d in diags {
        let _ = writeln!(out, "  - {d}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buildset::{Semantic, Visibility, ONE_MIN, STEP_ALL};
    use crate::inst::{InstClass, InstDef, StepActions};
    use lis_mem::Endian;

    const INSTS: &[InstDef] = &[InstDef {
        name: "ld",
        class: InstClass::Load,
        mask: 0xff00_0000,
        bits: 0x0100_0000,
        operands: &[],
        actions: StepActions {
            decode: None,
            operand_fetch: None,
            evaluate: None,
            memory: None,
            writeback: None,
            exception: None,
        },
        extra_flows: &[],
    }];

    fn isa() -> IsaSpec {
        IsaSpec {
            name: "t",
            word_bits: 32,
            endian: Endian::Little,
            insts: INSTS,
            reg_classes: &[],
            isa_fields: &[],
            disasm: |_, _| String::new(),
            pc_mask: u32::MAX as u64,
            sp_gpr: 30,
        }
    }

    #[test]
    fn one_call_interfaces_always_pass() {
        // All steps share one call, so nothing crosses a boundary.
        assert!(check_interface(&isa(), &ONE_MIN).is_ok());
    }

    #[test]
    fn step_all_passes() {
        assert!(check_interface(&isa(), &STEP_ALL).is_ok());
    }

    #[test]
    fn step_min_fails_with_diagnostics() {
        let bs = BuildsetDef {
            name: "step-min",
            semantic: Semantic::Step,
            visibility: Visibility::MIN,
            speculation: false,
        };
        let diags = check_interface(&isa(), &bs).unwrap_err();
        assert!(!diags.is_empty());
        // The classic error: the effective address is computed at evaluate
        // and consumed at memory, but hidden.
        let report = render_report(&bs, &diags);
        assert!(report.contains("eff_addr") || report.contains("field"), "{report}");
        assert!(report.contains("step-min"));
    }

    #[test]
    fn step_decode_fails_on_operand_values() {
        let bs = BuildsetDef {
            name: "step-decode",
            semantic: Semantic::Step,
            visibility: Visibility::DECODE,
            speculation: false,
        };
        // Decode info shows operand ids and eff_addr, but operand *values*
        // (src1..) still cross from operand-fetch to evaluate.
        let diags = check_interface(&isa(), &bs).unwrap_err();
        assert!(diags
            .iter()
            .any(|d| matches!(d.flow.item, FlowItem::Field(f) if f == crate::field::F_SRC1)));
    }
}
