//! The interface dataflow lint.
//!
//! The paper observes (§IV-B, §V-D) that "nearly all errors at this stage
//! occur because some intermediate value or operand that needs to be visible
//! is hidden in the interface or because a step of instruction execution was
//! left out", and that such errors only surface at run time, a few hundred
//! instructions into a benchmark. Because every instruction declares its
//! inter-step dataflow once, we can do better: check statically that every
//! value crossing an interface-call boundary is visible.
//!
//! The lint mechanically derives the paper's pairing constraint — step-level
//! semantic detail requires all-level informational detail — rather than
//! hard-coding it.
//!
//! This module is the *primitive* shared with `lis-analyze`, which wraps it
//! as pass `LIS001` of the full multi-pass interface verifier (speculation
//! safety, over-detail, derivability, ISA self-checks, stable diagnostic
//! codes, SARIF output). New code should prefer `lis_analyze::analyze`;
//! [`check_interface`] stays as a thin shim because `lis-core` sits below
//! `lis-analyze` in the dependency graph and the runtime needs a pre-flight
//! check without depending upward.

use crate::buildset::BuildsetDef;
use crate::inst::{Flow, FlowItem};
use crate::isa::IsaSpec;
use std::collections::HashSet;
use std::fmt;

/// One interface-specification error found by the lint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LintDiag {
    /// Instruction whose dataflow is broken by the interface.
    pub inst: &'static str,
    /// The offending dataflow edge.
    pub flow: Flow,
}

impl fmt::Display for LintDiag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} is produced in the `{}` call but consumed in the `{}` call and is hidden by the interface",
            self.inst, self.flow.item, self.flow.def, self.flow.used
        )
    }
}

/// Checks that `buildset` is a valid interface for `isa`.
///
/// For every instruction, every dataflow edge whose producing and consuming
/// steps land in *different* interface calls must be visible; otherwise the
/// value would be lost at the call boundary and simulation would go wrong —
/// exactly the class of bug the paper reports as the typical interface
/// specification error.
///
/// # Errors
///
/// Returns every violated edge. Duplicate diagnostics for instructions
/// sharing a class are collapsed to the first instruction of each
/// `(class, flow)` pair to keep reports readable.
pub fn check_interface(isa: &IsaSpec, buildset: &BuildsetDef) -> Result<(), Vec<LintDiag>> {
    let mut diags: Vec<LintDiag> = Vec::new();
    let mut seen: HashSet<(&'static str, Flow)> = HashSet::new();
    for def in isa.insts {
        for flow in def.flows() {
            let def_call = buildset.semantic.call_of(flow.def);
            let use_call = buildset.semantic.call_of(flow.used);
            if def_call == use_call {
                continue;
            }
            let visible = match flow.item {
                FlowItem::Field(id) => buildset.visibility.fields.contains(id),
                FlowItem::OperandIds => buildset.visibility.operand_ids,
            };
            if !visible && seen.insert((def.class.name(), flow)) {
                diags.push(LintDiag { inst: def.name, flow });
            }
        }
    }
    if diags.is_empty() {
        Ok(())
    } else {
        Err(diags)
    }
}

/// Renders a lint report for human consumption.
pub fn render_report(buildset: &BuildsetDef, diags: &[LintDiag]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "interface `{}` ({}) is invalid: {} dataflow violation(s)",
        buildset.name,
        buildset.describe(),
        diags.len()
    );
    for d in diags {
        let _ = writeln!(out, "  - {d}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buildset::{Semantic, Visibility, ONE_MIN, STEP_ALL};
    use crate::inst::{InstClass, InstDef, StepActions};
    use crate::step::Step;
    use lis_mem::Endian;

    const INSTS: &[InstDef] = &[InstDef {
        name: "ld",
        class: InstClass::Load,
        mask: 0xff00_0000,
        bits: 0x0100_0000,
        operands: &[],
        actions: StepActions {
            decode: None,
            operand_fetch: None,
            evaluate: None,
            memory: None,
            writeback: None,
            exception: None,
        },
        extra_flows: &[],
    }];

    fn isa() -> IsaSpec {
        IsaSpec {
            name: "t",
            word_bits: 32,
            endian: Endian::Little,
            insts: INSTS,
            reg_classes: &[],
            isa_fields: &[],
            disasm: |_, _| String::new(),
            pc_mask: u32::MAX as u64,
            sp_gpr: 30,
        }
    }

    #[test]
    fn one_call_interfaces_always_pass() {
        // All steps share one call, so nothing crosses a boundary.
        assert!(check_interface(&isa(), &ONE_MIN).is_ok());
    }

    #[test]
    fn step_all_passes() {
        assert!(check_interface(&isa(), &STEP_ALL).is_ok());
    }

    #[test]
    fn step_min_fails_with_diagnostics() {
        let bs = BuildsetDef {
            name: "step-min",
            semantic: Semantic::Step,
            visibility: Visibility::MIN,
            speculation: false,
        };
        let diags = check_interface(&isa(), &bs).unwrap_err();
        assert!(!diags.is_empty());
        // The classic error: the effective address is computed at evaluate
        // and consumed at memory, but hidden.
        let report = render_report(&bs, &diags);
        assert!(report.contains("eff_addr") || report.contains("field"), "{report}");
        assert!(report.contains("step-min"));
    }

    const NO_ACTIONS: StepActions = StepActions {
        decode: None,
        operand_fetch: None,
        evaluate: None,
        memory: None,
        writeback: None,
        exception: None,
    };

    /// Two loads and an ALU op: same-class duplicates must collapse, the
    /// distinct class must not.
    const MIXED_INSTS: &[InstDef] = &[
        InstDef {
            name: "ld1",
            class: InstClass::Load,
            mask: 0xff00_0000,
            bits: 0x0100_0000,
            operands: &[],
            actions: NO_ACTIONS,
            extra_flows: &[],
        },
        InstDef {
            name: "ld2",
            class: InstClass::Load,
            mask: 0xff00_0000,
            bits: 0x0200_0000,
            operands: &[],
            actions: NO_ACTIONS,
            extra_flows: &[],
        },
        InstDef {
            name: "add",
            class: InstClass::Alu,
            mask: 0xff00_0000,
            bits: 0x0300_0000,
            operands: &[],
            actions: NO_ACTIONS,
            extra_flows: &[],
        },
    ];

    #[test]
    fn duplicate_diags_collapse_per_class_and_flow() {
        let mut s = isa();
        s.insts = MIXED_INSTS;
        let bs = BuildsetDef {
            name: "step-min",
            semantic: Semantic::Step,
            visibility: Visibility::MIN,
            speculation: false,
        };
        let diags = check_interface(&s, &bs).unwrap_err();
        // Every diagnostic names the *first* instruction of its class: the
        // second load contributes nothing new.
        assert!(diags.iter().all(|d| d.inst != "ld2"), "{diags:?}");
        assert!(diags.iter().any(|d| d.inst == "ld1"));
        assert!(diags.iter().any(|d| d.inst == "add"));
        // Each (class, flow) pair appears exactly once.
        let mut keys: Vec<_> = diags.iter().map(|d| (d.inst, d.flow)).collect();
        let n = keys.len();
        keys.sort_by_key(|(i, f)| (*i, format!("{f:?}")));
        keys.dedup();
        assert_eq!(keys.len(), n, "duplicate (inst, flow) diagnostics");
        // Both classes share e.g. the src1 OF->EV flow, so the same flow
        // must be reported once *per class*.
        let src1_hits = diags
            .iter()
            .filter(|d| matches!(d.flow.item, FlowItem::Field(f) if f == crate::field::F_SRC1))
            .count();
        assert_eq!(src1_hits, 2, "one src1 diagnostic per class: {diags:?}");
    }

    /// Pins the exact `render_report` format: downstream tooling greps it.
    #[test]
    fn render_report_golden() {
        let bs = BuildsetDef {
            name: "step-min",
            semantic: Semantic::Step,
            visibility: Visibility::MIN,
            speculation: false,
        };
        let diags = vec![
            LintDiag {
                inst: "ld",
                flow: crate::inst::flow(
                    FlowItem::Field(crate::field::F_EFF_ADDR),
                    Step::Evaluate,
                    Step::Memory,
                ),
            },
            LintDiag {
                inst: "ld",
                flow: crate::inst::flow(FlowItem::OperandIds, Step::Decode, Step::OperandFetch),
            },
        ];
        let report = render_report(&bs, &diags);
        assert_eq!(
            report,
            "interface `step-min` (step/min/nospec) is invalid: 2 dataflow violation(s)\n\
             \x20 - ld: field `eff_addr` is produced in the `evaluate` call but consumed in \
             the `memory` call and is hidden by the interface\n\
             \x20 - ld: operand identifiers is produced in the `decode` call but consumed in \
             the `operand_fetch` call and is hidden by the interface\n"
        );
    }

    #[test]
    fn step_decode_fails_on_operand_values() {
        let bs = BuildsetDef {
            name: "step-decode",
            semantic: Semantic::Step,
            visibility: Visibility::DECODE,
            speculation: false,
        };
        // Decode info shows operand ids and eff_addr, but operand *values*
        // (src1..) still cross from operand-fetch to evaluate.
        let diags = check_interface(&isa(), &bs).unwrap_err();
        assert!(diags
            .iter()
            .any(|d| matches!(d.flow.item, FlowItem::Field(f) if f == crate::field::F_SRC1)));
    }
}
