//! Buildsets: derived interface definitions.
//!
//! A *buildset* (the paper's `buildset` construct) names one derived
//! interface: a level of semantic detail (how execution is partitioned into
//! interface calls), a visibility (which fields and operand identifiers are
//! published), and whether speculation support is enabled. Defining a new
//! buildset takes about a dozen lines — the paper's headline development-time
//! claim — and the [`buildset!`](crate::buildset!) macro keeps it that way.

use crate::field::{FieldSet, DECODE_FIELDS};
use crate::step::Step;
use std::fmt;

/// Level of semantic detail: how instruction execution is partitioned into
/// interface calls.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Semantic {
    /// One interface call executes a whole basic block.
    Block,
    /// One interface call executes a single instruction.
    One,
    /// Seven interface calls (one per [`Step`]) execute a single instruction.
    Step,
}

impl Semantic {
    /// Number of interface calls per instruction (1 for `Block`/`One`).
    pub const fn calls_per_inst(self) -> usize {
        match self {
            Semantic::Block | Semantic::One => 1,
            Semantic::Step => Step::COUNT,
        }
    }

    /// The interface call a given step belongs to.
    #[inline]
    pub const fn call_of(self, step: Step) -> usize {
        match self {
            Semantic::Block | Semantic::One => 0,
            Semantic::Step => step.index(),
        }
    }

    /// Short name used in standard buildset names.
    pub const fn name(self) -> &'static str {
        match self {
            Semantic::Block => "block",
            Semantic::One => "one",
            Semantic::Step => "step",
        }
    }
}

impl fmt::Display for Semantic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Named preset of informational detail, as evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InfoLevel {
    /// Header only: address, encoding, next PC, faults.
    Min,
    /// Minimal plus decode information and effective addresses.
    Decode,
    /// All fields and operand values.
    All,
}

impl InfoLevel {
    /// The visibility this preset denotes.
    pub const fn visibility(self) -> Visibility {
        match self {
            InfoLevel::Min => Visibility::MIN,
            InfoLevel::Decode => Visibility::DECODE,
            InfoLevel::All => Visibility::ALL,
        }
    }

    /// Short name used in standard buildset names.
    pub const fn name(self) -> &'static str {
        match self {
            InfoLevel::Min => "min",
            InfoLevel::Decode => "decode",
            InfoLevel::All => "all",
        }
    }
}

impl fmt::Display for InfoLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The informational detail of an interface: which fields and operand
/// identifiers it publishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Visibility {
    /// Fields copied into the published record at each call boundary.
    pub fields: FieldSet,
    /// Whether decoded operand identifiers are published.
    pub operand_ids: bool,
}

impl Visibility {
    /// Header only (the paper's `Min`).
    pub const MIN: Visibility = Visibility { fields: FieldSet::EMPTY, operand_ids: false };
    /// Decode information, effective addresses, branch resolution (`Decode`).
    pub const DECODE: Visibility = Visibility { fields: DECODE_FIELDS, operand_ids: true };
    /// Every field and operand value (`All`).
    pub const ALL: Visibility = Visibility { fields: FieldSet::ALL, operand_ids: true };

    /// This visibility with extra fields shown.
    pub const fn plus(self, extra: FieldSet) -> Visibility {
        Visibility { fields: self.fields.union(extra), operand_ids: self.operand_ids }
    }

    /// This visibility with some fields hidden.
    pub const fn minus(self, hidden: FieldSet) -> Visibility {
        Visibility { fields: FieldSet(self.fields.0 & !hidden.0), operand_ids: self.operand_ids }
    }

    /// This visibility with operand identifiers shown or hidden.
    pub const fn with_operand_ids(self, show: bool) -> Visibility {
        Visibility { fields: self.fields, operand_ids: show }
    }

    /// Whether this visibility publishes nothing beyond the always-present
    /// header — no fields, no operand identifiers. Backends query this at
    /// synthesis time to elide the publication walk entirely (`Min` and any
    /// custom visibility that reduces to it).
    pub const fn header_only(self) -> bool {
        self.fields.is_empty() && !self.operand_ids
    }
}

/// One derived interface definition.
///
/// This is the entire cost of adding a new interface to a simulator — the
/// paper's "about a dozen lines of code". Everything else is synthesized.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BuildsetDef {
    /// Interface name, used for selection and reporting.
    pub name: &'static str,
    /// Semantic detail.
    pub semantic: Semantic,
    /// Informational detail.
    pub visibility: Visibility,
    /// Whether rollback support is compiled in.
    pub speculation: bool,
}

impl BuildsetDef {
    /// Whether a backend may statically elide all publication work beyond
    /// the header for this interface (the visibility mask excludes every
    /// field and the operand identifiers).
    pub const fn elides_publish(&self) -> bool {
        self.visibility.header_only()
    }

    /// Whether a backend may compile out undo recording for this interface
    /// (no speculation support, so no architectural write is ever captured).
    pub const fn elides_undo(&self) -> bool {
        !self.speculation
    }

    /// The standard name (`one-all-spec`, `block-min`, ...) for a
    /// combination of detail levels.
    pub fn describe(&self) -> String {
        format!(
            "{}/{}/{}",
            self.semantic,
            info_of(self.visibility),
            if self.speculation { "spec" } else { "nospec" }
        )
    }
}

impl fmt::Display for BuildsetDef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name)
    }
}

fn info_of(v: Visibility) -> &'static str {
    if v == Visibility::MIN {
        "min"
    } else if v == Visibility::DECODE {
        "decode"
    } else if v == Visibility::ALL {
        "all"
    } else {
        "custom"
    }
}

/// Defines a [`BuildsetDef`] constant — the ADL surface for adding a new
/// interface in a dozen lines.
///
/// ```
/// use lis_core::{buildset, BuildsetDef, Visibility, F_EFF_ADDR, FieldSet};
///
/// buildset! {
///     /// Fast-forward interface for sampled simulation.
///     pub const FAST_FORWARD: BuildsetDef = {
///         name: "fast-forward",
///         semantic: Block,
///         visibility: Visibility::MIN,
///         speculation: false,
///     };
/// }
/// assert_eq!(FAST_FORWARD.name, "fast-forward");
/// ```
#[macro_export]
macro_rules! buildset {
    (
        $(#[$meta:meta])*
        $vis:vis const $id:ident: BuildsetDef = {
            name: $name:literal,
            semantic: $sem:ident,
            visibility: $v:expr,
            speculation: $spec:literal $(,)?
        };
    ) => {
        $(#[$meta])*
        $vis const $id: $crate::BuildsetDef = $crate::BuildsetDef {
            name: $name,
            semantic: $crate::Semantic::$sem,
            visibility: $v,
            speculation: $spec,
        };
    };
}

buildset! {
    /// Basic-block calls, minimal information — the fastest interface.
    pub const BLOCK_MIN: BuildsetDef = {
        name: "block-min",
        semantic: Block,
        visibility: Visibility::MIN,
        speculation: false,
    };
}

buildset! {
    /// Basic-block calls with decode information.
    pub const BLOCK_DECODE: BuildsetDef = {
        name: "block-decode",
        semantic: Block,
        visibility: Visibility::DECODE,
        speculation: false,
    };
}

buildset! {
    /// Basic-block calls with decode information and rollback support.
    pub const BLOCK_DECODE_SPEC: BuildsetDef = {
        name: "block-decode-spec",
        semantic: Block,
        visibility: Visibility::DECODE,
        speculation: true,
    };
}

buildset! {
    /// Basic-block calls publishing everything.
    pub const BLOCK_ALL: BuildsetDef = {
        name: "block-all",
        semantic: Block,
        visibility: Visibility::ALL,
        speculation: false,
    };
}

buildset! {
    /// Basic-block calls publishing everything, with rollback support.
    pub const BLOCK_ALL_SPEC: BuildsetDef = {
        name: "block-all-spec",
        semantic: Block,
        visibility: Visibility::ALL,
        speculation: true,
    };
}

buildset! {
    /// One call per instruction, minimal information.
    pub const ONE_MIN: BuildsetDef = {
        name: "one-min",
        semantic: One,
        visibility: Visibility::MIN,
        speculation: false,
    };
}

buildset! {
    /// One call per instruction with decode information.
    pub const ONE_DECODE: BuildsetDef = {
        name: "one-decode",
        semantic: One,
        visibility: Visibility::DECODE,
        speculation: false,
    };
}

buildset! {
    /// One call per instruction with decode information and rollback.
    pub const ONE_DECODE_SPEC: BuildsetDef = {
        name: "one-decode-spec",
        semantic: One,
        visibility: Visibility::DECODE,
        speculation: true,
    };
}

buildset! {
    /// One call per instruction publishing everything — the recommended
    /// interface for initial specification debugging (§IV-B).
    pub const ONE_ALL: BuildsetDef = {
        name: "one-all",
        semantic: One,
        visibility: Visibility::ALL,
        speculation: false,
    };
}

buildset! {
    /// One call per instruction publishing everything, with rollback.
    pub const ONE_ALL_SPEC: BuildsetDef = {
        name: "one-all-spec",
        semantic: One,
        visibility: Visibility::ALL,
        speculation: true,
    };
}

buildset! {
    /// Seven calls per instruction publishing everything — the
    /// timing-directed interface.
    pub const STEP_ALL: BuildsetDef = {
        name: "step-all",
        semantic: Step,
        visibility: Visibility::ALL,
        speculation: false,
    };
}

buildset! {
    /// Seven calls per instruction publishing everything, with rollback.
    pub const STEP_ALL_SPEC: BuildsetDef = {
        name: "step-all-spec",
        semantic: Step,
        visibility: Visibility::ALL,
        speculation: true,
    };
}

/// The twelve standard interfaces evaluated in the paper (Table II rows).
pub const STANDARD_BUILDSETS: [BuildsetDef; 12] = [
    BLOCK_MIN,
    BLOCK_DECODE,
    BLOCK_DECODE_SPEC,
    BLOCK_ALL,
    BLOCK_ALL_SPEC,
    ONE_MIN,
    ONE_DECODE,
    ONE_DECODE_SPEC,
    ONE_ALL,
    ONE_ALL_SPEC,
    STEP_ALL,
    STEP_ALL_SPEC,
];

/// Looks up a standard buildset by name.
pub fn find_buildset(name: &str) -> Option<&'static BuildsetDef> {
    STANDARD_BUILDSETS.iter().find(|b| b.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::F_EFF_ADDR;

    #[test]
    fn twelve_standard_buildsets() {
        assert_eq!(STANDARD_BUILDSETS.len(), 12);
        let mut names: Vec<_> = STANDARD_BUILDSETS.iter().map(|b| b.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 12, "duplicate buildset names");
    }

    #[test]
    fn step_buildsets_are_all_detail() {
        for b in STANDARD_BUILDSETS {
            if b.semantic == Semantic::Step {
                assert_eq!(b.visibility, Visibility::ALL, "{}", b.name);
            }
        }
    }

    #[test]
    fn call_partition() {
        assert_eq!(Semantic::One.calls_per_inst(), 1);
        assert_eq!(Semantic::Step.calls_per_inst(), 7);
        assert_eq!(Semantic::Block.call_of(Step::Memory), 0);
        assert_eq!(Semantic::Step.call_of(Step::Memory), Step::Memory.index());
    }

    #[test]
    fn visibility_algebra() {
        let v = Visibility::MIN.plus(FieldSet::of(&[F_EFF_ADDR]));
        assert!(v.fields.contains(F_EFF_ADDR));
        assert!(!v.operand_ids);
        let v2 = v.minus(FieldSet::of(&[F_EFF_ADDR])).with_operand_ids(true);
        assert!(v2.fields.is_empty());
        assert!(v2.operand_ids);
    }

    #[test]
    fn find_and_describe() {
        assert_eq!(find_buildset("one-all").unwrap().semantic, Semantic::One);
        assert!(find_buildset("nope").is_none());
        assert_eq!(ONE_ALL_SPEC.describe(), "one/all/spec");
        assert_eq!(BLOCK_MIN.describe(), "block/min/nospec");
        assert_eq!(BLOCK_MIN.to_string(), "block-min");
    }

    #[test]
    fn info_level_round_trip() {
        assert_eq!(InfoLevel::Min.visibility(), Visibility::MIN);
        assert_eq!(InfoLevel::Decode.visibility(), Visibility::DECODE);
        assert_eq!(InfoLevel::All.visibility(), Visibility::ALL);
        assert_eq!(InfoLevel::Decode.to_string(), "decode");
    }
}
