//! The speculation undo log.
//!
//! When a buildset enables speculation, every architectural write performed
//! through the [`Exec`](crate::Exec) helpers appends an undo record carrying
//! the old value. Rolling back to a checkpoint replays the records in
//! reverse — the paper's "carry enough information to roll back the
//! architectural effects of each instruction".

use crate::state::ArchState;

/// One reversible architectural effect.
#[derive(Clone, Copy)]
pub enum UndoRec {
    /// A register write through an accessor; rollback restores the old value
    /// through the very same accessor, so any register class is supported.
    Reg {
        /// The accessor's write function.
        write: fn(&mut ArchState, u16, u64),
        /// Register index within the class.
        idx: u16,
        /// Value before the write.
        old: u64,
    },
    /// A memory write of `len` bytes (1, 2, 4, or 8).
    Mem {
        /// Address written.
        addr: u64,
        /// Bytes before the write, in guest byte order, low `len` used.
        old: u64,
        /// Width in bytes.
        len: u8,
    },
}

impl std::fmt::Debug for UndoRec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            UndoRec::Reg { idx, old, .. } => {
                f.debug_struct("Reg").field("idx", &idx).field("old", &old).finish()
            }
            UndoRec::Mem { addr, old, len } => f
                .debug_struct("Mem")
                .field("addr", &addr)
                .field("old", &old)
                .field("len", &len)
                .finish(),
        }
    }
}

/// A position in the undo log, returned by [`UndoLog::mark`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct UndoMark(usize);

/// An append-only log of reversible writes.
#[derive(Debug, Clone, Default)]
pub struct UndoLog {
    recs: Vec<UndoRec>,
}

impl UndoLog {
    /// Creates an empty log.
    pub fn new() -> UndoLog {
        UndoLog::default()
    }

    /// Appends one record.
    #[inline]
    pub fn push(&mut self, rec: UndoRec) {
        self.recs.push(rec);
    }

    /// Current log position, for later rollback.
    #[inline]
    pub fn mark(&self) -> UndoMark {
        UndoMark(self.recs.len())
    }

    /// Number of records currently held.
    pub fn len(&self) -> usize {
        self.recs.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.recs.is_empty()
    }

    /// Discards every record, keeping the allocation. Engines call this when
    /// no checkpoint is outstanding so the log cannot grow without bound.
    #[inline]
    pub fn clear(&mut self) {
        self.recs.clear();
    }

    /// Confirms the speculation begun at `mark`: its undo records are
    /// discarded (they can no longer be rolled back), while records older
    /// than `mark` are preserved for any outer checkpoint.
    pub fn commit(&mut self, mark: UndoMark) {
        debug_assert!(mark.0 <= self.recs.len());
        self.recs.truncate(mark.0);
    }

    /// Undoes every record newer than `mark`, restoring `state`.
    pub fn rollback(&mut self, mark: UndoMark, state: &mut ArchState) {
        while self.recs.len() > mark.0 {
            let rec = self.recs.pop().expect("mark within log");
            match rec {
                UndoRec::Reg { write, idx, old } => write(state, idx, old),
                UndoRec::Mem { addr, old, len } => {
                    // Old bytes were captured in guest order; writing them
                    // back with the same endianness restores them exactly.
                    let e = state.endian;
                    let r = match len {
                        1 => state.mem.write_u8(addr, old as u8),
                        2 => state.mem.write_u16(addr, old as u16, e),
                        4 => state.mem.write_u32(addr, old as u32, e),
                        8 => state.mem.write_u64(addr, old, e),
                        _ => unreachable!("undo width {len}"),
                    };
                    // The write succeeded once; restoring it cannot fault.
                    r.expect("undo restore");
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lis_mem::Endian;

    fn wr_gpr(st: &mut ArchState, idx: u16, val: u64) {
        st.gpr[idx as usize] = val;
    }

    fn wr_spr(st: &mut ArchState, idx: u16, val: u64) {
        st.spr[idx as usize] = val;
    }

    #[test]
    fn rollback_restores_registers_in_reverse() {
        let mut log = UndoLog::new();
        let mut st = ArchState::new(Endian::Little);
        let mark = log.mark();
        // Two writes to the same register: rollback must restore the first
        // old value, not the intermediate one.
        log.push(UndoRec::Reg { write: wr_gpr, idx: 1, old: 0 });
        st.gpr[1] = 10;
        log.push(UndoRec::Reg { write: wr_gpr, idx: 1, old: 10 });
        st.gpr[1] = 20;
        log.rollback(mark, &mut st);
        assert_eq!(st.gpr[1], 0);
        assert!(log.is_empty());
    }

    #[test]
    fn rollback_restores_memory() {
        let mut log = UndoLog::new();
        let mut st = ArchState::new(Endian::Big);
        st.mem.write_u32(0x1000, 0x11223344, Endian::Big).unwrap();
        let mark = log.mark();
        log.push(UndoRec::Mem { addr: 0x1000, old: 0x11223344, len: 4 });
        st.mem.write_u32(0x1000, 0xdeadbeef, Endian::Big).unwrap();
        log.rollback(mark, &mut st);
        assert_eq!(st.mem.read_u32(0x1000, Endian::Big).unwrap(), 0x11223344);
    }

    #[test]
    fn partial_rollback_keeps_older_records() {
        let mut log = UndoLog::new();
        let mut st = ArchState::new(Endian::Little);
        log.push(UndoRec::Reg { write: wr_gpr, idx: 0, old: 1 });
        let mark = log.mark();
        log.push(UndoRec::Reg { write: wr_gpr, idx: 0, old: 2 });
        st.gpr[0] = 3;
        log.rollback(mark, &mut st);
        assert_eq!(st.gpr[0], 2);
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn commit_discards_confirmed_records_only() {
        let mut log = UndoLog::new();
        log.push(UndoRec::Reg { write: wr_spr, idx: 0, old: 0 });
        log.push(UndoRec::Reg { write: wr_spr, idx: 1, old: 0 });
        let mark = log.mark();
        log.push(UndoRec::Reg { write: wr_spr, idx: 2, old: 0 });
        log.commit(mark);
        // The two records belonging to the outer checkpoint survive.
        assert_eq!(log.len(), 2);
        let outer = UndoMark(0);
        log.commit(outer);
        assert!(log.is_empty());
    }

    #[test]
    fn nested_checkpoints_roll_back_independently() {
        let mut log = UndoLog::new();
        let mut st = ArchState::new(Endian::Little);
        let outer = log.mark();
        log.push(UndoRec::Reg { write: wr_gpr, idx: 7, old: 0 });
        st.gpr[7] = 1;
        let inner = log.mark();
        log.push(UndoRec::Reg { write: wr_gpr, idx: 7, old: 1 });
        st.gpr[7] = 2;
        log.rollback(inner, &mut st);
        assert_eq!(st.gpr[7], 1);
        log.rollback(outer, &mut st);
        assert_eq!(st.gpr[7], 0);
    }
}
