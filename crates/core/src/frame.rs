//! The working field frame.
//!
//! While an instruction executes, its field values live in a [`Frame`] — the
//! analog of the paper's local variables in the low-informational-detail
//! interface function (Figure 4). Only *visible* fields are ever copied out
//! of the frame into the published [`DynInst`](crate::DynInst) record; hidden
//! fields never leave it.

use crate::field::{FieldId, FieldSet, MAX_FIELDS};

/// Field values for the instruction currently being executed.
///
/// All slots are `u64`; 32-bit ISAs use the low half. A validity mask tracks
/// which fields have been written so publication can skip untouched slots
/// and debugging interfaces can distinguish "zero" from "never computed".
#[derive(Debug, Clone, Copy)]
pub struct Frame {
    vals: [u64; MAX_FIELDS],
    valid: FieldSet,
}

impl Default for Frame {
    fn default() -> Self {
        Self::new()
    }
}

impl Frame {
    /// Creates an empty frame.
    #[inline]
    pub fn new() -> Frame {
        Frame { vals: [0; MAX_FIELDS], valid: FieldSet::EMPTY }
    }

    /// Clears all validity bits (values are left in place but unreadable).
    #[inline]
    pub fn clear(&mut self) {
        self.valid = FieldSet::EMPTY;
    }

    /// Writes `field`.
    #[inline]
    pub fn set(&mut self, field: FieldId, val: u64) {
        self.vals[field.index()] = val;
        self.valid = self.valid.with(field);
    }

    /// Reads `field`, or 0 if it was never written.
    #[inline]
    pub fn get(&self, field: FieldId) -> u64 {
        if self.valid.contains(field) {
            self.vals[field.index()]
        } else {
            0
        }
    }

    /// Reads `field` only if it has been written.
    #[inline]
    pub fn try_get(&self, field: FieldId) -> Option<u64> {
        self.valid.contains(field).then(|| self.vals[field.index()])
    }

    /// Whether `field` has been written.
    #[inline]
    pub fn has(&self, field: FieldId) -> bool {
        self.valid.contains(field)
    }

    /// The set of fields written so far.
    #[inline]
    pub fn valid(&self) -> FieldSet {
        self.valid
    }

    /// Raw slot access for publication loops.
    #[inline]
    pub fn raw(&self, index: usize) -> u64 {
        self.vals[index]
    }

    /// Bulk-loads `(field, value)` pairs, marking each valid.
    pub fn load<I: IntoIterator<Item = (FieldId, u64)>>(&mut self, iter: I) {
        for (f, v) in iter {
            self.set(f, v);
        }
    }

    /// Writes `field`'s value slot *without* updating validity. A batch of
    /// staged writes becomes visible with one [`Frame::mark_valid`] — the
    /// two-phase form of repeated [`Frame::set`] calls, for hot loops whose
    /// field set is known ahead of time.
    #[inline]
    pub fn stage(&mut self, field: FieldId, val: u64) {
        self.vals[field.index()] = val;
    }

    /// Marks every field in `mask` valid in one store. Pairs with
    /// [`Frame::stage`]; the mask must cover exactly the staged fields.
    #[inline]
    pub fn mark_valid(&mut self, mask: FieldSet) {
        self.valid = self.valid.union(mask);
    }

    /// Replays a precomputed decode capture: writes the raw `(field-id,
    /// value)` pairs and *replaces* the whole validity mask with `valid` in
    /// one store — the bulk equivalent of `clear()` followed by one `set`
    /// per pair. `valid` must be exactly the set of ids in `pairs`; anything
    /// else would publish stale or phantom fields.
    #[inline]
    pub fn replay(&mut self, pairs: &[(u8, u64)], valid: FieldSet) {
        debug_assert_eq!(
            pairs.iter().fold(FieldSet::EMPTY, |s, &(f, _)| s.with(FieldId(f))),
            valid,
            "replay mask must match the replayed pairs"
        );
        for &(f, v) in pairs {
            self.vals[f as usize] = v;
        }
        self.valid = valid;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::{F_EFF_ADDR, F_SRC1};

    #[test]
    fn set_get() {
        let mut fr = Frame::new();
        assert_eq!(fr.get(F_SRC1), 0);
        assert!(!fr.has(F_SRC1));
        fr.set(F_SRC1, 42);
        assert_eq!(fr.get(F_SRC1), 42);
        assert_eq!(fr.try_get(F_SRC1), Some(42));
        assert!(fr.has(F_SRC1));
        assert_eq!(fr.try_get(F_EFF_ADDR), None);
    }

    #[test]
    fn clear_invalidates_without_zeroing() {
        let mut fr = Frame::new();
        fr.set(F_SRC1, 7);
        fr.clear();
        assert!(!fr.has(F_SRC1));
        assert_eq!(fr.get(F_SRC1), 0);
        assert_eq!(fr.raw(F_SRC1.index()), 7);
    }

    #[test]
    fn bulk_load() {
        let mut fr = Frame::new();
        fr.load([(F_SRC1, 1), (F_EFF_ADDR, 0x1000)]);
        assert_eq!(fr.valid().len(), 2);
        assert_eq!(fr.get(F_EFF_ADDR), 0x1000);
    }
}
