//! The seven steps of instruction execution.
//!
//! The paper's highest level of semantic detail exposes seven interface
//! calls per instruction: fetch, decode, operand fetch, evaluate, memory,
//! writeback, and exception. Every lower level of semantic detail is a
//! grouping of these steps into fewer calls.

use std::fmt;

/// One step of instruction execution, in architectural order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum Step {
    /// PC translation and instruction fetch.
    Fetch = 0,
    /// Instruction decode: opcode, operand identifiers, immediates.
    Decode = 1,
    /// Reading source operands from architectural state.
    OperandFetch = 2,
    /// Functional-unit evaluation: ALU, effective address, branch resolution.
    Evaluate = 3,
    /// Memory access (loads and stores).
    Memory = 4,
    /// Writing destination operands back to architectural state.
    Writeback = 5,
    /// Exception detection and system-call emulation.
    Exception = 6,
}

impl Step {
    /// All steps, in execution order.
    pub const ALL: [Step; 7] = [
        Step::Fetch,
        Step::Decode,
        Step::OperandFetch,
        Step::Evaluate,
        Step::Memory,
        Step::Writeback,
        Step::Exception,
    ];

    /// Number of steps.
    pub const COUNT: usize = 7;

    /// Zero-based index of the step in execution order.
    #[inline]
    pub const fn index(self) -> usize {
        self as usize
    }

    /// The step after this one, if any.
    pub const fn next(self) -> Option<Step> {
        match self {
            Step::Fetch => Some(Step::Decode),
            Step::Decode => Some(Step::OperandFetch),
            Step::OperandFetch => Some(Step::Evaluate),
            Step::Evaluate => Some(Step::Memory),
            Step::Memory => Some(Step::Writeback),
            Step::Writeback => Some(Step::Exception),
            Step::Exception => None,
        }
    }

    /// Short specification-level name (`operand_fetch`, ...).
    pub const fn name(self) -> &'static str {
        match self {
            Step::Fetch => "fetch",
            Step::Decode => "decode",
            Step::OperandFetch => "operand_fetch",
            Step::Evaluate => "evaluate",
            Step::Memory => "memory",
            Step::Writeback => "writeback",
            Step::Exception => "exception",
        }
    }
}

impl fmt::Display for Step {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_is_execution_order() {
        let mut prev: Option<Step> = None;
        for (i, s) in Step::ALL.into_iter().enumerate() {
            assert_eq!(s.index(), i);
            if let Some(p) = prev {
                assert_eq!(p.next(), Some(s));
                assert!(p < s);
            }
            prev = Some(s);
        }
        assert_eq!(Step::Exception.next(), None);
        assert_eq!(Step::ALL.len(), Step::COUNT);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = Step::ALL.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Step::COUNT);
    }
}
