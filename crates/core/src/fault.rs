//! Architectural faults reported through the functional interface.

use lis_mem::{AccessKind, MemFault};
use std::fmt;

/// A fault raised while executing one dynamic instruction.
///
/// Faults are *information*, not errors: they are part of the minimal
/// informational detail of every interface (the paper's `Min` level includes
/// faults), and the timing simulator decides what to do with them. The
/// synthesized simulators stop the current instruction at the faulting step
/// and report the fault in the dynamic-instruction record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Fault {
    /// The fetched bits decode to no instruction in the ISA description.
    IllegalInstruction {
        /// PC of the undecodable instruction.
        pc: u64,
        /// The raw bits.
        bits: u32,
    },
    /// Instruction fetch touched an unmapped or misaligned address.
    InstrAccess {
        /// The faulting fetch address.
        addr: u64,
    },
    /// A data access touched an unmapped address.
    DataAccess {
        /// The faulting data address.
        addr: u64,
    },
    /// A data access was not naturally aligned.
    Unaligned {
        /// The faulting data address.
        addr: u64,
    },
    /// Integer arithmetic overflow in a trapping instruction variant.
    ArithOverflow,
    /// Division by zero in an ISA whose divide instruction traps.
    DivideByZero,
    /// A system call requested something the OS emulator cannot do.
    SyscallError {
        /// The syscall number as presented by the guest.
        num: u64,
    },
    /// An explicit breakpoint/trap instruction.
    Breakpoint {
        /// PC of the trap instruction.
        pc: u64,
    },
}

impl Fault {
    /// Converts a raw memory fault into an architectural fault.
    pub fn from_mem(f: MemFault) -> Fault {
        match f.kind() {
            AccessKind::Fetch => Fault::InstrAccess { addr: f.addr() },
            _ => match f {
                MemFault::Unaligned { addr, .. } => Fault::Unaligned { addr },
                MemFault::OutOfRange { addr, .. } => Fault::DataAccess { addr },
            },
        }
    }
}

impl From<MemFault> for Fault {
    fn from(f: MemFault) -> Fault {
        Fault::from_mem(f)
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Fault::IllegalInstruction { pc, bits } => {
                write!(f, "illegal instruction {bits:#010x} at {pc:#x}")
            }
            Fault::InstrAccess { addr } => write!(f, "instruction access fault at {addr:#x}"),
            Fault::DataAccess { addr } => write!(f, "data access fault at {addr:#x}"),
            Fault::Unaligned { addr } => write!(f, "unaligned data access at {addr:#x}"),
            Fault::ArithOverflow => f.write_str("arithmetic overflow trap"),
            Fault::DivideByZero => f.write_str("integer divide by zero"),
            Fault::SyscallError { num } => write!(f, "unsupported system call {num}"),
            Fault::Breakpoint { pc } => write!(f, "breakpoint at {pc:#x}"),
        }
    }
}

impl std::error::Error for Fault {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_fault_mapping() {
        let f = MemFault::OutOfRange { addr: 0x10, kind: AccessKind::Fetch };
        assert_eq!(Fault::from(f), Fault::InstrAccess { addr: 0x10 });
        let f = MemFault::OutOfRange { addr: 0x10, kind: AccessKind::Store };
        assert_eq!(Fault::from(f), Fault::DataAccess { addr: 0x10 });
        let f = MemFault::Unaligned { addr: 0x11, size: 4, kind: AccessKind::Load };
        assert_eq!(Fault::from(f), Fault::Unaligned { addr: 0x11 });
    }

    #[test]
    fn display_nonempty() {
        for fault in [
            Fault::IllegalInstruction { pc: 4, bits: 0 },
            Fault::ArithOverflow,
            Fault::SyscallError { num: 99 },
        ] {
            assert!(!fault.to_string().is_empty());
        }
    }
}
