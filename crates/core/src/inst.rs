//! Instruction definitions — the single specification.
//!
//! Each [`InstDef`] captures *everything* about one instruction exactly once:
//! its encoding, its declared operands, its per-step semantic actions, and
//! its inter-step dataflow. Every interface, at every level of detail, is
//! derived from these definitions; no instruction behaviour is ever written
//! twice.

use crate::exec::Exec;
use crate::fault::Fault;
use crate::field::{
    FieldId, F_BR_TAKEN, F_BR_TARGET, F_DEST1, F_DEST2, F_EFF_ADDR, F_IMM, F_SRC1, F_SRC2, F_SRC3,
};
use crate::operand::OperandSpec;
use crate::step::Step;
use std::fmt;

/// A semantic action: the code the specification attaches to one step of one
/// instruction (the paper's `action` construct).
///
/// # Errors
///
/// Actions return the architectural [`Fault`], if any, raised by the step.
pub type ActionFn = fn(&mut Exec<'_>) -> Result<(), Fault>;

/// The per-step actions of one instruction.
///
/// `fetch` has no slot: instruction fetch is identical for every instruction
/// and is provided by the engine. A `None` slot means the step does nothing
/// for this instruction (e.g. `memory` for an ALU operation).
#[derive(Clone, Copy, Default)]
pub struct StepActions {
    /// Extracts operand identifiers, immediates, and the opcode field.
    pub decode: Option<ActionFn>,
    /// Reads source operands through their accessors.
    pub operand_fetch: Option<ActionFn>,
    /// Computes results, effective addresses, and branch resolution.
    pub evaluate: Option<ActionFn>,
    /// Performs loads and stores.
    pub memory: Option<ActionFn>,
    /// Writes destination operands through their accessors.
    pub writeback: Option<ActionFn>,
    /// Raises traps and emulates system calls.
    pub exception: Option<ActionFn>,
}

impl StepActions {
    /// No actions at all (every slot `None`); the base for
    /// [`step_actions!`](crate::step_actions!).
    pub const NONE: StepActions = StepActions {
        decode: None,
        operand_fetch: None,
        evaluate: None,
        memory: None,
        writeback: None,
        exception: None,
    };

    /// The action for `step`, if any (`Fetch` always returns `None`; it is
    /// engine-provided).
    #[inline]
    pub fn action(&self, step: Step) -> Option<ActionFn> {
        match step {
            Step::Fetch => None,
            Step::Decode => self.decode,
            Step::OperandFetch => self.operand_fetch,
            Step::Evaluate => self.evaluate,
            Step::Memory => self.memory,
            Step::Writeback => self.writeback,
            Step::Exception => self.exception,
        }
    }

    /// The execution-time slots (operand fetch → exception) in step order —
    /// the chain every post-decode replay path runs. Decode is excluded: its
    /// results are pure functions of the instruction bits and are captured
    /// once at predecode time.
    #[inline]
    pub const fn exec_slots(&self) -> [Option<ActionFn>; 5] {
        [self.operand_fetch, self.evaluate, self.memory, self.writeback, self.exception]
    }

    /// Flattens the present execution-time actions into a dense array in
    /// step order, returning the filled prefix length. This is the
    /// direct-threaded chain a compiled backend dispatches over: absent
    /// slots are filtered out once at build time instead of being
    /// branch-tested on every execution.
    #[inline]
    pub fn flatten_exec(&self) -> ([ActionFn; 5], u8) {
        // The filler is never invoked (dispatch is bounded by the returned
        // length); it only keeps the array dense and `Copy`.
        fn unreached(_: &mut Exec<'_>) -> Result<(), Fault> {
            Ok(())
        }
        let mut chain: [ActionFn; 5] = [unreached; 5];
        let mut n = 0u8;
        for a in self.exec_slots().into_iter().flatten() {
            chain[n as usize] = a;
            n += 1;
        }
        (chain, n)
    }
}

impl fmt::Debug for StepActions {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut d = f.debug_struct("StepActions");
        for step in Step::ALL {
            if step != Step::Fetch {
                d.field(step.name(), &self.action(step).is_some());
            }
        }
        d.finish()
    }
}

/// Broad behavioural class of an instruction.
///
/// The class determines the *default* inter-step dataflow used by the
/// interface lint and gives timing simulators a coarse handle for modelling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstClass {
    /// Register/immediate computation.
    Alu,
    /// Memory load.
    Load,
    /// Memory store.
    Store,
    /// Conditional branch.
    Branch,
    /// Unconditional jump or call (may link).
    Jump,
    /// System call or trap.
    Syscall,
    /// No architectural effect.
    Nop,
}

impl InstClass {
    /// Short name for traces and stats.
    pub const fn name(self) -> &'static str {
        match self {
            InstClass::Alu => "alu",
            InstClass::Load => "load",
            InstClass::Store => "store",
            InstClass::Branch => "branch",
            InstClass::Jump => "jump",
            InstClass::Syscall => "syscall",
            InstClass::Nop => "nop",
        }
    }
}

impl fmt::Display for InstClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// What a dataflow edge carries between steps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlowItem {
    /// A named field value.
    Field(FieldId),
    /// The decoded operand identifiers (class + index).
    OperandIds,
}

impl fmt::Display for FlowItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowItem::Field(id) => match crate::field::COMMON_FIELDS.iter().find(|d| d.id == *id) {
                Some(d) => write!(f, "field `{}`", d.name),
                None => write!(f, "field {id}"),
            },
            FlowItem::OperandIds => f.write_str("operand identifiers"),
        }
    }
}

/// One inter-step dataflow edge: `item` is defined in step `def` and used in
/// step `used`. If a buildset places `def` and `used` in different interface
/// calls, `item` must be visible — the interface lint enforces exactly this.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Flow {
    /// What flows.
    pub item: FlowItem,
    /// Step that produces it.
    pub def: Step,
    /// Step that consumes it.
    pub used: Step,
}

/// Convenience constructor for flow tables.
pub const fn flow(item: FlowItem, def: Step, used: Step) -> Flow {
    Flow { item, def, used }
}

/// Builds a [`StepActions`] value naming only the steps an instruction uses.
///
/// ```
/// use lis_core::{step_actions, generic_operand_fetch, generic_writeback, StepActions};
///
/// const A: StepActions = step_actions! {
///     operand_fetch: generic_operand_fetch,
///     writeback: generic_writeback,
/// };
/// assert!(A.decode.is_none());
/// assert!(A.writeback.is_some());
/// ```
#[macro_export]
macro_rules! step_actions {
    ($($slot:ident: $f:expr),* $(,)?) => {
        $crate::StepActions {
            $($slot: Some($f),)*
            ..$crate::StepActions::NONE
        }
    };
}

const ALU_FLOWS: &[Flow] = &[
    flow(FlowItem::OperandIds, Step::Decode, Step::OperandFetch),
    flow(FlowItem::OperandIds, Step::Decode, Step::Writeback),
    flow(FlowItem::Field(F_IMM), Step::Decode, Step::Evaluate),
    flow(FlowItem::Field(F_SRC1), Step::OperandFetch, Step::Evaluate),
    flow(FlowItem::Field(F_SRC2), Step::OperandFetch, Step::Evaluate),
    flow(FlowItem::Field(F_SRC3), Step::OperandFetch, Step::Evaluate),
    flow(FlowItem::Field(F_DEST1), Step::Evaluate, Step::Writeback),
    flow(FlowItem::Field(F_DEST2), Step::Evaluate, Step::Writeback),
];

const LOAD_FLOWS: &[Flow] = &[
    flow(FlowItem::OperandIds, Step::Decode, Step::OperandFetch),
    flow(FlowItem::OperandIds, Step::Decode, Step::Writeback),
    flow(FlowItem::Field(F_IMM), Step::Decode, Step::Evaluate),
    flow(FlowItem::Field(F_SRC1), Step::OperandFetch, Step::Evaluate),
    flow(FlowItem::Field(F_SRC2), Step::OperandFetch, Step::Evaluate),
    flow(FlowItem::Field(F_EFF_ADDR), Step::Evaluate, Step::Memory),
    flow(FlowItem::Field(F_DEST1), Step::Memory, Step::Writeback),
    flow(FlowItem::Field(F_DEST2), Step::Evaluate, Step::Writeback),
];

const STORE_FLOWS: &[Flow] = &[
    flow(FlowItem::OperandIds, Step::Decode, Step::OperandFetch),
    flow(FlowItem::OperandIds, Step::Decode, Step::Writeback),
    flow(FlowItem::Field(F_IMM), Step::Decode, Step::Evaluate),
    flow(FlowItem::Field(F_SRC1), Step::OperandFetch, Step::Evaluate),
    flow(FlowItem::Field(F_SRC2), Step::OperandFetch, Step::Evaluate),
    flow(FlowItem::Field(F_SRC3), Step::OperandFetch, Step::Memory),
    flow(FlowItem::Field(F_EFF_ADDR), Step::Evaluate, Step::Memory),
    flow(FlowItem::Field(F_DEST2), Step::Evaluate, Step::Writeback),
];

const BRANCH_FLOWS: &[Flow] = &[
    flow(FlowItem::OperandIds, Step::Decode, Step::OperandFetch),
    flow(FlowItem::Field(F_IMM), Step::Decode, Step::Evaluate),
    flow(FlowItem::Field(F_SRC1), Step::OperandFetch, Step::Evaluate),
    flow(FlowItem::Field(F_SRC2), Step::OperandFetch, Step::Evaluate),
    flow(FlowItem::Field(F_BR_TAKEN), Step::Evaluate, Step::Evaluate),
    flow(FlowItem::Field(F_BR_TARGET), Step::Evaluate, Step::Evaluate),
];

const JUMP_FLOWS: &[Flow] = &[
    flow(FlowItem::OperandIds, Step::Decode, Step::OperandFetch),
    flow(FlowItem::OperandIds, Step::Decode, Step::Writeback),
    flow(FlowItem::Field(F_IMM), Step::Decode, Step::Evaluate),
    flow(FlowItem::Field(F_SRC1), Step::OperandFetch, Step::Evaluate),
    flow(FlowItem::Field(F_DEST1), Step::Evaluate, Step::Writeback),
];

const SYSCALL_FLOWS: &[Flow] = &[
    flow(FlowItem::OperandIds, Step::Decode, Step::OperandFetch),
    flow(FlowItem::OperandIds, Step::Decode, Step::Writeback),
    flow(FlowItem::Field(F_SRC1), Step::OperandFetch, Step::Exception),
    flow(FlowItem::Field(F_SRC2), Step::OperandFetch, Step::Exception),
    flow(FlowItem::Field(F_SRC3), Step::OperandFetch, Step::Exception),
    flow(FlowItem::Field(F_DEST1), Step::Exception, Step::Exception),
];

impl InstClass {
    /// The default inter-step dataflow for instructions of this class.
    pub const fn flows(self) -> &'static [Flow] {
        match self {
            InstClass::Alu => ALU_FLOWS,
            InstClass::Load => LOAD_FLOWS,
            InstClass::Store => STORE_FLOWS,
            InstClass::Branch => BRANCH_FLOWS,
            InstClass::Jump => JUMP_FLOWS,
            InstClass::Syscall => SYSCALL_FLOWS,
            InstClass::Nop => &[],
        }
    }
}

/// The complete, single specification of one instruction.
#[derive(Clone, Copy)]
pub struct InstDef {
    /// Mnemonic.
    pub name: &'static str,
    /// Behavioural class.
    pub class: InstClass,
    /// Encoding: an instruction word matches when `word & mask == bits`.
    pub mask: u32,
    /// Encoding match value (see `mask`).
    pub bits: u32,
    /// Declared operands (for documentation, stats, and the lint).
    pub operands: &'static [OperandSpec],
    /// Per-step semantic actions.
    pub actions: StepActions,
    /// Extra inter-step dataflow beyond the class defaults.
    pub extra_flows: &'static [Flow],
}

impl InstDef {
    /// Whether `word` matches this instruction's encoding.
    #[inline]
    pub fn matches(&self, word: u32) -> bool {
        word & self.mask == self.bits
    }

    /// All inter-step dataflow edges: class defaults plus extras.
    pub fn flows(&self) -> impl Iterator<Item = Flow> + '_ {
        self.class.flows().iter().chain(self.extra_flows).copied()
    }
}

impl fmt::Debug for InstDef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("InstDef")
            .field("name", &self.name)
            .field("class", &self.class)
            .field("mask", &format_args!("{:#010x}", self.mask))
            .field("bits", &format_args!("{:#010x}", self.bits))
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encoding_match() {
        let def = InstDef {
            name: "t",
            class: InstClass::Alu,
            mask: 0xfc00_0000,
            bits: 0x1000_0000,
            operands: &[],
            actions: StepActions::default(),
            extra_flows: &[],
        };
        assert!(def.matches(0x1000_0000));
        assert!(def.matches(0x13ff_ffff));
        assert!(!def.matches(0x2000_0000));
    }

    #[test]
    fn class_flows_are_ordered() {
        for class in [
            InstClass::Alu,
            InstClass::Load,
            InstClass::Store,
            InstClass::Branch,
            InstClass::Jump,
            InstClass::Syscall,
        ] {
            for f in class.flows() {
                assert!(f.def <= f.used, "{class}: def after use");
            }
        }
        assert!(InstClass::Nop.flows().is_empty());
    }

    #[test]
    fn flows_include_extras() {
        const EXTRA: &[Flow] = &[flow(FlowItem::Field(F_SRC1), Step::Decode, Step::Memory)];
        let def = InstDef {
            name: "t",
            class: InstClass::Nop,
            mask: 0,
            bits: 0,
            operands: &[],
            actions: StepActions::default(),
            extra_flows: EXTRA,
        };
        assert_eq!(def.flows().count(), 1);
    }

    #[test]
    fn step_actions_debug_lists_steps() {
        let txt = format!("{:?}", StepActions::default());
        assert!(txt.contains("writeback"));
    }
}
