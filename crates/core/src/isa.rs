//! The complete ISA specification object.

use crate::field::{FieldDesc, COMMON_FIELDS};
use crate::inst::InstDef;
use crate::operand::RegClassDef;
use lis_mem::Endian;
use std::fmt;

/// A complete single specification of an instruction set.
///
/// One static `IsaSpec` per ISA holds everything the toolkit knows about it:
/// every instruction definition, every register class and its accessors,
/// every declared field, and the byte-level conventions needed to fetch and
/// print instructions. All interfaces, assemblers, and simulators are
/// derived from this object.
#[derive(Clone, Copy)]
pub struct IsaSpec {
    /// ISA name (`alpha`, `arm`, `ppc`).
    pub name: &'static str,
    /// Architectural word width in bits (32 or 64).
    pub word_bits: u8,
    /// Byte order of data and instruction accesses.
    pub endian: Endian,
    /// Every instruction definition.
    pub insts: &'static [InstDef],
    /// Register classes and their accessors.
    pub reg_classes: &'static [RegClassDef],
    /// ISA-specific field descriptors (common fields are implicit).
    pub isa_fields: &'static [FieldDesc],
    /// Renders one instruction word as assembly for traces and debugging.
    pub disasm: fn(u32, u64) -> String,
    /// Mask applied to every PC value (truncates to 32 bits on 32-bit ISAs).
    pub pc_mask: u64,
    /// GPR index holding the stack pointer, for program loaders.
    pub sp_gpr: u8,
}

impl IsaSpec {
    /// Finds the instruction matching `word` by linear scan.
    ///
    /// The runtime builds an indexed decode table on top of this; the linear
    /// scan is the reference implementation and the fallback.
    pub fn decode(&self, word: u32) -> Option<u16> {
        self.insts.iter().position(|d| d.matches(word)).map(|i| i as u16)
    }

    /// The instruction definition at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range (indices come from
    /// [`IsaSpec::decode`] and are trusted).
    #[inline]
    pub fn inst(&self, index: u16) -> &InstDef {
        &self.insts[index as usize]
    }

    /// Number of instructions in the description.
    pub fn num_insts(&self) -> usize {
        self.insts.len()
    }

    /// All field descriptors: common fields followed by ISA-specific ones.
    pub fn all_fields(&self) -> impl Iterator<Item = &FieldDesc> {
        COMMON_FIELDS.iter().chain(self.isa_fields)
    }

    /// Architectural word mask (`u32::MAX` as u64 for 32-bit ISAs).
    #[inline]
    pub const fn word_mask(&self) -> u64 {
        if self.word_bits == 64 {
            u64::MAX
        } else {
            u32::MAX as u64
        }
    }

    /// Checks internal consistency of the description; called by ISA crate
    /// tests. Verifies encodings are self-consistent and unambiguous and
    /// that the description fits the engine's structural limits.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.insts.is_empty() {
            return Err("no instructions defined".into());
        }
        if self.insts.len() > u16::MAX as usize {
            return Err("too many instructions".into());
        }
        for (i, d) in self.insts.iter().enumerate() {
            if d.bits & !d.mask != 0 {
                return Err(format!("{}: match bits outside mask", d.name));
            }
            // Earlier definitions take priority, so a *later* definition
            // that can never match (shadowed by an earlier, more general
            // one) is a specification error.
            for e in &self.insts[..i] {
                let shared = d.mask & e.mask;
                if d.bits & shared == e.bits & shared && e.mask & !d.mask == 0 {
                    return Err(format!("{}: unreachable, shadowed by {}", d.name, e.name));
                }
            }
        }
        for d in self.isa_fields {
            if (d.id.0 as usize) < COMMON_FIELDS.len() {
                return Err(format!("ISA field {} overlaps common fields", d.name));
            }
        }
        for c in self.reg_classes {
            c.validate_backing()?;
        }
        Ok(())
    }
}

impl fmt::Debug for IsaSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("IsaSpec")
            .field("name", &self.name)
            .field("word_bits", &self.word_bits)
            .field("endian", &self.endian)
            .field("num_insts", &self.insts.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{InstClass, StepActions};

    fn dis(_w: u32, _pc: u64) -> String {
        String::new()
    }

    const INSTS: &[InstDef] = &[
        InstDef {
            name: "a",
            class: InstClass::Alu,
            mask: 0xff00_0000,
            bits: 0x0100_0000,
            operands: &[],
            actions: StepActions {
                decode: None,
                operand_fetch: None,
                evaluate: None,
                memory: None,
                writeback: None,
                exception: None,
            },
            extra_flows: &[],
        },
        InstDef {
            name: "b",
            class: InstClass::Alu,
            mask: 0xff00_0000,
            bits: 0x0200_0000,
            operands: &[],
            actions: StepActions {
                decode: None,
                operand_fetch: None,
                evaluate: None,
                memory: None,
                writeback: None,
                exception: None,
            },
            extra_flows: &[],
        },
    ];

    fn spec() -> IsaSpec {
        IsaSpec {
            name: "test",
            word_bits: 32,
            endian: Endian::Little,
            insts: INSTS,
            reg_classes: &[],
            isa_fields: &[],
            disasm: dis,
            pc_mask: u32::MAX as u64,
            sp_gpr: 30,
        }
    }

    #[test]
    fn decode_finds_first_match() {
        let s = spec();
        assert_eq!(s.decode(0x0100_0042), Some(0));
        assert_eq!(s.decode(0x0200_0000), Some(1));
        assert_eq!(s.decode(0x0300_0000), None);
    }

    #[test]
    fn validate_accepts_good_spec() {
        assert!(spec().validate().is_ok());
    }

    #[test]
    fn validate_rejects_shadowed_encoding() {
        static SHADOWED: &[InstDef] = &[
            InstDef {
                name: "wide",
                class: InstClass::Alu,
                mask: 0xf000_0000,
                bits: 0x1000_0000,
                operands: &[],
                actions: StepActions {
                    decode: None,
                    operand_fetch: None,
                    evaluate: None,
                    memory: None,
                    writeback: None,
                    exception: None,
                },
                extra_flows: &[],
            },
            InstDef {
                name: "narrow",
                class: InstClass::Alu,
                mask: 0xff00_0000,
                bits: 0x1200_0000,
                operands: &[],
                actions: StepActions {
                    decode: None,
                    operand_fetch: None,
                    evaluate: None,
                    memory: None,
                    writeback: None,
                    exception: None,
                },
                extra_flows: &[],
            },
        ];
        let mut s = spec();
        s.insts = SHADOWED;
        let err = s.validate().unwrap_err();
        assert!(err.contains("narrow"), "{err}");
    }

    #[test]
    fn word_mask_by_width() {
        let mut s = spec();
        assert_eq!(s.word_mask(), u32::MAX as u64);
        s.word_bits = 64;
        assert_eq!(s.word_mask(), u64::MAX);
    }
}
