//! Operating-system-call emulation.
//!
//! The paper's functional simulators emulate operating system calls so that
//! user-mode benchmark binaries run without a kernel. We define a small,
//! deterministic OS ABI shared by all three ISA descriptions; each ISA's
//! system-call instruction translates its register convention into a
//! [`SysCall`] and dispatches it here. Determinism (the tick counter advances
//! by one per query) makes program output bit-identical across interfaces
//! and ISAs, which the validation suites rely on.

use crate::fault::Fault;
use crate::state::ArchState;

/// The portable LIS system-call ABI.
///
/// Each ISA maps its own registers onto these calls; see the per-ISA
/// `os` modules for the conventions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SysCall {
    /// Terminate the program with an exit code.
    Exit(i64),
    /// Write `len` bytes starting at `addr` to the captured stdout.
    WriteStdout {
        /// Guest address of the buffer.
        addr: u64,
        /// Number of bytes.
        len: u64,
    },
    /// Write one byte to the captured stdout.
    PutChar(u8),
    /// Write a decimal rendering of the value plus a newline to stdout.
    PutUDec(u64),
    /// Write a hexadecimal rendering of the value plus a newline to stdout.
    PutUHex(u64),
    /// Move the heap break; returns the new break address.
    Brk(u64),
    /// Read the deterministic tick counter; each read advances it.
    Ticks,
}

/// Syscall numbers of the LIS OS ABI, shared by every ISA convention.
pub mod nr {
    /// `exit(code)`
    pub const EXIT: u64 = 1;
    /// `write_stdout(addr, len)`
    pub const WRITE: u64 = 2;
    /// `put_char(byte)`
    pub const PUTC: u64 = 3;
    /// `put_udec(value)`
    pub const PUTUDEC: u64 = 4;
    /// `put_uhex(value)`
    pub const PUTUHEX: u64 = 5;
    /// `brk(addr)`
    pub const BRK: u64 = 6;
    /// `ticks()`
    pub const TICKS: u64 = 7;
}

/// Decodes a `(number, arg0, arg1)` triple into a [`SysCall`].
///
/// # Errors
///
/// Returns [`Fault::SyscallError`] for unknown numbers.
pub fn decode_syscall(num: u64, arg0: u64, arg1: u64) -> Result<SysCall, Fault> {
    match num {
        nr::EXIT => Ok(SysCall::Exit(arg0 as i64)),
        nr::WRITE => Ok(SysCall::WriteStdout { addr: arg0, len: arg1 }),
        nr::PUTC => Ok(SysCall::PutChar(arg0 as u8)),
        nr::PUTUDEC => Ok(SysCall::PutUDec(arg0)),
        nr::PUTUHEX => Ok(SysCall::PutUHex(arg0)),
        nr::BRK => Ok(SysCall::Brk(arg0)),
        nr::TICKS => Ok(SysCall::Ticks),
        _ => Err(Fault::SyscallError { num }),
    }
}

/// State of the emulated operating system.
///
/// Kept outside [`ArchState`] so speculation checkpoints can snapshot and
/// restore it independently of register state.
#[derive(Debug, Clone, Default)]
pub struct OsState {
    /// Captured program output.
    pub stdout: Vec<u8>,
    /// Current heap break.
    pub brk: u64,
    /// Deterministic tick counter.
    pub ticks: u64,
    /// Number of system calls dispatched.
    pub syscall_count: u64,
}

/// A lightweight snapshot of [`OsState`] for speculation checkpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OsMark {
    stdout_len: usize,
    brk: u64,
    ticks: u64,
    syscall_count: u64,
}

impl OsState {
    /// Creates an OS state whose heap break starts at `brk`.
    pub fn new(brk: u64) -> OsState {
        OsState { stdout: Vec::new(), brk, ticks: 0, syscall_count: 0 }
    }

    /// Dispatches one system call against architectural state, returning the
    /// value the guest's return register should receive.
    ///
    /// # Errors
    ///
    /// Returns [`Fault::DataAccess`] (and friends) if a buffer address is
    /// invalid.
    pub fn dispatch(&mut self, call: SysCall, state: &mut ArchState) -> Result<u64, Fault> {
        self.syscall_count += 1;
        match call {
            SysCall::Exit(code) => {
                state.halted = true;
                state.exit_code = code;
                Ok(0)
            }
            SysCall::WriteStdout { addr, len } => {
                let mut buf = vec![0u8; len as usize];
                state.mem.read_bytes(addr, &mut buf)?;
                self.stdout.extend_from_slice(&buf);
                Ok(len)
            }
            SysCall::PutChar(b) => {
                self.stdout.push(b);
                Ok(1)
            }
            SysCall::PutUDec(v) => {
                let s = format!("{v}\n");
                self.stdout.extend_from_slice(s.as_bytes());
                Ok(s.len() as u64)
            }
            SysCall::PutUHex(v) => {
                let s = format!("{v:x}\n");
                self.stdout.extend_from_slice(s.as_bytes());
                Ok(s.len() as u64)
            }
            SysCall::Brk(addr) => {
                if addr != 0 {
                    self.brk = addr;
                }
                Ok(self.brk)
            }
            SysCall::Ticks => {
                self.ticks += 1;
                Ok(self.ticks)
            }
        }
    }

    /// Records a checkpoint of the OS state.
    pub fn mark(&self) -> OsMark {
        OsMark {
            stdout_len: self.stdout.len(),
            brk: self.brk,
            ticks: self.ticks,
            syscall_count: self.syscall_count,
        }
    }

    /// Rolls the OS state back to a previous [`OsMark`].
    pub fn rollback(&mut self, mark: OsMark) {
        self.stdout.truncate(mark.stdout_len);
        self.brk = mark.brk;
        self.ticks = mark.ticks;
        self.syscall_count = mark.syscall_count;
    }

    /// The captured stdout as UTF-8 (lossy), for tests and examples.
    pub fn stdout_utf8(&self) -> String {
        String::from_utf8_lossy(&self.stdout).into_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lis_mem::Endian;

    #[test]
    fn decode_known_and_unknown() {
        assert_eq!(decode_syscall(nr::EXIT, 3, 0).unwrap(), SysCall::Exit(3));
        assert_eq!(
            decode_syscall(nr::WRITE, 0x1000, 4).unwrap(),
            SysCall::WriteStdout { addr: 0x1000, len: 4 }
        );
        assert!(matches!(decode_syscall(99, 0, 0), Err(Fault::SyscallError { num: 99 })));
    }

    #[test]
    fn exit_halts() {
        let mut os = OsState::new(0x10000);
        let mut st = ArchState::new(Endian::Little);
        os.dispatch(SysCall::Exit(42), &mut st).unwrap();
        assert!(st.halted);
        assert_eq!(st.exit_code, 42);
    }

    #[test]
    fn stdout_capture_and_formatting() {
        let mut os = OsState::new(0);
        let mut st = ArchState::new(Endian::Little);
        st.mem.write_bytes(0x1000, b"hi").unwrap();
        os.dispatch(SysCall::WriteStdout { addr: 0x1000, len: 2 }, &mut st).unwrap();
        os.dispatch(SysCall::PutChar(b'!'), &mut st).unwrap();
        os.dispatch(SysCall::PutUDec(255), &mut st).unwrap();
        os.dispatch(SysCall::PutUHex(255), &mut st).unwrap();
        assert_eq!(os.stdout_utf8(), "hi!255\nff\n");
        assert_eq!(os.syscall_count, 4);
    }

    #[test]
    fn brk_and_ticks_are_deterministic() {
        let mut os = OsState::new(0x8000);
        let mut st = ArchState::new(Endian::Little);
        assert_eq!(os.dispatch(SysCall::Brk(0), &mut st).unwrap(), 0x8000);
        assert_eq!(os.dispatch(SysCall::Brk(0x9000), &mut st).unwrap(), 0x9000);
        assert_eq!(os.dispatch(SysCall::Ticks, &mut st).unwrap(), 1);
        assert_eq!(os.dispatch(SysCall::Ticks, &mut st).unwrap(), 2);
    }

    #[test]
    fn mark_rollback_restores_everything() {
        let mut os = OsState::new(0x8000);
        let mut st = ArchState::new(Endian::Little);
        os.dispatch(SysCall::PutChar(b'a'), &mut st).unwrap();
        let mark = os.mark();
        os.dispatch(SysCall::PutChar(b'b'), &mut st).unwrap();
        os.dispatch(SysCall::Ticks, &mut st).unwrap();
        os.dispatch(SysCall::Brk(0xf000), &mut st).unwrap();
        os.rollback(mark);
        assert_eq!(os.stdout_utf8(), "a");
        assert_eq!(os.ticks, 0);
        assert_eq!(os.brk, 0x8000);
        assert_eq!(os.syscall_count, 1);
    }

    #[test]
    fn write_faults_on_bad_address() {
        let mut os = OsState::new(0);
        let mut st = ArchState::new(Endian::Little);
        let err = os.dispatch(SysCall::WriteStdout { addr: 0x0, len: 8 }, &mut st).unwrap_err();
        assert!(matches!(err, Fault::DataAccess { .. }));
    }
}
