//! Operands and register-class accessors.
//!
//! The paper's `operand` construct attaches decoded operand identifiers to an
//! instruction and routes their reads and writes through *accessors* — the
//! functions that know how a register class maps onto architectural state.
//! Operand *identifiers* (class + index) are part of the `Decode`
//! informational level; operand *values* are ordinary fields
//! (`src1..src3`, `dest1..dest2`) and belong to the `All` level.

use crate::state::ArchState;
use std::fmt;

/// Maximum number of source operands per instruction.
pub const MAX_SRC: usize = 3;
/// Maximum number of destination operands per instruction.
pub const MAX_DEST: usize = 2;

/// Identifier of a register class within an ISA description.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RegClass(pub u8);

impl fmt::Display for RegClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rc{}", self.0)
    }
}

/// Declarative description of where a register class lives in the flat
/// [`ArchState`] register file.
///
/// The accessor *functions* say **how** to access a class; the backing says
/// **where** it is stored, so synthesized backends can lower ordinary
/// operands to direct register-file loads and stores instead of accessor
/// calls. Both halves come from the same specification line, and
/// [`RegClassDef::validate_backing`] cross-checks them at synthesis, so the
/// declaration can never drift from the functions it describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegBacking {
    /// Backed by `ArchState::gpr[index]`; written values are AND-masked
    /// with `write_mask`. `special`, when present, names one index with
    /// non-trivial accessor semantics (a hardwired zero register, a PC
    /// view) — operands on that index keep using the accessor functions.
    Gpr {
        /// Index excluded from direct lowering.
        special: Option<u16>,
        /// AND-mask applied to written values.
        write_mask: u64,
    },
    /// Backed by a single `ArchState::spr` slot; writes AND-masked
    /// likewise.
    Spr {
        /// The `spr` slot this class occupies.
        slot: u8,
        /// AND-mask applied to written values.
        write_mask: u64,
    },
}

/// How a register class reads and writes architectural state — the paper's
/// *accessor* construct. One definition per class per ISA.
#[derive(Clone, Copy)]
pub struct RegClassDef {
    /// Class name for diagnostics and disassembly (`gpr`, `cr`, `lr`, ...).
    pub name: &'static str,
    /// Number of registers in the class.
    pub count: u16,
    /// Reads register `idx` from architectural state.
    pub read: fn(&ArchState, u16) -> u64,
    /// Writes register `idx` in architectural state.
    pub write: fn(&mut ArchState, u16, u64),
    /// Where the class lives in the flat register file, if it admits direct
    /// lowering. `None` keeps the class opaque: only the accessor functions
    /// are ever used.
    pub backing: Option<RegBacking>,
}

impl RegClassDef {
    /// Cross-checks a declared [`RegBacking`] against the accessor
    /// functions by probing them on scratch state: writes through the
    /// accessor must land in the declared slot under the declared mask, and
    /// reads must observe direct stores to it. Classes without a backing
    /// pass trivially.
    ///
    /// # Errors
    ///
    /// Returns a description of the first observed divergence — a
    /// specification bug.
    pub fn validate_backing(&self) -> Result<(), String> {
        use crate::state::{NUM_GPR, NUM_SPR};
        let Some(backing) = self.backing else { return Ok(()) };
        let mut st = ArchState::new(lis_mem::Endian::Little);
        const PATS: [u64; 2] = [0xA5A5_5A5A_DEAD_BEEF, 0x0123_4567_89AB_CDEF];
        match backing {
            RegBacking::Gpr { special, write_mask } => {
                if self.count as usize > NUM_GPR {
                    return Err(format!(
                        "class `{}`: gpr backing but count {} exceeds the register file",
                        self.name, self.count
                    ));
                }
                for idx in [0, self.count / 2, self.count - 1] {
                    if Some(idx) == special {
                        continue;
                    }
                    for pat in PATS {
                        (self.write)(&mut st, idx, pat);
                        if st.gpr[idx as usize] != pat & write_mask {
                            return Err(format!(
                                "class `{}`: write accessor disagrees with gpr backing at {idx}",
                                self.name
                            ));
                        }
                        if (self.read)(&st, idx) != st.gpr[idx as usize] {
                            return Err(format!(
                                "class `{}`: read accessor disagrees with gpr backing at {idx}",
                                self.name
                            ));
                        }
                    }
                }
            }
            RegBacking::Spr { slot, write_mask } => {
                if slot as usize >= NUM_SPR {
                    return Err(format!(
                        "class `{}`: spr backing slot {slot} exceeds the register file",
                        self.name
                    ));
                }
                for pat in PATS {
                    (self.write)(&mut st, 0, pat);
                    if st.spr[slot as usize] != pat & write_mask {
                        return Err(format!(
                            "class `{}`: write accessor disagrees with spr slot {slot}",
                            self.name
                        ));
                    }
                    if (self.read)(&st, 0) != st.spr[slot as usize] {
                        return Err(format!(
                            "class `{}`: read accessor disagrees with spr slot {slot}",
                            self.name
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

impl fmt::Debug for RegClassDef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RegClassDef")
            .field("name", &self.name)
            .field("count", &self.count)
            .finish_non_exhaustive()
    }
}

/// One decoded operand reference: a register class and an index within it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct OperandRef {
    /// Register class.
    pub class: u8,
    /// Register index within the class.
    pub index: u16,
}

/// The decoded operand identifiers of one dynamic instruction.
///
/// Filled in by the decode step; consumed by the generic operand-fetch and
/// writeback actions and, when visible, published through the interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Operands {
    srcs: [OperandRef; MAX_SRC],
    dests: [OperandRef; MAX_DEST],
    nsrc: u8,
    ndest: u8,
}

impl Operands {
    /// An instruction with no operands.
    pub const fn new() -> Operands {
        Operands {
            srcs: [OperandRef { class: 0, index: 0 }; MAX_SRC],
            dests: [OperandRef { class: 0, index: 0 }; MAX_DEST],
            nsrc: 0,
            ndest: 0,
        }
    }

    /// Clears all operands (for frame reuse between instructions).
    #[inline]
    pub fn clear(&mut self) {
        self.nsrc = 0;
        self.ndest = 0;
    }

    /// Appends a source operand and returns its position.
    ///
    /// # Panics
    ///
    /// Panics if more than [`MAX_SRC`] sources are declared — that is a bug
    /// in an ISA description, not a runtime condition.
    #[inline]
    pub fn push_src(&mut self, class: RegClass, index: u16) -> usize {
        let i = self.nsrc as usize;
        assert!(i < MAX_SRC, "too many source operands");
        self.srcs[i] = OperandRef { class: class.0, index };
        self.nsrc += 1;
        i
    }

    /// Appends a destination operand and returns its position.
    ///
    /// # Panics
    ///
    /// Panics if more than [`MAX_DEST`] destinations are declared.
    #[inline]
    pub fn push_dest(&mut self, class: RegClass, index: u16) -> usize {
        let i = self.ndest as usize;
        assert!(i < MAX_DEST, "too many destination operands");
        self.dests[i] = OperandRef { class: class.0, index };
        self.ndest += 1;
        i
    }

    /// Source operands, in declaration order.
    #[inline]
    pub fn srcs(&self) -> &[OperandRef] {
        &self.srcs[..self.nsrc as usize]
    }

    /// Destination operands, in declaration order.
    #[inline]
    pub fn dests(&self) -> &[OperandRef] {
        &self.dests[..self.ndest as usize]
    }

    /// Number of source operands.
    #[inline]
    pub fn n_srcs(&self) -> usize {
        self.nsrc as usize
    }

    /// Number of destination operands.
    #[inline]
    pub fn n_dests(&self) -> usize {
        self.ndest as usize
    }
}

/// Direction of a declared operand in an instruction definition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OperandDir {
    /// Read at operand fetch.
    Src,
    /// Written at writeback.
    Dest,
}

/// Static declaration of an operand in an [`InstDef`](crate::InstDef) — used
/// for documentation, statistics, and the interface lint; the dynamic
/// identifiers come from the decode action at run time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OperandSpec {
    /// Operand name in the specification (`ra`, `rb`, ...).
    pub name: &'static str,
    /// Direction.
    pub dir: OperandDir,
    /// Register class the operand belongs to.
    pub class: RegClass,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_iterate() {
        let mut ops = Operands::new();
        assert_eq!(ops.push_src(RegClass(0), 3), 0);
        assert_eq!(ops.push_src(RegClass(0), 4), 1);
        assert_eq!(ops.push_dest(RegClass(1), 5), 0);
        assert_eq!(ops.n_srcs(), 2);
        assert_eq!(ops.n_dests(), 1);
        assert_eq!(ops.srcs()[1], OperandRef { class: 0, index: 4 });
        assert_eq!(ops.dests()[0], OperandRef { class: 1, index: 5 });
        ops.clear();
        assert_eq!(ops.n_srcs(), 0);
        assert!(ops.dests().is_empty());
    }

    #[test]
    #[should_panic(expected = "too many source operands")]
    fn src_overflow_panics() {
        let mut ops = Operands::new();
        for i in 0..=MAX_SRC as u16 {
            ops.push_src(RegClass(0), i);
        }
    }
}
