//! The PowerPC disassembler — derived from the same instruction table.

use crate::regs::reg_name;
use crate::semantics::INSTS;

/// Renders one instruction word as assembly.
pub fn disasm(word: u32, pc: u64) -> String {
    let Some(def) = INSTS.iter().find(|d| d.matches(word)) else {
        return format!(".word {word:#010x}");
    };
    let name = def.name;
    let rc = if word & 1 != 0 && (word >> 26) == 31 { "." } else { "" };
    let rt = reg_name(((word >> 21) & 31) as u16);
    let ra = reg_name(((word >> 16) & 31) as u16);
    let rb = reg_name(((word >> 11) & 31) as u16);
    let simm = (word & 0xffff) as u16 as i16;
    match name {
        "sc" => "sc".into(),
        "addi" | "addis" | "addic" | "subfic" | "mulli" => {
            format!("{name} {rt}, {ra}, {simm}")
        }
        "ori" | "oris" | "xori" | "xoris" | "andi." | "andis." => {
            format!("{name} {ra}, {rt}, {}", word & 0xffff)
        }
        "cmpwi" | "cmplwi" => {
            let crf = (word >> 23) & 7;
            format!("{name} cr{crf}, {ra}, {simm}")
        }
        "cmpw" | "cmplw" => {
            let crf = (word >> 23) & 7;
            format!("{name} cr{crf}, {ra}, {rb}")
        }
        "rlwinm" | "rlwimi" => {
            let sh = (word >> 11) & 31;
            let mb = (word >> 6) & 31;
            let me = (word >> 1) & 31;
            format!("{name}{} {ra}, {rt}, {sh}, {mb}, {me}", if word & 1 != 0 { "." } else { "" })
        }
        "rlwnm" => {
            let mb = (word >> 6) & 31;
            let me = (word >> 1) & 31;
            format!("rlwnm{} {ra}, {rt}, {rb}, {mb}, {me}", if word & 1 != 0 { "." } else { "" })
        }
        "b" => {
            let off = ((word & 0x03ff_fffc) << 6) as i32 >> 6;
            let target =
                if word & 2 != 0 { off as i64 as u64 } else { pc.wrapping_add(off as i64 as u64) };
            format!("b{} {target:#x}", if word & 1 != 0 { "l" } else { "" })
        }
        "bc" => {
            let bo = (word >> 21) & 31;
            let bi = (word >> 16) & 31;
            let off = (word & 0xfffc) as u16 as i16 as i64;
            let target = pc.wrapping_add(off as u64);
            format!("bc{} {bo}, {bi}, {target:#x}", if word & 1 != 0 { "l" } else { "" })
        }
        "bclr" => format!("bclr {}, {}", (word >> 21) & 31, (word >> 16) & 31),
        "bcctr" => format!("bcctr {}, {}", (word >> 21) & 31, (word >> 16) & 31),
        "mfspr" | "mtspr" => {
            let spr = ((word >> 16) & 0x1f) | (((word >> 11) & 0x1f) << 5);
            let sname = match spr {
                1 => "xer",
                8 => "lr",
                9 => "ctr",
                _ => "?",
            };
            if name == "mfspr" {
                format!("mf{sname} {rt}")
            } else {
                format!("mt{sname} {rt}")
            }
        }
        "mfcr" => format!("mfcr {rt}"),
        "neg" | "addze" => format!("{name}{rc} {rt}, {ra}"),
        "extsb" | "extsh" | "cntlzw" => format!("{name}{rc} {ra}, {rt}"),
        "srawi" => format!("srawi {ra}, {rt}, {}", (word >> 11) & 31),
        // loads/stores
        _ if def.class == lis_core::InstClass::Load || def.class == lis_core::InstClass::Store => {
            if (word >> 26) == 31 {
                format!("{name} {rt}, {ra}, {rb}")
            } else {
                format!("{name} {rt}, {simm}({ra})")
            }
        }
        // X-form logical / XO arithmetic
        _ => {
            if matches!(
                name,
                "and"
                    | "or"
                    | "xor"
                    | "nand"
                    | "nor"
                    | "andc"
                    | "orc"
                    | "eqv"
                    | "slw"
                    | "srw"
                    | "sraw"
            ) {
                format!("{name}{rc} {ra}, {rt}, {rb}")
            } else {
                format!("{name}{rc} {rt}, {ra}, {rb}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::PpcAsm;
    use lis_asm::assemble;

    fn round(line: &str) -> String {
        let img = assemble(&PpcAsm, line).unwrap();
        let w = u32::from_be_bytes(img.sections[0].bytes[0..4].try_into().unwrap());
        disasm(w, 0x1000)
    }

    #[test]
    fn round_trips() {
        assert_eq!(round("addi r3, r1, 8"), "addi r3, r1, 8");
        assert_eq!(round("add r3, r4, r5"), "add r3, r4, r5");
        assert_eq!(round("add. r3, r4, r5"), "add. r3, r4, r5");
        assert_eq!(round("or r3, r4, r5"), "or r3, r4, r5");
        assert_eq!(round("rlwinm r5, r6, 3, 0, 28"), "rlwinm r5, r6, 3, 0, 28");
        assert_eq!(round("lwz r4, 12(r1)"), "lwz r4, 12(r1)");
        assert_eq!(round("stwx r3, r4, r5"), "stwx r3, r4, r5");
        assert_eq!(round("x: b x"), "b 0x1000");
        assert_eq!(round("x: bdnz x"), "bc 16, 0, 0x1000");
        assert_eq!(round("blr"), "bclr 20, 0");
        assert_eq!(round("mflr r0"), "mflr r0");
        assert_eq!(round("sc"), "sc");
        assert_eq!(round("cmpwi cr1, r3, 5"), "cmpwi cr1, r3, 5");
        assert_eq!(disasm(0x0000_0000, 0), ".word 0x00000000");
    }
}
