//! PowerPC register classes and accessors.

use lis_core::{ArchState, RegBacking, RegClass, RegClassDef};

/// General-purpose registers (`r0`..`r31`).
pub const GPR: RegClass = RegClass(0);
/// The condition register (eight 4-bit fields).
pub const CR: RegClass = RegClass(1);
/// The link register.
pub const LR: RegClass = RegClass(2);
/// The count register.
pub const CTR: RegClass = RegClass(3);
/// The fixed-point exception register (CA bit used here).
pub const XER: RegClass = RegClass(4);

/// XER carry bit.
pub const XER_CA: u64 = 1 << 29;

fn read_gpr(st: &ArchState, idx: u16) -> u64 {
    st.gpr[idx as usize]
}

fn write_gpr(st: &mut ArchState, idx: u16, val: u64) {
    st.gpr[idx as usize] = val & 0xffff_ffff;
}

macro_rules! spr_class {
    ($read:ident, $write:ident, $slot:expr) => {
        fn $read(st: &ArchState, _idx: u16) -> u64 {
            st.spr[$slot]
        }
        fn $write(st: &mut ArchState, _idx: u16, val: u64) {
            st.spr[$slot] = val & 0xffff_ffff;
        }
    };
}

spr_class!(read_cr, write_cr, 0);
spr_class!(read_xer, write_xer, 1);
spr_class!(read_lr, write_lr, 2);
spr_class!(read_ctr, write_ctr, 3);

/// Register classes of the PowerPC description. Backings declare the
/// flat-file mapping (slot numbers match the `spr_class!` expansions above)
/// so compiled backends can lower ordinary operands to direct accesses.
pub const REG_CLASSES: &[RegClassDef] = &[
    RegClassDef {
        name: "gpr",
        count: 32,
        read: read_gpr,
        write: write_gpr,
        backing: Some(RegBacking::Gpr { special: None, write_mask: 0xffff_ffff }),
    },
    RegClassDef {
        name: "cr",
        count: 1,
        read: read_cr,
        write: write_cr,
        backing: Some(RegBacking::Spr { slot: 0, write_mask: 0xffff_ffff }),
    },
    RegClassDef {
        name: "lr",
        count: 1,
        read: read_lr,
        write: write_lr,
        backing: Some(RegBacking::Spr { slot: 2, write_mask: 0xffff_ffff }),
    },
    RegClassDef {
        name: "ctr",
        count: 1,
        read: read_ctr,
        write: write_ctr,
        backing: Some(RegBacking::Spr { slot: 3, write_mask: 0xffff_ffff }),
    },
    RegClassDef {
        name: "xer",
        count: 1,
        read: read_xer,
        write: write_xer,
        backing: Some(RegBacking::Spr { slot: 1, write_mask: 0xffff_ffff }),
    },
];

/// Parses a register name (already lower-cased): `rN` or `crN`.
pub fn parse_reg(name: &str) -> Option<u16> {
    if name == "sp" {
        return Some(1);
    }
    let n = name.strip_prefix('r')?;
    let v = n.parse::<u16>().ok()?;
    (v < 32).then_some(v)
}

/// Parses a condition-register field name `cr0`..`cr7`.
pub fn parse_crf(name: &str) -> Option<u16> {
    let n = name.strip_prefix("cr")?;
    let v = n.parse::<u16>().ok()?;
    (v < 8).then_some(v)
}

/// Canonical display name.
pub fn reg_name(idx: u16) -> String {
    format!("r{idx}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use lis_mem::Endian;

    #[test]
    fn gprs_are_32_bit() {
        let mut st = ArchState::new(Endian::Big);
        write_gpr(&mut st, 3, 0xf_0000_0001);
        assert_eq!(read_gpr(&st, 3), 1);
    }

    #[test]
    fn spr_slots_are_distinct() {
        let mut st = ArchState::new(Endian::Big);
        write_cr(&mut st, 0, 1);
        write_xer(&mut st, 0, 2);
        write_lr(&mut st, 0, 3);
        write_ctr(&mut st, 0, 4);
        assert_eq!(
            (read_cr(&st, 0), read_xer(&st, 0), read_lr(&st, 0), read_ctr(&st, 0)),
            (1, 2, 3, 4)
        );
    }

    #[test]
    fn names() {
        assert_eq!(parse_reg("r31"), Some(31));
        assert_eq!(parse_reg("sp"), Some(1));
        assert_eq!(parse_reg("r32"), None);
        assert_eq!(parse_crf("cr7"), Some(7));
        assert_eq!(parse_crf("cr8"), None);
        assert_eq!(parse_crf("r1"), None);
    }
}
