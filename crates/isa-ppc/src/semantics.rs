//! The single specification of the PowerPC (32-bit user-mode integer)
//! instruction set.
//!
//! Covered: D-form arithmetic and logical immediates, XO-form arithmetic
//! (including the CA-carrying `addic`/`adde`/`addze`/`subfic`/`subfe`),
//! X-form logicals, shifts (`slw`/`srw`/`sraw`/`srawi`), the rotate-and-mask
//! family (`rlwinm`/`rlwimi`/`rlwnm`), sign extension and `cntlzw`,
//! compares into any CR field, loads/stores (byte/half/word, update and
//! indexed forms, `lha`), the full `bc` machinery (CTR decrement + CR test),
//! `b`/`bclr`/`bcctr` with LK, `mfspr`/`mtspr`/`mfcr`, and `sc`.
//!
//! Subset notes: record (`.`) forms are supported on non-carrying X/XO/M
//! instructions only (carrying record forms would need three destination
//! operands); OE overflow forms are excluded; `divw`/`divwu` by zero yield
//! zero instead of an undefined value.

use crate::fields::{F_CA_OUT, F_CR_NIBBLE};
use crate::regs::{CR, CTR, GPR, LR, XER, XER_CA};
use lis_core::{
    flow, generic_operand_fetch, generic_writeback, step_actions, Exec, Fault, Flow, FlowItem,
    InstClass, InstDef, OperandDir, OperandSpec, Step, F_ALU_OUT, F_COND, F_DEST1, F_DEST2,
    F_EFF_ADDR, F_IMM, F_MEM_DATA, F_SRC1, F_SRC2, F_SRC3,
};

const M32: u64 = 0xffff_ffff;

// Encoding helpers --------------------------------------------------------

/// D-form mask: primary opcode only.
pub const D_MASK: u32 = 0xfc00_0000;
/// X/XO-form mask: primary opcode + extended opcode (bits 10:1).
pub const X_MASK: u32 = 0xfc00_07fe;
/// X/XO-form mask with the record bit pinned to zero (carrying ops).
pub const X_MASK_NORC: u32 = 0xfc00_07ff;

/// Builds D-form match bits.
pub const fn d_bits(op: u32) -> u32 {
    op << 26
}

/// Builds X/XO-form match bits for opcode 31 (or 19) with extended opcode.
pub const fn x_bits(op: u32, xop: u32) -> u32 {
    (op << 26) | (xop << 1)
}

#[inline]
fn rd_field(w: u32) -> u16 {
    ((w >> 21) & 31) as u16
}

#[inline]
fn ra_field(w: u32) -> u16 {
    ((w >> 16) & 31) as u16
}

#[inline]
fn rb_field(w: u32) -> u16 {
    ((w >> 11) & 31) as u16
}

#[inline]
fn simm(w: u32) -> u64 {
    (w & 0xffff) as u16 as i16 as i64 as u64
}

#[inline]
fn uimm(w: u32) -> u64 {
    (w & 0xffff) as u64
}

#[inline]
fn rc_bit(w: u32) -> bool {
    w & 1 != 0
}

// CR helpers ---------------------------------------------------------------

/// Computes the (LT, GT, EQ, SO) nibble for a signed 32-bit result.
fn cr_nibble_signed(res: u64, so: bool) -> u64 {
    let v = res as u32 as i32;
    let mut n = 0u64;
    if v < 0 {
        n |= 8;
    } else if v > 0 {
        n |= 4;
    } else {
        n |= 2;
    }
    if so {
        n |= 1;
    }
    n
}

fn cr_nibble_cmp_signed(a: i32, b: i32, so: bool) -> u64 {
    let mut n = if a < b {
        8
    } else if a > b {
        4
    } else {
        2
    };
    if so {
        n |= 1;
    }
    n
}

fn cr_nibble_cmp_unsigned(a: u32, b: u32, so: bool) -> u64 {
    let mut n = if a < b {
        8
    } else if a > b {
        4
    } else {
        2
    };
    if so {
        n |= 1;
    }
    n
}

/// Inserts `nibble` into CR field `crf` of `cr`.
fn cr_insert(cr: u64, crf: u16, nibble: u64) -> u64 {
    let shift = 28 - 4 * crf as u32;
    (cr & !(0xf << shift)) | (nibble << shift)
}

// Result plumbing ----------------------------------------------------------

/// Finishes a computational instruction: the result goes to `dest1`; with
/// Rc set, the CR0 nibble goes to `dest2` (the CR destination pushed at
/// decode).
fn finish(ex: &mut Exec<'_>, res: u64) {
    let res = res & M32;
    ex.set(F_ALU_OUT, res);
    ex.set(F_DEST1, res);
    if rc_bit(ex.header.instr_bits) {
        let so = ex.read_reg(XER.0, 0) & (1 << 31) != 0;
        let nib = cr_nibble_signed(res, so);
        ex.set(F_CR_NIBBLE, nib);
        let cr = ex.read_reg(CR.0, 0);
        ex.set(F_DEST2, cr_insert(cr, 0, nib));
    }
}

/// Finishes a carrying instruction: result to `dest1`, updated XER (with the
/// new CA) to `dest2`.
fn finish_carry(ex: &mut Exec<'_>, res: u64, carry: bool) {
    let res = res & M32;
    ex.set(F_ALU_OUT, res);
    ex.set(F_DEST1, res);
    ex.set(F_CA_OUT, carry as u64);
    let xer = ex.read_reg(XER.0, 0);
    ex.set(F_DEST2, if carry { xer | XER_CA } else { xer & !XER_CA });
}

// Decode actions -----------------------------------------------------------

/// `rD, rA|0, simm` arithmetic (addi family).
fn dec_d_arith(ex: &mut Exec<'_>) -> Result<(), Fault> {
    let w = ex.header.instr_bits;
    if ra_field(w) != 0 {
        ex.ops.push_src(GPR, ra_field(w));
    }
    ex.ops.push_dest(GPR, rd_field(w));
    ex.set(F_IMM, simm(w));
    Ok(())
}

/// `rD, rA, simm` carrying arithmetic (addic/subfic/mulli — rA literal 0 not
/// special here).
fn dec_d_carry(ex: &mut Exec<'_>) -> Result<(), Fault> {
    let w = ex.header.instr_bits;
    ex.ops.push_src(GPR, ra_field(w));
    ex.ops.push_dest(GPR, rd_field(w));
    ex.ops.push_dest(XER, 0);
    ex.set(F_IMM, simm(w));
    Ok(())
}

/// `rA, rS, uimm` logical immediates (rS sits in the rD slot).
fn dec_d_logic(ex: &mut Exec<'_>) -> Result<(), Fault> {
    let w = ex.header.instr_bits;
    ex.ops.push_src(GPR, rd_field(w));
    ex.ops.push_dest(GPR, ra_field(w));
    if matches!(w >> 26, 28 | 29) {
        ex.ops.push_dest(CR, 0); // andi./andis. always record
    }
    ex.set(F_IMM, uimm(w));
    Ok(())
}

/// `rD, rA, simm` plain register-immediate (mulli).
fn dec_d_ri(ex: &mut Exec<'_>) -> Result<(), Fault> {
    let w = ex.header.instr_bits;
    ex.ops.push_src(GPR, ra_field(w));
    ex.ops.push_dest(GPR, rd_field(w));
    ex.set(F_IMM, simm(w));
    Ok(())
}

/// XO-form `rD, rA, rB`.
fn dec_xo(ex: &mut Exec<'_>) -> Result<(), Fault> {
    let w = ex.header.instr_bits;
    ex.ops.push_src(GPR, ra_field(w));
    ex.ops.push_src(GPR, rb_field(w));
    ex.ops.push_dest(GPR, rd_field(w));
    if rc_bit(w) {
        ex.ops.push_dest(CR, 0);
    }
    Ok(())
}

/// XO-form carrying `rD, rA, rB` (+ XER in and out).
fn dec_xo_carry(ex: &mut Exec<'_>) -> Result<(), Fault> {
    let w = ex.header.instr_bits;
    ex.ops.push_src(GPR, ra_field(w));
    ex.ops.push_src(GPR, rb_field(w));
    ex.ops.push_src(XER, 0);
    ex.ops.push_dest(GPR, rd_field(w));
    ex.ops.push_dest(XER, 0);
    Ok(())
}

/// `rD, rA` unary XO (neg, addze).
fn dec_xo_unary(ex: &mut Exec<'_>) -> Result<(), Fault> {
    let w = ex.header.instr_bits;
    ex.ops.push_src(GPR, ra_field(w));
    if (w >> 1) & 0x3ff == 202 {
        ex.ops.push_src(XER, 0); // addze reads CA
        ex.ops.push_dest(GPR, rd_field(w));
        ex.ops.push_dest(XER, 0);
    } else {
        ex.ops.push_dest(GPR, rd_field(w));
        if rc_bit(w) {
            ex.ops.push_dest(CR, 0);
        }
    }
    Ok(())
}

/// X-form logical/shift `rA, rS, rB` (rS in the rD slot).
fn dec_x_logic(ex: &mut Exec<'_>) -> Result<(), Fault> {
    let w = ex.header.instr_bits;
    ex.ops.push_src(GPR, rd_field(w));
    ex.ops.push_src(GPR, rb_field(w));
    ex.ops.push_dest(GPR, ra_field(w));
    if rc_bit(w) {
        ex.ops.push_dest(CR, 0);
    }
    Ok(())
}

/// X-form unary `rA, rS` (extsb/extsh/cntlzw) and srawi (`rA, rS, sh`).
fn dec_x_unary(ex: &mut Exec<'_>) -> Result<(), Fault> {
    let w = ex.header.instr_bits;
    ex.ops.push_src(GPR, rd_field(w));
    ex.ops.push_dest(GPR, ra_field(w));
    if (w >> 1) & 0x3ff == 824 {
        // srawi carries.
        ex.ops.push_dest(XER, 0);
        ex.set(F_IMM, rb_field(w) as u64);
    } else if rc_bit(w) {
        ex.ops.push_dest(CR, 0);
    }
    Ok(())
}

/// sraw: `rA, rS, rB` with carry.
fn dec_sraw(ex: &mut Exec<'_>) -> Result<(), Fault> {
    let w = ex.header.instr_bits;
    ex.ops.push_src(GPR, rd_field(w));
    ex.ops.push_src(GPR, rb_field(w));
    ex.ops.push_dest(GPR, ra_field(w));
    ex.ops.push_dest(XER, 0);
    Ok(())
}

/// M-form rotates: rlwinm/rlwnm `rA, rS, ..`; rlwimi also reads rA.
fn dec_m(ex: &mut Exec<'_>) -> Result<(), Fault> {
    let w = ex.header.instr_bits;
    let op = w >> 26;
    ex.ops.push_src(GPR, rd_field(w));
    if op == 20 {
        ex.ops.push_src(GPR, ra_field(w)); // rlwimi inserts into rA
    } else if op == 23 {
        ex.ops.push_src(GPR, rb_field(w)); // rlwnm shifts by rB
    }
    ex.ops.push_dest(GPR, ra_field(w));
    if rc_bit(w) {
        ex.ops.push_dest(CR, 0);
    }
    Ok(())
}

/// Compares: `crfD, rA, rB` or `crfD, rA, simm` — read-modify-write CR.
fn dec_cmp(ex: &mut Exec<'_>) -> Result<(), Fault> {
    let w = ex.header.instr_bits;
    ex.ops.push_src(GPR, ra_field(w));
    if matches!(w >> 26, 31) {
        ex.ops.push_src(GPR, rb_field(w));
    } else {
        ex.set(F_IMM, if w >> 26 == 11 { simm(w) } else { uimm(w) });
    }
    ex.ops.push_src(CR, 0);
    ex.ops.push_dest(CR, 0);
    Ok(())
}

/// D-form loads: `rD, d(rA|0)`; update forms also write rA.
fn dec_load(ex: &mut Exec<'_>) -> Result<(), Fault> {
    let w = ex.header.instr_bits;
    if ra_field(w) != 0 {
        ex.ops.push_src(GPR, ra_field(w));
    }
    ex.ops.push_dest(GPR, rd_field(w));
    if is_update(w) {
        ex.ops.push_dest(GPR, ra_field(w));
    }
    ex.set(F_IMM, simm(w));
    Ok(())
}

/// D-form stores: `rS, d(rA|0)`.
fn dec_store(ex: &mut Exec<'_>) -> Result<(), Fault> {
    let w = ex.header.instr_bits;
    if ra_field(w) != 0 {
        ex.ops.push_src(GPR, ra_field(w));
    }
    ex.ops.push_src(GPR, rd_field(w)); // data
    if is_update(w) {
        ex.ops.push_dest(GPR, ra_field(w));
    }
    ex.set(F_IMM, simm(w));
    Ok(())
}

/// Whether a D-form memory opcode is an update form.
fn is_update(w: u32) -> bool {
    matches!(w >> 26, 33 | 35 | 41 | 37 | 39 | 45)
}

/// X-form indexed loads: `rD, rA|0, rB`.
fn dec_loadx(ex: &mut Exec<'_>) -> Result<(), Fault> {
    let w = ex.header.instr_bits;
    if ra_field(w) != 0 {
        ex.ops.push_src(GPR, ra_field(w));
    }
    ex.ops.push_src(GPR, rb_field(w));
    ex.ops.push_dest(GPR, rd_field(w));
    Ok(())
}

/// X-form indexed stores: `rS, rA|0, rB`.
fn dec_storex(ex: &mut Exec<'_>) -> Result<(), Fault> {
    let w = ex.header.instr_bits;
    if ra_field(w) != 0 {
        ex.ops.push_src(GPR, ra_field(w));
    }
    ex.ops.push_src(GPR, rd_field(w)); // data
    ex.ops.push_src(GPR, rb_field(w));
    Ok(())
}

fn dec_b(ex: &mut Exec<'_>) -> Result<(), Fault> {
    let w = ex.header.instr_bits;
    let off = ((w & 0x03ff_fffc) << 6) as i32 >> 6;
    ex.set(F_IMM, off as i64 as u64);
    if w & 1 != 0 {
        ex.ops.push_dest(LR, 0);
    }
    Ok(())
}

fn dec_bc(ex: &mut Exec<'_>) -> Result<(), Fault> {
    let w = ex.header.instr_bits;
    ex.ops.push_src(CR, 0);
    ex.ops.push_src(CTR, 0);
    let off = ((w & 0xfffc) as u16 as i16) as i64;
    ex.set(F_IMM, off as u64);
    let bo = (w >> 21) & 0x1f;
    if w & 1 != 0 {
        ex.ops.push_dest(LR, 0);
    }
    if bo & 4 == 0 {
        ex.ops.push_dest(CTR, 0);
    }
    Ok(())
}

fn dec_bclr(ex: &mut Exec<'_>) -> Result<(), Fault> {
    let w = ex.header.instr_bits;
    ex.ops.push_src(CR, 0);
    ex.ops.push_src(CTR, 0);
    ex.ops.push_src(LR, 0);
    let bo = (w >> 21) & 0x1f;
    if w & 1 != 0 {
        ex.ops.push_dest(LR, 0);
    }
    if bo & 4 == 0 {
        ex.ops.push_dest(CTR, 0);
    }
    Ok(())
}

fn dec_bcctr(ex: &mut Exec<'_>) -> Result<(), Fault> {
    let w = ex.header.instr_bits;
    ex.ops.push_src(CR, 0);
    ex.ops.push_src(CTR, 0);
    if w & 1 != 0 {
        ex.ops.push_dest(LR, 0);
    }
    Ok(())
}

fn dec_mfspr(ex: &mut Exec<'_>) -> Result<(), Fault> {
    let w = ex.header.instr_bits;
    let class = spr_class(w)?;
    ex.ops.push_src(class, 0);
    ex.ops.push_dest(GPR, rd_field(w));
    Ok(())
}

fn dec_mtspr(ex: &mut Exec<'_>) -> Result<(), Fault> {
    let w = ex.header.instr_bits;
    let class = spr_class(w)?;
    ex.ops.push_src(GPR, rd_field(w));
    ex.ops.push_dest(class, 0);
    Ok(())
}

fn spr_class(w: u32) -> Result<lis_core::RegClass, Fault> {
    let n = ((w >> 16) & 0x1f) | (((w >> 11) & 0x1f) << 5);
    match n {
        1 => Ok(XER),
        8 => Ok(LR),
        9 => Ok(CTR),
        _ => Err(Fault::IllegalInstruction { pc: 0, bits: w }),
    }
}

fn dec_mfcr(ex: &mut Exec<'_>) -> Result<(), Fault> {
    let w = ex.header.instr_bits;
    ex.ops.push_src(CR, 0);
    ex.ops.push_dest(GPR, rd_field(w));
    Ok(())
}

fn dec_sc(ex: &mut Exec<'_>) -> Result<(), Fault> {
    // LIS OS ABI on PowerPC: r0 = number, r3/r4 = arguments, result in r3.
    ex.ops.push_src(GPR, 0);
    ex.ops.push_src(GPR, 3);
    ex.ops.push_src(GPR, 4);
    ex.ops.push_dest(GPR, 3);
    Ok(())
}

// Evaluate actions ----------------------------------------------------------

/// rA|0 convention: src1 when rA != 0, literal zero otherwise.
fn base_or_zero(ex: &Exec<'_>) -> u64 {
    if ra_field(ex.header.instr_bits) == 0 {
        0
    } else {
        ex.get(F_SRC1)
    }
}

fn ev_addi(ex: &mut Exec<'_>) -> Result<(), Fault> {
    finish(ex, base_or_zero(ex).wrapping_add(ex.get(F_IMM)));
    Ok(())
}

fn ev_addis(ex: &mut Exec<'_>) -> Result<(), Fault> {
    finish(ex, base_or_zero(ex).wrapping_add(ex.get(F_IMM) << 16));
    Ok(())
}

fn ev_mulli(ex: &mut Exec<'_>) -> Result<(), Fault> {
    finish(ex, ex.get(F_SRC1).wrapping_mul(ex.get(F_IMM)));
    Ok(())
}

fn ev_addic(ex: &mut Exec<'_>) -> Result<(), Fault> {
    let a = ex.get(F_SRC1) & M32;
    let b = ex.get(F_IMM) & M32;
    let wide = a + b;
    finish_carry(ex, wide, wide > M32);
    Ok(())
}

fn ev_subfic(ex: &mut Exec<'_>) -> Result<(), Fault> {
    let a = ex.get(F_SRC1) & M32;
    let b = ex.get(F_IMM) & M32;
    // ¬a + imm + 1
    let wide = (!a & M32) + b + 1;
    finish_carry(ex, wide, wide > M32);
    Ok(())
}

macro_rules! xo_op {
    ($($fname:ident = $f:expr;)*) => {
        $(fn $fname(ex: &mut Exec<'_>) -> Result<(), Fault> {
            let a = ex.get(F_SRC1) & M32;
            let b = ex.get(F_SRC2) & M32;
            #[allow(clippy::redundant_closure_call)]
            let v: u64 = ($f)(a, b);
            finish(ex, v);
            Ok(())
        })*
    };
}

xo_op! {
    ev_add = |a: u64, b: u64| a.wrapping_add(b);
    ev_subf = |a: u64, b: u64| b.wrapping_sub(a);
    ev_mullw = |a: u64, b: u64| a.wrapping_mul(b);
    ev_mulhw = |a: u64, b: u64| (((a as u32 as i32 as i64) * (b as u32 as i32 as i64)) >> 32) as u64;
    ev_mulhwu = |a: u64, b: u64| (a * b) >> 32;
    ev_divw = |a: u64, b: u64| {
        let (a, b) = (a as u32 as i32, b as u32 as i32);
        if b == 0 || (a == i32::MIN && b == -1) { 0 } else { (a / b) as u32 as u64 }
    };
    ev_divwu = |a: u64, b: u64| if b == 0 { 0 } else { (a as u32 / b as u32) as u64 };
    ev_and = |a: u64, b: u64| a & b;
    ev_or = |a: u64, b: u64| a | b;
    ev_xor = |a: u64, b: u64| a ^ b;
    ev_nand = |a: u64, b: u64| !(a & b);
    ev_nor = |a: u64, b: u64| !(a | b);
    ev_andc = |a: u64, b: u64| a & !b;
    ev_orc = |a: u64, b: u64| a | !b;
    ev_eqv = |a: u64, b: u64| !(a ^ b);
    ev_slw = |a: u64, b: u64| {
        let sh = b & 0x3f;
        if sh > 31 { 0 } else { a << sh }
    };
    ev_srw = |a: u64, b: u64| {
        let sh = b & 0x3f;
        if sh > 31 { 0 } else { a >> sh }
    };
}

fn ev_adde(ex: &mut Exec<'_>) -> Result<(), Fault> {
    let a = ex.get(F_SRC1) & M32;
    let b = ex.get(F_SRC2) & M32;
    let ca = (ex.get(F_SRC3) & XER_CA != 0) as u64;
    let wide = a + b + ca;
    finish_carry(ex, wide, wide > M32);
    Ok(())
}

fn ev_subfe(ex: &mut Exec<'_>) -> Result<(), Fault> {
    let a = ex.get(F_SRC1) & M32;
    let b = ex.get(F_SRC2) & M32;
    let ca = (ex.get(F_SRC3) & XER_CA != 0) as u64;
    let wide = (!a & M32) + b + ca;
    finish_carry(ex, wide, wide > M32);
    Ok(())
}

fn ev_addze(ex: &mut Exec<'_>) -> Result<(), Fault> {
    let a = ex.get(F_SRC1) & M32;
    let ca = (ex.get(F_SRC2) & XER_CA != 0) as u64;
    let wide = a + ca;
    finish_carry(ex, wide, wide > M32);
    Ok(())
}

fn ev_neg(ex: &mut Exec<'_>) -> Result<(), Fault> {
    finish(ex, (ex.get(F_SRC1) as u32).wrapping_neg() as u64);
    Ok(())
}

macro_rules! d_logic {
    ($($fname:ident = $f:expr;)*) => {
        $(fn $fname(ex: &mut Exec<'_>) -> Result<(), Fault> {
            let s = ex.get(F_SRC1) & M32;
            let i = ex.get(F_IMM);
            #[allow(clippy::redundant_closure_call)]
            let v: u64 = ($f)(s, i);
            // andi./andis. always record; the others never do (their low bit
            // is part of the immediate, so `finish` would misfire).
            let res = v & M32;
            ex.set(F_ALU_OUT, res);
            ex.set(F_DEST1, res);
            if matches!(ex.header.instr_bits >> 26, 28 | 29) {
                let so = ex.read_reg(XER.0, 0) & (1 << 31) != 0;
                let nib = cr_nibble_signed(res, so);
                ex.set(F_CR_NIBBLE, nib);
                let cr = ex.read_reg(CR.0, 0);
                ex.set(F_DEST2, cr_insert(cr, 0, nib));
            }
            Ok(())
        })*
    };
}

d_logic! {
    ev_ori = |s: u64, i: u64| s | i;
    ev_oris = |s: u64, i: u64| s | (i << 16);
    ev_xori = |s: u64, i: u64| s ^ i;
    ev_xoris = |s: u64, i: u64| s ^ (i << 16);
    ev_andi = |s: u64, i: u64| s & i;
    ev_andis = |s: u64, i: u64| s & (i << 16);
}

fn ev_extsb(ex: &mut Exec<'_>) -> Result<(), Fault> {
    finish(ex, ex.get(F_SRC1) as u8 as i8 as i64 as u64);
    Ok(())
}

fn ev_extsh(ex: &mut Exec<'_>) -> Result<(), Fault> {
    finish(ex, ex.get(F_SRC1) as u16 as i16 as i64 as u64);
    Ok(())
}

fn ev_cntlzw(ex: &mut Exec<'_>) -> Result<(), Fault> {
    finish(ex, (ex.get(F_SRC1) as u32).leading_zeros() as u64);
    Ok(())
}

fn ev_sraw(ex: &mut Exec<'_>) -> Result<(), Fault> {
    let s = ex.get(F_SRC1) as u32 as i32;
    let sh = (ex.get(F_SRC2) & 0x3f) as u32;
    let (res, ca) = if sh > 31 {
        let sign = s < 0;
        (if sign { M32 } else { 0 }, sign)
    } else {
        let res = ((s as i64) >> sh) as u64 & M32;
        let lost = sh > 0 && s < 0 && (s as u32) << (32 - sh) != 0;
        (res, lost)
    };
    finish_carry(ex, res, ca);
    Ok(())
}

fn ev_srawi(ex: &mut Exec<'_>) -> Result<(), Fault> {
    let s = ex.get(F_SRC1) as u32 as i32;
    let sh = (ex.get(F_IMM) & 31) as u32;
    let res = ((s as i64) >> sh) as u64 & M32;
    let lost = sh > 0 && s < 0 && (s as u32) << (32 - sh) != 0;
    finish_carry(ex, res, lost);
    Ok(())
}

/// MASK(mb, me) in PowerPC bit numbering (bit 0 is the MSB).
fn ppc_mask(mb: u32, me: u32) -> u64 {
    let x = 0xffff_ffffu32;
    if mb <= me {
        ((x >> mb) & (x << (31 - me))) as u64
    } else {
        ((x >> mb) | (x << (31 - me))) as u64
    }
}

fn ev_rlwinm(ex: &mut Exec<'_>) -> Result<(), Fault> {
    let w = ex.header.instr_bits;
    let sh = (w >> 11) & 31;
    let mb = (w >> 6) & 31;
    let me = (w >> 1) & 31;
    let rot = (ex.get(F_SRC1) as u32).rotate_left(sh) as u64;
    finish(ex, rot & ppc_mask(mb, me));
    Ok(())
}

fn ev_rlwimi(ex: &mut Exec<'_>) -> Result<(), Fault> {
    let w = ex.header.instr_bits;
    let sh = (w >> 11) & 31;
    let mb = (w >> 6) & 31;
    let me = (w >> 1) & 31;
    let rot = (ex.get(F_SRC1) as u32).rotate_left(sh) as u64;
    let mask = ppc_mask(mb, me);
    let old = ex.get(F_SRC2) & M32;
    finish(ex, (rot & mask) | (old & !mask));
    Ok(())
}

fn ev_rlwnm(ex: &mut Exec<'_>) -> Result<(), Fault> {
    let w = ex.header.instr_bits;
    let mb = (w >> 6) & 31;
    let me = (w >> 1) & 31;
    let sh = (ex.get(F_SRC2) & 31) as u32;
    let rot = (ex.get(F_SRC1) as u32).rotate_left(sh) as u64;
    finish(ex, rot & ppc_mask(mb, me));
    Ok(())
}

macro_rules! cmp_op {
    ($($fname:ident = ($signed:expr, $reg:expr);)*) => {
        $(fn $fname(ex: &mut Exec<'_>) -> Result<(), Fault> {
            let w = ex.header.instr_bits;
            let crf = ((w >> 23) & 7) as u16;
            let a = ex.get(F_SRC1) & M32;
            let b = if $reg { ex.get(F_SRC2) & M32 } else { ex.get(F_IMM) & M32 };
            let cr_old = if $reg { ex.get(F_SRC3) } else { ex.get(F_SRC2) };
            let so = ex.read_reg(XER.0, 0) & (1 << 31) != 0;
            let nib = if $signed {
                cr_nibble_cmp_signed(a as u32 as i32, b as u32 as i32, so)
            } else {
                cr_nibble_cmp_unsigned(a as u32, b as u32, so)
            };
            ex.set(F_CR_NIBBLE, nib);
            ex.set(F_COND, nib);
            ex.set(F_DEST1, cr_insert(cr_old, crf, nib));
            Ok(())
        })*
    };
}

cmp_op! {
    ev_cmpwi = (true, false);
    ev_cmplwi = (false, false);
    ev_cmpw = (true, true);
    ev_cmplw = (false, true);
}

fn ev_ea_d(ex: &mut Exec<'_>) -> Result<(), Fault> {
    let ea = base_or_zero(ex).wrapping_add(ex.get(F_IMM)) & M32;
    ex.set(F_EFF_ADDR, ea);
    if is_update(ex.header.instr_bits) {
        ex.set(F_DEST2, ea); // update forms write the EA back to rA
    }
    Ok(())
}

fn ev_ea_d_store(ex: &mut Exec<'_>) -> Result<(), Fault> {
    let ea = base_or_zero(ex).wrapping_add(ex.get(F_IMM)) & M32;
    ex.set(F_EFF_ADDR, ea);
    if is_update(ex.header.instr_bits) {
        ex.set(F_DEST1, ea);
    }
    Ok(())
}

fn ev_ea_x(ex: &mut Exec<'_>) -> Result<(), Fault> {
    let w = ex.header.instr_bits;
    // srcs: [ra?] [rb] for loads, [ra?] [rs] [rb] for stores.
    let (base, index) =
        if ra_field(w) == 0 { (0, ex.get(F_SRC1)) } else { (ex.get(F_SRC1), ex.get(F_SRC2)) };
    ex.set(F_EFF_ADDR, base.wrapping_add(index) & M32);
    Ok(())
}

fn ev_ea_x_store(ex: &mut Exec<'_>) -> Result<(), Fault> {
    let w = ex.header.instr_bits;
    let (base, index) =
        if ra_field(w) == 0 { (0, ex.get(F_SRC2)) } else { (ex.get(F_SRC1), ex.get(F_SRC3)) };
    ex.set(F_EFF_ADDR, base.wrapping_add(index) & M32);
    Ok(())
}

macro_rules! mem_load {
    ($($fname:ident = ($size:expr, $signed:expr);)*) => {
        $(fn $fname(ex: &mut Exec<'_>) -> Result<(), Fault> {
            let v = ex.load(ex.get(F_EFF_ADDR), $size, $signed)? & M32;
            ex.set(F_MEM_DATA, v);
            ex.set(F_DEST1, v);
            Ok(())
        })*
    };
}

mem_load! {
    mem_lwz = (4, false);
    mem_lhz = (2, false);
    mem_lha = (2, true);
    mem_lbz = (1, false);
}

/// Stores read the data value from the slot decode placed it in: src2 for
/// D-form with a base, src1 when rA was 0, src2/src3 for X-form.
fn store_data_d(ex: &Exec<'_>) -> u64 {
    if ra_field(ex.header.instr_bits) == 0 {
        ex.get(F_SRC1)
    } else {
        ex.get(F_SRC2)
    }
}

macro_rules! mem_store_d {
    ($($fname:ident = $size:expr;)*) => {
        $(fn $fname(ex: &mut Exec<'_>) -> Result<(), Fault> {
            let v = store_data_d(ex) & M32;
            ex.set(F_MEM_DATA, v);
            ex.store(ex.get(F_EFF_ADDR), $size, v)
        })*
    };
}

mem_store_d! {
    mem_stw = 4;
    mem_sth = 2;
    mem_stb = 1;
}

fn store_data_x(ex: &Exec<'_>) -> u64 {
    if ra_field(ex.header.instr_bits) == 0 {
        // srcs: [rs, rb]
        ex.get(F_SRC1)
    } else {
        // srcs: [ra, rs, rb]
        ex.get(F_SRC2)
    }
}

macro_rules! mem_store_x {
    ($($fname:ident = $size:expr;)*) => {
        $(fn $fname(ex: &mut Exec<'_>) -> Result<(), Fault> {
            let v = store_data_x(ex) & M32;
            ex.set(F_MEM_DATA, v);
            ex.store(ex.get(F_EFF_ADDR), $size, v)
        })*
    };
}

mem_store_x! {
    mem_stwx = 4;
    mem_sthx = 2;
    mem_stbx = 1;
}

// Branches -------------------------------------------------------------

fn ev_b(ex: &mut Exec<'_>) -> Result<(), Fault> {
    let w = ex.header.instr_bits;
    if w & 1 != 0 {
        ex.set(F_DEST1, ex.header.pc.wrapping_add(4) & M32);
    }
    let off = ex.get(F_IMM);
    let target = if w & 2 != 0 { off } else { ex.header.pc.wrapping_add(off) };
    ex.take_branch(target & M32);
    Ok(())
}

/// The bc condition machinery, shared by bc/bclr/bcctr. Returns
/// `(taken, ctr_decremented, new_ctr)`.
fn bc_taken(ex: &mut Exec<'_>) -> (bool, bool, u64) {
    let w = ex.header.instr_bits;
    let bo = (w >> 21) & 0x1f;
    let bi = (w >> 16) & 0x1f;
    let cr = ex.get(F_SRC1);
    let mut ctr = ex.get(F_SRC2) & M32;
    let mut dec = false;
    let ctr_ok = if bo & 4 != 0 {
        true
    } else {
        ctr = ctr.wrapping_sub(1) & M32;
        dec = true;
        (ctr != 0) != (bo & 2 != 0)
    };
    let cond_ok = if bo & 16 != 0 {
        true
    } else {
        let bit = (cr >> (31 - bi)) & 1;
        bit == ((bo >> 3) & 1) as u64
    };
    (ctr_ok && cond_ok, dec, ctr)
}

/// Writes the LR/CTR destinations of a bc-family instruction in the order
/// decode declared them.
fn bc_dests(ex: &mut Exec<'_>, link: bool, dec: bool, new_ctr: u64) {
    let ret = ex.header.pc.wrapping_add(4) & M32;
    match (link, dec) {
        (true, true) => {
            ex.set(F_DEST1, ret);
            ex.set(F_DEST2, new_ctr);
        }
        (true, false) => ex.set(F_DEST1, ret),
        (false, true) => ex.set(F_DEST1, new_ctr),
        (false, false) => {}
    }
}

fn ev_bc(ex: &mut Exec<'_>) -> Result<(), Fault> {
    let w = ex.header.instr_bits;
    let (taken, dec, new_ctr) = bc_taken(ex);
    bc_dests(ex, w & 1 != 0, dec, new_ctr);
    if taken {
        let off = ex.get(F_IMM);
        let target = if w & 2 != 0 { off } else { ex.header.pc.wrapping_add(off) };
        ex.take_branch(target & M32);
    } else {
        ex.branch_not_taken();
    }
    Ok(())
}

fn ev_bclr(ex: &mut Exec<'_>) -> Result<(), Fault> {
    let w = ex.header.instr_bits;
    let (taken, dec, new_ctr) = bc_taken(ex);
    let lr = ex.get(F_SRC3) & !3;
    bc_dests(ex, w & 1 != 0, dec, new_ctr);
    if taken {
        ex.take_branch(lr & M32);
    } else {
        ex.branch_not_taken();
    }
    Ok(())
}

fn ev_bcctr(ex: &mut Exec<'_>) -> Result<(), Fault> {
    let w = ex.header.instr_bits;
    let (taken, _, _) = bc_taken(ex);
    if w & 1 != 0 {
        ex.set(F_DEST1, ex.header.pc.wrapping_add(4) & M32);
    }
    if taken {
        let target = ex.get(F_SRC2) & !3;
        ex.take_branch(target & M32);
    } else {
        ex.branch_not_taken();
    }
    Ok(())
}

// Moves and system call --------------------------------------------------

fn ev_mfspr(ex: &mut Exec<'_>) -> Result<(), Fault> {
    finish(ex, ex.get(F_SRC1));
    Ok(())
}

fn ev_mtspr(ex: &mut Exec<'_>) -> Result<(), Fault> {
    ex.set(F_DEST1, ex.get(F_SRC1) & M32);
    Ok(())
}

fn ev_mfcr(ex: &mut Exec<'_>) -> Result<(), Fault> {
    ex.set(F_DEST1, ex.get(F_SRC1) & M32);
    Ok(())
}

fn ex_sc(ex: &mut Exec<'_>) -> Result<(), Fault> {
    let ret = ex.syscall(ex.get(F_SRC1), ex.get(F_SRC2), ex.get(F_SRC3))?;
    ex.set(F_DEST1, ret & M32);
    ex.write_reg(GPR.0, 3, ret & M32);
    Ok(())
}

// The instruction table ----------------------------------------------------

const RD_D: OperandSpec = OperandSpec { name: "rd", dir: OperandDir::Dest, class: GPR };
const RA_S: OperandSpec = OperandSpec { name: "ra", dir: OperandDir::Src, class: GPR };
const RB_S: OperandSpec = OperandSpec { name: "rb", dir: OperandDir::Src, class: GPR };
const RS_S: OperandSpec = OperandSpec { name: "rs", dir: OperandDir::Src, class: GPR };
const RA_D: OperandSpec = OperandSpec { name: "ra", dir: OperandDir::Dest, class: GPR };
const CR_D: OperandSpec = OperandSpec { name: "cr", dir: OperandDir::Dest, class: CR };

const OPS_XO: &[OperandSpec] = &[RA_S, RB_S, RD_D, CR_D];
const OPS_XL: &[OperandSpec] = &[RS_S, RB_S, RA_D, CR_D];
const OPS_D: &[OperandSpec] = &[RA_S, RD_D];
const OPS_LOAD: &[OperandSpec] = &[RA_S, RD_D];
const OPS_STORE: &[OperandSpec] = &[RA_S, RS_S];

macro_rules! alu_inst {
    ($name:literal, $class:ident, $mask:expr, $bits:expr, $ops:expr, $dec:ident, $ev:ident) => {
        InstDef {
            name: $name,
            class: InstClass::$class,
            mask: $mask,
            bits: $bits,
            operands: $ops,
            actions: step_actions! {
                decode: $dec,
                operand_fetch: generic_operand_fetch,
                evaluate: $ev,
                writeback: generic_writeback,
            },
            extra_flows: &[],
        }
    };
}

macro_rules! load_inst {
    ($name:literal, $mask:expr, $bits:expr, $dec:ident, $ev:ident, $mem:ident) => {
        InstDef {
            name: $name,
            class: InstClass::Load,
            mask: $mask,
            bits: $bits,
            operands: OPS_LOAD,
            actions: step_actions! {
                decode: $dec,
                operand_fetch: generic_operand_fetch,
                evaluate: $ev,
                memory: $mem,
                writeback: generic_writeback,
            },
            extra_flows: &[],
        }
    };
}

macro_rules! store_inst {
    ($name:literal, $mask:expr, $bits:expr, $dec:ident, $ev:ident, $mem:ident) => {
        InstDef {
            name: $name,
            class: InstClass::Store,
            mask: $mask,
            bits: $bits,
            operands: OPS_STORE,
            actions: step_actions! {
                decode: $dec,
                operand_fetch: generic_operand_fetch,
                evaluate: $ev,
                memory: $mem,
                writeback: generic_writeback,
            },
            extra_flows: &[],
        }
    };
}

/// `bc` is the only Branch-class instruction with a writeback step: it may
/// write LR (link forms) and CTR (decrementing forms), both pushed as dest
/// operands at decode and valued at evaluate. The class flow table has no
/// edge into writeback, so without these declarations the step is invisible
/// to interface checking (lis-analyze flags it as LIS005 dead-step).
const BC_WRITEBACK_FLOWS: &[Flow] = &[
    flow(FlowItem::OperandIds, Step::Decode, Step::Writeback),
    flow(FlowItem::Field(F_DEST1), Step::Evaluate, Step::Writeback),
    flow(FlowItem::Field(F_DEST2), Step::Evaluate, Step::Writeback),
];

/// Every instruction of the PowerPC description.
pub const INSTS: &[InstDef] = &[
    // System call
    InstDef {
        name: "sc",
        class: InstClass::Syscall,
        mask: 0xfc00_0002,
        bits: d_bits(17) | 2,
        operands: &[],
        actions: step_actions! {
            decode: dec_sc,
            operand_fetch: generic_operand_fetch,
            exception: ex_sc,
        },
        extra_flows: &[],
    },
    // D-form arithmetic
    alu_inst!("mulli", Alu, D_MASK, d_bits(7), OPS_D, dec_d_ri, ev_mulli),
    alu_inst!("subfic", Alu, D_MASK, d_bits(8), OPS_D, dec_d_carry, ev_subfic),
    alu_inst!("addic", Alu, D_MASK, d_bits(12), OPS_D, dec_d_carry, ev_addic),
    alu_inst!("addi", Alu, D_MASK, d_bits(14), OPS_D, dec_d_arith, ev_addi),
    alu_inst!("addis", Alu, D_MASK, d_bits(15), OPS_D, dec_d_arith, ev_addis),
    // D-form compares
    alu_inst!("cmplwi", Alu, D_MASK, d_bits(10), OPS_D, dec_cmp, ev_cmplwi),
    alu_inst!("cmpwi", Alu, D_MASK, d_bits(11), OPS_D, dec_cmp, ev_cmpwi),
    // D-form logical
    alu_inst!("ori", Alu, D_MASK, d_bits(24), OPS_D, dec_d_logic, ev_ori),
    alu_inst!("oris", Alu, D_MASK, d_bits(25), OPS_D, dec_d_logic, ev_oris),
    alu_inst!("xori", Alu, D_MASK, d_bits(26), OPS_D, dec_d_logic, ev_xori),
    alu_inst!("xoris", Alu, D_MASK, d_bits(27), OPS_D, dec_d_logic, ev_xoris),
    alu_inst!("andi.", Alu, D_MASK, d_bits(28), OPS_D, dec_d_logic, ev_andi),
    alu_inst!("andis.", Alu, D_MASK, d_bits(29), OPS_D, dec_d_logic, ev_andis),
    // M-form rotates
    alu_inst!("rlwimi", Alu, D_MASK, d_bits(20), OPS_XL, dec_m, ev_rlwimi),
    alu_inst!("rlwinm", Alu, D_MASK, d_bits(21), OPS_XL, dec_m, ev_rlwinm),
    alu_inst!("rlwnm", Alu, D_MASK, d_bits(23), OPS_XL, dec_m, ev_rlwnm),
    // Branches
    InstDef {
        name: "b",
        class: InstClass::Jump,
        mask: D_MASK,
        bits: d_bits(18),
        operands: &[],
        actions: step_actions! {
            decode: dec_b,
            evaluate: ev_b,
            writeback: generic_writeback,
        },
        extra_flows: &[],
    },
    InstDef {
        name: "bc",
        class: InstClass::Branch,
        mask: D_MASK,
        bits: d_bits(16),
        operands: &[],
        actions: step_actions! {
            decode: dec_bc,
            operand_fetch: generic_operand_fetch,
            evaluate: ev_bc,
            writeback: generic_writeback,
        },
        extra_flows: BC_WRITEBACK_FLOWS,
    },
    InstDef {
        name: "bclr",
        class: InstClass::Jump,
        mask: 0xfc00_07fe,
        bits: x_bits(19, 16),
        operands: &[],
        actions: step_actions! {
            decode: dec_bclr,
            operand_fetch: generic_operand_fetch,
            evaluate: ev_bclr,
            writeback: generic_writeback,
        },
        extra_flows: &[],
    },
    InstDef {
        name: "bcctr",
        class: InstClass::Jump,
        mask: 0xfc00_07fe,
        bits: x_bits(19, 528),
        operands: &[],
        actions: step_actions! {
            decode: dec_bcctr,
            operand_fetch: generic_operand_fetch,
            evaluate: ev_bcctr,
            writeback: generic_writeback,
        },
        extra_flows: &[],
    },
    // D-form loads/stores
    load_inst!("lwz", D_MASK, d_bits(32), dec_load, ev_ea_d, mem_lwz),
    load_inst!("lwzu", D_MASK, d_bits(33), dec_load, ev_ea_d, mem_lwz),
    load_inst!("lbz", D_MASK, d_bits(34), dec_load, ev_ea_d, mem_lbz),
    load_inst!("lbzu", D_MASK, d_bits(35), dec_load, ev_ea_d, mem_lbz),
    load_inst!("lhz", D_MASK, d_bits(40), dec_load, ev_ea_d, mem_lhz),
    load_inst!("lhzu", D_MASK, d_bits(41), dec_load, ev_ea_d, mem_lhz),
    load_inst!("lha", D_MASK, d_bits(42), dec_load, ev_ea_d, mem_lha),
    store_inst!("stw", D_MASK, d_bits(36), dec_store, ev_ea_d_store, mem_stw),
    store_inst!("stwu", D_MASK, d_bits(37), dec_store, ev_ea_d_store, mem_stw),
    store_inst!("stb", D_MASK, d_bits(38), dec_store, ev_ea_d_store, mem_stb),
    store_inst!("stbu", D_MASK, d_bits(39), dec_store, ev_ea_d_store, mem_stb),
    store_inst!("sth", D_MASK, d_bits(44), dec_store, ev_ea_d_store, mem_sth),
    store_inst!("sthu", D_MASK, d_bits(45), dec_store, ev_ea_d_store, mem_sth),
    // X-form indexed loads/stores (opcode 31)
    load_inst!("lwzx", X_MASK, x_bits(31, 23), dec_loadx, ev_ea_x, mem_lwz),
    load_inst!("lbzx", X_MASK, x_bits(31, 87), dec_loadx, ev_ea_x, mem_lbz),
    load_inst!("lhzx", X_MASK, x_bits(31, 279), dec_loadx, ev_ea_x, mem_lhz),
    store_inst!("stwx", X_MASK, x_bits(31, 151), dec_storex, ev_ea_x_store, mem_stwx),
    store_inst!("stbx", X_MASK, x_bits(31, 215), dec_storex, ev_ea_x_store, mem_stbx),
    store_inst!("sthx", X_MASK, x_bits(31, 407), dec_storex, ev_ea_x_store, mem_sthx),
    // X-form compares
    alu_inst!("cmpw", Alu, X_MASK, x_bits(31, 0), OPS_XO, dec_cmp, ev_cmpw),
    alu_inst!("cmplw", Alu, X_MASK, x_bits(31, 32), OPS_XO, dec_cmp, ev_cmplw),
    // XO-form arithmetic
    alu_inst!("subfc", Alu, X_MASK_NORC, x_bits(31, 8), OPS_XO, dec_xo_carry, ev_subfe_c),
    alu_inst!("addc", Alu, X_MASK_NORC, x_bits(31, 10), OPS_XO, dec_xo_carry, ev_adde_c),
    alu_inst!("mulhwu", Alu, X_MASK, x_bits(31, 11), OPS_XO, dec_xo, ev_mulhwu),
    alu_inst!("subf", Alu, X_MASK, x_bits(31, 40), OPS_XO, dec_xo, ev_subf),
    alu_inst!("mulhw", Alu, X_MASK, x_bits(31, 75), OPS_XO, dec_xo, ev_mulhw),
    alu_inst!("neg", Alu, X_MASK, x_bits(31, 104), OPS_D, dec_xo_unary, ev_neg),
    alu_inst!("subfe", Alu, X_MASK_NORC, x_bits(31, 136), OPS_XO, dec_xo_carry, ev_subfe),
    alu_inst!("adde", Alu, X_MASK_NORC, x_bits(31, 138), OPS_XO, dec_xo_carry, ev_adde),
    alu_inst!("addze", Alu, X_MASK_NORC, x_bits(31, 202), OPS_D, dec_xo_unary, ev_addze),
    alu_inst!("mullw", Alu, X_MASK, x_bits(31, 235), OPS_XO, dec_xo, ev_mullw),
    alu_inst!("add", Alu, X_MASK, x_bits(31, 266), OPS_XO, dec_xo, ev_add),
    alu_inst!("divwu", Alu, X_MASK, x_bits(31, 459), OPS_XO, dec_xo, ev_divwu),
    alu_inst!("divw", Alu, X_MASK, x_bits(31, 491), OPS_XO, dec_xo, ev_divw),
    // X-form logical
    alu_inst!("slw", Alu, X_MASK, x_bits(31, 24), OPS_XL, dec_x_logic, ev_slw),
    alu_inst!("cntlzw", Alu, X_MASK, x_bits(31, 26), OPS_D, dec_x_unary, ev_cntlzw),
    alu_inst!("and", Alu, X_MASK, x_bits(31, 28), OPS_XL, dec_x_logic, ev_and),
    alu_inst!("andc", Alu, X_MASK, x_bits(31, 60), OPS_XL, dec_x_logic, ev_andc),
    alu_inst!("nor", Alu, X_MASK, x_bits(31, 124), OPS_XL, dec_x_logic, ev_nor),
    alu_inst!("eqv", Alu, X_MASK, x_bits(31, 284), OPS_XL, dec_x_logic, ev_eqv),
    alu_inst!("xor", Alu, X_MASK, x_bits(31, 316), OPS_XL, dec_x_logic, ev_xor),
    alu_inst!("orc", Alu, X_MASK, x_bits(31, 412), OPS_XL, dec_x_logic, ev_orc),
    alu_inst!("or", Alu, X_MASK, x_bits(31, 444), OPS_XL, dec_x_logic, ev_or),
    alu_inst!("nand", Alu, X_MASK, x_bits(31, 476), OPS_XL, dec_x_logic, ev_nand),
    alu_inst!("srw", Alu, X_MASK, x_bits(31, 536), OPS_XL, dec_x_logic, ev_srw),
    alu_inst!("sraw", Alu, X_MASK_NORC, x_bits(31, 792), OPS_XL, dec_sraw, ev_sraw),
    alu_inst!("srawi", Alu, X_MASK_NORC, x_bits(31, 824), OPS_D, dec_x_unary, ev_srawi),
    alu_inst!("extsh", Alu, X_MASK, x_bits(31, 922), OPS_D, dec_x_unary, ev_extsh),
    alu_inst!("extsb", Alu, X_MASK, x_bits(31, 954), OPS_D, dec_x_unary, ev_extsb),
    // SPR moves
    alu_inst!("mfcr", Alu, 0xfc00_07fe, x_bits(31, 19), OPS_D, dec_mfcr, ev_mfcr),
    alu_inst!("mfspr", Alu, 0xfc00_07fe, x_bits(31, 339), OPS_D, dec_mfspr, ev_mfspr),
    alu_inst!("mtspr", Alu, 0xfc00_07fe, x_bits(31, 467), OPS_D, dec_mtspr, ev_mtspr),
];

// subfc/addc are the carry-setting base forms: same semantics as
// adde/subfe but with no carry *in*.
fn ev_adde_c(ex: &mut Exec<'_>) -> Result<(), Fault> {
    let a = ex.get(F_SRC1) & M32;
    let b = ex.get(F_SRC2) & M32;
    let wide = a + b;
    finish_carry(ex, wide, wide > M32);
    Ok(())
}

fn ev_subfe_c(ex: &mut Exec<'_>) -> Result<(), Fault> {
    let a = ex.get(F_SRC1) & M32;
    let b = ex.get(F_SRC2) & M32;
    let wide = (!a & M32) + b + 1;
    finish_carry(ex, wide, wide > M32);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cr_helpers() {
        assert_eq!(cr_nibble_signed(0, false), 2);
        assert_eq!(cr_nibble_signed(5, false), 4);
        assert_eq!(cr_nibble_signed(0xffff_fff6, true), 9);
        assert_eq!(cr_nibble_cmp_signed(-1, 1, false), 8);
        assert_eq!(cr_nibble_cmp_unsigned(0xffff_ffff, 1, false), 4);
        let cr = cr_insert(0, 0, 0x8);
        assert_eq!(cr, 0x8000_0000);
        let cr = cr_insert(cr, 7, 0x2);
        assert_eq!(cr, 0x8000_0002);
        let cr = cr_insert(cr, 0, 0x4);
        assert_eq!(cr, 0x4000_0002);
    }

    #[test]
    fn masks() {
        assert_eq!(ppc_mask(0, 31), 0xffff_ffff);
        assert_eq!(ppc_mask(0, 0), 0x8000_0000);
        assert_eq!(ppc_mask(31, 31), 1);
        assert_eq!(ppc_mask(24, 31), 0xff);
        // Wrapped mask.
        assert_eq!(ppc_mask(30, 1), 0xc000_0003);
    }

    #[test]
    fn instruction_count() {
        assert_eq!(INSTS.len(), 73);
    }

    #[test]
    fn no_ambiguous_encodings() {
        for (i, a) in INSTS.iter().enumerate() {
            for b in &INSTS[i + 1..] {
                let shared = a.mask & b.mask;
                assert!(
                    a.bits & shared != b.bits & shared,
                    "{} and {} are ambiguous",
                    a.name,
                    b.name
                );
            }
        }
    }
}
