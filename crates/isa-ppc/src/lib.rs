//! # lis-isa-ppc — single specification of the PowerPC instruction set
//!
//! A 32-bit, big-endian, user-mode integer subset of PowerPC (the third
//! evaluated ISA): D/X/XO/M-form arithmetic and logic, the carry (CA)
//! machinery, the rotate-and-mask family, compares into any CR field, the
//! full `bc` branch machinery (CTR decrement + CR bit test), loads/stores
//! with update and indexed forms, SPR moves, and `sc`.
//!
//! System calls use the LIS OS ABI: number in `r0`, arguments in `r3`/`r4`,
//! result in `r3`, invoked by `sc`.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod asm;
pub mod disasm;
pub mod fields;
pub mod regs;
pub mod semantics;

use lis_core::{count_lines, IsaSpec, SpecStats};
use lis_mem::Endian;

pub use asm::PpcAsm;

static SPEC: IsaSpec = IsaSpec {
    name: "ppc",
    word_bits: 32,
    endian: Endian::Big,
    insts: semantics::INSTS,
    reg_classes: regs::REG_CLASSES,
    isa_fields: fields::PPC_FIELDS,
    disasm: disasm::disasm,
    pc_mask: 0xffff_fffc,
    sp_gpr: 1,
};

/// Returns the PowerPC ISA specification.
pub fn spec() -> &'static IsaSpec {
    &SPEC
}

/// Assembles PowerPC source into a loadable image.
///
/// # Errors
///
/// Returns the first assembly error with its line number.
///
/// # Examples
///
/// ```
/// let image = lis_isa_ppc::assemble("_start: addi r3, r1, 8\n")?;
/// assert_eq!(image.entry, 0x1000);
/// # Ok::<(), lis_asm::AsmError>(())
/// ```
pub fn assemble(src: &str) -> Result<lis_mem::Image, lis_asm::AsmError> {
    lis_asm::assemble(&PpcAsm, src)
}

/// Mechanical Table I statistics for the PowerPC description.
pub fn spec_stats() -> SpecStats {
    let isa = count_lines(include_str!("semantics.rs"))
        .add(count_lines(include_str!("regs.rs")))
        .add(count_lines(include_str!("fields.rs")));
    let tooling = count_lines(include_str!("asm.rs")).add(count_lines(include_str!("disasm.rs")));
    SpecStats {
        isa: "ppc",
        isa_description_lines: isa.code,
        os_support_lines: 0,
        tooling_lines: tooling.code,
        num_instructions: semantics::INSTS.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_validates() {
        spec().validate().unwrap();
    }

    #[test]
    fn stats_are_plausible() {
        let s = spec_stats();
        assert_eq!(s.num_instructions, 73);
        assert!(s.isa_description_lines > 400);
    }
}
