//! PowerPC-specific fields.

use lis_core::{FieldDesc, FieldId};

/// The 4-bit condition nibble (LT,GT,EQ,SO) computed by a compare or a
/// record-form (`.`) instruction, before insertion into the CR.
pub const F_CR_NIBBLE: FieldId = FieldId(16);
/// The carry bit produced by carrying arithmetic (`addic`, `adde`, `sraw`...).
pub const F_CA_OUT: FieldId = FieldId(17);

/// Descriptors for the PowerPC-specific fields.
pub const PPC_FIELDS: &[FieldDesc] = &[
    FieldDesc { id: F_CR_NIBBLE, name: "cr_nibble", doc: "condition nibble before CR insert" },
    FieldDesc { id: F_CA_OUT, name: "ca_out", doc: "carry out of carrying arithmetic" },
];
