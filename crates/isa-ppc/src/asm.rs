//! The PowerPC assembler — encodings derived from the instruction table.
//!
//! Standard syntax: `addi r3, r1, 8`, `lwz r4, 12(r1)`, `stwu r1, -16(r1)`,
//! `bc 16, 0, loop`, `bdnz loop`, `beq cr1, out`, `rlwinm r5, r6, 3, 0, 28`.
//! Record forms take the trailing dot (`add. r3, r4, r5`). The usual
//! pseudo-instructions are provided: `li`, `lis`, `la`, `mr`, `not`, `nop`,
//! `blr`, `bctr`, `bdnz`, `bdz`, `beq`/`bne`/`blt`/`ble`/`bgt`/`bge`,
//! `mflr`/`mtlr`/`mfctr`/`mtctr`/`mfxer`/`mtxer`, `slwi`/`srwi`, `subi`,
//! `cmpw`/`cmpwi` with an optional CR field.

use crate::regs::{parse_crf, parse_reg};
use crate::semantics::{d_bits, x_bits};
use lis_asm::{EncodeCtx, IsaAssembler, Operand};
use lis_mem::Endian;

/// The PowerPC [`IsaAssembler`].
#[derive(Debug, Default, Clone, Copy)]
pub struct PpcAsm;

fn reg(op: &Operand, what: &str) -> Result<u32, String> {
    op.reg()
        .and_then(parse_reg)
        .map(u32::from)
        .ok_or_else(|| format!("expected register for {what}"))
}

fn imm(op: &Operand, what: &str) -> Result<i64, String> {
    op.imm().ok_or_else(|| format!("expected immediate for {what}"))
}

fn simm16(v: i64) -> Result<u32, String> {
    if !(-32768..=32767).contains(&v) {
        return Err(format!("immediate {v} out of signed 16-bit range"));
    }
    Ok(v as u16 as u32)
}

fn uimm16(v: i64) -> Result<u32, String> {
    if !(0..=0xffff).contains(&v) {
        return Err(format!("immediate {v} out of unsigned 16-bit range"));
    }
    Ok(v as u32)
}

fn field5(v: i64, what: &str) -> Result<u32, String> {
    if !(0..32).contains(&v) {
        return Err(format!("{what} {v} out of range 0..32"));
    }
    Ok(v as u32)
}

fn d_form(op: u32, rt: u32, ra: u32, imm: u32) -> u32 {
    d_bits(op) | rt << 21 | ra << 16 | imm
}

fn x_form(op: u32, xop: u32, rt: u32, ra: u32, rb: u32, rc: bool) -> u32 {
    x_bits(op, xop) | rt << 21 | ra << 16 | rb << 11 | rc as u32
}

fn branch_off(target: i64, addr: u64, bits: u32) -> Result<u32, String> {
    let off = target - addr as i64;
    if off % 4 != 0 {
        return Err("branch target not word-aligned".into());
    }
    let limit = 1i64 << (bits - 1);
    if !(-limit..limit).contains(&off) {
        return Err(format!("branch offset {off} out of range"));
    }
    Ok((off as u32) & (((1u32 << bits) - 1) & !3))
}

/// `beq`-family condition encodings: `(BO, BI-within-field)`.
const COND_BRANCHES: &[(&str, u32, u32)] = &[
    ("blt", 12, 0),
    ("bgt", 12, 1),
    ("beq", 12, 2),
    ("bso", 12, 3),
    ("bge", 4, 0),
    ("ble", 4, 1),
    ("bne", 4, 2),
    ("bns", 4, 3),
];

impl IsaAssembler for PpcAsm {
    fn name(&self) -> &'static str {
        "ppc"
    }

    fn endian(&self) -> Endian {
        Endian::Big
    }

    fn is_reg(&self, name: &str) -> bool {
        parse_reg(name).is_some() || parse_crf(name).is_some()
    }

    fn encode(&self, mn: &str, ops: &[Operand], ctx: &EncodeCtx<'_>) -> Result<u32, String> {
        let (base, rc) = match mn.strip_suffix('.') {
            Some(b) => (b, true),
            None => (mn, false),
        };
        let rc_ok = |allowed: bool| -> Result<bool, String> {
            if rc && !allowed {
                Err(format!("`{mn}`: record form not supported here"))
            } else {
                Ok(rc)
            }
        };

        // Condition-branch pseudos: beq [crf,] target (and friends).
        if let Some(&(_, bo, bi_sub)) = COND_BRANCHES.iter().find(|(n, _, _)| *n == base) {
            let (crf, t) = match ops {
                [t] => (0, t),
                [crf, t] => {
                    let f = crf.reg().and_then(parse_crf).ok_or("expected a CR field (cr0..cr7)")?
                        as u32;
                    (f, t)
                }
                _ => return Err(format!("{base} needs `[crf,] target`")),
            };
            let off = branch_off(imm(t, "target")?, ctx.addr, 16)?;
            return Ok(d_bits(16) | bo << 21 | (crf * 4 + bi_sub) << 16 | off);
        }

        match base {
            // Pseudos -------------------------------------------------
            "nop" => return Ok(d_form(24, 0, 0, 0)),
            "li" => {
                let [rd, v] = ops else { return Err("li needs `rd, imm`".into()) };
                return Ok(d_form(14, reg(rd, "rd")?, 0, simm16(imm(v, "imm")?)?));
            }
            "lis" => {
                let [rd, v] = ops else { return Err("lis needs `rd, imm`".into()) };
                let v = imm(v, "imm")?;
                let enc = if (0..=0xffff).contains(&v) { v as u32 } else { simm16(v)? };
                return Ok(d_form(15, reg(rd, "rd")?, 0, enc));
            }
            "la" => {
                let [rd, addr] = ops else { return Err("la needs `rd, d(ra)`".into()) };
                let Operand::BaseDisp { disp, base } = addr else {
                    return Err("la needs `d(ra)`".into());
                };
                let ra = parse_reg(base).ok_or("bad base register")? as u32;
                return Ok(d_form(14, reg(rd, "rd")?, ra, simm16(*disp)?));
            }
            "subi" => {
                let [rd, ra, v] = ops else { return Err("subi needs `rd, ra, imm`".into()) };
                return Ok(d_form(14, reg(rd, "rd")?, reg(ra, "ra")?, simm16(-imm(v, "imm")?)?));
            }
            "mr" => {
                let [ra, rs] = ops else { return Err("mr needs `ra, rs`".into()) };
                let (ra, rs) = (reg(ra, "ra")?, reg(rs, "rs")?);
                return Ok(x_form(31, 444, rs, ra, rs, rc_ok(true)?));
            }
            "not" => {
                let [ra, rs] = ops else { return Err("not needs `ra, rs`".into()) };
                let (ra, rs) = (reg(ra, "ra")?, reg(rs, "rs")?);
                return Ok(x_form(31, 124, rs, ra, rs, rc_ok(true)?));
            }
            "slwi" | "srwi" => {
                let [ra, rs, n] = ops else { return Err(format!("{base} needs `ra, rs, n`")) };
                let n = field5(imm(n, "shift")?, "shift")?;
                let (sh, mb, me) = if base == "slwi" { (n, 0, 31 - n) } else { (32 - n, n, 31) };
                let sh = sh % 32;
                return Ok(d_bits(21)
                    | reg(rs, "rs")? << 21
                    | reg(ra, "ra")? << 16
                    | sh << 11
                    | mb << 6
                    | me << 1
                    | rc_ok(true)? as u32);
            }
            "blr" => return Ok(x_bits(19, 16) | 20 << 21),
            "blrl" => return Ok(x_bits(19, 16) | 20 << 21 | 1),
            "bctr" => return Ok(x_bits(19, 528) | 20 << 21),
            "bctrl" => return Ok(x_bits(19, 528) | 20 << 21 | 1),
            "bdnz" | "bdz" => {
                let [t] = ops else { return Err(format!("{base} needs a target")) };
                let bo = if base == "bdnz" { 16 } else { 18 };
                let off = branch_off(imm(t, "target")?, ctx.addr, 16)?;
                return Ok(d_bits(16) | bo << 21 | off);
            }
            "mflr" | "mfctr" | "mfxer" => {
                let [rd] = ops else { return Err(format!("{base} needs `rd`")) };
                let spr = match base {
                    "mflr" => 8,
                    "mfctr" => 9,
                    _ => 1,
                };
                return Ok(x_form(31, 339, reg(rd, "rd")?, spr & 0x1f, spr >> 5, false));
            }
            "mtlr" | "mtctr" | "mtxer" => {
                let [rs] = ops else { return Err(format!("{base} needs `rs`")) };
                let spr = match base {
                    "mtlr" => 8,
                    "mtctr" => 9,
                    _ => 1,
                };
                return Ok(x_form(31, 467, reg(rs, "rs")?, spr & 0x1f, spr >> 5, false));
            }
            "mfcr" => {
                let [rd] = ops else { return Err("mfcr needs `rd`".into()) };
                return Ok(x_form(31, 19, reg(rd, "rd")?, 0, 0, false));
            }
            "sc" => return Ok(d_bits(17) | 2),
            // Real instructions ---------------------------------------
            "b" | "bl" => {
                let [t] = ops else { return Err(format!("{base} needs a target")) };
                let off = branch_off(imm(t, "target")?, ctx.addr, 26)?;
                return Ok(d_bits(18) | off | (base == "bl") as u32);
            }
            "bc" | "bcl" => {
                let [bo, bi, t] = ops else { return Err("bc needs `bo, bi, target`".into()) };
                let off = branch_off(imm(t, "target")?, ctx.addr, 16)?;
                return Ok(d_bits(16)
                    | field5(imm(bo, "bo")?, "bo")? << 21
                    | field5(imm(bi, "bi")?, "bi")? << 16
                    | off
                    | (base == "bcl") as u32);
            }
            "bclr" => {
                let [bo, bi] = ops else { return Err("bclr needs `bo, bi`".into()) };
                return Ok(x_bits(19, 16)
                    | field5(imm(bo, "bo")?, "bo")? << 21
                    | field5(imm(bi, "bi")?, "bi")? << 16);
            }
            "addi" | "addis" | "addic" | "subfic" | "mulli" => {
                let [rd, ra, v] = ops else { return Err(format!("{base} needs `rd, ra, imm`")) };
                let op = match base {
                    "addi" => 14,
                    "addis" => 15,
                    "addic" => 12,
                    "subfic" => 8,
                    _ => 7,
                };
                let v = imm(v, "imm")?;
                let enc = if base == "addis" && (0..=0xffff).contains(&v) {
                    v as u32
                } else {
                    simm16(v)?
                };
                return Ok(d_form(op, reg(rd, "rd")?, reg(ra, "ra")?, enc));
            }
            "ori" | "oris" | "xori" | "xoris" | "andi" | "andis" => {
                let [ra, rs, v] = ops else { return Err(format!("{base} needs `ra, rs, imm`")) };
                let op = match base {
                    "ori" => 24,
                    "oris" => 25,
                    "xori" => 26,
                    "xoris" => 27,
                    "andi" => 28,
                    _ => 29,
                };
                return Ok(d_form(op, reg(rs, "rs")?, reg(ra, "ra")?, uimm16(imm(v, "imm")?)?));
            }
            "cmpwi" | "cmplwi" => {
                let (crf, ra, v) = match ops {
                    [ra, v] => (0, ra, v),
                    [crf, ra, v] => {
                        (crf.reg().and_then(parse_crf).ok_or("expected a CR field")? as u32, ra, v)
                    }
                    _ => return Err(format!("{base} needs `[crf,] ra, imm`")),
                };
                let op = if base == "cmpwi" { 11 } else { 10 };
                let enc =
                    if base == "cmpwi" { simm16(imm(v, "imm")?)? } else { uimm16(imm(v, "imm")?)? };
                return Ok(d_form(op, crf << 2, reg(ra, "ra")?, enc));
            }
            "cmpw" | "cmplw" => {
                let (crf, ra, rb) = match ops {
                    [ra, rb] => (0, ra, rb),
                    [crf, ra, rb] => {
                        (crf.reg().and_then(parse_crf).ok_or("expected a CR field")? as u32, ra, rb)
                    }
                    _ => return Err(format!("{base} needs `[crf,] ra, rb`")),
                };
                let xop = if base == "cmpw" { 0 } else { 32 };
                return Ok(x_form(31, xop, crf << 2, reg(ra, "ra")?, reg(rb, "rb")?, false));
            }
            "rlwinm" | "rlwimi" => {
                let [ra, rs, sh, mb, me] = ops else {
                    return Err(format!("{base} needs `ra, rs, sh, mb, me`"));
                };
                let op = if base == "rlwinm" { 21 } else { 20 };
                return Ok(d_bits(op)
                    | reg(rs, "rs")? << 21
                    | reg(ra, "ra")? << 16
                    | field5(imm(sh, "sh")?, "sh")? << 11
                    | field5(imm(mb, "mb")?, "mb")? << 6
                    | field5(imm(me, "me")?, "me")? << 1
                    | rc_ok(true)? as u32);
            }
            "rlwnm" => {
                let [ra, rs, rb, mb, me] = ops else {
                    return Err("rlwnm needs `ra, rs, rb, mb, me`".into());
                };
                return Ok(d_bits(23)
                    | reg(rs, "rs")? << 21
                    | reg(ra, "ra")? << 16
                    | reg(rb, "rb")? << 11
                    | field5(imm(mb, "mb")?, "mb")? << 6
                    | field5(imm(me, "me")?, "me")? << 1
                    | rc_ok(true)? as u32);
            }
            "srawi" => {
                let [ra, rs, sh] = ops else { return Err("srawi needs `ra, rs, sh`".into()) };
                return Ok(x_form(
                    31,
                    824,
                    reg(rs, "rs")?,
                    reg(ra, "ra")?,
                    field5(imm(sh, "sh")?, "sh")?,
                    false,
                ));
            }
            "neg" | "addze" => {
                let [rd, ra] = ops else { return Err(format!("{base} needs `rd, ra`")) };
                let xop = if base == "neg" { 104 } else { 202 };
                let allow_rc = base == "neg";
                return Ok(x_form(31, xop, reg(rd, "rd")?, reg(ra, "ra")?, 0, rc_ok(allow_rc)?));
            }
            "extsb" | "extsh" | "cntlzw" => {
                let [ra, rs] = ops else { return Err(format!("{base} needs `ra, rs`")) };
                let xop = match base {
                    "extsb" => 954,
                    "extsh" => 922,
                    _ => 26,
                };
                return Ok(x_form(31, xop, reg(rs, "rs")?, reg(ra, "ra")?, 0, rc_ok(true)?));
            }
            _ => {}
        }

        // XO-form arithmetic `rd, ra, rb`.
        if let Some(xop) = match base {
            "add" => Some(266),
            "subf" => Some(40),
            "subfc" => Some(8),
            "addc" => Some(10),
            "adde" => Some(138),
            "subfe" => Some(136),
            "mullw" => Some(235),
            "mulhw" => Some(75),
            "mulhwu" => Some(11),
            "divw" => Some(491),
            "divwu" => Some(459),
            _ => None,
        } {
            let [rd, ra, rb] = ops else { return Err(format!("{base} needs `rd, ra, rb`")) };
            let carrying = matches!(base, "subfc" | "addc" | "adde" | "subfe");
            return Ok(x_form(
                31,
                xop,
                reg(rd, "rd")?,
                reg(ra, "ra")?,
                reg(rb, "rb")?,
                rc_ok(!carrying)?,
            ));
        }

        // X-form logical/shift `ra, rs, rb`.
        if let Some(xop) = match base {
            "and" => Some(28),
            "or" => Some(444),
            "xor" => Some(316),
            "nand" => Some(476),
            "nor" => Some(124),
            "andc" => Some(60),
            "orc" => Some(412),
            "eqv" => Some(284),
            "slw" => Some(24),
            "srw" => Some(536),
            "sraw" => Some(792),
            _ => None,
        } {
            let [ra, rs, rb] = ops else { return Err(format!("{base} needs `ra, rs, rb`")) };
            let allow_rc = base != "sraw";
            return Ok(x_form(
                31,
                xop,
                reg(rs, "rs")?,
                reg(ra, "ra")?,
                reg(rb, "rb")?,
                rc_ok(allow_rc)?,
            ));
        }

        // Loads/stores: D-form `rt, d(ra)` and X-form `rt, ra, rb`.
        if let Some(op) = match base {
            "lwz" => Some(32),
            "lwzu" => Some(33),
            "lbz" => Some(34),
            "lbzu" => Some(35),
            "lhz" => Some(40),
            "lhzu" => Some(41),
            "lha" => Some(42),
            "stw" => Some(36),
            "stwu" => Some(37),
            "stb" => Some(38),
            "stbu" => Some(39),
            "sth" => Some(44),
            "sthu" => Some(45),
            _ => None,
        } {
            let [rt, addr] = ops else { return Err(format!("{base} needs `rt, d(ra)`")) };
            let (disp, ra) = match addr {
                Operand::BaseDisp { disp, base } => {
                    (*disp, parse_reg(base).ok_or("bad base register")? as u32)
                }
                Operand::Imm(abs) => (*abs, 0),
                _ => return Err("expected `d(ra)` or an absolute address".into()),
            };
            if matches!(op, 33 | 35 | 41 | 37 | 39 | 45) && ra == 0 {
                return Err(format!("{base} with rA = r0 is invalid"));
            }
            return Ok(d_form(op, reg(rt, "rt")?, ra, simm16(disp)?));
        }
        if let Some(xop) = match base {
            "lwzx" => Some(23),
            "lbzx" => Some(87),
            "lhzx" => Some(279),
            "stwx" => Some(151),
            "stbx" => Some(215),
            "sthx" => Some(407),
            _ => None,
        } {
            let [rt, ra, rb] = ops else { return Err(format!("{base} needs `rt, ra, rb`")) };
            return Ok(x_form(31, xop, reg(rt, "rt")?, reg(ra, "ra")?, reg(rb, "rb")?, false));
        }

        Err(format!("unknown mnemonic `{mn}`"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lis_asm::assemble;

    fn enc(line: &str) -> u32 {
        let img = assemble(&PpcAsm, line).unwrap();
        u32::from_be_bytes(img.sections[0].bytes[0..4].try_into().unwrap())
    }

    #[test]
    fn d_form_arith() {
        // addi r3, r1, 8 -> 0x38610008
        assert_eq!(enc("addi r3, r1, 8"), 0x3861_0008);
        assert_eq!(enc("li r5, -1"), 0x38a0_ffff);
        assert_eq!(enc("lis r4, 0x1234"), 0x3c80_1234);
        assert_eq!(enc("subi r3, r3, 4"), 0x3863_fffc);
    }

    #[test]
    fn xo_and_logical() {
        // add r3, r4, r5 -> 0x7c642a14
        assert_eq!(enc("add r3, r4, r5"), 0x7c64_2a14);
        assert_eq!(enc("add. r3, r4, r5"), 0x7c64_2a15);
        // or r3, r4, r5: rs=r4 in rd slot -> 0x7c832b78
        assert_eq!(enc("or r3, r4, r5"), 0x7c83_2b78);
        assert_eq!(enc("mr r7, r8"), 0x7d07_4378);
        assert_eq!(enc("srawi r3, r4, 2"), 0x7c83_1670);
    }

    #[test]
    fn rotates() {
        // rlwinm r5, r6, 3, 0, 28 -> 0x54c51838
        assert_eq!(enc("rlwinm r5, r6, 3, 0, 28"), 0x54c5_1838);
        assert_eq!(enc("slwi r5, r6, 3"), enc("rlwinm r5, r6, 3, 0, 28"));
        assert_eq!(enc("srwi r5, r6, 3"), enc("rlwinm r5, r6, 29, 3, 31"));
    }

    #[test]
    fn memory() {
        // lwz r4, 12(r1) -> 0x8081000c
        assert_eq!(enc("lwz r4, 12(r1)"), 0x8081_000c);
        assert_eq!(enc("stwu r1, -16(r1)"), 0x9421_fff0);
        assert_eq!(enc("lwzx r3, r4, r5"), 0x7c64_282e);
        assert!(assemble(&PpcAsm, "lwzu r4, 4(r0)").is_err());
    }

    #[test]
    fn branches() {
        // b to self: offset 0
        assert_eq!(enc("x: b x"), 0x4800_0000);
        assert_eq!(enc("x: bl x"), 0x4800_0001);
        // bdnz to self: bc 16,0 off 0 -> 0x42000000
        assert_eq!(enc("x: bdnz x"), 0x4200_0000);
        // beq cr0 to self: bc 12,2 -> 0x41820000
        assert_eq!(enc("x: beq x"), 0x4182_0000);
        assert_eq!(enc("x: bne cr1, x"), 0x4086_0000);
        assert_eq!(enc("blr"), 0x4e80_0020);
        assert_eq!(enc("bctr"), 0x4e80_0420);
    }

    #[test]
    fn spr_moves_and_sc() {
        assert_eq!(enc("mflr r0"), 0x7c08_02a6);
        assert_eq!(enc("mtlr r0"), 0x7c08_03a6);
        assert_eq!(enc("mtctr r9"), 0x7d29_03a6);
        assert_eq!(enc("sc"), 0x4400_0002);
        assert_eq!(enc("mfcr r3"), 0x7c60_0026);
    }

    #[test]
    fn compares() {
        // cmpwi r3, 0 -> 0x2c030000
        assert_eq!(enc("cmpwi r3, 0"), 0x2c03_0000);
        assert_eq!(enc("cmpwi cr1, r3, 5"), 0x2c83_0005);
        assert_eq!(enc("cmpw r3, r4"), 0x7c03_2000);
        assert_eq!(enc("cmplwi r3, 10"), 0x2803_000a);
    }

    #[test]
    fn errors() {
        assert!(assemble(&PpcAsm, "addi r1, r2, 99999").is_err());
        assert!(assemble(&PpcAsm, "frob r1").is_err());
        assert!(assemble(&PpcAsm, "adde. r1, r2, r3").is_err());
        assert!(assemble(&PpcAsm, "rlwinm r1, r2, 40, 0, 31").is_err());
    }
}
