//! Assembler/disassembler fixpoint property: for any decodable word, the
//! disassembly reassembles to a word with the *same* disassembly (encodings
//! need not be bit-identical — immediates may re-encode canonically — but
//! the architectural meaning must round-trip).

use lis_isa_ppc as isa;
use proptest::prelude::*;

const PC: u64 = 0x1000;

fn reassemble(text: &str) -> Option<u32> {
    // Not everything the disassembler prints is assembler syntax (e.g. the
    // `nv` condition); skip anything the assembler refuses.
    let src = format!("_start: {text}\n");
    let image = isa::assemble(&src).ok()?;
    let sec = image.sections.iter().find(|s| s.name == ".text")?;
    let bytes: [u8; 4] = sec.bytes[0..4].try_into().ok()?;
    Some(match isa::spec().endian {
        lis_mem::Endian::Big => u32::from_be_bytes(bytes),
        lis_mem::Endian::Little => u32::from_le_bytes(bytes),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4096))]

    #[test]
    fn disasm_reassembles_to_a_fixpoint(idx in 0usize..1000, noise in any::<u32>()) {
        let spec = isa::spec();
        // Bias generation toward decodable words: take a definition's fixed
        // bits and randomize everything outside its mask.
        let def = &spec.insts[idx % spec.insts.len()];
        let word = def.bits | (noise & !def.mask);
        prop_assume!(spec.decode(word).is_some());
        let text = (spec.disasm)(word, PC);
        prop_assume!(!text.starts_with(".word"));
        // Not all decodable words have assembler syntax (reserved bits,
        // unusual condition fields); the ones that do must be fixpoints.
        if let Some(word2) = reassemble(&text) {
            let text2 = (spec.disasm)(word2, PC);
            prop_assert_eq!(
                &text, &text2,
                "word {:#010x} -> [{}] -> {:#010x} -> [{}]", word, text, word2, text2
            );
            // And the re-encoded word decodes to the same instruction.
            prop_assert_eq!(spec.decode(word), spec.decode(word2));
        }
    }
}

/// The fixpoint property must not be vacuous: most decodable words must
/// actually reassemble.
#[test]
fn reassembly_coverage_is_high() {
    let spec = isa::spec();
    let mut decodable = 0u32;
    let mut reassembled = 0u32;
    let mut x = 0x1234_5678u32;
    for _ in 0..20_000 {
        // xorshift
        x ^= x << 13;
        x ^= x >> 17;
        x ^= x << 5;
        if spec.decode(x).is_none() {
            continue;
        }
        decodable += 1;
        let text = (spec.disasm)(x, PC);
        if reassemble(&text).is_some() {
            reassembled += 1;
        }
    }
    assert!(decodable > 100, "sample too small: {decodable}");
    let rate = reassembled as f64 / decodable as f64;
    assert!(rate > 0.5, "only {rate:.2} of decodable words reassemble");
}
