//! End-to-end PowerPC execution tests through the synthesized simulators.

use lis_core::{ONE_ALL, STANDARD_BUILDSETS};
use lis_runtime::Simulator;

fn run(src: &str) -> Simulator {
    let image = lis_isa_ppc::assemble(src).expect("assembles");
    let mut sim = Simulator::new(lis_isa_ppc::spec(), ONE_ALL).unwrap();
    sim.load_program(&image).unwrap();
    sim.run_to_halt(1_000_000).unwrap();
    sim
}

const EXIT0: &str = "
    li r0, 1
    li r3, 0
    sc
";

#[test]
fn d_form_arithmetic() {
    let sim = run(&format!(
        "
_start: li r4, 100
        addi r5, r4, 20       ; 120
        addis r6, r4, 1       ; 100 + 65536
        mulli r7, r4, 7       ; 700
        subfic r8, r4, 300    ; 200
        subi r9, r4, 1        ; 99
        {EXIT0}"
    ));
    assert_eq!(sim.state.gpr[5], 120);
    assert_eq!(sim.state.gpr[6], 65636);
    assert_eq!(sim.state.gpr[7], 700);
    assert_eq!(sim.state.gpr[8], 200);
    assert_eq!(sim.state.gpr[9], 99);
}

#[test]
fn xo_arithmetic_and_division() {
    let sim = run(&format!(
        "
_start: li r4, 84
        li r5, 2
        add r6, r4, r5        ; 86
        subf r7, r5, r4       ; 82
        mullw r8, r4, r5      ; 168
        divw r9, r4, r5       ; 42
        divwu r10, r4, r5     ; 42
        neg r11, r5           ; -2
        li r12, 0
        divw r13, r4, r12     ; div by zero -> 0 (documented)
        {EXIT0}"
    ));
    assert_eq!(sim.state.gpr[6], 86);
    assert_eq!(sim.state.gpr[7], 82);
    assert_eq!(sim.state.gpr[8], 168);
    assert_eq!(sim.state.gpr[9], 42);
    assert_eq!(sim.state.gpr[10], 42);
    assert_eq!(sim.state.gpr[11], 0xffff_fffe);
    assert_eq!(sim.state.gpr[13], 0);
}

#[test]
fn carry_chain() {
    // 64-bit add: 0xffffffff + 1 with carry into the high word.
    let sim = run(&format!(
        "
_start: lis r4, 0xffff
        ori r4, r4, 0xffff    ; low a = 0xffffffff
        li r5, 1              ; low b
        li r6, 2              ; high a
        li r7, 3              ; high b
        addc r8, r4, r5       ; 0, CA=1
        adde r9, r6, r7       ; 6
        li r10, 5
        addze r11, r10        ; CA consumed by adde -> depends on adde's carry
        {EXIT0}"
    ));
    assert_eq!(sim.state.gpr[8], 0);
    assert_eq!(sim.state.gpr[9], 6);
    // adde 2+3+1 = 6 with no carry out, so addze adds 0.
    assert_eq!(sim.state.gpr[11], 5);
}

#[test]
fn logical_and_record_forms() {
    let sim = run(&format!(
        "
_start: li r4, 0xf0
        li r5, 0x0f
        or r6, r4, r5         ; 0xff
        and r7, r4, r5        ; 0
        xor r8, r6, r4        ; 0x0f
        nand r9, r4, r4       ; ~0xf0
        andi. r10, r6, 0xf0   ; 0xf0, sets CR0 = GT
        mfcr r11
        {EXIT0}"
    ));
    assert_eq!(sim.state.gpr[6], 0xff);
    assert_eq!(sim.state.gpr[7], 0);
    assert_eq!(sim.state.gpr[8], 0x0f);
    assert_eq!(sim.state.gpr[9], 0xffff_ff0f);
    assert_eq!(sim.state.gpr[10], 0xf0);
    assert_eq!(sim.state.gpr[11] >> 28, 0x4, "CR0 should be GT");
}

#[test]
fn rotates_and_shifts() {
    let sim = run(&format!(
        "
_start: li r4, 0xff
        slwi r5, r4, 8        ; 0xff00
        srwi r6, r5, 4        ; 0xff0
        rlwinm r7, r4, 4, 24, 27  ; rotate 4, keep bits 24..27 -> 0xf0
        li r8, -8
        srawi r9, r8, 1       ; -4, CA=0
        li r10, 16
        slw r11, r4, r10      ; 0xff0000
        {EXIT0}"
    ));
    assert_eq!(sim.state.gpr[5], 0xff00);
    assert_eq!(sim.state.gpr[6], 0xff0);
    assert_eq!(sim.state.gpr[7], 0xf0);
    assert_eq!(sim.state.gpr[9], 0xffff_fffc);
    assert_eq!(sim.state.gpr[11], 0xff_0000);
}

#[test]
fn sign_extension_and_cntlzw() {
    let sim = run(&format!(
        "
_start: li r4, 0x80
        extsb r5, r4          ; -128
        lis r6, 0x8000
        srwi r6, r6, 16       ; 0x8000
        extsh r7, r6          ; -32768
        li r8, 1
        slwi r8, r8, 20
        cntlzw r9, r8         ; 11
        {EXIT0}"
    ));
    assert_eq!(sim.state.gpr[5], 0xffff_ff80);
    assert_eq!(sim.state.gpr[7], 0xffff_8000);
    assert_eq!(sim.state.gpr[9], 11);
}

#[test]
fn memory_update_and_indexed() {
    let sim = run(&format!(
        "
_start: lis r4, 2            ; r4 = 0x20000 (data base)
        li r5, 77
        stw r5, 0(r4)
        stw r5, 4(r4)
        lwz r6, 0(r4)
        mr r7, r4
        lwzu r8, 4(r7)        ; r8 = 77, r7 = 0x20004
        li r9, 4
        lwzx r10, r4, r9
        sth r5, 8(r4)
        lhz r11, 8(r4)
        stb r5, 10(r4)
        lbz r12, 10(r4)
        li r13, -1
        sth r13, 12(r4)
        lha r14, 12(r4)       ; sign-extended -1
        {EXIT0}"
    ));
    assert_eq!(sim.state.gpr[6], 77);
    assert_eq!(sim.state.gpr[7], 0x20004);
    assert_eq!(sim.state.gpr[8], 77);
    assert_eq!(sim.state.gpr[10], 77);
    assert_eq!(sim.state.gpr[11], 77);
    assert_eq!(sim.state.gpr[12], 77);
    assert_eq!(sim.state.gpr[14], 0xffff_ffff);
}

#[test]
fn stack_frames_with_stwu() {
    let sim = run(&format!(
        "
_start: li r4, 7
        stwu r4, -16(r1)      ; push frame
        lwz r5, 0(r1)
        addi r1, r1, 16       ; pop
        {EXIT0}"
    ));
    assert_eq!(sim.state.gpr[5], 7);
    assert_eq!(sim.state.gpr[1], lis_runtime::STACK_TOP);
}

#[test]
fn compares_and_conditional_branches() {
    let sim = run(&format!(
        "
_start: li r4, 5
        cmpwi r4, 5
        beq is5
        li r5, 0
        b out
is5:    li r5, 1
out:    cmpwi cr3, r4, 9
        blt cr3, less
        li r6, 0
        b fin
less:   li r6, 1
fin:    {EXIT0}"
    ));
    assert_eq!(sim.state.gpr[5], 1);
    assert_eq!(sim.state.gpr[6], 1);
}

#[test]
fn ctr_loop_with_bdnz() {
    let sim = run(&format!(
        "
_start: li r4, 10
        mtctr r4
        li r5, 0
loop:   addi r5, r5, 3
        bdnz loop
        mfctr r6
        {EXIT0}"
    ));
    assert_eq!(sim.state.gpr[5], 30);
    assert_eq!(sim.state.gpr[6], 0);
}

#[test]
fn function_calls_with_lr() {
    let sim = run(&format!(
        "
_start: li r3, 21
        bl double
        mr r9, r3
        {EXIT0}
double: add r3, r3, r3
        blr
"
    ));
    assert_eq!(sim.state.gpr[9], 42);
}

#[test]
fn indirect_call_via_ctr() {
    let sim = run(&format!(
        "
_start: lis r4, hi16(fn)
        ori r4, r4, lo16(fn)
        mtctr r4
        li r3, 5
        bctrl
        mr r9, r3
        {EXIT0}
fn:     mulli r3, r3, 11
        blr
"
    ));
    assert_eq!(sim.state.gpr[9], 55);
}

#[test]
fn syscall_output() {
    let sim = run("
_start: li r0, 4              ; PUTUDEC
        li r3, 321
        sc
        li r0, 2              ; WRITE
        lis r3, hi16(msg)
        ori r3, r3, lo16(msg)
        li r4, 3
        sc
        li r0, 1
        li r3, 5
        sc
        .data
msg:    .ascii \"ppc\"
");
    assert_eq!(String::from_utf8_lossy(sim.stdout()), "321\nppc");
    assert_eq!(sim.state.exit_code, 5);
}

#[test]
fn big_endian_layout() {
    let sim = run(&format!(
        "
_start: lis r4, 2
        lis r5, 0x1122
        ori r5, r5, 0x3344
        stw r5, 0(r4)
        lbz r6, 0(r4)         ; big-endian: MSB first
        lbz r7, 3(r4)
        {EXIT0}"
    ));
    assert_eq!(sim.state.gpr[6], 0x11);
    assert_eq!(sim.state.gpr[7], 0x44);
}

#[test]
fn all_interfaces_agree_on_ppc() {
    let src = format!(
        "
_start: li r5, 0
        li r6, 40
        mtctr r6
loop:   add r5, r5, r6
        subi r6, r6, 1
        bdnz loop
        li r0, 4
        mr r3, r5
        sc
        {EXIT0}"
    );
    let image = lis_isa_ppc::assemble(&src).unwrap();
    let mut outputs = Vec::new();
    for bs in STANDARD_BUILDSETS {
        let mut sim = Simulator::new(lis_isa_ppc::spec(), bs).unwrap();
        sim.load_program(&image).unwrap();
        sim.run_to_halt(1_000_000).unwrap();
        outputs.push((
            bs.name,
            String::from_utf8_lossy(sim.stdout()).into_owned(),
            sim.state.gpr,
            sim.state.spr,
        ));
    }
    for (name, out, gpr, spr) in &outputs[1..] {
        assert_eq!(out, &outputs[0].1, "{name}");
        assert_eq!(gpr, &outputs[0].2, "{name}");
        assert_eq!(spr, &outputs[0].3, "{name}");
    }
    // sum of 40+39+...+1 = 820
    assert_eq!(outputs[0].1, "820\n");
}
