//! Directed per-instruction validation for the PowerPC description: every
//! instruction (and the CR/CA/CTR machinery) with known inputs and
//! hand-computed results.

use lis_core::{DynInst, ONE_ALL};
use lis_runtime::Simulator;

const CR: usize = 0;
const XER: usize = 1;
const LR: usize = 2;
const CTR: usize = 3;
const CA: u64 = 1 << 29;

/// Assembles `body`, presets GPRs/SPRs, executes (bounded by static
/// length), and returns the simulator.
fn exec(body: &str, setup: &[(usize, u64)], spr: &[(usize, u64)]) -> Simulator {
    let src = format!("_start:\n{body}\n");
    let image = lis_isa_ppc::assemble(&src).unwrap_or_else(|e| panic!("{e}\n{src}"));
    let n = image.sections.iter().find(|s| s.name == ".text").unwrap().bytes.len() / 4;
    let mut sim = Simulator::new(lis_isa_ppc::spec(), ONE_ALL).unwrap();
    sim.load_program(&image).unwrap();
    for &(r, v) in setup {
        sim.state.gpr[r] = v;
    }
    for &(r, v) in spr {
        sim.state.spr[r] = v;
    }
    let mut di = DynInst::new();
    let end = 0x1000 + 4 * n as u64;
    // Dynamic bound is generous: bodies may loop (e.g. bdnz tests).
    for _ in 0..1000 {
        if sim.state.pc >= end {
            break;
        }
        sim.next_inst(&mut di).unwrap();
        assert!(di.fault.is_none(), "fault {:?} in `{body}`", di.fault);
    }
    sim
}

type Case = (&'static str, &'static [(usize, u64)], &'static [(usize, u64)]);

fn table(cases: &[Case]) {
    for (asm, setup, expect) in cases {
        let sim = exec(asm, setup, &[]);
        for &(r, v) in *expect {
            assert_eq!(sim.state.gpr[r], v, "`{asm}`: r{r}");
        }
    }
}

const M32: u64 = 0xffff_ffff;

#[test]
fn d_form_arithmetic() {
    table(&[
        ("addi r3, r4, 100", &[(4, 1)], &[(3, 101)]),
        ("addi r3, r0, 5", &[(0, 99)], &[(3, 5)]), // rA=0 means literal zero
        ("addis r3, r4, 2", &[(4, 4)], &[(3, 0x2_0004)]),
        ("mulli r3, r4, -3", &[(4, 7)], &[(3, (-21i64 as u64) & M32)]),
        ("subfic r3, r4, 100", &[(4, 30)], &[(3, 70)]),
        ("addic r3, r4, 1", &[(4, M32)], &[(3, 0)]),
    ]);
    // addic carry-out lands in XER[CA].
    let sim = exec("addic r3, r4, 1", &[(4, M32)], &[]);
    assert_eq!(sim.state.spr[XER] & CA, CA);
    let sim = exec("addic r3, r4, 1", &[(4, 5)], &[]);
    assert_eq!(sim.state.spr[XER] & CA, 0);
    // subfic: CA set iff no borrow.
    let sim = exec("subfic r3, r4, 100", &[(4, 30)], &[]);
    assert_eq!(sim.state.spr[XER] & CA, CA);
    let sim = exec("subfic r3, r4, 30", &[(4, 100)], &[]);
    assert_eq!(sim.state.spr[XER] & CA, 0);
}

#[test]
fn xo_form_arithmetic() {
    table(&[
        ("add r3, r4, r5", &[(4, 7), (5, 9)], &[(3, 16)]),
        ("subf r3, r4, r5", &[(4, 7), (5, 9)], &[(3, 2)]),
        ("neg r3, r4", &[(4, 5)], &[(3, (-5i64 as u64) & M32)]),
        ("mullw r3, r4, r5", &[(4, 0x10000), (5, 0x10000)], &[(3, 0)]),
        ("mulhw r3, r4, r5", &[(4, 0x10000), (5, 0x10000)], &[(3, 1)]),
        ("mulhw r3, r4, r5", &[(4, M32), (5, 2)], &[(3, M32)]), // -1 * 2 high = -1
        ("mulhwu r3, r4, r5", &[(4, M32), (5, 2)], &[(3, 1)]),
        ("divw r3, r4, r5", &[(4, (-20i64 as u64) & M32), (5, 3)], &[(3, (-6i64 as u64) & M32)]),
        ("divwu r3, r4, r5", &[(4, 20), (5, 3)], &[(3, 6)]),
        ("divw r3, r4, r5", &[(4, 20), (5, 0)], &[(3, 0)]), // documented: 0 on /0
    ]);
}

#[test]
fn carry_chain() {
    // addc/adde propagate CA.
    let sim = exec("addc r3, r4, r5\nadde r6, r7, r8", &[(4, M32), (5, 1), (7, 2), (8, 3)], &[]);
    assert_eq!(sim.state.gpr[3], 0);
    assert_eq!(sim.state.gpr[6], 6);
    // subfc/subfe: 64-bit subtract.
    let sim = exec("subfc r3, r4, r5\nsubfe r6, r7, r8", &[(4, 1), (5, 0), (7, 0), (8, 5)], &[]);
    assert_eq!(sim.state.gpr[3], M32); // 0 - 1 borrows
    assert_eq!(sim.state.gpr[6], 4); // 5 - 0 - borrow
                                     // addze consumes CA.
    let sim = exec("addze r3, r4", &[(4, 10)], &[(XER, CA)]);
    assert_eq!(sim.state.gpr[3], 11);
    let sim = exec("addze r3, r4", &[(4, 10)], &[]);
    assert_eq!(sim.state.gpr[3], 10);
}

#[test]
fn logical_x_form() {
    table(&[
        ("and r3, r4, r5", &[(4, 0xf0f0), (5, 0xff00)], &[(3, 0xf000)]),
        ("or r3, r4, r5", &[(4, 0xf0), (5, 0x0f)], &[(3, 0xff)]),
        ("xor r3, r4, r5", &[(4, 0xff00), (5, 0x0ff0)], &[(3, 0xf0f0)]),
        ("nand r3, r4, r5", &[(4, M32), (5, 0xff)], &[(3, M32 - 0xff)]),
        ("nor r3, r4, r5", &[(4, 0xf0), (5, 0x0f)], &[(3, M32 - 0xff)]),
        ("andc r3, r4, r5", &[(4, 0xff), (5, 0x0f)], &[(3, 0xf0)]),
        ("orc r3, r4, r5", &[(4, 0), (5, M32 - 0xff)], &[(3, 0xff)]),
        ("eqv r3, r4, r5", &[(4, 0xff00), (5, 0xff00)], &[(3, M32)]),
        ("not r3, r4", &[(4, 0)], &[(3, M32)]),
        ("mr r3, r4", &[(4, 77)], &[(3, 77)]),
        ("extsb r3, r4", &[(4, 0x80)], &[(3, 0xffff_ff80)]),
        ("extsh r3, r4", &[(4, 0x8000)], &[(3, 0xffff_8000)]),
        ("cntlzw r3, r4", &[(4, 0x10)], &[(3, 27)]),
        ("cntlzw r3, r4", &[(4, 0)], &[(3, 32)]),
    ]);
}

#[test]
fn logical_immediates() {
    table(&[
        ("ori r3, r4, 0xff00", &[(4, 0xff)], &[(3, 0xffff)]),
        ("oris r3, r4, 1", &[(4, 2)], &[(3, 0x1_0002)]),
        ("xori r3, r4, 0xffff", &[(4, 0xff)], &[(3, 0xff00)]),
        ("xoris r3, r4, 0xffff", &[(4, 0)], &[(3, 0xffff_0000)]),
        ("andi. r3, r4, 0x0f0f", &[(4, 0xffff)], &[(3, 0x0f0f)]),
        ("andis. r3, r4, 0xff00", &[(4, 0x1234_5678)], &[(3, 0x1200_0000)]),
    ]);
    // andi. records into CR0.
    let sim = exec("andi. r3, r4, 0", &[(4, 0xffff)], &[]);
    assert_eq!(sim.state.spr[CR] >> 28, 0x2, "EQ bit of CR0");
}

#[test]
fn shifts_and_rotates() {
    table(&[
        ("slw r3, r4, r5", &[(4, 1), (5, 31)], &[(3, 0x8000_0000)]),
        ("slw r3, r4, r5", &[(4, 1), (5, 32)], &[(3, 0)]),
        ("srw r3, r4, r5", &[(4, 0x8000_0000), (5, 31)], &[(3, 1)]),
        ("sraw r3, r4, r5", &[(4, 0x8000_0000), (5, 31)], &[(3, M32)]),
        ("sraw r3, r4, r5", &[(4, 0x8000_0000), (5, 40)], &[(3, M32)]),
        ("srawi r3, r4, 4", &[(4, (-32i64 as u64) & M32)], &[(3, (-2i64 as u64) & M32)]),
        ("rlwinm r3, r4, 8, 0, 31", &[(4, 0x1122_3344)], &[(3, 0x2233_4411)]),
        ("rlwinm r3, r4, 0, 24, 31", &[(4, 0x1122_3344)], &[(3, 0x44)]),
        ("rlwnm r3, r4, r5, 0, 31", &[(4, 0x8000_0001), (5, 1)], &[(3, 3)]),
        ("rlwimi r3, r4, 0, 24, 31", &[(3, 0x1111_1111), (4, 0xab)], &[(3, 0x1111_11ab)]),
        ("slwi r3, r4, 4", &[(4, 0xf)], &[(3, 0xf0)]),
        ("srwi r3, r4, 4", &[(4, 0xf0)], &[(3, 0xf)]),
    ]);
    // sraw CA: set when a negative value loses 1-bits.
    let sim = exec("srawi r3, r4, 1", &[(4, (-3i64 as u64) & M32)], &[]);
    assert_eq!(sim.state.spr[XER] & CA, CA);
    let sim = exec("srawi r3, r4, 1", &[(4, (-4i64 as u64) & M32)], &[]);
    assert_eq!(sim.state.spr[XER] & CA, 0);
}

#[test]
fn record_forms_set_cr0() {
    // add. with a negative result: LT.
    let sim = exec("add. r3, r4, r5", &[(4, (-5i64 as u64) & M32), (5, 1)], &[]);
    assert_eq!(sim.state.spr[CR] >> 28, 0x8);
    // positive: GT; zero: EQ.
    let sim = exec("add. r3, r4, r5", &[(4, 2), (5, 3)], &[]);
    assert_eq!(sim.state.spr[CR] >> 28, 0x4);
    let sim = exec("subf. r3, r4, r5", &[(4, 9), (5, 9)], &[]);
    assert_eq!(sim.state.spr[CR] >> 28, 0x2);
    // or. works too.
    let sim = exec("or. r3, r4, r5", &[(4, 0), (5, 0)], &[]);
    assert_eq!(sim.state.spr[CR] >> 28, 0x2);
}

#[test]
fn compares_and_cr_fields() {
    let sim = exec("cmpwi r4, 10", &[(4, 3)], &[]);
    assert_eq!(sim.state.spr[CR] >> 28, 0x8, "3 < 10 signed");
    let sim = exec("cmpwi cr2, r4, 10", &[(4, 30)], &[]);
    assert_eq!((sim.state.spr[CR] >> 20) & 0xf, 0x4, "30 > 10 into cr2");
    let sim = exec("cmplwi r4, 10", &[(4, M32)], &[]);
    assert_eq!(sim.state.spr[CR] >> 28, 0x4, "0xffffffff > 10 unsigned");
    let sim = exec("cmpw r4, r5", &[(4, M32), (5, 1)], &[]);
    assert_eq!(sim.state.spr[CR] >> 28, 0x8, "-1 < 1 signed");
    let sim = exec("cmplw cr7, r4, r5", &[(4, M32), (5, 1)], &[]);
    assert_eq!(sim.state.spr[CR] & 0xf, 0x4, "0xffffffff > 1 unsigned into cr7");
}

#[test]
fn memory_directed() {
    table(&[
        ("stw r4, 0x2000(r0)\nlwz r3, 0x2000(r0)", &[(4, 0xdead_beef)], &[(3, 0xdead_beef)]),
        ("stb r4, 0x2000(r0)\nlbz r3, 0x2000(r0)", &[(4, 0x1ff)], &[(3, 0xff)]),
        ("sth r4, 0x2000(r0)\nlhz r3, 0x2000(r0)", &[(4, 0x1_8000)], &[(3, 0x8000)]),
        ("sth r4, 0x2000(r0)\nlha r3, 0x2000(r0)", &[(4, 0x8000)], &[(3, 0xffff_8000)]),
        // update forms move the base
        ("stwu r4, -8(r5)", &[(4, 7), (5, 0x2010)], &[(5, 0x2008)]),
        ("lwzu r3, 4(r5)", &[(5, 0x2000)], &[(5, 0x2004)]),
        ("lbzu r3, 1(r5)", &[(5, 0x2000)], &[(5, 0x2001)]),
        ("lhzu r3, 2(r5)", &[(5, 0x2000)], &[(5, 0x2002)]),
        ("stbu r4, 1(r5)", &[(5, 0x2000)], &[(5, 0x2001)]),
        ("sthu r4, 2(r5)", &[(5, 0x2000)], &[(5, 0x2002)]),
        // indexed forms
        ("stwx r4, r5, r6\nlwzx r3, r5, r6", &[(4, 55), (5, 0x2000), (6, 8)], &[(3, 55)]),
        ("stbx r4, r5, r6\nlbzx r3, r5, r6", &[(4, 0xab), (5, 0x2000), (6, 3)], &[(3, 0xab)]),
        ("sthx r4, r5, r6\nlhzx r3, r5, r6", &[(4, 0xabcd), (5, 0x2000), (6, 6)], &[(3, 0xabcd)]),
    ]);
}

#[test]
fn branch_machinery() {
    // bc with BO=12 (branch if CR bit set).
    let sim = exec("cmpwi r4, 5\nbeq skip\nli r9, 1\nskip: li r10, 1", &[(4, 5)], &[]);
    assert_eq!(sim.state.gpr[9], 0);
    assert_eq!(sim.state.gpr[10], 1);
    // bdnz decrements CTR and branches while nonzero.
    let sim = exec("li r9, 0\nloop: addi r9, r9, 1\nbdnz loop", &[], &[(CTR, 4)]);
    assert_eq!(sim.state.gpr[9], 4);
    assert_eq!(sim.state.spr[CTR], 0);
    // bdz branches when the decremented CTR hits zero.
    let sim = exec("bdz skip\nli r9, 1\nskip: li r10, 1", &[], &[(CTR, 1)]);
    assert_eq!(sim.state.gpr[9], 0);
    // b / bl.
    let sim = exec("bl skip\nskip: li r10, 1", &[], &[]);
    assert_eq!(sim.state.spr[LR], 0x1004);
    // blr returns through LR; bclr is its generalization.
    let sim = exec("blr\n.org 0x1010\nli r10, 1", &[], &[(LR, 0x1010)]);
    assert_eq!(sim.state.gpr[10], 1);
    // bctr jumps through CTR (bcctr).
    let sim = exec("bctr\n.org 0x1010\nli r10, 1", &[], &[(CTR, 0x1010)]);
    assert_eq!(sim.state.gpr[10], 1);
    // Raw bc with an explicit BO/BI: branch if CR0[EQ] clear (bne).
    let sim = exec("bc 4, 2, skip\nli r9, 1\nskip: li r10, 1", &[], &[]);
    assert_eq!(sim.state.gpr[9], 0, "CR0[EQ] starts clear, so bc 4,2 branches");
}

#[test]
fn spr_moves_and_sc() {
    let sim = exec(
        "mtlr r4\nmflr r3\nmtctr r5\nmfctr r6\nmtxer r7\nmfxer r8\nmfcr r9",
        &[(4, 0x1234), (5, 0x5678), (7, CA)],
        &[],
    );
    assert_eq!(sim.state.gpr[3], 0x1234);
    assert_eq!(sim.state.gpr[6], 0x5678);
    assert_eq!(sim.state.gpr[8], CA);
    assert_eq!(sim.state.gpr[9], 0);
    // mfspr/mtspr are what the mnemonics assemble to.
    let sim = exec("li r0, 3\nli r3, 66\nsc", &[], &[]);
    assert_eq!(sim.os.stdout, b"B");
}

#[test]
fn every_instruction_is_covered_by_directed_tests() {
    let me = include_str!("directed.rs");
    let missing: Vec<&str> =
        lis_isa_ppc::spec().insts.iter().map(|d| d.name).filter(|n| !me.contains(*n)).collect();
    assert!(missing.is_empty(), "instructions without directed tests: {missing:?}");
}
