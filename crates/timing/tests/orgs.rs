//! The five organizations must agree architecturally and report sane timing.

use lis_core::IsaSpec;
use lis_mem::Image;
use lis_timing::{
    run_functional_first, run_integrated, run_speculative_functional_first, run_timing_directed,
    run_timing_first, CoreConfig, MemOverride, TimingReport,
};

fn alpha_program() -> (&'static IsaSpec, Image) {
    let src = "
_start: mov 0, r1
        mov 200, r2
loop:   addq r1, r2, r1
        subq r2, 1, r2
        bne r2, loop
        mov 4, v0
        mov r1, a0
        callsys
        mov 1, v0
        mov 0, a0
        callsys
";
    (lis_isa_alpha::spec(), lis_isa_alpha::assemble(src).unwrap())
}

fn arm_program() -> (&'static IsaSpec, Image) {
    let src = "
_start: mov r1, #0
        mov r2, #200
loop:   add r1, r1, r2
        subs r2, r2, #1
        bne loop
        mov r7, #4
        mov r0, r1
        swi 0
        mov r7, #1
        mov r0, #0
        swi 0
";
    (lis_isa_arm::spec(), lis_isa_arm::assemble(src).unwrap())
}

fn ppc_program() -> (&'static IsaSpec, Image) {
    let src = "
_start: li r5, 0
        li r6, 200
        mtctr r6
loop:   add r5, r5, r6
        subi r6, r6, 1
        bdnz loop
        li r0, 4
        mr r3, r5
        sc
        li r0, 1
        li r3, 0
        sc
";
    (lis_isa_ppc::spec(), lis_isa_ppc::assemble(src).unwrap())
}

fn all_reports(isa: &'static IsaSpec, image: &Image) -> Vec<TimingReport> {
    let cfg = CoreConfig::default();
    vec![
        run_integrated(isa, image, &cfg).unwrap(),
        run_functional_first(isa, image, &cfg).unwrap(),
        run_timing_directed(isa, image, &cfg).unwrap(),
        run_timing_first(isa, image, &cfg, None).unwrap(),
        run_speculative_functional_first(isa, image, &cfg, &[]).unwrap(),
    ]
}

fn check_agreement(reports: &[TimingReport], expected_out: &str) {
    for r in reports {
        assert_eq!(
            String::from_utf8_lossy(&r.stdout),
            expected_out,
            "{} produced wrong output",
            r.organization
        );
        assert_eq!(r.exit_code, 0, "{}", r.organization);
        assert!(r.cycles >= r.insts, "{}: IPC > 1 is impossible here", r.organization);
        assert!(r.insts > 600, "{}", r.organization);
    }
    // All organizations except timing-first (which runs two simulators)
    // retire the same instruction count.
    assert_eq!(reports[0].insts, reports[1].insts);
    assert_eq!(reports[0].insts, reports[2].insts);
    assert_eq!(reports[0].insts, reports[3].insts);
}

#[test]
fn organizations_agree_on_alpha() {
    let (isa, image) = alpha_program();
    let reports = all_reports(isa, &image);
    check_agreement(&reports, "20100\n");
}

#[test]
fn organizations_agree_on_arm() {
    let (isa, image) = arm_program();
    let reports = all_reports(isa, &image);
    check_agreement(&reports, "20100\n");
}

#[test]
fn organizations_agree_on_ppc() {
    let (isa, image) = ppc_program();
    let reports = all_reports(isa, &image);
    check_agreement(&reports, "20100\n");
}

#[test]
fn interface_traffic_reflects_semantic_detail() {
    let (isa, image) = alpha_program();
    let reports = all_reports(isa, &image);
    let by_name = |n: &str| reports.iter().find(|r| r.organization == n).unwrap();
    // Step-level control: seven calls per instruction.
    assert!((by_name("timing-directed").calls_per_inst() - 7.0).abs() < 1e-9);
    // One call per instruction.
    assert!((by_name("integrated").calls_per_inst() - 1.0).abs() < 1e-9);
    // Block-level: well under one call per instruction.
    assert!(by_name("functional-first").calls_per_inst() < 0.5);
}

#[test]
fn timing_first_checker_catches_injected_bugs() {
    let (isa, image) = alpha_program();
    let cfg = CoreConfig::default();
    let clean = run_timing_first(isa, &image, &cfg, None).unwrap();
    assert_eq!(clean.mismatches, 0, "no bugs, no mismatches");
    let buggy = run_timing_first(isa, &image, &cfg, Some(97)).unwrap();
    assert!(buggy.mismatches > 0, "checker must detect injected corruption");
    // Flush-and-reload keeps the architectural results correct anyway.
    assert_eq!(String::from_utf8_lossy(&buggy.stdout), "20100\n");
}

#[test]
fn sff_rolls_back_on_memory_divergence() {
    // A program that loads a flag twice; the timing simulator decides the
    // memory value should have been different and forces a rollback.
    let src = "
_start: ldah r1, 2(r31)       ; r1 = 0x20000
        mov 0, r3
loop:   ldq r2, 0(r1)
        addq r3, 1, r3
        cmplt r3, 50, r4
        bne r4, loop
        mov 4, v0
        mov r2, a0
        callsys
        mov 1, v0
        mov 0, a0
        callsys
        .data
flag:   .word 0, 0
";
    let isa = lis_isa_alpha::spec();
    let image = lis_isa_alpha::assemble(src).unwrap();
    let cfg = CoreConfig::default();
    let clean = run_speculative_functional_first(isa, &image, &cfg, &[]).unwrap();
    assert_eq!(clean.rollbacks, 0);
    assert_eq!(String::from_utf8_lossy(&clean.stdout), "0\n");
    let overrides = [MemOverride { after_insts: 10, addr: 0x20000, size: 8, val: 7 }];
    let diverged = run_speculative_functional_first(isa, &image, &cfg, &overrides).unwrap();
    assert_eq!(diverged.rollbacks, 1);
    // After the rollback the re-executed loads observe the corrected value.
    assert_eq!(String::from_utf8_lossy(&diverged.stdout), "7\n");
}

#[test]
fn cache_and_predictor_counters_populate() {
    let (isa, image) = ppc_program();
    let cfg = CoreConfig::default();
    let r = run_integrated(isa, &image, &cfg).unwrap();
    assert!(r.icache_misses > 0, "cold caches must miss");
    assert!(r.mispredicts > 0, "a loop exit must mispredict at least once");
    assert!(r.ipc() > 0.1 && r.ipc() <= 1.0, "IPC {} out of range", r.ipc());
}

#[test]
fn ooo_model_agrees_and_extracts_ilp() {
    use lis_timing::{run_functional_first_ooo, OooConfig};
    let cfg = CoreConfig::default();
    for (isa, image) in [alpha_program(), arm_program(), ppc_program()] {
        let inorder = run_integrated(isa, &image, &cfg).unwrap();
        let ooo = run_functional_first_ooo(isa, &image, &cfg, &OooConfig::default()).unwrap();
        assert_eq!(ooo.stdout, inorder.stdout, "{}", isa.name);
        assert_eq!(ooo.insts, inorder.insts, "{}", isa.name);
        // A 4-wide OoO core must not be slower than the scalar in-order one.
        assert!(
            ooo.cycles <= inorder.cycles,
            "{}: ooo {} cycles vs in-order {}",
            isa.name,
            ooo.cycles,
            inorder.cycles
        );
        assert!(ooo.ipc() > 0.5, "{}: IPC {}", isa.name, ooo.ipc());
        // A narrower machine is slower or equal.
        let narrow =
            run_functional_first_ooo(isa, &image, &cfg, &OooConfig { width: 1, rob: 8 }).unwrap();
        assert!(narrow.cycles >= ooo.cycles, "{}", isa.name);
    }
}
