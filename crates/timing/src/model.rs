//! The shared in-order core timing model.
//!
//! All five organizations price instructions the same way — one cycle per
//! instruction plus cache and branch-prediction penalties — so their cycle
//! counts are comparable and the differences between organizations show up
//! where the paper says they do: in interface traffic, checking, and
//! recovery mechanics.

use crate::cache::Cache;
use crate::components::BranchPredictor;
use crate::report::{CoreConfig, TimingReport};
use lis_core::{DynInst, InstClass, IsaSpec, F_BR_TAKEN, F_BR_TARGET, F_EFF_ADDR, F_OPCODE};

/// Cycle accounting for an in-order core.
#[derive(Debug)]
pub struct CoreModel {
    /// Instruction cache.
    pub icache: Cache,
    /// Data cache.
    pub dcache: Cache,
    /// Branch predictor.
    pub pred: Box<dyn BranchPredictor>,
    /// Accumulated cycles.
    pub cycles: u64,
    mispredict_penalty: u64,
}

impl CoreModel {
    /// Builds the model from a configuration; `cfg.timing` selects the
    /// predictor, replacement policy, and prefetcher implementations.
    pub fn new(cfg: &CoreConfig) -> CoreModel {
        let t = cfg.timing;
        CoreModel {
            icache: Cache::with_components(cfg.icache, t.replacement, t.prefetcher),
            dcache: Cache::with_components(cfg.dcache, t.replacement, t.prefetcher),
            pred: t.predictor.build(cfg.predictor_entries),
            cycles: 0,
            mispredict_penalty: cfg.mispredict_penalty,
        }
    }

    /// Accounts for one retired instruction described by a published record.
    ///
    /// Uses only information available at the `Decode` level: the opcode
    /// index (for the class), the effective address, and branch resolution.
    pub fn retire(&mut self, isa: &IsaSpec, di: &DynInst) {
        self.cycles += 1 + self.icache.access(di.header.phys_pc);
        let Some(op) = di.field(F_OPCODE) else { return };
        let class = isa.inst(op as u16).class;
        match class {
            InstClass::Load | InstClass::Store => {
                if let Some(ea) = di.field(F_EFF_ADDR) {
                    self.cycles += self.dcache.access(ea);
                }
            }
            InstClass::Branch | InstClass::Jump => {
                let taken = di.field(F_BR_TAKEN).unwrap_or(0) != 0;
                let target = di.field(F_BR_TARGET).unwrap_or(di.header.next_pc);
                if !self.pred.update(di.header.pc, taken, target) {
                    self.cycles += self.mispredict_penalty;
                }
            }
            _ => {}
        }
    }

    /// Folds the model's counters into a report.
    pub fn fill(&self, report: &mut TimingReport) {
        report.cycles = self.cycles;
        report.icache_misses = self.icache.misses;
        report.dcache_misses = self.dcache.misses;
        report.mispredicts = self.pred.mispredicts();
    }
}
