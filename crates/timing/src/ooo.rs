//! A trace-driven out-of-order core model.
//!
//! The paper's functional-first examples — SimpleScalar and Zesto — are
//! out-of-order timing simulators fed by a functional instruction stream.
//! This model shows that the `block-decode` interface carries everything
//! such a consumer needs: opcode indices (for latencies), operand
//! identifiers (for the dependence graph), effective addresses (for the
//! cache), and branch resolution (for the predictor).
//!
//! The model is a classic dataflow-limit estimator with structural bounds:
//! fetch/commit width, a reorder-buffer occupancy window, per-class
//! execution latencies, cache penalties, and mispredict-driven fetch
//! redirection.

use crate::cache::Cache;
use crate::predict::Predictor;
use crate::report::{CoreConfig, TimingReport};
use lis_core::{DynInst, InstClass, IsaSpec, F_BR_TAKEN, F_BR_TARGET, F_EFF_ADDR, F_OPCODE};
use lis_mem::Image;
use lis_runtime::{SimStop, Simulator};
use std::collections::HashMap;

/// Structural parameters of the out-of-order core.
#[derive(Debug, Clone, Copy)]
pub struct OooConfig {
    /// Instructions fetched/committed per cycle.
    pub width: u64,
    /// Reorder-buffer entries.
    pub rob: usize,
}

impl Default for OooConfig {
    fn default() -> Self {
        OooConfig { width: 4, rob: 64 }
    }
}

/// Execution latency of one instruction, by class and mnemonic.
fn latency(isa: &IsaSpec, op: u16) -> u64 {
    let def = isa.inst(op);
    match def.class {
        InstClass::Load | InstClass::Store => 2,
        InstClass::Alu if def.name.contains("div") => 12,
        InstClass::Alu if def.name.contains("mul") => 3,
        _ => 1,
    }
}

/// Runs the out-of-order model over a functional-first trace.
///
/// # Errors
///
/// Returns [`SimStop`] on faults or budget exhaustion.
pub fn run_functional_first_ooo(
    isa: &'static IsaSpec,
    image: &Image,
    cfg: &CoreConfig,
    ooo: &OooConfig,
) -> Result<TimingReport, SimStop> {
    let mut sim = Simulator::new(isa, lis_core::BLOCK_DECODE).expect("block-decode is valid");
    sim.load_program(image).map_err(SimStop::Fault)?;
    let mut icache = Cache::new(cfg.icache);
    let mut dcache = Cache::new(cfg.dcache);
    let mut pred = Predictor::new(cfg.predictor_entries);

    // Dataflow bookkeeping.
    let mut reg_ready: HashMap<(u8, u16), u64> = HashMap::new();
    // Completion cycles of the last `rob` instructions, oldest first.
    let mut window: std::collections::VecDeque<u64> = Default::default();
    let mut fetch_cycle = 0u64;
    let mut last_commit = 0u64;
    let mut committed_in_cycle = 0u64;
    let mut trace: Vec<DynInst> = Vec::new();
    let mut report = TimingReport { organization: "functional-first-ooo", ..Default::default() };

    while !sim.state.halted {
        if sim.stats.insts >= 200_000_000 {
            return Err(SimStop::MaxInsts);
        }
        sim.next_block(&mut trace)?;
        for di in &trace {
            if let Some(f) = di.fault {
                return Err(SimStop::Fault(f));
            }
            // Fetch: bandwidth-limited, plus icache misses stall the front end.
            fetch_cycle += icache.access(di.header.phys_pc);
            // ROB: an instruction cannot enter until the oldest of the
            // previous `rob` instructions has completed.
            if window.len() == ooo.rob {
                let oldest_done = window.pop_front().expect("rob nonempty");
                fetch_cycle = fetch_cycle.max(oldest_done);
            }
            // Issue when sources are ready.
            let mut ready = fetch_cycle + 1;
            if let Some(ops) = di.operands() {
                for s in ops.srcs() {
                    if let Some(&t) = reg_ready.get(&(s.class, s.index)) {
                        ready = ready.max(t);
                    }
                }
            }
            let Some(op) = di.field(F_OPCODE) else { continue };
            let mut done = ready + latency(isa, op as u16);
            let class = isa.inst(op as u16).class;
            if matches!(class, InstClass::Load | InstClass::Store) {
                if let Some(ea) = di.field(F_EFF_ADDR) {
                    done += dcache.access(ea);
                }
            }
            if let Some(ops) = di.operands() {
                for d in ops.dests() {
                    reg_ready.insert((d.class, d.index), done);
                }
            }
            // Branches redirect fetch when mispredicted, at resolution time.
            if matches!(class, InstClass::Branch | InstClass::Jump) {
                let taken = di.field(F_BR_TAKEN).unwrap_or(0) != 0;
                let target = di.field(F_BR_TARGET).unwrap_or(di.header.next_pc);
                if !pred.update(di.header.pc, taken, target) {
                    fetch_cycle = fetch_cycle.max(done + cfg.mispredict_penalty);
                }
            }
            window.push_back(done);
            // In-order commit, width per cycle.
            if done > last_commit {
                last_commit = done;
                committed_in_cycle = 1;
            } else {
                committed_in_cycle += 1;
                if committed_in_cycle >= ooo.width {
                    last_commit += 1;
                    committed_in_cycle = 0;
                }
            }
            // Fetch bandwidth.
            committed_in_cycle = committed_in_cycle.min(ooo.width);
            if sim.stats.insts.is_multiple_of(ooo.width) {
                fetch_cycle += 1;
            }
        }
    }
    report.cycles = last_commit.max(fetch_cycle);
    report.insts = sim.stats.insts;
    report.interface_calls = sim.stats.calls;
    report.icache_misses = icache.misses;
    report.dcache_misses = dcache.misses;
    report.mispredicts = pred.mispredicts;
    report.exit_code = sim.state.exit_code;
    report.stdout = sim.stdout().to_vec();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_sane() {
        let c = OooConfig::default();
        assert!(c.width >= 1 && c.rob >= c.width as usize);
    }
}
