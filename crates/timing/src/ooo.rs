//! A trace-driven out-of-order core model.
//!
//! The paper's functional-first examples — SimpleScalar and Zesto — are
//! out-of-order timing simulators fed by a functional instruction stream.
//! This model shows that the `block-decode` interface carries everything
//! such a consumer needs: opcode indices (for latencies), operand
//! identifiers (for the dependence graph), effective addresses (for the
//! cache), and branch resolution (for the predictor).
//!
//! The model is a classic dataflow-limit estimator with structural bounds:
//! fetch/commit width, a reorder-buffer occupancy window, per-class
//! execution latencies, cache penalties, and mispredict-driven fetch
//! redirection.
//!
//! [`OooCore`] is the consumer itself: it is fed one published [`DynInst`]
//! at a time and never touches a functional simulator, so the *same* core
//! can run execute-driven (fed by [`run_functional_first_ooo`]) or
//! trace-driven (fed by a recorded instruction stream, see `lis-trace`).
//! Feeding it the same record stream produces the same report, bit for bit
//! — which is what makes record-once/replay-anywhere verifiable.

use crate::cache::Cache;
use crate::components::BranchPredictor;
use crate::report::{CoreConfig, TimingReport};
use lis_core::{DynInst, InstClass, IsaSpec, F_BR_TAKEN, F_BR_TARGET, F_EFF_ADDR, F_OPCODE};
use lis_mem::Image;
use lis_runtime::{SimStop, Simulator};
use std::collections::{HashMap, VecDeque};

/// Structural parameters of the out-of-order core.
#[derive(Debug, Clone, Copy)]
pub struct OooConfig {
    /// Instructions fetched/committed per cycle.
    pub width: u64,
    /// Reorder-buffer entries.
    pub rob: usize,
}

impl Default for OooConfig {
    fn default() -> Self {
        OooConfig { width: 4, rob: 64 }
    }
}

/// Execution latency of one instruction, by class and mnemonic.
fn latency(isa: &IsaSpec, op: u16) -> u64 {
    let def = isa.inst(op);
    match def.class {
        InstClass::Load | InstClass::Store => 2,
        InstClass::Alu if def.name.contains("div") => 12,
        InstClass::Alu if def.name.contains("mul") => 3,
        _ => 1,
    }
}

/// Baseline counters captured by [`OooCore::mark_measurement_start`] so a
/// warmed-up core reports only the measured region. Hits and correct
/// predictions are baselined alongside misses and mispredicts: a rate over
/// the measured region needs both sides of each ratio, or warm-up hits
/// dilute every post-warm-up rate.
#[derive(Debug, Clone, Copy, Default)]
struct Baseline {
    cycles: u64,
    insts: u64,
    icache_misses: u64,
    icache_hits: u64,
    dcache_misses: u64,
    dcache_hits: u64,
    mispredicts: u64,
    correct: u64,
}

/// The out-of-order timing consumer, decoupled from any instruction source.
///
/// Feed it published records in program order with [`OooCore::feed`]; read
/// the result with [`OooCore::report`]. The core is a pure function of the
/// fed record stream — it holds no reference to a functional simulator —
/// so an execute-driven run and a trace replay of the same stream produce
/// identical reports.
#[derive(Debug)]
pub struct OooCore {
    isa: &'static IsaSpec,
    ooo: OooConfig,
    mispredict_penalty: u64,
    icache: Cache,
    dcache: Cache,
    pred: Box<dyn BranchPredictor>,
    /// Cycle at which each architectural register's value becomes available.
    reg_ready: HashMap<(u8, u16), u64>,
    /// Completion cycles of the last `rob` instructions, oldest first.
    window: VecDeque<u64>,
    fetch_cycle: u64,
    last_commit: u64,
    committed_in_cycle: u64,
    /// Instructions fed so far (warm-up included).
    fed: u64,
    base: Baseline,
}

fn rate(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        part as f64 / whole as f64
    }
}

impl OooCore {
    /// Builds a cold core. Degenerate structural parameters are clamped to
    /// their minimum legal values (a 1-wide front end, a 1-entry ROB) so a
    /// hostile or fuzzed configuration can model a tiny machine but never a
    /// crashing one. `cfg.timing` selects the predictor, replacement
    /// policy, and prefetcher implementations.
    pub fn new(isa: &'static IsaSpec, cfg: &CoreConfig, ooo: &OooConfig) -> OooCore {
        let t = cfg.timing;
        OooCore {
            isa,
            ooo: OooConfig { width: ooo.width.max(1), rob: ooo.rob.max(1) },
            mispredict_penalty: cfg.mispredict_penalty,
            icache: Cache::with_components(cfg.icache, t.replacement, t.prefetcher),
            dcache: Cache::with_components(cfg.dcache, t.replacement, t.prefetcher),
            pred: t.predictor.build(cfg.predictor_entries),
            reg_ready: HashMap::new(),
            window: VecDeque::new(),
            fetch_cycle: 0,
            last_commit: 0,
            committed_in_cycle: 0,
            fed: 0,
            base: Baseline::default(),
        }
    }

    /// Current simulated cycle count (warm-up included).
    fn cycles_now(&self) -> u64 {
        self.last_commit.max(self.fetch_cycle)
    }

    /// Marks the end of a warm-up region: everything fed so far keeps its
    /// microarchitectural effect (cache contents, predictor state, register
    /// readiness) but is excluded from the reported instruction, cycle,
    /// miss, and rate accounting. Sharded replay uses this for overlap
    /// warm-up.
    pub fn mark_measurement_start(&mut self) {
        self.base = Baseline {
            cycles: self.cycles_now(),
            insts: self.fed,
            icache_misses: self.icache.misses,
            icache_hits: self.icache.hits,
            dcache_misses: self.dcache.misses,
            dcache_hits: self.dcache.hits,
            mispredicts: self.pred.mispredicts(),
            correct: self.pred.correct(),
        };
    }

    /// Instruction-cache miss rate over the measured region only.
    pub fn icache_miss_rate(&self) -> f64 {
        let misses = self.icache.misses - self.base.icache_misses;
        let hits = self.icache.hits - self.base.icache_hits;
        rate(misses, misses + hits)
    }

    /// Data-cache miss rate over the measured region only.
    pub fn dcache_miss_rate(&self) -> f64 {
        let misses = self.dcache.misses - self.base.dcache_misses;
        let hits = self.dcache.hits - self.base.dcache_hits;
        rate(misses, misses + hits)
    }

    /// Branch misprediction rate over the measured region only.
    pub fn mispredict_rate(&self) -> f64 {
        let mis = self.pred.mispredicts() - self.base.mispredicts;
        let ok = self.pred.correct() - self.base.correct;
        rate(mis, mis + ok)
    }

    /// Feeds one published record.
    ///
    /// # Errors
    ///
    /// Returns the record's architectural fault, if it carries one — the
    /// stream ends at a fault, exactly as execute-driven simulation does.
    pub fn feed(&mut self, di: &DynInst) -> Result<(), lis_core::Fault> {
        if let Some(f) = di.fault {
            return Err(f);
        }
        self.fed += 1;
        // Fetch: bandwidth-limited, plus icache misses stall the front end.
        self.fetch_cycle += self.icache.access(di.header.phys_pc);
        // ROB: an instruction cannot enter until the oldest of the
        // previous `rob` instructions has completed. The pop is defensive
        // (`>=` plus `if let`, never an `expect`): a record stream this core
        // does not control — a projected trace, a truncated chunk, a
        // reconfigured core fed mid-stream — must degrade, not abort a
        // whole sweep cell.
        while self.window.len() >= self.ooo.rob {
            let Some(oldest_done) = self.window.pop_front() else { break };
            self.fetch_cycle = self.fetch_cycle.max(oldest_done);
        }
        // Issue when sources are ready.
        let mut ready = self.fetch_cycle + 1;
        if let Some(ops) = di.operands() {
            for s in ops.srcs() {
                if let Some(&t) = self.reg_ready.get(&(s.class, s.index)) {
                    ready = ready.max(t);
                }
            }
        }
        let Some(op) = di.field(F_OPCODE) else { return Ok(()) };
        let mut done = ready + latency(self.isa, op as u16);
        let class = self.isa.inst(op as u16).class;
        if matches!(class, InstClass::Load | InstClass::Store) {
            if let Some(ea) = di.field(F_EFF_ADDR) {
                done += self.dcache.access(ea);
            }
        }
        if let Some(ops) = di.operands() {
            for d in ops.dests() {
                self.reg_ready.insert((d.class, d.index), done);
            }
        }
        // Branches redirect fetch when mispredicted, at resolution time.
        if matches!(class, InstClass::Branch | InstClass::Jump) {
            let taken = di.field(F_BR_TAKEN).unwrap_or(0) != 0;
            let target = di.field(F_BR_TARGET).unwrap_or(di.header.next_pc);
            if !self.pred.update(di.header.pc, taken, target) {
                self.fetch_cycle = self.fetch_cycle.max(done + self.mispredict_penalty);
            }
        }
        self.window.push_back(done);
        // In-order commit, at most `width` per cycle: an instruction
        // retires at its completion cycle, pushed one cycle later when this
        // commit cycle's bandwidth is already spent.
        let earliest = if self.committed_in_cycle < self.ooo.width {
            self.last_commit
        } else {
            self.last_commit + 1
        };
        let commit = done.max(earliest);
        if commit > self.last_commit {
            self.last_commit = commit;
            self.committed_in_cycle = 1;
        } else {
            self.committed_in_cycle += 1;
        }
        // Fetch bandwidth.
        if self.fed.is_multiple_of(self.ooo.width) {
            self.fetch_cycle += 1;
        }
        Ok(())
    }

    /// The report for everything fed since the last
    /// [`OooCore::mark_measurement_start`] (or since construction).
    /// Interface-call counts, exit codes, and stdout belong to the
    /// instruction *source*, so the frontend fills those in.
    pub fn report(&self, organization: &'static str) -> TimingReport {
        TimingReport {
            organization,
            cycles: self.cycles_now() - self.base.cycles,
            insts: self.fed - self.base.insts,
            icache_misses: self.icache.misses - self.base.icache_misses,
            dcache_misses: self.dcache.misses - self.base.dcache_misses,
            mispredicts: self.pred.mispredicts() - self.base.mispredicts,
            ..Default::default()
        }
    }
}

/// Runs the out-of-order model over a functional-first trace.
///
/// # Errors
///
/// Returns [`SimStop`] on faults or budget exhaustion.
pub fn run_functional_first_ooo(
    isa: &'static IsaSpec,
    image: &Image,
    cfg: &CoreConfig,
    ooo: &OooConfig,
) -> Result<TimingReport, SimStop> {
    let mut sim = Simulator::new(isa, lis_core::BLOCK_DECODE).expect("block-decode is valid");
    sim.load_program(image).map_err(SimStop::Fault)?;
    let mut core = OooCore::new(isa, cfg, ooo);
    let mut trace: Vec<DynInst> = Vec::new();

    while !sim.state.halted {
        if sim.stats.insts >= 200_000_000 {
            return Err(SimStop::MaxInsts);
        }
        sim.next_block(&mut trace)?;
        for di in &trace {
            core.feed(di).map_err(SimStop::Fault)?;
        }
    }
    let mut report = core.report("functional-first-ooo");
    report.interface_calls = sim.stats.calls;
    report.fallback_blocks = sim.stats.fallback_blocks;
    report.exit_code = sim.state.exit_code;
    report.stdout = sim.stdout().to_vec();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lis_core::{FieldSet, Frame, Operands, RegClass};

    /// An ALU opcode with unit latency in the toy ISA.
    fn alu_op(isa: &IsaSpec) -> u16 {
        (0..isa.num_insts() as u16)
            .find(|&op| {
                let def = isa.inst(op);
                matches!(def.class, InstClass::Alu)
                    && !def.name.contains("mul")
                    && !def.name.contains("div")
            })
            .expect("toy ISA has a simple ALU instruction")
    }

    /// A published record at `pc` carrying only an opcode (and optionally
    /// one source and one destination register).
    fn rec(op: u16, pc: u64, src: Option<u16>, dest: Option<u16>) -> DynInst {
        let mut frame = Frame::new();
        frame.set(F_OPCODE, u64::from(op));
        let mut ops = Operands::new();
        if let Some(s) = src {
            ops.push_src(RegClass(0), s);
        }
        if let Some(d) = dest {
            ops.push_dest(RegClass(0), d);
        }
        let mut di = DynInst::new();
        di.header.pc = pc;
        di.header.phys_pc = pc;
        di.header.next_pc = pc + 4;
        di.publish(&frame, FieldSet::of(&[F_OPCODE]), &ops, true);
        di
    }

    #[test]
    fn default_config_is_sane() {
        let c = OooConfig::default();
        assert!(c.width >= 1 && c.rob >= c.width as usize);
    }

    #[test]
    fn measurement_baseline_subtracts() {
        // A core that marks measurement start immediately after construction
        // reports exactly what an unmarked core reports.
        let isa = lis_runtime::toy::spec();
        let cfg = CoreConfig::default();
        let mut a = OooCore::new(isa, &cfg, &OooConfig::default());
        let mut b = OooCore::new(isa, &cfg, &OooConfig::default());
        b.mark_measurement_start();
        let mut di = DynInst::new();
        di.header.pc = 0x1000;
        di.header.phys_pc = 0x1000;
        di.header.next_pc = 0x1004;
        a.feed(&di).unwrap();
        b.feed(&di).unwrap();
        let (ra, rb) = (a.report("t"), b.report("t"));
        assert_eq!(ra.cycles, rb.cycles);
        assert_eq!(ra.insts, rb.insts);
    }

    #[test]
    fn commit_width_is_enforced() {
        // Regression: the seed accounting reset `committed_in_cycle` to 1
        // whenever `done > last_commit`, so completion times that keep
        // increasing were never bandwidth-limited, and the width-th commit
        // in a cycle pushed `last_commit` forward by an extra cycle even
        // when nothing else retired. Discriminator: a burst of exactly
        // `width` independent unit-latency instructions must cost the same
        // cycles on a width-4 core as on a width-8 core (the burst fits one
        // commit cycle either way); the seed reported one extra cycle on
        // the width-4 core.
        let isa = lis_runtime::toy::spec();
        let cfg = CoreConfig::default();
        let op = alu_op(isa);
        let burst: Vec<DynInst> = (0..4).map(|i| rec(op, 0x1000 + i * 4, None, None)).collect();
        let mut narrow = OooCore::new(isa, &cfg, &OooConfig { width: 4, rob: 64 });
        let mut wide = OooCore::new(isa, &cfg, &OooConfig { width: 8, rob: 64 });
        for di in &burst {
            narrow.feed(di).unwrap();
            wide.feed(di).unwrap();
        }
        assert_eq!(
            narrow.report("t").cycles,
            wide.report("t").cycles,
            "a width-sized burst fits one commit cycle on both cores"
        );
    }

    #[test]
    fn narrow_commit_costs_cycles_on_ilp_heavy_streams() {
        // With abundant ILP (independent unit-latency instructions), commit
        // and fetch bandwidth are the only limits: a width-1 core must
        // report strictly more cycles than a width-4 core.
        let isa = lis_runtime::toy::spec();
        let cfg = CoreConfig::default();
        let op = alu_op(isa);
        let mut w1 = OooCore::new(isa, &cfg, &OooConfig { width: 1, rob: 64 });
        let mut w4 = OooCore::new(isa, &cfg, &OooConfig { width: 4, rob: 64 });
        for i in 0..256u64 {
            let di = rec(op, 0x1000 + i * 4, None, None);
            w1.feed(&di).unwrap();
            w4.feed(&di).unwrap();
        }
        let (r1, r4) = (w1.report("t"), w4.report("t"));
        assert!(
            r1.cycles > r4.cycles,
            "width-1 ({} cycles) must be slower than width-4 ({} cycles)",
            r1.cycles,
            r4.cycles
        );
    }

    #[test]
    fn dependent_chain_is_not_width_limited() {
        // A serial dependence chain commits one instruction per completion
        // cycle regardless of width; widening must not change the total.
        let isa = lis_runtime::toy::spec();
        let cfg = CoreConfig::default();
        let op = alu_op(isa);
        let mut w1 = OooCore::new(isa, &cfg, &OooConfig { width: 1, rob: 64 });
        let mut w4 = OooCore::new(isa, &cfg, &OooConfig { width: 4, rob: 64 });
        for i in 0..64u64 {
            // Each instruction reads and writes r7: a pure serial chain.
            let di = rec(op, 0x1000 + i * 4, Some(7), Some(7));
            w1.feed(&di).unwrap();
            w4.feed(&di).unwrap();
        }
        // The chain's dataflow limit dominates; the width-4 core can only
        // be faster through fetch bandwidth, never slower.
        assert!(w4.report("t").cycles <= w1.report("t").cycles);
    }

    #[test]
    fn warmed_rates_equal_cold_rates() {
        // Regression: `mark_measurement_start` baselined misses and
        // mispredicts but not hits and correct predictions, so rates on a
        // warmed core mixed warm-up hits into the measured denominator.
        // Warm one core with hit-heavy traffic in a disjoint tag range
        // (same sets, different tags — the measured stream's cache outcomes
        // are identical warm or cold), then measure both cores over the
        // same stream and require identical rates.
        let isa = lis_runtime::toy::spec();
        let cfg = CoreConfig::default();
        let op = alu_op(isa);
        let mut warmed = OooCore::new(isa, &cfg, &OooConfig::default());
        let mut cold = OooCore::new(isa, &cfg, &OooConfig::default());
        // Warm-up: 64 re-touches of 4 lines at 0x10000 — mostly icache
        // hits, no branches.
        for i in 0..64u64 {
            warmed.feed(&rec(op, 0x10000 + (i % 4) * 32, None, None)).unwrap();
        }
        warmed.mark_measurement_start();
        cold.mark_measurement_start();
        // Measured stream: tags in 0x20000-space never collide with the
        // warm-up's 0x10000-space tags, so both cores miss identically.
        for i in 0..32u64 {
            let di = rec(op, 0x20000 + i * 4, None, None);
            warmed.feed(&di).unwrap();
            cold.feed(&di).unwrap();
        }
        assert_eq!(
            warmed.report("t").icache_misses,
            cold.report("t").icache_misses,
            "disjoint tag ranges: measured misses are identical"
        );
        assert!(
            (warmed.icache_miss_rate() - cold.icache_miss_rate()).abs() < 1e-12,
            "warmed {} vs cold {}",
            warmed.icache_miss_rate(),
            cold.icache_miss_rate()
        );
        assert!((warmed.dcache_miss_rate() - cold.dcache_miss_rate()).abs() < 1e-12);
        assert!((warmed.mispredict_rate() - cold.mispredict_rate()).abs() < 1e-12);
        assert!(cold.icache_miss_rate() > 0.0, "the measured stream does miss");
    }

    #[test]
    fn zero_sized_rob_cannot_panic() {
        // Regression: the retire path used `pop_front().expect()`, which a
        // rob=0 configuration turned into a panic on the first fed record.
        let isa = lis_runtime::toy::spec();
        let cfg = CoreConfig::default();
        let mut core = OooCore::new(isa, &cfg, &OooConfig { width: 0, rob: 0 });
        let mut di = DynInst::new();
        di.header.pc = 0x1000;
        di.header.phys_pc = 0x1000;
        di.header.next_pc = 0x1004;
        for _ in 0..8 {
            core.feed(&di).unwrap();
        }
        assert_eq!(core.report("t").insts, 8);
    }

    #[test]
    fn short_and_empty_streams_report_cleanly() {
        // A projected/truncated stream may carry records with no published
        // fields at all; the core must accept them and an empty stream must
        // produce an all-zero report rather than aborting.
        let isa = lis_runtime::toy::spec();
        let cfg = CoreConfig::default();
        let core = OooCore::new(isa, &cfg, &OooConfig::default());
        assert_eq!(core.report("t").insts, 0);
        assert_eq!(core.mispredict_rate(), 0.0);
        assert_eq!(core.icache_miss_rate(), 0.0);
        let mut core = OooCore::new(isa, &cfg, &OooConfig { width: 1, rob: 1 });
        let bare = DynInst::new(); // no opcode, no operands, no fields
        for _ in 0..3 {
            core.feed(&bare).unwrap();
        }
        assert_eq!(core.report("t").insts, 3);
    }

    #[test]
    fn feed_returns_fault() {
        let isa = lis_runtime::toy::spec();
        let cfg = CoreConfig::default();
        let mut core = OooCore::new(isa, &cfg, &OooConfig::default());
        let mut di = DynInst::new();
        di.fault = Some(lis_core::Fault::ArithOverflow);
        assert!(core.feed(&di).is_err());
        assert_eq!(core.report("t").insts, 0);
    }

    #[test]
    fn presets_change_the_numbers_but_stay_deterministic() {
        // Feeding the same stream to two cores built from the same preset
        // must produce identical reports; distinct presets are allowed (and
        // here arranged) to differ.
        let isa = lis_runtime::toy::spec();
        let op = alu_op(isa);
        let stream: Vec<DynInst> =
            (0..128u64).map(|i| rec(op, 0x1000 + (i % 64) * 64, None, None)).collect();
        let run = |t: crate::components::TimingConfig| {
            let cfg = CoreConfig { timing: t, ..CoreConfig::default() };
            let mut core = OooCore::new(isa, &cfg, &OooConfig::default());
            for di in &stream {
                core.feed(di).unwrap();
            }
            core.report("t")
        };
        for preset in crate::components::TimingConfig::PRESETS {
            let (a, b) = (run(preset), run(preset));
            assert_eq!(a.cycles, b.cycles, "{}", preset.name);
            assert_eq!(a.icache_misses, b.icache_misses, "{}", preset.name);
        }
    }
}
