//! Pluggable timing components behind ChampSim-style seams.
//!
//! The paper's premise is that the timing side is the part you *vary* while
//! the single functional specification stays fixed. This module provides the
//! variation points: a [`BranchPredictor`] seam, a [`ReplacementPolicy`] seam
//! consulted by [`Cache`](crate::Cache), and a [`Prefetcher`] hook — each a
//! tiny object-safe trait with two or three shipped implementations, selected
//! by a [`TimingConfig`] that flows from the CLI and the serve protocol into
//! every core model.
//!
//! All implementations are deterministic (the "random" replacement policy is
//! a fixed-seed xorshift), so sweeps and trace replays remain byte-identical
//! across job counts and machines.

use crate::predict::Predictor;

// -------------------------------------------------------------------------
// Branch prediction
// -------------------------------------------------------------------------

/// The branch-prediction seam: direction plus (when taken) target.
///
/// Implementations keep their own correct/mispredict counters so a core can
/// report rates over a measured region by snapshotting both.
pub trait BranchPredictor: std::fmt::Debug + Send {
    /// Predicts the branch at `pc`: `(taken, predicted_target)`.
    fn predict(&self, pc: u64) -> (bool, Option<u64>);
    /// Updates with the architectural outcome; returns whether the earlier
    /// prediction was fully correct (direction and, when taken, target).
    fn update(&mut self, pc: u64, taken: bool, target: u64) -> bool;
    /// Correct predictions so far.
    fn correct(&self) -> u64;
    /// Mispredictions so far.
    fn mispredicts(&self) -> u64;
    /// Misprediction rate over everything seen so far.
    fn mispredict_rate(&self) -> f64 {
        let total = self.correct() + self.mispredicts();
        if total == 0 {
            0.0
        } else {
            self.mispredicts() as f64 / total as f64
        }
    }
    /// Clones the predictor behind the trait object.
    fn clone_box(&self) -> Box<dyn BranchPredictor>;
}

impl Clone for Box<dyn BranchPredictor> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

impl BranchPredictor for Predictor {
    fn predict(&self, pc: u64) -> (bool, Option<u64>) {
        Predictor::predict(self, pc)
    }
    fn update(&mut self, pc: u64, taken: bool, target: u64) -> bool {
        Predictor::update(self, pc, taken, target)
    }
    fn correct(&self) -> u64 {
        self.correct
    }
    fn mispredicts(&self) -> u64 {
        self.mispredicts
    }
    fn clone_box(&self) -> Box<dyn BranchPredictor> {
        Box::new(self.clone())
    }
}

/// A gshare predictor: two-bit counters indexed by the PC XOR a global
/// history register, with the same direct-mapped BTB as the bimodal
/// predictor. Correlated branches that alias in a bimodal table separate
/// under distinct history contexts.
#[derive(Debug, Clone)]
pub struct Gshare {
    counters: Vec<u8>,
    btb_tags: Vec<u64>,
    btb_targets: Vec<u64>,
    mask: usize,
    history: u64,
    correct: u64,
    mispredicts: u64,
}

impl Gshare {
    /// Builds a gshare predictor with `entries` counters/BTB slots.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    pub fn new(entries: usize) -> Gshare {
        assert!(entries.is_power_of_two(), "entries must be a power of two");
        Gshare {
            counters: vec![1; entries], // weakly not-taken
            btb_tags: vec![u64::MAX; entries],
            btb_targets: vec![0; entries],
            mask: entries - 1,
            history: 0,
            correct: 0,
            mispredicts: 0,
        }
    }

    #[inline]
    fn dir_index(&self, pc: u64) -> usize {
        (((pc >> 2) ^ self.history) as usize) & self.mask
    }

    #[inline]
    fn btb_index(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & self.mask
    }
}

impl BranchPredictor for Gshare {
    fn predict(&self, pc: u64) -> (bool, Option<u64>) {
        let taken = self.counters[self.dir_index(pc)] >= 2;
        let b = self.btb_index(pc);
        let target = (self.btb_tags[b] == pc).then(|| self.btb_targets[b]);
        (taken, target)
    }

    fn update(&mut self, pc: u64, taken: bool, target: u64) -> bool {
        let (pred_taken, pred_target) = self.predict(pc);
        let ok = pred_taken == taken && (!taken || pred_target == Some(target));
        if ok {
            self.correct += 1;
        } else {
            self.mispredicts += 1;
        }
        let i = self.dir_index(pc);
        let c = &mut self.counters[i];
        if taken {
            *c = (*c + 1).min(3);
            let b = self.btb_index(pc);
            self.btb_tags[b] = pc;
            self.btb_targets[b] = target;
        } else {
            *c = c.saturating_sub(1);
        }
        self.history = (self.history << 1) | u64::from(taken);
        ok
    }

    fn correct(&self) -> u64 {
        self.correct
    }
    fn mispredicts(&self) -> u64 {
        self.mispredicts
    }
    fn clone_box(&self) -> Box<dyn BranchPredictor> {
        Box::new(self.clone())
    }
}

/// The degenerate static predictor: every branch is predicted not-taken.
/// The pessimistic floor a real predictor must beat.
#[derive(Debug, Clone, Default)]
pub struct NotTaken {
    correct: u64,
    mispredicts: u64,
}

impl NotTaken {
    /// Builds the static not-taken predictor.
    pub fn new() -> NotTaken {
        NotTaken::default()
    }
}

impl BranchPredictor for NotTaken {
    fn predict(&self, _pc: u64) -> (bool, Option<u64>) {
        (false, None)
    }

    fn update(&mut self, _pc: u64, taken: bool, _target: u64) -> bool {
        if taken {
            self.mispredicts += 1;
        } else {
            self.correct += 1;
        }
        !taken
    }

    fn correct(&self) -> u64 {
        self.correct
    }
    fn mispredicts(&self) -> u64 {
        self.mispredicts
    }
    fn clone_box(&self) -> Box<dyn BranchPredictor> {
        Box::new(self.clone())
    }
}

// -------------------------------------------------------------------------
// Cache replacement
// -------------------------------------------------------------------------

/// The replacement seam: the cache owns tags and fills invalid ways itself;
/// the policy is told about hits and fills and is consulted for a victim
/// only when a set is full.
pub trait ReplacementPolicy: std::fmt::Debug + Send {
    /// A demand access hit `way` of `set`.
    fn on_hit(&mut self, set: usize, way: usize);
    /// A line was installed into `way` of `set` (demand fill or prefetch).
    fn on_fill(&mut self, set: usize, way: usize);
    /// Chooses the way to evict from a full `set`.
    fn victim(&mut self, set: usize) -> usize;
    /// Clones the policy behind the trait object.
    fn clone_box(&self) -> Box<dyn ReplacementPolicy>;
}

impl Clone for Box<dyn ReplacementPolicy> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// True-LRU replacement: every hit and fill refreshes a recency stamp; the
/// victim is the least recently stamped way.
#[derive(Debug, Clone)]
pub struct LruPolicy {
    stamps: Vec<u64>,
    ways: usize,
    tick: u64,
}

impl LruPolicy {
    /// Builds an LRU policy for `sets` × `ways` lines.
    pub fn new(sets: usize, ways: usize) -> LruPolicy {
        LruPolicy { stamps: vec![0; sets * ways], ways, tick: 0 }
    }

    #[inline]
    fn touch(&mut self, set: usize, way: usize) {
        self.tick += 1;
        self.stamps[set * self.ways + way] = self.tick;
    }
}

impl ReplacementPolicy for LruPolicy {
    fn on_hit(&mut self, set: usize, way: usize) {
        self.touch(set, way);
    }
    fn on_fill(&mut self, set: usize, way: usize) {
        self.touch(set, way);
    }
    fn victim(&mut self, set: usize) -> usize {
        let base = set * self.ways;
        (0..self.ways).min_by_key(|&w| self.stamps[base + w]).expect("ways > 0")
    }
    fn clone_box(&self) -> Box<dyn ReplacementPolicy> {
        Box::new(self.clone())
    }
}

/// FIFO replacement: stamps advance only on fills, so the victim is the way
/// that has been resident longest regardless of hits.
#[derive(Debug, Clone)]
pub struct FifoPolicy {
    stamps: Vec<u64>,
    ways: usize,
    tick: u64,
}

impl FifoPolicy {
    /// Builds a FIFO policy for `sets` × `ways` lines.
    pub fn new(sets: usize, ways: usize) -> FifoPolicy {
        FifoPolicy { stamps: vec![0; sets * ways], ways, tick: 0 }
    }
}

impl ReplacementPolicy for FifoPolicy {
    fn on_hit(&mut self, _set: usize, _way: usize) {}
    fn on_fill(&mut self, set: usize, way: usize) {
        self.tick += 1;
        self.stamps[set * self.ways + way] = self.tick;
    }
    fn victim(&mut self, set: usize) -> usize {
        let base = set * self.ways;
        (0..self.ways).min_by_key(|&w| self.stamps[base + w]).expect("ways > 0")
    }
    fn clone_box(&self) -> Box<dyn ReplacementPolicy> {
        Box::new(self.clone())
    }
}

/// Seeded pseudo-random replacement: a fixed-seed xorshift64 picks the
/// victim, so two caches built the same way evict identically — determinism
/// is part of the contract, "random" refers only to the eviction pattern.
#[derive(Debug, Clone)]
pub struct RandomPolicy {
    state: u64,
    ways: usize,
}

impl RandomPolicy {
    /// Builds a random policy for sets of `ways` lines.
    pub fn new(ways: usize) -> RandomPolicy {
        RandomPolicy { state: 0x9E37_79B9_7F4A_7C15, ways }
    }

    #[inline]
    fn next(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x
    }
}

impl ReplacementPolicy for RandomPolicy {
    fn on_hit(&mut self, _set: usize, _way: usize) {}
    fn on_fill(&mut self, _set: usize, _way: usize) {}
    fn victim(&mut self, _set: usize) -> usize {
        (self.next() % self.ways as u64) as usize
    }
    fn clone_box(&self) -> Box<dyn ReplacementPolicy> {
        Box::new(self.clone())
    }
}

// -------------------------------------------------------------------------
// Prefetching
// -------------------------------------------------------------------------

/// The prefetch hook: observes every demand access (in line-number space)
/// and may name one line to install. Prefetch fills go through the
/// replacement policy but never touch the hit/miss counters — only the
/// [`Cache::prefetches`](crate::Cache::prefetches) count.
pub trait Prefetcher: std::fmt::Debug + Send {
    /// Observes a demand access to `line`; returns a line to prefetch.
    fn observe(&mut self, line: u64, hit: bool) -> Option<u64>;
    /// Clones the prefetcher behind the trait object.
    fn clone_box(&self) -> Box<dyn Prefetcher>;
}

impl Clone for Box<dyn Prefetcher> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// No prefetching — the classic configuration.
#[derive(Debug, Clone, Default)]
pub struct NonePrefetcher;

impl Prefetcher for NonePrefetcher {
    fn observe(&mut self, _line: u64, _hit: bool) -> Option<u64> {
        None
    }
    fn clone_box(&self) -> Box<dyn Prefetcher> {
        Box::new(self.clone())
    }
}

/// Next-line prefetching: every demand miss pulls in the sequentially next
/// line. Wins on streaming code and instruction fetch.
#[derive(Debug, Clone, Default)]
pub struct NextLinePrefetcher;

impl Prefetcher for NextLinePrefetcher {
    fn observe(&mut self, line: u64, hit: bool) -> Option<u64> {
        (!hit).then(|| line.wrapping_add(1))
    }
    fn clone_box(&self) -> Box<dyn Prefetcher> {
        Box::new(self.clone())
    }
}

/// Global-stride prefetching: tracks the delta between successive demand
/// lines and, when the same non-zero delta repeats, prefetches one stride
/// ahead. Catches strided array walks next-line misses on.
#[derive(Debug, Clone, Default)]
pub struct StridePrefetcher {
    last_line: u64,
    last_delta: u64,
    primed: bool,
}

impl Prefetcher for StridePrefetcher {
    fn observe(&mut self, line: u64, _hit: bool) -> Option<u64> {
        let delta = line.wrapping_sub(self.last_line);
        let matched = self.primed && delta != 0 && delta == self.last_delta;
        self.last_delta = delta;
        self.last_line = line;
        self.primed = true;
        matched.then(|| line.wrapping_add(delta))
    }
    fn clone_box(&self) -> Box<dyn Prefetcher> {
        Box::new(self.clone())
    }
}

// -------------------------------------------------------------------------
// Selection
// -------------------------------------------------------------------------

/// Which [`BranchPredictor`] implementation a core uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredictorKind {
    /// Two-bit bimodal counters with a direct-mapped BTB (the seed model).
    Bimodal,
    /// Global-history gshare with the same BTB.
    Gshare,
    /// Static always-not-taken.
    NotTaken,
}

impl PredictorKind {
    /// Builds the selected predictor with `entries` table slots.
    pub fn build(self, entries: usize) -> Box<dyn BranchPredictor> {
        match self {
            PredictorKind::Bimodal => Box::new(Predictor::new(entries)),
            PredictorKind::Gshare => Box::new(Gshare::new(entries)),
            PredictorKind::NotTaken => Box::new(NotTaken::new()),
        }
    }

    /// The kind's name as it appears in presets and JSON.
    pub fn name(self) -> &'static str {
        match self {
            PredictorKind::Bimodal => "bimodal",
            PredictorKind::Gshare => "gshare",
            PredictorKind::NotTaken => "not-taken",
        }
    }
}

/// Which [`ReplacementPolicy`] implementation a cache uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplacementKind {
    /// True LRU (the seed model).
    Lru,
    /// First-in first-out.
    Fifo,
    /// Seeded pseudo-random.
    Random,
}

impl ReplacementKind {
    /// Builds the selected policy for a `sets` × `ways` cache.
    pub fn build(self, sets: usize, ways: usize) -> Box<dyn ReplacementPolicy> {
        match self {
            ReplacementKind::Lru => Box::new(LruPolicy::new(sets, ways)),
            ReplacementKind::Fifo => Box::new(FifoPolicy::new(sets, ways)),
            ReplacementKind::Random => Box::new(RandomPolicy::new(ways)),
        }
    }

    /// The kind's name as it appears in presets and JSON.
    pub fn name(self) -> &'static str {
        match self {
            ReplacementKind::Lru => "lru",
            ReplacementKind::Fifo => "fifo",
            ReplacementKind::Random => "random",
        }
    }
}

/// Which [`Prefetcher`] implementation a cache uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrefetchKind {
    /// No prefetching (the seed model).
    None,
    /// Next-line on demand miss.
    NextLine,
    /// Global-stride.
    Stride,
}

impl PrefetchKind {
    /// Builds the selected prefetcher.
    pub fn build(self) -> Box<dyn Prefetcher> {
        match self {
            PrefetchKind::None => Box::new(NonePrefetcher),
            PrefetchKind::NextLine => Box::new(NextLinePrefetcher),
            PrefetchKind::Stride => Box::new(StridePrefetcher::default()),
        }
    }

    /// The kind's name as it appears in presets and JSON.
    pub fn name(self) -> &'static str {
        match self {
            PrefetchKind::None => "none",
            PrefetchKind::NextLine => "next-line",
            PrefetchKind::Stride => "stride",
        }
    }
}

/// One named selection of timing components — the unit the sweep's timing
/// axis and `lis trace replay --timing` iterate over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimingConfig {
    /// Preset name as used on the command line and in sweep JSON.
    pub name: &'static str,
    /// Branch predictor selection.
    pub predictor: PredictorKind,
    /// Cache replacement selection (both caches).
    pub replacement: ReplacementKind,
    /// Prefetcher selection (both caches).
    pub prefetcher: PrefetchKind,
}

impl TimingConfig {
    /// The seed components: bimodal predictor, LRU replacement, no
    /// prefetching. Byte-identical behavior to the pre-seam models.
    pub const CLASSIC: TimingConfig = TimingConfig {
        name: "classic",
        predictor: PredictorKind::Bimodal,
        replacement: ReplacementKind::Lru,
        prefetcher: PrefetchKind::None,
    };

    /// Gshare prediction with next-line prefetching over LRU caches.
    pub const AGGRESSIVE: TimingConfig = TimingConfig {
        name: "aggressive",
        predictor: PredictorKind::Gshare,
        replacement: ReplacementKind::Lru,
        prefetcher: PrefetchKind::NextLine,
    };

    /// Bimodal prediction with FIFO replacement and stride prefetching.
    pub const STREAM: TimingConfig = TimingConfig {
        name: "stream",
        predictor: PredictorKind::Bimodal,
        replacement: ReplacementKind::Fifo,
        prefetcher: PrefetchKind::Stride,
    };

    /// The floor: not-taken prediction, random replacement, no prefetching.
    pub const MINIMAL: TimingConfig = TimingConfig {
        name: "minimal",
        predictor: PredictorKind::NotTaken,
        replacement: ReplacementKind::Random,
        prefetcher: PrefetchKind::None,
    };

    /// Every named preset, in catalog order.
    pub const PRESETS: [TimingConfig; 4] =
        [Self::CLASSIC, Self::AGGRESSIVE, Self::STREAM, Self::MINIMAL];

    /// Looks a preset up by name.
    pub fn named(name: &str) -> Option<TimingConfig> {
        Self::PRESETS.into_iter().find(|p| p.name == name)
    }

    /// Comma-separated preset names, for error messages and usage text.
    pub fn preset_names() -> String {
        Self::PRESETS.map(|p| p.name).join(", ")
    }
}

impl Default for TimingConfig {
    fn default() -> Self {
        TimingConfig::CLASSIC
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_catalog_is_complete_and_unique() {
        // The catalog must cross all three dimensions: every implementation
        // of every component appears in at least one preset.
        assert!(TimingConfig::PRESETS.len() >= 3);
        for kind in [PredictorKind::Bimodal, PredictorKind::Gshare, PredictorKind::NotTaken] {
            assert!(TimingConfig::PRESETS.iter().any(|p| p.predictor == kind), "{kind:?}");
        }
        for kind in [ReplacementKind::Lru, ReplacementKind::Fifo, ReplacementKind::Random] {
            assert!(TimingConfig::PRESETS.iter().any(|p| p.replacement == kind), "{kind:?}");
        }
        for kind in [PrefetchKind::None, PrefetchKind::NextLine, PrefetchKind::Stride] {
            assert!(TimingConfig::PRESETS.iter().any(|p| p.prefetcher == kind), "{kind:?}");
        }
        let mut names: Vec<_> = TimingConfig::PRESETS.iter().map(|p| p.name).collect();
        names.dedup();
        assert_eq!(names.len(), TimingConfig::PRESETS.len(), "duplicate preset name");
        assert_eq!(TimingConfig::named("classic"), Some(TimingConfig::CLASSIC));
        assert_eq!(TimingConfig::named("no-such"), None);
        assert_eq!(TimingConfig::default(), TimingConfig::CLASSIC);
    }

    #[test]
    fn gshare_separates_correlated_branches() {
        // Two branches whose low PC bits alias but whose outcomes depend on
        // history: gshare learns both; bimodal thrashes one counter.
        let mut g = Gshare::new(16);
        let mut b = Predictor::new(16);
        // Alternating taken/not-taken at one pc: bimodal oscillates around
        // the weakly-not-taken boundary, gshare keys off the history bit.
        for i in 0..64u64 {
            let taken = i % 2 == 0;
            g.update(0x1000, taken, 0x2000);
            BranchPredictor::update(&mut b, 0x1000, taken, 0x2000);
        }
        assert!(
            g.mispredicts() < b.mispredicts,
            "gshare {} vs bimodal {}",
            g.mispredicts(),
            b.mispredicts
        );
    }

    #[test]
    fn not_taken_counts_outcomes() {
        let mut p = NotTaken::new();
        assert!(p.update(0x10, false, 0));
        assert!(!p.update(0x10, true, 0x20));
        assert_eq!((p.correct(), p.mispredicts()), (1, 1));
        assert_eq!(p.predict(0x10), (false, None));
    }

    #[test]
    fn random_policy_is_deterministic() {
        let mut a = RandomPolicy::new(4);
        let mut b = RandomPolicy::new(4);
        let va: Vec<usize> = (0..32).map(|_| a.victim(0)).collect();
        let vb: Vec<usize> = (0..32).map(|_| b.victim(0)).collect();
        assert_eq!(va, vb);
        assert!(va.iter().all(|&w| w < 4));
        assert!(va.windows(2).any(|w| w[0] != w[1]), "should vary");
    }

    #[test]
    fn fifo_ignores_hits() {
        let mut f = FifoPolicy::new(1, 2);
        f.on_fill(0, 0);
        f.on_fill(0, 1);
        f.on_hit(0, 0); // does not refresh
        assert_eq!(f.victim(0), 0, "way 0 is still the oldest fill");
        let mut l = LruPolicy::new(1, 2);
        l.on_fill(0, 0);
        l.on_fill(0, 1);
        l.on_hit(0, 0); // refreshes
        assert_eq!(l.victim(0), 1, "way 1 is now least recent");
    }

    #[test]
    fn stride_prefetcher_locks_onto_strides() {
        let mut s = StridePrefetcher::default();
        assert_eq!(s.observe(10, false), None, "first access: no history");
        assert_eq!(s.observe(14, false), None, "first delta: not yet repeated");
        assert_eq!(s.observe(18, false), Some(22), "stride 4 confirmed");
        assert_eq!(s.observe(22, true), Some(26), "hits keep the stream going");
        assert_eq!(s.observe(5, false), None, "stride break resets");
    }

    #[test]
    fn next_line_only_fires_on_miss() {
        let mut n = NextLinePrefetcher;
        assert_eq!(n.observe(7, false), Some(8));
        assert_eq!(n.observe(7, true), None);
    }
}
