//! # lis-timing — decoupled timing-simulator organizations
//!
//! Working implementations of every microarchitectural simulator
//! organization in the paper's taxonomy (Figure 1), each built on a
//! synthesized functional simulator with exactly the interface detail its
//! organization requires:
//!
//! * [`run_integrated`] — timing mixed with functionality (the baseline);
//! * [`run_functional_first`] — functional simulator produces a trace,
//!   timing consumes it (`block-decode` interface);
//! * [`run_timing_directed`] — timing drives each step of each instruction
//!   (`step-all` interface, scoreboard from operand identifiers);
//! * [`run_timing_first`] — timing implements functionality, checked
//!   per-instruction by a minimal functional simulator, flush-and-reload on
//!   mismatch;
//! * [`run_speculative_functional_first`] — functional runs ahead under
//!   checkpoints; timing corrects memory and rolls back on divergence
//!   (`block-decode-spec` interface);
//! * [`run_functional_first_ooo`] — a SimpleScalar/Zesto-style out-of-order
//!   consumer of the same functional-first trace.
//!
//! The shared substrate — a set-associative [`Cache`], a pluggable
//! [`BranchPredictor`], and the in-order [`CoreModel`] — keeps cycle
//! accounting identical across organizations so their reports are
//! comparable.
//!
//! The microarchitectural components themselves sit behind ChampSim-style
//! seams (see [`components`]): branch prediction, cache replacement, and
//! prefetching are each an object-safe trait with several shipped
//! implementations, selected by a named [`TimingConfig`] preset. The
//! functional specification never changes across presets — only the timing
//! side varies, which is the paper's single-specification principle at
//! work.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cache;
pub mod components;
mod model;
mod ooo;
mod orgs;
mod predict;
mod report;

pub use cache::{Cache, CacheConfig};
pub use components::{
    BranchPredictor, FifoPolicy, Gshare, LruPolicy, NextLinePrefetcher, NonePrefetcher, NotTaken,
    PredictorKind, PrefetchKind, Prefetcher, RandomPolicy, ReplacementKind, ReplacementPolicy,
    StridePrefetcher, TimingConfig,
};
pub use model::CoreModel;
pub use ooo::{run_functional_first_ooo, OooConfig, OooCore};
pub use orgs::{
    run_functional_first, run_integrated, run_speculative_functional_first, run_timing_directed,
    run_timing_first, MemOverride,
};
pub use predict::Predictor;
pub use report::{CoreConfig, TimingReport};
