//! # lis-timing — decoupled timing-simulator organizations
//!
//! Working implementations of every microarchitectural simulator
//! organization in the paper's taxonomy (Figure 1), each built on a
//! synthesized functional simulator with exactly the interface detail its
//! organization requires:
//!
//! * [`run_integrated`] — timing mixed with functionality (the baseline);
//! * [`run_functional_first`] — functional simulator produces a trace,
//!   timing consumes it (`block-decode` interface);
//! * [`run_timing_directed`] — timing drives each step of each instruction
//!   (`step-all` interface, scoreboard from operand identifiers);
//! * [`run_timing_first`] — timing implements functionality, checked
//!   per-instruction by a minimal functional simulator, flush-and-reload on
//!   mismatch;
//! * [`run_speculative_functional_first`] — functional runs ahead under
//!   checkpoints; timing corrects memory and rolls back on divergence
//!   (`block-decode-spec` interface);
//! * [`run_functional_first_ooo`] — a SimpleScalar/Zesto-style out-of-order
//!   consumer of the same functional-first trace.
//!
//! The shared substrate — a set-associative [`Cache`], a bimodal
//! [`Predictor`], and the in-order [`CoreModel`] — keeps cycle accounting
//! identical across organizations so their reports are comparable.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cache;
mod model;
mod ooo;
mod orgs;
mod predict;
mod report;

pub use cache::{Cache, CacheConfig};
pub use model::CoreModel;
pub use ooo::{run_functional_first_ooo, OooConfig, OooCore};
pub use orgs::{
    run_functional_first, run_integrated, run_speculative_functional_first, run_timing_directed,
    run_timing_first, MemOverride,
};
pub use predict::Predictor;
pub use report::{CoreConfig, TimingReport};
