//! A bimodal branch predictor with a branch target buffer.

/// Two-bit-counter direction predictor plus a direct-mapped BTB.
#[derive(Debug, Clone)]
pub struct Predictor {
    counters: Vec<u8>,
    btb_tags: Vec<u64>,
    btb_targets: Vec<u64>,
    mask: usize,
    /// Correct direction predictions.
    pub correct: u64,
    /// Mispredictions (direction or target).
    pub mispredicts: u64,
}

impl Predictor {
    /// Builds a predictor with `entries` counters/BTB slots (power of two).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    pub fn new(entries: usize) -> Predictor {
        assert!(entries.is_power_of_two(), "entries must be a power of two");
        Predictor {
            counters: vec![1; entries], // weakly not-taken
            btb_tags: vec![u64::MAX; entries],
            btb_targets: vec![0; entries],
            mask: entries - 1,
            correct: 0,
            mispredicts: 0,
        }
    }

    #[inline]
    fn index(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & self.mask
    }

    /// Predicts a branch at `pc`: `(taken, predicted_target)`.
    pub fn predict(&self, pc: u64) -> (bool, Option<u64>) {
        let i = self.index(pc);
        let taken = self.counters[i] >= 2;
        let target = (self.btb_tags[i] == pc).then(|| self.btb_targets[i]);
        (taken, target)
    }

    /// Updates with the architectural outcome; returns whether the earlier
    /// prediction was fully correct (direction and, when taken, target).
    pub fn update(&mut self, pc: u64, taken: bool, target: u64) -> bool {
        let i = self.index(pc);
        let (pred_taken, pred_target) = self.predict(pc);
        let ok = pred_taken == taken && (!taken || pred_target == Some(target));
        if ok {
            self.correct += 1;
        } else {
            self.mispredicts += 1;
        }
        let c = &mut self.counters[i];
        if taken {
            *c = (*c + 1).min(3);
            self.btb_tags[i] = pc;
            self.btb_targets[i] = target;
        } else {
            *c = c.saturating_sub(1);
        }
        ok
    }

    /// Misprediction rate so far.
    pub fn mispredict_rate(&self) -> f64 {
        let total = self.correct + self.mispredicts;
        if total == 0 {
            0.0
        } else {
            self.mispredicts as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_a_loop_branch() {
        let mut p = Predictor::new(64);
        let pc = 0x1000;
        // Train: always taken to 0x2000.
        let mut last_ok = false;
        for _ in 0..8 {
            last_ok = p.update(pc, true, 0x2000);
        }
        assert!(last_ok, "predictor should have learned the branch");
        assert_eq!(p.predict(pc), (true, Some(0x2000)));
        // A single not-taken outcome is a mispredict but doesn't unlearn.
        assert!(!p.update(pc, false, 0));
        assert!(p.predict(pc).0);
    }

    #[test]
    fn target_change_counts_as_mispredict() {
        let mut p = Predictor::new(64);
        let pc = 0x1000;
        for _ in 0..4 {
            p.update(pc, true, 0x2000);
        }
        assert!(!p.update(pc, true, 0x3000), "new target must mispredict");
        assert!(p.update(pc, true, 0x3000));
    }

    #[test]
    fn initial_state_predicts_not_taken() {
        let p = Predictor::new(16);
        assert_eq!(p.predict(0x1000), (false, None));
        assert_eq!(p.mispredict_rate(), 0.0);
    }
}
