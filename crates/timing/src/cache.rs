//! A set-associative cache model with LRU replacement.

/// Static configuration of one cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size: usize,
    /// Associativity.
    pub ways: usize,
    /// Line size in bytes (power of two).
    pub line: usize,
    /// Miss penalty in cycles.
    pub miss_penalty: u64,
}

impl CacheConfig {
    /// A small L1 instruction cache (16 KiB, 2-way, 32-byte lines).
    pub const L1I: CacheConfig =
        CacheConfig { size: 16 * 1024, ways: 2, line: 32, miss_penalty: 10 };
    /// A small L1 data cache (16 KiB, 4-way, 32-byte lines).
    pub const L1D: CacheConfig =
        CacheConfig { size: 16 * 1024, ways: 4, line: 32, miss_penalty: 12 };
}

/// A set-associative cache with true-LRU replacement. Tracks hits and misses;
/// timing simulators convert misses into stall cycles.
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    sets: usize,
    line_shift: u32,
    /// `tags[set * ways + way]`; `u64::MAX` = invalid.
    tags: Vec<u64>,
    /// LRU stamps, parallel to `tags`.
    stamps: Vec<u64>,
    tick: u64,
    /// Hit count.
    pub hits: u64,
    /// Miss count.
    pub misses: u64,
}

impl Cache {
    /// Builds a cache from its configuration.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is not a power-of-two arrangement.
    pub fn new(cfg: CacheConfig) -> Cache {
        assert!(cfg.line.is_power_of_two() && cfg.ways > 0, "bad cache geometry");
        let lines = cfg.size / cfg.line;
        assert!(lines.is_multiple_of(cfg.ways), "size must divide into ways");
        let sets = lines / cfg.ways;
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        Cache {
            cfg,
            sets,
            line_shift: cfg.line.trailing_zeros(),
            tags: vec![u64::MAX; lines],
            stamps: vec![0; lines],
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// The configuration this cache was built from.
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    /// Performs one access; returns the added latency (0 on hit,
    /// `miss_penalty` on miss, after filling the line).
    pub fn access(&mut self, addr: u64) -> u64 {
        self.tick += 1;
        let line = addr >> self.line_shift;
        let set = (line as usize) & (self.sets - 1);
        let tag = line;
        let base = set * self.cfg.ways;
        let ways = &mut self.tags[base..base + self.cfg.ways];
        if let Some(w) = ways.iter().position(|&t| t == tag) {
            self.stamps[base + w] = self.tick;
            self.hits += 1;
            return 0;
        }
        self.misses += 1;
        // Replace the least recently used way.
        let victim = (0..self.cfg.ways).min_by_key(|&w| self.stamps[base + w]).expect("ways > 0");
        self.tags[base + victim] = tag;
        self.stamps[base + victim] = self.tick;
        self.cfg.miss_penalty
    }

    /// Miss rate so far.
    pub fn miss_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_miss_then_hit() {
        let mut c = Cache::new(CacheConfig::L1D);
        assert_eq!(c.access(0x1000), CacheConfig::L1D.miss_penalty);
        assert_eq!(c.access(0x1004), 0, "same line");
        assert_eq!(c.access(0x1020), CacheConfig::L1D.miss_penalty, "next line");
        assert_eq!(c.hits, 1);
        assert_eq!(c.misses, 2);
    }

    #[test]
    fn lru_evicts_oldest() {
        // Tiny cache: 2 sets, 2 ways, 16-byte lines.
        let cfg = CacheConfig { size: 64, ways: 2, line: 16, miss_penalty: 5 };
        let mut c = Cache::new(cfg);
        // Three distinct lines mapping to set 0 (stride = line * sets = 32).
        c.access(0x000);
        c.access(0x020);
        c.access(0x000); // refresh line 0
        assert_eq!(c.access(0x040), 5, "miss fills set");
        // 0x020 was LRU and must have been evicted; 0x000 must survive.
        assert_eq!(c.access(0x000), 0);
        assert_eq!(c.access(0x020), 5);
    }

    #[test]
    fn miss_rate_sane() {
        let mut c = Cache::new(CacheConfig::L1I);
        for pc in (0x1000..0x1100).step_by(4) {
            c.access(pc);
        }
        // 64 accesses over 8 lines: 8 misses.
        assert!((c.miss_rate() - 8.0 / 64.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "bad cache geometry")]
    fn bad_geometry_panics() {
        Cache::new(CacheConfig { size: 64, ways: 0, line: 16, miss_penalty: 1 });
    }
}
