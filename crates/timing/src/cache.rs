//! A set-associative cache model with pluggable replacement and prefetch.

use crate::components::{PrefetchKind, Prefetcher, ReplacementKind, ReplacementPolicy};

/// Static configuration of one cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size: usize,
    /// Associativity.
    pub ways: usize,
    /// Line size in bytes (power of two).
    pub line: usize,
    /// Miss penalty in cycles.
    pub miss_penalty: u64,
}

impl CacheConfig {
    /// A small L1 instruction cache (16 KiB, 2-way, 32-byte lines).
    pub const L1I: CacheConfig =
        CacheConfig { size: 16 * 1024, ways: 2, line: 32, miss_penalty: 10 };
    /// A small L1 data cache (16 KiB, 4-way, 32-byte lines).
    pub const L1D: CacheConfig =
        CacheConfig { size: 16 * 1024, ways: 4, line: 32, miss_penalty: 12 };
}

/// A set-associative cache with a pluggable [`ReplacementPolicy`] and
/// [`Prefetcher`] (see [`Cache::with_components`]; [`Cache::new`] selects
/// LRU with no prefetching, the seed behavior). Tracks hits and misses;
/// timing simulators convert misses into stall cycles.
#[derive(Debug)]
pub struct Cache {
    cfg: CacheConfig,
    sets: usize,
    line_shift: u32,
    /// `tags[set * ways + way]`; `u64::MAX` = invalid.
    tags: Vec<u64>,
    policy: Box<dyn ReplacementPolicy>,
    prefetcher: Box<dyn Prefetcher>,
    /// Hit count.
    pub hits: u64,
    /// Miss count.
    pub misses: u64,
    /// Lines installed by the prefetcher (not counted as hits or misses).
    pub prefetches: u64,
}

impl Clone for Cache {
    fn clone(&self) -> Cache {
        Cache {
            cfg: self.cfg,
            sets: self.sets,
            line_shift: self.line_shift,
            tags: self.tags.clone(),
            policy: self.policy.clone_box(),
            prefetcher: self.prefetcher.clone_box(),
            hits: self.hits,
            misses: self.misses,
            prefetches: self.prefetches,
        }
    }
}

impl Cache {
    /// Builds a cache with LRU replacement and no prefetching.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is not a power-of-two arrangement.
    pub fn new(cfg: CacheConfig) -> Cache {
        Cache::with_components(cfg, ReplacementKind::Lru, PrefetchKind::None)
    }

    /// Builds a cache with the selected replacement policy and prefetcher.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is not a power-of-two arrangement.
    pub fn with_components(
        cfg: CacheConfig,
        replacement: ReplacementKind,
        prefetch: PrefetchKind,
    ) -> Cache {
        assert!(cfg.line.is_power_of_two() && cfg.ways > 0, "bad cache geometry");
        let lines = cfg.size / cfg.line;
        assert!(lines.is_multiple_of(cfg.ways), "size must divide into ways");
        let sets = lines / cfg.ways;
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        Cache {
            cfg,
            sets,
            line_shift: cfg.line.trailing_zeros(),
            tags: vec![u64::MAX; lines],
            policy: replacement.build(sets, cfg.ways),
            prefetcher: prefetch.build(),
            hits: 0,
            misses: 0,
            prefetches: 0,
        }
    }

    /// The configuration this cache was built from.
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    /// Installs `line` into its set: an invalid way if one exists, else the
    /// policy's victim. Returns the way filled.
    fn install(&mut self, line: u64) -> usize {
        let set = (line as usize) & (self.sets - 1);
        let base = set * self.cfg.ways;
        let ways = &self.tags[base..base + self.cfg.ways];
        let way = match ways.iter().position(|&t| t == u64::MAX) {
            Some(w) => w,
            None => self.policy.victim(set),
        };
        self.tags[base + way] = line;
        self.policy.on_fill(set, way);
        way
    }

    /// Performs one demand access; returns the added latency (0 on hit,
    /// `miss_penalty` on miss, after filling the line and running the
    /// prefetch hook).
    pub fn access(&mut self, addr: u64) -> u64 {
        let line = addr >> self.line_shift;
        let set = (line as usize) & (self.sets - 1);
        let base = set * self.cfg.ways;
        let hit = self.tags[base..base + self.cfg.ways].iter().position(|&t| t == line);
        let penalty = if let Some(w) = hit {
            self.policy.on_hit(set, w);
            self.hits += 1;
            0
        } else {
            self.misses += 1;
            self.install(line);
            self.cfg.miss_penalty
        };
        if let Some(p) = self.prefetcher.observe(line, hit.is_some()) {
            let pset = (p as usize) & (self.sets - 1);
            let pbase = pset * self.cfg.ways;
            if !self.tags[pbase..pbase + self.cfg.ways].contains(&p) {
                self.install(p);
                self.prefetches += 1;
            }
        }
        penalty
    }

    /// Miss rate so far.
    pub fn miss_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_miss_then_hit() {
        let mut c = Cache::new(CacheConfig::L1D);
        assert_eq!(c.access(0x1000), CacheConfig::L1D.miss_penalty);
        assert_eq!(c.access(0x1004), 0, "same line");
        assert_eq!(c.access(0x1020), CacheConfig::L1D.miss_penalty, "next line");
        assert_eq!(c.hits, 1);
        assert_eq!(c.misses, 2);
        assert_eq!(c.prefetches, 0);
    }

    #[test]
    fn lru_evicts_oldest() {
        // Tiny cache: 2 sets, 2 ways, 16-byte lines.
        let cfg = CacheConfig { size: 64, ways: 2, line: 16, miss_penalty: 5 };
        let mut c = Cache::new(cfg);
        // Three distinct lines mapping to set 0 (stride = line * sets = 32).
        c.access(0x000);
        c.access(0x020);
        c.access(0x000); // refresh line 0
        assert_eq!(c.access(0x040), 5, "miss fills set");
        // 0x020 was LRU and must have been evicted; 0x000 must survive.
        assert_eq!(c.access(0x000), 0);
        assert_eq!(c.access(0x020), 5);
    }

    #[test]
    fn fifo_evicts_first_filled() {
        // Same traffic as `lru_evicts_oldest`, but under FIFO the hit on
        // 0x000 does not refresh it, so 0x000 (first in) is evicted.
        let cfg = CacheConfig { size: 64, ways: 2, line: 16, miss_penalty: 5 };
        let mut c = Cache::with_components(cfg, ReplacementKind::Fifo, PrefetchKind::None);
        c.access(0x000);
        c.access(0x020);
        c.access(0x000);
        assert_eq!(c.access(0x040), 5, "miss fills set");
        assert_eq!(c.access(0x020), 0, "0x020 survives under FIFO");
        assert_eq!(c.access(0x000), 5, "0x000 was first in, first out");
    }

    #[test]
    fn next_line_prefetch_hides_sequential_misses() {
        let mut c =
            Cache::with_components(CacheConfig::L1D, ReplacementKind::Lru, PrefetchKind::NextLine);
        c.access(0x1000); // miss; prefetches line of 0x1020
        assert_eq!(c.access(0x1020), 0, "prefetched line hits");
        assert_eq!(c.misses, 1);
        assert!(c.prefetches >= 1);
    }

    #[test]
    fn stride_prefetch_hides_strided_misses() {
        let mut c =
            Cache::with_components(CacheConfig::L1D, ReplacementKind::Lru, PrefetchKind::Stride);
        // Stride of 2 lines (64 bytes): next-line would miss every access.
        c.access(0x1000);
        c.access(0x1040);
        c.access(0x1080); // stride confirmed; prefetches 0x10c0's line
        assert_eq!(c.access(0x10c0), 0, "strided line was prefetched");
        assert_eq!(c.misses, 3);
    }

    #[test]
    fn prefetch_fills_do_not_count_as_demand_traffic() {
        let mut c =
            Cache::with_components(CacheConfig::L1I, ReplacementKind::Lru, PrefetchKind::NextLine);
        c.access(0x2000);
        assert_eq!(c.hits + c.misses, 1, "one demand access, one counter bump");
        assert_eq!(c.prefetches, 1);
    }

    #[test]
    fn miss_rate_sane() {
        let mut c = Cache::new(CacheConfig::L1I);
        for pc in (0x1000..0x1100).step_by(4) {
            c.access(pc);
        }
        // 64 accesses over 8 lines: 8 misses.
        assert!((c.miss_rate() - 8.0 / 64.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "bad cache geometry")]
    fn bad_geometry_panics() {
        Cache::new(CacheConfig { size: 64, ways: 0, line: 16, miss_penalty: 1 });
    }
}
