//! The five decoupled simulator organizations of Figure 1.
//!
//! Each organization is a complete, runnable microarchitectural simulator
//! built on the synthesized functional simulators — and each uses exactly
//! the interface detail level the paper says its organization needs:
//!
//! | organization | buildset | why |
//! |---|---|---|
//! | integrated | `one-all` | functionality intermingled with timing |
//! | functional-first | `block-decode` | one-way trace, moderate info |
//! | timing-directed | `step-all` | timing controls each step, full info |
//! | timing-first | `one-min` (checker) | checker needs no per-inst info |
//! | speculative functional-first | `block-decode-spec` | trace + rollback |

use crate::model::CoreModel;
use crate::report::{CoreConfig, TimingReport};
use lis_core::{
    DynInst, InstClass, IsaSpec, OperandRef, Step, BLOCK_DECODE, BLOCK_DECODE_SPEC, F_OPCODE,
    ONE_ALL, ONE_MIN,
};
use lis_mem::Image;
use lis_runtime::{SimStop, Simulator};
use std::collections::HashMap;

/// Ceiling on simulated instructions for every driver in this module.
const DEFAULT_BUDGET: u64 = 200_000_000;

/// How many operand positions the timing-directed bypass network covers.
const BYPASS_WINDOW: usize = 4;

/// Scans a record's source operands against the scoreboard. Returns the
/// issue cycle (stalled until every source is ready — *all* sources count,
/// however many the record carries) and which positions inside the bypass
/// window must be re-fetched at issue time. Positions beyond the window
/// degrade to no re-fetch instead of indexing out of bounds: a hostile or
/// projected record with extra sources must never abort the run (the
/// crate's degrade-don't-abort rule, cf. the rob=0 regression test).
fn scan_sources(
    srcs: &[OperandRef],
    ready: &HashMap<(u8, u16), u64>,
    decode_done: u64,
) -> (u64, [bool; BYPASS_WINDOW]) {
    let mut issue = decode_done + 1;
    let mut late_srcs = [false; BYPASS_WINDOW];
    for (i, s) in srcs.iter().enumerate() {
        if let Some(&t) = ready.get(&(s.class, s.index)) {
            issue = issue.max(t);
            if t > decode_done + 1 {
                if let Some(slot) = late_srcs.get_mut(i) {
                    *slot = true;
                }
            }
        }
    }
    (issue, late_srcs)
}

fn finish_report(
    mut report: TimingReport,
    model: &CoreModel,
    sim: &Simulator,
) -> Result<TimingReport, SimStop> {
    model.fill(&mut report);
    report.insts = sim.stats.insts;
    report.interface_calls = sim.stats.calls;
    report.exit_code = sim.state.exit_code;
    report.stdout = sim.stdout().to_vec();
    Ok(report)
}

// -------------------------------------------------------------------------
// 1. Integrated
// -------------------------------------------------------------------------

/// The integrated organization: a single simulator computing timing and
/// functionality together (here: the functional engine with the timing model
/// folded into the same loop). The baseline every decoupled organization is
/// compared against.
///
/// # Errors
///
/// Returns [`SimStop`] on faults or budget exhaustion.
pub fn run_integrated(
    isa: &'static IsaSpec,
    image: &Image,
    cfg: &CoreConfig,
) -> Result<TimingReport, SimStop> {
    let mut sim = Simulator::new(isa, ONE_ALL).expect("one-all is always valid");
    sim.load_program(image).map_err(SimStop::Fault)?;
    let mut model = CoreModel::new(cfg);
    let mut di = DynInst::new();
    while !sim.state.halted {
        if sim.stats.insts >= DEFAULT_BUDGET {
            return Err(SimStop::MaxInsts);
        }
        sim.next_inst(&mut di)?;
        if let Some(f) = di.fault {
            return Err(SimStop::Fault(f));
        }
        model.retire(isa, &di);
    }
    finish_report(TimingReport { organization: "integrated", ..Default::default() }, &model, &sim)
}

// -------------------------------------------------------------------------
// 2. Functional-first
// -------------------------------------------------------------------------

/// The functional-first organization: the functional simulator runs ahead a
/// basic block at a time and produces a trace of dynamic-instruction records;
/// the timing model consumes the trace. Needs only `Decode`-level
/// informational detail and block-level semantic detail.
///
/// # Errors
///
/// Returns [`SimStop`] on faults or budget exhaustion.
pub fn run_functional_first(
    isa: &'static IsaSpec,
    image: &Image,
    cfg: &CoreConfig,
) -> Result<TimingReport, SimStop> {
    let mut sim = Simulator::new(isa, BLOCK_DECODE).expect("block-decode is always valid");
    sim.load_program(image).map_err(SimStop::Fault)?;
    let mut model = CoreModel::new(cfg);
    let mut trace: Vec<DynInst> = Vec::new();
    while !sim.state.halted {
        if sim.stats.insts >= DEFAULT_BUDGET {
            return Err(SimStop::MaxInsts);
        }
        sim.next_block(&mut trace)?;
        for di in &trace {
            if let Some(f) = di.fault {
                return Err(SimStop::Fault(f));
            }
            model.retire(isa, di);
        }
    }
    finish_report(
        TimingReport { organization: "functional-first", ..Default::default() },
        &model,
        &sim,
    )
}

// -------------------------------------------------------------------------
// 3. Timing-directed
// -------------------------------------------------------------------------

/// The timing-directed organization: the timing simulator is in control and
/// asks the functional simulator to perform each *step* of each instruction
/// when the pipeline reaches the corresponding stage. Models an in-order
/// five-stage pipeline with a register scoreboard built from the published
/// operand identifiers — information only the `step-all` interface provides.
///
/// # Errors
///
/// Returns [`SimStop`] on faults or budget exhaustion.
pub fn run_timing_directed(
    isa: &'static IsaSpec,
    image: &Image,
    cfg: &CoreConfig,
) -> Result<TimingReport, SimStop> {
    let mut sim = Simulator::new(isa, lis_core::STEP_ALL).expect("step-all is always valid");
    sim.load_program(image).map_err(SimStop::Fault)?;
    let mut model = CoreModel::new(cfg);
    // Scoreboard: cycle at which each (class, reg) becomes available.
    let mut ready = std::collections::HashMap::<(u8, u16), u64>::new();
    let mut di = DynInst::new();
    while !sim.state.halted {
        if sim.stats.insts >= DEFAULT_BUDGET {
            return Err(SimStop::MaxInsts);
        }
        // Fetch stage.
        sim.step_inst(Step::Fetch, &mut di)?;
        if let Some(f) = di.fault {
            return Err(SimStop::Fault(f));
        }
        let fetch_done = model.cycles + 1 + model.icache.access(di.header.phys_pc);
        // Decode stage.
        sim.step_inst(Step::Decode, &mut di)?;
        if let Some(f) = di.fault {
            return Err(SimStop::Fault(f));
        }
        let decode_done = fetch_done + 1;
        // Operand fetch stalls until every source register is ready.
        sim.step_inst(Step::OperandFetch, &mut di)?;
        let (issue, late_srcs) = match di.operands() {
            Some(ops) => scan_sources(ops.srcs(), &ready, decode_done),
            None => (decode_done + 1, [false; BYPASS_WINDOW]),
        };
        // Sources produced by still-in-flight instructions arrive by bypass:
        // the timing model re-fetches exactly those operands at issue time —
        // the paper's individual operand-read control. A failed re-fetch
        // degrades (the operand-fetch value stands) rather than aborting.
        for (i, late) in late_srcs.into_iter().enumerate() {
            if late && sim.fetch_src_operand(&mut di, i).is_err() {
                break;
            }
        }
        // Execute.
        sim.step_inst(Step::Evaluate, &mut di)?;
        let exec_done = issue + 1;
        // Memory.
        sim.step_inst(Step::Memory, &mut di)?;
        if let Some(f) = di.fault {
            return Err(SimStop::Fault(f));
        }
        let mem_done =
            exec_done + di.field(lis_core::F_EFF_ADDR).map_or(0, |ea| model.dcache.access(ea));
        // Writeback: destinations become available.
        sim.step_inst(Step::Writeback, &mut di)?;
        let wb_done = mem_done + 1;
        if let Some(ops) = di.operands() {
            for d in ops.dests() {
                ready.insert((d.class, d.index), wb_done);
            }
        }
        sim.step_inst(Step::Exception, &mut di)?;
        if let Some(f) = di.fault {
            return Err(SimStop::Fault(f));
        }
        // Branch resolution at execute.
        if let Some(op) = di.field(F_OPCODE) {
            let class = isa.inst(op as u16).class;
            if matches!(class, InstClass::Branch | InstClass::Jump) {
                let taken = di.field(lis_core::F_BR_TAKEN).unwrap_or(0) != 0;
                let target = di.field(lis_core::F_BR_TARGET).unwrap_or(di.header.next_pc);
                if !model.pred.update(di.header.pc, taken, target) {
                    model.cycles = wb_done + cfg.mispredict_penalty;
                    continue;
                }
            }
        }
        model.cycles = wb_done.saturating_sub(4).max(model.cycles + 1);
    }
    finish_report(
        TimingReport { organization: "timing-directed", ..Default::default() },
        &model,
        &sim,
    )
}

// -------------------------------------------------------------------------
// 4. Timing-first
// -------------------------------------------------------------------------

/// The timing-first organization: the timing simulator implements
/// functionality itself and a functional simulator *checks* it after every
/// instruction; on a mismatch the timing simulator's state is reloaded from
/// the functional simulator (the paper's flush-and-reload).
///
/// `inject_bug_every` optionally corrupts the timing side every N
/// instructions so the checking machinery can be observed working — the
/// checker must catch every injected bug.
///
/// # Errors
///
/// Returns [`SimStop`] on faults or budget exhaustion.
pub fn run_timing_first(
    isa: &'static IsaSpec,
    image: &Image,
    cfg: &CoreConfig,
    inject_bug_every: Option<u64>,
) -> Result<TimingReport, SimStop> {
    // The "integrated" timing side.
    let mut timing = Simulator::new(isa, ONE_ALL).expect("one-all is always valid");
    timing.load_program(image).map_err(SimStop::Fault)?;
    // The checker: min detail — it is only queried for architectural state.
    let mut checker = Simulator::new(isa, ONE_MIN).expect("one-min is always valid");
    checker.load_program(image).map_err(SimStop::Fault)?;

    let mut model = CoreModel::new(cfg);
    let mut report = TimingReport { organization: "timing-first", ..Default::default() };
    let mut di = DynInst::new();
    let mut cdi = DynInst::new();
    while !timing.state.halted {
        if timing.stats.insts >= DEFAULT_BUDGET {
            return Err(SimStop::MaxInsts);
        }
        timing.next_inst(&mut di)?;
        if let Some(f) = di.fault {
            return Err(SimStop::Fault(f));
        }
        model.retire(isa, &di);
        if let Some(n) = inject_bug_every {
            if timing.stats.insts.is_multiple_of(n) {
                // A timing-model functionality bug: a register is corrupted.
                timing.state.gpr[5] ^= 0x1;
            }
        }
        // The checker executes the same instruction independently...
        checker.next_inst(&mut cdi)?;
        if let Some(f) = cdi.fault {
            return Err(SimStop::Fault(f));
        }
        // ...and the timing simulator's architectural state is compared.
        if !timing.state.regs_eq(&checker.state) {
            report.mismatches += 1;
            // Flush the pipeline and reload from the functional simulator.
            timing.state = checker.state.clone();
            timing.os = checker.os.clone();
            timing.clear_caches();
        }
    }
    model.fill(&mut report);
    report.insts = timing.stats.insts;
    report.interface_calls = checker.stats.calls; // the *interface* is the checker's
    report.exit_code = timing.state.exit_code;
    report.stdout = timing.stdout().to_vec();
    Ok(report)
}

// -------------------------------------------------------------------------
// 5. Speculative functional-first
// -------------------------------------------------------------------------

/// A timing-dependent memory override the timing simulator "discovers" while
/// verifying the speculative trace (e.g. another simulated thread's store
/// that should have been observed by a load).
#[derive(Debug, Clone, Copy)]
pub struct MemOverride {
    /// Trigger after this many retired instructions.
    pub after_insts: u64,
    /// Address whose value the timing simulator corrects.
    pub addr: u64,
    /// Width in bytes.
    pub size: u8,
    /// The corrected value.
    pub val: u64,
}

/// The speculative functional-first organization: the functional simulator
/// runs ahead block by block under a checkpoint; the timing simulator
/// verifies the speculative trace, and when it detects that execution should
/// have seen different memory contents it rolls the functional simulator
/// back, applies the corrected value, and re-executes.
///
/// # Errors
///
/// Returns [`SimStop`] on faults or budget exhaustion.
pub fn run_speculative_functional_first(
    isa: &'static IsaSpec,
    image: &Image,
    cfg: &CoreConfig,
    overrides: &[MemOverride],
) -> Result<TimingReport, SimStop> {
    let mut sim = Simulator::new(isa, BLOCK_DECODE_SPEC).expect("block-decode-spec is valid");
    sim.load_program(image).map_err(SimStop::Fault)?;
    let mut model = CoreModel::new(cfg);
    let mut report =
        TimingReport { organization: "speculative-functional-first", ..Default::default() };
    let mut trace: Vec<DynInst> = Vec::new();
    let mut pending: Vec<MemOverride> = overrides.to_vec();
    while !sim.state.halted {
        if sim.stats.insts >= DEFAULT_BUDGET {
            return Err(SimStop::MaxInsts);
        }
        let insts_before = sim.stats.insts;
        let cp = sim.checkpoint().expect("spec buildset has speculation");
        sim.next_block(&mut trace)?;
        // The timing simulator verifies the block: did the functional
        // simulator use memory values the timing model disagrees with?
        let divergence =
            pending.iter().position(|o| insts_before >= o.after_insts).map(|i| pending.remove(i));
        if let Some(o) = divergence {
            // Undo the speculative block, correct memory, re-execute.
            sim.rollback(cp).expect("checkpoint is open");
            sim.poke_mem(o.addr, o.size, o.val).map_err(SimStop::Fault)?;
            report.rollbacks += 1;
            continue;
        }
        sim.commit(cp).expect("checkpoint is open");
        for di in &trace {
            if let Some(f) = di.fault {
                return Err(SimStop::Fault(f));
            }
            model.retire(isa, di);
        }
    }
    model.fill(&mut report);
    report.insts = sim.stats.insts;
    report.interface_calls = sim.stats.calls;
    report.exit_code = sim.state.exit_code;
    report.stdout = sim.stdout().to_vec();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hostile_source_count_degrades_instead_of_panicking() {
        // Regression: the scoreboard scan indexed a fixed `[bool; 4]` by
        // operand position, so a record carrying more sources than the
        // bypass window panicked instead of degrading. A hostile/projected
        // record may declare any number of sources; every one must stall
        // issue, and only in-window positions get bypass re-fetches.
        let mut ready = HashMap::new();
        for r in 0..6u16 {
            ready.insert((0u8, r), 100 + u64::from(r));
        }
        let srcs: Vec<OperandRef> = (0..6).map(|r| OperandRef { class: 0, index: r }).collect();
        let (issue, late) = scan_sources(&srcs, &ready, 1);
        assert_eq!(issue, 105, "the out-of-window source still stalls issue");
        assert_eq!(late, [true; BYPASS_WINDOW], "in-window sources are late");
    }

    #[test]
    fn ready_sources_need_no_bypass() {
        let mut ready = HashMap::new();
        ready.insert((0u8, 1u16), 3); // ready by decode_done + 1
        ready.insert((0u8, 2u16), 9); // still in flight
        let srcs = [OperandRef { class: 0, index: 1 }, OperandRef { class: 0, index: 2 }];
        let (issue, late) = scan_sources(&srcs, &ready, 2);
        assert_eq!(issue, 9);
        assert_eq!(late, [false, true, false, false]);
        let (issue, late) = scan_sources(&[], &ready, 2);
        assert_eq!(issue, 3, "no sources: issue right after decode");
        assert_eq!(late, [false; BYPASS_WINDOW]);
    }
}
