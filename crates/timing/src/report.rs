//! Timing-simulation configuration and reporting.

use crate::cache::CacheConfig;
use crate::components::TimingConfig;

/// Pipeline/memory parameters shared by the timing models.
#[derive(Debug, Clone, Copy)]
pub struct CoreConfig {
    /// Instruction cache.
    pub icache: CacheConfig,
    /// Data cache.
    pub dcache: CacheConfig,
    /// Branch misprediction penalty in cycles.
    pub mispredict_penalty: u64,
    /// Branch predictor entries.
    pub predictor_entries: usize,
    /// Component selection: predictor, replacement policy, prefetcher.
    pub timing: TimingConfig,
}

impl Default for CoreConfig {
    fn default() -> Self {
        CoreConfig {
            icache: CacheConfig::L1I,
            dcache: CacheConfig::L1D,
            mispredict_penalty: 8,
            predictor_entries: 1024,
            timing: TimingConfig::CLASSIC,
        }
    }
}

/// What one timing-simulator organization produced for one program.
#[derive(Debug, Clone, Default)]
pub struct TimingReport {
    /// Organization name.
    pub organization: &'static str,
    /// Simulated cycles.
    pub cycles: u64,
    /// Retired instructions.
    pub insts: u64,
    /// Calls made through the functional interface.
    pub interface_calls: u64,
    /// Instruction-cache misses.
    pub icache_misses: u64,
    /// Data-cache misses.
    pub dcache_misses: u64,
    /// Branch mispredictions.
    pub mispredicts: u64,
    /// Timing-vs-functional mismatches detected (timing-first only).
    pub mismatches: u64,
    /// Rollbacks performed (speculative functional-first only).
    pub rollbacks: u64,
    /// Stale cached blocks the functional source degraded gracefully on
    /// (see `SimStats::fallback_blocks`). A whole-run fact of the
    /// instruction *source*: live frontends copy it from the engine, replay
    /// copies it from the trace footer, so the two `--stats-json` paths
    /// agree at run granularity.
    pub fallback_blocks: u64,
    /// Program exit code.
    pub exit_code: i64,
    /// Captured program output.
    pub stdout: Vec<u8>,
}

impl TimingReport {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.insts as f64 / self.cycles as f64
        }
    }

    /// Interface calls per instruction — the semantic-detail cost metric.
    pub fn calls_per_inst(&self) -> f64 {
        if self.insts == 0 {
            0.0
        } else {
            self.interface_calls as f64 / self.insts as f64
        }
    }

    /// Folds another report into this one by summing every counter.
    ///
    /// Sharded replay produces one report per shard; the merge is the
    /// aggregate over all measured regions. `exit_code` and `stdout` are
    /// whole-program facts, not per-shard ones, so they are taken from
    /// `other` only when this report has none (the caller feeds shards in
    /// order, and only the final shard carries them). `fallback_blocks` is
    /// likewise a whole-run fact that the caller sets once from the source,
    /// never a per-shard sum.
    pub fn merge(&mut self, other: &TimingReport) {
        self.cycles += other.cycles;
        self.insts += other.insts;
        self.interface_calls += other.interface_calls;
        self.icache_misses += other.icache_misses;
        self.dcache_misses += other.dcache_misses;
        self.mispredicts += other.mispredicts;
        self.mismatches += other.mismatches;
        self.rollbacks += other.rollbacks;
        if self.stdout.is_empty() {
            self.stdout = other.stdout.clone();
        }
        if self.exit_code == 0 {
            self.exit_code = other.exit_code;
        }
    }

    /// Renders the report as one flat JSON object (see `--stats-json`).
    /// `stdout` is included as a string with non-UTF-8 bytes replaced.
    pub fn to_json(&self) -> String {
        let mut o = lis_core::JsonObj::new();
        o.str("organization", self.organization)
            .u64("cycles", self.cycles)
            .u64("insts", self.insts)
            .u64("interface_calls", self.interface_calls)
            .u64("icache_misses", self.icache_misses)
            .u64("dcache_misses", self.dcache_misses)
            .u64("mispredicts", self.mispredicts)
            .u64("mismatches", self.mismatches)
            .u64("rollbacks", self.rollbacks)
            .u64("fallback_blocks", self.fallback_blocks)
            .f64("ipc", self.ipc())
            .f64("calls_per_inst", self.calls_per_inst())
            .i64("exit_code", self.exit_code)
            .str("stdout", &String::from_utf8_lossy(&self.stdout));
        o.finish()
    }
}

impl std::fmt::Display for TimingReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<22} {:>10} insts {:>12} cycles  IPC {:.3}  calls/inst {:>5.2}  miss(i/d) {}/{}  mispred {}",
            self.organization,
            self.insts,
            self.cycles,
            self.ipc(),
            self.calls_per_inst(),
            self.icache_misses,
            self.dcache_misses,
            self.mispredicts
        )?;
        if self.mismatches > 0 {
            write!(f, "  mismatches {}", self.mismatches)?;
        }
        if self.rollbacks > 0 {
            write!(f, "  rollbacks {}", self.rollbacks)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics() {
        let r =
            TimingReport { cycles: 200, insts: 100, interface_calls: 700, ..Default::default() };
        assert!((r.ipc() - 0.5).abs() < 1e-12);
        assert!((r.calls_per_inst() - 7.0).abs() < 1e-12);
        assert_eq!(TimingReport::default().ipc(), 0.0);
        assert!(!r.to_string().is_empty());
    }

    #[test]
    fn merge_sums_counters() {
        let mut a = TimingReport { cycles: 10, insts: 5, icache_misses: 1, ..Default::default() };
        let b = TimingReport {
            cycles: 20,
            insts: 7,
            mispredicts: 2,
            exit_code: 3,
            stdout: b"hi".to_vec(),
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.cycles, 30);
        assert_eq!(a.insts, 12);
        assert_eq!(a.icache_misses, 1);
        assert_eq!(a.mispredicts, 2);
        assert_eq!(a.exit_code, 3);
        assert_eq!(a.stdout, b"hi");
    }

    #[test]
    fn json_roundtrips_fields() {
        let r = TimingReport {
            organization: "test",
            cycles: 2,
            insts: 1,
            stdout: b"x\n".to_vec(),
            ..Default::default()
        };
        let j = r.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"organization\":\"test\""));
        assert!(j.contains("\"cycles\":2"));
        assert!(j.contains("\"stdout\":\"x\\n\""));
    }

    #[test]
    fn golden_json_includes_fallback_blocks() {
        // The exact serialized form both `lis run --stats-json` and
        // `lis trace replay --stats-json` emit for a degraded run; a shape
        // change here is a compatibility break for JSON consumers.
        let r = TimingReport {
            organization: "g",
            cycles: 4,
            insts: 2,
            fallback_blocks: 3,
            ..Default::default()
        };
        assert_eq!(
            r.to_json(),
            "{\"organization\":\"g\",\"cycles\":4,\"insts\":2,\
             \"interface_calls\":0,\"icache_misses\":0,\"dcache_misses\":0,\
             \"mispredicts\":0,\"mismatches\":0,\"rollbacks\":0,\
             \"fallback_blocks\":3,\"ipc\":0.500000,\"calls_per_inst\":0.000000,\
             \"exit_code\":0,\"stdout\":\"\"}"
        );
    }
}
