//! Timing-simulation configuration and reporting.

use crate::cache::CacheConfig;

/// Pipeline/memory parameters shared by the timing models.
#[derive(Debug, Clone, Copy)]
pub struct CoreConfig {
    /// Instruction cache.
    pub icache: CacheConfig,
    /// Data cache.
    pub dcache: CacheConfig,
    /// Branch misprediction penalty in cycles.
    pub mispredict_penalty: u64,
    /// Branch predictor entries.
    pub predictor_entries: usize,
}

impl Default for CoreConfig {
    fn default() -> Self {
        CoreConfig {
            icache: CacheConfig::L1I,
            dcache: CacheConfig::L1D,
            mispredict_penalty: 8,
            predictor_entries: 1024,
        }
    }
}

/// What one timing-simulator organization produced for one program.
#[derive(Debug, Clone, Default)]
pub struct TimingReport {
    /// Organization name.
    pub organization: &'static str,
    /// Simulated cycles.
    pub cycles: u64,
    /// Retired instructions.
    pub insts: u64,
    /// Calls made through the functional interface.
    pub interface_calls: u64,
    /// Instruction-cache misses.
    pub icache_misses: u64,
    /// Data-cache misses.
    pub dcache_misses: u64,
    /// Branch mispredictions.
    pub mispredicts: u64,
    /// Timing-vs-functional mismatches detected (timing-first only).
    pub mismatches: u64,
    /// Rollbacks performed (speculative functional-first only).
    pub rollbacks: u64,
    /// Program exit code.
    pub exit_code: i64,
    /// Captured program output.
    pub stdout: Vec<u8>,
}

impl TimingReport {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.insts as f64 / self.cycles as f64
        }
    }

    /// Interface calls per instruction — the semantic-detail cost metric.
    pub fn calls_per_inst(&self) -> f64 {
        if self.insts == 0 {
            0.0
        } else {
            self.interface_calls as f64 / self.insts as f64
        }
    }
}

impl std::fmt::Display for TimingReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<22} {:>10} insts {:>12} cycles  IPC {:.3}  calls/inst {:>5.2}  miss(i/d) {}/{}  mispred {}",
            self.organization,
            self.insts,
            self.cycles,
            self.ipc(),
            self.calls_per_inst(),
            self.icache_misses,
            self.dcache_misses,
            self.mispredicts
        )?;
        if self.mismatches > 0 {
            write!(f, "  mismatches {}", self.mismatches)?;
        }
        if self.rollbacks > 0 {
            write!(f, "  rollbacks {}", self.rollbacks)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics() {
        let r =
            TimingReport { cycles: 200, insts: 100, interface_calls: 700, ..Default::default() };
        assert!((r.ipc() - 0.5).abs() < 1e-12);
        assert!((r.calls_per_inst() - 7.0).abs() < 1e-12);
        assert_eq!(TimingReport::default().ipc(), 0.0);
        assert!(!r.to_string().is_empty());
    }
}
