//! Model-based property tests: the paged memory must behave exactly like a
//! flat byte map, for any interleaving of reads and writes of any width and
//! either endianness.

use lis_mem::{Endian, Mem};
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum Op {
    W8(u64, u8),
    W16(u64, u16, Endian),
    W32(u64, u32, Endian),
    W64(u64, u64, Endian),
    Bulk(u64, Vec<u8>),
}

fn endian() -> impl Strategy<Value = Endian> {
    prop_oneof![Just(Endian::Little), Just(Endian::Big)]
}

/// Addresses clustered into a few pages so operations actually collide.
fn addr() -> impl Strategy<Value = u64> {
    (0x1000u64..0x4000).prop_map(|a| a & !7)
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (addr(), any::<u8>()).prop_map(|(a, v)| Op::W8(a, v)),
        (addr(), any::<u16>(), endian()).prop_map(|(a, v, e)| Op::W16(a, v, e)),
        (addr(), any::<u32>(), endian()).prop_map(|(a, v, e)| Op::W32(a, v, e)),
        (addr(), any::<u64>(), endian()).prop_map(|(a, v, e)| Op::W64(a, v, e)),
        (addr(), proptest::collection::vec(any::<u8>(), 1..64)).prop_map(|(a, v)| Op::Bulk(a, v)),
    ]
}

fn model_write(model: &mut HashMap<u64, u8>, addr: u64, bytes: &[u8]) {
    for (i, b) in bytes.iter().enumerate() {
        model.insert(addr + i as u64, *b);
    }
}

fn to_bytes(v: u64, len: usize, e: Endian) -> Vec<u8> {
    let le = v.to_le_bytes();
    let mut bytes: Vec<u8> = le[..len].to_vec();
    if e == Endian::Big {
        bytes.reverse();
    }
    bytes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn memory_matches_flat_byte_model(ops in proptest::collection::vec(op(), 1..60)) {
        let mut mem = Mem::new();
        let mut model: HashMap<u64, u8> = HashMap::new();
        for op in &ops {
            match op {
                Op::W8(a, v) => {
                    mem.write_u8(*a, *v).unwrap();
                    model_write(&mut model, *a, &[*v]);
                }
                Op::W16(a, v, e) => {
                    mem.write_u16(*a, *v, *e).unwrap();
                    model_write(&mut model, *a, &to_bytes(*v as u64, 2, *e));
                }
                Op::W32(a, v, e) => {
                    mem.write_u32(*a, *v, *e).unwrap();
                    model_write(&mut model, *a, &to_bytes(*v as u64, 4, *e));
                }
                Op::W64(a, v, e) => {
                    mem.write_u64(*a, *v, *e).unwrap();
                    model_write(&mut model, *a, &to_bytes(*v, 8, *e));
                }
                Op::Bulk(a, bytes) => {
                    mem.write_bytes(*a, bytes).unwrap();
                    model_write(&mut model, *a, bytes);
                }
            }
        }
        // Every byte the model knows must read back identically, through
        // every access width.
        for (&a, &expected) in &model {
            prop_assert_eq!(mem.read_u8(a).unwrap(), expected);
        }
        // Word reads agree with byte composition in both endiannesses.
        for &a in model.keys() {
            let base = a & !7;
            let mut le = [0u8; 8];
            for (i, slot) in le.iter_mut().enumerate() {
                *slot = model.get(&(base + i as u64)).copied().unwrap_or(0);
            }
            prop_assert_eq!(mem.read_u64(base, Endian::Little).unwrap(), u64::from_le_bytes(le));
            prop_assert_eq!(mem.read_u64(base, Endian::Big).unwrap(), u64::from_be_bytes(le));
        }
        // Untouched addresses read as zero.
        prop_assert_eq!(mem.read_u64(0x8000, Endian::Little).unwrap(), 0);
    }

    #[test]
    fn bulk_round_trip_any_alignment(
        addr in 0x1000u64..0x3000,
        data in proptest::collection::vec(any::<u8>(), 1..300),
    ) {
        let mut mem = Mem::new();
        mem.write_bytes(addr, &data).unwrap();
        let mut back = vec![0u8; data.len()];
        mem.read_bytes(addr, &mut back).unwrap();
        prop_assert_eq!(back, data);
    }
}
