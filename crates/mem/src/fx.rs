//! A fast, deterministic FxHash-style hasher for hot-path integer-keyed
//! maps: the sparse page table here in `lis-mem`, and the PC-keyed block,
//! decode, and compiled-code caches in `lis-runtime`.
//!
//! The keys are small, well-distributed integers (page numbers, word-aligned
//! PCs) inside maps that never outlive one deterministic run, so SipHash's
//! keyed DoS resistance is pure overhead on the hot path.

/// FxHash's 64-bit multiplier: odd, golden-ratio derived, with good
/// avalanche into the top bits the hash table actually indexes with.
const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// One FxHash round: rotate to spread low-entropy (word-aligned) inputs,
/// fold in the word, multiply to diffuse upward.
#[inline]
fn fx_mix(state: u64, word: u64) -> u64 {
    (state.rotate_left(5) ^ word).wrapping_mul(FX_SEED)
}

/// The hasher state. See the module docs for when this is appropriate.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher(u64);

impl std::hash::Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Word-at-a-time: mix full 8-byte chunks, then the zero-padded tail.
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.0 = fx_mix(self.0, u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rem.len()].copy_from_slice(rem);
            self.0 = fx_mix(self.0, u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.0 = fx_mix(self.0, v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.0 = fx_mix(self.0, v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.0 = fx_mix(self.0, v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.0 = fx_mix(self.0, v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.0 = fx_mix(self.0, v as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
#[derive(Debug, Clone, Copy, Default)]
pub struct FxBuildHasher;

impl std::hash::BuildHasher for FxBuildHasher {
    type Hasher = FxHasher;

    #[inline]
    fn build_hasher(&self) -> FxHasher {
        FxHasher(0)
    }
}

/// A `HashMap` using the fast hasher.
pub type FxMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hasher};

    #[test]
    fn deterministic_and_spreads_aligned_keys() {
        let build = FxBuildHasher;
        let hash = |k: u64| build.hash_one(k);
        assert_eq!(hash(0x1000), hash(0x1000));
        // Word-aligned keys must differ in the top bits the table indexes
        // with, or every page lands in one bucket.
        let a = hash(0x1000) >> 57;
        let b = hash(0x1008) >> 57;
        let c = hash(0x2000) >> 57;
        assert!(a != b || b != c, "aligned keys collapse to one bucket");
    }

    #[test]
    fn multi_chunk_writes_differ_from_single() {
        let build = FxBuildHasher;
        let mut h1 = build.build_hasher();
        h1.write(&[1u8; 16]);
        let mut h2 = build.build_hasher();
        h2.write(&[1u8; 8]);
        assert_ne!(h1.finish(), h2.finish());
    }
}
