//! The simple section-based program image produced by `lis-asm`.

use std::collections::HashMap;
use std::fmt;

/// A contiguous run of bytes to be loaded at a fixed address.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Section {
    /// Human-readable section name (`.text`, `.data`, ...).
    pub name: String,
    /// Load address of the first byte.
    pub addr: u64,
    /// Raw contents.
    pub bytes: Vec<u8>,
}

impl Section {
    /// Address one past the last byte of the section.
    pub fn end(&self) -> u64 {
        self.addr + self.bytes.len() as u64
    }
}

/// A named address produced by an assembler label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Symbol {
    /// Label name.
    pub name: String,
    /// Resolved address.
    pub addr: u64,
}

/// A loadable program image: sections plus an entry point and symbol table.
///
/// This is the object format shared between the assembler, the loaders, and
/// the workload suites — a deliberately minimal stand-in for the ELF binaries
/// the paper's simulators consume.
///
/// # Examples
///
/// ```
/// use lis_mem::{Image, Mem, Section};
///
/// let image = Image {
///     entry: 0x1000,
///     sections: vec![Section { name: ".text".into(), addr: 0x1000, bytes: vec![1, 2, 3, 4] }],
///     symbols: Default::default(),
/// };
/// let mut mem = Mem::new();
/// assert_eq!(mem.load_image(&image)?, 0x1000);
/// assert_eq!(mem.read_u8(0x1002)?, 3);
/// # Ok::<(), lis_mem::MemFault>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Image {
    /// Address of the first instruction to execute.
    pub entry: u64,
    /// Sections to load.
    pub sections: Vec<Section>,
    /// Label → address map, for tests and debugging.
    pub symbols: HashMap<String, u64>,
}

impl Image {
    /// Looks up a symbol address by name.
    pub fn symbol(&self, name: &str) -> Option<u64> {
        self.symbols.get(name).copied()
    }

    /// Total number of loadable bytes across all sections.
    pub fn size(&self) -> usize {
        self.sections.iter().map(|s| s.bytes.len()).sum()
    }

    /// Highest address occupied by any section (useful for placing the heap).
    pub fn high_water(&self) -> u64 {
        self.sections.iter().map(Section::end).max().unwrap_or(0)
    }

    /// Deterministic content hash over everything the loader consumes: the
    /// entry point plus each section's name, base address, and bytes.
    /// Symbols are debug metadata and deliberately excluded, so two images
    /// that load identically hash identically. Used as the image component
    /// of shared-artifact cache keys.
    pub fn content_hash(&self) -> u64 {
        use std::hash::Hasher;
        let mut h = crate::fx::FxHasher::default();
        h.write_u64(self.entry);
        h.write_usize(self.sections.len());
        for s in &self.sections {
            h.write(s.name.as_bytes());
            h.write_u64(s.addr);
            h.write_usize(s.bytes.len());
            h.write(&s.bytes);
        }
        h.finish()
    }
}

impl fmt::Display for Image {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "entry {:#x}", self.entry)?;
        for s in &self.sections {
            writeln!(
                f,
                "  {:8} {:#010x}..{:#010x} ({} bytes)",
                s.name,
                s.addr,
                s.end(),
                s.bytes.len()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Image {
        Image {
            entry: 0x1000,
            sections: vec![
                Section { name: ".text".into(), addr: 0x1000, bytes: vec![0; 16] },
                Section { name: ".data".into(), addr: 0x4000, bytes: vec![0; 8] },
            ],
            symbols: [("main".to_string(), 0x1000u64)].into_iter().collect(),
        }
    }

    #[test]
    fn symbol_lookup() {
        let img = sample();
        assert_eq!(img.symbol("main"), Some(0x1000));
        assert_eq!(img.symbol("missing"), None);
    }

    #[test]
    fn size_and_high_water() {
        let img = sample();
        assert_eq!(img.size(), 24);
        assert_eq!(img.high_water(), 0x4008);
        assert_eq!(Image::default().high_water(), 0);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!sample().to_string().is_empty());
    }

    #[test]
    fn content_hash_sees_loadable_bytes_not_symbols() {
        let img = sample();
        assert_eq!(img.content_hash(), sample().content_hash());

        let mut stripped = sample();
        stripped.symbols.clear();
        assert_eq!(img.content_hash(), stripped.content_hash(), "symbols are excluded");

        let mut flipped = sample();
        flipped.sections[0].bytes[3] ^= 1;
        assert_ne!(img.content_hash(), flipped.content_hash(), "bytes are included");

        let mut moved = sample();
        moved.sections[1].addr += 8;
        assert_ne!(img.content_hash(), moved.content_hash(), "addresses are included");

        let mut rebased = sample();
        rebased.entry += 4;
        assert_ne!(img.content_hash(), rebased.content_hash(), "entry is included");
    }
}
