//! Deterministic fault injection for robustness testing.
//!
//! A [`ChaosPlan`] describes a seeded campaign of low-level misbehaviour —
//! bit flips in fetched instruction words, transient data-access faults, and
//! pages unmapped mid-run — and a [`ChaosState`] executes it. Everything is
//! a pure function of the plan: event timing is derived from the retired
//! instruction index and a dedicated [`ChaosRng`] stream, never from wall
//! clock, allocation order, or `HashMap` iteration, so a run can be replayed
//! exactly from `(seed, plan)`.
//!
//! The execution engine owns the state and calls the three `maybe_*` hooks;
//! this crate only defines the mechanism so that both the engine and the
//! test harness speak the same vocabulary. Injected data faults reuse
//! [`MemFault::OutOfRange`] — provenance (real vs injected) lives in the
//! event log, not the fault value, so architectural fault handling is
//! exercised unchanged.

use crate::{AccessKind, Mem, MemFault};
use std::fmt;

/// A deterministic SplitMix64 stream for chaos scheduling.
///
/// Small and stateless enough to reason about: each draw advances one `u64`
/// of state. Not cryptographic, and deliberately independent of the
/// generators used elsewhere in the workspace so plans replay identically
/// no matter what the workload generator does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosRng {
    state: u64,
}

impl ChaosRng {
    /// Creates a stream seeded with `seed`.
    pub fn new(seed: u64) -> ChaosRng {
        ChaosRng { state: seed }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }
}

/// A seeded fault-injection campaign description.
///
/// Each enabled channel fires roughly every `*_period` retired
/// instructions (the exact gap is drawn uniformly from
/// `[1, 2 * period]`, mean `period`). Disabled channels (`None`) never
/// fire. `max_events` bounds the total injected across all channels;
/// `0` means unlimited.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosPlan {
    /// Seed for the scheduling stream.
    pub seed: u64,
    /// Mean instructions between instruction-word bit flips.
    pub flip_period: Option<u64>,
    /// Mean instructions between transient data-access faults.
    pub data_fault_period: Option<u64>,
    /// Mean instructions between page unmaps.
    pub unmap_period: Option<u64>,
    /// First retired-instruction index eligible for injection.
    pub start: u64,
    /// Upper bound on total injected events (0 = unlimited).
    pub max_events: u32,
}

impl ChaosPlan {
    /// A plan with every channel enabled at `period`, starting immediately.
    pub fn uniform(seed: u64, period: u64) -> ChaosPlan {
        ChaosPlan {
            seed,
            flip_period: Some(period),
            data_fault_period: Some(period),
            unmap_period: Some(period),
            start: 0,
            max_events: 0,
        }
    }

    /// A plan injecting nothing (useful as a campaign baseline).
    pub fn quiet(seed: u64) -> ChaosPlan {
        ChaosPlan {
            seed,
            flip_period: None,
            data_fault_period: None,
            unmap_period: None,
            start: 0,
            max_events: 0,
        }
    }
}

/// One injected event, recorded at the retired-instruction index where it
/// fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosEvent {
    /// An instruction word was corrupted at fetch time.
    BitFlip {
        /// Retired-instruction index at injection.
        inst: u64,
        /// PC of the fetched word.
        pc: u64,
        /// Which bit was flipped.
        bit: u8,
        /// The word as stored in memory.
        before: u32,
        /// The word as delivered to decode.
        after: u32,
    },
    /// A data access was made to fault without touching memory.
    DataFault {
        /// Retired-instruction index at injection.
        inst: u64,
        /// Address of the suppressed access.
        addr: u64,
        /// Whether a load or a store was suppressed.
        kind: AccessKind,
    },
    /// A resident page was unmapped (contents discarded).
    PageUnmap {
        /// Retired-instruction index at injection.
        inst: u64,
        /// Base address of the discarded page.
        base: u64,
    },
}

impl ChaosEvent {
    /// Retired-instruction index at which the event fired.
    pub fn inst(&self) -> u64 {
        match *self {
            ChaosEvent::BitFlip { inst, .. }
            | ChaosEvent::DataFault { inst, .. }
            | ChaosEvent::PageUnmap { inst, .. } => inst,
        }
    }
}

impl fmt::Display for ChaosEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ChaosEvent::BitFlip { inst, pc, bit, before, after } => write!(
                f,
                "inst {inst}: flipped bit {bit} of fetch at {pc:#x} ({before:#010x} -> {after:#010x})"
            ),
            ChaosEvent::DataFault { inst, addr, kind } => {
                write!(f, "inst {inst}: injected transient {kind} fault at {addr:#x}")
            }
            ChaosEvent::PageUnmap { inst, base } => {
                write!(f, "inst {inst}: unmapped page {base:#x}")
            }
        }
    }
}

/// Live state of a chaos campaign: the schedule, the RNG stream, and the
/// log of everything injected so far.
#[derive(Debug, Clone)]
pub struct ChaosState {
    plan: ChaosPlan,
    rng: ChaosRng,
    cur_inst: u64,
    next_flip: Option<u64>,
    next_data: Option<u64>,
    next_unmap: Option<u64>,
    log: Vec<ChaosEvent>,
}

impl ChaosState {
    /// Creates the state for `plan`, drawing the initial schedule.
    pub fn new(plan: ChaosPlan) -> ChaosState {
        let mut rng = ChaosRng::new(plan.seed);
        let mut due = |period: Option<u64>| period.map(|p| plan.start + gap(&mut rng, p));
        let next_flip = due(plan.flip_period);
        let next_data = due(plan.data_fault_period);
        let next_unmap = due(plan.unmap_period);
        ChaosState { plan, rng, cur_inst: 0, next_flip, next_data, next_unmap, log: Vec::new() }
    }

    /// The plan this state executes.
    pub fn plan(&self) -> &ChaosPlan {
        &self.plan
    }

    /// Everything injected so far, in firing order.
    pub fn events(&self) -> &[ChaosEvent] {
        &self.log
    }

    /// Number of events injected so far.
    pub fn injected(&self) -> usize {
        self.log.len()
    }

    /// Called by the engine at the start of each instruction with the
    /// retired-instruction index; all hooks fire relative to it.
    pub fn begin_inst(&mut self, inst: u64) {
        self.cur_inst = inst;
    }

    fn budget_left(&self) -> bool {
        self.plan.max_events == 0 || self.log.len() < self.plan.max_events as usize
    }

    /// Possibly corrupts a fetched instruction word. Returns the word to
    /// deliver to decode (flipped in exactly one bit when the flip channel
    /// is due, unchanged otherwise).
    pub fn maybe_flip_fetch(&mut self, pc: u64, word: u32) -> u32 {
        let Some(due) = self.next_flip else { return word };
        if self.cur_inst < due || !self.budget_left() {
            return word;
        }
        let bit = self.rng.below(32) as u8;
        let after = word ^ (1 << bit);
        self.log.push(ChaosEvent::BitFlip { inst: self.cur_inst, pc, bit, before: word, after });
        let p = self.plan.flip_period.unwrap_or(1);
        self.next_flip = Some(self.cur_inst + gap(&mut self.rng, p));
        after
    }

    /// Possibly injects a transient fault into a data access. Returns the
    /// fault to report instead of performing the access, or `None` to let
    /// the access proceed.
    pub fn maybe_fault_data(&mut self, addr: u64, kind: AccessKind) -> Option<MemFault> {
        let due = self.next_data?;
        if self.cur_inst < due || !self.budget_left() {
            return None;
        }
        self.log.push(ChaosEvent::DataFault { inst: self.cur_inst, addr, kind });
        let p = self.plan.data_fault_period.unwrap_or(1);
        self.next_data = Some(self.cur_inst + gap(&mut self.rng, p));
        Some(MemFault::OutOfRange { addr, kind })
    }

    /// Possibly unmaps one resident page of `mem`. The victim is chosen
    /// from the *sorted* resident-page list so the choice is a pure
    /// function of memory contents and the RNG stream. Returns `true` when
    /// a page was discarded (the engine must invalidate predecoded state).
    pub fn maybe_unmap(&mut self, mem: &mut Mem) -> bool {
        let Some(due) = self.next_unmap else { return false };
        if self.cur_inst < due || !self.budget_left() {
            return false;
        }
        let pages = mem.page_bases();
        let p = self.plan.unmap_period.unwrap_or(1);
        self.next_unmap = Some(self.cur_inst + gap(&mut self.rng, p));
        if pages.is_empty() {
            return false;
        }
        let base = pages[self.rng.below(pages.len() as u64) as usize];
        mem.unmap_page(base);
        self.log.push(ChaosEvent::PageUnmap { inst: self.cur_inst, base });
        true
    }
}

/// Draws the gap to the next firing: uniform in `[1, 2 * period]`.
fn gap(rng: &mut ChaosRng, period: u64) -> u64 {
    1 + rng.below((2 * period.max(1)).max(1))
}

/// One byte that differs between two memories.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemDelta {
    /// Address of the differing byte.
    pub addr: u64,
    /// The byte in `self` (left-hand memory).
    pub lhs: u8,
    /// The byte in `other` (right-hand memory).
    pub rhs: u8,
}

impl fmt::Display for MemDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:#x}] {:#04x} != {:#04x}", self.addr, self.lhs, self.rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Endian;

    #[test]
    fn replay_is_exact() {
        let plan = ChaosPlan::uniform(0xfeed, 8);
        let run = |plan: ChaosPlan| {
            let mut st = ChaosState::new(plan);
            let mut mem = Mem::new();
            mem.write_u32(0x1000, 0xaaaa_aaaa, Endian::Little).unwrap();
            mem.write_u32(0x5000, 0x5555_5555, Endian::Little).unwrap();
            let mut words = Vec::new();
            for i in 0..200u64 {
                st.begin_inst(i);
                words.push(st.maybe_flip_fetch(0x1000 + 4 * i, 0xdead_beef));
                if let Some(f) = st.maybe_fault_data(0x2000 + i, AccessKind::Load) {
                    words.push(f.addr() as u32);
                }
                st.maybe_unmap(&mut mem);
            }
            (words, st.events().to_vec())
        };
        let (w1, e1) = run(plan);
        let (w2, e2) = run(plan);
        assert_eq!(w1, w2);
        assert_eq!(e1, e2);
        assert!(!e1.is_empty(), "a period-8 plan must fire within 200 insts");
        let (_, e3) = run(ChaosPlan { seed: 0xbeef, ..plan });
        assert_ne!(e1, e3, "different seeds must give different schedules");
    }

    #[test]
    fn flip_changes_exactly_one_bit() {
        let mut st = ChaosState::new(ChaosPlan {
            seed: 1,
            flip_period: Some(1),
            data_fault_period: None,
            unmap_period: None,
            start: 0,
            max_events: 0,
        });
        st.begin_inst(5);
        let before = 0x0123_4567u32;
        let after = st.maybe_flip_fetch(0x1000, before);
        assert_eq!((before ^ after).count_ones(), 1);
        match st.events() {
            [ChaosEvent::BitFlip { inst: 5, pc: 0x1000, before: b, after: a, .. }] => {
                assert_eq!((*b, *a), (before, after));
            }
            other => panic!("unexpected log {other:?}"),
        }
    }

    #[test]
    fn start_and_budget_are_respected() {
        let plan = ChaosPlan {
            seed: 3,
            flip_period: Some(1),
            data_fault_period: None,
            unmap_period: None,
            start: 100,
            max_events: 2,
        };
        let mut st = ChaosState::new(plan);
        for i in 0..300u64 {
            st.begin_inst(i);
            st.maybe_flip_fetch(0x1000, 0);
        }
        assert_eq!(st.injected(), 2);
        assert!(st.events().iter().all(|e| e.inst() >= 100));
    }

    #[test]
    fn unmap_discards_the_page_and_reschedules() {
        let mut st = ChaosState::new(ChaosPlan {
            seed: 9,
            flip_period: None,
            data_fault_period: None,
            unmap_period: Some(1),
            start: 0,
            max_events: 0,
        });
        let mut mem = Mem::new();
        mem.write_u32(0x1000, 7, Endian::Little).unwrap();
        st.begin_inst(2);
        assert!(st.maybe_unmap(&mut mem));
        assert_eq!(mem.resident_pages(), 0);
        assert_eq!(mem.read_u32(0x1000, Endian::Little).unwrap(), 0);
        // Nothing left to unmap: the channel draws but does not log.
        st.begin_inst(50);
        assert!(!st.maybe_unmap(&mut mem));
        assert_eq!(st.injected(), 1);
    }
}
