//! Deterministic fault injection for robustness testing.
//!
//! A [`ChaosPlan`] describes a seeded campaign of low-level misbehaviour —
//! bit flips in fetched instruction words, transient data-access faults, and
//! pages unmapped mid-run — and a [`ChaosState`] executes it. Everything is
//! a pure function of the plan: event timing is derived from the retired
//! instruction index and a dedicated [`ChaosRng`] stream, never from wall
//! clock, allocation order, or `HashMap` iteration, so a run can be replayed
//! exactly from `(seed, plan)`.
//!
//! The execution engine owns the state and calls the `maybe_*` hooks;
//! this crate only defines the mechanism so that both the engine and the
//! test harness speak the same vocabulary. Injected data faults reuse
//! [`MemFault::OutOfRange`] — provenance (real vs injected) lives in the
//! event log, not the fault value, so architectural fault handling is
//! exercised unchanged.
//!
//! Beyond the seeded (procedural) mode, a state can run in *scripted* mode
//! ([`ChaosState::scripted`]): instead of drawing a schedule it replays an
//! explicit event list, firing each event at the first matching site at or
//! after its recorded instruction index. Scripted states are how a recorded
//! campaign is replayed verbatim — the supervised harness feeds a reference
//! simulator the subject's own event log, and plan minimization probes
//! candidate sublists of a diverging log.

use crate::{AccessKind, Mem, MemFault};
use std::fmt;

/// A deterministic SplitMix64 stream for chaos scheduling.
///
/// Small and stateless enough to reason about: each draw advances one `u64`
/// of state. Not cryptographic, and deliberately independent of the
/// generators used elsewhere in the workspace so plans replay identically
/// no matter what the workload generator does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosRng {
    state: u64,
}

impl ChaosRng {
    /// Creates a stream seeded with `seed`.
    pub fn new(seed: u64) -> ChaosRng {
        ChaosRng { state: seed }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }
}

/// A seeded fault-injection campaign description.
///
/// Each enabled channel fires roughly every `*_period` retired
/// instructions (the exact gap is drawn uniformly from
/// `[1, 2 * period]`, mean `period`). Disabled channels (`None`) never
/// fire. `max_events` bounds the total injected across all channels;
/// `0` means unlimited.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosPlan {
    /// Seed for the scheduling stream.
    pub seed: u64,
    /// Mean instructions between instruction-word bit flips.
    pub flip_period: Option<u64>,
    /// Mean instructions between transient data-access faults.
    pub data_fault_period: Option<u64>,
    /// Mean instructions between page unmaps.
    pub unmap_period: Option<u64>,
    /// Mean instructions between translation poisonings (fires only when a
    /// backend actually translates, i.e. the compiled backend's superblock
    /// build; other backends never consult this channel).
    pub translate_fault_period: Option<u64>,
    /// First retired-instruction index eligible for injection.
    pub start: u64,
    /// Upper bound on total injected events (0 = unlimited).
    pub max_events: u32,
}

impl ChaosPlan {
    /// A plan with every architectural channel enabled at `period`,
    /// starting immediately. The translate channel stays off: it targets
    /// backend machinery rather than architecture, so it is opt-in.
    pub fn uniform(seed: u64, period: u64) -> ChaosPlan {
        ChaosPlan {
            seed,
            flip_period: Some(period),
            data_fault_period: Some(period),
            unmap_period: Some(period),
            translate_fault_period: None,
            start: 0,
            max_events: 0,
        }
    }

    /// A plan injecting nothing (useful as a campaign baseline).
    pub fn quiet(seed: u64) -> ChaosPlan {
        ChaosPlan {
            seed,
            flip_period: None,
            data_fault_period: None,
            unmap_period: None,
            translate_fault_period: None,
            start: 0,
            max_events: 0,
        }
    }
}

/// One injected event, recorded at the retired-instruction index where it
/// fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosEvent {
    /// An instruction word was corrupted at fetch time.
    BitFlip {
        /// Retired-instruction index at injection.
        inst: u64,
        /// PC of the fetched word.
        pc: u64,
        /// Which bit was flipped.
        bit: u8,
        /// The word as stored in memory.
        before: u32,
        /// The word as delivered to decode.
        after: u32,
    },
    /// A data access was made to fault without touching memory.
    DataFault {
        /// Retired-instruction index at injection.
        inst: u64,
        /// Address of the suppressed access.
        addr: u64,
        /// Whether a load or a store was suppressed.
        kind: AccessKind,
    },
    /// A resident page was unmapped (contents discarded).
    PageUnmap {
        /// Retired-instruction index at injection.
        inst: u64,
        /// Base address of the discarded page.
        base: u64,
    },
    /// A superblock translation was poisoned as it was built: one captured
    /// decode value corrupted and the link hints scrambled. `idx` and `bit`
    /// are raw draws; the engine maps them onto the translation by a pure
    /// function of the built superblock, so a replay with the same draws
    /// poisons the same capture.
    TranslateFault {
        /// Retired-instruction index at injection (translation time).
        inst: u64,
        /// Entry PC of the poisoned superblock.
        pc: u64,
        /// Raw draw selecting the victim instruction within the superblock.
        idx: u32,
        /// Raw draw selecting the bit to corrupt in the captured value.
        bit: u8,
    },
}

impl ChaosEvent {
    /// Retired-instruction index at which the event fired.
    pub fn inst(&self) -> u64 {
        match *self {
            ChaosEvent::BitFlip { inst, .. }
            | ChaosEvent::DataFault { inst, .. }
            | ChaosEvent::PageUnmap { inst, .. }
            | ChaosEvent::TranslateFault { inst, .. } => inst,
        }
    }

    /// True for events that corrupt the instruction-delivery path (fetch or
    /// translation). A scripted replay must bypass decode/translation caches
    /// while any such event is pending, otherwise a cache hit would swallow
    /// the injection site.
    pub fn affects_fetch(&self) -> bool {
        matches!(self, ChaosEvent::BitFlip { .. } | ChaosEvent::TranslateFault { .. })
    }

    /// True for events visible in the architectural state (fetch corruption,
    /// data faults, unmaps) as opposed to backend-machinery faults. Only
    /// architectural events are meaningful to replay on a reference
    /// simulator that performs no translation.
    pub fn architectural(&self) -> bool {
        !matches!(self, ChaosEvent::TranslateFault { .. })
    }
}

impl fmt::Display for ChaosEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ChaosEvent::BitFlip { inst, pc, bit, before, after } => write!(
                f,
                "inst {inst}: flipped bit {bit} of fetch at {pc:#x} ({before:#010x} -> {after:#010x})"
            ),
            ChaosEvent::DataFault { inst, addr, kind } => {
                write!(f, "inst {inst}: injected transient {kind} fault at {addr:#x}")
            }
            ChaosEvent::PageUnmap { inst, base } => {
                write!(f, "inst {inst}: unmapped page {base:#x}")
            }
            ChaosEvent::TranslateFault { inst, pc, idx, bit } => {
                write!(f, "inst {inst}: poisoned translation at {pc:#x} (idx {idx}, bit {bit})")
            }
        }
    }
}

/// Live state of a chaos campaign: the schedule, the RNG stream, and the
/// log of everything injected so far.
#[derive(Debug, Clone)]
pub struct ChaosState {
    plan: ChaosPlan,
    rng: ChaosRng,
    cur_inst: u64,
    next_flip: Option<u64>,
    next_data: Option<u64>,
    next_unmap: Option<u64>,
    next_translate: Option<u64>,
    /// Pending scripted events, front first. Non-empty `script` or
    /// `scripted == true` switches every hook from drawing to matching.
    script: std::collections::VecDeque<ChaosEvent>,
    scripted: bool,
    log: Vec<ChaosEvent>,
}

impl ChaosState {
    /// Creates the state for `plan`, drawing the initial schedule.
    ///
    /// Channel order is load-bearing: the initial dues are drawn flip,
    /// data, unmap, translate, so plans that leave the (newer) translate
    /// channel off consume exactly the draws they did before it existed and
    /// replay byte-identically.
    pub fn new(plan: ChaosPlan) -> ChaosState {
        let mut rng = ChaosRng::new(plan.seed);
        let mut due = |period: Option<u64>| period.map(|p| plan.start + gap(&mut rng, p));
        let next_flip = due(plan.flip_period);
        let next_data = due(plan.data_fault_period);
        let next_unmap = due(plan.unmap_period);
        let next_translate = due(plan.translate_fault_period);
        ChaosState {
            plan,
            rng,
            cur_inst: 0,
            next_flip,
            next_data,
            next_unmap,
            next_translate,
            script: Default::default(),
            scripted: false,
            log: Vec::new(),
        }
    }

    /// Creates a scripted state that injects exactly `events`, in order,
    /// each at the first matching site at or after its recorded instruction
    /// index. No schedule is drawn and `max_events` does not apply; the
    /// plan is a quiet placeholder carrying `seed` for labeling only.
    pub fn scripted(seed: u64, events: impl IntoIterator<Item = ChaosEvent>) -> ChaosState {
        let mut st = ChaosState::new(ChaosPlan::quiet(seed));
        st.scripted = true;
        st.script.extend(events);
        st
    }

    /// Appends one more event to a scripted state's pending queue (the
    /// supervised harness feeds a reference simulator incrementally, as the
    /// subject logs events).
    pub fn push_event(&mut self, ev: ChaosEvent) {
        debug_assert!(self.scripted, "push_event only applies to scripted states");
        self.script.push_back(ev);
    }

    /// True when this state replays a script instead of drawing a schedule.
    pub fn is_scripted(&self) -> bool {
        self.scripted
    }

    /// Discards every pending (unfired) scripted event. The supervised
    /// harness calls this when it resynchronizes a diverged subject: events
    /// whose sites lived in the discarded execution tail must not fire later
    /// at unrelated matching sites.
    pub fn clear_pending(&mut self) {
        self.script.clear();
    }

    /// Number of scripted events not yet fired.
    pub fn pending(&self) -> usize {
        self.script.len()
    }

    /// True while a pending scripted event targets the instruction-delivery
    /// path (bit flip or translate fault) that is now due. The engine must
    /// bypass its decode/translation caches while this holds, otherwise a
    /// cache hit would skip the fetch hook at the injection site.
    pub fn scripted_fetch_due(&self) -> bool {
        self.script.front().is_some_and(|e| e.affects_fetch() && e.inst() <= self.cur_inst)
    }

    /// The plan this state executes.
    pub fn plan(&self) -> &ChaosPlan {
        &self.plan
    }

    /// Everything injected so far, in firing order.
    pub fn events(&self) -> &[ChaosEvent] {
        &self.log
    }

    /// Number of events injected so far.
    pub fn injected(&self) -> usize {
        self.log.len()
    }

    /// Called by the engine at the start of each instruction with the
    /// retired-instruction index; all hooks fire relative to it.
    pub fn begin_inst(&mut self, inst: u64) {
        self.cur_inst = inst;
    }

    fn budget_left(&self) -> bool {
        self.plan.max_events == 0 || self.log.len() < self.plan.max_events as usize
    }

    /// Possibly corrupts a fetched instruction word. Returns the word to
    /// deliver to decode (flipped in exactly one bit when the flip channel
    /// is due, unchanged otherwise).
    pub fn maybe_flip_fetch(&mut self, pc: u64, word: u32) -> u32 {
        if self.scripted {
            let Some(&ChaosEvent::BitFlip { inst, pc: epc, bit, .. }) = self.script.front() else {
                return word;
            };
            if epc != pc || self.cur_inst < inst {
                return word;
            }
            self.script.pop_front();
            let after = word ^ (1 << bit);
            self.log.push(ChaosEvent::BitFlip { inst, pc, bit, before: word, after });
            return after;
        }
        let Some(due) = self.next_flip else { return word };
        if self.cur_inst < due || !self.budget_left() {
            return word;
        }
        let bit = self.rng.below(32) as u8;
        let after = word ^ (1 << bit);
        self.log.push(ChaosEvent::BitFlip { inst: self.cur_inst, pc, bit, before: word, after });
        let p = self.plan.flip_period.unwrap_or(1);
        self.next_flip = Some(self.cur_inst + gap(&mut self.rng, p));
        after
    }

    /// Possibly injects a transient fault into a data access. Returns the
    /// fault to report instead of performing the access, or `None` to let
    /// the access proceed.
    pub fn maybe_fault_data(&mut self, addr: u64, kind: AccessKind) -> Option<MemFault> {
        if self.scripted {
            let &ChaosEvent::DataFault { inst, addr: eaddr, kind: ekind } = self.script.front()?
            else {
                return None;
            };
            if eaddr != addr || ekind != kind || self.cur_inst < inst {
                return None;
            }
            self.script.pop_front();
            self.log.push(ChaosEvent::DataFault { inst, addr, kind });
            return Some(MemFault::OutOfRange { addr, kind });
        }
        let due = self.next_data?;
        if self.cur_inst < due || !self.budget_left() {
            return None;
        }
        self.log.push(ChaosEvent::DataFault { inst: self.cur_inst, addr, kind });
        let p = self.plan.data_fault_period.unwrap_or(1);
        self.next_data = Some(self.cur_inst + gap(&mut self.rng, p));
        Some(MemFault::OutOfRange { addr, kind })
    }

    /// Possibly unmaps one resident page of `mem`. The victim is chosen
    /// from the *sorted* resident-page list so the choice is a pure
    /// function of memory contents and the RNG stream. Returns `true` when
    /// a page was discarded (the engine must invalidate predecoded state).
    pub fn maybe_unmap(&mut self, mem: &mut Mem) -> bool {
        if self.scripted {
            let Some(&ChaosEvent::PageUnmap { inst, base }) = self.script.front() else {
                return false;
            };
            if self.cur_inst < inst {
                return false;
            }
            self.script.pop_front();
            mem.unmap_page(base);
            self.log.push(ChaosEvent::PageUnmap { inst, base });
            return true;
        }
        let Some(due) = self.next_unmap else { return false };
        if self.cur_inst < due || !self.budget_left() {
            return false;
        }
        let pages = mem.page_bases();
        let p = self.plan.unmap_period.unwrap_or(1);
        self.next_unmap = Some(self.cur_inst + gap(&mut self.rng, p));
        if pages.is_empty() {
            return false;
        }
        let base = pages[self.rng.below(pages.len() as u64) as usize];
        mem.unmap_page(base);
        self.log.push(ChaosEvent::PageUnmap { inst: self.cur_inst, base });
        true
    }

    /// Possibly poisons a superblock translation being built for `pc`.
    /// Returns the raw `(idx, bit)` draws for the engine to map onto the
    /// translation (a pure function of the draws and the built superblock,
    /// so a scripted replay poisons the same capture), or `None` to leave
    /// the translation honest. Only the translating backend calls this.
    pub fn maybe_translate_fault(&mut self, pc: u64) -> Option<(u32, u8)> {
        if self.scripted {
            let &ChaosEvent::TranslateFault { inst, pc: epc, idx, bit } = self.script.front()?
            else {
                return None;
            };
            if epc != pc || self.cur_inst < inst {
                return None;
            }
            self.script.pop_front();
            self.log.push(ChaosEvent::TranslateFault { inst, pc, idx, bit });
            return Some((idx, bit));
        }
        let due = self.next_translate?;
        if self.cur_inst < due || !self.budget_left() {
            return None;
        }
        let idx = self.rng.below(1 << 16) as u32;
        let bit = self.rng.below(64) as u8;
        self.log.push(ChaosEvent::TranslateFault { inst: self.cur_inst, pc, idx, bit });
        let p = self.plan.translate_fault_period.unwrap_or(1);
        self.next_translate = Some(self.cur_inst + gap(&mut self.rng, p));
        Some((idx, bit))
    }
}

/// Draws the gap to the next firing: uniform in `[1, 2 * period]`.
fn gap(rng: &mut ChaosRng, period: u64) -> u64 {
    1 + rng.below((2 * period.max(1)).max(1))
}

/// One byte that differs between two memories.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemDelta {
    /// Address of the differing byte.
    pub addr: u64,
    /// The byte in `self` (left-hand memory).
    pub lhs: u8,
    /// The byte in `other` (right-hand memory).
    pub rhs: u8,
}

impl fmt::Display for MemDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:#x}] {:#04x} != {:#04x}", self.addr, self.lhs, self.rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Endian;

    #[test]
    fn replay_is_exact() {
        let plan = ChaosPlan::uniform(0xfeed, 8);
        let run = |plan: ChaosPlan| {
            let mut st = ChaosState::new(plan);
            let mut mem = Mem::new();
            mem.write_u32(0x1000, 0xaaaa_aaaa, Endian::Little).unwrap();
            mem.write_u32(0x5000, 0x5555_5555, Endian::Little).unwrap();
            let mut words = Vec::new();
            for i in 0..200u64 {
                st.begin_inst(i);
                words.push(st.maybe_flip_fetch(0x1000 + 4 * i, 0xdead_beef));
                if let Some(f) = st.maybe_fault_data(0x2000 + i, AccessKind::Load) {
                    words.push(f.addr() as u32);
                }
                st.maybe_unmap(&mut mem);
            }
            (words, st.events().to_vec())
        };
        let (w1, e1) = run(plan);
        let (w2, e2) = run(plan);
        assert_eq!(w1, w2);
        assert_eq!(e1, e2);
        assert!(!e1.is_empty(), "a period-8 plan must fire within 200 insts");
        let (_, e3) = run(ChaosPlan { seed: 0xbeef, ..plan });
        assert_ne!(e1, e3, "different seeds must give different schedules");
    }

    #[test]
    fn flip_changes_exactly_one_bit() {
        let mut st = ChaosState::new(ChaosPlan {
            seed: 1,
            flip_period: Some(1),
            data_fault_period: None,
            unmap_period: None,
            translate_fault_period: None,
            start: 0,
            max_events: 0,
        });
        st.begin_inst(5);
        let before = 0x0123_4567u32;
        let after = st.maybe_flip_fetch(0x1000, before);
        assert_eq!((before ^ after).count_ones(), 1);
        match st.events() {
            [ChaosEvent::BitFlip { inst: 5, pc: 0x1000, before: b, after: a, .. }] => {
                assert_eq!((*b, *a), (before, after));
            }
            other => panic!("unexpected log {other:?}"),
        }
    }

    #[test]
    fn start_and_budget_are_respected() {
        let plan = ChaosPlan {
            seed: 3,
            flip_period: Some(1),
            data_fault_period: None,
            unmap_period: None,
            translate_fault_period: None,
            start: 100,
            max_events: 2,
        };
        let mut st = ChaosState::new(plan);
        for i in 0..300u64 {
            st.begin_inst(i);
            st.maybe_flip_fetch(0x1000, 0);
        }
        assert_eq!(st.injected(), 2);
        assert!(st.events().iter().all(|e| e.inst() >= 100));
    }

    #[test]
    fn unmap_discards_the_page_and_reschedules() {
        let mut st = ChaosState::new(ChaosPlan {
            seed: 9,
            flip_period: None,
            data_fault_period: None,
            unmap_period: Some(1),
            translate_fault_period: None,
            start: 0,
            max_events: 0,
        });
        let mut mem = Mem::new();
        mem.write_u32(0x1000, 7, Endian::Little).unwrap();
        st.begin_inst(2);
        assert!(st.maybe_unmap(&mut mem));
        assert_eq!(mem.resident_pages(), 0);
        assert_eq!(mem.read_u32(0x1000, Endian::Little).unwrap(), 0);
        // Nothing left to unmap: the channel draws but does not log.
        st.begin_inst(50);
        assert!(!st.maybe_unmap(&mut mem));
        assert_eq!(st.injected(), 1);
    }

    #[test]
    fn translate_channel_draws_after_the_architectural_ones() {
        // A plan without the translate channel must consume exactly the
        // draws it did before the channel existed: the first flip below
        // fires at the same instruction whether or not translate is
        // enabled, because the translate channel's initial due is drawn
        // last (the flipped bit itself comes from a later stream position,
        // so only the schedule is compared).
        let base = ChaosPlan {
            seed: 77,
            flip_period: Some(4),
            data_fault_period: Some(4),
            unmap_period: Some(4),
            translate_fault_period: None,
            start: 0,
            max_events: 0,
        };
        let with = ChaosPlan { translate_fault_period: Some(4), ..base };
        let first_flip = |plan: ChaosPlan| {
            let mut st = ChaosState::new(plan);
            for i in 0..64u64 {
                st.begin_inst(i);
                if st.maybe_flip_fetch(0x1000, 0) != 0 {
                    return i;
                }
            }
            panic!("period-4 flip channel must fire within 64 insts");
        };
        assert_eq!(first_flip(base), first_flip(with));
    }

    #[test]
    fn translate_channel_fires_and_replays() {
        let plan = ChaosPlan {
            seed: 5,
            flip_period: None,
            data_fault_period: None,
            unmap_period: None,
            translate_fault_period: Some(2),
            start: 0,
            max_events: 0,
        };
        let run = |plan: ChaosPlan| {
            let mut st = ChaosState::new(plan);
            let mut hits = Vec::new();
            for i in 0..40u64 {
                st.begin_inst(i);
                if let Some(draw) = st.maybe_translate_fault(0x2000 + 16 * i) {
                    hits.push((i, draw));
                }
            }
            (hits, st.events().to_vec())
        };
        let (h1, e1) = run(plan);
        let (h2, e2) = run(plan);
        assert_eq!(h1, h2);
        assert_eq!(e1, e2);
        assert!(!h1.is_empty(), "a period-2 translate channel must fire within 40 insts");
        assert!(e1.iter().all(|e| !e.architectural() && e.affects_fetch()));
    }

    #[test]
    fn scripted_state_replays_events_verbatim() {
        let mut st = ChaosState::scripted(
            1,
            [
                ChaosEvent::BitFlip { inst: 3, pc: 0x100c, bit: 7, before: 0, after: 0 },
                ChaosEvent::DataFault { inst: 5, addr: 0x2000, kind: AccessKind::Store },
                ChaosEvent::PageUnmap { inst: 8, base: 0x1000 },
            ],
        );
        assert!(st.is_scripted());
        let mut mem = Mem::new();
        mem.write_u32(0x1000, 7, Endian::Little).unwrap();

        // Wrong pc, too early: nothing fires.
        st.begin_inst(2);
        assert_eq!(st.maybe_flip_fetch(0x100c, 0xff), 0xff);
        st.begin_inst(3);
        assert_eq!(st.maybe_flip_fetch(0x1000, 0xff), 0xff);
        assert!(!st.scripted_fetch_due() || st.pending() == 3); // flip still queued
                                                                // Matching site: exactly the recorded bit flips.
        assert_eq!(st.maybe_flip_fetch(0x100c, 0xff), 0xff ^ (1 << 7));
        // Head-of-queue discipline: the data fault blocks until its site.
        assert_eq!(st.maybe_fault_data(0x2000, AccessKind::Load), None, "kind must match");
        st.begin_inst(6);
        match st.maybe_fault_data(0x2000, AccessKind::Store) {
            Some(MemFault::OutOfRange { addr: 0x2000, kind: AccessKind::Store }) => {}
            other => panic!("unexpected {other:?}"),
        }
        // The unmap names its page instead of drawing one.
        st.begin_inst(9);
        assert!(st.maybe_unmap(&mut mem));
        assert_eq!(mem.resident_pages(), 0);
        assert_eq!(st.pending(), 0);
        assert_eq!(st.injected(), 3);
    }

    #[test]
    fn scripted_fetch_due_tracks_the_queue_head() {
        let mut st = ChaosState::scripted(
            0,
            [
                ChaosEvent::DataFault { inst: 1, addr: 0x2000, kind: AccessKind::Load },
                ChaosEvent::TranslateFault { inst: 4, pc: 0x1000, idx: 9, bit: 3 },
            ],
        );
        st.begin_inst(4);
        assert!(!st.scripted_fetch_due(), "head is a data fault, caches may stay hot");
        assert!(st.maybe_fault_data(0x2000, AccessKind::Load).is_some());
        assert!(st.scripted_fetch_due(), "pending translate fault forces cache bypass");
        assert_eq!(st.maybe_translate_fault(0x2000), None, "pc must match");
        assert_eq!(st.maybe_translate_fault(0x1000), Some((9, 3)));
        assert!(!st.scripted_fetch_due());
    }
}
